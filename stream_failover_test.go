package prio_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"prio"
	"prio/internal/core"
	"prio/internal/transport"
)

// newDiffProtocol builds the deployment both differential runs share: three
// servers, full SNIP validation, no sealing (so both runs can reuse a
// keyless client).
func newDiffProtocol(t testing.TB, scheme prio.Scheme) *prio.Protocol {
	t.Helper()
	pro, err := prio.NewProtocol(prio.Config{Scheme: scheme, Servers: 3, Mode: prio.ModePrio})
	if err != nil {
		t.Fatal(err)
	}
	return pro
}

// deployServers starts servers 1 and 2 on plaintext TCP listeners (server 0
// is the in-process leader and rides a loopback peer). wrap, when non-nil,
// intercepts each listening server's handler — the fault-injection hook.
func deployServers(t testing.TB, pro *prio.Protocol, wrap func(i int, h transport.Handler) transport.Handler) ([]*prio.Server, []string, []*transport.Server) {
	t.Helper()
	servers := make([]*prio.Server, 3)
	addrs := make([]string, 3)
	lns := make([]*transport.Server, 3)
	addrs[0] = "loopback"
	for i := 0; i < 3; i++ {
		srv, err := prio.NewServer(pro, i)
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
		if i == 0 {
			continue
		}
		h := srv.Handler()
		if wrap != nil {
			h = wrap(i, h)
		}
		ln, err := transport.Listen("127.0.0.1:0", nil, h)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	return servers, addrs, lns
}

// buildMixedSubs builds a deterministic batch: every third submission
// carries an out-of-range encoding the SNIP check must reject, the rest are
// honest. Returns the submissions and the expected accept set.
func buildMixedSubs(t testing.TB, pro *prio.Protocol, scheme prio.Scheme, n int) ([]*prio.Submission, []bool) {
	t.Helper()
	client, err := prio.NewClient(pro, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := scheme.(interface{ Encode(uint64) ([]uint64, error) }).Encode(1)
	if err != nil {
		t.Fatal(err)
	}
	bad := make([]uint64, len(enc))
	for j := range bad {
		bad[j] = 7
	}
	subs := make([]*prio.Submission, n)
	want := make([]bool, n)
	for i := range subs {
		honest := i%3 != 2
		e := enc
		if !honest {
			e = bad
		}
		subs[i], err = client.BuildSubmission(e)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = honest
	}
	return subs, want
}

// runPipeline pushes subs through a sharded pipeline over leader and returns
// the per-submission accept set plus the merged shard stats.
func runPipeline(t *testing.T, leader *prio.Leader, subs []*prio.Submission) ([]bool, prio.ShardStats) {
	t.Helper()
	pl, err := prio.NewPipeline(leader, prio.PipelineConfig{
		Shards:   4,
		MaxBatch: 8,
		Retries:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	accepts := make([]bool, len(subs))
	errs := make([]error, len(subs))
	var wg sync.WaitGroup
	for i, sub := range subs {
		i := i
		wg.Add(1)
		if err := pl.SubmitFunc(sub, func(r prio.SubmitResult) {
			accepts[i] = r.Accepted
			errs[i] = r.Err
			wg.Done()
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	st := pl.Stats()
	pl.Close()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submission %d failed without a decision: %v", i, err)
		}
	}
	return accepts, st
}

// TestStreamedRoundsFailoverDifferential proves the streamed verification
// path survives a connection loss mid-round with the same accept set the
// legacy request/response path produces. A fault hook on server 1 drops
// every live connection the first time a MsgRound2Batch arrives — killing
// the in-flight round of every shard sharing the stream — and the pipeline's
// batch retry must re-run the affected batches under fresh IDs over a
// re-dialed stream, landing on decisions identical to an undisturbed legacy
// run over the same submission set.
func TestStreamedRoundsFailoverDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("networked differential test")
	}
	const n = 48
	scheme := prio.NewSum(2)

	// Baseline: legacy coalesced request/response transport, no faults.
	proL := newDiffProtocol(t, scheme)
	serversL, addrsL, _ := deployServers(t, proL, nil)
	leaderL, err := prio.ConnectLeaderLegacyTLS(serversL[0], addrsL, nil)
	if err != nil {
		t.Fatal(err)
	}
	subsL, want := buildMixedSubs(t, proL, scheme, n)
	legacy, _ := runPipeline(t, leaderL, subsL)

	// Streamed run: identical submission mix, with the mid-Round2 drop.
	proS := newDiffProtocol(t, scheme)
	var ln1 atomic.Pointer[transport.Server]
	var dropped atomic.Bool
	wrap := func(i int, h transport.Handler) transport.Handler {
		if i != 1 {
			return h
		}
		return func(msgType byte, payload []byte) ([]byte, error) {
			if msgType == core.MsgRound2Batch && dropped.CompareAndSwap(false, true) {
				ln1.Load().DropConns()
			}
			return h(msgType, payload)
		}
	}
	serversS, addrsS, lnsS := deployServers(t, proS, wrap)
	ln1.Store(lnsS[1])
	leaderS, err := prio.ConnectLeaderTLS(serversS[0], addrsS, nil)
	if err != nil {
		t.Fatal(err)
	}
	subsS, _ := buildMixedSubs(t, proS, scheme, n)
	streamed, st := runPipeline(t, leaderS, subsS)

	if !dropped.Load() {
		t.Fatal("fault hook never fired: no MsgRound2Batch reached server 1")
	}
	if st.FailedOver == 0 {
		t.Error("no batch re-run recorded after the connection drop")
	}
	for i := range legacy {
		if streamed[i] != legacy[i] {
			t.Errorf("submission %d: streamed=%v legacy=%v — accept sets diverge", i, streamed[i], legacy[i])
		}
		if streamed[i] != want[i] {
			t.Errorf("submission %d: accepted=%v, want %v", i, streamed[i], want[i])
		}
	}
}
