// Benchmarks regenerating the paper's evaluation artifacts as testing.B
// targets (one family per table/figure; cmd/prio-bench prints the same
// results as formatted tables). Run everything with:
//
//	go test -bench=. -benchmem
//
// Sub-benchmarks are named after the experiment and parameter, e.g.
// BenchmarkFig4_Prio/L=1024. Custom metrics carry the figure's y-axis where
// it is not time: submissions/s for the throughput figures and bytes/sub for
// Figure 6.
package prio_test

import (
	"crypto/rand"
	"fmt"
	"testing"

	"prio"
	"prio/internal/nizk"
	"prio/internal/snarkcost"
)

// benchDeployment builds an in-process cluster for benchmarks.
func benchDeployment(b *testing.B, scheme prio.Scheme, servers int, mode prio.Mode) (*prio.Cluster, *prio.Client) {
	b.Helper()
	pro, err := prio.NewProtocol(prio.Config{
		Scheme:  scheme,
		Servers: servers,
		Mode:    mode,
		Reps:    1, // match the paper's single identity test
		Seal:    true,
	})
	if err != nil {
		b.Fatal(err)
	}
	cluster, err := prio.NewLocalCluster(pro)
	if err != nil {
		b.Fatal(err)
	}
	client, err := prio.NewClient(pro, cluster.PublicKeys(), nil)
	if err != nil {
		b.Fatal(err)
	}
	return cluster, client
}

// bitEncoding builds a random valid BitVector encoding.
func bitEncoding(b *testing.B, scheme *prio.BitVector, l int) []uint64 {
	b.Helper()
	bits := make([]bool, l)
	buf := make([]byte, (l+7)/8)
	if _, err := rand.Read(buf); err != nil {
		b.Fatal(err)
	}
	for i := range bits {
		bits[i] = buf[i/8]&(1<<uint(i%8)) != 0
	}
	enc, err := scheme.Encode(bits)
	if err != nil {
		b.Fatal(err)
	}
	return enc
}

// throughputBench processes pre-built submissions in batches and reports
// submissions/s.
func throughputBench(b *testing.B, cluster *prio.Cluster, client *prio.Client, enc []uint64, batch int) {
	b.Helper()
	subs := make([]*prio.Submission, batch)
	for i := range subs {
		sub, err := client.BuildSubmission(enc)
		if err != nil {
			b.Fatal(err)
		}
		subs[i] = sub
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Leader.ProcessBatch(subs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "subs/s")
}

// BenchmarkPipelineThroughput measures the sharded aggregation pipeline:
// submissions/s as the number of concurrent leader sessions grows, for the
// Figure 4/5 workload (1,024-bit submissions, three servers). On an N-core
// host throughput should scale near-linearly in min(shards, N); compare the
// subs/s metric across the Shards sub-benchmarks. Run with:
//
//	go test -bench=PipelineThroughput -benchmem
func BenchmarkPipelineThroughput(b *testing.B) {
	const l = 1024
	scheme := prio.NewBitVector(l)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("Shards=%d", shards), func(b *testing.B) {
			cluster, client := benchDeployment(b, scheme, 3, prio.ModePrio)
			enc := bitEncoding(b, scheme, l)
			// A pool of pre-built submissions recycles client work, as in
			// throughputBench; the servers verify each Submit from scratch.
			pool := make([]*prio.Submission, 32)
			for i := range pool {
				sub, err := client.BuildSubmission(enc)
				if err != nil {
					b.Fatal(err)
				}
				pool[i] = sub
			}
			pl, err := prio.NewPipeline(cluster.Leader, prio.PipelineConfig{
				Shards:   shards,
				MaxBatch: 16,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer pl.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := pl.Submit(pool[i%len(pool)]); err != nil {
					b.Fatal(err)
				}
			}
			pl.Drain()
			b.StopTimer()
			if st := pl.Stats(); st.Failed > 0 {
				b.Fatalf("%d submissions failed", st.Failed)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "subs/s")
		})
	}
}

// BenchmarkTable2_SNIPClient measures SNIP proof generation for the 0/1
// vector statement of Table 2 (client side).
func BenchmarkTable2_SNIPClient(b *testing.B) {
	for _, m := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			scheme := prio.NewBitVector(m)
			_, client := benchDeployment(b, scheme, 5, prio.ModePrio)
			enc := bitEncoding(b, scheme, m)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.BuildSubmission(enc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2_NIZKClient measures the discrete-log NIZK client for the
// same statement (encrypt + prove per bit).
func BenchmarkTable2_NIZKClient(b *testing.B) {
	ks, err := nizk.GenerateKeyShare()
	if err != nil {
		b.Fatal(err)
	}
	joint := nizk.JointKey([]nizk.Point{ks.Pub})
	for _, m := range []int{16, 64} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			bits := make([]bool, m)
			for i := range bits {
				bits[i] = i%2 == 0
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := nizk.NewSubmission(joint, bits); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2_NIZKServer measures NIZK proof verification (server side).
func BenchmarkTable2_NIZKServer(b *testing.B) {
	ks, err := nizk.GenerateKeyShare()
	if err != nil {
		b.Fatal(err)
	}
	joint := nizk.JointKey([]nizk.Point{ks.Pub})
	for _, m := range []int{16, 64} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			bits := make([]bool, m)
			sub, err := nizk.NewSubmission(joint, bits)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !sub.Verify(joint) {
					b.Fatal("verify failed")
				}
			}
		})
	}
}

// BenchmarkTable2_SNARKEstimate times the cost-model calibration (the
// estimate itself is arithmetic; what costs is measuring the host's
// exponentiation speed, reported as the per-exp metric).
func BenchmarkTable2_SNARKEstimate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cost := snarkcost.MeasureExpCost(4)
		_ = snarkcost.EstimateProofTime(1024, 1024, 5, cost)
	}
}
