package prio_test

import (
	"fmt"
	"testing"

	"prio"
	"prio/internal/afe"
	"prio/internal/baseline"
	"prio/internal/core"
	"prio/internal/field"
	"prio/internal/nizk"
)

// BenchmarkTable3_Client measures client submission generation for L
// four-bit integers across field implementations (Table 3's field-size
// comparison; FP87/FP265 are the paper's exact field widths).
func BenchmarkTable3_Client(b *testing.B) {
	for _, l := range []int{10, 100} {
		benchTable3Client(b, "F64", field.NewF64(), l)
		benchTable3Client(b, "F128", field.NewF128(), l)
		benchTable3Client(b, "FP87", field.NewFP87(), l)
		benchTable3Client(b, "FP265", field.NewFP265(), l)
	}
}

// benchTable3Client runs one (field, L) cell of Table 3.
func benchTable3Client[Fd field.Field[E], E any](b *testing.B, name string, f Fd, l int) {
	b.Run(fmt.Sprintf("%s/L=%d", name, l), func(b *testing.B) {
		scheme := afe.NewIntVector(f, l, 4)
		pro, err := core.NewProtocol(core.Config[Fd, E]{
			Field: f, Scheme: scheme, Servers: 5, Mode: core.ModeSNIP, SnipReps: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		client, err := core.NewClient(pro, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		vals := make([]uint64, l)
		enc, err := scheme.Encode(vals)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := client.BuildSubmission(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig4 measures cluster throughput (5 servers) versus submission
// length, for the schemes of Figure 4. NIZK appears via the Table 2 server
// benchmark (per-submission verification is the bottleneck).
func BenchmarkFig4(b *testing.B) {
	for _, mode := range []struct {
		name string
		m    prio.Mode
	}{
		{"NoRobust", prio.ModeNoRobustness},
		{"Prio", prio.ModePrio},
		{"PrioMPC", prio.ModePrioMPC},
	} {
		for _, l := range []int{64, 1024} {
			b.Run(fmt.Sprintf("%s/L=%d", mode.name, l), func(b *testing.B) {
				scheme := prio.NewBitVector(l)
				cluster, client := benchDeployment(b, scheme, 5, mode.m)
				enc := bitEncoding(b, scheme, l)
				throughputBench(b, cluster, client, enc, 8)
			})
		}
	}
	for _, l := range []int{64, 1024} {
		b.Run(fmt.Sprintf("NoPriv/L=%d", l), func(b *testing.B) {
			srv, err := baseline.NewNoPrivServer(field.NewF64(), l)
			if err != nil {
				b.Fatal(err)
			}
			blob, err := baseline.BuildSubmission(field.NewF64(), srv.PublicKey(), make([]uint64, l))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := srv.Handle(baseline.MsgSubmit, blob); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "subs/s")
		})
	}
}

// BenchmarkFig5 measures throughput against server count for the
// 1024-question survey workload of Figure 5.
func BenchmarkFig5(b *testing.B) {
	const l = 1024
	for _, s := range []int{2, 5, 10} {
		b.Run(fmt.Sprintf("servers=%d", s), func(b *testing.B) {
			scheme := prio.NewBitVector(l)
			cluster, client := benchDeployment(b, scheme, s, prio.ModePrio)
			enc := bitEncoding(b, scheme, l)
			throughputBench(b, cluster, client, enc, 8)
		})
	}
}

// BenchmarkFig6 measures the bytes a non-leader server transmits per
// submission (Figure 6's y-axis, reported as the bytes/sub metric).
func BenchmarkFig6(b *testing.B) {
	for _, mode := range []struct {
		name string
		m    prio.Mode
	}{
		{"Prio", prio.ModePrio},
		{"PrioMPC", prio.ModePrioMPC},
	} {
		for _, l := range []int{16, 256, 1024} {
			b.Run(fmt.Sprintf("%s/L=%d", mode.name, l), func(b *testing.B) {
				scheme := prio.NewBitVector(l)
				cluster, client := benchDeployment(b, scheme, 5, mode.m)
				enc := bitEncoding(b, scheme, l)
				sub, err := client.BuildSubmission(enc)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := cluster.Leader.ProcessBatch([]*prio.Submission{sub}); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				st := cluster.Leader.PeerStats(1)
				b.ReportMetric(float64(st.BytesRecv)/float64(b.N), "bytes/sub")
			})
		}
	}
	for _, l := range []int{16, 256, 1024} {
		b.Run(fmt.Sprintf("NIZK/L=%d", l), func(b *testing.B) {
			// The NIZK transfer is deterministic; report it for the series.
			for i := 0; i < b.N; i++ {
				_ = nizk.SubmissionBytes(l)
			}
			b.ReportMetric(float64(nizk.SubmissionBytes(l)), "bytes/sub")
		})
	}
}

// BenchmarkFig7 measures client encoding time for the application scenarios
// of Figure 7 (Prio mode; the harness prints the NIZK/SNARK columns).
func BenchmarkFig7(b *testing.B) {
	apps := []struct {
		name   string
		scheme prio.Scheme
		enc    func(b *testing.B) []uint64
	}{
		{"Cell-Geneva", prio.NewIntVector(16, 4), func(b *testing.B) []uint64 {
			enc, err := prio.NewIntVector(16, 4).Encode(make([]uint64, 16))
			if err != nil {
				b.Fatal(err)
			}
			return enc
		}},
		{"Survey-CPI434", prio.NewBitVector(434), func(b *testing.B) []uint64 {
			return bitEncoding(b, prio.NewBitVector(434), 434)
		}},
		{"LinReg-BrCa", prio.NewLinRegUniform(30, 14), func(b *testing.B) []uint64 {
			enc, err := prio.NewLinRegUniform(30, 14).Encode(make([]uint64, 30), 0)
			if err != nil {
				b.Fatal(err)
			}
			return enc
		}},
	}
	for _, app := range apps {
		b.Run(app.name, func(b *testing.B) {
			_, client := benchDeployment(b, app.scheme, 5, prio.ModePrio)
			enc := app.enc(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.BuildSubmission(enc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8 measures client encoding time versus regression dimension
// (Figure 8).
func BenchmarkFig8(b *testing.B) {
	for _, d := range []int{2, 6, 12} {
		for _, mode := range []struct {
			name string
			m    prio.Mode
		}{
			{"NoRobust", prio.ModeNoRobustness},
			{"Prio", prio.ModePrio},
		} {
			b.Run(fmt.Sprintf("%s/d=%d", mode.name, d), func(b *testing.B) {
				scheme := prio.NewLinRegUniform(d, 14)
				_, client := benchDeployment(b, scheme, 5, mode.m)
				enc, err := scheme.Encode(make([]uint64, d), 0)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := client.BuildSubmission(enc); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable9 measures d-dimensional regression throughput (Table 9).
func BenchmarkTable9(b *testing.B) {
	for _, d := range []int{2, 6, 12} {
		for _, mode := range []struct {
			name string
			m    prio.Mode
		}{
			{"NoRobust", prio.ModeNoRobustness},
			{"Prio", prio.ModePrio},
		} {
			b.Run(fmt.Sprintf("%s/d=%d", mode.name, d), func(b *testing.B) {
				scheme := prio.NewLinRegUniform(d, 14)
				cluster, client := benchDeployment(b, scheme, 5, mode.m)
				enc, err := scheme.Encode(make([]uint64, d), 0)
				if err != nil {
					b.Fatal(err)
				}
				throughputBench(b, cluster, client, enc, 8)
			})
		}
	}
}
