// Package prio is a from-scratch Go implementation of Prio, the private,
// robust, and scalable aggregate-statistics system of Corrigan-Gibbs and
// Boneh (NSDI 2017).
//
// A Prio deployment consists of a small set of servers and many clients.
// Each client holds a private value; the servers jointly compute an
// aggregate statistic (a sum, histogram, regression model, …) while learning
// nothing else about any client's value as long as at least one server is
// honest. Malicious clients cannot skew the aggregate beyond misreporting
// their own value: every submission carries a secret-shared non-interactive
// proof (SNIP) that the servers verify cooperatively without seeing the
// data.
//
// # Quick start
//
// Count how many clients have a property, with two servers in one process:
//
//	scheme := prio.NewSum(1) // 1-bit integers: a private counter
//	pro, _ := prio.NewProtocol(prio.Config{
//		Scheme:  scheme,
//		Servers: 2,
//		Mode:    prio.ModePrio,
//		Seal:    true,
//	})
//	cluster, _ := prio.NewLocalCluster(pro)
//	client, _ := prio.NewClient(pro, cluster.PublicKeys(), nil)
//
//	enc, _ := scheme.Encode(1) // this client has the property
//	sub, _ := client.BuildSubmission(enc)
//	cluster.Leader.ProcessBatch([]*prio.Submission{sub})
//
//	agg, n, _ := cluster.Leader.Aggregate()
//	total, _ := scheme.Decode(agg, int(n))
//
// The public API fixes the field to F64, the 64-bit FFT-friendly
// "Goldilocks" prime, with two SNIP repetitions by default (≈2⁻⁹⁰ soundness).
// Deployments needing a single-test 2⁻¹²⁰ bound, or the paper's exact 87-bit
// and 265-bit evaluation fields, can instantiate the generic internal
// packages directly; every type below is an alias into them.
package prio

import (
	"crypto/tls"
	"io"

	"prio/internal/afe"
	"prio/internal/core"
	"prio/internal/field"
	"prio/internal/ingest"
	"prio/internal/sealbox"
	"prio/internal/transport"
)

// Element is a field element of the deployment field (F64).
type Element = uint64

// Field is the deployment field type.
type Field = field.F64

// DefaultField returns the deployment field instance.
func DefaultField() Field { return field.NewF64() }

// Mode selects how submissions are validated.
type Mode = core.Mode

// Deployment modes (Section 4, Section 4.4, and the no-robustness baseline
// of Section 6.1).
const (
	// ModePrio verifies client-generated SNIPs (full Prio).
	ModePrio = core.ModeSNIP
	// ModePrioMPC has servers evaluate Valid themselves from client-dealt,
	// SNIP-certified multiplication triples ("Prio-MPC").
	ModePrioMPC = core.ModeMPC
	// ModeNoRobustness skips validation entirely: private sums only.
	ModeNoRobustness = core.ModeNoRobust
)

// Config describes a deployment. Scheme and Servers are required.
type Config struct {
	// Scheme is the aggregate statistic to compute; see the New* AFE
	// constructors.
	Scheme Scheme
	// Servers is the number of aggregation servers (privacy holds if any
	// one is honest; the paper deploys five).
	Servers int
	// Mode selects validation (default ModePrio... the zero value is
	// ModeNoRobustness, so set it explicitly).
	Mode Mode
	// Reps is the SNIP soundness repetition count; 0 means 2, giving
	// ≈2⁻⁹⁰ soundness over F64.
	Reps int
	// Seal encrypts each share to its server (on by default in examples;
	// disable only for microbenchmarks).
	Seal bool
	// ChallengeEvery bounds how many submissions share one verification
	// challenge (Appendix I; 0 means 1024).
	ChallengeEvery int
	// DisableBatchVerify forces the per-submission verification exchange
	// instead of the default batched random-linear-combination check (see
	// docs/VERIFY.md). Both paths accept identical submission sets; the knob
	// exists for A/B measurement and as an operational escape hatch.
	DisableBatchVerify bool
}

// Core pipeline types, aliased from the generic engine.
type (
	// Protocol is the precomputed, shareable derivation of a Config.
	Protocol = core.Protocol[field.F64, uint64]
	// Client builds submissions.
	Client = core.Client[field.F64, uint64]
	// Submission is one client upload.
	Submission = core.Submission
	// Server is one aggregation server.
	Server = core.Server[field.F64, uint64]
	// Leader is the server coordinating verification.
	Leader = core.Leader[field.F64, uint64]
	// Cluster is an in-process deployment.
	Cluster = core.Cluster[field.F64, uint64]
	// ServerPublicKey encrypts client shares to one server.
	ServerPublicKey = sealbox.PublicKey
	// Pipeline is the sharded concurrent aggregation front-end: it fans a
	// stream of submissions out across several leader sessions that verify
	// batches in parallel (see docs/PIPELINE.md).
	Pipeline = core.Pipeline[field.F64, uint64]
	// PipelineConfig tunes a Pipeline (shard count, batch size, queue
	// depth); the zero value picks sensible defaults.
	PipelineConfig = core.PipelineConfig
	// ShardStats reports a Pipeline's merged (or per-shard) work counters.
	ShardStats = core.ShardStats
	// SubmitResult reports one submission's verification outcome.
	SubmitResult = core.SubmitResult
)

// Streaming ingest types, aliased from internal/ingest (see docs/INGEST.md).
type (
	// StreamSubmitter holds a persistent connection to the leader and
	// pipelines many submissions in flight, with asynchronous per-submission
	// acks matched by ID and credit-based backpressure.
	StreamSubmitter = ingest.StreamSubmitter
	// SubmitterConfig tunes a StreamSubmitter (TLS, ack callback).
	SubmitterConfig = ingest.SubmitterConfig
	// SubmitterStats counts a StreamSubmitter's submissions and outcomes.
	SubmitterStats = ingest.SubmitterStats
	// Ack is one asynchronous per-submission decision.
	Ack = ingest.Ack
	// AckStatus is the decision carried by an Ack.
	AckStatus = ingest.AckStatus
	// IngestServer terminates ingest streams in front of a Pipeline.
	IngestServer = ingest.Server
	// IngestConfig tunes an IngestServer (per-stream credits, intake queue).
	IngestConfig = ingest.Config
	// IngestStats counts an IngestServer's streams and outcomes.
	IngestStats = ingest.Stats
)

// Ack statuses, re-exported from internal/ingest.
const (
	StatusRejected = ingest.StatusRejected
	StatusAccepted = ingest.StatusAccepted
	StatusShed     = ingest.StatusShed
	StatusFailed   = ingest.StatusFailed
)

// NewProtocol validates a Config and precomputes the proof systems.
func NewProtocol(cfg Config) (*Protocol, error) {
	reps := cfg.Reps
	if reps == 0 {
		reps = 2
	}
	return core.NewProtocol(core.Config[field.F64, uint64]{
		Field:              field.NewF64(),
		Scheme:             cfg.Scheme,
		Servers:            cfg.Servers,
		Mode:               cfg.Mode,
		SnipReps:           reps,
		Seal:               cfg.Seal,
		ChallengeEvery:     cfg.ChallengeEvery,
		DisableBatchVerify: cfg.DisableBatchVerify,
	})
}

// NewLocalCluster starts all servers of the deployment in this process,
// wired over byte-counted in-memory channels.
func NewLocalCluster(pro *Protocol) (*Cluster, error) {
	return core.NewLocalCluster(pro)
}

// NewClient builds a submission client. keys must hold each server's public
// key (from Cluster.PublicKeys or FetchPublicKey) when cfg.Seal is set. rnd
// defaults to crypto/rand.
func NewClient(pro *Protocol, keys []*ServerPublicKey, rnd io.Reader) (*Client, error) {
	return core.NewClient(pro, keys, rnd)
}

// NewServer constructs server idx of a networked deployment with a fresh
// key pair; serve its Handler with ListenAndServe.
func NewServer(pro *Protocol, idx int) (*Server, error) {
	return core.NewServer[field.F64, uint64](pro, idx, nil)
}

// Listener accepts protocol connections for a Server.
type Listener = transport.Server

// ListenAndServe exposes a server on a plaintext TCP address (":0" picks a
// free port). Pass the returned listener's Addr to peers and clients.
// Production deployments should prefer ListenAndServeTLS (§6.2: the paper's
// servers always speak TLS); cmd/prio-server defaults to it.
func ListenAndServe(addr string, srv *Server) (*Listener, error) {
	return ListenAndServeTLS(addr, srv, nil)
}

// ListenAndServeTLS exposes a server on a TCP address, requiring TLS when
// tlsCfg is non-nil (see transport.LoadServerTLS for building one from a
// certificate pair or a self-signed fallback).
func ListenAndServeTLS(addr string, srv *Server, tlsCfg *tls.Config) (*Listener, error) {
	return transport.Listen(addr, tlsCfg, srv.Handler())
}

// ConnectLeader makes srv the deployment leader over plaintext TCP; see
// ConnectLeaderTLS.
func ConnectLeader(srv *Server, addrs []string) (*Leader, error) {
	return ConnectLeaderTLS(srv, addrs, nil)
}

// ConnectLeaderTLS makes srv the deployment leader, connecting to every
// other server by address (with TLS when tlsCfg is non-nil). addrs must have
// one entry per server index; the entry for srv itself is ignored (a
// loopback is used). Peers ride the streamed rounds subprotocol: one
// persistent pipelined connection each, with correlation IDs matching
// replies to in-flight calls, so concurrent leader sessions (NewPipeline)
// overlap their verification rounds on the wire instead of queueing behind
// one another. Connections are dialed lazily on first use and re-dialed
// after transport failures, so boot order across the deployment's servers
// does not matter. ConnectLeaderLegacyTLS keeps the request/response path.
func ConnectLeaderTLS(srv *Server, addrs []string, tlsCfg *tls.Config) (*Leader, error) {
	peers := make([]transport.Peer, len(addrs))
	for i, addr := range addrs {
		if i == srv.Index() {
			peers[i] = &transport.LoopbackPeer{Handler: srv.Handler()}
			continue
		}
		peers[i] = transport.NewStreamPeer(addr, tlsCfg)
	}
	return core.NewLeader(srv, peers)
}

// ConnectLeaderLegacyTLS is ConnectLeaderTLS on the pre-streaming transport:
// eagerly dialed request/response connections wrapped in request coalescers,
// so concurrent leader sessions merge their in-flight rounds into batched
// frames. It exists as the -legacy-rpc escape hatch (and as the comparison
// baseline for BenchmarkStreamedRounds); both paths produce identical accept
// sets.
func ConnectLeaderLegacyTLS(srv *Server, addrs []string, tlsCfg *tls.Config) (*Leader, error) {
	peers := make([]transport.Peer, len(addrs))
	for i, addr := range addrs {
		if i == srv.Index() {
			peers[i] = &transport.LoopbackPeer{Handler: srv.Handler()}
			continue
		}
		p, err := transport.Dial(addr, tlsCfg)
		if err != nil {
			return nil, err
		}
		peers[i] = transport.NewCoalescer(p)
	}
	return core.NewLeader(srv, peers)
}

// ServeIngest registers the streaming ingest subsystem on a leader's
// listener: stream opens on ln are terminated by a new IngestServer feeding
// pl with credit-based backpressure. Returns the ingest server for stats
// and shutdown. Clients connect with OpenStream.
func ServeIngest(ln *Listener, pl *Pipeline, cfg IngestConfig) *IngestServer {
	ing := ingest.NewServer(pl, cfg)
	ln.OnStream(ing.Handler())
	return ing
}

// OpenStream dials a leader's streaming ingest endpoint. The returned
// StreamSubmitter pipelines submissions over the one connection until the
// server's credit window fills; acks arrive asynchronously via
// cfg.OnAck and Wait drains them.
func OpenStream(addr string, cfg SubmitterConfig) (*StreamSubmitter, error) {
	return ingest.Dial(addr, cfg)
}

// NewPipeline builds a sharded aggregation pipeline in front of leader's
// server set: cfg.Shards concurrent leader sessions verify queued
// submissions in parallel and the servers' accumulators merge their
// results. Submit feeds it; Aggregate drains and publishes.
func NewPipeline(leader *Leader, cfg PipelineConfig) (*Pipeline, error) {
	return core.NewPipeline(leader, cfg)
}

// FetchPublicKey retrieves a remote server's sealbox key over plaintext
// TCP; see FetchPublicKeyTLS.
func FetchPublicKey(addr string) (*ServerPublicKey, error) {
	return FetchPublicKeyTLS(addr, nil)
}

// FetchPublicKeyTLS retrieves a remote server's sealbox key, with TLS when
// tlsCfg is non-nil.
func FetchPublicKeyTLS(addr string, tlsCfg *tls.Config) (*ServerPublicKey, error) {
	p, err := transport.Dial(addr, tlsCfg)
	if err != nil {
		return nil, err
	}
	defer p.Close()
	raw, err := p.Call(core.MsgPublicKey, nil)
	if err != nil {
		return nil, err
	}
	return sealbox.ParsePublicKey(raw)
}

// Scheme is the interface all field-based aggregate statistics implement;
// see the typed constructors in afe.go for the concrete statistics.
type Scheme = afe.Scheme[uint64]
