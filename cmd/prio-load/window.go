// Per-window ledger: with -window set to the servers' collection width,
// prio-load prints one line per closed window with the ack deltas that
// landed in it, so a run against a windowed deployment shows which
// submissions each published window should contain.
package main

import (
	"flag"
	"fmt"
	"sync/atomic"
	"time"

	"prio/internal/window"
)

var loadWindow = flag.Duration("window", 0, "print a per-window ack ledger line each collection window (match the servers' -window)")

// startWindowLedger samples the collector at every window boundary and
// prints the delta. Returns a stop function that flushes the final partial
// window.
func startWindowLedger(col *collector) (stop func()) {
	width := *loadWindow
	if width <= 0 {
		return func() {}
	}
	stopCh := make(chan struct{})
	done := make(chan struct{})
	var last [4]uint64
	var lastAcked uint64
	line := func(id uint64, final bool) {
		cur := [4]uint64{
			atomic.LoadUint64(&col.accepted),
			atomic.LoadUint64(&col.rejected),
			atomic.LoadUint64(&col.shed),
			atomic.LoadUint64(&col.failed),
		}
		acked := col.latencies.Snapshot().Count
		tag := "closed"
		if final {
			tag = "partial"
		}
		fmt.Printf("window %d %s: acked=%d accepted=%d rejected=%d shed=%d failed=%d\n",
			id, tag, acked-lastAcked, cur[0]-last[0], cur[1]-last[1], cur[2]-last[2], cur[3]-last[3])
		last, lastAcked = cur, acked
	}
	go func() {
		defer close(done)
		for {
			now := time.Now()
			id := window.ID(now, width)
			t := time.NewTimer(window.EndOf(id, width).Sub(now) + 2*time.Millisecond)
			select {
			case <-stopCh:
				t.Stop()
				line(window.ID(time.Now(), width), true)
				return
			case <-t.C:
				line(id, false)
			}
		}
	}()
	return func() {
		close(stopCh)
		<-done
	}
}
