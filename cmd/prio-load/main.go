// Command prio-load floods a Prio deployment with streamed submissions and
// reports throughput plus ack-latency percentiles — the client-side half of
// the streaming ingest subsystem (internal/ingest), for any statistic
// prio.ParseScheme understands.
//
// Two generator disciplines:
//
//   - Closed loop (default): each stream keeps its credit window full, so
//     offered load tracks whatever the servers sustain. Measures capacity.
//   - Open loop (-rate): submissions are injected at a fixed aggregate rate
//     regardless of acks, as an external client population would. Measures
//     behavior at a given load: latency stays flat until the deployment
//     saturates, then the credit window makes queueing visible here rather
//     than as server memory.
//
// Every stream rides the failover layer, so a shed ack (transient
// backpressure) or a failed ack is retried up to -max-attempts rather than
// booked as terminal loss; the printed ledger separates those retries
// (shed_retried=, failed_retried=) from real outcomes and closes as
// submitted == accepted + rejected + abandoned.
//
// Example against a local three-server deployment:
//
//	prio-load -peers localhost:7000,localhost:7001,localhost:7002 \
//	    -scheme sum8 -streams 4 -duration 10s
//
// Submissions are pre-built (the paper's load generators do the same) so
// client-side proof generation does not cap the offered rate; -prebuild
// sizes the recycled pool.
package main

import (
	"crypto/tls"
	"flag"
	"fmt"
	"log"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"prio"
	"prio/internal/cli"
	"prio/internal/ingest"
	"prio/internal/telemetry"
	"prio/internal/transport"
)

var (
	peersFlag  = flag.String("peers", "", "comma-separated server addresses in index order")
	schemeFlag = flag.String("scheme", "sum8", "statistic spec (must match the servers)")
	modeFlag   = flag.String("mode", "prio", "validation mode (must match the servers)")
	value      = flag.String("value", "", "private value to submit (default: a scheme-appropriate constant)")
	duration   = flag.Duration("duration", 10*time.Second, "how long to generate load")
	streams    = flag.Int("streams", 4, "concurrent ingest streams (connections)")
	rate       = flag.Float64("rate", 0, "open-loop aggregate submissions/s (0 = closed loop)")
	prebuild   = flag.Int("prebuild", 256, "pre-built submissions recycled by the generators")
	useTLS     = flag.Bool("tls", true, "dial the servers over TLS")
	tlsCA      = flag.String("tls-ca", "", "PEM bundle to authenticate the servers against")
)

// collector accumulates final ack outcomes and latencies across all streams.
// Latencies land in a bounded-memory log-linear histogram (the same one
// the servers export), so a long high-rate run costs 15 KB instead of one
// slice entry per ack, and reported percentiles are upper bounds within
// ~3.1% of exact.
//
// Only terminal decisions reach the collector: the failover layer retries
// shed and failed acks internally, so the shed/failed columns here count
// abandoned submissions, not transient backpressure.
type collector struct {
	latencies *telemetry.DurationHistogram

	accepted uint64
	rejected uint64
	shed     uint64
	failed   uint64
}

func (c *collector) onAck(a prio.Ack) {
	switch a.Status {
	case prio.StatusAccepted:
		atomic.AddUint64(&c.accepted, 1)
	case prio.StatusRejected:
		atomic.AddUint64(&c.rejected, 1)
	case prio.StatusShed:
		atomic.AddUint64(&c.shed, 1)
	default:
		atomic.AddUint64(&c.failed, 1)
	}
	c.latencies.Observe(a.Latency)
}

// buildPool fetches every server's key and pre-builds the recycled
// submission pool the generators cycle through.
func buildPool(addrs []string, scheme prio.Scheme, mode prio.Mode, tlsCfg *tls.Config) []*prio.Submission {
	pro, err := prio.NewProtocol(prio.Config{Scheme: scheme, Servers: len(addrs), Mode: mode, Seal: true})
	if err != nil {
		log.Fatal(err)
	}
	keys := make([]*prio.ServerPublicKey, len(addrs))
	for i, addr := range addrs {
		k, err := prio.FetchPublicKeyTLS(addr, tlsCfg)
		if err != nil {
			log.Fatalf("prio-load: fetching key from %s: %v", addr, err)
		}
		keys[i] = k
	}
	client, err := prio.NewClient(pro, keys, nil)
	if err != nil {
		log.Fatal(err)
	}
	var enc []uint64
	if *value != "" {
		enc, err = cli.EncodeValue(scheme, *value)
	} else {
		enc, err = cli.DefaultEncoding(scheme)
	}
	if err != nil {
		log.Fatal(err)
	}
	pool := make([]*prio.Submission, *prebuild)
	for i := range pool {
		pool[i], err = client.BuildSubmission(enc)
		if err != nil {
			log.Fatal(err)
		}
	}
	return pool
}

func main() {
	flag.Parse()
	cli.InitLog()
	if *peersFlag == "" && *rosterFlag == "" {
		log.Fatal("prio-load: -peers or -roster is required")
	}
	scheme, err := prio.ParseScheme(*schemeFlag)
	if err != nil {
		log.Fatal(err)
	}
	mode, err := cli.ParseMode(*modeFlag)
	if err != nil {
		log.Fatal(err)
	}
	var tlsCfg *tls.Config
	if *useTLS {
		tlsCfg, err = transport.ClientTLS(*tlsCA)
		if err != nil {
			log.Fatal(err)
		}
	}
	if *rosterFlag != "" {
		runRoster(scheme, mode, tlsCfg)
		return
	}
	peers := strings.Split(*peersFlag, ",")
	pool := buildPool(peers, scheme, mode, tlsCfg)

	// Fixed-address dial: plain mode always re-targets the same leader, but
	// still rides the failover layer so a shed ack or a dropped connection
	// costs a retry, not a ledger entry.
	leader := peers[0]
	dial := func(onAck func(ingest.Ack)) (*ingest.StreamSubmitter, error) {
		return ingest.Dial(leader, ingest.SubmitterConfig{TLS: tlsCfg, OnAck: onAck})
	}
	runLoad(dial, pool, fmt.Sprintf("%d streams to %s, %s scheme", *streams, leader, scheme.Name()))
}

// runLoad drives the generators over failover-aware streams and prints the
// closed loss ledger. dial opens one stream to the (possibly re-resolved)
// leader; the failover layer retries shed and failed acks up to
// -max-attempts, so the printed shed/failed columns report real loss rather
// than transient backpressure, and retries appear on their own
// shed_retried=/failed_retried= line.
func runLoad(dial func(onAck func(ingest.Ack)) (*ingest.StreamSubmitter, error), pool []*prio.Submission, label string) {
	col := &collector{latencies: &telemetry.DurationHistogram{H: telemetry.NewHistogram()}}
	subs := make([]*ingest.FailoverSubmitter, *streams)
	var err error
	for i := range subs {
		subs[i], err = ingest.NewFailoverSubmitter(ingest.FailoverConfig{
			Dial:        dial,
			MaxAttempts: *maxAttempts,
			OnFinal:     func(a ingest.Ack) { col.onAck(a) },
		})
		if err != nil {
			log.Fatalf("prio-load: stream %d: %v", i, err)
		}
		defer subs[i].Close()
	}
	discipline := "closed"
	if *rate > 0 {
		discipline = fmt.Sprintf("open @ %.0f subs/s", *rate)
	}
	log.Printf("prio-load: %s, %s loop, %v", label, discipline, *duration)

	stopLedger := startWindowLedger(col)

	// Generate. Each stream has one generator goroutine; the open loop adds
	// a token feed shared by all of them.
	deadline := time.Now().Add(*duration)
	var overrun uint64 // open loop: tokens dropped because every stream was window-blocked
	var tokens chan struct{}
	if *rate > 0 {
		tokens = make(chan struct{}, 1024)
		interval := time.Duration(float64(time.Second) / *rate)
		if interval <= 0 {
			interval = time.Microsecond
		}
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for time.Now().Before(deadline) {
				<-tick.C
				select {
				case tokens <- struct{}{}:
				default:
					atomic.AddUint64(&overrun, 1)
				}
			}
			close(tokens)
		}()
	}
	var wg sync.WaitGroup
	start := time.Now()
	for i, s := range subs {
		wg.Add(1)
		go func(i int, s *ingest.FailoverSubmitter) {
			defer wg.Done()
			n := i // stagger the pool cursor across streams
			for time.Now().Before(deadline) {
				if tokens != nil {
					if _, ok := <-tokens; !ok {
						return
					}
				}
				if err := s.Submit(pool[n%len(pool)]); err != nil {
					log.Printf("prio-load: stream %d gave up: %v", i, err)
					return
				}
				n++
			}
		}(i, s)
	}
	wg.Wait()
	var total ingest.FailoverStats
	for _, s := range subs {
		s.Wait()
		st := s.Stats()
		total.Submitted += st.Submitted
		total.Accepted += st.Accepted
		total.Rejected += st.Rejected
		total.ShedRetried += st.ShedRetried
		total.FailedRetried += st.FailedRetried
		total.Failovers += st.Failovers
		total.Redials += st.Redials
		total.Abandoned += st.Abandoned
	}
	elapsed := time.Since(start)
	stopLedger()

	lat := col.latencies.Snapshot()
	fmt.Printf("submitted=%d acked=%d accepted=%d rejected=%d shed=0 failed=%d\n",
		total.Submitted, total.Accepted+total.Rejected,
		total.Accepted, total.Rejected, total.Abandoned)
	fmt.Printf("shed_retried=%d failed_retried=%d failovers=%d redials=%d abandoned=%d\n",
		total.ShedRetried, total.FailedRetried, total.Failovers, total.Redials, total.Abandoned)
	if total.Submitted == total.Accepted+total.Rejected+total.Abandoned {
		fmt.Println("ledger=closed")
	} else {
		fmt.Printf("ledger=OPEN (submitted=%d != accepted+rejected+abandoned=%d)\n",
			total.Submitted, total.Accepted+total.Rejected+total.Abandoned)
	}
	fmt.Printf("throughput=%.1f subs/s over %.2fs\n",
		float64(total.Accepted+total.Rejected)/elapsed.Seconds(), elapsed.Seconds())
	fmt.Printf("ack latency p50=%v p95=%v p99=%v\n",
		time.Duration(lat.Quantile(0.50)).Round(10*time.Microsecond),
		time.Duration(lat.Quantile(0.95)).Round(10*time.Microsecond),
		time.Duration(lat.Quantile(0.99)).Round(10*time.Microsecond))
	if ov := atomic.LoadUint64(&overrun); ov > 0 {
		fmt.Printf("open-loop overrun: %d tokens dropped (deployment slower than -rate)\n", ov)
	}
}
