package main

import (
	"crypto/tls"
	"flag"
	"fmt"
	"log"
	"time"

	"prio"
	"prio/internal/cluster"
	"prio/internal/ingest"
)

var (
	rosterFlag  = flag.String("roster", "", "roster file or comma-separated member addresses; enables failover mode (streams re-target the leader)")
	maxAttempts = flag.Int("max-attempts", 6, "delivery attempts per submission before abandoning it")
)

// runRoster is the failover-aware load generator: it resolves the leader
// through the cluster roster and feeds runLoad a dial that re-resolves on
// every call, so after a failover the fresh stream lands on the successor.
func runRoster(scheme prio.Scheme, mode prio.Mode, tlsCfg *tls.Config) {
	ros, err := cluster.LoadOrParseRoster(*rosterFlag)
	if err != nil {
		log.Fatalf("prio-load: bad -roster: %v", err)
	}
	pool := buildPool(ros.Addrs, scheme, mode, tlsCfg)

	// dialLeader re-resolves on every call: after a failover the roster
	// answers with the successor and the fresh stream lands there.
	dialLeader := func(onAck func(ingest.Ack)) (*ingest.StreamSubmitter, error) {
		_, addr, err := cluster.Resolve(ros, cluster.ResolveConfig{TLS: tlsCfg, Timeout: 2 * time.Second})
		if err != nil {
			return nil, err
		}
		return ingest.Dial(addr, ingest.SubmitterConfig{TLS: tlsCfg, OnAck: onAck})
	}
	runLoad(dialLeader, pool, fmt.Sprintf("%d failover streams across %d members, %s scheme",
		*streams, ros.N(), scheme.Name()))
}
