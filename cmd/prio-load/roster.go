package main

import (
	"crypto/tls"
	"flag"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"prio"
	"prio/internal/cli"
	"prio/internal/cluster"
	"prio/internal/ingest"
	"prio/internal/telemetry"
)

var (
	rosterFlag  = flag.String("roster", "", "roster file or comma-separated member addresses; enables failover mode (streams re-target the leader)")
	maxAttempts = flag.Int("max-attempts", 6, "delivery attempts per submission before abandoning it (roster mode)")
)

// runRoster is the failover-aware load generator: it resolves the leader
// through the cluster roster, streams through FailoverSubmitters that
// re-dial on leader death and retry shed or failed submissions, and reports
// a closed loss ledger — every submission ends accepted, rejected, or
// explicitly abandoned.
func runRoster(scheme prio.Scheme, mode prio.Mode, tlsCfg *tls.Config) {
	ros, err := cluster.LoadOrParseRoster(*rosterFlag)
	if err != nil {
		log.Fatalf("prio-load: bad -roster: %v", err)
	}
	pro, err := prio.NewProtocol(prio.Config{Scheme: scheme, Servers: ros.N(), Mode: mode, Seal: true})
	if err != nil {
		log.Fatal(err)
	}
	keys := make([]*prio.ServerPublicKey, ros.N())
	for i, addr := range ros.Addrs {
		k, err := prio.FetchPublicKeyTLS(addr, tlsCfg)
		if err != nil {
			log.Fatalf("prio-load: fetching key from %s: %v", addr, err)
		}
		keys[i] = k
	}
	client, err := prio.NewClient(pro, keys, nil)
	if err != nil {
		log.Fatal(err)
	}
	var enc []uint64
	if *value != "" {
		enc, err = cli.EncodeValue(scheme, *value)
	} else {
		enc, err = cli.DefaultEncoding(scheme)
	}
	if err != nil {
		log.Fatal(err)
	}
	pool := make([]*prio.Submission, *prebuild)
	for i := range pool {
		pool[i], err = client.BuildSubmission(enc)
		if err != nil {
			log.Fatal(err)
		}
	}

	// dialLeader re-resolves on every call: after a failover the roster
	// answers with the successor and the fresh stream lands there.
	dialLeader := func(onAck func(ingest.Ack)) (*ingest.StreamSubmitter, error) {
		_, addr, err := cluster.Resolve(ros, cluster.ResolveConfig{TLS: tlsCfg, Timeout: 2 * time.Second})
		if err != nil {
			return nil, err
		}
		return ingest.Dial(addr, ingest.SubmitterConfig{TLS: tlsCfg, OnAck: onAck})
	}

	col := &collector{latencies: &telemetry.DurationHistogram{H: telemetry.NewHistogram()}}
	subs := make([]*ingest.FailoverSubmitter, *streams)
	for i := range subs {
		subs[i], err = ingest.NewFailoverSubmitter(ingest.FailoverConfig{
			Dial:        dialLeader,
			MaxAttempts: *maxAttempts,
			OnFinal:     func(a ingest.Ack) { col.onAck(a) },
		})
		if err != nil {
			log.Fatalf("prio-load: stream %d: %v", i, err)
		}
		defer subs[i].Close()
	}
	discipline := "closed"
	if *rate > 0 {
		discipline = fmt.Sprintf("open @ %.0f subs/s", *rate)
	}
	log.Printf("prio-load: %d failover streams across %d members, %s loop, %s scheme, %v",
		*streams, ros.N(), discipline, scheme.Name(), *duration)

	stopLedger := startWindowLedger(col)
	deadline := time.Now().Add(*duration)
	var tokens chan struct{}
	var overrun uint64
	if *rate > 0 {
		tokens = make(chan struct{}, 1024)
		interval := time.Duration(float64(time.Second) / *rate)
		if interval <= 0 {
			interval = time.Microsecond
		}
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for time.Now().Before(deadline) {
				<-tick.C
				select {
				case tokens <- struct{}{}:
				default:
					atomic.AddUint64(&overrun, 1)
				}
			}
			close(tokens)
		}()
	}
	var wg sync.WaitGroup
	start := time.Now()
	for i, s := range subs {
		wg.Add(1)
		go func(i int, s *ingest.FailoverSubmitter) {
			defer wg.Done()
			n := i
			for time.Now().Before(deadline) {
				if tokens != nil {
					if _, ok := <-tokens; !ok {
						return
					}
				}
				if err := s.Submit(pool[n%len(pool)]); err != nil {
					log.Printf("prio-load: stream %d gave up: %v", i, err)
					return
				}
				n++
			}
		}(i, s)
	}
	wg.Wait()
	var total ingest.FailoverStats
	for _, s := range subs {
		s.Wait()
		st := s.Stats()
		total.Submitted += st.Submitted
		total.Accepted += st.Accepted
		total.Rejected += st.Rejected
		total.ShedRetried += st.ShedRetried
		total.FailedRetried += st.FailedRetried
		total.Failovers += st.Failovers
		total.Redials += st.Redials
		total.Abandoned += st.Abandoned
	}
	elapsed := time.Since(start)
	stopLedger()

	lat := col.latencies.Snapshot()
	fmt.Printf("submitted=%d acked=%d accepted=%d rejected=%d shed=0 failed=%d\n",
		total.Submitted, total.Accepted+total.Rejected,
		total.Accepted, total.Rejected, total.Abandoned)
	fmt.Printf("shed_retried=%d failed_retried=%d failovers=%d redials=%d abandoned=%d\n",
		total.ShedRetried, total.FailedRetried, total.Failovers, total.Redials, total.Abandoned)
	if total.Submitted == total.Accepted+total.Rejected+total.Abandoned {
		fmt.Println("ledger=closed")
	} else {
		fmt.Printf("ledger=OPEN (submitted=%d != accepted+rejected+abandoned=%d)\n",
			total.Submitted, total.Accepted+total.Rejected+total.Abandoned)
	}
	fmt.Printf("throughput=%.1f subs/s over %.2fs\n",
		float64(total.Accepted+total.Rejected)/elapsed.Seconds(), elapsed.Seconds())
	fmt.Printf("ack latency p50=%v p95=%v p99=%v\n",
		time.Duration(lat.Quantile(0.50)).Round(10*time.Microsecond),
		time.Duration(lat.Quantile(0.95)).Round(10*time.Microsecond),
		time.Duration(lat.Quantile(0.99)).Round(10*time.Microsecond))
	if ov := atomic.LoadUint64(&overrun); ov > 0 {
		fmt.Printf("open-loop overrun: %d tokens dropped (deployment slower than -rate)\n", ov)
	}
}
