// Operator endpoint: a second listener serving the telemetry registry and
// debug handlers, separate from the protocol port so scrapes and pprof
// sessions never contend with verification traffic.
package main

import (
	"crypto/tls"
	"errors"
	"log/slog"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"prio/internal/telemetry"
)

// aggregatesHandler is the /aggregates route, installed late: the admin
// endpoint starts before the protocol stack (and thus before the window
// service) exists, so the route answers 404 until windowing comes up.
var aggregatesHandler atomic.Pointer[http.Handler]

func setAggregatesHandler(h http.Handler) { aggregatesHandler.Store(&h) }

// startAdmin serves /metrics, /healthz, /aggregates, /debug/vars,
// /debug/pprof/*, and /debug/trace on addr. A non-nil tlsCfg wraps the listener in TLS (the
// same material as the protocol port); nil serves plaintext.
func startAdmin(addr string, tlsCfg *tls.Config, tr *telemetry.Tracer) (net.Listener, error) {
	telemetry.RegisterRuntimeMetrics(telemetry.Default)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tlsCfg != nil {
		ln = tls.NewListener(ln, tlsCfg)
	}
	mux := http.NewServeMux()
	mux.Handle("/", telemetry.AdminHandler(telemetry.Default, tr))
	mux.HandleFunc("/aggregates", func(w http.ResponseWriter, r *http.Request) {
		if h := aggregatesHandler.Load(); h != nil {
			(*h).ServeHTTP(w, r)
			return
		}
		http.Error(w, "windowed aggregation disabled (start with -window)", http.StatusNotFound)
	})
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		if err := srv.Serve(ln); err != nil &&
			!errors.Is(err, http.ErrServerClosed) && !errors.Is(err, net.ErrClosed) {
			slog.Warn("admin endpoint stopped", "err", err)
		}
	}()
	return ln, nil
}
