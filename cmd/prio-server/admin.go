// Operator endpoint: a second listener serving the telemetry registry and
// debug handlers, separate from the protocol port so scrapes and pprof
// sessions never contend with verification traffic.
package main

import (
	"crypto/tls"
	"errors"
	"log/slog"
	"net"
	"net/http"
	"time"

	"prio/internal/telemetry"
)

// startAdmin serves /metrics, /healthz, /debug/vars, /debug/pprof/*, and
// /debug/trace on addr. A non-nil tlsCfg wraps the listener in TLS (the
// same material as the protocol port); nil serves plaintext.
func startAdmin(addr string, tlsCfg *tls.Config, tr *telemetry.Tracer) (net.Listener, error) {
	telemetry.RegisterRuntimeMetrics(telemetry.Default)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tlsCfg != nil {
		ln = tls.NewListener(ln, tlsCfg)
	}
	srv := &http.Server{
		Handler:           telemetry.AdminHandler(telemetry.Default, tr),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		if err := srv.Serve(ln); err != nil &&
			!errors.Is(err, http.ErrServerClosed) && !errors.Is(err, net.ErrClosed) {
			slog.Warn("admin endpoint stopped", "err", err)
		}
	}()
	return ln, nil
}
