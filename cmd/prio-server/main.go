// Command prio-server runs one Prio aggregation server over TCP.
//
// Every server in a deployment starts with the same statistic configuration
// and its own index. The server with index 0 additionally acts as leader: it
// accepts client submissions, relays sealed shares, drives verification in
// batches, and prints the decoded aggregate on an interval. Example
// three-server deployment of a 434-question survey:
//
//	prio-server -index 2 -listen :7002 -servers 3 -scheme bits434
//	prio-server -index 1 -listen :7001 -servers 3 -scheme bits434
//	prio-server -index 0 -listen :7000 -scheme bits434 \
//	    -peers localhost:7000,localhost:7001,localhost:7002 \
//	    -batch 16 -publish-every 30s
//
// Clients submit with prio-client pointed at the leader.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/big"
	"strings"
	"sync"
	"time"

	"prio"
	"prio/internal/core"
	"prio/internal/transport"
)

var (
	index        = flag.Int("index", 0, "this server's index (0 = leader)")
	listen       = flag.String("listen", ":7000", "address to listen on")
	peersFlag    = flag.String("peers", "", "comma-separated server addresses in index order (leader only)")
	schemeFlag   = flag.String("scheme", "sum8", "statistic spec (see prio.ParseScheme)")
	servers      = flag.Int("servers", 0, "server count (default: inferred from -peers)")
	modeFlag     = flag.String("mode", "prio", "validation mode: prio, prio-mpc, no-robust")
	batch        = flag.Int("batch", 16, "submissions per verification batch (leader)")
	publishEvery = flag.Duration("publish-every", 30*time.Second, "aggregate publication interval (leader)")
	once         = flag.Bool("once", false, "leader: publish once after the first interval and exit (for scripting)")
)

func main() {
	flag.Parse()
	scheme, err := prio.ParseScheme(*schemeFlag)
	if err != nil {
		log.Fatal(err)
	}
	var peers []string
	if *peersFlag != "" {
		peers = strings.Split(*peersFlag, ",")
	}
	n := *servers
	if n == 0 {
		n = len(peers)
	}
	if n == 0 {
		log.Fatal("prio-server: set -servers or -peers")
	}
	mode, err := parseMode(*modeFlag)
	if err != nil {
		log.Fatal(err)
	}
	pro, err := prio.NewProtocol(prio.Config{Scheme: scheme, Servers: n, Mode: mode, Seal: true})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := prio.NewServer(pro, *index)
	if err != nil {
		log.Fatal(err)
	}

	if *index != 0 {
		ln, err := prio.ListenAndServe(*listen, srv)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("server %d (%s, %s) listening on %s", *index, scheme.Name(), mode, ln.Addr())
		select {} // serve until killed
	}

	// Leader path: wrap the protocol handler so MsgSubmit enqueues client
	// submissions, then connect to the peer servers.
	if len(peers) != n {
		log.Fatalf("prio-server: leader needs -peers with %d entries", n)
	}
	ld := &leaderLoop{scheme: scheme}
	base := srv.Handler()
	ln, err := transport.Listen(*listen, nil, func(msgType byte, payload []byte) ([]byte, error) {
		if msgType != core.MsgSubmit {
			return base(msgType, payload)
		}
		sub, err := core.UnmarshalSubmission(payload)
		if err != nil {
			return nil, err
		}
		if ready := ld.enqueue(sub, *batch); ready {
			go ld.flush()
		}
		return nil, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	time.Sleep(500 * time.Millisecond) // let peers come up
	leader, err := prio.ConnectLeader(srv, peers)
	if err != nil {
		log.Fatal(err)
	}
	ld.setLeader(leader)
	log.Printf("leader (%s, %s) listening on %s, %d servers", scheme.Name(), mode, ln.Addr(), n)

	ticker := time.NewTicker(*publishEvery)
	defer ticker.Stop()
	for range ticker.C {
		ld.flush()
		ld.publish()
		if *once {
			return
		}
	}
}

func parseMode(s string) (prio.Mode, error) {
	switch s {
	case "prio":
		return prio.ModePrio, nil
	case "prio-mpc":
		return prio.ModePrioMPC, nil
	case "no-robust":
		return prio.ModeNoRobustness, nil
	default:
		return 0, fmt.Errorf("prio-server: unknown mode %q", s)
	}
}

// leaderLoop buffers client submissions and verifies them in batches.
type leaderLoop struct {
	scheme prio.Scheme

	mu      sync.Mutex
	leader  *prio.Leader
	pending []*prio.Submission
}

func (ld *leaderLoop) setLeader(l *prio.Leader) {
	ld.mu.Lock()
	ld.leader = l
	ld.mu.Unlock()
}

// enqueue buffers one submission and reports whether a batch is ready.
func (ld *leaderLoop) enqueue(sub *prio.Submission, batch int) bool {
	ld.mu.Lock()
	defer ld.mu.Unlock()
	ld.pending = append(ld.pending, sub)
	return len(ld.pending) >= batch && ld.leader != nil
}

// flush verifies all buffered submissions.
func (ld *leaderLoop) flush() {
	ld.mu.Lock()
	subs := ld.pending
	ld.pending = nil
	leader := ld.leader
	ld.mu.Unlock()
	if len(subs) == 0 || leader == nil {
		return
	}
	accepts, err := leader.ProcessBatch(subs)
	if err != nil {
		log.Printf("batch error: %v", err)
		return
	}
	ok := 0
	for _, a := range accepts {
		if a {
			ok++
		}
	}
	log.Printf("batch: %d accepted, %d rejected", ok, len(subs)-ok)
}

// publish prints the decoded aggregate.
func (ld *leaderLoop) publish() {
	ld.mu.Lock()
	leader := ld.leader
	ld.mu.Unlock()
	if leader == nil {
		return
	}
	agg, n, err := leader.Aggregate()
	if err != nil {
		log.Printf("aggregate error: %v", err)
		return
	}
	fmt.Printf("aggregate over %d clients: %s\n", n, describeAggregate(ld.scheme, agg, int(n)))
}

// describeAggregate renders the aggregate with the scheme's own decoder
// where the type is known, falling back to the raw vector.
func describeAggregate(scheme prio.Scheme, agg []uint64, n int) string {
	switch s := scheme.(type) {
	case *prio.Sum:
		if v, err := s.Decode(agg, n); err == nil {
			return "sum=" + v.String()
		}
	case *prio.Variance:
		if mean, v, err := s.Decode(agg, n); err == nil {
			return fmt.Sprintf("mean=%.3f variance=%.3f", mean, v)
		}
	case *prio.FreqCount:
		if h, err := s.Decode(agg, n); err == nil {
			return fmt.Sprintf("histogram=%v", h)
		}
	case *prio.BitVector:
		if c, err := s.Decode(agg, n); err == nil {
			return fmt.Sprintf("counts=%v", c)
		}
	case *prio.IntVector:
		if c, err := s.Decode(agg, n); err == nil {
			return fmt.Sprintf("sums=%v", bigs(c))
		}
	case *prio.LinReg:
		if coef, err := s.Decode(agg, n); err == nil {
			return fmt.Sprintf("coefficients=%v", coef)
		}
	}
	return fmt.Sprintf("raw=%v", agg)
}

func bigs(v []*big.Int) []string {
	out := make([]string, len(v))
	for i, b := range v {
		out[i] = b.String()
	}
	return out
}
