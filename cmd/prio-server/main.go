// Command prio-server runs one Prio aggregation server over TCP.
//
// Every server in a deployment starts with the same statistic configuration
// and its own index. The server with index 0 additionally acts as leader: it
// accepts client submissions, relays sealed shares, drives verification in
// batches, and prints the decoded aggregate on an interval. Example
// three-server deployment of a 434-question survey:
//
//	prio-server -index 2 -listen :7002 -servers 3 -scheme bits434
//	prio-server -index 1 -listen :7001 -servers 3 -scheme bits434
//	prio-server -index 0 -listen :7000 -scheme bits434 \
//	    -peers localhost:7000,localhost:7001,localhost:7002 \
//	    -batch 16 -publish-every 30s
//
// Clients submit with prio-client pointed at the leader.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/big"
	"strings"
	"sync"
	"time"

	"prio"
	"prio/internal/core"
	"prio/internal/transport"
)

var (
	index        = flag.Int("index", 0, "this server's index (0 = leader)")
	listen       = flag.String("listen", ":7000", "address to listen on")
	peersFlag    = flag.String("peers", "", "comma-separated server addresses in index order (leader only)")
	schemeFlag   = flag.String("scheme", "sum8", "statistic spec (see prio.ParseScheme)")
	servers      = flag.Int("servers", 0, "server count (default: inferred from -peers)")
	modeFlag     = flag.String("mode", "prio", "validation mode: prio, prio-mpc, no-robust")
	batch        = flag.Int("batch", 16, "max submissions per verification round (leader)")
	shards       = flag.Int("shards", 0, "concurrent verification shards (leader; 0 = one per CPU)")
	queueDepth   = flag.Int("queue-depth", 0, "pipeline submission queue capacity (leader; 0 = 4 batches per shard)")
	publishEvery = flag.Duration("publish-every", 30*time.Second, "aggregate publication interval (leader)")
	once         = flag.Bool("once", false, "leader: publish once after the first interval and exit (for scripting)")
)

func main() {
	flag.Parse()
	scheme, err := prio.ParseScheme(*schemeFlag)
	if err != nil {
		log.Fatal(err)
	}
	var peers []string
	if *peersFlag != "" {
		peers = strings.Split(*peersFlag, ",")
	}
	n := *servers
	if n == 0 {
		n = len(peers)
	}
	if n == 0 {
		log.Fatal("prio-server: set -servers or -peers")
	}
	mode, err := parseMode(*modeFlag)
	if err != nil {
		log.Fatal(err)
	}
	pro, err := prio.NewProtocol(prio.Config{Scheme: scheme, Servers: n, Mode: mode, Seal: true})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := prio.NewServer(pro, *index)
	if err != nil {
		log.Fatal(err)
	}

	if *index != 0 {
		ln, err := prio.ListenAndServe(*listen, srv)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("server %d (%s, %s) listening on %s", *index, scheme.Name(), mode, ln.Addr())
		select {} // serve until killed
	}

	// Leader path: wrap the protocol handler so MsgSubmit feeds the
	// verification pipeline, then connect to the peer servers.
	if len(peers) != n {
		log.Fatalf("prio-server: leader needs -peers with %d entries", n)
	}
	ld := &leaderLoop{scheme: scheme}
	base := srv.Handler()
	ln, err := transport.Listen(*listen, nil, func(msgType byte, payload []byte) ([]byte, error) {
		if msgType != core.MsgSubmit {
			return base(msgType, payload)
		}
		sub, err := core.UnmarshalSubmission(payload)
		if err != nil {
			return nil, err
		}
		return nil, ld.submit(sub)
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	time.Sleep(500 * time.Millisecond) // let peers come up
	leader, err := prio.ConnectLeader(srv, peers)
	if err != nil {
		log.Fatal(err)
	}
	pl, err := prio.NewPipeline(leader, prio.PipelineConfig{
		Shards:     *shards,
		MaxBatch:   *batch,
		QueueDepth: *queueDepth,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer pl.Close()
	ld.start(pl)
	log.Printf("leader (%s, %s) listening on %s, %d servers, %d shards",
		scheme.Name(), mode, ln.Addr(), n, pl.Shards())

	ticker := time.NewTicker(*publishEvery)
	defer ticker.Stop()
	for range ticker.C {
		ld.publish()
		if *once {
			return
		}
	}
}

func parseMode(s string) (prio.Mode, error) {
	switch s {
	case "prio":
		return prio.ModePrio, nil
	case "prio-mpc":
		return prio.ModePrioMPC, nil
	case "no-robust":
		return prio.ModeNoRobustness, nil
	default:
		return 0, fmt.Errorf("prio-server: unknown mode %q", s)
	}
}

// leaderLoop feeds client submissions into the verification pipeline,
// buffering the few that arrive before the pipeline is connected.
type leaderLoop struct {
	scheme prio.Scheme

	mu       sync.Mutex
	pipeline *prio.Pipeline
	pending  []*prio.Submission // submissions received before start
	lastStat prio.ShardStats
}

// start installs the connected pipeline and flushes the pre-connect buffer.
func (ld *leaderLoop) start(pl *prio.Pipeline) {
	ld.mu.Lock()
	ld.pipeline = pl
	pending := ld.pending
	ld.pending = nil
	ld.mu.Unlock()
	for _, sub := range pending {
		if err := pl.Submit(sub); err != nil {
			log.Printf("submit error: %v", err)
		}
	}
}

// submit routes one submission into the pipeline (or the pre-connect
// buffer). The pipeline applies backpressure by blocking when its queue is
// full, which in turn slows the submitting client's connection.
func (ld *leaderLoop) submit(sub *prio.Submission) error {
	ld.mu.Lock()
	pl := ld.pipeline
	if pl == nil {
		ld.pending = append(ld.pending, sub)
		ld.mu.Unlock()
		return nil
	}
	ld.mu.Unlock()
	return pl.Submit(sub)
}

// publish quiesces the pipeline and prints the decoded aggregate plus the
// interval's verification counters. Pipeline.Aggregate pauses intake for
// the duration, so the published aggregate is a consistent snapshot even
// under sustained submission traffic.
func (ld *leaderLoop) publish() {
	ld.mu.Lock()
	pl := ld.pipeline
	ld.mu.Unlock()
	if pl == nil {
		return
	}
	agg, n, err := pl.Aggregate()
	st := pl.Stats()
	ld.mu.Lock()
	delta := st
	delta.Batches -= ld.lastStat.Batches
	delta.Processed -= ld.lastStat.Processed
	delta.Accepted -= ld.lastStat.Accepted
	delta.Rejected -= ld.lastStat.Rejected
	delta.Failed -= ld.lastStat.Failed
	ld.lastStat = st
	ld.mu.Unlock()
	if delta.Processed+delta.Failed > 0 {
		log.Printf("interval: %d accepted, %d rejected, %d failed in %d rounds",
			delta.Accepted, delta.Rejected, delta.Failed, delta.Batches)
	}
	if err != nil {
		log.Printf("aggregate error: %v", err)
		return
	}
	fmt.Printf("aggregate over %d clients: %s\n", n, describeAggregate(ld.scheme, agg, int(n)))
}

// describeAggregate renders the aggregate with the scheme's own decoder
// where the type is known, falling back to the raw vector.
func describeAggregate(scheme prio.Scheme, agg []uint64, n int) string {
	switch s := scheme.(type) {
	case *prio.Sum:
		if v, err := s.Decode(agg, n); err == nil {
			return "sum=" + v.String()
		}
	case *prio.Variance:
		if mean, v, err := s.Decode(agg, n); err == nil {
			return fmt.Sprintf("mean=%.3f variance=%.3f", mean, v)
		}
	case *prio.FreqCount:
		if h, err := s.Decode(agg, n); err == nil {
			return fmt.Sprintf("histogram=%v", h)
		}
	case *prio.BitVector:
		if c, err := s.Decode(agg, n); err == nil {
			return fmt.Sprintf("counts=%v", c)
		}
	case *prio.IntVector:
		if c, err := s.Decode(agg, n); err == nil {
			return fmt.Sprintf("sums=%v", bigs(c))
		}
	case *prio.LinReg:
		if coef, err := s.Decode(agg, n); err == nil {
			return fmt.Sprintf("coefficients=%v", coef)
		}
	}
	return fmt.Sprintf("raw=%v", agg)
}

func bigs(v []*big.Int) []string {
	out := make([]string, len(v))
	for i, b := range v {
		out[i] = b.String()
	}
	return out
}
