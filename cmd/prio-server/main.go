// Command prio-server runs one Prio aggregation server over TLS.
//
// Every server in a deployment starts with the same statistic configuration
// and its own index. The server with index 0 additionally acts as leader: it
// accepts client submissions (streamed by default — see internal/ingest —
// with the legacy one-shot MsgSubmit path still served), relays sealed
// shares, drives verification in batches across concurrent shards, and
// prints the decoded aggregate on an interval. Example three-server
// deployment of a 434-question survey:
//
//	prio-server -index 2 -listen :7002 -servers 3 -scheme bits434
//	prio-server -index 1 -listen :7001 -servers 3 -scheme bits434
//	prio-server -index 0 -listen :7000 -scheme bits434 \
//	    -peers localhost:7000,localhost:7001,localhost:7002 \
//	    -batch 16 -publish-every 30s
//
// Clients submit with prio-client (or flood with prio-load) pointed at the
// leader.
//
// TLS is on by default: without -tls-cert/-tls-key each server generates a
// self-signed certificate, giving channel confidentiality without a PKI
// (peers and clients then dial without authenticating the server; pin real
// certificates with -tls-cert/-tls-key and -tls-ca to authenticate, or pass
// -tls=false for plaintext benchmarking).
package main

import (
	"crypto/tls"
	"flag"
	"fmt"
	"log/slog"
	"math/big"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"prio"
	"prio/internal/cli"
	"prio/internal/core"
	"prio/internal/ingest"
	"prio/internal/telemetry"
	"prio/internal/transport"
)

var (
	index         = flag.Int("index", 0, "this server's index (0 = leader)")
	listen        = flag.String("listen", ":7000", "address to listen on")
	peersFlag     = flag.String("peers", "", "comma-separated server addresses in index order (leader only)")
	schemeFlag    = flag.String("scheme", "sum8", "statistic spec (see prio.ParseScheme)")
	servers       = flag.Int("servers", 0, "server count (default: inferred from -peers)")
	modeFlag      = flag.String("mode", "prio", "validation mode: prio, prio-mpc, no-robust")
	batch         = flag.Int("batch", 16, "max submissions per verification round (leader)")
	shards        = flag.Int("shards", 0, "concurrent verification shards (leader; 0 = one per CPU)")
	queueDepth    = flag.Int("queue-depth", 0, "pipeline submission queue capacity (leader; 0 = 4 batches per shard)")
	ingestCredits = flag.Int("ingest-credits", ingest.DefaultCredits, "per-stream credit window for streamed submissions (leader)")
	ingestQueue   = flag.Int("ingest-queue", ingest.DefaultQueueDepth, "intake queue capacity buffering streamed submissions for the pipeline (leader)")
	ingestDynamic = flag.Bool("ingest-dynamic", true, "retune per-stream credit windows from intake-queue occupancy (leader)")
	legacyRPC     = flag.Bool("legacy-rpc", false, "drive verification rounds over request/response connections instead of the streamed rounds subprotocol")
	publishEvery  = flag.Duration("publish-every", 30*time.Second, "aggregate publication interval (leader)")
	once          = flag.Bool("once", false, "leader: publish once after the first interval and exit (for scripting)")
	useTLS        = flag.Bool("tls", true, "serve and dial TLS (self-signed unless -tls-cert/-tls-key)")
	tlsCert       = flag.String("tls-cert", "", "PEM certificate file (with -tls-key; default: fresh self-signed)")
	tlsKey        = flag.String("tls-key", "", "PEM private key file (with -tls-cert)")
	tlsCA         = flag.String("tls-ca", "", "PEM bundle to authenticate peer servers against (default: encrypt without authenticating)")
	adminAddr     = flag.String("admin-addr", "", "operator endpoint address serving /metrics, /healthz, /debug/* (default: off; TLS per -tls)")
	traceSample   = flag.Int("trace-sample", 0, "sample 1-in-N submission lifecycles into /debug/trace (0 = off)")
)

func main() {
	flag.Parse()
	cli.InitLog()
	scheme, err := prio.ParseScheme(*schemeFlag)
	if err != nil {
		cli.Fatal("bad -scheme", "err", err)
	}
	var peers []string
	if *peersFlag != "" {
		peers = strings.Split(*peersFlag, ",")
	}
	n := *servers
	if n == 0 {
		n = len(peers)
	}
	if n == 0 && *rosterFlag == "" {
		cli.Fatal("set -servers, -peers, or -roster")
	}
	mode, err := cli.ParseMode(*modeFlag)
	if err != nil {
		cli.Fatal("bad -mode", "err", err)
	}
	var serverTLS, clientTLS *tls.Config
	if *useTLS {
		host, _, err := net.SplitHostPort(*listen)
		if err != nil || host == "" {
			host = "localhost"
		}
		serverTLS, err = transport.LoadServerTLS(*tlsCert, *tlsKey, host)
		if err != nil {
			cli.Fatal("loading server TLS", "err", err)
		}
		clientTLS, err = transport.ClientTLS(*tlsCA)
		if err != nil {
			cli.Fatal("loading client TLS", "err", err)
		}
	}
	// The operator endpoint serves the process-wide default registry, which
	// the pipeline and ingest subsystems below register into.
	tracer := telemetry.NewTracer(*traceSample, 256)
	if *adminAddr != "" {
		var adminTLS *tls.Config
		if serverTLS != nil {
			adminTLS = serverTLS.Clone()
		}
		aln, err := startAdmin(*adminAddr, adminTLS, tracer)
		if err != nil {
			cli.Fatal("starting admin endpoint", "err", err)
		}
		defer aln.Close()
		slog.Info("admin endpoint listening", "addr", aln.Addr().String(), "tls", *useTLS)
	}

	if *rosterFlag != "" {
		runCluster(scheme, mode, serverTLS, clientTLS, tracer)
		return
	}

	pro, err := prio.NewProtocol(prio.Config{Scheme: scheme, Servers: n, Mode: mode, Seal: true})
	if err != nil {
		cli.Fatal("building protocol", "err", err)
	}
	srv, err := prio.NewServer(pro, *index)
	if err != nil {
		cli.Fatal("building server", "err", err)
	}

	if *index != 0 {
		// Followers never publish, but they still window their shares, add
		// their own seal noise, and checkpoint durably.
		if svc := startWindowService(srv, nil, nil, nil); svc != nil {
			defer svc.Close()
		}
		ln, err := prio.ListenAndServeTLS(*listen, srv, serverTLS)
		if err != nil {
			cli.Fatal("listening", "err", err)
		}
		slog.Info("server listening", "index", *index, "scheme", scheme.Name(),
			"mode", mode.String(), "tls", *useTLS, "addr", ln.Addr().String())
		select {} // serve until killed
	}

	// Leader path: serve the protocol handler with MsgSubmit feeding the
	// verification pipeline and the streaming ingest handler terminating
	// pipelined submission streams (the default client path).
	if len(peers) != n {
		cli.Fatal("leader needs -peers with one entry per server", "want", n)
	}
	ld := &leaderLoop{scheme: scheme}
	base := srv.Handler()
	ln, err := transport.Listen(*listen, serverTLS, func(msgType byte, payload []byte) ([]byte, error) {
		if msgType != core.MsgSubmit {
			return base(msgType, payload)
		}
		sub, err := core.UnmarshalSubmission(payload)
		if err != nil {
			return nil, err
		}
		return nil, ld.SubmitFunc(sub, nil)
	})
	if err != nil {
		cli.Fatal("listening", "err", err)
	}
	defer ln.Close()
	ing := ingest.NewServer(ld, ingest.Config{
		Credits:        *ingestCredits,
		QueueDepth:     *ingestQueue,
		DynamicCredits: *ingestDynamic,
		Registry:       telemetry.Default,
		Tracer:         tracer,
	})
	defer ing.Close()
	ln.OnStream(ing.Handler())
	ld.ingest = ing

	connect := prio.ConnectLeaderTLS
	if *legacyRPC {
		// The streamed peers dial lazily, so the sleep only matters here.
		time.Sleep(500 * time.Millisecond) // let peers come up
		connect = prio.ConnectLeaderLegacyTLS
	}
	leader, err := connect(srv, peers, clientTLS)
	if err != nil {
		cli.Fatal("connecting to peers", "err", err)
	}
	registerPeerStats(leader, n)
	pl, err := prio.NewPipeline(leader, prio.PipelineConfig{
		Shards:     *shards,
		MaxBatch:   *batch,
		QueueDepth: *queueDepth,
		Registry:   telemetry.Default,
	})
	if err != nil {
		cli.Fatal("building pipeline", "err", err)
	}
	defer pl.Close()
	// The window service recovers from any checkpoint before intake starts,
	// and closes windows inside the pipeline's quiesce so a seal never races
	// a committing batch.
	if svc := startWindowService(srv, leader, pl.Quiesce, nil); svc != nil {
		defer svc.Close()
	}
	ld.start(pl)
	slog.Info("leader listening", "scheme", scheme.Name(), "mode", mode.String(),
		"tls", *useTLS, "addr", ln.Addr().String(), "servers", n,
		"shards", pl.Shards(), "stream_credits", *ingestCredits)

	ticker := time.NewTicker(*publishEvery)
	defer ticker.Stop()
	for range ticker.C {
		ld.publish()
		if *once {
			return
		}
	}
}

// registerPeerStats exports the leader's per-peer RPC traffic counters:
// one labeled series per server connection, read live at scrape time. The
// leader's own slot is a loopback, so its series stay near zero.
func registerPeerStats(leader *prio.Leader, n int) {
	for i := 0; i < n; i++ {
		i := i
		lbl := telemetry.Label{Key: "peer", Value: strconv.Itoa(i)}
		telemetry.Default.CounterFunc("prio_peer_bytes_sent_total",
			"framed bytes sent to each server over the leader's RPC connection",
			func() uint64 { return leader.PeerStats(i).BytesSent }, lbl)
		telemetry.Default.CounterFunc("prio_peer_bytes_recv_total",
			"framed bytes received from each server over the leader's RPC connection",
			func() uint64 { return leader.PeerStats(i).BytesRecv }, lbl)
		telemetry.Default.CounterFunc("prio_peer_msgs_sent_total",
			"messages sent to each server over the leader's RPC connection",
			func() uint64 { return leader.PeerStats(i).MsgsSent }, lbl)
		telemetry.Default.CounterFunc("prio_peer_msgs_recv_total",
			"messages received from each server over the leader's RPC connection",
			func() uint64 { return leader.PeerStats(i).MsgsRecv }, lbl)
	}
}

// pendingSub is a submission received before the pipeline connected.
type pendingSub struct {
	sub *prio.Submission
	fn  func(prio.SubmitResult)
}

// leaderLoop feeds client submissions into the verification pipeline,
// buffering the few that arrive before the pipeline is connected. It
// implements ingest.Sink, so the streaming ingest handler and the legacy
// MsgSubmit path share one intake.
type leaderLoop struct {
	scheme prio.Scheme
	ingest *prio.IngestServer

	mu         sync.Mutex
	pipeline   *prio.Pipeline
	pending    []pendingSub // submissions received before start
	lastStat   prio.ShardStats
	lastIngest prio.IngestStats
}

// start installs the connected pipeline and flushes the pre-connect buffer.
func (ld *leaderLoop) start(pl *prio.Pipeline) {
	ld.mu.Lock()
	ld.pipeline = pl
	pending := ld.pending
	ld.pending = nil
	ld.mu.Unlock()
	for _, p := range pending {
		if err := pl.SubmitFunc(p.sub, p.fn); err != nil {
			slog.Warn("submit error", "err", err)
		}
	}
}

// SubmitFunc implements ingest.Sink: route one submission into the pipeline
// (or the pre-connect buffer), blocking under backpressure.
func (ld *leaderLoop) SubmitFunc(sub *prio.Submission, fn func(prio.SubmitResult)) error {
	ld.mu.Lock()
	pl := ld.pipeline
	if pl == nil {
		ld.pending = append(ld.pending, pendingSub{sub: sub, fn: fn})
		ld.mu.Unlock()
		return nil
	}
	ld.mu.Unlock()
	return pl.SubmitFunc(sub, fn)
}

// TrySubmitFunc implements ingest.Sink: the non-blocking enqueue behind the
// streamed path's fast lane.
func (ld *leaderLoop) TrySubmitFunc(sub *prio.Submission, fn func(prio.SubmitResult)) (bool, error) {
	ld.mu.Lock()
	pl := ld.pipeline
	if pl == nil {
		ld.pending = append(ld.pending, pendingSub{sub: sub, fn: fn})
		ld.mu.Unlock()
		return true, nil
	}
	ld.mu.Unlock()
	return pl.TrySubmitFunc(sub, fn)
}

// publish quiesces the pipeline and prints the decoded aggregate plus the
// interval's verification and ingest counters. Pipeline.Aggregate pauses
// intake for the duration, so the published aggregate is a consistent
// snapshot even under sustained submission traffic.
func (ld *leaderLoop) publish() {
	ld.mu.Lock()
	pl := ld.pipeline
	ing := ld.ingest
	ld.mu.Unlock()
	if pl == nil {
		return
	}
	agg, n, err := pl.Aggregate()
	st := pl.Stats()
	var ist prio.IngestStats
	if ing != nil {
		ist = ing.Stats()
	}
	ld.mu.Lock()
	delta := st
	delta.Batches -= ld.lastStat.Batches
	delta.Processed -= ld.lastStat.Processed
	delta.Accepted -= ld.lastStat.Accepted
	delta.Rejected -= ld.lastStat.Rejected
	delta.Failed -= ld.lastStat.Failed
	streamed := ist.Received - ld.lastIngest.Received
	// The ingest layer's count is the authoritative client-visible shed
	// number; pipeline Refused entries were re-queued through the intake
	// buffer, not necessarily lost.
	shed := ist.Shed - ld.lastIngest.Shed
	ld.lastStat = st
	ld.lastIngest = ist
	ld.mu.Unlock()
	if delta.Processed+delta.Failed+shed > 0 {
		slog.Info("interval",
			"accepted", delta.Accepted, "rejected", delta.Rejected,
			"failed", delta.Failed, "shed", shed,
			"rounds", delta.Batches, "streamed", streamed)
	}
	if err != nil {
		slog.Warn("aggregate error", "err", err)
		return
	}
	fmt.Printf("aggregate over %d clients: %s\n", n, describeAggregate(ld.scheme, agg, int(n)))
}

// describeAggregate renders the aggregate with the scheme's own decoder
// where the type is known, falling back to the raw vector.
func describeAggregate(scheme prio.Scheme, agg []uint64, n int) string {
	switch s := scheme.(type) {
	case *prio.Sum:
		if v, err := s.Decode(agg, n); err == nil {
			return "sum=" + v.String()
		}
	case *prio.Variance:
		if mean, v, err := s.Decode(agg, n); err == nil {
			return fmt.Sprintf("mean=%.3f variance=%.3f", mean, v)
		}
	case *prio.FreqCount:
		if h, err := s.Decode(agg, n); err == nil {
			return fmt.Sprintf("histogram=%v", h)
		}
	case *prio.BitVector:
		if c, err := s.Decode(agg, n); err == nil {
			return fmt.Sprintf("counts=%v", c)
		}
	case *prio.IntVector:
		if c, err := s.Decode(agg, n); err == nil {
			return fmt.Sprintf("sums=%v", bigs(c))
		}
	case *prio.LinReg:
		if coef, err := s.Decode(agg, n); err == nil {
			return fmt.Sprintf("coefficients=%v", coef)
		}
	}
	return fmt.Sprintf("raw=%v", agg)
}

func bigs(v []*big.Int) []string {
	out := make([]string, len(v))
	for i, b := range v {
		out[i] = b.String()
	}
	return out
}
