package main

import (
	"crypto/tls"
	"flag"
	"log/slog"
	"os"
	"time"

	"prio"
	"prio/internal/cli"
	"prio/internal/cluster"
	"prio/internal/core"
	"prio/internal/field"
	"prio/internal/ingest"
	"prio/internal/sealbox"
	"prio/internal/telemetry"
	"prio/internal/transport"
)

var (
	rosterFlag = flag.String("roster", "", "roster file or comma-separated member addresses in index order; enables cluster mode (any member may lead)")
	keyFile    = flag.String("key-file", "", "persist the sealbox private key at this path (created 0600), so sealed submissions survive a restart")
	pingEvery  = flag.Duration("ping-interval", 250*time.Millisecond, "peer health probe cadence (cluster mode)")
	pingTO     = flag.Duration("ping-timeout", 0, "per-probe timeout (cluster mode; default: ping interval)")
	failAfter  = flag.Int("fail-after", 3, "consecutive probe failures that mark a peer down (cluster mode)")
	rotateFlag = flag.Duration("rotate-every", 0, "timed leadership rotation interval (cluster mode; 0 = rotate only on failover)")
	retriesFl  = flag.Int("batch-retries", 2, "re-run attempts for a verification batch that failed mid-round (cluster mode)")
)

// loadOrCreateKey returns the sealbox key at path, generating and persisting
// one (mode 0600) when the file does not exist. An empty path yields a fresh
// ephemeral key, as in non-cluster mode.
func loadOrCreateKey(path string) (*sealbox.PrivateKey, error) {
	if path == "" {
		_, priv, err := sealbox.GenerateKey()
		return priv, err
	}
	if raw, err := os.ReadFile(path); err == nil {
		return sealbox.ParsePrivateKey(raw)
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	_, priv, err := sealbox.GenerateKey()
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, priv.Bytes(), 0o600); err != nil {
		return nil, err
	}
	return priv, nil
}

// runCluster is the roster-mode server: every member runs the same stack —
// protocol handler, gated ingest endpoint, health-checked cluster node, and
// a full verification pipeline — and the cluster node decides which member's
// pipeline is actually fed. Leadership moves on failover (and on
// -rotate-every); peers ride re-dialing connections so a restarted member is
// picked back up without operator action.
func runCluster(scheme prio.Scheme, mode prio.Mode, serverTLS, clientTLS *tls.Config, tracer *telemetry.Tracer) {
	ros, err := cluster.LoadOrParseRoster(*rosterFlag)
	if err != nil {
		cli.Fatal("bad -roster", "err", err)
	}
	self := *index
	if self < 0 || self >= ros.N() {
		cli.Fatal("-index outside the roster", "index", self, "members", ros.N())
	}
	priv, err := loadOrCreateKey(*keyFile)
	if err != nil {
		cli.Fatal("loading sealbox key", "err", err)
	}
	pro, err := prio.NewProtocol(prio.Config{Scheme: scheme, Servers: ros.N(), Mode: mode, Seal: true})
	if err != nil {
		cli.Fatal("building protocol", "err", err)
	}
	srv, err := core.NewServer[field.F64, uint64](pro, self, priv)
	if err != nil {
		cli.Fatal("building server", "err", err)
	}

	node, err := cluster.New(cluster.Config{
		Roster:       ros,
		Self:         self,
		TLS:          clientTLS,
		PingInterval: *pingEvery,
		PingTimeout:  *pingTO,
		FailAfter:    *failAfter,
		RotateEvery:  *rotateFlag,
		Registry:     telemetry.Default,
		OnLeaderChange: func(epoch uint64, leader int) {
			slog.Info("leadership change", "epoch", epoch, "leader", leader, "self", self)
		},
		OnPeerDown: func(peer int) {
			// Drop whatever half-finished verification state the dead member
			// seeded here as coordinator: its batches will be re-run under
			// fresh IDs by whoever leads next.
			batches, challenges := srv.ReleaseLeader(peer)
			slog.Warn("peer down", "peer", peer,
				"released_batches", batches, "released_challenges", challenges)
		},
		OnPeerUp: func(peer int) { slog.Info("peer up", "peer", peer) },
	})
	if err != nil {
		cli.Fatal("building cluster node", "err", err)
	}

	// Every member terminates client traffic: MsgSubmit and ingest streams
	// feed the pipeline while this member leads; followers refuse at the
	// gate, naming the leader so clients re-resolve.
	ld := &leaderLoop{scheme: scheme}
	gate := node.LeaderGate()
	base := srv.Handler()
	ln, err := transport.Listen(*listen, serverTLS, func(msgType byte, payload []byte) ([]byte, error) {
		switch msgType {
		case cluster.MsgClusterInfo:
			return node.HandleInfo(payload)
		case core.MsgSubmit:
			if err := gate(); err != nil {
				return nil, err
			}
			sub, err := core.UnmarshalSubmission(payload)
			if err != nil {
				return nil, err
			}
			return nil, ld.SubmitFunc(sub, nil)
		}
		return base(msgType, payload)
	})
	if err != nil {
		cli.Fatal("listening", "err", err)
	}
	defer ln.Close()
	ing := ingest.NewServer(ld, ingest.Config{
		Credits:        *ingestCredits,
		QueueDepth:     *ingestQueue,
		DynamicCredits: *ingestDynamic,
		Registry:       telemetry.Default,
		Tracer:         tracer,
		Gate:           gate,
	})
	defer ing.Close()
	ln.OnStream(ing.Handler())
	ld.ingest = ing

	// The verification stack every member keeps warm: peers on lazily
	// dialed, re-dialing streamed connections (boot order does not matter,
	// and a restarted member is picked back up on the next call), a leader
	// namespace of our own index, and a pipeline with in-place batch retry
	// for rounds interrupted by a peer restart. -legacy-rpc falls back to
	// coalesced request/response connections.
	peers := make([]transport.Peer, ros.N())
	for j, addr := range ros.Addrs {
		if j == self {
			peers[j] = &transport.LoopbackPeer{Handler: srv.Handler()}
			continue
		}
		if *legacyRPC {
			peers[j] = transport.NewCoalescer(transport.NewRedialPeer(addr, clientTLS))
		} else {
			peers[j] = transport.NewStreamPeer(addr, clientTLS)
		}
	}
	leader, err := core.NewLeader(srv, peers)
	if err != nil {
		cli.Fatal("building leader", "err", err)
	}
	pl, err := prio.NewPipeline(leader, prio.PipelineConfig{
		Shards:     *shards,
		MaxBatch:   *batch,
		QueueDepth: *queueDepth,
		Retries:    *retriesFl,
		Registry:   telemetry.Default,
	})
	if err != nil {
		cli.Fatal("building pipeline", "err", err)
	}
	defer pl.Close()
	// Every member runs the window service: all of them window shares, add
	// their own seal noise, and checkpoint; the IsLeader gate means only the
	// sitting leader drives window closes, and that duty moves with the
	// leadership on failover (sealing is idempotent, so a close retried by a
	// successor republishes bit-identical bytes).
	if svc := startWindowService(srv, leader, pl.Quiesce, node.IsLeader); svc != nil {
		defer svc.Close()
	}
	ld.start(pl)

	node.Start()
	defer node.Stop()
	slog.Info("cluster member listening", "self", self, "members", ros.N(),
		"scheme", scheme.Name(), "mode", mode.String(), "tls", serverTLS != nil,
		"addr", ln.Addr().String(), "shards", pl.Shards(),
		"ping_interval", pingEvery.String(), "rotate_every", rotateFlag.String())

	ticker := time.NewTicker(*publishEvery)
	defer ticker.Stop()
	for range ticker.C {
		if node.IsLeader() {
			ld.publish()
			if *once {
				return
			}
		}
	}
}
