// Windowed aggregation wiring: flags and construction for the
// internal/window service, shared by the plain leader, plain follower, and
// cluster-member paths. The service is off unless -window is set; with it,
// every accepted submission lands in a tumbling collection window, each
// window seals with this member's own DP noise (-dp-epsilon), and the
// sitting leader publishes per-window aggregates (ledger lines below plus
// the /aggregates admin view). -checkpoint-dir adds durable recovery: a
// kill -9 and restart replays the newest valid checkpoint and loses at most
// the in-flight window.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"strings"
	"time"

	"prio"
	"prio/internal/cli"
	"prio/internal/dp"
	"prio/internal/field"
	"prio/internal/telemetry"
	"prio/internal/window"
)

var (
	windowFlag = flag.Duration("window", 0, "tumbling collection window width; each window publishes its own DP-noised aggregate (0 = all-time aggregate only)")
	ckptDir    = flag.String("checkpoint-dir", "", "directory for durable accumulator checkpoints (requires -window; empty = memory only)")
	ckptEvery  = flag.Duration("checkpoint-every", 0, "periodic checkpoint cadence (0 = half the window, clamped to [1s, 30s])")
	dpEpsilon  = flag.Float64("dp-epsilon", 0, "differential-privacy epsilon this server spends per aggregate component when sealing a window (0 = publish without noise)")
	dpSens     = flag.Float64("dp-sensitivity", 1, "DP sensitivity: the most one client can move one aggregate component (1 for counts; 2^b for b-bit sums)")
	dpBudgetFl = flag.Float64("dp-budget", 0, "total epsilon this server may spend across all windows, linear composition (0 = unlimited)")
	dpClamp    = flag.Bool("dp-clamp", false, "clamp the final window's epsilon to the budget remainder instead of refusing to seal")
)

// startWindowService builds, recovers, and starts the window service for
// this member. leader, quiesce, and isLeader are nil for members that never
// publish (plain followers); isLeader is nil when this process always leads
// (plain leader). Returns nil when -window is off.
func startWindowService(srv *prio.Server, leader *prio.Leader, quiesce func(func()), isLeader func() bool) *window.Service[field.F64, uint64] {
	if *windowFlag <= 0 {
		if *ckptDir != "" {
			cli.Fatal("-checkpoint-dir requires -window")
		}
		if *dpEpsilon > 0 {
			cli.Fatal("-dp-epsilon requires -window")
		}
		return nil
	}
	var store *window.Store
	if *ckptDir != "" {
		var err error
		store, err = window.NewStore(*ckptDir)
		if err != nil {
			cli.Fatal("opening -checkpoint-dir", "err", err)
		}
	}
	var budget *dp.Budget
	if *dpBudgetFl > 0 {
		var err error
		budget, err = dp.NewBudget(*dpBudgetFl, *dpClamp)
		if err != nil {
			cli.Fatal("bad -dp-budget", "err", err)
		}
	}
	cfg := window.Config[field.F64, uint64]{
		Field:           prio.DefaultField(),
		Width:           *windowFlag,
		Server:          srv,
		Leader:          leader,
		Quiesce:         quiesce,
		IsLeader:        isLeader,
		Store:           store,
		CheckpointEvery: *ckptEvery,
		Budget:          budget,
		Registry:        telemetry.Default,
		Logf: func(format string, args ...any) {
			slog.Info(fmt.Sprintf(format, args...))
		},
		OnPublish: printWindowLedger,
	}
	if *dpEpsilon > 0 {
		cfg.DP = dp.Params{Epsilon: *dpEpsilon, Sensitivity: *dpSens}
	}
	svc, err := window.New(cfg)
	if err != nil {
		cli.Fatal("starting window service", "err", err)
	}
	if ok, info := svc.Recovered(); ok {
		slog.Info("window state recovered from checkpoint",
			"file", info.File, "skipped", info.Skipped, "last_published", svc.LastPublished())
	} else if store != nil {
		slog.Info("no usable checkpoint; starting empty", "dir", store.Dir(), "skipped", info.Skipped)
	}
	setAggregatesHandler(svc.AggregatesHandler())
	svc.Start()
	slog.Info("window service started", "width", windowFlag.String(),
		"checkpoint_dir", *ckptDir, "dp_epsilon", *dpEpsilon, "dp_budget", *dpBudgetFl)
	return svc
}

// printWindowLedger emits one stdout line per published window — the
// leader-side release ledger, shaped like the interval aggregate line.
func printWindowLedger(r window.Record) {
	agg := r.Agg
	truncated := ""
	if len(agg) > 8 {
		agg = agg[:8]
		truncated = fmt.Sprintf(" …+%d", len(r.Agg)-8)
	}
	extra := ""
	if r.Noised {
		extra = fmt.Sprintf(" eps=%.4g", r.Eps)
	}
	if !r.Consistent {
		extra += fmt.Sprintf(" INCONSISTENT counts=%v", r.Counts)
	}
	if r.Republished {
		extra += " republished"
	}
	fmt.Printf("window %d [%s, %s): clients=%d aggregate=[%s%s] noised=%v%s\n",
		r.ID, r.Start.Format(time.TimeOnly), r.End.Format(time.TimeOnly),
		r.Count, strings.Join(agg, " "), truncated, r.Noised, extra)
}
