package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"prio/internal/core"
	"prio/internal/window"
)

// figWindow measures the durability tax of windowed aggregation: the
// latency of one durable checkpoint write (marshal, fsync, atomic rename)
// and of crash recovery (newest-file scan, CRC validation, decode) as the
// accumulator grows — both in aggregate width k and in retained windows.
// Writes scale linearly in state size and are fsync-bound at the small end;
// recovery is read-and-decode only, so it undercuts the write at every
// size. The numbers bound how much state fits under a 1-second
// -checkpoint-every cadence.
func figWindow() {
	fmt.Println("== Window: checkpoint write / recovery latency vs accumulator size ==")
	type shape struct{ k, windows int }
	shapes := []shape{{64, 8}, {256, 8}, {1024, 8}, {1024, 64}}
	if *full {
		shapes = append(shapes, shape{4096, 64}, shape{16384, 64})
	}
	minDur := 200 * time.Millisecond

	dir, err := os.MkdirTemp("", "prio-bench-window")
	if err != nil {
		log.Fatalf("prio-bench: %v", err)
	}
	defer os.RemoveAll(dir)

	fmt.Printf("%-8s %-8s | %-10s %-12s %-12s\n", "k", "windows", "file", "write", "recover")
	for _, sh := range shapes {
		st, err := window.NewStore(fmt.Sprintf("%s/k%d-w%d", dir, sh.k, sh.windows))
		if err != nil {
			log.Fatalf("prio-bench: %v", err)
		}
		snap := syntheticSnapshot(sh.k, sh.windows)
		var size int
		write := timePerOp(minDur, func() {
			n, err := window.Save(st, f64, snap)
			if err != nil {
				log.Fatalf("prio-bench: %v", err)
			}
			size = n
		})
		recover := timePerOp(minDur, func() {
			got, _, err := window.Load(st, f64, sh.k)
			if err != nil || got == nil {
				log.Fatalf("prio-bench: recovery failed: %v", err)
			}
		})
		fmt.Printf("%-8d %-8d | %-10s %-12s %-12s\n", sh.k, sh.windows,
			fmtBytes(float64(size)), fmtDur(write), fmtDur(recover))
	}
	fmt.Println("\nshape check: both columns grow linearly in k x windows; write stays")
	fmt.Println("fsync-dominated (~ms floor) at small sizes, and recovery stays below")
	fmt.Println("the write at every size.")
}

// syntheticSnapshot builds checkpoint state with the given aggregate width
// and retained-window count; half the windows are sealed, as a steady-state
// retention buffer would be.
func syntheticSnapshot(k, windows int) *window.Snapshot[uint64] {
	vec := func(seed uint64) []uint64 {
		v := make([]uint64, k)
		for i := range v {
			v[i] = seed*uint64(i+1) + uint64(i)
		}
		return v
	}
	snap := &window.Snapshot[uint64]{
		LastPublished: uint64(windows / 2),
		DPSpent:       0.5 * float64(windows/2),
		Acc: core.AccState[uint64]{
			Total:      vec(7),
			TotalCount: 1 << 20,
		},
	}
	for w := 1; w <= windows; w++ {
		snap.Acc.Windows = append(snap.Acc.Windows, core.WindowState[uint64]{
			ID:     uint64(w),
			Sealed: w <= windows/2,
			Noised: w <= windows/2,
			Eps:    0.5,
			Count:  uint64(1000 + w),
			Vec:    vec(uint64(w)),
		})
	}
	return snap
}
