package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestBenchJSON(t *testing.T) {
	in := strings.Join([]string{
		"goos: linux",
		"goarch: amd64",
		"pkg: prio/internal/core",
		"cpu: Example CPU @ 3.00GHz",
		"BenchmarkVerify/sum8-8         \t    1234\t    987654 ns/op\t  12.34 MB/s\t     456 B/op\t       7 allocs/op",
		"BenchmarkEncode-8 5000 321.5 ns/op",
		"--- BENCH: BenchmarkNoisy",
		"    some test chatter",
		"PASS",
		"ok  \tprio/internal/core\t2.345s",
		"",
	}, "\n")
	var out bytes.Buffer
	if err := benchJSON(strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("artifact is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "prio/internal/core" {
		t.Errorf("headers = %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkVerify/sum8-8" || b.Iterations != 1234 || b.NsPerOp != 987654 ||
		b.MBPerSec != 12.34 || b.BytesPerOp != 456 || b.AllocsPerOp != 7 {
		t.Errorf("first result = %+v", b)
	}
	if rep.Benchmarks[1].NsPerOp != 321.5 {
		t.Errorf("second result = %+v", rep.Benchmarks[1])
	}
}

func TestBenchJSONEmptyInput(t *testing.T) {
	var out bytes.Buffer
	if err := benchJSON(strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Benchmarks == nil || len(rep.Benchmarks) != 0 {
		t.Errorf("want empty benchmarks array, got %#v", rep.Benchmarks)
	}
}
