package main

import (
	"fmt"
	"time"

	"prio/internal/afe"
	"prio/internal/core"
	"prio/internal/field"
	"prio/internal/nizk"
	"prio/internal/snarkcost"
)

// table2 reproduces Table 2: the asymptotic comparison of NIZK, SNARK, and
// SNIP costs for proving that an M-element vector is 0/1-valued. The paper's
// table lists asymptotics; here each row is measured (or, for SNARKs,
// estimated exactly as the paper estimates) so the claimed scaling is
// visible in real numbers: SNIP server data transfer stays constant while
// proof length grows linearly, NIZK costs grow linearly everywhere, and
// SNARK proofs stay 288 bytes while proving cost explodes.
func table2() {
	fmt.Println("== Table 2: NIZK vs SNARK vs Prio (SNIP), 0/1-vector of length M ==")
	sizes := []int{64, 256, 1024}
	if *full {
		sizes = append(sizes, 4096)
	}
	model := measureNIZK()
	expCost := snarkcost.MeasureExpCost(16)
	fmt.Printf("host exponentiation cost (P-256 scalar mult): %s\n\n", fmtDur(expCost))

	fmt.Printf("%-8s | %-22s | %-22s | %-22s\n", "M", "NIZK", "SNARK (est.)", "Prio (SNIP)")
	fmt.Printf("%-8s | %-22s | %-22s | %-22s\n", "", "client / proof / srv-xfer", "client / proof", "client / proof / srv-xfer")
	for _, m := range sizes {
		scheme := afe.NewBitVector(f64, m)
		d := newDeployment(scheme, 5, core.ModeSNIP, false)
		enc := randomBits(scheme, m)
		prioClient := timePerOp(150*time.Millisecond, func() {
			if _, err := d.client.BuildSubmission(enc); err != nil {
				panic(err)
			}
		})
		prioProofBytes := d.pro.ValidSys.ProofLen() * f64.ElemSize()
		prioSrvBytes := measureServerBytes(core.ModeSNIP, m, 8)

		nizkClient := time.Duration(m) * model.clientPerBit
		nizkBytes := nizk.SubmissionBytes(m)

		snark := snarkcost.EstimateProofTime(m, m, 5, expCost)

		fmt.Printf("%-8d | %9s %9s %6s | %12s %6dB | %9s %9s %6s\n",
			m,
			fmtDur(nizkClient), fmtBytes(float64(nizkBytes)), fmtBytes(float64(nizkBytes)),
			fmtDur(snark), snarkcost.ProofBytes,
			fmtDur(prioClient), fmtBytes(float64(prioProofBytes)), fmtBytes(prioSrvBytes))
	}
	fmt.Println("\nshape check: Prio srv-xfer is constant in M; NIZK grows linearly;")
	fmt.Println("SNARK proofs stay 288B but client time is orders of magnitude above Prio.")
}

// measureServerBytes returns the bytes a non-leader server transmits per
// submission, measured on the byte-counting in-memory transport.
func measureServerBytes(mode core.Mode, l, count int) float64 {
	scheme := afe.NewBitVector(f64, l)
	d := newDeployment(scheme, 5, mode, false)
	enc := randomBits(scheme, l)
	subs := d.buildSubs(enc, count)
	if _, err := d.cluster.Leader.ProcessBatch(subs); err != nil {
		panic(err)
	}
	st := d.cluster.Leader.PeerStats(1)
	// BytesRecv at the leader's peer = bytes the non-leader transmitted.
	return float64(st.BytesRecv) / float64(count)
}

var _ = field.NewF64
