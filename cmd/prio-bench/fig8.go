package main

import (
	"fmt"
	"log"
	"time"

	"prio/internal/afe"
	"prio/internal/baseline"
	"prio/internal/core"
)

// fig8 reproduces Figure 8: the time for a client to encode a d-dimensional
// training example of 14-bit values for private least-squares regression,
// under the no-privacy scheme (send the raw example, sealed), the
// no-robustness scheme (secret-share the moment encoding), and full Prio
// (share + SNIP). The paper's finding: Prio costs ~50x the no-privacy
// client, but stays around a tenth of a second absolute.
func fig8() {
	fmt.Println("== Figure 8: client encoding time, d-dim 14-bit regression ==")
	dims := []int{2, 4, 6, 8, 10, 12}
	fmt.Printf("%-6s | %-12s %-12s %-12s %-10s\n", "d", "no-priv", "no-robust", "prio", "prio/np")
	for _, d := range dims {
		scheme := afe.NewLinRegUniform(f64, d, 14)
		x := make([]uint64, d)
		for i := range x {
			x[i] = uint64(1000 + i)
		}
		enc, err := scheme.Encode(x, 5000)
		if err != nil {
			log.Fatal(err)
		}

		// No privacy: seal the raw moment vector to the single server.
		srv, err := baseline.NewNoPrivServer(f64, scheme.KPrime())
		if err != nil {
			log.Fatal(err)
		}
		noPriv := timePerOp(100*time.Millisecond, func() {
			if _, err := baseline.BuildSubmission(f64, srv.PublicKey(), enc[:scheme.KPrime()]); err != nil {
				log.Fatal(err)
			}
		})

		dNR := newDeployment(scheme, 5, core.ModeNoRobust, true)
		noRobust := timePerOp(100*time.Millisecond, func() {
			if _, err := dNR.client.BuildSubmission(enc); err != nil {
				log.Fatal(err)
			}
		})

		dP := newDeployment(scheme, 5, core.ModeSNIP, true)
		prioTime := timePerOp(150*time.Millisecond, func() {
			if _, err := dP.client.BuildSubmission(enc); err != nil {
				log.Fatal(err)
			}
		})

		fmt.Printf("%-6d | %-12s %-12s %-12s %-10.1fx\n",
			d, fmtDur(noPriv), fmtDur(noRobust), fmtDur(prioTime),
			prioTime.Seconds()/noPriv.Seconds())
	}
	fmt.Println("\nshape check: Prio's robustness+privacy costs a constant factor over")
	fmt.Println("no-privacy, growing mildly with d; absolute times stay small.")
}
