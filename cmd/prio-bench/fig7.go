package main

import (
	"fmt"
	"log"
	"time"

	"prio/internal/afe"
	"prio/internal/core"
	"prio/internal/field"
	"prio/internal/snarkcost"
)

// fig7App is one bar group of Figure 7: an application workload with its
// Valid-circuit size and a valid encoding for it.
type fig7App struct {
	group  string
	name   string
	scheme afe.Scheme[uint64]
	enc    []uint64
}

// buildFig7Apps configures the paper's application scenarios:
//
//	Cell    — per-grid-cell 4-bit signal strength; grid sizes chosen so the
//	          multiplication-gate counts match the paper's (64 … 8760);
//	Browser — count-min sketches at the paper's low/high-resolution points
//	          plus two 7-bit usage averages;
//	Survey  — Beck-21 and PCSI-78 (1-4 scale → one-hot over 4), CPI-434
//	          (booleans), matching the paper's 84/312/434 gates;
//	LinReg  — the heart-disease (13 mixed-width features, 174 gates) and
//	          breast-cancer (30×14-bit, 930 gates) model shapes.
func buildFig7Apps() []fig7App {
	var apps []fig7App

	cell := func(name string, cells int) {
		s := afe.NewIntVector(f64, cells, 4)
		vals := make([]uint64, cells)
		enc, err := s.Encode(vals)
		if err != nil {
			log.Fatal(err)
		}
		apps = append(apps, fig7App{"Cell", name, s, enc})
	}
	cell("Geneva", 16)
	cell("Seattle", 217)
	if *full {
		cell("Chicago", 606)
		cell("London", 1570)
		cell("Tokyo", 2190)
	}

	browser := func(name string, eps, delta float64) {
		cpu := afe.NewSum(f64, 7)
		mem := afe.NewSum(f64, 7)
		cm := afe.NewCountMin(f64, eps, delta)
		s := afe.NewConcat[field.F64, uint64](f64, name, cpu, mem, cm)
		ce, _ := cpu.Encode(42)
		me, _ := mem.Encode(63)
		ue, err := cm.Encode([]byte("example.org"))
		if err != nil {
			log.Fatal(err)
		}
		enc, err := s.Pack(ce, me, ue)
		if err != nil {
			log.Fatal(err)
		}
		apps = append(apps, fig7App{"Browser", name, s, enc})
	}
	browser("LowRes", 0.1, 1.0/1024)
	if *full {
		browser("HighRes", 0.01, 1.0/(1<<20))
	}

	survey4 := func(name string, questions int) {
		parts := make([]afe.Scheme[uint64], questions)
		encs := make([][]uint64, questions)
		for q := 0; q < questions; q++ {
			fc := afe.NewFreqCount(f64, 4)
			parts[q] = fc
			e, err := fc.Encode(q % 4)
			if err != nil {
				log.Fatal(err)
			}
			encs[q] = e
		}
		s := afe.NewConcat[field.F64, uint64](f64, name, parts...)
		enc, err := s.Pack(encs...)
		if err != nil {
			log.Fatal(err)
		}
		apps = append(apps, fig7App{"Survey", name, s, enc})
	}
	survey4("Beck-21", 21)
	survey4("PCSI-78", 78)
	{
		s := afe.NewBitVector(f64, 434)
		enc := randomBits(s, 434)
		apps = append(apps, fig7App{"Survey", "CPI-434", s, enc})
	}

	{
		// Heart: 13 features of varying types (some boolean, some
		// continuous), widths chosen to land on the paper's 174 gates.
		widths := []int{1, 1, 1, 1, 1, 4, 4, 4, 8, 8, 8, 10, 10}
		s := afe.NewLinReg(f64, widths, 8)
		x := make([]uint64, len(widths))
		enc, err := s.Encode(x, 0)
		if err != nil {
			log.Fatal(err)
		}
		apps = append(apps, fig7App{"LinReg", "Heart", s, enc})
	}
	{
		s := afe.NewLinRegUniform(f64, 30, 14)
		x := make([]uint64, 30)
		enc, err := s.Encode(x, 0)
		if err != nil {
			log.Fatal(err)
		}
		apps = append(apps, fig7App{"LinReg", "BrCa", s, enc})
	}
	return apps
}

// fig7 reproduces Figure 7: client encoding time per application for Prio,
// Prio-MPC, the NIZK scheme (measured per-gate cost × gate count, i.e. the
// paper's 2M-exponentiation model), and the SNARK estimate.
func fig7() {
	fmt.Println("== Figure 7: client encoding time per application ==")
	model := measureNIZK()
	expCost := snarkcost.MeasureExpCost(16)
	apps := buildFig7Apps()

	fmt.Printf("%-8s %-10s %6s | %-10s %-10s %-10s %-12s\n",
		"group", "app", "Mgate", "prio", "prio-mpc", "nizk*", "snark-est")
	for _, app := range apps {
		m := app.scheme.Circuit().M()

		dP := newDeployment(app.scheme, 5, core.ModeSNIP, true)
		prioTime := timePerOp(150*time.Millisecond, func() {
			if _, err := dP.client.BuildSubmission(app.enc); err != nil {
				log.Fatal(err)
			}
		})
		dM := newDeployment(app.scheme, 5, core.ModeMPC, true)
		mpcTime := timePerOp(150*time.Millisecond, func() {
			if _, err := dM.client.BuildSubmission(app.enc); err != nil {
				log.Fatal(err)
			}
		})
		nizkTime := time.Duration(m) * model.clientPerBit
		snarkTime := snarkcost.EstimateProofTime(m, app.scheme.K(), 5, expCost)

		fmt.Printf("%-8s %-10s %6d | %-10s %-10s %-10s %-12s\n",
			app.group, app.name, m,
			fmtDur(prioTime), fmtDur(mpcTime), fmtDur(nizkTime), fmtDur(snarkTime))
	}
	fmt.Println("\n(*) NIZK = measured per-gate proof cost × M (the paper's 2M-exp model).")
	fmt.Println("shape check: prio ≪ nizk ≪ snark for every application, gaps growing with M.")
}
