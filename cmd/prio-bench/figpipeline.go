package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"prio/internal/afe"
	"prio/internal/core"
)

// figPipeline measures the sharded-pipeline extension: cluster throughput as
// the number of concurrent leader sessions grows, for the Figure 4/5
// workload (1,024 one-bit integers per submission). The paper scales
// throughput by adding leader machines (Appendix I: every server leads a
// slice of the traffic); the pipeline applies the same idea inside one
// process, so on an N-core host throughput should grow near-linearly until
// the shards saturate the cores. On a single core the curve is flat — the
// interesting column is subs/s per shard staying constant.
func figPipeline() {
	fmt.Println("== Pipeline: throughput vs verification shards (L = 1024, s = 3) ==")
	fmt.Printf("GOMAXPROCS = %d\n", runtime.GOMAXPROCS(0))
	const l = 1024
	scheme := afe.NewBitVector(f64, l)
	enc := randomBits(scheme, l)

	subsN := 96
	if *full {
		subsN = 256
	}
	shardCounts := []int{1, 2, 4, 8}

	var base float64
	fmt.Printf("%-8s | %-12s %-12s %-10s\n", "shards", "subs/s", "per-shard", "speedup")
	for _, shards := range shardCounts {
		d := newDeployment(scheme, 3, core.ModeSNIP, true)
		subs := d.buildSubs(enc, subsN)
		rate := pipelineThroughput(d, subs, shards)
		if base == 0 {
			base = rate
		}
		fmt.Printf("%-8d | %-12.1f %-12.1f %-10s\n", shards, rate, rate/float64(shards),
			fmt.Sprintf("%.2fx", rate/base))
	}
	fmt.Println("\nshape check: speedup tracks min(shards, cores) until verification")
	fmt.Println("saturates the host; per-shard throughput stays near the serial rate.")
}

// pipelineThroughput pushes the submissions through a pipeline with the
// given shard count and returns submissions/second.
func pipelineThroughput(d *deployment, subs []*core.Submission, shards int) float64 {
	pl, err := core.NewPipeline(d.cluster.Leader, core.PipelineConfig{
		Shards:   shards,
		MaxBatch: 16,
	})
	if err != nil {
		log.Fatalf("prio-bench: %v", err)
	}
	defer pl.Close()
	start := time.Now()
	for _, sub := range subs {
		if err := pl.Submit(sub); err != nil {
			log.Fatalf("prio-bench: %v", err)
		}
	}
	pl.Drain()
	elapsed := time.Since(start).Seconds()
	if st := pl.Stats(); st.Failed > 0 {
		log.Fatalf("prio-bench: %d submissions failed", st.Failed)
	}
	return float64(len(subs)) / elapsed
}
