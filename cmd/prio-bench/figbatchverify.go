package main

import (
	"crypto/rand"
	"fmt"
	"log"
	"time"

	"prio/internal/afe"
	"prio/internal/field"
	"prio/internal/prg"
	"prio/internal/snip"
)

// figBatchVerify measures the batched SNIP verification extension against
// the per-submission baseline (see docs/VERIFY.md): amortized ns per
// verified submission as the batch size grows, on one verifying server with
// the Figure 4 circuit shape (256 one-bit integers). The batch path pays a
// single gate-major circuit walk and one random-linear-combination check
// for the whole batch, so its curve flattens out well below the baseline's.
func figBatchVerify() {
	fmt.Println("== BatchVerify: amortized verification time vs batch size (L = 256, s = 1) ==")
	scheme := afe.NewBitVector(f64, 256)
	sys, err := snip.NewSystem(f64, scheme.Circuit(), snip.Params{Reps: 1})
	if err != nil {
		log.Fatalf("prio-bench: %v", err)
	}
	ch, err := sys.NewChallenge(rand.Reader)
	if err != nil {
		log.Fatalf("prio-bench: %v", err)
	}
	ev := sys.NewEvaluator(ch)
	bv := ev.Batch()

	batches := []int{16, 64, 256}
	if *full {
		batches = []int{16, 64, 256, 1024}
	}
	minDur := 200 * time.Millisecond

	fmt.Printf("%-8s | %-14s %-14s %-10s\n", "batch", "per-sub ns", "batch ns", "speedup")
	for _, b := range batches {
		xs, pfs := batchProofs(sys, scheme, b)
		per := timePerOp(minDur, func() {
			for j := 0; j < b; j++ {
				st, m, err := ev.Round1(xs[j], pfs[j], true)
				if err != nil {
					log.Fatalf("prio-bench: %v", err)
				}
				op := snip.SumRound1(f64, []*snip.Round1[uint64]{m})
				if !ev.Decide([]*snip.Round2[uint64]{ev.Round2(st, op, 1)}) {
					log.Fatal("prio-bench: honest submission rejected")
				}
			}
		})
		bat := timePerOp(minDur, func() {
			st, msgs, err := bv.Round1(xs, pfs, true)
			if err != nil {
				log.Fatalf("prio-bench: %v", err)
			}
			opened := make([]*snip.Round1[uint64], b)
			for j := range opened {
				opened[j] = snip.SumRound1(f64, []*snip.Round1[uint64]{msgs[j]})
			}
			if err := bv.SetOpened(st, opened, 1); err != nil {
				log.Fatalf("prio-bench: %v", err)
			}
			var seed prg.Seed
			if _, err := rand.Read(seed[:]); err != nil {
				log.Fatalf("prio-bench: %v", err)
			}
			r2, err := bv.Combined(st, snip.RLCCoeffs(f64, seed, b), 0, b)
			if err != nil {
				log.Fatalf("prio-bench: %v", err)
			}
			if !ev.Decide([]*snip.Round2[uint64]{r2}) {
				log.Fatal("prio-bench: honest batch rejected")
			}
		})
		perSub := float64(per.Nanoseconds()) / float64(b)
		batSub := float64(bat.Nanoseconds()) / float64(b)
		fmt.Printf("%-8d | %-14.0f %-14.0f %-10s\n", b, perSub, batSub,
			fmt.Sprintf("%.2fx", perSub/batSub))
	}
	fmt.Println("\nshape check: batch ns/verification flattens as the shared circuit walk")
	fmt.Println("and single RLC check amortize; the speedup should exceed 3x by batch 64.")
}

// batchProofs proves b honest bit-vector submissions.
func batchProofs(sys *snip.System[field.F64, uint64], scheme *afe.BitVector[field.F64, uint64], b int) ([][]uint64, []*snip.Proof[uint64]) {
	l := scheme.K()
	xs := make([][]uint64, b)
	pfs := make([]*snip.Proof[uint64], b)
	bits := make([]bool, l)
	for i := range xs {
		for j := range bits {
			bits[j] = (i+j)%3 == 0
		}
		enc, err := scheme.Encode(bits)
		if err != nil {
			log.Fatalf("prio-bench: %v", err)
		}
		xs[i] = enc
		if pfs[i], err = sys.Prove(enc, rand.Reader); err != nil {
			log.Fatalf("prio-bench: %v", err)
		}
	}
	return xs, pfs
}
