package main

import (
	"fmt"

	"prio/internal/afe"
	"prio/internal/core"
)

// fig5 reproduces Figure 5: cluster throughput as the number of servers
// grows, for the anonymous-survey workload (1,024 one-bit integers per
// submission). The paper's finding is that adding servers barely moves
// throughput, because verification work is constant per server and the
// leader's extra traffic amortizes; the same flatness shows here.
func fig5() {
	fmt.Println("== Figure 5: throughput vs number of servers (L = 1024) ==")
	const l = 1024
	counts := []int{2, 3, 5, 8, 10}
	scheme := afe.NewBitVector(f64, l)
	enc := randomBits(scheme, l)
	model := measureNIZK()

	subsN := 48
	if *full {
		subsN = 128
	}
	noPriv := noPrivThroughput(l, subsN*4)
	nizkRate := 1.0 / (float64(l) * model.serverPerBit.Seconds())

	fmt.Printf("%-8s | %-12s %-12s %-12s %-12s %-12s\n",
		"servers", "no-priv", "no-robust", "prio", "prio-mpc", "nizk*")
	for _, s := range counts {
		dNR := newDeployment(scheme, s, core.ModeNoRobust, true)
		noRobust := dNR.throughput(dNR.buildSubs(enc, subsN*2), 16)

		dP := newDeployment(scheme, s, core.ModeSNIP, true)
		prioRate := dP.throughput(dP.buildSubs(enc, subsN), 16)

		dM := newDeployment(scheme, s, core.ModeMPC, true)
		mpcRate := dM.throughput(dM.buildSubs(enc, 16), 8)

		fmt.Printf("%-8d | %-12.1f %-12.1f %-12.1f %-12.1f %-12.2f\n",
			s, noPriv, noRobust, prioRate, mpcRate, nizkRate)
	}
	fmt.Println("\n(*) NIZK modeled from measured per-bit cost (independent of s).")
	fmt.Println("shape check: Prio throughput is nearly flat in the server count.")
}
