package main

import (
	"crypto/rand"
	"fmt"
	"log"
	"time"

	"prio/internal/afe"
	"prio/internal/core"
	"prio/internal/field"
)

// table3 reproduces Table 3: the time for a client to generate a Prio
// submission of L four-bit integers, across field sizes. The paper compares
// an 87-bit and a 265-bit FFT-friendly field (FLINT-backed); we run the same
// moduli through the generic big-integer field, plus the specialized 64-bit
// and 128-bit fields a production deployment would use. The paper's headline
// shape — per-field-multiplication cost drives client time, and the larger
// field costs a constant factor more — carries over directly.
func table3() {
	fmt.Println("== Table 3: client submission-generation time, L four-bit integers ==")
	sizes := []int{10, 100, 1000}
	fmt.Printf("%-8s | %-12s | %-12s | %-12s | %-12s\n", "", "F64", "F128", "FP87", "FP265")

	mulRow := fmt.Sprintf("%-8s |", "mul(µs)")
	mulRow += fmt.Sprintf(" %-12s |", fmtDur(fieldMulCost(field.NewF64())))
	mulRow += fmt.Sprintf(" %-12s |", fmtDur(fieldMulCost(field.NewF128())))
	mulRow += fmt.Sprintf(" %-12s |", fmtDur(fieldMulCost(field.NewFP87())))
	mulRow += fmt.Sprintf(" %-12s", fmtDur(fieldMulCost(field.NewFP265())))
	fmt.Println(mulRow)

	for _, l := range sizes {
		row := fmt.Sprintf("L = %-4d |", l)
		row += fmt.Sprintf(" %-12s |", fmtDur(clientTime(field.NewF64(), l)))
		row += fmt.Sprintf(" %-12s |", fmtDur(clientTime(field.NewF128(), l)))
		row += fmt.Sprintf(" %-12s |", fmtDur(clientTime(field.NewFP87(), l)))
		row += fmt.Sprintf(" %-12s", fmtDur(clientTime(field.NewFP265(), l)))
		fmt.Println(row)
	}
	fmt.Println("\nshape check: client time scales ~linearly in L (M = 4L gates) and")
	fmt.Println("tracks the per-multiplication cost of the field, as in the paper.")
}

// fieldMulCost times one field multiplication.
func fieldMulCost[Fd field.Field[E], E any](f Fd) time.Duration {
	a, err := f.SampleElem(rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	b, err := f.SampleElem(rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	const inner = 1000
	per := timePerOp(100*time.Millisecond, func() {
		acc := a
		for i := 0; i < inner; i++ {
			acc = f.Mul(acc, b)
		}
		a = acc
	})
	return per / inner
}

// clientTime measures BuildSubmission over field f for L four-bit integers
// with the paper's five servers.
func clientTime[Fd field.Field[E], E any](f Fd, l int) time.Duration {
	scheme := afe.NewIntVector(f, l, 4)
	pro, err := core.NewProtocol(core.Config[Fd, E]{
		Field:    f,
		Scheme:   scheme,
		Servers:  5,
		Mode:     core.ModeSNIP,
		SnipReps: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	client, err := core.NewClient(pro, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	values := make([]uint64, l)
	for i := range values {
		values[i] = uint64(i % 16)
	}
	enc, err := scheme.Encode(values)
	if err != nil {
		log.Fatal(err)
	}
	budget := 150 * time.Millisecond
	if f.Bits() > 128 {
		budget = 400 * time.Millisecond // big.Int fields are slow; fewer iters
	}
	return timePerOp(budget, func() {
		if _, err := client.BuildSubmission(enc); err != nil {
			log.Fatal(err)
		}
	})
}
