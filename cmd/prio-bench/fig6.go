package main

import (
	"fmt"

	"prio/internal/core"
	"prio/internal/nizk"
)

// fig6 reproduces Figure 6: the number of bytes a non-leader server
// transmits to check the validity of one client submission, as the
// submission length grows. Prio's SNIP verification costs a constant few
// hundred bytes regardless of submission size; Prio-MPC's traffic grows
// linearly (one opened Beaver pair per multiplication gate); the NIZK scheme
// must move the entire proof vector. Transfer is measured on the
// byte-counting in-memory transport, not estimated.
func fig6() {
	fmt.Println("== Figure 6: per-server data transfer per submission ==")
	sizes := []int{4, 16, 64, 256, 1024}
	if *full {
		sizes = append(sizes, 4096, 16384)
	}
	fmt.Printf("%-8s | %-12s %-12s %-12s\n", "L", "prio", "prio-mpc", "nizk")
	for _, l := range sizes {
		count := 16
		if l >= 4096 {
			count = 4
		}
		prioBytes := measureServerBytes(core.ModeSNIP, l, count)
		mpcBytes := measureServerBytes(core.ModeMPC, l, count)
		nizkBytes := float64(nizk.SubmissionBytes(l))
		fmt.Printf("%-8d | %-12s %-12s %-12s\n",
			l, fmtBytes(prioBytes), fmtBytes(mpcBytes), fmtBytes(nizkBytes))
	}
	fmt.Println("\nshape check: Prio constant; Prio-MPC and NIZK linear, with NIZK")
	fmt.Println("orders of magnitude larger (the paper's ~4000x at large L).")
}
