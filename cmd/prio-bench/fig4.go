package main

import (
	"fmt"

	"prio/internal/afe"
	"prio/internal/core"
)

// fig4 reproduces Figure 4: submissions processed per second by a
// five-server cluster, as the submission length (0/1 field elements) grows.
// Five schemes: the no-privacy single server, the no-robustness
// secret-sharing scheme, Prio, Prio-MPC, and the NIZK baseline (modeled from
// its measured per-bit verification cost; generating full NIZK submissions
// at large L would take hours, exactly the point of the figure).
func fig4() {
	fmt.Println("== Figure 4: throughput vs submission length (5 servers) ==")
	sizes := []int{16, 64, 256, 1024}
	if *full {
		sizes = append(sizes, 4096, 16384)
	}
	model := measureNIZK()
	fmt.Printf("%-8s | %-12s %-12s %-12s %-12s %-12s\n",
		"L", "no-priv", "no-robust", "prio", "prio-mpc", "nizk*")
	for _, l := range sizes {
		count := 256
		if l >= 1024 {
			count = 48
		}
		if l >= 4096 {
			count = 12
		}
		scheme := afe.NewBitVector(f64, l)
		enc := randomBits(scheme, l)

		noPriv := noPrivThroughput(l, count*4)

		dNR := newDeployment(scheme, 5, core.ModeNoRobust, true)
		noRobust := dNR.throughput(dNR.buildSubs(enc, count*2), 16)

		dP := newDeployment(scheme, 5, core.ModeSNIP, true)
		prioRate := dP.throughput(dP.buildSubs(enc, count), 16)

		mpcRate := 0.0
		if l <= 4096 {
			dM := newDeployment(scheme, 5, core.ModeMPC, true)
			mcount := count
			if mcount > 24 {
				mcount = 24
			}
			mpcRate = dM.throughput(dM.buildSubs(enc, mcount), 8)
		}

		nizkRate := 1.0 / (float64(l) * model.serverPerBit.Seconds())

		mpcStr := "-"
		if mpcRate > 0 {
			mpcStr = fmt.Sprintf("%.1f", mpcRate)
		}
		fmt.Printf("%-8d | %-12.1f %-12.1f %-12.1f %-12s %-12.2f\n",
			l, noPriv, noRobust, prioRate, mpcStr, nizkRate)
	}
	fmt.Println("\n(*) NIZK modeled from measured per-bit P-256 verification cost.")
	fmt.Println("shape check: Prio within a small factor of no-privacy; NIZK orders")
	fmt.Println("of magnitude slower, widening with L.")
}
