package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// benchResult is one `go test -bench` line in machine-readable form.
type benchResult struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	MBPerSec   float64 `json:"mb_per_sec,omitempty"`
	BytesPerOp int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64  `json:"allocs_per_op,omitempty"`
}

// benchReport is the artifact CI archives: environment headers plus every
// benchmark line, so runs are comparable across commits and Go versions.
type benchReport struct {
	Goos       string        `json:"goos,omitempty"`
	Goarch     string        `json:"goarch,omitempty"`
	Pkg        string        `json:"pkg,omitempty"`
	CPU        string        `json:"cpu,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// benchJSON converts `go test -bench` text on stdin to a JSON report on
// stdout:
//
//	go test -bench=. -benchmem ./internal/core/ | prio-bench benchjson > bench.json
//
// Lines that are not benchmark results or recognized headers pass through to
// stderr, so interleaved test output stays visible without corrupting the
// artifact.
func benchJSON(in io.Reader, out io.Writer) error {
	rep := benchReport{Benchmarks: []benchResult{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBenchLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, r)
			} else {
				fmt.Fprintln(os.Stderr, line)
			}
		default:
			if strings.TrimSpace(line) != "" {
				fmt.Fprintln(os.Stderr, line)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// parseBenchLine decodes one result line, e.g.
//
//	BenchmarkVerify/sum8-8   12345   98765 ns/op   1.23 MB/s   456 B/op   7 allocs/op
func parseBenchLine(line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return benchResult{}, false
	}
	iters, err1 := strconv.ParseInt(fields[1], 10, 64)
	ns, err2 := strconv.ParseFloat(fields[2], 64)
	if err1 != nil || err2 != nil {
		return benchResult{}, false
	}
	r := benchResult{Name: fields[0], Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "MB/s":
			r.MBPerSec = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		}
	}
	return r, true
}
