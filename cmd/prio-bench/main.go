// Command prio-bench regenerates every table and figure of the paper's
// evaluation section (Section 6). Each subcommand prints the same rows or
// series the paper reports, measured on this host:
//
//	prio-bench table2   — asymptotic comparison NIZK / SNARK / SNIP
//	prio-bench table3   — client encoding time vs field size (87/265-bit)
//	prio-bench fig4     — server throughput vs submission length
//	prio-bench fig5     — server throughput vs number of servers
//	prio-bench fig6     — per-server bytes transmitted per submission
//	prio-bench fig7     — client encoding time per application
//	prio-bench fig8     — client time vs regression dimension
//	prio-bench table9   — server throughput for d-dim regression
//	prio-bench pipeline — throughput vs concurrent verification shards
//	prio-bench ingest   — streamed vs round-trip submission throughput
//	prio-bench batchverify — batched vs per-submission SNIP verification
//	prio-bench window   — checkpoint write/recovery latency vs accumulator size
//	prio-bench all      — everything above, in order
//
// Absolute numbers differ from the paper's 2016 EC2 testbed; the shapes —
// who wins, by what factor, and how costs scale — are the reproduction
// target (see EXPERIMENTS.md). Use -full for the paper's complete parameter
// sweeps; the default is a faster subset.
package main

import (
	"flag"
	"fmt"
	"os"

	"prio/internal/cli"
)

var full = flag.Bool("full", false, "run the paper's full parameter sweeps (slower)")

func main() {
	flag.Parse()
	cli.InitLog()
	if flag.NArg() < 1 {
		usage()
	}
	cmd := flag.Arg(0)
	if cmd == "benchjson" {
		if err := benchJSON(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "prio-bench: benchjson:", err)
			os.Exit(1)
		}
		return
	}
	experiments := map[string]func(){
		"table2":      table2,
		"table3":      table3,
		"fig4":        fig4,
		"fig5":        fig5,
		"fig6":        fig6,
		"fig7":        fig7,
		"fig8":        fig8,
		"table9":      table9,
		"pipeline":    figPipeline,
		"ingest":      figIngest,
		"batchverify": figBatchVerify,
		"window":      figWindow,
	}
	if cmd == "all" {
		for _, name := range []string{"table2", "table3", "fig4", "fig5", "fig6", "fig7", "fig8", "table9", "pipeline", "ingest", "batchverify", "window"} {
			experiments[name]()
			fmt.Println()
		}
		return
	}
	fn, ok := experiments[cmd]
	if !ok {
		usage()
	}
	fn()
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: prio-bench [-full] {table2|table3|fig4|fig5|fig6|fig7|fig8|table9|pipeline|ingest|batchverify|window|all}")
	fmt.Fprintln(os.Stderr, "       prio-bench benchjson < go-test-bench-output > report.json")
	os.Exit(2)
}
