package main

import (
	"fmt"
	"log"

	"prio/internal/afe"
	"prio/internal/core"
)

// table9 reproduces Table 9: the rate (submissions/second) at which a
// five-server cluster runs private d-dimensional regression, with the
// no-privacy and no-robustness comparison points and the derived cost
// factors ("Priv. cost" = no-priv/no-robust, "Robust. cost" =
// no-robust/prio, "Tot. cost" = no-priv/prio).
func table9() {
	fmt.Println("== Table 9: d-dim regression throughput, 5 servers ==")
	dims := []int{2, 4, 6, 8, 10, 12}
	fmt.Printf("%-4s | %-10s | %-10s %-9s | %-10s %-12s %-9s\n",
		"d", "no-priv", "no-robust", "priv.cost", "prio", "robust.cost", "tot.cost")
	for _, d := range dims {
		scheme := afe.NewLinRegUniform(f64, d, 14)
		x := make([]uint64, d)
		for i := range x {
			x[i] = uint64(500 * (i + 1))
		}
		enc, err := scheme.Encode(x, 9999)
		if err != nil {
			log.Fatal(err)
		}

		count := 128
		if *full {
			count = 512
		}
		noPriv := noPrivThroughput(scheme.KPrime(), count*4)

		dNR := newDeployment(scheme, 5, core.ModeNoRobust, true)
		noRobust := dNR.throughput(dNR.buildSubs(enc, count), 16)

		dP := newDeployment(scheme, 5, core.ModeSNIP, true)
		prioRate := dP.throughput(dP.buildSubs(enc, count/2), 16)

		fmt.Printf("%-4d | %-10.0f | %-10.0f %-9.1f | %-10.0f %-12.1f %-9.1f\n",
			d, noPriv, noRobust, noPriv/noRobust, prioRate, noRobust/prioRate, noPriv/prioRate)
	}
	fmt.Println("\nshape check: privacy costs a ~constant factor; robustness adds a")
	fmt.Println("small, slowly-growing factor on top (the paper reports 1-2x).")
}
