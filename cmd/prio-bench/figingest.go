package main

import (
	"fmt"
	"log"
	"time"

	"prio/internal/afe"
	"prio/internal/core"
	"prio/internal/field"
	"prio/internal/ingest"
	"prio/internal/sealbox"
	"prio/internal/transport"
)

// figIngest measures the streaming ingestion subsystem against the
// request/response submit path it replaces, over real TCP.
//
// Two workloads separate the two bottlenecks:
//
//   - Front door (no-robust, unsealed): verification is negligible, so the
//     table isolates what the ingest path itself sustains. The round-trip
//     path pays a connection round-trip per submission; the streamed path
//     pipelines a credit window of framed submissions per flush. This is
//     where the ≥5× acceptance bar for the subsystem lives (see
//     BenchmarkStreamIngest).
//   - Full verification (SNIP, sealed) across shard counts: on a host with
//     cores to spare, streamed ingest keeps the shards fed and throughput
//     tracks the pipeline; on a small host both paths converge to the
//     verification rate — the front door is no longer the bottleneck, which
//     is the point.
func figIngest() {
	fmt.Println("== Ingest: streamed vs round-trip submissions over TCP (sum8, s = 3) ==")

	fmt.Println("\n-- front door (no-robust, unsealed): ingest is the bottleneck --")
	d := newTCPDeployment(core.ModeNoRobust, false, 2, 64)
	subs := d.buildSumSubs(64) // recycled: client cost is not under test
	rt := d.roundTripRate(subs, 3000)
	st := d.streamRate(subs, 20000)
	fmt.Printf("%-14s | %-14s %-10s\n", "rt subs/s", "stream subs/s", "speedup")
	fmt.Printf("%-14.1f | %-14.1f %-10s\n", rt, st, fmt.Sprintf("%.1fx", st/rt))
	d.close()

	fmt.Println("\n-- full verification (prio, sealed): pipeline vs shards --")
	shardCounts := []int{1, 2, 4}
	if *full {
		shardCounts = []int{1, 2, 4, 8}
	}
	fmt.Printf("%-8s | %-14s %-14s %-10s\n", "shards", "rt subs/s", "stream subs/s", "speedup")
	for _, shards := range shardCounts {
		d := newTCPDeployment(core.ModeSNIP, true, shards, 16)
		subs := d.buildSumSubs(64)
		rt := d.roundTripRate(subs, 400)
		st := d.streamRate(subs, 2000)
		fmt.Printf("%-8d | %-14.1f %-14.1f %-10s\n", shards, rt, st, fmt.Sprintf("%.1fx", st/rt))
		d.close()
	}
	fmt.Println("\nshape check: the front-door speedup is the streamed path's win (one")
	fmt.Println("round-trip amortized over a credit window); under full verification the")
	fmt.Println("streamed path tracks the pipeline rate as shards grow, instead of")
	fmt.Println("capping it at the connection's request rate.")
}

// tcpDeployment is a three-server deployment over real localhost TCP with a
// sharded pipeline and the ingest stream handler on the leader's listener.
type tcpDeployment struct {
	pro    *core.Protocol[field.F64, uint64]
	client *core.Client[field.F64, uint64]
	pl     *core.Pipeline[field.F64, uint64]
	ing    *ingest.Server
	addr   string
	closer []func()
}

func newTCPDeployment(mode core.Mode, seal bool, shards, maxBatch int) *tcpDeployment {
	const servers = 3
	pro, err := core.NewProtocol(core.Config[field.F64, uint64]{
		Field:    f64,
		Scheme:   afe.NewSum(f64, 8),
		Servers:  servers,
		Mode:     mode,
		SnipReps: 1,
		Seal:     seal,
	})
	if err != nil {
		log.Fatalf("prio-bench: %v", err)
	}
	d := &tcpDeployment{pro: pro}
	srvs := make([]*core.Server[field.F64, uint64], servers)
	peers := make([]transport.Peer, servers)
	for i := 0; i < servers; i++ {
		srv, err := core.NewServer(pro, i, nil)
		if err != nil {
			log.Fatalf("prio-bench: %v", err)
		}
		srvs[i] = srv
	}
	peers[0] = &transport.LoopbackPeer{Handler: srvs[0].Handle}
	for i := 1; i < servers; i++ {
		ln, err := transport.Listen("127.0.0.1:0", nil, srvs[i].Handle)
		if err != nil {
			log.Fatalf("prio-bench: %v", err)
		}
		d.closer = append(d.closer, func() { ln.Close() })
		p, err := transport.Dial(ln.Addr().String(), nil)
		if err != nil {
			log.Fatalf("prio-bench: %v", err)
		}
		peers[i] = transport.NewCoalescer(p)
	}
	leader, err := core.NewLeader(srvs[0], peers)
	if err != nil {
		log.Fatalf("prio-bench: %v", err)
	}
	pl, err := core.NewPipeline(leader, core.PipelineConfig{Shards: shards, MaxBatch: maxBatch})
	if err != nil {
		log.Fatalf("prio-bench: %v", err)
	}
	d.pl = pl
	d.closer = append(d.closer, func() { pl.Close() })

	// The leader's public listener: MsgSubmit feeds the pipeline (the
	// request/response path), stream opens go to the ingest handler.
	ing := ingest.NewServer(pl, ingest.Config{Credits: 512, QueueDepth: 4096})
	d.ing = ing
	d.closer = append(d.closer, ing.Close)
	ln, err := transport.Listen("127.0.0.1:0", nil, func(msgType byte, payload []byte) ([]byte, error) {
		if msgType != core.MsgSubmit {
			return srvs[0].Handle(msgType, payload)
		}
		sub, err := core.UnmarshalSubmission(payload)
		if err != nil {
			return nil, err
		}
		return nil, pl.SubmitFunc(sub, nil)
	})
	if err != nil {
		log.Fatalf("prio-bench: %v", err)
	}
	ln.OnStream(ing.Handler())
	d.addr = ln.Addr().String()
	d.closer = append(d.closer, func() { ln.Close() })

	var keys []*sealbox.PublicKey
	if seal {
		keys = make([]*sealbox.PublicKey, servers)
		for i, srv := range srvs {
			keys[i] = srv.PublicKey()
		}
	}
	client, err := core.NewClient(pro, keys, nil)
	if err != nil {
		log.Fatalf("prio-bench: %v", err)
	}
	d.client = client
	return d
}

func (d *tcpDeployment) buildSumSubs(count int) []*core.Submission {
	enc, err := afe.NewSum(f64, 8).Encode(1)
	if err != nil {
		log.Fatalf("prio-bench: %v", err)
	}
	subs := make([]*core.Submission, count)
	for i := range subs {
		subs[i], err = d.client.BuildSubmission(enc)
		if err != nil {
			log.Fatalf("prio-bench: %v", err)
		}
	}
	return subs
}

// roundTripRate submits serially over one connection, one Call round-trip
// per submission — the path cmd/prio-server served before the ingest
// subsystem — and returns decided submissions/second.
func (d *tcpDeployment) roundTripRate(subs []*core.Submission, n int) float64 {
	peer, err := transport.Dial(d.addr, nil)
	if err != nil {
		log.Fatalf("prio-bench: %v", err)
	}
	defer peer.Close()
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := peer.Call(core.MsgSubmit, subs[i%len(subs)].Marshal()); err != nil {
			log.Fatalf("prio-bench: %v", err)
		}
	}
	d.pl.Drain()
	return float64(n) / time.Since(start).Seconds()
}

// streamRate pushes n recycled submissions through one ingest stream and
// returns acked submissions/second.
func (d *tcpDeployment) streamRate(subs []*core.Submission, n int) float64 {
	s, err := ingest.Dial(d.addr, ingest.SubmitterConfig{})
	if err != nil {
		log.Fatalf("prio-bench: %v", err)
	}
	defer s.Close()
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := s.Submit(subs[i%len(subs)]); err != nil {
			log.Fatalf("prio-bench: %v", err)
		}
	}
	if err := s.Wait(); err != nil {
		log.Fatalf("prio-bench: %v", err)
	}
	elapsed := time.Since(start).Seconds()
	st := s.Stats()
	if st.Accepted != uint64(n) {
		log.Fatalf("prio-bench: %d of %d streamed submissions accepted (%d shed)",
			st.Accepted, n, st.Shed)
	}
	return float64(n) / elapsed
}

func (d *tcpDeployment) close() {
	for i := len(d.closer) - 1; i >= 0; i-- {
		d.closer[i]()
	}
}
