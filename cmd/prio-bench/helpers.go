package main

import (
	"crypto/rand"
	"fmt"
	"log"
	"time"

	"prio/internal/afe"
	"prio/internal/baseline"
	"prio/internal/core"
	"prio/internal/field"
	"prio/internal/nizk"
)

// f64 is the deployment field for every experiment except Table 3's field
// comparison.
var f64 = field.NewF64()

type deployment struct {
	pro     *core.Protocol[field.F64, uint64]
	cluster *core.Cluster[field.F64, uint64]
	client  *core.Client[field.F64, uint64]
}

// newDeployment builds an in-process cluster; it dies on configuration
// errors (the harness controls all inputs).
func newDeployment(scheme afe.Scheme[uint64], servers int, mode core.Mode, seal bool) *deployment {
	pro, err := core.NewProtocol(core.Config[field.F64, uint64]{
		Field:    f64,
		Scheme:   scheme,
		Servers:  servers,
		Mode:     mode,
		SnipReps: 1, // match the paper's single identity test per submission
		Seal:     seal,
	})
	if err != nil {
		log.Fatalf("prio-bench: %v", err)
	}
	cluster, err := core.NewLocalCluster(pro)
	if err != nil {
		log.Fatalf("prio-bench: %v", err)
	}
	client, err := core.NewClient(pro, cluster.PublicKeys(), nil)
	if err != nil {
		log.Fatalf("prio-bench: %v", err)
	}
	return &deployment{pro: pro, cluster: cluster, client: client}
}

// buildSubs pre-generates count submissions of the given encoding, as the
// paper's load generators pre-generate client packets.
func (d *deployment) buildSubs(enc []uint64, count int) []*core.Submission {
	subs := make([]*core.Submission, count)
	for i := range subs {
		sub, err := d.client.BuildSubmission(enc)
		if err != nil {
			log.Fatalf("prio-bench: %v", err)
		}
		subs[i] = sub
	}
	return subs
}

// throughput processes the submissions in batches and returns
// submissions/second.
func (d *deployment) throughput(subs []*core.Submission, batch int) float64 {
	start := time.Now()
	for off := 0; off < len(subs); off += batch {
		end := off + batch
		if end > len(subs) {
			end = len(subs)
		}
		if _, err := d.cluster.Leader.ProcessBatch(subs[off:end]); err != nil {
			log.Fatalf("prio-bench: %v", err)
		}
	}
	return float64(len(subs)) / time.Since(start).Seconds()
}

// timePerOp runs fn repeatedly until minDur has elapsed and returns the mean
// duration per call (with one warm-up call).
func timePerOp(minDur time.Duration, fn func()) time.Duration {
	fn() // warm up
	iters := 0
	start := time.Now()
	for time.Since(start) < minDur {
		fn()
		iters++
	}
	return time.Since(start) / time.Duration(iters)
}

// noPrivThroughput measures the no-privacy baseline: one server ingesting
// sealed plaintext vectors of length k.
func noPrivThroughput(k, count int) float64 {
	srv, err := baseline.NewNoPrivServer(f64, k)
	if err != nil {
		log.Fatal(err)
	}
	vec := make([]uint64, k)
	blobs := make([][]byte, count)
	for i := range blobs {
		b, err := baseline.BuildSubmission(f64, srv.PublicKey(), vec)
		if err != nil {
			log.Fatal(err)
		}
		blobs[i] = b
	}
	start := time.Now()
	for _, b := range blobs {
		if _, err := srv.Handle(baseline.MsgSubmit, b); err != nil {
			log.Fatal(err)
		}
	}
	return float64(count) / time.Since(start).Seconds()
}

// nizkCosts measures the NIZK baseline's per-bit client and server costs
// once; experiments scale them by the bit count.
type nizkCostModel struct {
	clientPerBit time.Duration
	serverPerBit time.Duration
}

var nizkModel *nizkCostModel

func measureNIZK() *nizkCostModel {
	if nizkModel != nil {
		return nizkModel
	}
	ks, err := nizk.GenerateKeyShare()
	if err != nil {
		log.Fatal(err)
	}
	joint := nizk.JointKey([]nizk.Point{ks.Pub})
	const probe = 16
	bits := make([]bool, probe)
	for i := range bits {
		bits[i] = i%2 == 0
	}
	var sub *nizk.Submission
	client := timePerOp(200*time.Millisecond, func() {
		s, err := nizk.NewSubmission(joint, bits)
		if err != nil {
			log.Fatal(err)
		}
		sub = s
	})
	server := timePerOp(200*time.Millisecond, func() {
		if !sub.Verify(joint) {
			log.Fatal("nizk probe verify failed")
		}
	})
	nizkModel = &nizkCostModel{clientPerBit: client / probe, serverPerBit: server / probe}
	return nizkModel
}

// randomBits builds an L-bit encoding for the BitVector scheme.
func randomBits(scheme *afe.BitVector[field.F64, uint64], l int) []uint64 {
	bits := make([]bool, l)
	buf := make([]byte, (l+7)/8)
	if _, err := rand.Read(buf); err != nil {
		log.Fatal(err)
	}
	for i := range bits {
		bits[i] = buf[i/8]&(1<<uint(i%8)) != 0
	}
	enc, err := scheme.Encode(bits)
	if err != nil {
		log.Fatal(err)
	}
	return enc
}

// fmtDur renders a duration in engineering style (µs/ms/s).
func fmtDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%.0fns", float64(d.Nanoseconds()))
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// fmtBytes renders a byte count.
func fmtBytes(b float64) string {
	switch {
	case b < 1024:
		return fmt.Sprintf("%.0fB", b)
	case b < 1<<20:
		return fmt.Sprintf("%.1fKiB", b/1024)
	default:
		return fmt.Sprintf("%.2fMiB", b/(1<<20))
	}
}
