// Command prio-client submits private values to a Prio deployment.
//
// The client fetches every server's public key, builds the sealed, proved
// submissions locally, and uploads them to the leader over one persistent
// streamed connection — -n submissions pipeline on that single stream with
// asynchronous acks, instead of paying a round-trip (or worse, a dial) per
// submission. Shed acks (transient server backpressure) and stream failures
// are retried up to -max-attempts rather than reported as loss; the printed
// ledger separates those retries from terminal outcomes. The value syntax
// depends on the scheme: a decimal integer for sums, a comma-separated 0/1
// vector for surveys, "x1,x2,...;y" for regression.
//
//	prio-client -peers localhost:7000,localhost:7001,localhost:7002 \
//	    -scheme sum8 -value 17 -n 100
//
// TLS is on by default, matching prio-server; pass -tls-ca to authenticate
// the servers against a pinned certificate bundle, or -tls=false for a
// plaintext deployment.
package main

import (
	"crypto/tls"
	"flag"
	"fmt"
	"log"
	"strings"

	"prio"
	"prio/internal/cli"
	"prio/internal/ingest"
	"prio/internal/transport"
)

var (
	peersFlag   = flag.String("peers", "", "comma-separated server addresses in index order")
	schemeFlag  = flag.String("scheme", "sum8", "statistic spec (must match the servers)")
	modeFlag    = flag.String("mode", "prio", "validation mode (must match the servers)")
	value       = flag.String("value", "", "private value to submit")
	count       = flag.Int("n", 1, "submit the value this many times over one stream")
	maxAttempts = flag.Int("max-attempts", 4, "delivery attempts per submission before abandoning it")
	useTLS      = flag.Bool("tls", true, "dial the servers over TLS")
	tlsCA       = flag.String("tls-ca", "", "PEM bundle to authenticate the servers against")
)

func main() {
	flag.Parse()
	cli.InitLog()
	if *peersFlag == "" || *value == "" {
		log.Fatal("prio-client: -peers and -value are required")
	}
	peers := strings.Split(*peersFlag, ",")
	scheme, err := prio.ParseScheme(*schemeFlag)
	if err != nil {
		log.Fatal(err)
	}
	mode, err := cli.ParseMode(*modeFlag)
	if err != nil {
		log.Fatal(err)
	}
	var tlsCfg *tls.Config
	if *useTLS {
		tlsCfg, err = transport.ClientTLS(*tlsCA)
		if err != nil {
			log.Fatal(err)
		}
	}
	pro, err := prio.NewProtocol(prio.Config{Scheme: scheme, Servers: len(peers), Mode: mode, Seal: true})
	if err != nil {
		log.Fatal(err)
	}
	keys := make([]*prio.ServerPublicKey, len(peers))
	for i, addr := range peers {
		k, err := prio.FetchPublicKeyTLS(addr, tlsCfg)
		if err != nil {
			log.Fatalf("prio-client: fetching key from %s: %v", addr, err)
		}
		keys[i] = k
	}
	client, err := prio.NewClient(pro, keys, nil)
	if err != nil {
		log.Fatal(err)
	}
	enc, err := cli.EncodeValue(scheme, *value)
	if err != nil {
		log.Fatal(err)
	}

	// The failover layer turns shed acks and stream deaths into retries, so
	// the ledger below reports only terminal outcomes — a shed under
	// transient backpressure is re-submitted, not counted as loss.
	leader := peers[0]
	stream, err := ingest.NewFailoverSubmitter(ingest.FailoverConfig{
		Dial: func(onAck func(ingest.Ack)) (*ingest.StreamSubmitter, error) {
			return ingest.Dial(leader, ingest.SubmitterConfig{TLS: tlsCfg, OnAck: onAck})
		},
		MaxAttempts: *maxAttempts,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer stream.Close()
	for i := 0; i < *count; i++ {
		sub, err := client.BuildSubmission(enc)
		if err != nil {
			log.Fatal(err)
		}
		if err := stream.Submit(sub); err != nil {
			log.Fatal(err)
		}
	}
	stream.Wait()
	st := stream.Stats()
	fmt.Printf("streamed %d encrypted share bundle(s) of %q to %s: %d accepted, %d rejected, %d abandoned\n",
		st.Submitted, *value, leader, st.Accepted, st.Rejected, st.Abandoned)
	if st.ShedRetried+st.FailedRetried+st.Redials > 0 {
		fmt.Printf("retries: %d shed, %d failed, %d redials\n",
			st.ShedRetried, st.FailedRetried, st.Redials)
	}
}
