// Command prio-client submits private values to a Prio deployment.
//
// The client fetches every server's public key, builds the sealed, proved
// submission locally, and uploads it to the leader in a single message. The
// value syntax depends on the scheme: a decimal integer for sums, a
// comma-separated 0/1 vector for surveys, "x1,x2,...;y" for regression.
//
//	prio-client -peers localhost:7000,localhost:7001,localhost:7002 \
//	    -scheme sum8 -value 17
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"prio"
	"prio/internal/core"
	"prio/internal/transport"
)

var (
	peersFlag  = flag.String("peers", "", "comma-separated server addresses in index order")
	schemeFlag = flag.String("scheme", "sum8", "statistic spec (must match the servers)")
	modeFlag   = flag.String("mode", "prio", "validation mode (must match the servers)")
	value      = flag.String("value", "", "private value to submit")
	repeat     = flag.Int("repeat", 1, "submit the value this many times (load testing)")
)

func main() {
	flag.Parse()
	if *peersFlag == "" || *value == "" {
		log.Fatal("prio-client: -peers and -value are required")
	}
	peers := strings.Split(*peersFlag, ",")
	scheme, err := prio.ParseScheme(*schemeFlag)
	if err != nil {
		log.Fatal(err)
	}
	mode, err := parseMode(*modeFlag)
	if err != nil {
		log.Fatal(err)
	}
	pro, err := prio.NewProtocol(prio.Config{Scheme: scheme, Servers: len(peers), Mode: mode, Seal: true})
	if err != nil {
		log.Fatal(err)
	}
	keys := make([]*prio.ServerPublicKey, len(peers))
	for i, addr := range peers {
		k, err := prio.FetchPublicKey(addr)
		if err != nil {
			log.Fatalf("prio-client: fetching key from %s: %v", addr, err)
		}
		keys[i] = k
	}
	client, err := prio.NewClient(pro, keys, nil)
	if err != nil {
		log.Fatal(err)
	}
	enc, err := encodeValue(scheme, *value)
	if err != nil {
		log.Fatal(err)
	}

	leader, err := transport.Dial(peers[0], nil)
	if err != nil {
		log.Fatal(err)
	}
	defer leader.Close()
	for i := 0; i < *repeat; i++ {
		sub, err := client.BuildSubmission(enc)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := leader.Call(core.MsgSubmit, sub.Marshal()); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("submitted %d encrypted share bundle(s) of %q to %s\n", *repeat, *value, peers[0])
}

func parseMode(s string) (prio.Mode, error) {
	switch s {
	case "prio":
		return prio.ModePrio, nil
	case "prio-mpc":
		return prio.ModePrioMPC, nil
	case "no-robust":
		return prio.ModeNoRobustness, nil
	default:
		return 0, fmt.Errorf("prio-client: unknown mode %q", s)
	}
}

// encodeValue parses the textual value for the given scheme and encodes it.
func encodeValue(scheme prio.Scheme, v string) ([]uint64, error) {
	switch s := scheme.(type) {
	case *prio.Sum:
		x, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return nil, err
		}
		return s.Encode(x)
	case *prio.Variance:
		x, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return nil, err
		}
		return s.Encode(x)
	case *prio.FreqCount:
		x, err := strconv.Atoi(v)
		if err != nil {
			return nil, err
		}
		return s.Encode(x)
	case *prio.MostPopular:
		x, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return nil, err
		}
		return s.Encode(x)
	case *prio.BitVector:
		parts := strings.Split(v, ",")
		bits := make([]bool, len(parts))
		for i, p := range parts {
			bits[i] = strings.TrimSpace(p) == "1"
		}
		return s.Encode(bits)
	case *prio.IntVector:
		parts := strings.Split(v, ",")
		vals := make([]uint64, len(parts))
		for i, p := range parts {
			x, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
			if err != nil {
				return nil, err
			}
			vals[i] = x
		}
		return s.Encode(vals)
	case *prio.LinReg:
		halves := strings.SplitN(v, ";", 2)
		if len(halves) != 2 {
			return nil, fmt.Errorf("prio-client: linreg value must be \"x1,x2,...;y\"")
		}
		parts := strings.Split(halves[0], ",")
		xs := make([]uint64, len(parts))
		for i, p := range parts {
			x, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
			if err != nil {
				return nil, err
			}
			xs[i] = x
		}
		y, err := strconv.ParseUint(strings.TrimSpace(halves[1]), 10, 64)
		if err != nil {
			return nil, err
		}
		return s.Encode(xs, y)
	default:
		return nil, fmt.Errorf("prio-client: no value parser for scheme %s", scheme.Name())
	}
}
