package prio

import (
	"prio/internal/afe"
	"prio/internal/field"
)

// The aggregate statistics of Section 5, instantiated over the deployment
// field. Each type carries its own strongly-typed Encode and Decode; all
// satisfy Scheme and plug into Config.Scheme.
type (
	// Sum sums b-bit integers (and means via DecodeMean).
	Sum = afe.Sum[field.F64, uint64]
	// GeoMean computes products and geometric means via log-domain sums.
	GeoMean = afe.GeoMean[field.F64, uint64]
	// Variance computes mean and variance/stddev of b-bit integers.
	Variance = afe.Variance[field.F64, uint64]
	// FreqCount computes the full histogram over a small value domain.
	FreqCount = afe.FreqCount[field.F64, uint64]
	// BitVector sums vectors of 0/1 survey responses per position.
	BitVector = afe.BitVector[field.F64, uint64]
	// IntVector sums vectors of b-bit integers per position.
	IntVector = afe.IntVector[field.F64, uint64]
	// LinReg trains a least-squares model on private examples.
	LinReg = afe.LinReg[field.F64, uint64]
	// R2 evaluates a public linear model's fit on private examples.
	R2 = afe.R2[field.F64, uint64]
	// CountMin estimates frequencies over large domains with a sketch.
	CountMin = afe.CountMin[field.F64, uint64]
	// MostPopular recovers a string held by a majority of clients.
	MostPopular = afe.MostPopular[field.F64, uint64]
	// Concat composes several statistics into one submission.
	Concat = afe.Concat[field.F64, uint64]
)

// The boolean family of Section 5.2 aggregates by XOR in F_2^λ rather than
// by field addition; it has its own tiny pipeline (encode, XOR-split,
// XOR-aggregate, decode) because no validation circuit is needed.
type (
	// BoolOr computes the OR of one bit per client.
	BoolOr = afe.BoolOr
	// BoolAnd computes the AND of one bit per client.
	BoolAnd = afe.BoolAnd
	// MinMax computes exact minima/maxima over small ranges.
	MinMax = afe.MinMax
	// ApproxMinMax computes c-approximate minima/maxima over huge ranges.
	ApproxMinMax = afe.ApproxMinMax
	// SetOp computes set unions and intersections over small universes.
	SetOp = afe.SetOp
)

// NewSum constructs the b-bit integer summation statistic (Section 5.2).
func NewSum(bits int) *Sum { return afe.NewSum(field.NewF64(), bits) }

// NewGeoMean constructs the product/geometric-mean statistic with the given
// fixed-point log encoding (Section 5.2).
func NewGeoMean(bits, fracBits int) *GeoMean {
	return afe.NewGeoMean(field.NewF64(), bits, fracBits)
}

// NewVariance constructs the variance/stddev statistic for b-bit integers
// (Section 5.2).
func NewVariance(bits int) *Variance { return afe.NewVariance(field.NewF64(), bits) }

// NewFreqCount constructs the histogram statistic over B buckets
// (Section 5.2).
func NewFreqCount(buckets int) *FreqCount { return afe.NewFreqCount(field.NewF64(), buckets) }

// NewBitVector constructs the L-question boolean survey statistic
// (Section 6.1's workload).
func NewBitVector(l int) *BitVector { return afe.NewBitVector(field.NewF64(), l) }

// NewIntVector constructs the per-position sum of L b-bit integers (the
// cell-signal workload of Section 6.2).
func NewIntVector(l, bits int) *IntVector {
	return afe.NewIntVector(field.NewF64(), l, bits)
}

// NewLinReg constructs private least-squares regression with per-feature
// bit widths (Section 5.3).
func NewLinReg(xBits []int, yBits int) *LinReg {
	return afe.NewLinReg(field.NewF64(), xBits, yBits)
}

// NewLinRegUniform is NewLinReg with d features of b bits each.
func NewLinRegUniform(d, b int) *LinReg {
	return afe.NewLinRegUniform(field.NewF64(), d, b)
}

// NewR2 constructs the model-evaluation statistic for a public integer
// linear model (Appendix G).
func NewR2(model []int64, xBits []int, yBits int) *R2 {
	return afe.NewR2(field.NewF64(), model, xBits, yBits)
}

// NewCountMin constructs the approximate-count sketch statistic: estimates
// within ε·n except with probability δ (Appendix G).
func NewCountMin(epsilon, delta float64) *CountMin {
	return afe.NewCountMin(field.NewF64(), epsilon, delta)
}

// NewMostPopular constructs the majority-string statistic for b-bit strings
// (Appendix G).
func NewMostPopular(bits int) *MostPopular {
	return afe.NewMostPopular(field.NewF64(), bits)
}

// NewConcat composes several statistics into a single submission with one
// merged validity proof.
func NewConcat(name string, parts ...Scheme) *Concat {
	return afe.NewConcat(field.NewF64(), name, parts...)
}

// NewBoolOr constructs the boolean-OR statistic with security parameter
// lambda (Section 5.2; the paper suggests 80 or 128).
func NewBoolOr(lambda int) *BoolOr { return afe.NewBoolOr(lambda) }

// NewBoolAnd constructs the boolean-AND statistic.
func NewBoolAnd(lambda int) *BoolAnd { return afe.NewBoolAnd(lambda) }

// NewMax constructs the exact maximum over {0..B-1}.
func NewMax(b, lambda int) *MinMax { return afe.NewMax(b, lambda) }

// NewMin constructs the exact minimum over {0..B-1}.
func NewMin(b, lambda int) *MinMax { return afe.NewMin(b, lambda) }

// NewApproxMax constructs a c-approximate maximum over {0..B-1} for large B.
func NewApproxMax(b uint64, c float64, lambda int) *ApproxMinMax {
	return afe.NewApproxMax(b, c, lambda)
}

// NewApproxMin constructs a c-approximate minimum.
func NewApproxMin(b uint64, c float64, lambda int) *ApproxMinMax {
	return afe.NewApproxMin(b, c, lambda)
}

// NewSetUnion constructs set union over a B-element universe.
func NewSetUnion(b, lambda int) *SetOp { return afe.NewSetUnion(b, lambda) }

// NewSetIntersection constructs set intersection.
func NewSetIntersection(b, lambda int) *SetOp { return afe.NewSetIntersection(b, lambda) }

// XorAggregate folds an XOR-family encoding or share into an accumulator.
func XorAggregate(acc, enc []uint64) { afe.XorAggregate(acc, enc) }

// XorSplit splits an XOR-family encoding into s shares (one per server).
func XorSplit(enc []uint64, s int) ([][]uint64, error) { return afe.XorSplit(enc, s) }
