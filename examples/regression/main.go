// Command regression privately trains a least-squares model on synthetic
// health data, reproducing the Section 5.3 scenario: predicting a vital sign
// from daily activity without any server seeing a single patient's record.
//
// The synthetic cohort mimics the paper's breast-cancer configuration shape
// (continuous 14-bit fixed-point features); the decoded model is compared
// against the model fit directly on the raw data.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"prio"
)

const (
	d        = 3  // features: daily steps, age, resting heart rate
	bits     = 14 // fixed-point width, as in the paper's datasets
	patients = 200
)

func main() {
	scheme := prio.NewLinRegUniform(d, bits)
	pro, err := prio.NewProtocol(prio.Config{
		Scheme:  scheme,
		Servers: 2,
		Mode:    prio.ModePrio,
		Seal:    true,
	})
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := prio.NewLocalCluster(pro)
	if err != nil {
		log.Fatal(err)
	}
	client, err := prio.NewClient(pro, cluster.PublicKeys(), nil)
	if err != nil {
		log.Fatal(err)
	}

	// Ground-truth model: y = 40 + 2·x1 + 1·x2 + 3·x3 + noise.
	coef := []float64{40, 2, 1, 3}
	rng := rand.New(rand.NewSource(7))
	var subs []*prio.Submission
	var rawX [][]uint64
	var rawY []uint64
	for p := 0; p < patients; p++ {
		x := []uint64{
			uint64(rng.Intn(2000)), // steps (scaled)
			uint64(18 + rng.Intn(70)),
			uint64(50 + rng.Intn(60)),
		}
		y := coef[0] + coef[1]*float64(x[0]) + coef[2]*float64(x[1]) + coef[3]*float64(x[2]) +
			rng.NormFloat64()*25
		if y < 0 {
			y = 0
		}
		yi := uint64(math.Round(y))
		if yi >= 1<<bits {
			yi = 1<<bits - 1
		}
		rawX = append(rawX, x)
		rawY = append(rawY, yi)

		enc, err := scheme.Encode(x, yi)
		if err != nil {
			log.Fatal(err)
		}
		sub, err := client.BuildSubmission(enc)
		if err != nil {
			log.Fatal(err)
		}
		subs = append(subs, sub)
	}

	for start := 0; start < len(subs); start += 50 {
		end := min(start+50, len(subs))
		if _, err := cluster.Leader.ProcessBatch(subs[start:end]); err != nil {
			log.Fatal(err)
		}
	}

	agg, n, err := cluster.Leader.Aggregate()
	if err != nil {
		log.Fatal(err)
	}
	private, err := scheme.Decode(agg, int(n))
	if err != nil {
		log.Fatal(err)
	}
	r2, err := scheme.DecodeR2(agg, int(n))
	if err != nil {
		log.Fatal(err)
	}

	// Fit the same model on the raw data for comparison (what a
	// privacy-invasive aggregator would compute).
	direct := directFit(rawX, rawY)

	fmt.Printf("%-12s %12s %12s\n", "coefficient", "private", "direct")
	labels := []string{"intercept", "steps", "age", "restHR"}
	for i := range private {
		fmt.Printf("%-12s %12.4f %12.4f\n", labels[i], private[i], direct[i])
		if math.Abs(private[i]-direct[i]) > 1e-6 {
			log.Fatal("private fit differs from direct fit")
		}
	}
	fmt.Printf("model R² on cohort: %.4f\n", r2)
	fmt.Println("the private fit is bit-exact: Prio aggregates the same moments a direct fit uses")
}

// directFit solves the normal equations on the raw data.
func directFit(xs [][]uint64, ys []uint64) []float64 {
	n := len(xs)
	a := make([][]float64, d+1)
	for i := range a {
		a[i] = make([]float64, d+1)
	}
	rhs := make([]float64, d+1)
	for p := 0; p < n; p++ {
		row := make([]float64, d+1)
		row[0] = 1
		for j := 0; j < d; j++ {
			row[j+1] = float64(xs[p][j])
		}
		for i := 0; i <= d; i++ {
			for j := 0; j <= d; j++ {
				a[i][j] += row[i] * row[j]
			}
			rhs[i] += row[i] * float64(ys[p])
		}
	}
	// Gaussian elimination.
	for col := 0; col <= d; col++ {
		piv := col
		for r := col + 1; r <= d; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		a[col], a[piv] = a[piv], a[col]
		rhs[col], rhs[piv] = rhs[piv], rhs[col]
		for r := col + 1; r <= d; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c <= d; c++ {
				a[r][c] -= f * a[col][c]
			}
			rhs[r] -= f * rhs[col]
		}
	}
	out := make([]float64, d+1)
	for r := d; r >= 0; r-- {
		v := rhs[r]
		for c := r + 1; c <= d; c++ {
			v -= a[r][c] * out[c]
		}
		out[r] = v / a[r][r]
	}
	return out
}
