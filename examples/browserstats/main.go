// Command browserstats reproduces the paper's browser-telemetry application
// (Section 6.2): the RAPPOR-style Chromium statistics recast as a single
// Prio submission — average CPU and memory usage plus frequency counts of
// popular URL roots via a count-min sketch (Appendix G).
//
// One composed submission carries all three statistics under one merged
// validity proof, so a malicious browser can shift each count by at most one
// and each average by at most one reading.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"prio"
)

const (
	cpuBits = 7 // percentage 0..100
	memBits = 7
	clients = 150
)

var urlRoots = []string{
	"google.com", "youtube.com", "facebook.com", "wikipedia.org",
	"reddit.com", "amazon.com", "twitter.com", "instagram.com",
	"linkedin.com", "netflix.com", "bing.com", "office.com",
	"github.com", "stackoverflow.com", "nytimes.com", "weather.com",
}

func main() {
	cpu := prio.NewSum(cpuBits)
	mem := prio.NewSum(memBits)
	// The paper's low-resolution sketch point: δ=2⁻¹⁰, ε=1/10.
	urls := prio.NewCountMin(0.1, 1.0/1024)
	scheme := prio.NewConcat("browser", cpu, mem, urls)
	fmt.Printf("composed submission: %d field elements, %d multiplication gates\n",
		scheme.K(), scheme.Circuit().M())

	pro, err := prio.NewProtocol(prio.Config{
		Scheme:  scheme,
		Servers: 2,
		Mode:    prio.ModePrio,
		Seal:    true,
	})
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := prio.NewLocalCluster(pro)
	if err != nil {
		log.Fatal(err)
	}
	client, err := prio.NewClient(pro, cluster.PublicKeys(), nil)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	var cpuTotal, memTotal uint64
	visits := map[string]uint64{}
	var subs []*prio.Submission
	for cIdx := 0; cIdx < clients; cIdx++ {
		cpuVal := uint64(10 + rng.Intn(60))
		memVal := uint64(20 + rng.Intn(70))
		// Zipf-ish homepage popularity.
		root := urlRoots[int(rng.ExpFloat64()*3)%len(urlRoots)]
		cpuTotal += cpuVal
		memTotal += memVal
		visits[root]++

		ce, err := cpu.Encode(cpuVal)
		if err != nil {
			log.Fatal(err)
		}
		me, err := mem.Encode(memVal)
		if err != nil {
			log.Fatal(err)
		}
		ue, err := urls.Encode([]byte(root))
		if err != nil {
			log.Fatal(err)
		}
		enc, err := scheme.Pack(ce, me, ue)
		if err != nil {
			log.Fatal(err)
		}
		sub, err := client.BuildSubmission(enc)
		if err != nil {
			log.Fatal(err)
		}
		subs = append(subs, sub)
	}

	for start := 0; start < len(subs); start += 25 {
		end := min(start+25, len(subs))
		if _, err := cluster.Leader.ProcessBatch(subs[start:end]); err != nil {
			log.Fatal(err)
		}
	}

	agg, n, err := cluster.Leader.Aggregate()
	if err != nil {
		log.Fatal(err)
	}
	offs := scheme.Offsets()
	cpuAvg, err := cpu.DecodeMean(agg[offs[0][0]:offs[0][1]], int(n))
	if err != nil {
		log.Fatal(err)
	}
	memAvg, err := mem.DecodeMean(agg[offs[1][0]:offs[1][1]], int(n))
	if err != nil {
		log.Fatal(err)
	}
	sk, err := urls.Decode(agg[offs[2][0]:offs[2][1]], int(n))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("avg CPU: %.2f%% (truth %.2f%%)\n", cpuAvg, float64(cpuTotal)/clients)
	fmt.Printf("avg mem: %.2f%% (truth %.2f%%)\n", memAvg, float64(memTotal)/clients)
	fmt.Printf("%-20s %-10s %-10s\n", "url root", "estimate", "truth")
	for _, root := range urlRoots[:8] {
		est := sk.Estimate([]byte(root))
		fmt.Printf("%-20s %-10d %-10d\n", root, est, visits[root])
		if est < visits[root] {
			log.Fatal("count-min underestimated (impossible)")
		}
	}
	fmt.Printf("aggregated %d browsers; sketch estimates within ε·n of truth\n", n)
}
