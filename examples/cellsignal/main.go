// Command cellsignal reproduces the paper's cell-signal-strength
// application (Section 6.2): phones report 4-bit signal strength for the
// grid cell they are in, and the servers learn the average strength per
// cell without learning any phone's location history.
//
// The encoding is a per-cell pair of (one-hot presence, masked strength):
// we compose one FreqCount over the cells (which cell, validated one-hot)
// with a Sum carrying the strength — only the occupied cell contributes.
// Decoding divides per-cell strength totals by per-cell presence counts.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"prio"
)

const (
	gridCells = 16 // "Geneva" size: 16 cells × 4 bits = 64 mul gates
	strBits   = 4
	phones    = 120
)

// cellScheme composes per-cell strength sums: cell c's strength occupies
// component c; validity requires each strength be a 4-bit integer and that
// strengths are zero outside the (one-hot validated) occupied cell — we
// enforce the range checks per cell, which caps any malicious phone's
// influence on any cell at 15, matching the paper's robustness goal.
func cellScheme() (*prio.Concat, []*prio.Sum, *prio.FreqCount) {
	parts := make([]prio.Scheme, 0, gridCells+1)
	sums := make([]*prio.Sum, gridCells)
	for c := 0; c < gridCells; c++ {
		sums[c] = prio.NewSum(strBits)
		parts = append(parts, sums[c])
	}
	presence := prio.NewFreqCount(gridCells)
	parts = append(parts, presence)
	return prio.NewConcat("cellsignal", parts...), sums, presence
}

func main() {
	scheme, sums, presence := cellScheme()
	fmt.Printf("grid: %d cells; Valid circuit has %d multiplication gates\n",
		gridCells, scheme.Circuit().M())

	pro, err := prio.NewProtocol(prio.Config{
		Scheme:  scheme,
		Servers: 3,
		Mode:    prio.ModePrio,
		Seal:    true,
	})
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := prio.NewLocalCluster(pro)
	if err != nil {
		log.Fatal(err)
	}
	client, err := prio.NewClient(pro, cluster.PublicKeys(), nil)
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth: cell c has typical strength (c mod 16).
	rng := rand.New(rand.NewSource(11))
	strengthSum := make([]uint64, gridCells)
	presenceCnt := make([]uint64, gridCells)
	var subs []*prio.Submission
	for p := 0; p < phones; p++ {
		cell := rng.Intn(gridCells)
		strength := uint64((cell + rng.Intn(4)) % 16)
		strengthSum[cell] += strength
		presenceCnt[cell]++

		encs := make([][]uint64, 0, gridCells+1)
		for c := 0; c < gridCells; c++ {
			v := uint64(0)
			if c == cell {
				v = strength
			}
			e, err := sums[c].Encode(v)
			if err != nil {
				log.Fatal(err)
			}
			encs = append(encs, e)
		}
		pe, err := presence.Encode(cell)
		if err != nil {
			log.Fatal(err)
		}
		encs = append(encs, pe)
		enc, err := scheme.Pack(encs...)
		if err != nil {
			log.Fatal(err)
		}
		sub, err := client.BuildSubmission(enc)
		if err != nil {
			log.Fatal(err)
		}
		subs = append(subs, sub)
	}

	for start := 0; start < len(subs); start += 30 {
		end := min(start+30, len(subs))
		if _, err := cluster.Leader.ProcessBatch(subs[start:end]); err != nil {
			log.Fatal(err)
		}
	}

	agg, n, err := cluster.Leader.Aggregate()
	if err != nil {
		log.Fatal(err)
	}
	offs := scheme.Offsets()
	fmt.Printf("%-6s %-8s %-10s %-10s\n", "cell", "phones", "avg", "truth")
	for c := 0; c < gridCells; c++ {
		part := agg[offs[c][0]:offs[c][1]]
		total, err := sums[c].Decode(part, int(n))
		if err != nil {
			log.Fatal(err)
		}
		cnt, err := presence.Decode(agg[offs[gridCells][0]:offs[gridCells][1]], int(n))
		if err != nil {
			log.Fatal(err)
		}
		if cnt[c] != presenceCnt[c] || total.Uint64() != strengthSum[c] {
			log.Fatalf("cell %d: aggregate mismatch", c)
		}
		avg := 0.0
		if cnt[c] > 0 {
			avg = float64(total.Uint64()) / float64(cnt[c])
		}
		truth := 0.0
		if presenceCnt[c] > 0 {
			truth = float64(strengthSum[c]) / float64(presenceCnt[c])
		}
		fmt.Printf("%-6d %-8d %-10.2f %-10.2f\n", c, cnt[c], avg, truth)
	}
	fmt.Printf("aggregated %d phones; per-cell averages exact, locations never revealed\n", n)
}
