// Command survey runs an anonymous boolean survey over real TCP
// connections, in the style of the paper's California Psychological
// Inventory configuration (434 true/false questions, Section 6.2).
//
// Three aggregation servers listen on loopback TCP ports; the first also
// acts as leader. Simulated respondents encrypt a share of their answer
// sheet to each server, and the published aggregate is the per-question
// "yes" count — no server ever sees an individual's answers.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"prio"
)

const (
	questions   = 434 // CPI-434
	respondents = 40
	servers     = 3
)

func main() {
	scheme := prio.NewBitVector(questions)
	pro, err := prio.NewProtocol(prio.Config{
		Scheme:  scheme,
		Servers: servers,
		Mode:    prio.ModePrio,
		Seal:    true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Start the aggregation servers on loopback TCP.
	srvs := make([]*prio.Server, servers)
	addrs := make([]string, servers)
	for i := 0; i < servers; i++ {
		srv, err := prio.NewServer(pro, i)
		if err != nil {
			log.Fatal(err)
		}
		ln, err := prio.ListenAndServe("127.0.0.1:0", srv)
		if err != nil {
			log.Fatal(err)
		}
		defer ln.Close()
		srvs[i] = srv
		addrs[i] = ln.Addr().String()
		fmt.Printf("server %d listening on %s\n", i, addrs[i])
	}
	leader, err := prio.ConnectLeader(srvs[0], addrs)
	if err != nil {
		log.Fatal(err)
	}

	// Respondents fetch the servers' keys over the network, like real
	// clients would.
	keys := make([]*prio.ServerPublicKey, servers)
	for i, addr := range addrs {
		k, err := prio.FetchPublicKey(addr)
		if err != nil {
			log.Fatal(err)
		}
		keys[i] = k
	}
	client, err := prio.NewClient(pro, keys, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Each respondent answers "yes" to question q with probability
	// q/questions, so the expected histogram has a visible gradient.
	rng := rand.New(rand.NewSource(42))
	truth := make([]uint64, questions)
	var subs []*prio.Submission
	for r := 0; r < respondents; r++ {
		answers := make([]bool, questions)
		for q := range answers {
			answers[q] = rng.Float64() < float64(q)/questions
			if answers[q] {
				truth[q]++
			}
		}
		enc, err := scheme.Encode(answers)
		if err != nil {
			log.Fatal(err)
		}
		sub, err := client.BuildSubmission(enc)
		if err != nil {
			log.Fatal(err)
		}
		subs = append(subs, sub)
	}

	// The leader verifies in batches of 10.
	for start := 0; start < len(subs); start += 10 {
		end := min(start+10, len(subs))
		accepts, err := leader.ProcessBatch(subs[start:end])
		if err != nil {
			log.Fatal(err)
		}
		for i, ok := range accepts {
			if !ok {
				log.Fatalf("honest respondent %d rejected", start+i)
			}
		}
	}

	agg, n, err := leader.Aggregate()
	if err != nil {
		log.Fatal(err)
	}
	counts, err := scheme.Decode(agg, int(n))
	if err != nil {
		log.Fatal(err)
	}
	for q := range counts {
		if counts[q] != truth[q] {
			log.Fatalf("question %d: got %d, want %d", q, counts[q], truth[q])
		}
	}
	fmt.Printf("aggregated %d respondents over TCP; all %d per-question counts exact\n", n, questions)
	fmt.Printf("sample: q0=%d q100=%d q200=%d q300=%d q433=%d\n",
		counts[0], counts[100], counts[200], counts[300], counts[433])
}
