// Command quickstart is the smallest complete Prio deployment: two servers
// in one process privately count how many of 100 simulated clients have a
// sensitive property (the paper's motivating example — counting installs of
// a sensitive app — without any server ever seeing an individual answer).
//
// It also demonstrates robustness: a malicious client tries to add one
// million to the counter and is rejected by SNIP verification.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"prio"
)

func main() {
	// A 1-bit sum is a private counter.
	scheme := prio.NewSum(1)
	pro, err := prio.NewProtocol(prio.Config{
		Scheme:  scheme,
		Servers: 2,
		Mode:    prio.ModePrio,
		Seal:    true,
	})
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := prio.NewLocalCluster(pro)
	if err != nil {
		log.Fatal(err)
	}
	client, err := prio.NewClient(pro, cluster.PublicKeys(), nil)
	if err != nil {
		log.Fatal(err)
	}

	// 100 honest clients; about 30% have the sensitive property.
	rng := rand.New(rand.NewSource(1))
	var subs []*prio.Submission
	truth := 0
	for i := 0; i < 100; i++ {
		has := uint64(0)
		if rng.Float64() < 0.3 {
			has = 1
			truth++
		}
		enc, err := scheme.Encode(has)
		if err != nil {
			log.Fatal(err)
		}
		sub, err := client.BuildSubmission(enc)
		if err != nil {
			log.Fatal(err)
		}
		subs = append(subs, sub)
	}

	// One malicious client tries the Section-1 attack: an encoding that
	// claims the value 1,000,000 instead of a bit.
	evil := make([]uint64, scheme.K())
	evil[0] = 1_000_000
	evilSub, err := client.BuildSubmission(evil)
	if err != nil {
		log.Fatal(err)
	}
	subs = append(subs, evilSub)

	accepts, err := cluster.Leader.ProcessBatch(subs)
	if err != nil {
		log.Fatal(err)
	}
	rejected := 0
	for _, ok := range accepts {
		if !ok {
			rejected++
		}
	}

	agg, n, err := cluster.Leader.Aggregate()
	if err != nil {
		log.Fatal(err)
	}
	count, err := scheme.Decode(agg, int(n))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("clients submitting:        %d (+1 malicious)\n", 100)
	fmt.Printf("submissions rejected:      %d\n", rejected)
	fmt.Printf("private count:             %v\n", count)
	fmt.Printf("ground truth:              %d\n", truth)
	if count.Uint64() != uint64(truth) || rejected != 1 {
		log.Fatal("quickstart: unexpected result")
	}
	fmt.Println("the malicious boost was blocked; no server saw any client's bit")
}
