// BenchmarkBatchVerify measures the batched SNIP verification path against
// the per-submission baseline on equal terms: same circuit, same proofs,
// same single-server arithmetic, batch sizes swept past the pipeline's
// default. The headline metric is ns/verification (amortized per
// submission); allocs/op at equal batch size compares the two modes' memory
// traffic. See docs/VERIFY.md for why the batch path wins: shared Lagrange
// weights, one gate-major circuit walk, and one 2N-point inner product per
// repetition for the whole batch instead of one per submission.
package prio_test

import (
	"crypto/rand"
	"fmt"
	"testing"

	"prio/internal/afe"
	"prio/internal/field"
	"prio/internal/prg"
	"prio/internal/snip"
)

// batchVerifyFixture proves `batch` honest 256-bit-vector submissions and
// returns everything a single verifying server needs.
func batchVerifyFixture(b *testing.B, batch int) (field.F64, *snip.Evaluator[field.F64, uint64], [][]uint64, []*snip.Proof[uint64]) {
	b.Helper()
	f := field.NewF64()
	const l = 256
	scheme := afe.NewBitVector(f, l)
	sys, err := snip.NewSystem(f, scheme.Circuit(), snip.Params{Reps: 1})
	if err != nil {
		b.Fatal(err)
	}
	ch, err := sys.NewChallenge(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	ev := sys.NewEvaluator(ch)
	xs := make([][]uint64, batch)
	pfs := make([]*snip.Proof[uint64], batch)
	bits := make([]bool, l)
	for i := range xs {
		for j := range bits {
			bits[j] = (i+j)%3 == 0
		}
		enc, err := scheme.Encode(bits)
		if err != nil {
			b.Fatal(err)
		}
		xs[i] = enc
		if pfs[i], err = sys.Prove(enc, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
	return f, ev, xs, pfs
}

// BenchmarkBatchVerify sweeps batch size for both verification modes. The
// interesting comparison is ns/verification and allocs/op between
// Mode=per-submission and Mode=batch at the same B. Run with:
//
//	go test -bench=BatchVerify -benchmem
func BenchmarkBatchVerify(b *testing.B) {
	for _, batch := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("Mode=per-submission/B=%d", batch), func(b *testing.B) {
			f, ev, xs, pfs := batchVerifyFixture(b, batch)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < batch; j++ {
					st, m, err := ev.Round1(xs[j], pfs[j], true)
					if err != nil {
						b.Fatal(err)
					}
					op := snip.SumRound1(f, []*snip.Round1[uint64]{m})
					r2 := ev.Round2(st, op, 1)
					if !ev.Decide([]*snip.Round2[uint64]{r2}) {
						b.Fatal("honest submission rejected")
					}
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/verification")
		})
		b.Run(fmt.Sprintf("Mode=batch/B=%d", batch), func(b *testing.B) {
			f, ev, xs, pfs := batchVerifyFixture(b, batch)
			bv := ev.Batch()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, msgs, err := bv.Round1(xs, pfs, true)
				if err != nil {
					b.Fatal(err)
				}
				opened := make([]*snip.Round1[uint64], batch)
				for j := range opened {
					opened[j] = snip.SumRound1(f, []*snip.Round1[uint64]{msgs[j]})
				}
				if err := bv.SetOpened(st, opened, 1); err != nil {
					b.Fatal(err)
				}
				var seed prg.Seed
				if _, err := rand.Read(seed[:]); err != nil {
					b.Fatal(err)
				}
				r2, err := bv.Combined(st, snip.RLCCoeffs(f, seed, batch), 0, batch)
				if err != nil {
					b.Fatal(err)
				}
				if !ev.Decide([]*snip.Round2[uint64]{r2}) {
					b.Fatal("honest batch rejected")
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/verification")
		})
	}
}
