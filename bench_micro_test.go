package prio_test

import (
	"crypto/rand"
	"fmt"
	"testing"

	"prio/internal/circuit"
	"prio/internal/field"
	"prio/internal/poly"
	"prio/internal/prg"
	"prio/internal/share"
	"prio/internal/snip"
)

// Microbenchmarks of the substrates underneath every experiment: field
// multiplication (Table 3's "Mul. in field" row), the NTT, SNIP proving and
// the per-server verification work, and share expansion. These are the
// ablation handles for the design decisions in DESIGN.md (NTT domain,
// precomputed evaluation weights, PRG share compression).

func BenchmarkFieldMul(b *testing.B) {
	b.Run("F64", func(b *testing.B) {
		f := field.NewF64()
		x, _ := f.SampleElem(rand.Reader)
		y, _ := f.SampleElem(rand.Reader)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x = f.Mul(x, y)
		}
	})
	b.Run("F128", func(b *testing.B) {
		f := field.NewF128()
		x, _ := f.SampleElem(rand.Reader)
		y, _ := f.SampleElem(rand.Reader)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x = f.Mul(x, y)
		}
	})
	b.Run("FP87", func(b *testing.B) {
		f := field.NewFP87()
		x, _ := f.SampleElem(rand.Reader)
		y, _ := f.SampleElem(rand.Reader)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x = f.Mul(x, y)
		}
	})
	b.Run("FP265", func(b *testing.B) {
		f := field.NewFP265()
		x, _ := f.SampleElem(rand.Reader)
		y, _ := f.SampleElem(rand.Reader)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x = f.Mul(x, y)
		}
	})
}

func BenchmarkNTT(b *testing.B) {
	f := field.NewF64()
	for _, logN := range []int{8, 10, 12} {
		b.Run(fmt.Sprintf("N=%d", 1<<logN), func(b *testing.B) {
			d := poly.NewDomain(f, logN)
			a, err := field.SampleVec(f, rand.Reader, d.N)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.NTT(a)
			}
		})
	}
}

func BenchmarkEvalWeights(b *testing.B) {
	// The per-challenge precomputation of Appendix I optimization 2.
	f := field.NewF64()
	d := poly.NewDomain(f, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.EvalWeights(uint64(i + 2<<20))
	}
}

func bitCircuitF64(l int) *circuit.Circuit[uint64] {
	f := field.NewF64()
	bld := circuit.NewBuilder(f, l)
	for i := 0; i < l; i++ {
		bld.AssertBit(bld.Input(i))
	}
	return bld.Build()
}

func BenchmarkSNIPProve(b *testing.B) {
	f := field.NewF64()
	for _, m := range []int{64, 1024} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			sys, err := snip.NewSystem(f, bitCircuitF64(m), snip.Params{})
			if err != nil {
				b.Fatal(err)
			}
			x := make([]uint64, m)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.Prove(x, rand.Reader); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSNIPVerifyServer(b *testing.B) {
	// One server's local Round1+Round2 work per submission (the dominant
	// verification cost; network rounds are measured in Fig 4/6).
	f := field.NewF64()
	for _, m := range []int{64, 1024} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			sys, err := snip.NewSystem(f, bitCircuitF64(m), snip.Params{})
			if err != nil {
				b.Fatal(err)
			}
			x := make([]uint64, m)
			pf, err := sys.Prove(x, rand.Reader)
			if err != nil {
				b.Fatal(err)
			}
			ch, err := sys.NewChallenge(rand.Reader)
			if err != nil {
				b.Fatal(err)
			}
			ev := sys.NewEvaluator(ch)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, r1, err := ev.Round1(x, pf, true)
				if err != nil {
					b.Fatal(err)
				}
				_ = ev.Round2(st, r1, 1)
			}
		})
	}
}

func BenchmarkShareExpand(b *testing.B) {
	// PRG share expansion (Appendix I optimization 1): the non-leader
	// servers' cost of materializing a seeded share.
	f := field.NewF64()
	seed, err := prgSeed()
	if err != nil {
		b.Fatal(err)
	}
	for _, l := range []int{1024, 16384} {
		b.Run(fmt.Sprintf("L=%d", l), func(b *testing.B) {
			b.SetBytes(int64(8 * l))
			for i := 0; i < b.N; i++ {
				_ = share.Expand(f, seed, l)
			}
		})
	}
}

func BenchmarkSplitSeeded(b *testing.B) {
	f := field.NewF64()
	x, err := field.SampleVec(f, rand.Reader, 4096)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := share.SplitSeeded(f, x, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// prgSeed draws a fresh PRG seed for the expansion benchmarks.
func prgSeed() (prg.Seed, error) { return prg.NewSeed() }
