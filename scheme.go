package prio

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseScheme builds a Scheme from a compact textual spec, for command-line
// tools and config files:
//
//	sum<b>          — b-bit integer sum            (e.g. "sum8")
//	var<b>          — b-bit mean/variance          (e.g. "var8")
//	bits<L>         — L-question boolean survey    (e.g. "bits434")
//	freq<B>         — histogram over B buckets     (e.g. "freq16")
//	ints<L>x<b>     — L integers of b bits         (e.g. "ints16x4")
//	linreg<d>x<b>   — d-dim b-bit regression       (e.g. "linreg3x14")
//	countmin<R>/<D> — sketch with ε=1/R, δ=2^-D    (e.g. "countmin10/10")
//	mostpop<b>      — b-bit majority string        (e.g. "mostpop16")
func ParseScheme(spec string) (Scheme, error) {
	num := func(s string) (int, error) {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			return 0, fmt.Errorf("prio: bad scheme parameter %q", s)
		}
		return v, nil
	}
	two := func(s, name string) (int, int, error) {
		parts := strings.SplitN(s, "x", 2)
		if len(parts) != 2 {
			return 0, 0, fmt.Errorf("prio: %s needs <a>x<b>, got %q", name, s)
		}
		a, err := num(parts[0])
		if err != nil {
			return 0, 0, err
		}
		b, err := num(parts[1])
		if err != nil {
			return 0, 0, err
		}
		return a, b, nil
	}
	switch {
	case strings.HasPrefix(spec, "sum"):
		b, err := num(spec[3:])
		if err != nil {
			return nil, err
		}
		return NewSum(b), nil
	case strings.HasPrefix(spec, "var"):
		b, err := num(spec[3:])
		if err != nil {
			return nil, err
		}
		return NewVariance(b), nil
	case strings.HasPrefix(spec, "bits"):
		l, err := num(spec[4:])
		if err != nil {
			return nil, err
		}
		return NewBitVector(l), nil
	case strings.HasPrefix(spec, "freq"):
		b, err := num(spec[4:])
		if err != nil {
			return nil, err
		}
		return NewFreqCount(b), nil
	case strings.HasPrefix(spec, "ints"):
		l, b, err := two(spec[4:], "ints")
		if err != nil {
			return nil, err
		}
		return NewIntVector(l, b), nil
	case strings.HasPrefix(spec, "linreg"):
		d, b, err := two(spec[6:], "linreg")
		if err != nil {
			return nil, err
		}
		return NewLinRegUniform(d, b), nil
	case strings.HasPrefix(spec, "countmin"):
		parts := strings.SplitN(spec[8:], "/", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("prio: countmin needs <R>/<D>, got %q", spec)
		}
		r, err := num(parts[0])
		if err != nil {
			return nil, err
		}
		d, err := num(parts[1])
		if err != nil {
			return nil, err
		}
		return NewCountMin(1/float64(r), 1/float64(uint64(1)<<uint(d))), nil
	case strings.HasPrefix(spec, "mostpop"):
		b, err := num(spec[7:])
		if err != nil {
			return nil, err
		}
		return NewMostPopular(b), nil
	default:
		return nil, fmt.Errorf("prio: unknown scheme spec %q", spec)
	}
}
