package prio_test

import (
	"crypto/rand"
	"fmt"
	"testing"

	"prio/internal/field"
	"prio/internal/poly"
	"prio/internal/prg"
	"prio/internal/share"
)

// Ablation: the prover's h = f·g construction via NTT versus the schoolbook
// alternative (O(M²) naive interpolation + multiplication). This is the
// design decision behind using FFT-friendly fields (DESIGN.md §3); the paper
// offloaded the same step to FLINT's FFT.
func BenchmarkAblation_ProofPolynomials(b *testing.B) {
	f := field.NewF64()
	for _, m := range []int{64, 256} {
		// Wire values standing in for the mul-gate operands.
		u, err := field.SampleVec(f, rand.Reader, m+1)
		if err != nil {
			b.Fatal(err)
		}
		v, err := field.SampleVec(f, rand.Reader, m+1)
		if err != nil {
			b.Fatal(err)
		}

		b.Run(fmt.Sprintf("NTT/M=%d", m), func(b *testing.B) {
			logN := 0
			for 1<<logN < m+1 {
				logN++
			}
			dN := poly.NewDomain(f, logN)
			d2N := poly.NewDomain(f, logN+1)
			for i := 0; i < b.N; i++ {
				fv := make([]uint64, dN.N)
				gv := make([]uint64, dN.N)
				copy(fv, u)
				copy(gv, v)
				dN.INTT(fv)
				dN.INTT(gv)
				f2 := make([]uint64, d2N.N)
				g2 := make([]uint64, d2N.N)
				copy(f2, fv)
				copy(g2, gv)
				d2N.NTT(f2)
				d2N.NTT(g2)
				for j := range f2 {
					f2[j] = f.Mul(f2[j], g2[j])
				}
			}
		})

		b.Run(fmt.Sprintf("Naive/M=%d", m), func(b *testing.B) {
			xs := make([]uint64, m+1)
			for i := range xs {
				xs[i] = uint64(i)
			}
			for i := 0; i < b.N; i++ {
				fc := poly.Interpolate(f, xs, u)
				gc := poly.Interpolate(f, xs, v)
				_ = poly.MulNaive(f, fc, gc)
			}
		})
	}
}

// Ablation: PRG share compression (Appendix I opt. 1) versus explicit
// shares — the client-side upload-size trade measured as time; the byte
// saving is s× by construction.
func BenchmarkAblation_ShareCompression(b *testing.B) {
	f := field.NewF64()
	x, err := field.SampleVec(f, rand.Reader, 4096)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Seeded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := shareSplitSeeded(f, x, 5); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Explicit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := shareSplit(f, x, 5); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// shareSplitSeeded and shareSplit adapt the share package to the ablation
// benchmarks above.
func shareSplitSeeded(f field.F64, x []uint64, s int) ([]prg.Seed, []uint64, error) {
	return share.SplitSeeded(f, x, s)
}

func shareSplit(f field.F64, x []uint64, s int) ([][]uint64, error) {
	return share.Split(f, rand.Reader, x, s)
}
