package prio_test

import (
	"fmt"
	"testing"

	"prio"
)

func TestQuickstartFlow(t *testing.T) {
	scheme := prio.NewSum(1)
	pro, err := prio.NewProtocol(prio.Config{
		Scheme:  scheme,
		Servers: 2,
		Mode:    prio.ModePrio,
		Seal:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := prio.NewLocalCluster(pro)
	if err != nil {
		t.Fatal(err)
	}
	client, err := prio.NewClient(pro, cluster.PublicKeys(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var subs []*prio.Submission
	for _, has := range []uint64{1, 0, 1, 1, 0} {
		enc, err := scheme.Encode(has)
		if err != nil {
			t.Fatal(err)
		}
		sub, err := client.BuildSubmission(enc)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub)
	}
	accepts, err := cluster.Leader.ProcessBatch(subs)
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range accepts {
		if !ok {
			t.Errorf("submission %d rejected", i)
		}
	}
	agg, n, err := cluster.Leader.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	total, err := scheme.Decode(agg, int(n))
	if err != nil {
		t.Fatal(err)
	}
	if total.Uint64() != 3 {
		t.Errorf("count = %v, want 3", total)
	}
}

func TestTCPDeployment(t *testing.T) {
	// Full networked flow: three server processes (simulated in-process),
	// leader connects over TCP, clients fetch keys over TCP.
	const s = 3
	scheme := prio.NewFreqCount(4)
	pro, err := prio.NewProtocol(prio.Config{
		Scheme:  scheme,
		Servers: s,
		Mode:    prio.ModePrio,
		Seal:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	servers := make([]*prio.Server, s)
	addrs := make([]string, s)
	listeners := make([]*prio.Listener, s)
	for i := 0; i < s; i++ {
		srv, err := prio.NewServer(pro, i)
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
		ln, err := prio.ListenAndServe("127.0.0.1:0", srv)
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
		defer ln.Close()
	}
	leader, err := prio.ConnectLeader(servers[0], addrs)
	if err != nil {
		t.Fatal(err)
	}

	keys := make([]*prio.ServerPublicKey, s)
	for i := 0; i < s; i++ {
		k, err := prio.FetchPublicKey(addrs[i])
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = k
	}
	client, err := prio.NewClient(pro, keys, nil)
	if err != nil {
		t.Fatal(err)
	}

	votes := []int{0, 1, 1, 3, 1, 2}
	var subs []*prio.Submission
	for _, v := range votes {
		enc, err := scheme.Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		sub, err := client.BuildSubmission(enc)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub)
	}
	accepts, err := leader.ProcessBatch(subs)
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range accepts {
		if !ok {
			t.Fatalf("submission %d rejected", i)
		}
	}
	agg, n, err := leader.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	hist, err := scheme.Decode(agg, int(n))
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 3, 1, 1}
	for i := range want {
		if hist[i] != want[i] {
			t.Errorf("hist[%d] = %d, want %d", i, hist[i], want[i])
		}
	}
}

func TestPublicBooleanFamily(t *testing.T) {
	or := prio.NewBoolOr(80)
	agg := make([]uint64, or.Words())
	for _, b := range []bool{false, true, false} {
		enc, err := or.Encode(b, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Demonstrate the share path as servers would use it.
		shares, err := prio.XorSplit(enc, 2)
		if err != nil {
			t.Fatal(err)
		}
		prio.XorAggregate(agg, shares[0])
		prio.XorAggregate(agg, shares[1])
	}
	got, err := or.Decode(agg)
	if err != nil || !got {
		t.Errorf("OR = %v err=%v, want true", got, err)
	}
}

func ExampleSum() {
	scheme := prio.NewSum(8)
	pro, _ := prio.NewProtocol(prio.Config{Scheme: scheme, Servers: 2, Mode: prio.ModePrio})
	cluster, _ := prio.NewLocalCluster(pro)
	client, _ := prio.NewClient(pro, nil, nil)

	for _, v := range []uint64{10, 20, 30} {
		enc, _ := scheme.Encode(v)
		sub, _ := client.BuildSubmission(enc)
		cluster.Leader.ProcessBatch([]*prio.Submission{sub})
	}
	agg, n, _ := cluster.Leader.Aggregate()
	total, _ := scheme.Decode(agg, int(n))
	fmt.Println(total)
	// Output: 60
}
