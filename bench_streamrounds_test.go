package prio_test

import (
	"crypto/tls"
	"net"
	"sync"
	"testing"
	"time"

	"prio"
)

// benchRTT is the simulated one-way propagation delay between the leader
// and each remote server. Prio servers deploy across trust domains —
// different operators, typically different datacenters — so verification
// rounds cross links where round-trip time, not bandwidth, is the cost.
const benchRTT = 500 * time.Microsecond

// delayChunk is one read buffered for delivery after the propagation delay.
type delayChunk struct {
	at   time.Time
	data []byte
}

// pipeDelay forwards src to dst, delivering each chunk one-way-delay after
// it was read: fixed propagation delay, unconstrained bandwidth, order
// preserved.
func pipeDelay(src, dst net.Conn, delay time.Duration) {
	defer dst.Close()
	q := make(chan delayChunk, 1024)
	go func() {
		defer close(q)
		buf := make([]byte, 64<<10)
		for {
			n, err := src.Read(buf)
			if n > 0 {
				q <- delayChunk{at: time.Now().Add(delay), data: append([]byte(nil), buf[:n]...)}
			}
			if err != nil {
				return
			}
		}
	}()
	for c := range q {
		if d := time.Until(c.at); d > 0 {
			time.Sleep(d)
		}
		if _, err := dst.Write(c.data); err != nil {
			return
		}
	}
}

// latencyProxy exposes backend behind a TCP proxy that adds delay of
// propagation latency each way.
func latencyProxy(tb testing.TB, backend string, delay time.Duration) string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			b, err := net.Dial("tcp", backend)
			if err != nil {
				c.Close()
				continue
			}
			go pipeDelay(c, b, delay)
			go pipeDelay(b, c, delay)
		}
	}()
	return ln.Addr().String()
}

// BenchmarkStreamedRounds measures end-to-end verification throughput with
// four concurrent pipeline shards over TCP links carrying a realistic
// propagation delay (2×benchRTT round trip), comparing the streamed rounds
// subprotocol against the legacy coalesced request/response transport it
// replaced. The structural difference under test: the legacy path completes
// one (possibly batched) round trip per peer at a time, so a shard whose
// round lands mid-flight waits out the round trip ahead of it, while the
// streamed path keeps every shard's rounds in flight concurrently,
// correlation IDs matching replies as they return. The acceptance bar for
// this benchmark is Streamed ≥ 1.5× LegacyRPC subs/s.
func BenchmarkStreamedRounds(b *testing.B) {
	variants := []struct {
		name    string
		connect func(*prio.Server, []string, *tls.Config) (*prio.Leader, error)
	}{
		{"Streamed", prio.ConnectLeaderTLS},
		{"LegacyRPC", prio.ConnectLeaderLegacyTLS},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			scheme := prio.NewSum(2)
			pro := newDiffProtocol(b, scheme)
			servers, addrs, _ := deployServers(b, pro, nil)
			for i := 1; i < len(addrs); i++ {
				addrs[i] = latencyProxy(b, addrs[i], benchRTT)
			}
			leader, err := v.connect(servers[0], addrs, nil)
			if err != nil {
				b.Fatal(err)
			}
			pl, err := prio.NewPipeline(leader, prio.PipelineConfig{Shards: 4, MaxBatch: 8})
			if err != nil {
				b.Fatal(err)
			}
			defer pl.Close()
			subs, _ := buildMixedSubs(b, pro, scheme, 64)

			// Warm the path: establishes the peer connections and the
			// marshalling arenas, so -benchtime=1x measures steady state.
			if _, err := pl.SubmitWait(subs[0]); err != nil {
				b.Fatal(err)
			}

			var wg sync.WaitGroup
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				wg.Add(1)
				if err := pl.SubmitFunc(subs[i%len(subs)], func(prio.SubmitResult) { wg.Done() }); err != nil {
					b.Fatal(err)
				}
			}
			wg.Wait()
			b.StopTimer()
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(b.N)/s, "subs/s")
			}
		})
	}
}
