module prio

go 1.21
