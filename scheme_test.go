package prio_test

import (
	"testing"

	"prio"
)

func TestParseScheme(t *testing.T) {
	cases := []struct {
		spec   string
		k      int
		kPrime int
		m      int
	}{
		{"sum8", 9, 1, 8},
		{"var4", 6, 2, 5},
		{"bits10", 10, 10, 10},
		{"freq4", 4, 4, 4},
		{"ints3x4", 15, 3, 12},
		{"linreg2x8", 2 + 2 + 3 + 2 + 24, 9, 3*8 + 3 + 2 + 1},
		{"mostpop16", 16, 16, 16},
	}
	for _, c := range cases {
		s, err := prio.ParseScheme(c.spec)
		if err != nil {
			t.Errorf("%s: %v", c.spec, err)
			continue
		}
		if s.K() != c.k || s.KPrime() != c.kPrime || s.Circuit().M() != c.m {
			t.Errorf("%s: K=%d K'=%d M=%d, want %d/%d/%d",
				c.spec, s.K(), s.KPrime(), s.Circuit().M(), c.k, c.kPrime, c.m)
		}
	}
	// countmin parses into the right sketch dimensions (ε=1/10, δ=2⁻¹⁰:
	// 7 rows × 28 columns).
	cm, err := prio.ParseScheme("countmin10/10")
	if err != nil {
		t.Fatal(err)
	}
	if cm.K() != 7*28 {
		t.Errorf("countmin10/10 K = %d, want 196", cm.K())
	}

	for _, bad := range []string{
		"", "nope", "sum", "sumx", "sum0", "sum-3", "bits", "ints4",
		"intsx4", "linreg3", "countmin10", "countmin/10", "freq-1",
	} {
		if _, err := prio.ParseScheme(bad); err == nil {
			t.Errorf("ParseScheme(%q) accepted", bad)
		}
	}
}

func TestParsedSchemeEndToEnd(t *testing.T) {
	// A parsed scheme must be usable for a complete aggregation run.
	scheme, err := prio.ParseScheme("ints4x6")
	if err != nil {
		t.Fatal(err)
	}
	iv, ok := scheme.(*prio.IntVector)
	if !ok {
		t.Fatalf("ints spec parsed to %T", scheme)
	}
	pro, err := prio.NewProtocol(prio.Config{Scheme: scheme, Servers: 2, Mode: prio.ModePrio})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := prio.NewLocalCluster(pro)
	if err != nil {
		t.Fatal(err)
	}
	client, err := prio.NewClient(pro, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 0, 0, 0}
	var subs []*prio.Submission
	for i := 0; i < 5; i++ {
		vals := []uint64{uint64(i), uint64(2 * i), 63, 0}
		for j, v := range vals {
			want[j] += v
		}
		enc, err := iv.Encode(vals)
		if err != nil {
			t.Fatal(err)
		}
		sub, err := client.BuildSubmission(enc)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub)
	}
	if _, err := cluster.Leader.ProcessBatch(subs); err != nil {
		t.Fatal(err)
	}
	agg, n, err := cluster.Leader.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	got, err := iv.Decode(agg, int(n))
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if got[j].Uint64() != want[j] {
			t.Errorf("component %d = %v, want %d", j, got[j], want[j])
		}
	}
}

func TestPublicVarianceAndMostPopular(t *testing.T) {
	// Exercise two more public statistics end to end.
	variance := prio.NewVariance(8)
	pro, err := prio.NewProtocol(prio.Config{Scheme: variance, Servers: 3, Mode: prio.ModePrio, Seal: true})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := prio.NewLocalCluster(pro)
	if err != nil {
		t.Fatal(err)
	}
	client, err := prio.NewClient(pro, cluster.PublicKeys(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var subs []*prio.Submission
	for _, v := range []uint64{10, 20, 30, 40, 50} {
		enc, err := variance.Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		sub, err := client.BuildSubmission(enc)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub)
	}
	accepts, err := cluster.Leader.ProcessBatch(subs)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range accepts {
		if !a {
			t.Fatalf("submission %d rejected", i)
		}
	}
	agg, n, err := cluster.Leader.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	mean, vr, err := variance.Decode(agg, int(n))
	if err != nil {
		t.Fatal(err)
	}
	if mean != 30 || vr != 200 {
		t.Errorf("mean=%v var=%v, want 30/200", mean, vr)
	}
}
