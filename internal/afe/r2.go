package afe

import (
	"fmt"
	"math/big"

	"prio/internal/circuit"
	"prio/internal/field"
)

// R2 is the model-evaluation AFE of Appendix G ("Evaluating an arbitrary ML
// model"): given a public linear model ŷ = m_0 + Σ m_j·x_j, each client
// encodes (y, y², (y−ŷ)², x), and the aggregate reveals exactly the R²
// coefficient of the model on the population (plus E[y] and Var[y], the
// leakage the paper states).
//
// The Valid circuit range-checks x and y by bit decomposition and checks the
// two squares — the residual is an affine function of the inputs, so the
// whole check needs only Σbits + 2 multiplication gates.
//
// Model coefficients are integers; apply fixed-point scaling outside (the
// paper's datasets use 14-bit fixed point). The label y passed to Encode
// must be on the same scale as the model's outputs.
type R2[Fd field.Field[E], E any] struct {
	f        Fd
	model    []int64 // m_0, m_1, …, m_d
	xBits    []int
	yBits    int
	c        *circuit.Circuit[E]
	residMax *big.Int // bound on |y − ŷ| for decode sanity checks
}

// NewR2 constructs the AFE for the given public model over len(xBits)
// features. model has length d+1 (intercept first).
func NewR2[Fd field.Field[E], E any](f Fd, model []int64, xBits []int, yBits int) *R2[Fd, E] {
	d := len(xBits)
	if len(model) != d+1 {
		panic("afe: NewR2 model length must be d+1")
	}
	if yBits < 1 || yBits > 31 {
		panic("afe: NewR2 label width out of range")
	}
	s := &R2[Fd, E]{f: f, model: append([]int64(nil), model...), xBits: append([]int(nil), xBits...), yBits: yBits}

	totalBits := yBits
	for _, w := range xBits {
		if w < 1 || w > 31 {
			panic("afe: NewR2 feature width out of range")
		}
		totalBits += w
	}
	// Layout: (y, Y=y², Y*=(y−ŷ)², x_1..x_d | bits of y, bits of each x_j).
	b := circuit.NewBuilder(f, 3+d+totalBits)
	yW := b.Input(0)
	YW := b.Input(1)
	YstarW := b.Input(2)
	xW := make([]circuit.Wire, d)
	for j := 0; j < d; j++ {
		xW[j] = b.Input(3 + j)
	}
	off := 3 + d
	yBitW := make([]circuit.Wire, yBits)
	for i := range yBitW {
		yBitW[i] = b.Input(off + i)
	}
	off += yBits
	b.AssertBitDecomposition(yW, yBitW)
	for j := 0; j < d; j++ {
		bitsW := make([]circuit.Wire, xBits[j])
		for i := range bitsW {
			bitsW[i] = b.Input(off + i)
		}
		off += xBits[j]
		b.AssertBitDecomposition(xW[j], bitsW)
	}
	// Y = y².
	b.AssertEqual(b.Mul(yW, yW), YW)
	// resid = y − (m_0 + Σ m_j·x_j): affine, zero multiplication gates.
	yhat := b.Const(f.FromInt64(model[0]))
	for j := 0; j < d; j++ {
		yhat = b.Add(yhat, b.MulConst(xW[j], f.FromInt64(model[j+1])))
	}
	resid := b.Sub(yW, yhat)
	b.AssertEqual(b.Mul(resid, resid), YstarW)
	s.c = b.Build()

	// |resid| ≤ 2^yBits + |m_0| + Σ |m_j|·2^xBits[j].
	bound := new(big.Int).Lsh(big.NewInt(1), uint(yBits))
	bound.Add(bound, big.NewInt(absInt64(model[0])))
	for j := 0; j < d; j++ {
		term := new(big.Int).Lsh(big.NewInt(absInt64(model[j+1])), uint(xBits[j]))
		bound.Add(bound, term)
	}
	s.residMax = bound
	return s
}

func absInt64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// Name implements Scheme.
func (s *R2[Fd, E]) Name() string { return fmt.Sprintf("r2-%dd", len(s.xBits)) }

// K implements Scheme.
func (s *R2[Fd, E]) K() int { return s.c.NumInputs }

// KPrime implements Scheme: (Σy, Σy², Σ(y−ŷ)²) suffice to decode; the
// feature sums ride along for the leakage function the paper defines.
func (s *R2[Fd, E]) KPrime() int { return 3 }

// Circuit implements Scheme.
func (s *R2[Fd, E]) Circuit() *circuit.Circuit[E] { return s.c }

// Encode maps a labeled example to its encoding.
func (s *R2[Fd, E]) Encode(x []uint64, y uint64) ([]E, error) {
	f := s.f
	d := len(s.xBits)
	if len(x) != d {
		return nil, fmt.Errorf("%w: %d features, want %d", ErrRange, len(x), d)
	}
	if y >= 1<<uint(s.yBits) {
		return nil, fmt.Errorf("%w: label %d exceeds %d bits", ErrRange, y, s.yBits)
	}
	for j, v := range x {
		if v >= 1<<uint(s.xBits[j]) {
			return nil, fmt.Errorf("%w: feature %d value %d exceeds %d bits", ErrRange, j, v, s.xBits[j])
		}
	}
	// resid over the integers, then mapped into the field.
	resid := int64(y) - s.model[0]
	for j := 0; j < d; j++ {
		resid -= s.model[j+1] * int64(x[j])
	}
	out := make([]E, 0, s.K())
	out = append(out, f.FromUint64(y), f.FromUint64(y*y), f.Mul(f.FromInt64(resid), f.FromInt64(resid)))
	for j := 0; j < d; j++ {
		out = append(out, f.FromUint64(x[j]))
	}
	out = append(out, bitsOf(f, y, s.yBits)...)
	for j := 0; j < d; j++ {
		out = append(out, bitsOf(f, x[j], s.xBits[j])...)
	}
	return out, nil
}

// Decode returns the model's R² = 1 − Σ(y−ŷ)² / Var-sum on the population.
func (s *R2[Fd, E]) Decode(agg []E, n int) (float64, error) {
	if len(agg) != 3 || n <= 0 {
		return 0, ErrDecode
	}
	f := s.f
	nBig := big.NewInt(int64(n))
	maxY := new(big.Int).Lsh(big.NewInt(1), uint(s.yBits))
	sy, err := toCount(f, agg[0], new(big.Int).Mul(nBig, maxY))
	if err != nil {
		return 0, err
	}
	syy, err := toCount(f, agg[1], new(big.Int).Mul(nBig, new(big.Int).Mul(maxY, maxY)))
	if err != nil {
		return 0, err
	}
	sseBound := new(big.Int).Mul(nBig, new(big.Int).Mul(s.residMax, s.residMax))
	sse, err := toCount(f, agg[2], sseBound)
	if err != nil {
		return 0, err
	}
	syF, _ := new(big.Float).SetInt(sy).Float64()
	syyF, _ := new(big.Float).SetInt(syy).Float64()
	sseF, _ := new(big.Float).SetInt(sse).Float64()
	sst := syyF - syF*syF/float64(n)
	if sst == 0 {
		return 0, fmt.Errorf("%w: zero label variance", ErrDecode)
	}
	return 1 - sseF/sst, nil
}
