package afe

import (
	"fmt"
	"math/big"

	"prio/internal/circuit"
	"prio/internal/field"
)

// FreqCount is the frequency-count AFE of Section 5.2: each client holds a
// value in {0, …, B−1} and encodes it as the one-hot indicator vector in
// F^B. The Valid circuit checks that every component is a bit and that they
// sum to one (B multiplication gates); the aggregate is the full histogram,
// from which quantiles and modes are computable in the clear.
type FreqCount[Fd field.Field[E], E any] struct {
	f Fd
	b int
	c *circuit.Circuit[E]
}

// NewFreqCount constructs the histogram AFE over B buckets.
func NewFreqCount[Fd field.Field[E], E any](f Fd, B int) *FreqCount[Fd, E] {
	if B < 2 {
		panic("afe: NewFreqCount needs at least two buckets")
	}
	b := circuit.NewBuilder(f, B)
	ws := make([]circuit.Wire, B)
	for i := range ws {
		ws[i] = b.Input(i)
	}
	b.AssertOneHot(ws)
	return &FreqCount[Fd, E]{f: f, b: B, c: b.Build()}
}

// Name implements Scheme.
func (s *FreqCount[Fd, E]) Name() string { return fmt.Sprintf("freq%d", s.b) }

// Buckets returns B.
func (s *FreqCount[Fd, E]) Buckets() int { return s.b }

// K implements Scheme.
func (s *FreqCount[Fd, E]) K() int { return s.b }

// KPrime implements Scheme: the whole vector is the histogram.
func (s *FreqCount[Fd, E]) KPrime() int { return s.b }

// Circuit implements Scheme.
func (s *FreqCount[Fd, E]) Circuit() *circuit.Circuit[E] { return s.c }

// Encode produces the one-hot encoding of x ∈ [0, B).
func (s *FreqCount[Fd, E]) Encode(x int) ([]E, error) {
	if x < 0 || x >= s.b {
		return nil, fmt.Errorf("%w: bucket %d of %d", ErrRange, x, s.b)
	}
	out := make([]E, s.b)
	for i := range out {
		out[i] = s.f.Zero()
	}
	out[x] = s.f.One()
	return out, nil
}

// Decode converts the aggregate to per-bucket counts. The counts must sum to
// n, which Decode verifies — a defense-in-depth check on top of the SNIPs.
func (s *FreqCount[Fd, E]) Decode(agg []E, n int) ([]uint64, error) {
	if len(agg) != s.b {
		return nil, ErrDecode
	}
	bound := big.NewInt(int64(n))
	out := make([]uint64, s.b)
	total := uint64(0)
	for i, e := range agg {
		v, err := toCount(s.f, e, bound)
		if err != nil {
			return nil, err
		}
		out[i] = v.Uint64()
		total += out[i]
	}
	if total != uint64(n) {
		return nil, fmt.Errorf("%w: histogram sums to %d, want %d", ErrDecode, total, n)
	}
	return out, nil
}

// Mode returns the most frequent bucket of a decoded histogram and its count.
func Mode(hist []uint64) (bucket int, count uint64) {
	for i, c := range hist {
		if c > count {
			bucket, count = i, c
		}
	}
	return bucket, count
}

// Quantile returns the smallest bucket q such that at least frac·n of the
// mass lies in buckets ≤ q (frac in (0,1]; e.g. 0.5 gives the median bucket).
func Quantile(hist []uint64, frac float64) int {
	total := uint64(0)
	for _, c := range hist {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := frac * float64(total)
	acc := uint64(0)
	for i, c := range hist {
		acc += c
		if float64(acc) >= target {
			return i
		}
	}
	return len(hist) - 1
}
