package afe

import (
	"crypto/rand"
	"math"
	"math/big"
	mrand "math/rand"
	"testing"

	"prio/internal/circuit"
	"prio/internal/field"
)

// aggregate sums the truncated encodings of all clients — the job the
// servers do — and returns the aggregate prefix.
func aggregate[Fd field.Field[E], E any](f Fd, s Scheme[E], encs [][]E) []E {
	acc := make([]E, s.KPrime())
	for i := range acc {
		acc[i] = f.Zero()
	}
	for _, e := range encs {
		field.AddVec(f, acc, e[:s.KPrime()])
	}
	return acc
}

func TestSumRoundTrip(t *testing.T) {
	f := field.NewF64()
	s := NewSum(f, 8)
	if s.K() != 9 || s.KPrime() != 1 || s.Circuit().M() != 8 {
		t.Fatalf("sum dims: K=%d K'=%d M=%d", s.K(), s.KPrime(), s.Circuit().M())
	}
	rng := mrand.New(mrand.NewSource(1))
	var encs [][]uint64
	want := uint64(0)
	for i := 0; i < 100; i++ {
		v := uint64(rng.Intn(256))
		want += v
		enc, err := s.Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		if !circuit.Validate(f, s.Circuit(), enc) {
			t.Fatalf("honest encoding of %d fails Valid", v)
		}
		encs = append(encs, enc)
	}
	got, err := s.Decode(aggregate(f, s, encs), len(encs))
	if err != nil {
		t.Fatal(err)
	}
	if got.Uint64() != want {
		t.Errorf("sum = %v, want %d", got, want)
	}
	mean, err := s.DecodeMean(aggregate(f, s, encs), len(encs))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-float64(want)/100) > 1e-9 {
		t.Errorf("mean = %v", mean)
	}
}

func TestSumRejectsOutOfRange(t *testing.T) {
	f := field.NewF64()
	s := NewSum(f, 4)
	if _, err := s.Encode(16); err == nil {
		t.Error("Encode accepted 16 for 4-bit sum")
	}
	// A forged encoding claiming value 16 must fail Valid.
	forged := []uint64{16, 0, 0, 0, 0}
	if circuit.Validate(f, s.Circuit(), forged) {
		t.Error("Valid accepted out-of-range forgery")
	}
	// The large-integer attack of Section 1.
	huge := []uint64{field.ModulusF64 - 1, 1, 1, 1, 1}
	if circuit.Validate(f, s.Circuit(), huge) {
		t.Error("Valid accepted huge-value forgery")
	}
}

func TestSumMaxClients(t *testing.T) {
	f := field.NewF64()
	s := NewSum(f, 8)
	mc := s.MaxClients()
	if mc.Sign() <= 0 {
		t.Fatal("MaxClients not positive")
	}
	// (2^8-1) * MaxClients must stay below p.
	prod := new(big.Int).Mul(mc, big.NewInt(255))
	if prod.Cmp(f.Modulus()) >= 0 {
		t.Error("MaxClients overflows the field")
	}
}

func TestGeoMean(t *testing.T) {
	f := field.NewF64()
	g := NewGeoMean(f, 24, 10)
	vals := []float64{2, 8, 4}
	var encs [][]uint64
	for _, v := range vals {
		enc, err := g.EncodeValue(v)
		if err != nil {
			t.Fatal(err)
		}
		if !circuit.Validate(f, g.Circuit(), enc) {
			t.Fatal("geomean encoding fails Valid")
		}
		encs = append(encs, enc)
	}
	gm, err := g.DecodeGeoMean(aggregate[field.F64, uint64](f, g, encs), len(vals))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gm-4) > 0.02 { // (2·8·4)^(1/3) = 4
		t.Errorf("geometric mean = %v, want 4", gm)
	}
	prod, err := g.DecodeProduct(aggregate[field.F64, uint64](f, g, encs), len(vals))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(prod-64) > 1 {
		t.Errorf("product = %v, want 64", prod)
	}
	if _, err := g.EncodeValue(0); err == nil {
		t.Error("EncodeValue accepted zero")
	}
	if _, err := g.EncodeValue(0.25); err == nil {
		t.Error("EncodeValue accepted value below fixed-point range")
	}
}

func TestVarianceRoundTrip(t *testing.T) {
	f := field.NewF64()
	s := NewVariance(f, 8)
	if s.Circuit().M() != 9 {
		t.Fatalf("variance circuit M = %d, want 9", s.Circuit().M())
	}
	vals := []uint64{10, 20, 30, 40, 50}
	var encs [][]uint64
	for _, v := range vals {
		enc, err := s.Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		if !circuit.Validate(f, s.Circuit(), enc) {
			t.Fatal("variance encoding fails Valid")
		}
		encs = append(encs, enc)
	}
	mean, variance, err := s.Decode(aggregate(f, s, encs), len(vals))
	if err != nil {
		t.Fatal(err)
	}
	if mean != 30 {
		t.Errorf("mean = %v, want 30", mean)
	}
	if variance != 200 {
		t.Errorf("variance = %v, want 200", variance)
	}
	_, sd, err := s.DecodeStddev(aggregate(f, s, encs), len(vals))
	if err != nil || math.Abs(sd-math.Sqrt(200)) > 1e-9 {
		t.Errorf("stddev = %v err=%v", sd, err)
	}
}

func TestVarianceRejectsForgedSquare(t *testing.T) {
	f := field.NewF64()
	s := NewVariance(f, 8)
	enc, err := s.Encode(9)
	if err != nil {
		t.Fatal(err)
	}
	enc[1] = f.Add(enc[1], 1) // x² now inconsistent
	if circuit.Validate(f, s.Circuit(), enc) {
		t.Error("Valid accepted inconsistent square")
	}
}

func TestFreqCountRoundTrip(t *testing.T) {
	f := field.NewF64()
	s := NewFreqCount(f, 5)
	values := []int{0, 3, 3, 2, 4, 3, 0}
	var encs [][]uint64
	for _, v := range values {
		enc, err := s.Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		if !circuit.Validate(f, s.Circuit(), enc) {
			t.Fatal("one-hot encoding fails Valid")
		}
		encs = append(encs, enc)
	}
	hist, err := s.Decode(aggregate(f, s, encs), len(values))
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{2, 0, 1, 3, 1}
	for i := range want {
		if hist[i] != want[i] {
			t.Errorf("hist[%d] = %d, want %d", i, hist[i], want[i])
		}
	}
	if b, c := Mode(hist); b != 3 || c != 3 {
		t.Errorf("mode = (%d,%d), want (3,3)", b, c)
	}
	if q := Quantile(hist, 0.5); q != 3 {
		t.Errorf("median bucket = %d, want 3", q)
	}
	if q := Quantile(hist, 1.0); q != 4 {
		t.Errorf("max bucket = %d, want 4", q)
	}
}

func TestFreqCountRejections(t *testing.T) {
	f := field.NewF64()
	s := NewFreqCount(f, 4)
	if _, err := s.Encode(4); err == nil {
		t.Error("Encode accepted out-of-range bucket")
	}
	if _, err := s.Encode(-1); err == nil {
		t.Error("Encode accepted negative bucket")
	}
	for _, bad := range [][]uint64{
		{0, 0, 0, 0},
		{1, 1, 0, 0},
		{0, 2, field.ModulusF64 - 1, 0},
	} {
		if circuit.Validate(f, s.Circuit(), bad) {
			t.Errorf("Valid accepted %v", bad)
		}
	}
	// Histogram not matching n must fail decode.
	enc, _ := s.Encode(1)
	if _, err := s.Decode(enc, 2); err == nil {
		t.Error("Decode accepted histogram with wrong total")
	}
}

func TestLinRegRecoversPlantedModel(t *testing.T) {
	f := field.NewF128() // moments overflow F64 comfortably? keep them safe
	const d = 3
	l := NewLinRegUniform(f, d, 10)
	// Check the paper's gate-count formula: (d+1)b + d(d+1)/2 + d + 1.
	wantM := (d+1)*10 + d*(d+1)/2 + d + 1
	if l.Circuit().M() != wantM {
		t.Fatalf("linreg M = %d, want %d", l.Circuit().M(), wantM)
	}
	// y = 7 + 2x1 + 0x2 + 5x3 exactly (integer data, exact fit).
	rng := mrand.New(mrand.NewSource(7))
	var encs [][]field.U128
	n := 60
	for i := 0; i < n; i++ {
		x := []uint64{uint64(rng.Intn(50)), uint64(rng.Intn(50)), uint64(rng.Intn(50))}
		y := 7 + 2*x[0] + 5*x[2]
		enc, err := l.Encode(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if !circuit.Validate(f, l.Circuit(), enc) {
			t.Fatal("linreg encoding fails Valid")
		}
		encs = append(encs, enc)
	}
	agg := aggregate[field.F128, field.U128](f, l, encs)
	coeffs, err := l.Decode(agg, n)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{7, 2, 0, 5}
	for i := range want {
		if math.Abs(coeffs[i]-want[i]) > 1e-6 {
			t.Errorf("c%d = %v, want %v", i, coeffs[i], want[i])
		}
	}
	r2, err := l.DecodeR2(agg, n)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r2-1) > 1e-9 {
		t.Errorf("R² = %v, want 1 for an exact fit", r2)
	}
}

func TestLinRegMixedWidthsAndRejections(t *testing.T) {
	f := field.NewF128()
	l := NewLinReg(f, []int{1, 8}, 8) // one boolean feature, one byte feature
	if _, err := l.Encode([]uint64{2, 10}, 5); err == nil {
		t.Error("Encode accepted 2 for a 1-bit feature")
	}
	if _, err := l.Encode([]uint64{1, 256}, 5); err == nil {
		t.Error("Encode accepted 256 for an 8-bit feature")
	}
	if _, err := l.Encode([]uint64{1, 10}, 256); err == nil {
		t.Error("Encode accepted 256 for an 8-bit label")
	}
	if _, err := l.Encode([]uint64{1}, 3); err == nil {
		t.Error("Encode accepted wrong feature count")
	}
	enc, err := l.Encode([]uint64{1, 17}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !circuit.Validate(f, l.Circuit(), enc) {
		t.Error("honest mixed-width encoding fails Valid")
	}
	// Tamper with a cross term.
	enc[3] = f.Add(enc[3], f.One())
	if circuit.Validate(f, l.Circuit(), enc) {
		t.Error("Valid accepted forged cross term")
	}
}

func TestMostPopular(t *testing.T) {
	f := field.NewF64()
	s := NewMostPopular(f, 16)
	popular := uint64(0xBEEF)
	var encs [][]uint64
	for i := 0; i < 10; i++ {
		v := popular
		if i >= 7 { // 3 dissenters
			v = uint64(i * 977)
		}
		enc, err := s.Encode(v & 0xFFFF)
		if err != nil {
			t.Fatal(err)
		}
		if !circuit.Validate(f, s.Circuit(), enc) {
			t.Fatal("mostpop encoding fails Valid")
		}
		encs = append(encs, enc)
	}
	got, counts, err := s.Decode(aggregate(f, s, encs), len(encs))
	if err != nil {
		t.Fatal(err)
	}
	if got != popular {
		t.Errorf("majority string = %#x, want %#x (counts %v)", got, popular, counts)
	}
}

func TestR2AFE(t *testing.T) {
	f := field.NewF128()
	model := []int64{3, 2} // ŷ = 3 + 2x
	s := NewR2(f, model, []int{8}, 10)
	if s.Circuit().M() != 8+10+2 {
		t.Fatalf("R² circuit M = %d, want %d", s.Circuit().M(), 20)
	}
	// Perfect fit: y = 3 + 2x.
	var encs [][]field.U128
	for _, x := range []uint64{1, 5, 9, 33, 60} {
		enc, err := s.Encode([]uint64{x}, 3+2*x)
		if err != nil {
			t.Fatal(err)
		}
		if !circuit.Validate(f, s.Circuit(), enc) {
			t.Fatal("R² encoding fails Valid")
		}
		encs = append(encs, enc)
	}
	r2, err := s.Decode(aggregate[field.F128, field.U128](f, s, encs), len(encs))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r2-1) > 1e-9 {
		t.Errorf("R² = %v, want 1", r2)
	}
	// Noisy fit must be below 1.
	encs = nil
	rng := mrand.New(mrand.NewSource(3))
	for i := 0; i < 40; i++ {
		x := uint64(rng.Intn(200))
		y := uint64(rng.Intn(1000))
		enc, err := s.Encode([]uint64{x}, y)
		if err != nil {
			t.Fatal(err)
		}
		encs = append(encs, enc)
	}
	r2n, err := s.Decode(aggregate[field.F128, field.U128](f, s, encs), len(encs))
	if err != nil {
		t.Fatal(err)
	}
	if r2n >= 0.9 {
		t.Errorf("random data R² = %v, expected poor fit", r2n)
	}
	// Forged residual must fail Valid.
	enc, _ := s.Encode([]uint64{4}, 11)
	enc[2] = f.Add(enc[2], f.One())
	if circuit.Validate(f, s.Circuit(), enc) {
		t.Error("Valid accepted forged residual square")
	}
}

func TestConcatScheme(t *testing.T) {
	f := field.NewF64()
	sum := NewSum(f, 4)
	freq := NewFreqCount(f, 3)
	cc := NewConcat[field.F64, uint64](f, "browser", sum, freq)
	if cc.K() != sum.K()+freq.K() || cc.KPrime() != sum.KPrime()+freq.KPrime() {
		t.Fatalf("concat dims wrong: K=%d K'=%d", cc.K(), cc.KPrime())
	}
	if cc.Circuit().M() != sum.Circuit().M()+freq.Circuit().M() {
		t.Fatalf("concat M = %d", cc.Circuit().M())
	}

	var encs [][]uint64
	wantSum := uint64(0)
	wantHist := []uint64{0, 0, 0}
	for i := 0; i < 20; i++ {
		v := uint64(i % 16)
		bucket := i % 3
		wantSum += v
		wantHist[bucket]++
		se, err := sum.Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		fe, err := freq.Encode(bucket)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := cc.Pack(se, fe)
		if err != nil {
			t.Fatal(err)
		}
		if !circuit.Validate(f, cc.Circuit(), enc) {
			t.Fatal("packed encoding fails combined Valid")
		}
		encs = append(encs, enc)
	}
	agg := aggregate[field.F64, uint64](f, cc, encs)
	offs := cc.Offsets()
	gotSum, err := sum.Decode(agg[offs[0][0]:offs[0][1]], len(encs))
	if err != nil {
		t.Fatal(err)
	}
	if gotSum.Uint64() != wantSum {
		t.Errorf("concat sum = %v, want %d", gotSum, wantSum)
	}
	gotHist, err := freq.Decode(agg[offs[1][0]:offs[1][1]], len(encs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantHist {
		if gotHist[i] != wantHist[i] {
			t.Errorf("concat hist[%d] = %d, want %d", i, gotHist[i], wantHist[i])
		}
	}

	// Cross-part forgery: valid parts, but swap aggregated components.
	se, _ := sum.Encode(3)
	fe, _ := freq.Encode(1)
	enc, _ := cc.Pack(se, fe)
	enc[0], enc[1] = enc[1], enc[0]
	if circuit.Validate(f, cc.Circuit(), enc) {
		t.Error("combined Valid accepted swapped components")
	}

	if _, err := cc.Pack(se); err == nil {
		t.Error("Pack accepted wrong part count")
	}
	if _, err := cc.Pack(se, se); err == nil {
		t.Error("Pack accepted wrong part length")
	}
	if cc.Part(0) != Scheme[uint64](sum) {
		t.Error("Part(0) mismatch")
	}
}

func TestBoolOrAnd(t *testing.T) {
	or := NewBoolOr(80)
	and := NewBoolAnd(80)
	if or.Words() != 2 || or.Blocks() != 1 || or.Lambda() != 80 {
		t.Fatalf("or dims: words=%d", or.Words())
	}
	cases := []struct {
		bits    []bool
		wantOr  bool
		wantAnd bool
	}{
		{[]bool{false, false, false}, false, false},
		{[]bool{false, true, false}, true, false},
		{[]bool{true, true, true}, true, true},
	}
	for ci, c := range cases {
		orAgg := make([]uint64, or.Words())
		andAgg := make([]uint64, and.Words())
		for _, b := range c.bits {
			oe, err := or.Encode(b, rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			XorAggregate(orAgg, oe)
			ae, err := and.Encode(b, rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			XorAggregate(andAgg, ae)
		}
		gotOr, err := or.Decode(orAgg)
		if err != nil {
			t.Fatal(err)
		}
		gotAnd, err := and.Decode(andAgg)
		if err != nil {
			t.Fatal(err)
		}
		if gotOr != c.wantOr || gotAnd != c.wantAnd {
			t.Errorf("case %d: or=%v and=%v, want %v/%v", ci, gotOr, gotAnd, c.wantOr, c.wantAnd)
		}
	}
}

func TestMinMaxExact(t *testing.T) {
	const B = 16
	max := NewMax(B, 80)
	min := NewMin(B, 80)
	values := []int{7, 3, 11, 3, 9}
	maxAgg := make([]uint64, max.Words())
	minAgg := make([]uint64, min.Words())
	for _, v := range values {
		me, err := max.Encode(v, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		XorAggregate(maxAgg, me)
		ne, err := min.Encode(v, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		XorAggregate(minAgg, ne)
	}
	gm, ok, err := max.Decode(maxAgg)
	if err != nil || !ok || gm != 11 {
		t.Errorf("max = %d ok=%v err=%v, want 11", gm, ok, err)
	}
	gn, ok, err := min.Decode(minAgg)
	if err != nil || !ok || gn != 3 {
		t.Errorf("min = %d ok=%v err=%v, want 3", gn, ok, err)
	}
	if _, err := max.Encode(B, rand.Reader); err == nil {
		t.Error("Encode accepted out-of-range value")
	}
	// Degenerate empty aggregate.
	if _, ok, _ := max.Decode(make([]uint64, max.Words())); ok {
		t.Error("empty max aggregate decoded as present")
	}
}

func TestApproxMax(t *testing.T) {
	const B = uint64(1) << 40
	c := 2.0
	am := NewApproxMax(B, c, 80)
	agg := make([]uint64, am.Words())
	values := []uint64{100, 5000, 1 << 30, 12345}
	for _, v := range values {
		e, err := am.Encode(v, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		XorAggregate(agg, e)
	}
	got, ok, err := am.Decode(agg)
	if err != nil || !ok {
		t.Fatalf("decode: ok=%v err=%v", ok, err)
	}
	trueMax := uint64(1 << 30)
	if got > trueMax*2 || got < trueMax/2 {
		t.Errorf("approx max = %d, want within 2x of %d", got, trueMax)
	}
}

func TestSetOps(t *testing.T) {
	const B = 10
	u := NewSetUnion(B, 80)
	in := NewSetIntersection(B, 80)
	sets := [][]int{{1, 2, 3}, {2, 3, 4}, {0, 2, 3, 9}}
	uAgg := make([]uint64, u.Words())
	iAgg := make([]uint64, in.Words())
	for _, s := range sets {
		ue, err := u.Encode(s, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		XorAggregate(uAgg, ue)
		ie, err := in.Encode(s, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		XorAggregate(iAgg, ie)
	}
	union, err := u.Decode(uAgg)
	if err != nil {
		t.Fatal(err)
	}
	inter, err := in.Decode(iAgg)
	if err != nil {
		t.Fatal(err)
	}
	wantUnion := map[int]bool{0: true, 1: true, 2: true, 3: true, 4: true, 9: true}
	wantInter := map[int]bool{2: true, 3: true}
	for i := 0; i < B; i++ {
		if union[i] != wantUnion[i] {
			t.Errorf("union[%d] = %v", i, union[i])
		}
		if inter[i] != wantInter[i] {
			t.Errorf("intersection[%d] = %v", i, inter[i])
		}
	}
	if _, err := u.Encode([]int{B}, rand.Reader); err == nil {
		t.Error("Encode accepted out-of-universe element")
	}
}

func TestCountMinAFE(t *testing.T) {
	f := field.NewF64()
	s := NewCountMin(f, 0.1, 1.0/1024) // the paper's low-res point
	p := s.Params()
	if p.Rows < 5 || p.Cols < 20 {
		t.Fatalf("suspicious params %+v", p)
	}
	if s.Circuit().M() != p.Cells() {
		t.Fatalf("countmin M = %d, want %d", s.Circuit().M(), p.Cells())
	}
	items := []string{"example.com", "example.com", "example.com", "other.net", "third.org"}
	var encs [][]uint64
	for _, it := range items {
		enc, err := s.Encode([]byte(it))
		if err != nil {
			t.Fatal(err)
		}
		if !circuit.Validate(f, s.Circuit(), enc) {
			t.Fatal("countmin encoding fails Valid")
		}
		encs = append(encs, enc)
	}
	sk, err := s.Decode(aggregate(f, s, encs), len(items))
	if err != nil {
		t.Fatal(err)
	}
	if got := sk.Estimate([]byte("example.com")); got < 3 {
		t.Errorf("estimate for example.com = %d, want >= 3", got)
	}
	if got := sk.Estimate([]byte("absent.io")); got > 1 {
		t.Errorf("estimate for absent item = %d, want <= 1 (n=5, eps=0.1)", got)
	}
	// Double-insertion forgery must fail Valid.
	bad, _ := s.Encode([]byte("x"))
	// find a zero cell in row 0 and set it too
	for c := 0; c < p.Cols; c++ {
		if bad[c] == 0 {
			bad[c] = 1
			break
		}
	}
	if circuit.Validate(f, s.Circuit(), bad) {
		t.Error("Valid accepted row with two ones")
	}
}
