package afe

import (
	"fmt"
	"math/big"

	"prio/internal/circuit"
	"prio/internal/field"
)

// IntVector aggregates a vector of L private b-bit integers per client: the
// per-component sum of everyone's vectors. It is the encoding behind the
// paper's cell-signal application (Section 6.2: one 4-bit signal strength
// per grid cell, M = 4·cells multiplication gates) and Table 3's "L four-bit
// integers to be summed" workload.
//
// Layout: the L values first (the aggregated prefix), then L·b validation
// bits.
type IntVector[Fd field.Field[E], E any] struct {
	f    Fd
	l    int
	bits int
	c    *circuit.Circuit[E]
}

// NewIntVector constructs the AFE for L integers of b bits each.
func NewIntVector[Fd field.Field[E], E any](f Fd, l, bits int) *IntVector[Fd, E] {
	if l < 1 {
		panic("afe: NewIntVector needs at least one component")
	}
	if bits < 1 || bits > 63 {
		panic("afe: NewIntVector bits out of range")
	}
	b := circuit.NewBuilder(f, l*(1+bits))
	for i := 0; i < l; i++ {
		bitWires := make([]circuit.Wire, bits)
		for j := range bitWires {
			bitWires[j] = b.Input(l + i*bits + j)
		}
		b.AssertBitDecomposition(b.Input(i), bitWires)
	}
	return &IntVector[Fd, E]{f: f, l: l, bits: bits, c: b.Build()}
}

// Name implements Scheme.
func (s *IntVector[Fd, E]) Name() string { return fmt.Sprintf("intvec%dx%d", s.l, s.bits) }

// Len returns L.
func (s *IntVector[Fd, E]) Len() int { return s.l }

// K implements Scheme.
func (s *IntVector[Fd, E]) K() int { return s.l * (1 + s.bits) }

// KPrime implements Scheme.
func (s *IntVector[Fd, E]) KPrime() int { return s.l }

// Circuit implements Scheme.
func (s *IntVector[Fd, E]) Circuit() *circuit.Circuit[E] { return s.c }

// Encode maps the value vector to its encoding.
func (s *IntVector[Fd, E]) Encode(values []uint64) ([]E, error) {
	if len(values) != s.l {
		return nil, fmt.Errorf("%w: %d values, want %d", ErrRange, len(values), s.l)
	}
	out := make([]E, 0, s.K())
	for _, v := range values {
		if s.bits < 64 && v >= 1<<uint(s.bits) {
			return nil, fmt.Errorf("%w: %d needs more than %d bits", ErrRange, v, s.bits)
		}
		out = append(out, s.f.FromUint64(v))
	}
	for _, v := range values {
		out = append(out, bitsOf(s.f, v, s.bits)...)
	}
	return out, nil
}

// Decode returns the per-component sums.
func (s *IntVector[Fd, E]) Decode(agg []E, n int) ([]*big.Int, error) {
	if len(agg) != s.l {
		return nil, ErrDecode
	}
	bound := new(big.Int).Mul(big.NewInt(int64(n)), new(big.Int).Lsh(big.NewInt(1), uint(s.bits)))
	out := make([]*big.Int, s.l)
	for i, e := range agg {
		v, err := toCount(s.f, e, bound)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
