package afe

import (
	"fmt"
	"math/big"

	"prio/internal/circuit"
	"prio/internal/field"
)

// MostPopular is the majority-string AFE of Appendix G (a simplified Bassily-
// Smith structure): each client encodes its b-bit string bit-by-bit as 0/1
// field elements; the servers aggregate per-bit counts; decoding rounds each
// count to 0 or n. Whenever one string is held by more than half the
// clients, the decoded string is exactly that string.
//
// The aggregate leaks the per-bit popularity counts; the AFE is private with
// respect to that function.
type MostPopular[Fd field.Field[E], E any] struct {
	f    Fd
	bits int
	c    *circuit.Circuit[E]
}

// NewMostPopular constructs the AFE for b-bit strings (b ≤ 64 here; longer
// strings compose from multiple instances via Concat).
func NewMostPopular[Fd field.Field[E], E any](f Fd, bits int) *MostPopular[Fd, E] {
	if bits < 1 || bits > 64 {
		panic("afe: NewMostPopular bits out of range")
	}
	b := circuit.NewBuilder(f, bits)
	for i := 0; i < bits; i++ {
		b.AssertBit(b.Input(i))
	}
	return &MostPopular[Fd, E]{f: f, bits: bits, c: b.Build()}
}

// Name implements Scheme.
func (s *MostPopular[Fd, E]) Name() string { return fmt.Sprintf("mostpop%d", s.bits) }

// K implements Scheme.
func (s *MostPopular[Fd, E]) K() int { return s.bits }

// KPrime implements Scheme.
func (s *MostPopular[Fd, E]) KPrime() int { return s.bits }

// Circuit implements Scheme.
func (s *MostPopular[Fd, E]) Circuit() *circuit.Circuit[E] { return s.c }

// Encode maps the low `bits` bits of x to the encoding.
func (s *MostPopular[Fd, E]) Encode(x uint64) ([]E, error) {
	if s.bits < 64 && x >= 1<<uint(s.bits) {
		return nil, fmt.Errorf("%w: %d needs more than %d bits", ErrRange, x, s.bits)
	}
	return bitsOf(s.f, x, s.bits), nil
}

// Decode rounds each per-bit count to a bit of the majority string. It also
// returns the raw counts, which callers can inspect for confidence.
func (s *MostPopular[Fd, E]) Decode(agg []E, n int) (str uint64, counts []uint64, err error) {
	if len(agg) != s.bits || n <= 0 {
		return 0, nil, ErrDecode
	}
	bound := big.NewInt(int64(n))
	counts = make([]uint64, s.bits)
	for i, e := range agg {
		v, err := toCount(s.f, e, bound)
		if err != nil {
			return 0, nil, err
		}
		counts[i] = v.Uint64()
		if 2*counts[i] > uint64(n) {
			str |= 1 << uint(i)
		}
	}
	return str, counts, nil
}
