// Package afe implements the affine-aggregatable encodings of Section 5:
// the data-encoding layer that turns "private sum of vectors" (Section 3)
// plus "validated submissions" (Section 4) into a library of useful
// aggregate statistics.
//
// An AFE is a triple (Encode, Valid, Decode): clients encode their private
// value as a vector in F^k, servers verify the Valid circuit with a SNIP
// and sum the first k' components, and anyone can decode the sum of
// encodings into the aggregate f(x_1, …, x_n).
//
// The statistics of the paper's Section 5.1 and Appendix G are all here:
// integer sums and means (Sum, IntVector), variance and stddev via moment
// encodings (Variance), boolean counts (Bool, BitVector), frequency
// histograms (FreqCount), the majority-string and count-min approximate
// counting AFEs of Appendix G (MostPopular, CountMin), linear regression
// by moment matrices (LinReg, Section 5.1 "least-squares regression",
// Figure 8), and R² goodness-of-fit (r2.go).
//
// The field-based schemes implement the Scheme interface consumed by the
// aggregation pipeline; each also exposes typed Encode and Decode methods
// of its own, because inputs and aggregates differ per statistic. The
// boolean OR/AND family (Section 5.2) aggregates by XOR over F_2^λ instead
// and lives in bool.go with a parallel XorScheme interface.
package afe
