package afe

import (
	"fmt"
	"math/big"

	"prio/internal/circuit"
	"prio/internal/field"
)

// BitVector is the workhorse of the paper's evaluation (Figures 4 and 5 and
// the survey applications): each client submits a vector of L private 0/1
// responses, the Valid circuit bit-checks every position (L multiplication
// gates), and the aggregate is the per-position count — "the distribution of
// responses to a survey with L true/false questions".
type BitVector[Fd field.Field[E], E any] struct {
	f Fd
	l int
	c *circuit.Circuit[E]
}

// NewBitVector constructs the L-position boolean survey AFE.
func NewBitVector[Fd field.Field[E], E any](f Fd, l int) *BitVector[Fd, E] {
	if l < 1 {
		panic("afe: NewBitVector needs at least one position")
	}
	b := circuit.NewBuilder(f, l)
	for i := 0; i < l; i++ {
		b.AssertBit(b.Input(i))
	}
	return &BitVector[Fd, E]{f: f, l: l, c: b.Build()}
}

// Name implements Scheme.
func (s *BitVector[Fd, E]) Name() string { return fmt.Sprintf("bits%d", s.l) }

// Len returns L.
func (s *BitVector[Fd, E]) Len() int { return s.l }

// K implements Scheme.
func (s *BitVector[Fd, E]) K() int { return s.l }

// KPrime implements Scheme.
func (s *BitVector[Fd, E]) KPrime() int { return s.l }

// Circuit implements Scheme.
func (s *BitVector[Fd, E]) Circuit() *circuit.Circuit[E] { return s.c }

// Encode maps the response vector to field elements.
func (s *BitVector[Fd, E]) Encode(bits []bool) ([]E, error) {
	if len(bits) != s.l {
		return nil, fmt.Errorf("%w: %d responses, want %d", ErrRange, len(bits), s.l)
	}
	out := make([]E, s.l)
	for i, b := range bits {
		if b {
			out[i] = s.f.One()
		} else {
			out[i] = s.f.Zero()
		}
	}
	return out, nil
}

// Decode returns the per-position counts.
func (s *BitVector[Fd, E]) Decode(agg []E, n int) ([]uint64, error) {
	if len(agg) != s.l {
		return nil, ErrDecode
	}
	bound := big.NewInt(int64(n))
	out := make([]uint64, s.l)
	for i, e := range agg {
		v, err := toCount(s.f, e, bound)
		if err != nil {
			return nil, err
		}
		out[i] = v.Uint64()
	}
	return out, nil
}
