package afe

import (
	"crypto/rand"
	"fmt"
	"io"
	"math"

	"prio/internal/share"
)

// The boolean family of Section 5.2 aggregates in F_2^λ: encodings are
// λ-bit blocks combined by XOR, so servers "sum" submissions by XOR-ing
// packed bitsets and no validation circuit is needed (every bitstring is a
// valid encoding — Valid always accepts). With security parameter λ, decode
// errs with probability 2^-λ per logical bit.
//
// XorScheme is the pipeline-facing counterpart of Scheme for this family.
type XorScheme interface {
	// Name identifies the scheme.
	Name() string
	// Blocks is the number of logical OR/AND bits.
	Blocks() int
	// Lambda is the per-bit security parameter.
	Lambda() int
	// Words is the packed encoding length in 64-bit words.
	Words() int
}

// orVector is the shared mechanism: n logical bits, each expanded to a λ-bit
// block that is uniformly random when the bit is 1 and zero when it is 0.
// XOR-aggregating across clients computes bitwise OR (up to 2^-λ failures).
type orVector struct {
	blocks int
	lambda int
}

func (o orVector) Words() int { return (o.blocks*o.lambda + 63) / 64 }

// encodeBits expands logical bits into the packed block representation,
// drawing randomness from rnd (crypto/rand if nil).
func (o orVector) encodeBits(bits []bool, rnd io.Reader) ([]uint64, error) {
	if len(bits) != o.blocks {
		return nil, fmt.Errorf("%w: %d bits, want %d", ErrRange, len(bits), o.blocks)
	}
	if rnd == nil {
		rnd = rand.Reader
	}
	words := make([]uint64, o.Words())
	buf := make([]byte, (o.lambda+7)/8)
	for i, b := range bits {
		if !b {
			continue
		}
		if _, err := io.ReadFull(rnd, buf); err != nil {
			return nil, err
		}
		for j := 0; j < o.lambda; j++ {
			if buf[j/8]&(1<<uint(j%8)) != 0 {
				pos := i*o.lambda + j
				words[pos/64] |= 1 << uint(pos%64)
			}
		}
	}
	return words, nil
}

// decodeBits recovers the logical OR bits: block nonzero ⇒ 1.
func (o orVector) decodeBits(agg []uint64) ([]bool, error) {
	if len(agg) != o.Words() {
		return nil, ErrDecode
	}
	out := make([]bool, o.blocks)
	for i := range out {
		for j := 0; j < o.lambda; j++ {
			pos := i*o.lambda + j
			if agg[pos/64]&(1<<uint(pos%64)) != 0 {
				out[i] = true
				break
			}
		}
	}
	return out, nil
}

// BoolOr computes the logical OR of one private bit per client.
type BoolOr struct{ ov orVector }

// NewBoolOr constructs the OR AFE with security parameter lambda (the paper
// suggests λ = 80 or 128).
func NewBoolOr(lambda int) *BoolOr {
	return &BoolOr{ov: orVector{blocks: 1, lambda: lambda}}
}

// Name implements XorScheme.
func (s *BoolOr) Name() string { return fmt.Sprintf("or%d", s.ov.lambda) }

// Blocks implements XorScheme.
func (s *BoolOr) Blocks() int { return 1 }

// Lambda implements XorScheme.
func (s *BoolOr) Lambda() int { return s.ov.lambda }

// Words implements XorScheme.
func (s *BoolOr) Words() int { return s.ov.Words() }

// Encode maps the client's bit to its λ-bit encoding.
func (s *BoolOr) Encode(x bool, rnd io.Reader) ([]uint64, error) {
	return s.ov.encodeBits([]bool{x}, rnd)
}

// Decode returns the OR of all encoded bits.
func (s *BoolOr) Decode(agg []uint64) (bool, error) {
	bits, err := s.ov.decodeBits(agg)
	if err != nil {
		return false, err
	}
	return bits[0], nil
}

// BoolAnd computes the logical AND of one private bit per client, by
// De Morgan duality with BoolOr (encode the negation).
type BoolAnd struct{ ov orVector }

// NewBoolAnd constructs the AND AFE.
func NewBoolAnd(lambda int) *BoolAnd {
	return &BoolAnd{ov: orVector{blocks: 1, lambda: lambda}}
}

// Name implements XorScheme.
func (s *BoolAnd) Name() string { return fmt.Sprintf("and%d", s.ov.lambda) }

// Blocks implements XorScheme.
func (s *BoolAnd) Blocks() int { return 1 }

// Lambda implements XorScheme.
func (s *BoolAnd) Lambda() int { return s.ov.lambda }

// Words implements XorScheme.
func (s *BoolAnd) Words() int { return s.ov.Words() }

// Encode maps the client's bit to its encoding (random block iff x = 0).
func (s *BoolAnd) Encode(x bool, rnd io.Reader) ([]uint64, error) {
	return s.ov.encodeBits([]bool{!x}, rnd)
}

// Decode returns the AND of all encoded bits.
func (s *BoolAnd) Decode(agg []uint64) (bool, error) {
	bits, err := s.ov.decodeBits(agg)
	if err != nil {
		return false, err
	}
	return !bits[0], nil
}

// MinMax computes the exact minimum or maximum of integers over the small
// range {0, …, B−1} using the unary encoding of Section 5.2: position i
// carries the bit (i ≤ x). OR-aggregation makes the largest set position the
// maximum; AND-aggregation makes it the minimum.
type MinMax struct {
	ov  orVector
	max bool
}

// NewMax constructs the exact-maximum AFE over {0..B-1}.
func NewMax(B, lambda int) *MinMax {
	return &MinMax{ov: orVector{blocks: B, lambda: lambda}, max: true}
}

// NewMin constructs the exact-minimum AFE over {0..B-1}.
func NewMin(B, lambda int) *MinMax {
	return &MinMax{ov: orVector{blocks: B, lambda: lambda}, max: false}
}

// Name implements XorScheme.
func (s *MinMax) Name() string {
	if s.max {
		return fmt.Sprintf("max%d", s.ov.blocks)
	}
	return fmt.Sprintf("min%d", s.ov.blocks)
}

// Blocks implements XorScheme.
func (s *MinMax) Blocks() int { return s.ov.blocks }

// Lambda implements XorScheme.
func (s *MinMax) Lambda() int { return s.ov.lambda }

// Words implements XorScheme.
func (s *MinMax) Words() int { return s.ov.Words() }

// Encode maps x ∈ [0, B) to its unary encoding.
func (s *MinMax) Encode(x int, rnd io.Reader) ([]uint64, error) {
	if x < 0 || x >= s.ov.blocks {
		return nil, fmt.Errorf("%w: %d outside [0,%d)", ErrRange, x, s.ov.blocks)
	}
	bits := make([]bool, s.ov.blocks)
	if s.max {
		// OR-encoding of the unary bits (i ≤ x).
		for i := 0; i <= x; i++ {
			bits[i] = true
		}
	} else {
		// AND is OR of negations: a random block marks (i > x).
		for i := range bits {
			bits[i] = i > x
		}
	}
	return s.ov.encodeBits(bits, rnd)
}

// Decode returns the min or max over all encoded values. ok is false when no
// client contributed (the aggregate is degenerate).
func (s *MinMax) Decode(agg []uint64) (v int, ok bool, err error) {
	bits, err := s.ov.decodeBits(agg)
	if err != nil {
		return 0, false, err
	}
	if s.max {
		for i := len(bits) - 1; i >= 0; i-- {
			if bits[i] {
				return i, true, nil
			}
		}
		return 0, false, nil
	}
	// min: AND-bit at i is (i ≤ min); after OR of negations, bits[i] true
	// means some client had i > x, i.e. AND failed. Largest run of false
	// prefixes is the min.
	for i := 0; i < len(bits); i++ {
		if bits[i] {
			if i == 0 {
				return 0, false, nil
			}
			return i - 1, true, nil
		}
	}
	return len(bits) - 1, true, nil
}

// ApproxMinMax is the large-domain c-approximation of Section 5.2: the range
// {0, …, B−1} is split into ⌈log_c B⌉ geometric bins and the exact unary
// scheme runs over bins. Decoded values are within a multiplicative factor c
// of the truth — the trade the paper suggests for 64-bit packet counters.
type ApproxMinMax struct {
	mm   *MinMax
	c    float64
	bins int
}

// NewApproxMax constructs a c-approximate maximum over {0..B-1}, c > 1.
func NewApproxMax(B uint64, c float64, lambda int) *ApproxMinMax {
	bins := binCount(B, c)
	return &ApproxMinMax{mm: NewMax(bins, lambda), c: c, bins: bins}
}

// NewApproxMin constructs a c-approximate minimum over {0..B-1}.
func NewApproxMin(B uint64, c float64, lambda int) *ApproxMinMax {
	bins := binCount(B, c)
	return &ApproxMinMax{mm: NewMin(bins, lambda), c: c, bins: bins}
}

func binCount(B uint64, c float64) int {
	if c <= 1 {
		panic("afe: approximation factor must exceed 1")
	}
	return int(math.Ceil(math.Log(float64(B))/math.Log(c))) + 1
}

// Name implements XorScheme.
func (s *ApproxMinMax) Name() string { return "approx-" + s.mm.Name() }

// Blocks implements XorScheme.
func (s *ApproxMinMax) Blocks() int { return s.mm.Blocks() }

// Lambda implements XorScheme.
func (s *ApproxMinMax) Lambda() int { return s.mm.Lambda() }

// Words implements XorScheme.
func (s *ApproxMinMax) Words() int { return s.mm.Words() }

// Encode maps x to its bin's unary encoding.
func (s *ApproxMinMax) Encode(x uint64, rnd io.Reader) ([]uint64, error) {
	bin := 0
	if x > 0 {
		bin = int(math.Floor(math.Log(float64(x)) / math.Log(s.c)))
	}
	if bin >= s.bins {
		bin = s.bins - 1
	}
	return s.mm.Encode(bin, rnd)
}

// Decode returns a value within a factor of c of the true min/max.
func (s *ApproxMinMax) Decode(agg []uint64) (v uint64, ok bool, err error) {
	bin, ok, err := s.mm.Decode(agg)
	if err != nil || !ok {
		return 0, ok, err
	}
	return uint64(math.Pow(s.c, float64(bin))), true, nil
}

// SetOp computes the union (via OR) or intersection (via AND) of
// small-universe sets represented as characteristic vectors (Section 5.2,
// "Sets").
type SetOp struct {
	ov    orVector
	union bool
}

// NewSetUnion constructs the set-union AFE over a universe of size B.
func NewSetUnion(B, lambda int) *SetOp {
	return &SetOp{ov: orVector{blocks: B, lambda: lambda}, union: true}
}

// NewSetIntersection constructs the set-intersection AFE.
func NewSetIntersection(B, lambda int) *SetOp {
	return &SetOp{ov: orVector{blocks: B, lambda: lambda}, union: false}
}

// Name implements XorScheme.
func (s *SetOp) Name() string {
	if s.union {
		return fmt.Sprintf("union%d", s.ov.blocks)
	}
	return fmt.Sprintf("intersect%d", s.ov.blocks)
}

// Blocks implements XorScheme.
func (s *SetOp) Blocks() int { return s.ov.blocks }

// Lambda implements XorScheme.
func (s *SetOp) Lambda() int { return s.ov.lambda }

// Words implements XorScheme.
func (s *SetOp) Words() int { return s.ov.Words() }

// Encode maps a set (member indices in [0, B)) to its encoding.
func (s *SetOp) Encode(members []int, rnd io.Reader) ([]uint64, error) {
	bits := make([]bool, s.ov.blocks)
	for _, m := range members {
		if m < 0 || m >= s.ov.blocks {
			return nil, fmt.Errorf("%w: element %d outside universe of %d", ErrRange, m, s.ov.blocks)
		}
		bits[m] = true
	}
	if !s.union {
		for i := range bits {
			bits[i] = !bits[i]
		}
	}
	return s.ov.encodeBits(bits, rnd)
}

// Decode returns the characteristic vector of the union or intersection.
func (s *SetOp) Decode(agg []uint64) ([]bool, error) {
	bits, err := s.ov.decodeBits(agg)
	if err != nil {
		return nil, err
	}
	if !s.union {
		for i := range bits {
			bits[i] = !bits[i]
		}
	}
	return bits, nil
}

// XorSplit shares an XOR encoding among s servers; it simply re-exports the
// share-package primitive so pipeline code can stay within afe vocabulary.
func XorSplit(words []uint64, s int) ([][]uint64, error) { return share.XorSplit(words, s) }

// XorAggregate folds a share into an accumulator in place.
func XorAggregate(acc, sh []uint64) {
	for i := range acc {
		acc[i] ^= sh[i]
	}
}
