package afe

import (
	"fmt"
	"math"
	"math/big"

	"prio/internal/circuit"
	"prio/internal/field"
)

// Sum is the integer summation AFE of Section 5.2: a client's b-bit integer
// x is encoded as (x, β_0, …, β_{b-1}) ∈ F^{b+1}, the Valid circuit checks
// that each β is a bit and that the bits recompose x, and the servers
// aggregate only the first component. Decode returns Σx_i; DecodeMean
// divides by the client count. The Valid circuit has exactly b
// multiplication gates.
type Sum[Fd field.Field[E], E any] struct {
	f    Fd
	bits int
	c    *circuit.Circuit[E]
}

// NewSum constructs the summation AFE for b-bit integers (1 ≤ b ≤ 63).
func NewSum[Fd field.Field[E], E any](f Fd, bits int) *Sum[Fd, E] {
	if bits < 1 || bits > 63 {
		panic("afe: NewSum bits out of range")
	}
	b := circuit.NewBuilder(f, bits+1)
	bitWires := make([]circuit.Wire, bits)
	for i := range bitWires {
		bitWires[i] = b.Input(i + 1)
	}
	b.AssertBitDecomposition(b.Input(0), bitWires)
	return &Sum[Fd, E]{f: f, bits: bits, c: b.Build()}
}

// Name implements Scheme.
func (s *Sum[Fd, E]) Name() string { return fmt.Sprintf("sum%d", s.bits) }

// Bits returns the integer width b.
func (s *Sum[Fd, E]) Bits() int { return s.bits }

// K implements Scheme.
func (s *Sum[Fd, E]) K() int { return s.bits + 1 }

// KPrime implements Scheme: only the value itself is aggregated.
func (s *Sum[Fd, E]) KPrime() int { return 1 }

// Circuit implements Scheme.
func (s *Sum[Fd, E]) Circuit() *circuit.Circuit[E] { return s.c }

// Encode maps x ∈ [0, 2^b) to its encoding.
func (s *Sum[Fd, E]) Encode(x uint64) ([]E, error) {
	if s.bits < 64 && x >= 1<<uint(s.bits) {
		return nil, fmt.Errorf("%w: %d needs more than %d bits", ErrRange, x, s.bits)
	}
	out := make([]E, 0, s.K())
	out = append(out, s.f.FromUint64(x))
	return append(out, bitsOf(s.f, x, s.bits)...), nil
}

// MaxClients returns the largest client count for which the aggregate cannot
// overflow the field: ⌊(p−1)/(2^b−1)⌋.
func (s *Sum[Fd, E]) MaxClients() *big.Int {
	max := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), uint(s.bits)), big.NewInt(1))
	p := s.f.Modulus()
	p.Sub(p, big.NewInt(1))
	return p.Div(p, max)
}

// Decode recovers Σ x_i from the aggregated prefix.
func (s *Sum[Fd, E]) Decode(agg []E, n int) (*big.Int, error) {
	if len(agg) != s.KPrime() {
		return nil, ErrDecode
	}
	bound := new(big.Int).Mul(big.NewInt(int64(n)), new(big.Int).Lsh(big.NewInt(1), uint(s.bits)))
	return toCount(s.f, agg[0], bound)
}

// DecodeMean recovers the arithmetic mean Σx_i / n.
func (s *Sum[Fd, E]) DecodeMean(agg []E, n int) (float64, error) {
	if n <= 0 {
		return 0, ErrDecode
	}
	total, err := s.Decode(agg, n)
	if err != nil {
		return 0, err
	}
	r := new(big.Rat).SetFrac(total, big.NewInt(int64(n)))
	out, _ := r.Float64()
	return out, nil
}

// GeoMean is the product / geometric-mean AFE: Section 5.2 notes that
// products "work in exactly the same manner [as sums], except that we encode
// x using b-bit logarithms". GeoMean encodes log₂(x) in fixed point with
// fracBits fractional bits and reuses the summation machinery; decoding
// exponentiates. Results are approximate with error governed by fracBits.
type GeoMean[Fd field.Field[E], E any] struct {
	*Sum[Fd, E]
	fracBits int
}

// NewGeoMean constructs the geometric-mean AFE. bits is the total fixed-point
// width of the encoded logarithm, fracBits of which are fractional.
func NewGeoMean[Fd field.Field[E], E any](f Fd, bits, fracBits int) *GeoMean[Fd, E] {
	if fracBits < 0 || fracBits >= bits {
		panic("afe: NewGeoMean fracBits out of range")
	}
	return &GeoMean[Fd, E]{Sum: NewSum[Fd, E](f, bits), fracBits: fracBits}
}

// Name implements Scheme.
func (g *GeoMean[Fd, E]) Name() string { return fmt.Sprintf("geomean%d.%d", g.bits, g.fracBits) }

// EncodeValue encodes a positive real x as its fixed-point base-2 logarithm.
func (g *GeoMean[Fd, E]) EncodeValue(x float64) ([]E, error) {
	if x <= 0 || math.IsInf(x, 0) || math.IsNaN(x) {
		return nil, fmt.Errorf("%w: geometric mean requires positive finite values", ErrRange)
	}
	l := math.Log2(x) * float64(uint64(1)<<uint(g.fracBits))
	if l < 0 {
		return nil, fmt.Errorf("%w: value %v below fixed-point range", ErrRange, x)
	}
	return g.Sum.Encode(uint64(math.Round(l)))
}

// DecodeGeoMean recovers the geometric mean (Πx_i)^{1/n}.
func (g *GeoMean[Fd, E]) DecodeGeoMean(agg []E, n int) (float64, error) {
	mean, err := g.Sum.DecodeMean(agg, n)
	if err != nil {
		return 0, err
	}
	return math.Exp2(mean / float64(uint64(1)<<uint(g.fracBits))), nil
}

// DecodeProduct recovers the product Πx_i (approximately).
func (g *GeoMean[Fd, E]) DecodeProduct(agg []E, n int) (float64, error) {
	total, err := g.Sum.Decode(agg, n)
	if err != nil {
		return 0, err
	}
	tf, _ := new(big.Rat).SetFrac(total, big.NewInt(1<<uint(g.fracBits))).Float64()
	return math.Exp2(tf), nil
}
