package afe

import (
	"fmt"
	"math/big"

	"prio/internal/circuit"
	"prio/internal/field"
	"prio/internal/sketch"
)

// CountMin is the approximate-count AFE of Appendix G: for item domains too
// large for an explicit histogram, each client inserts its item into a
// count-min sketch — one one-hot row per hash function — and the servers
// aggregate the sketches. The Valid circuit checks each of the R rows is
// one-hot (R·C multiplication gates), which bounds any malicious client's
// influence on any count to ±1, the paper's robustness goal.
//
// The decoded aggregate leaks the whole summed sketch (the AFE is private
// with respect to that function, as the paper notes).
type CountMin[Fd field.Field[E], E any] struct {
	f field.Field[E]
	p sketch.Params
	c *circuit.Circuit[E]
}

// NewCountMin constructs the sketch AFE with estimates within ε·n of the
// truth except with probability δ. The paper's browser-statistics
// configurations are (ε=1/10, δ=2⁻¹⁰) and (ε=1/100, δ=2⁻²⁰).
func NewCountMin[Fd field.Field[E], E any](f Fd, epsilon, delta float64) *CountMin[Fd, E] {
	p := sketch.NewParams(epsilon, delta)
	b := circuit.NewBuilder(f, p.Cells())
	for r := 0; r < p.Rows; r++ {
		row := make([]circuit.Wire, p.Cols)
		for c := 0; c < p.Cols; c++ {
			row[c] = b.Input(r*p.Cols + c)
		}
		b.AssertOneHot(row)
	}
	return &CountMin[Fd, E]{f: f, p: p, c: b.Build()}
}

// Name implements Scheme.
func (s *CountMin[Fd, E]) Name() string {
	return fmt.Sprintf("countmin%dx%d", s.p.Rows, s.p.Cols)
}

// Params returns the sketch dimensions.
func (s *CountMin[Fd, E]) Params() sketch.Params { return s.p }

// K implements Scheme.
func (s *CountMin[Fd, E]) K() int { return s.p.Cells() }

// KPrime implements Scheme: the whole sketch is aggregated.
func (s *CountMin[Fd, E]) KPrime() int { return s.p.Cells() }

// Circuit implements Scheme.
func (s *CountMin[Fd, E]) Circuit() *circuit.Circuit[E] { return s.c }

// Encode maps an arbitrary byte-string item to its sketch encoding.
func (s *CountMin[Fd, E]) Encode(item []byte) ([]E, error) {
	out := make([]E, s.p.Cells())
	for i := range out {
		out[i] = s.f.Zero()
	}
	for _, pos := range s.p.Positions(item) {
		out[pos] = s.f.One()
	}
	return out, nil
}

// Decode converts the aggregate into a queryable sketch.
func (s *CountMin[Fd, E]) Decode(agg []E, n int) (*sketch.Sketch, error) {
	if len(agg) != s.p.Cells() {
		return nil, ErrDecode
	}
	bound := big.NewInt(int64(n))
	counts := make([]uint64, len(agg))
	for i, e := range agg {
		v, err := toCount(s.f, e, bound)
		if err != nil {
			return nil, err
		}
		counts[i] = v.Uint64()
	}
	return sketch.FromCounts(s.p, counts), nil
}
