package afe

import (
	"fmt"
	"math"
	"math/big"

	"prio/internal/circuit"
	"prio/internal/field"
)

// Variance is the variance/stddev AFE of Section 5.2: each client encodes
// its b-bit integer x as (x, x², β_0…β_{b-1}); the servers aggregate
// (Σx, Σx²) and compute Var(X) = E[X²] − E[X]² in the clear. The Valid
// circuit checks the bit decomposition of x and that the second component
// is the square of the first (b + 1 multiplication gates).
//
// As the paper notes, this AFE is private with respect to the function that
// reveals both the mean and the variance.
type Variance[Fd field.Field[E], E any] struct {
	f    Fd
	bits int
	c    *circuit.Circuit[E]
}

// NewVariance constructs the variance AFE for b-bit integers. The field must
// be able to hold n·(2^b−1)² without overflow for n clients.
func NewVariance[Fd field.Field[E], E any](f Fd, bits int) *Variance[Fd, E] {
	if bits < 1 || bits > 31 {
		panic("afe: NewVariance bits out of range")
	}
	b := circuit.NewBuilder(f, bits+2)
	x := b.Input(0)
	xx := b.Input(1)
	bitWires := make([]circuit.Wire, bits)
	for i := range bitWires {
		bitWires[i] = b.Input(i + 2)
	}
	b.AssertBitDecomposition(x, bitWires)
	b.AssertEqual(b.Mul(x, x), xx)
	return &Variance[Fd, E]{f: f, bits: bits, c: b.Build()}
}

// Name implements Scheme.
func (s *Variance[Fd, E]) Name() string { return fmt.Sprintf("var%d", s.bits) }

// K implements Scheme.
func (s *Variance[Fd, E]) K() int { return s.bits + 2 }

// KPrime implements Scheme: (Σx, Σx²) are aggregated.
func (s *Variance[Fd, E]) KPrime() int { return 2 }

// Circuit implements Scheme.
func (s *Variance[Fd, E]) Circuit() *circuit.Circuit[E] { return s.c }

// Encode maps x ∈ [0, 2^b) to (x, x², bits...).
func (s *Variance[Fd, E]) Encode(x uint64) ([]E, error) {
	if x >= 1<<uint(s.bits) {
		return nil, fmt.Errorf("%w: %d needs more than %d bits", ErrRange, x, s.bits)
	}
	out := make([]E, 0, s.K())
	out = append(out, s.f.FromUint64(x), s.f.FromUint64(x*x))
	return append(out, bitsOf(s.f, x, s.bits)...), nil
}

// Moments returns (Σx, Σx²) as integers.
func (s *Variance[Fd, E]) Moments(agg []E, n int) (sum, sumSq *big.Int, err error) {
	if len(agg) != 2 {
		return nil, nil, ErrDecode
	}
	nBig := big.NewInt(int64(n))
	maxV := new(big.Int).Lsh(big.NewInt(1), uint(s.bits))
	if sum, err = toCount(s.f, agg[0], new(big.Int).Mul(nBig, maxV)); err != nil {
		return nil, nil, err
	}
	bound2 := new(big.Int).Mul(nBig, new(big.Int).Mul(maxV, maxV))
	if sumSq, err = toCount(s.f, agg[1], bound2); err != nil {
		return nil, nil, err
	}
	return sum, sumSq, nil
}

// Decode returns (mean, variance) of the client population.
func (s *Variance[Fd, E]) Decode(agg []E, n int) (mean, variance float64, err error) {
	if n <= 0 {
		return 0, 0, ErrDecode
	}
	sum, sumSq, err := s.Moments(agg, n)
	if err != nil {
		return 0, 0, err
	}
	nf := float64(n)
	sf, _ := new(big.Float).SetInt(sum).Float64()
	qf, _ := new(big.Float).SetInt(sumSq).Float64()
	mean = sf / nf
	variance = qf/nf - mean*mean
	if variance < 0 {
		variance = 0 // floating-point dust on constant data
	}
	return mean, variance, nil
}

// DecodeStddev returns (mean, standard deviation).
func (s *Variance[Fd, E]) DecodeStddev(agg []E, n int) (mean, stddev float64, err error) {
	mean, v, err := s.Decode(agg, n)
	return mean, math.Sqrt(v), err
}
