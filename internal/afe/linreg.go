package afe

import (
	"errors"
	"fmt"
	"math/big"

	"prio/internal/circuit"
	"prio/internal/field"
)

// LinReg is the private least-squares regression AFE of Section 5.3. Each
// client holds a training example (x ∈ Z^d, y): the encoding carries the
// features, the label, the label's square, every pairwise feature product
// x_i·x_j (i ≤ j), and every feature-label product x_j·y — exactly the
// second moments needed to assemble the normal equations (equation 1 in the
// paper) — followed by the bit decompositions that let the Valid circuit
// range-check every committed value.
//
// With uniform b-bit features and label, the circuit has
// (d+1)·b + d(d+1)/2 + d + 1 multiplication gates, matching the gate counts
// the paper reports for its health-data models (Heart: 174, BrCa: 930).
//
// The AFE is private with respect to the function revealing the regression
// coefficients together with the feature covariance matrix, as the paper
// notes.
type LinReg[Fd field.Field[E], E any] struct {
	f     Fd
	d     int
	xBits []int
	yBits int
	c     *circuit.Circuit[E]
	kp    int
}

// ErrSingular is returned by Decode when the normal equations are singular
// (e.g. constant features or too few clients).
var ErrSingular = errors.New("afe: singular normal equations")

// NewLinReg constructs the regression AFE for d = len(xBits) features, where
// feature j is an xBits[j]-bit integer and the label is a yBits-bit integer.
// Mixed widths model datasets with boolean and continuous columns, as in the
// paper's heart-disease configuration.
func NewLinReg[Fd field.Field[E], E any](f Fd, xBits []int, yBits int) *LinReg[Fd, E] {
	d := len(xBits)
	if d < 1 {
		panic("afe: NewLinReg needs at least one feature")
	}
	for _, w := range xBits {
		if w < 1 || w > 31 {
			panic("afe: NewLinReg feature width out of range")
		}
	}
	if yBits < 1 || yBits > 31 {
		panic("afe: NewLinReg label width out of range")
	}
	l := &LinReg[Fd, E]{f: f, d: d, xBits: append([]int(nil), xBits...), yBits: yBits}
	l.kp = d + 2 + d*(d+1)/2 + d

	totalBits := yBits
	for _, w := range xBits {
		totalBits += w
	}
	b := circuit.NewBuilder(f, l.kp+totalBits)

	// Moment layout (aggregated prefix).
	xW := make([]circuit.Wire, d)
	for j := 0; j < d; j++ {
		xW[j] = b.Input(j)
	}
	yW := b.Input(d)
	yyW := b.Input(d + 1)
	off := d + 2
	crossW := make([]circuit.Wire, d*(d+1)/2)
	for i := range crossW {
		crossW[i] = b.Input(off + i)
	}
	off += len(crossW)
	xyW := make([]circuit.Wire, d)
	for j := range xyW {
		xyW[j] = b.Input(off + j)
	}
	off += d

	// Range checks via bit decomposition (tail of the encoding).
	for j := 0; j < d; j++ {
		bits := make([]circuit.Wire, xBits[j])
		for i := range bits {
			bits[i] = b.Input(off + i)
		}
		off += xBits[j]
		b.AssertBitDecomposition(xW[j], bits)
	}
	yBitW := make([]circuit.Wire, yBits)
	for i := range yBitW {
		yBitW[i] = b.Input(off + i)
	}
	b.AssertBitDecomposition(yW, yBitW)

	// Moment consistency.
	b.AssertEqual(b.Mul(yW, yW), yyW)
	idx := 0
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			b.AssertEqual(b.Mul(xW[i], xW[j]), crossW[idx])
			idx++
		}
	}
	for j := 0; j < d; j++ {
		b.AssertEqual(b.Mul(xW[j], yW), xyW[j])
	}
	l.c = b.Build()
	return l
}

// NewLinRegUniform is NewLinReg with every feature and the label b bits wide
// — the configuration of Figure 8 and Table 9 (b = 14).
func NewLinRegUniform[Fd field.Field[E], E any](f Fd, d, b int) *LinReg[Fd, E] {
	xb := make([]int, d)
	for i := range xb {
		xb[i] = b
	}
	return NewLinReg[Fd, E](f, xb, b)
}

// Name implements Scheme.
func (l *LinReg[Fd, E]) Name() string { return fmt.Sprintf("linreg%d", l.d) }

// D returns the feature dimension.
func (l *LinReg[Fd, E]) D() int { return l.d }

// K implements Scheme.
func (l *LinReg[Fd, E]) K() int { return l.c.NumInputs }

// KPrime implements Scheme: the moment vector is aggregated, the bit tail is
// validation-only.
func (l *LinReg[Fd, E]) KPrime() int { return l.kp }

// Circuit implements Scheme.
func (l *LinReg[Fd, E]) Circuit() *circuit.Circuit[E] { return l.c }

// crossIndex maps (i ≤ j) to its position in the packed upper triangle.
func (l *LinReg[Fd, E]) crossIndex(i, j int) int {
	// Row i starts after rows 0..i-1, which hold (d-0)+(d-1)+...+(d-i+1) entries.
	return i*l.d - i*(i-1)/2 + (j - i)
}

// Encode maps a training example to its moment encoding.
func (l *LinReg[Fd, E]) Encode(x []uint64, y uint64) ([]E, error) {
	f := l.f
	if len(x) != l.d {
		return nil, fmt.Errorf("%w: %d features, want %d", ErrRange, len(x), l.d)
	}
	for j, v := range x {
		if v >= 1<<uint(l.xBits[j]) {
			return nil, fmt.Errorf("%w: feature %d value %d exceeds %d bits", ErrRange, j, v, l.xBits[j])
		}
	}
	if y >= 1<<uint(l.yBits) {
		return nil, fmt.Errorf("%w: label %d exceeds %d bits", ErrRange, y, l.yBits)
	}
	out := make([]E, 0, l.K())
	for _, v := range x {
		out = append(out, f.FromUint64(v))
	}
	out = append(out, f.FromUint64(y), f.FromUint64(y*y))
	for i := 0; i < l.d; i++ {
		for j := i; j < l.d; j++ {
			out = append(out, f.FromUint64(x[i]*x[j]))
		}
	}
	for j := 0; j < l.d; j++ {
		out = append(out, f.FromUint64(x[j]*y))
	}
	for j := 0; j < l.d; j++ {
		out = append(out, bitsOf(f, x[j], l.xBits[j])...)
	}
	out = append(out, bitsOf(f, y, l.yBits)...)
	return out, nil
}

// Moments unpacks the aggregate into float64 second moments:
// sx[j] = Σx_j, sy = Σy, syy = Σy², sxx[i][j] = Σx_i·x_j, sxy[j] = Σx_j·y.
func (l *LinReg[Fd, E]) Moments(agg []E) (sx []float64, sy, syy float64, sxx [][]float64, sxy []float64, err error) {
	if len(agg) != l.kp {
		return nil, 0, 0, nil, nil, ErrDecode
	}
	f := l.f
	toF := func(e E) float64 {
		v, _ := new(big.Float).SetInt(f.ToBig(e)).Float64()
		return v
	}
	sx = make([]float64, l.d)
	for j := 0; j < l.d; j++ {
		sx[j] = toF(agg[j])
	}
	sy = toF(agg[l.d])
	syy = toF(agg[l.d+1])
	off := l.d + 2
	sxx = make([][]float64, l.d)
	for i := range sxx {
		sxx[i] = make([]float64, l.d)
	}
	for i := 0; i < l.d; i++ {
		for j := i; j < l.d; j++ {
			v := toF(agg[off+l.crossIndex(i, j)])
			sxx[i][j] = v
			sxx[j][i] = v
		}
	}
	off += l.d * (l.d + 1) / 2
	sxy = make([]float64, l.d)
	for j := 0; j < l.d; j++ {
		sxy[j] = toF(agg[off+j])
	}
	return sx, sy, syy, sxx, sxy, nil
}

// Decode solves the normal equations and returns the least-squares
// coefficients (c_0, c_1, …, c_d) of h(x) = c_0 + Σ c_j·x_j.
func (l *LinReg[Fd, E]) Decode(agg []E, n int) ([]float64, error) {
	sx, sy, _, sxx, sxy, err := l.Moments(agg)
	if err != nil {
		return nil, err
	}
	d := l.d
	// Build the (d+1)×(d+1) system (equation 1 of the paper, generalized).
	a := make([][]float64, d+1)
	rhs := make([]float64, d+1)
	a[0] = make([]float64, d+1)
	a[0][0] = float64(n)
	for j := 0; j < d; j++ {
		a[0][j+1] = sx[j]
	}
	rhs[0] = sy
	for i := 0; i < d; i++ {
		a[i+1] = make([]float64, d+1)
		a[i+1][0] = sx[i]
		for j := 0; j < d; j++ {
			a[i+1][j+1] = sxx[i][j]
		}
		rhs[i+1] = sxy[i]
	}
	return solveLinear(a, rhs)
}

// DecodeR2 returns the coefficient of determination of the least-squares fit
// on the aggregated population (computable because the encoding carries Σy²).
func (l *LinReg[Fd, E]) DecodeR2(agg []E, n int) (float64, error) {
	coeffs, err := l.Decode(agg, n)
	if err != nil {
		return 0, err
	}
	sx, sy, syy, _, sxy, err := l.Moments(agg)
	if err != nil {
		return 0, err
	}
	// SSE = Σ(y − ŷ)² = Σy² − c·(Σy, Σx_jy) for the least-squares c.
	sse := syy - coeffs[0]*sy
	for j := 0; j < l.d; j++ {
		sse -= coeffs[j+1] * sxy[j]
	}
	sst := syy - sy*sy/float64(n)
	if sst == 0 {
		return 0, fmt.Errorf("%w: zero label variance", ErrDecode)
	}
	_ = sx
	return 1 - sse/sst, nil
}

// solveLinear solves a·x = rhs by Gaussian elimination with partial
// pivoting, destroying its arguments.
func solveLinear(a [][]float64, rhs []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// pivot
		piv := col
		for r := col + 1; r < n; r++ {
			if abs(a[r][col]) > abs(a[piv][col]) {
				piv = r
			}
		}
		if abs(a[piv][col]) < 1e-12 {
			return nil, ErrSingular
		}
		a[col], a[piv] = a[piv], a[col]
		rhs[col], rhs[piv] = rhs[piv], rhs[col]
		for r := col + 1; r < n; r++ {
			fac := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= fac * a[col][c]
			}
			rhs[r] -= fac * rhs[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		v := rhs[r]
		for c := r + 1; c < n; c++ {
			v -= a[r][c] * x[c]
		}
		x[r] = v / a[r][r]
	}
	return x, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
