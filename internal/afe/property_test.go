package afe

import (
	"math"
	mrand "math/rand"
	"testing"
	"testing/quick"

	"prio/internal/circuit"
	"prio/internal/field"
)

// TestSumRoundTripQuick: encode→aggregate→decode equals the true sum for
// random client populations.
func TestSumRoundTripQuick(t *testing.T) {
	f := field.NewF64()
	s := NewSum(f, 16)
	err := quick.Check(func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		var encs [][]uint64
		want := uint64(0)
		for _, v := range vals {
			enc, err := s.Encode(uint64(v))
			if err != nil {
				return false
			}
			if !circuit.Validate(f, s.Circuit(), enc) {
				return false
			}
			want += uint64(v)
			encs = append(encs, enc)
		}
		got, err := s.Decode(aggregate(f, s, encs), len(encs))
		return err == nil && got.Uint64() == want
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFreqCountRoundTripQuick: the decoded histogram matches exact counts.
func TestFreqCountRoundTripQuick(t *testing.T) {
	f := field.NewF64()
	const B = 8
	s := NewFreqCount(f, B)
	err := quick.Check(func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		want := make([]uint64, B)
		var encs [][]uint64
		for _, v := range vals {
			bucket := int(v) % B
			enc, err := s.Encode(bucket)
			if err != nil {
				return false
			}
			want[bucket]++
			encs = append(encs, enc)
		}
		got, err := s.Decode(aggregate(f, s, encs), len(encs))
		if err != nil {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

// TestIntVectorRoundTripQuick covers the Table 3 / cell workload encoding.
func TestIntVectorRoundTripQuick(t *testing.T) {
	f := field.NewF64()
	const L, bits = 6, 10
	s := NewIntVector(f, L, bits)
	err := quick.Check(func(rows [][6]uint16) bool {
		if len(rows) == 0 {
			return true
		}
		want := make([]uint64, L)
		var encs [][]uint64
		for _, row := range rows {
			vals := make([]uint64, L)
			for i := range vals {
				vals[i] = uint64(row[i]) & ((1 << bits) - 1)
				want[i] += vals[i]
			}
			enc, err := s.Encode(vals)
			if err != nil {
				return false
			}
			if !circuit.Validate(f, s.Circuit(), enc) {
				return false
			}
			encs = append(encs, enc)
		}
		got, err := s.Decode(aggregate(f, s, encs), len(encs))
		if err != nil {
			return false
		}
		for i := range want {
			if got[i].Uint64() != want[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMutationRejection systematically perturbs every component of valid
// encodings and checks that Valid rejects whenever it must: a component of
// the aggregated prefix may only change if some validation relation catches
// it — the robustness definition (Definition 6) in circuit form.
func TestMutationRejection(t *testing.T) {
	f := field.NewF64()
	schemes := []struct {
		name string
		s    Scheme[uint64]
		enc  func() []uint64
	}{
		{"sum8", NewSum(f, 8), func() []uint64 {
			e, _ := NewSum(f, 8).Encode(200)
			return e
		}},
		{"var6", NewVariance(f, 6), func() []uint64 {
			e, _ := NewVariance(f, 6).Encode(33)
			return e
		}},
		{"freq5", NewFreqCount(f, 5), func() []uint64 {
			e, _ := NewFreqCount(f, 5).Encode(2)
			return e
		}},
		{"intvec3x4", NewIntVector(f, 3, 4), func() []uint64 {
			e, _ := NewIntVector(f, 3, 4).Encode([]uint64{1, 15, 7})
			return e
		}},
	}
	deltas := []uint64{1, 2, field.ModulusF64 - 1, 1 << 40}
	for _, sc := range schemes {
		base := sc.enc()
		if !circuit.Validate(f, sc.s.Circuit(), base) {
			t.Fatalf("%s: base encoding invalid", sc.name)
		}
		rejected, mutations := 0, 0
		for pos := 0; pos < sc.s.K(); pos++ {
			for _, d := range deltas {
				mut := append([]uint64(nil), base...)
				mut[pos] = f.Add(mut[pos], d)
				mutations++
				if !circuit.Validate(f, sc.s.Circuit(), mut) {
					rejected++
				}
			}
		}
		// Every single-component perturbation must break some relation in
		// these encodings (each component is pinned by a bit check or a
		// recomposition constraint).
		if rejected != mutations {
			t.Errorf("%s: only %d/%d single-component mutations rejected",
				sc.name, rejected, mutations)
		}
	}

	// BitVector is the instructive exception: flipping a bit produces
	// another VALID encoding — robustness bounds a malicious client's
	// influence to ±1 per question, it does not detect lies. Any mutation
	// that is NOT a clean bit flip must still be rejected.
	bv := NewBitVector(f, 6)
	base, _ := bv.Encode([]bool{true, false, true, true, false, false})
	for pos := 0; pos < bv.K(); pos++ {
		for _, d := range deltas {
			mut := append([]uint64(nil), base...)
			mut[pos] = f.Add(mut[pos], d)
			isBit := mut[pos] == 0 || mut[pos] == 1
			valid := circuit.Validate(f, bv.Circuit(), mut)
			if valid != isBit {
				t.Errorf("bits6: pos %d delta %d: valid=%v but component=%d",
					pos, d, valid, mut[pos])
			}
		}
	}
}

// TestGeoMeanAccuracyQuick: decoded geometric means stay within fixed-point
// tolerance of the float truth.
func TestGeoMeanAccuracyQuick(t *testing.T) {
	f := field.NewF64()
	g := NewGeoMean(f, 30, 12)
	rng := mrand.New(mrand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(6)
		logSum := 0.0
		var encs [][]uint64
		for i := 0; i < n; i++ {
			v := 1 + rng.Float64()*1000
			enc, err := g.EncodeValue(v)
			if err != nil {
				t.Fatal(err)
			}
			encs = append(encs, enc)
			logSum += log2(v)
		}
		want := exp2(logSum / float64(n))
		got, err := g.DecodeGeoMean(aggregate[field.F64, uint64](f, g, encs), n)
		if err != nil {
			t.Fatal(err)
		}
		if got < want*0.999 || got > want*1.001 {
			t.Errorf("trial %d: geomean = %v, want ≈%v", trial, got, want)
		}
	}
}

func log2(x float64) float64 { return math.Log2(x) }

func exp2(x float64) float64 { return math.Exp2(x) }
