package afe

import (
	"errors"
	"fmt"
	"math/big"

	"prio/internal/circuit"
	"prio/internal/field"
)

// Scheme is the field-agnostic view of an AFE that the aggregation pipeline
// needs: the encoding arity, the aggregated prefix, and the validation
// circuit. Concrete types add typed Encode/Decode methods.
type Scheme[E any] interface {
	// Name identifies the scheme, e.g. "sum8".
	Name() string
	// K is the encoding length: Encode produces vectors in F^K.
	K() int
	// KPrime is the number of leading components the servers aggregate
	// (Trunc_k' in the paper); KPrime ≤ K.
	KPrime() int
	// Circuit returns the Valid predicate as an arithmetic circuit over K
	// inputs whose assertion wires must all be zero.
	Circuit() *circuit.Circuit[E]
}

// Errors shared by the encoders.
var (
	ErrRange  = errors.New("afe: input out of range")
	ErrDecode = errors.New("afe: malformed aggregate")
)

// bitsOf decomposes v into its w least-significant bits as field elements.
func bitsOf[Fd field.Field[E], E any](f Fd, v uint64, w int) []E {
	out := make([]E, w)
	for i := 0; i < w; i++ {
		out[i] = f.FromUint64((v >> uint(i)) & 1)
	}
	return out
}

// toCount converts an aggregated field element that represents a
// non-negative integer count back to a big.Int, failing if it cannot fit the
// stated bound. bound <= 0 skips the check.
func toCount[Fd field.Field[E], E any](f Fd, e E, bound *big.Int) (*big.Int, error) {
	v := f.ToBig(e)
	if bound != nil && bound.Sign() > 0 && v.Cmp(bound) > 0 {
		return nil, fmt.Errorf("%w: component %v exceeds bound %v", ErrDecode, v, bound)
	}
	return v, nil
}

// Concat composes several field AFEs into one: encodings are concatenated,
// validation circuits are merged, and the aggregated prefixes are
// re-packed so that each part's first KPrime components are aggregated.
//
// Because Trunc takes a prefix, Concat reorders each part's encoding so that
// the aggregated components of all parts come first (parts' prefixes in
// order), followed by all validation-only tails. Decode callers split the
// aggregate with Offsets.
//
// Concat is how the browser-statistics application of Section 6.2 is built:
// two mean encodings plus sixteen frequency counts in a single submission.
type Concat[Fd field.Field[E], E any] struct {
	f     Fd
	name  string
	parts []Scheme[E]
	k     int
	kp    int
	c     *circuit.Circuit[E]
}

// NewConcat builds the composition of the given schemes.
func NewConcat[Fd field.Field[E], E any](f Fd, name string, parts ...Scheme[E]) *Concat[Fd, E] {
	cc := &Concat[Fd, E]{f: f, name: name, parts: parts}
	for _, p := range parts {
		cc.k += p.K()
		cc.kp += p.KPrime()
	}
	// Merged circuit over the re-packed layout: aggregated prefixes first,
	// then tails. Rebuild each part's circuit with remapped input indices.
	b := circuit.NewBuilder(f, cc.k)
	prefixOff := 0
	tailOff := cc.kp
	for _, p := range parts {
		pc := p.Circuit()
		wireMap := make([]circuit.Wire, len(pc.Gates))
		for gi, g := range pc.Gates {
			switch g.Op {
			case circuit.OpInput:
				if g.A < p.KPrime() {
					wireMap[gi] = b.Input(prefixOff + g.A)
				} else {
					wireMap[gi] = b.Input(tailOff + g.A - p.KPrime())
				}
			case circuit.OpConst:
				wireMap[gi] = b.Const(g.K)
			case circuit.OpAdd:
				wireMap[gi] = b.Add(wireMap[g.A], wireMap[g.B])
			case circuit.OpSub:
				wireMap[gi] = b.Sub(wireMap[g.A], wireMap[g.B])
			case circuit.OpMul:
				wireMap[gi] = b.Mul(wireMap[g.A], wireMap[g.B])
			case circuit.OpMulConst:
				wireMap[gi] = b.MulConst(wireMap[g.A], g.K)
			}
		}
		for _, a := range pc.Asserts {
			b.AssertZero(wireMap[a])
		}
		prefixOff += p.KPrime()
		tailOff += p.K() - p.KPrime()
	}
	cc.c = b.Build()
	return cc
}

// Name implements Scheme.
func (cc *Concat[Fd, E]) Name() string { return cc.name }

// K implements Scheme.
func (cc *Concat[Fd, E]) K() int { return cc.k }

// KPrime implements Scheme.
func (cc *Concat[Fd, E]) KPrime() int { return cc.kp }

// Circuit implements Scheme.
func (cc *Concat[Fd, E]) Circuit() *circuit.Circuit[E] { return cc.c }

// Pack re-packs the given per-part encodings (each of length parts[i].K())
// into the combined layout.
func (cc *Concat[Fd, E]) Pack(encodings ...[]E) ([]E, error) {
	if len(encodings) != len(cc.parts) {
		return nil, fmt.Errorf("%w: got %d encodings for %d parts", ErrRange, len(encodings), len(cc.parts))
	}
	out := make([]E, 0, cc.k)
	for i, enc := range encodings {
		if len(enc) != cc.parts[i].K() {
			return nil, fmt.Errorf("%w: part %d encoding has length %d, want %d", ErrRange, i, len(enc), cc.parts[i].K())
		}
		out = append(out, enc[:cc.parts[i].KPrime()]...)
	}
	for i, enc := range encodings {
		out = append(out, enc[cc.parts[i].KPrime():]...)
	}
	return out, nil
}

// Offsets returns, for each part, the [start, end) range of its aggregated
// components within the combined aggregate vector.
func (cc *Concat[Fd, E]) Offsets() [][2]int {
	out := make([][2]int, len(cc.parts))
	off := 0
	for i, p := range cc.parts {
		out[i] = [2]int{off, off + p.KPrime()}
		off += p.KPrime()
	}
	return out
}

// Part returns the i-th composed scheme.
func (cc *Concat[Fd, E]) Part(i int) Scheme[E] { return cc.parts[i] }
