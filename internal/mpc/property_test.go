package mpc

import (
	"crypto/rand"
	mrand "math/rand"
	"testing"
	"testing/quick"

	"prio/internal/circuit"
	"prio/internal/field"
	"prio/internal/share"
)

// randCircuit builds a random circuit whose assertion wires are engineered
// to be zero on the chosen input (so valid inputs exist), plus one assertion
// comparing a random wire against its true value.
func randTestCase(seed int64, nIn int) (*circuit.Circuit[uint64], []uint64) {
	f := field.NewF64()
	rng := mrand.New(mrand.NewSource(seed))
	x := make([]uint64, nIn)
	for i := range x {
		x[i] = uint64(rng.Intn(1000))
	}
	b := circuit.NewBuilder(f, nIn)
	wires := make([]circuit.Wire, 0, nIn+16)
	for i := 0; i < nIn; i++ {
		wires = append(wires, b.Input(i))
	}
	pick := func() circuit.Wire { return wires[rng.Intn(len(wires))] }
	for g := 0; g < 12; g++ {
		var w circuit.Wire
		switch rng.Intn(4) {
		case 0:
			w = b.Add(pick(), pick())
		case 1:
			w = b.Sub(pick(), pick())
		case 2:
			w = b.Mul(pick(), pick())
		default:
			w = b.MulConst(pick(), uint64(rng.Intn(50)))
		}
		wires = append(wires, w)
	}
	// Make the last wire's true value an assertion target: w - const(val).
	c0 := b.Build()
	tr := circuit.Eval(f, c0, x)
	// Rebuild with the assertion appended (builder was consumed).
	b2 := circuit.NewBuilder(f, nIn)
	wireMap := make([]circuit.Wire, len(c0.Gates))
	for gi, g := range c0.Gates {
		switch g.Op {
		case circuit.OpInput:
			wireMap[gi] = b2.Input(g.A)
		case circuit.OpConst:
			wireMap[gi] = b2.Const(g.K)
		case circuit.OpAdd:
			wireMap[gi] = b2.Add(wireMap[g.A], wireMap[g.B])
		case circuit.OpSub:
			wireMap[gi] = b2.Sub(wireMap[g.A], wireMap[g.B])
		case circuit.OpMul:
			wireMap[gi] = b2.Mul(wireMap[g.A], wireMap[g.B])
		case circuit.OpMulConst:
			wireMap[gi] = b2.MulConst(wireMap[g.A], g.K)
		}
	}
	last := wireMap[len(wireMap)-1]
	b2.AssertEqual(last, b2.Const(tr.Wires[len(tr.Wires)-1]))
	return b2.Build(), x
}

// runMPC evaluates the circuit's assertion combination over s servers.
func runMPC(t *testing.T, c *circuit.Circuit[uint64], x []uint64, s int) (uint64, error) {
	t.Helper()
	f := field.NewF64()
	triples, err := DealTriples(f, c.M(), rand.Reader)
	if err != nil {
		return 0, err
	}
	xs, err := share.Split(f, rand.Reader, x, s)
	if err != nil {
		return 0, err
	}
	ts, err := share.Split(f, rand.Reader, triples, s)
	if err != nil {
		return 0, err
	}
	rho, err := field.SampleVec(f, rand.Reader, len(c.Asserts))
	if err != nil {
		return 0, err
	}
	sessions := make([]*Session[field.F64, uint64], s)
	opens := make([]*Open[uint64], s)
	done := true
	for i := 0; i < s; i++ {
		se, err := NewSession(f, c, s, xs[i], ts[i], i == 0)
		if err != nil {
			return 0, err
		}
		sessions[i] = se
		var d bool
		opens[i], d = se.Start()
		done = d
	}
	for !done {
		opened := SumOpen(f, opens)
		for i := 0; i < s; i++ {
			next, d, err := sessions[i].Step(opened)
			if err != nil {
				return 0, err
			}
			opens[i], done = next, d
		}
	}
	tau := f.Zero()
	for i := 0; i < s; i++ {
		sh, err := sessions[i].TauShare(rho)
		if err != nil {
			return 0, err
		}
		tau = f.Add(tau, sh)
	}
	return tau, nil
}

// TestMPCEqualsClearEvalQuick: on random circuits with satisfying inputs,
// distributed evaluation agrees with the clear validity check.
func TestMPCEqualsClearEvalQuick(t *testing.T) {
	err := quick.Check(func(seed int64, sRaw uint8) bool {
		s := int(sRaw%4) + 1
		c, x := randTestCase(seed, 4)
		tau, err := runMPC(t, c, x, s)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return tau == 0
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMPCDetectsWrongInputQuick: perturbing the input makes the assertion
// combination nonzero (with overwhelming probability over rho).
func TestMPCDetectsWrongInputQuick(t *testing.T) {
	f := field.NewF64()
	err := quick.Check(func(seed int64, delta uint64) bool {
		delta %= field.ModulusF64
		if delta == 0 {
			return true
		}
		c, x := randTestCase(seed, 4)
		bad := append([]uint64(nil), x...)
		bad[0] = f.Add(bad[0], delta)
		// Some random circuits may not propagate input 0 to the assertion;
		// only check when the clear evaluation actually fails.
		if circuit.Validate(f, c, bad) {
			return true
		}
		tau, err := runMPC(t, c, bad, 3)
		if err != nil {
			return false
		}
		return tau != 0
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}
