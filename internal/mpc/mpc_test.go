package mpc

import (
	"crypto/rand"
	"testing"

	"prio/internal/circuit"
	"prio/internal/field"
	"prio/internal/share"
	"prio/internal/snip"
)

// evalMPC runs the full multi-server MPC evaluation of circuit c on secret x
// and returns the summed assertion combination (zero means valid).
func evalMPC(t *testing.T, c *circuit.Circuit[uint64], x []uint64, s int) uint64 {
	t.Helper()
	f := field.NewF64()
	m := c.M()
	triples, err := DealTriples(f, m, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	xShares, err := share.Split(f, rand.Reader, x, s)
	if err != nil {
		t.Fatal(err)
	}
	tShares, err := share.Split(f, rand.Reader, triples, s)
	if err != nil {
		t.Fatal(err)
	}
	rho, err := field.SampleVec(f, rand.Reader, len(c.Asserts))
	if err != nil {
		t.Fatal(err)
	}

	sessions := make([]*Session[field.F64, uint64], s)
	opens := make([]*Open[uint64], s)
	done := true
	for i := 0; i < s; i++ {
		se, err := NewSession(f, c, s, xShares[i], tShares[i], i == 0)
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = se
		var d bool
		opens[i], d = se.Start()
		done = d
	}
	rounds := 0
	for !done {
		rounds++
		if rounds > MulDepth(c)+1 {
			t.Fatal("MPC did not terminate within MulDepth rounds")
		}
		opened := SumOpen(f, opens)
		for i := 0; i < s; i++ {
			next, d, err := sessions[i].Step(opened)
			if err != nil {
				t.Fatal(err)
			}
			opens[i], done = next, d
		}
	}
	tau := f.Zero()
	for i := 0; i < s; i++ {
		ts, err := sessions[i].TauShare(rho)
		if err != nil {
			t.Fatal(err)
		}
		tau = f.Add(tau, ts)
	}
	return tau
}

func bitCircuit(n int) *circuit.Circuit[uint64] {
	f := field.NewF64()
	b := circuit.NewBuilder(f, n)
	for i := 0; i < n; i++ {
		b.AssertBit(b.Input(i))
	}
	return b.Build()
}

func TestMPCAcceptsValidBits(t *testing.T) {
	c := bitCircuit(8)
	x := []uint64{0, 1, 1, 0, 1, 0, 0, 1}
	for _, s := range []int{1, 2, 5} {
		if tau := evalMPC(t, c, x, s); tau != 0 {
			t.Errorf("s=%d: valid bits rejected (tau=%d)", s, tau)
		}
	}
}

func TestMPCRejectsInvalidBits(t *testing.T) {
	c := bitCircuit(8)
	x := []uint64{0, 1, 2, 0, 1, 0, 0, 1} // 2 is not a bit
	if tau := evalMPC(t, c, x, 3); tau == 0 {
		t.Error("invalid bits accepted")
	}
}

func TestMPCDeepCircuit(t *testing.T) {
	// x^8 == y requires three levels of multiplications.
	f := field.NewF64()
	b := circuit.NewBuilder(f, 2)
	x2 := b.Mul(b.Input(0), b.Input(0))
	x4 := b.Mul(x2, x2)
	x8 := b.Mul(x4, x4)
	b.AssertEqual(x8, b.Input(1))
	c := b.Build()
	if d := MulDepth(c); d != 3 {
		t.Fatalf("MulDepth = %d, want 3", d)
	}
	v := uint64(3)
	y := field.Pow(f, v, 8)
	if tau := evalMPC(t, c, []uint64{v, y}, 4); tau != 0 {
		t.Error("valid power relation rejected")
	}
	if tau := evalMPC(t, c, []uint64{v, y + 1}, 4); tau == 0 {
		t.Error("invalid power relation accepted")
	}
}

func TestTripleCircuitWithSNIP(t *testing.T) {
	// The Prio-MPC bootstrap: verify client-dealt triples with a SNIP.
	f := field.NewF64()
	const m = 6
	c := TripleCircuit(f, m)
	if c.M() != m {
		t.Fatalf("TripleCircuit has %d mul gates, want %d", c.M(), m)
	}
	sys, err := snip.NewSystem(f, c, snip.Params{Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	good, err := DealTriples(f, m, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if !runSNIP(t, sys, good) {
		t.Error("valid triples rejected")
	}
	bad := append([]uint64(nil), good...)
	bad[2] = f.Add(bad[2], 1) // corrupt c_1
	if runSNIP(t, sys, bad) {
		t.Error("invalid triples accepted")
	}
}

func runSNIP(t *testing.T, sys *snip.System[field.F64, uint64], x []uint64) bool {
	t.Helper()
	f := field.NewF64()
	pf, err := sys.Prove(x, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	xs, err := share.Split(f, rand.Reader, x, 3)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := sys.Split(pf, 3, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := sys.NewChallenge(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := sys.NewEvaluator(ch).VerifyDistributed(xs, ps)
	if err != nil {
		t.Fatal(err)
	}
	return ok
}

func TestMPCBadTriplesCorruptResult(t *testing.T) {
	// With a corrupted triple, an honest input's assertion combination
	// becomes nonzero: this is exactly why Prio-MPC SNIP-checks triples.
	f := field.NewF64()
	c := bitCircuit(4)
	x := []uint64{1, 0, 1, 1}
	triples, err := DealTriples(f, c.M(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	triples[2] = f.Add(triples[2], 1) // break c of triple 0

	const s = 2
	xs, _ := share.Split(f, rand.Reader, x, s)
	ts, _ := share.Split(f, rand.Reader, triples, s)
	rho, _ := field.SampleVec(f, rand.Reader, len(c.Asserts))

	sessions := make([]*Session[field.F64, uint64], s)
	opens := make([]*Open[uint64], s)
	for i := 0; i < s; i++ {
		se, err := NewSession(f, c, s, xs[i], ts[i], i == 0)
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = se
		opens[i], _ = se.Start()
	}
	opened := SumOpen(f, opens)
	tau := f.Zero()
	for i := 0; i < s; i++ {
		if _, done, err := sessions[i].Step(opened); err != nil || !done {
			t.Fatalf("step: done=%v err=%v", done, err)
		}
		tsh, err := sessions[i].TauShare(rho)
		if err != nil {
			t.Fatal(err)
		}
		tau = f.Add(tau, tsh)
	}
	if tau == 0 {
		t.Error("corrupted triple went unnoticed on honest input")
	}
}

func TestSessionProtocolErrors(t *testing.T) {
	f := field.NewF64()
	c := bitCircuit(2)
	x := []uint64{1, 0}
	triples, _ := DealTriples(f, c.M(), rand.Reader)

	if _, err := NewSession(f, c, 2, x[:1], triples, true); err == nil {
		t.Error("NewSession accepted short input")
	}
	if _, err := NewSession(f, c, 2, x, triples[:1], true); err == nil {
		t.Error("NewSession accepted short triples")
	}
	if _, err := NewSession(f, c, 0, x, triples, true); err == nil {
		t.Error("NewSession accepted zero servers")
	}

	se, err := NewSession(f, c, 1, x, triples, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := se.TauShare(nil); err == nil {
		t.Error("TauShare allowed before completion")
	}
	open, done := se.Start()
	if done {
		t.Fatal("circuit with mul gates finished without rounds")
	}
	if _, _, err := se.Step(&Open[uint64]{D: open.D[:0], E: open.E[:0]}); err == nil {
		t.Error("Step accepted mismatched open lengths")
	}
}

func TestMulDepthAffine(t *testing.T) {
	f := field.NewF64()
	b := circuit.NewBuilder(f, 2)
	b.AssertEqual(b.Add(b.Input(0), b.Input(1)), b.Const(5))
	c := b.Build()
	if MulDepth(c) != 0 {
		t.Error("affine circuit has nonzero mul depth")
	}
	if tau := evalMPC(t, c, []uint64{2, 3}, 3); tau != 0 {
		t.Error("valid affine input rejected")
	}
	if tau := evalMPC(t, c, []uint64{2, 4}, 3); tau == 0 {
		t.Error("invalid affine input accepted")
	}
}
