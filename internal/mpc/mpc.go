// Package mpc implements Beaver-triple multi-party multiplication (Appendix
// C.2) and the "Prio-MPC" protocol variant of Section 4.4 / Appendix E, in
// which the servers — rather than the client — evaluate the Valid circuit on
// secret-shared data.
//
// In Prio-MPC the client ships one multiplication triple per multiplication
// gate of Valid, plus a SNIP proving the triples are well formed (c_t =
// a_t·b_t for every t). The servers then walk the circuit together,
// exchanging one opened (d, e) pair per multiplication gate — Θ(M) traffic
// per submission, the linear growth visible in Figure 6 — over a number of
// rounds equal to the circuit's multiplicative depth. Unlike SNIP
// verification, this variant is private only against honest-but-curious
// servers, and it keeps the Valid circuit hidden from clients.
package mpc

import (
	"errors"
	"io"

	"prio/internal/circuit"
	"prio/internal/field"
)

// ErrProtocol reports a malformed message or out-of-order round.
var ErrProtocol = errors.New("mpc: protocol violation")

// TripleCircuit builds the well-formedness circuit for m Beaver triples: the
// input vector is (a_1, b_1, c_1, ..., a_m, b_m, c_m) and each triple must
// satisfy a_t·b_t − c_t = 0. Its SNIP is how Prio-MPC keeps malicious
// clients from dealing bad triples.
func TripleCircuit[Fd field.Field[E], E any](f Fd, m int) *circuit.Circuit[E] {
	b := circuit.NewBuilder(f, 3*m)
	for t := 0; t < m; t++ {
		prod := b.Mul(b.Input(3*t), b.Input(3*t+1))
		b.AssertEqual(prod, b.Input(3*t+2))
	}
	return b.Build()
}

// DealTriples generates m valid multiplication triples in the flat layout
// expected by TripleCircuit.
func DealTriples[Fd field.Field[E], E any](f Fd, m int, rnd io.Reader) ([]E, error) {
	out := make([]E, 3*m)
	for t := 0; t < m; t++ {
		a, err := f.SampleElem(rnd)
		if err != nil {
			return nil, err
		}
		b, err := f.SampleElem(rnd)
		if err != nil {
			return nil, err
		}
		out[3*t] = a
		out[3*t+1] = b
		out[3*t+2] = f.Mul(a, b)
	}
	return out, nil
}

// Open carries the masked openings for one round: D[i] = [u_i] − [a_i] and
// E[i] = [v_i] − [b_i] for each multiplication gate scheduled in the round,
// in deterministic circuit order.
type Open[E any] struct {
	D, E []E
}

// SumOpen combines all servers' Open shares into the opened values; the
// leader runs this and broadcasts the result.
func SumOpen[Fd field.Field[E], E any](f Fd, msgs []*Open[E]) *Open[E] {
	if len(msgs) == 0 {
		return &Open[E]{}
	}
	out := &Open[E]{
		D: append([]E(nil), msgs[0].D...),
		E: append([]E(nil), msgs[0].E...),
	}
	for _, m := range msgs[1:] {
		field.AddVec(f, out.D, m.D)
		field.AddVec(f, out.E, m.E)
	}
	return out
}

// Session is one server's state while cooperatively evaluating a circuit on
// shares. Drive it with Start, then alternate SumOpen (at the leader) and
// Step until done, then read assertion shares with TauShare.
type Session[Fd field.Field[E], E any] struct {
	f           Fd
	c           *circuit.Circuit[E]
	s           int // number of servers
	constServer bool

	wires       []E
	known       []bool
	triples     []E   // flat (a,b,c) shares, indexed by mul-gate ordinal
	xInit       []E   // input share, applied in Start
	pending     []int // gate indices awaiting opened values, in order
	mulIdxCache map[int]int
	done        bool
}

// NewSession starts the evaluation of c over this server's input share using
// this server's shares of the client-dealt triples (flat layout, length
// 3·M). s is the server count; constServer marks the single server that
// includes public constants.
func NewSession[Fd field.Field[E], E any](f Fd, c *circuit.Circuit[E], s int, xShare, triples []E, constServer bool) (*Session[Fd, E], error) {
	if len(xShare) != c.NumInputs || len(triples) != 3*c.M() || s < 1 {
		return nil, ErrProtocol
	}
	return &Session[Fd, E]{
		f:           f,
		c:           c,
		s:           s,
		constServer: constServer,
		wires:       make([]E, len(c.Gates)),
		known:       make([]bool, len(c.Gates)),
		triples:     triples,
		xInit:       xShare,
	}, nil
}

// Rounds returns the number of communication rounds the evaluation needs:
// the multiplicative depth of the circuit (plus zero if there are no
// multiplication gates).
func (se *Session[Fd, E]) Rounds() int { return MulDepth(se.c) }

// MulDepth computes the multiplicative depth of a circuit: the maximum
// number of multiplication gates on any input-to-assert path.
func MulDepth[E any](c *circuit.Circuit[E]) int {
	depth := make([]int, len(c.Gates))
	max := 0
	for i, g := range c.Gates {
		switch g.Op {
		case OpAdd, OpSub:
			depth[i] = maxInt(depth[g.A], depth[g.B])
		case OpMul:
			depth[i] = maxInt(depth[g.A], depth[g.B]) + 1
		case OpMulConst:
			depth[i] = depth[g.A]
		}
		if depth[i] > max {
			max = depth[i]
		}
	}
	return max
}

// Start performs the first local propagation pass and returns the Open
// shares for every multiplication gate whose operands are already known. A
// nil return with done=true means the circuit had no multiplication gates.
func (se *Session[Fd, E]) Start() (*Open[E], bool) {
	for i := 0; i < se.c.NumInputs; i++ {
		se.wires[i] = se.xInit[i]
		se.known[i] = true
	}
	return se.advance()
}

// Step consumes the opened (d,e) values for the previous round's pending
// gates, resolves those multiplications, and returns the next round's Open
// shares. done=true signals that every wire is resolved.
func (se *Session[Fd, E]) Step(opened *Open[E]) (*Open[E], bool, error) {
	if se.done {
		return nil, true, ErrProtocol
	}
	f := se.f
	if len(opened.D) != len(se.pending) || len(opened.E) != len(se.pending) {
		return nil, false, ErrProtocol
	}
	invS := f.Inv(f.FromUint64(uint64(se.s)))
	mulIdx := se.mulIndex()
	for k, gi := range se.pending {
		t := mulIdx[gi]
		a := se.triples[3*t]
		b := se.triples[3*t+1]
		cc := se.triples[3*t+2]
		d, e := opened.D[k], opened.E[k]
		// [uv]_i = de/s + d·b_i + e·a_i + c_i
		v := f.Mul(f.Mul(d, e), invS)
		v = f.Add(v, f.Mul(d, b))
		v = f.Add(v, f.Mul(e, a))
		v = f.Add(v, cc)
		se.wires[gi] = v
		se.known[gi] = true
	}
	se.pending = se.pending[:0]
	open, done := se.advance()
	return open, done, nil
}

// TauShare returns this server's share of Σ ρ_k · assert_k once evaluation
// has finished; the servers publish these and accept iff they sum to zero.
func (se *Session[Fd, E]) TauShare(rho []E) (E, error) {
	f := se.f
	var zero E
	if !se.done || len(rho) != len(se.c.Asserts) {
		return zero, ErrProtocol
	}
	tau := f.Zero()
	for k, a := range se.c.Asserts {
		tau = f.Add(tau, f.Mul(rho[k], se.wires[a]))
	}
	return tau, nil
}

// advance propagates every computable affine gate, then collects the masked
// openings for multiplication gates whose operands just became known.
func (se *Session[Fd, E]) advance() (*Open[E], bool) {
	f := se.f
	c := se.c
	out := &Open[E]{}
	mulIdx := se.mulIndex()
	for i, g := range c.Gates {
		if se.known[i] {
			continue
		}
		switch g.Op {
		case OpInput:
			// handled in Start
		case OpConst:
			if se.constServer {
				se.wires[i] = g.K
			} else {
				se.wires[i] = f.Zero()
			}
			se.known[i] = true
		case OpAdd:
			if se.known[g.A] && se.known[g.B] {
				se.wires[i] = f.Add(se.wires[g.A], se.wires[g.B])
				se.known[i] = true
			}
		case OpSub:
			if se.known[g.A] && se.known[g.B] {
				se.wires[i] = f.Sub(se.wires[g.A], se.wires[g.B])
				se.known[i] = true
			}
		case OpMulConst:
			if se.known[g.A] {
				se.wires[i] = f.Mul(g.K, se.wires[g.A])
				se.known[i] = true
			}
		case OpMul:
			if se.known[g.A] && se.known[g.B] {
				t := mulIdx[i]
				out.D = append(out.D, f.Sub(se.wires[g.A], se.triples[3*t]))
				out.E = append(out.E, f.Sub(se.wires[g.B], se.triples[3*t+1]))
				se.pending = append(se.pending, i)
			}
		}
	}
	if len(se.pending) == 0 {
		se.done = true
		return nil, true
	}
	return out, false
}

// mulIndex maps a multiplication gate's wire index to its ordinal t.
func (se *Session[Fd, E]) mulIndex() map[int]int {
	if se.mulIdxCache == nil {
		se.mulIdxCache = make(map[int]int, len(se.c.MulGates))
		for t, w := range se.c.MulGates {
			se.mulIdxCache[w] = t
		}
	}
	return se.mulIdxCache
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Gate op aliases, so the switch above reads naturally.
const (
	OpInput    = circuit.OpInput
	OpConst    = circuit.OpConst
	OpAdd      = circuit.OpAdd
	OpSub      = circuit.OpSub
	OpMul      = circuit.OpMul
	OpMulConst = circuit.OpMulConst
)
