// Package sealbox provides anonymous public-key authenticated encryption of
// client submissions, standing in for the NaCl "box" primitive the paper's
// prototype uses (Section 6: clients encrypt and sign their messages to
// servers, which obviates client-to-server TLS).
//
// Construction: an ephemeral X25519 key agreement with the recipient's
// static key, HKDF-SHA256 key derivation bound to both public keys, and
// AES-256-GCM. Each box is
//
//	ephemeral_pk (32) ‖ nonce (12) ‖ AES-GCM ciphertext.
//
// Like NaCl's sealed boxes, sender anonymity is inherent: the ephemeral key
// identifies nobody, which is what a private aggregation system wants from
// its upload path.
package sealbox

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"io"
)

// Overhead is the number of bytes Seal adds to a plaintext.
const Overhead = 32 + nonceSize + 16

const nonceSize = 12

// ErrDecrypt reports an undecryptable or tampered box.
var ErrDecrypt = errors.New("sealbox: decryption failed")

// PublicKey identifies a recipient (a Prio server).
type PublicKey struct {
	k *ecdh.PublicKey
}

// PrivateKey opens boxes sealed to the matching PublicKey.
type PrivateKey struct {
	k *ecdh.PrivateKey
}

// GenerateKey creates a fresh X25519 key pair.
func GenerateKey() (*PublicKey, *PrivateKey, error) {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, err
	}
	return &PublicKey{k: priv.PublicKey()}, &PrivateKey{k: priv}, nil
}

// Bytes returns the 32-byte wire encoding of the public key.
func (p *PublicKey) Bytes() []byte { return p.k.Bytes() }

// ParsePublicKey decodes a 32-byte X25519 public key.
func ParsePublicKey(b []byte) (*PublicKey, error) {
	k, err := ecdh.X25519().NewPublicKey(b)
	if err != nil {
		return nil, err
	}
	return &PublicKey{k: k}, nil
}

// Public returns the public half of the key.
func (p *PrivateKey) Public() *PublicKey { return &PublicKey{k: p.k.PublicKey()} }

// Bytes returns the 32-byte encoding of the private scalar, for servers that
// persist their identity across restarts (cmd/prio-server -key-file). Treat
// the output as a secret.
func (p *PrivateKey) Bytes() []byte { return p.k.Bytes() }

// ParsePrivateKey decodes a 32-byte X25519 private key produced by
// PrivateKey.Bytes.
func ParsePrivateKey(b []byte) (*PrivateKey, error) {
	k, err := ecdh.X25519().NewPrivateKey(b)
	if err != nil {
		return nil, err
	}
	return &PrivateKey{k: k}, nil
}

// deriveKey computes the AEAD key for (shared secret, epk, rpk): HKDF-SHA256
// (RFC 5869) with the concatenated public keys as salt, inlined over
// crypto/hmac so the module builds on every toolchain go.mod admits.
func deriveKey(shared, epk, rpk []byte) ([]byte, error) {
	salt := make([]byte, 0, 64)
	salt = append(salt, epk...)
	salt = append(salt, rpk...)
	// Extract: PRK = HMAC(salt, IKM).
	ext := hmac.New(sha256.New, salt)
	ext.Write(shared)
	prk := ext.Sum(nil)
	// Expand: one block suffices for a 32-byte output (SHA-256 width).
	exp := hmac.New(sha256.New, prk)
	exp.Write([]byte("prio/sealbox/v1"))
	exp.Write([]byte{1})
	return exp.Sum(nil), nil
}

// Seal encrypts plaintext to the recipient, prepending the ephemeral public
// key and nonce.
func Seal(recipient *PublicKey, plaintext []byte) ([]byte, error) {
	eph, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	shared, err := eph.ECDH(recipient.k)
	if err != nil {
		return nil, err
	}
	epk := eph.PublicKey().Bytes()
	key, err := deriveKey(shared, epk, recipient.k.Bytes())
	if err != nil {
		return nil, err
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(plaintext)+Overhead)
	out = append(out, epk...)
	nonce := make([]byte, nonceSize)
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, err
	}
	out = append(out, nonce...)
	return aead.Seal(out, nonce, plaintext, epk), nil
}

// Open decrypts a box produced by Seal for this private key.
func Open(priv *PrivateKey, box []byte) ([]byte, error) {
	if len(box) < Overhead {
		return nil, ErrDecrypt
	}
	epkBytes := box[:32]
	nonce := box[32 : 32+nonceSize]
	ct := box[32+nonceSize:]
	epk, err := ecdh.X25519().NewPublicKey(epkBytes)
	if err != nil {
		return nil, ErrDecrypt
	}
	shared, err := priv.k.ECDH(epk)
	if err != nil {
		return nil, ErrDecrypt
	}
	key, err := deriveKey(shared, epkBytes, priv.k.PublicKey().Bytes())
	if err != nil {
		return nil, ErrDecrypt
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, ErrDecrypt
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, ErrDecrypt
	}
	pt, err := aead.Open(nil, nonce, ct, epkBytes)
	if err != nil {
		return nil, ErrDecrypt
	}
	return pt, nil
}
