package sealbox

import (
	"bytes"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	pub, priv, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{0, 1, 16, 1000, 100000} {
		pt := bytes.Repeat([]byte{0xAB}, size)
		box, err := Seal(pub, pt)
		if err != nil {
			t.Fatal(err)
		}
		if len(box) != size+Overhead {
			t.Errorf("box size = %d, want %d", len(box), size+Overhead)
		}
		got, err := Open(priv, box)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		if !bytes.Equal(got, pt) {
			t.Error("plaintext mismatch")
		}
	}
}

func TestTamperDetection(t *testing.T) {
	pub, priv, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	box, err := Seal(pub, []byte("secret submission"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(box); i += 7 {
		mutated := append([]byte(nil), box...)
		mutated[i] ^= 0x01
		if _, err := Open(priv, mutated); err == nil {
			t.Errorf("tampering at byte %d went undetected", i)
		}
	}
}

func TestWrongRecipient(t *testing.T) {
	pubA, _, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	_, privB, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	box, err := Seal(pubA, []byte("for A only"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(privB, box); err == nil {
		t.Error("wrong recipient opened the box")
	}
}

func TestNondeterministic(t *testing.T) {
	pub, _, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	a, _ := Seal(pub, []byte("x"))
	b, _ := Seal(pub, []byte("x"))
	if bytes.Equal(a, b) {
		t.Error("two seals of the same message are identical")
	}
}

func TestShortBoxRejected(t *testing.T) {
	_, priv, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(priv, make([]byte, Overhead-1)); err == nil {
		t.Error("short box accepted")
	}
}

func TestPrivateKeyEncoding(t *testing.T) {
	pub, priv, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	b := priv.Bytes()
	if len(b) != 32 {
		t.Fatalf("private key length %d", len(b))
	}
	back, err := ParsePrivateKey(b)
	if err != nil {
		t.Fatal(err)
	}
	// A restarted server with the persisted key must open boxes sealed to
	// the original public key (the cluster failover scenario).
	box, err := Seal(pub, []byte("sealed before restart"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(back, box); err != nil {
		t.Fatalf("restored key failed to open: %v", err)
	}
	if _, err := ParsePrivateKey(b[:31]); err == nil {
		t.Error("short private key accepted")
	}
}

func TestPublicKeyEncoding(t *testing.T) {
	pub, _, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	b := pub.Bytes()
	if len(b) != 32 {
		t.Fatalf("public key length %d", len(b))
	}
	back, err := ParsePublicKey(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Bytes(), b) {
		t.Error("public key round trip failed")
	}
	if _, err := ParsePublicKey(b[:31]); err == nil {
		t.Error("short public key accepted")
	}
}
