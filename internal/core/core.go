package core

import (
	"errors"
	"fmt"

	"prio/internal/afe"
	"prio/internal/field"
	"prio/internal/mpc"
	"prio/internal/snip"
)

// Mode selects the verification strategy.
type Mode uint8

// The three pipeline modes evaluated in the paper.
const (
	// ModeNoRobust is the "No robustness" baseline: private sums with no
	// client validation whatsoever.
	ModeNoRobust Mode = iota
	// ModeSNIP is full Prio: client-generated secret-shared proofs.
	ModeSNIP
	// ModeMPC is Prio-MPC: the servers evaluate Valid themselves with
	// client-dealt, SNIP-certified Beaver triples.
	ModeMPC
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeNoRobust:
		return "no-robust"
	case ModeSNIP:
		return "prio"
	case ModeMPC:
		return "prio-mpc"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Config describes one Prio deployment. All participants must share it.
type Config[Fd field.Field[E], E any] struct {
	// Field is the arithmetic field.
	Field Fd
	// Scheme is the AFE being aggregated.
	Scheme afe.Scheme[E]
	// Servers is the server count s (≥ 1; the paper deploys 5).
	Servers int
	// Mode selects SNIP, MPC, or no verification.
	Mode Mode
	// SnipReps is the soundness repetition count (see snip.Params).
	SnipReps int
	// Seal encrypts each share bundle to its server with a sealed box, as
	// the paper's clients do. Disable only for microbenchmarks.
	Seal bool
	// ChallengeEvery re-samples the shared verification challenge after
	// this many submissions (the Q of Appendix I; default 1024).
	ChallengeEvery int
	// DisableBatchVerify forces the per-submission MsgRound2 flow instead of
	// the batched random-linear-combination check (MsgRound2Batch). The two
	// paths accept identical submission sets; this knob exists for A/B
	// benchmarking and as an escape hatch.
	DisableBatchVerify bool
}

// Protocol holds the precomputed, immutable derivations of a Config: the
// SNIP systems and the flat share layout. Build one per deployment and share
// it among clients and servers in the same process.
type Protocol[Fd field.Field[E], E any] struct {
	Cfg Config[Fd, E]

	// ValidSys proves Valid(x) directly (ModeSNIP).
	ValidSys *snip.System[Fd, E]
	// TripleSys proves the client's Beaver triples well-formed (ModeMPC).
	TripleSys *snip.System[Fd, E]

	// Layout of the flat per-server share vector.
	l       int // AFE encoding length K
	kPrime  int // aggregated prefix
	m       int // multiplication gates in Valid
	flatLen int // total elements shared per server
}

// NewProtocol validates the configuration and precomputes the SNIP systems.
func NewProtocol[Fd field.Field[E], E any](cfg Config[Fd, E]) (*Protocol[Fd, E], error) {
	if cfg.Servers < 1 {
		return nil, errors.New("core: need at least one server")
	}
	if cfg.Scheme == nil {
		return nil, errors.New("core: missing scheme")
	}
	if cfg.ChallengeEvery <= 0 {
		cfg.ChallengeEvery = 1024
	}
	p := &Protocol[Fd, E]{Cfg: cfg}
	p.l = cfg.Scheme.K()
	p.kPrime = cfg.Scheme.KPrime()
	p.m = cfg.Scheme.Circuit().M()
	switch cfg.Mode {
	case ModeNoRobust:
		p.flatLen = p.l
	case ModeSNIP:
		sys, err := snip.NewSystem(cfg.Field, cfg.Scheme.Circuit(), snip.Params{Reps: cfg.SnipReps})
		if err != nil {
			return nil, err
		}
		p.ValidSys = sys
		p.flatLen = p.l + sys.ProofLen()
	case ModeMPC:
		tc := mpc.TripleCircuit(cfg.Field, p.m)
		sys, err := snip.NewSystem(cfg.Field, tc, snip.Params{Reps: cfg.SnipReps})
		if err != nil {
			return nil, err
		}
		p.TripleSys = sys
		p.flatLen = p.l + 3*p.m + sys.ProofLen()
	default:
		return nil, fmt.Errorf("core: unknown mode %v", cfg.Mode)
	}
	return p, nil
}

// FlatLen returns the number of field elements in each server's share of one
// submission (before PRG compression).
func (p *Protocol[Fd, E]) FlatLen() int { return p.flatLen }

// splitFlat cuts a server's flat share vector into its parts:
// (x, triples, proofFlat) according to the mode's layout.
func (p *Protocol[Fd, E]) splitFlat(flat []E) (x, triples, proofFlat []E, err error) {
	if len(flat) != p.flatLen {
		return nil, nil, nil, fmt.Errorf("core: flat share has %d elements, want %d", len(flat), p.flatLen)
	}
	x = flat[:p.l]
	switch p.Cfg.Mode {
	case ModeNoRobust:
	case ModeSNIP:
		proofFlat = flat[p.l:]
	case ModeMPC:
		triples = flat[p.l : p.l+3*p.m]
		proofFlat = flat[p.l+3*p.m:]
	}
	return x, triples, proofFlat, nil
}

// snipSys returns the SNIP system active in this mode (nil for ModeNoRobust).
func (p *Protocol[Fd, E]) snipSys() *snip.System[Fd, E] {
	if p.Cfg.Mode == ModeMPC {
		return p.TripleSys
	}
	return p.ValidSys
}

// challenge bundles the verifier randomness shared by the servers for a
// window of submissions: the SNIP challenge plus, in MPC mode, the random
// coefficients for the Valid circuit's assertion combination.
type challenge[E any] struct {
	sn       *snip.Challenge[E]
	validRho []E
}

// marshalChallenge serializes a challenge for MsgSetChallenge.
func (p *Protocol[Fd, E]) marshalChallenge(ch *challenge[E]) []byte {
	f := p.Cfg.Field
	w := &wbuf{}
	if sys := p.snipSys(); sys != nil {
		wvec(w, f, ch.sn.R)
		wvec(w, f, ch.sn.Rho)
	}
	if p.Cfg.Mode == ModeMPC {
		wvec(w, f, ch.validRho)
	}
	return w.b
}

// unmarshalChallenge parses a challenge.
func (p *Protocol[Fd, E]) unmarshalChallenge(b []byte) (*challenge[E], error) {
	f := p.Cfg.Field
	r := &rbuf{b: b}
	ch := &challenge[E]{}
	if sys := p.snipSys(); sys != nil {
		reps := sys.Reps
		if sys.M == 0 {
			reps = 0
		}
		ch.sn = &snip.Challenge[E]{
			R:   rvec(r, f, reps),
			Rho: rvec(r, f, len(sys.C.Asserts)),
		}
	}
	if p.Cfg.Mode == ModeMPC {
		ch.validRho = rvec(r, f, len(p.Cfg.Scheme.Circuit().Asserts))
	}
	if !r.done() {
		return nil, errTruncated
	}
	return ch, nil
}
