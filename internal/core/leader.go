package core

import (
	"crypto/rand"
	"errors"
	"fmt"
	"sync"

	"prio/internal/field"
	"prio/internal/mpc"
	"prio/internal/prg"
	"prio/internal/sealbox"
	"prio/internal/snip"
	"prio/internal/transport"
)

// Leader drives the verification of client submissions across the server
// set (Appendix I: "we assign a single Prio server to be the leader that
// coordinates the checking of each client data submission"). The leader is
// itself one of the servers; in processing a batch it transmits roughly s
// times more bytes than a non-leader, which is why deployments rotate
// leadership across servers for load balance (Figure 5).
//
// A Leader tolerates concurrent ProcessBatch calls: lmu serializes only
// challenge rotation and batch-sequence allocation, while the verification
// rounds themselves run lock-free, so independent batches overlap on the
// wire and on the servers' cores. One caveat bounds the concurrency: the
// servers keep a bounded window of live challenges per session (three, one
// of which the prefetcher occupies), so a session must not have more than
// ChallengeEvery submissions in flight at once (two rotations would evict an
// in-flight batch's challenge and fail it).
// Pipeline stays far below this bound by construction — each shard drives
// its own session serially; callers wanting more overlap should open more
// sessions (NewLeaderSession) rather than hammer one.
type Leader[Fd field.Field[E], E any] struct {
	*Server[Fd, E]
	peers []transport.Peer // indexed by server; peers[Index()] is a loopback
	sess  int              // session sub-namespace (0 for NewLeader)

	lmu       sync.Mutex
	challID   uint32
	haveChall bool
	batchSeq  uint64
	sinceCh   int
	next      *challPrefetch // pre-generated, pre-broadcast next challenge

	// m carries the pipeline's stage metrics; nil (a Leader built outside a
	// Pipeline) disables them.
	m *pipeMetrics
}

// challPrefetch is a challenge being generated and broadcast off-path, ahead
// of the rotation that will adopt it.
type challPrefetch struct {
	id   uint32
	done chan struct{}
	err  error
}

// NewLeader wraps a server with coordination duties. peers must hold one
// Peer per server in index order; the leader's own slot should be a
// transport.LoopbackPeer (NewLocalCluster arranges this).
//
// Any server may lead, and several may lead concurrently for different
// submissions — the load-balancing arrangement behind Figure 5 ("each
// server is a leader for a smaller share of incoming submissions").
// Challenge and batch identifiers are namespaced by the leader's index so
// concurrent leaders never collide in the servers' session tables.
func NewLeader[Fd field.Field[E], E any](srv *Server[Fd, E], peers []transport.Peer) (*Leader[Fd, E], error) {
	return NewLeaderSession(srv, peers, 0)
}

// NewLeaderSession wraps a server with coordination duties under session
// sub-namespace sess ∈ [0, 256). Sessions extend the per-leader ID
// namespacing one level down: challenge IDs carry (server index, session)
// in their top 16 bits and batch IDs in their top 32, so many sessions of
// the same leader server can verify batches concurrently without colliding
// in the servers' challenge and batch tables. This is the mechanism behind
// Pipeline's shards (and the Appendix-I observation that verification of
// distinct submissions is embarrassingly parallel).
func NewLeaderSession[Fd field.Field[E], E any](srv *Server[Fd, E], peers []transport.Peer, sess int) (*Leader[Fd, E], error) {
	if len(peers) != srv.pro.Cfg.Servers {
		return nil, fmt.Errorf("core: leader needs %d peers, got %d", srv.pro.Cfg.Servers, len(peers))
	}
	if sess < 0 || sess > 0xFF {
		return nil, fmt.Errorf("core: leader session %d out of range [0, 256)", sess)
	}
	return &Leader[Fd, E]{
		Server:   srv,
		peers:    peers,
		sess:     sess,
		challID:  uint32(srv.idx)<<24 | uint32(sess)<<16,
		batchSeq: uint64(srv.idx)<<48 | uint64(sess)<<32,
	}, nil
}

// newChallenge samples fresh verification randomness for the deployment.
func (p *Protocol[Fd, E]) newChallenge() (*challenge[E], error) {
	ch := &challenge[E]{}
	if sys := p.snipSys(); sys != nil {
		sn, err := sys.NewChallenge(rand.Reader)
		if err != nil {
			return nil, err
		}
		ch.sn = sn
	}
	if p.Cfg.Mode == ModeMPC {
		rho, err := field.SampleVec(p.Cfg.Field, rand.Reader, len(p.Cfg.Scheme.Circuit().Asserts))
		if err != nil {
			return nil, err
		}
		ch.validRho = rho
	}
	return ch, nil
}

// broadcast issues the same call to every server in parallel and collects
// the responses in server order.
func (l *Leader[Fd, E]) broadcast(msgType byte, payloads [][]byte) ([][]byte, error) {
	s := len(l.peers)
	resps := make([][]byte, s)
	errs := make([]error, s)
	var wg sync.WaitGroup
	for i := 0; i < s; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = l.peers[i].Call(msgType, payloads[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: server %d: %w", i, err)
		}
	}
	return resps, nil
}

// same builds an identical payload list for broadcast.
func (l *Leader[Fd, E]) same(payload []byte) [][]byte {
	out := make([][]byte, len(l.peers))
	for i := range out {
		out[i] = payload
	}
	return out
}

// ensureChallenge rotates the shared challenge when the Appendix-I window Q
// is exhausted (or none exists yet). Callers must hold lmu; the counter
// increments within the session's 16-bit slot so rotation never bleeds into
// a neighboring session namespace.
//
// Rotation prefers a prefetched challenge: right after each rotation the
// leader starts generating and broadcasting the *next* challenge on a
// background goroutine, so by the time the window is exhausted again the
// servers already hold it and rotation reduces to a counter bump — no
// challenge sampling or MsgSetChallenge round-trip stalls the session (or,
// under the pipeline, the shard) at the window boundary. The servers keep a
// window of three live challenges per session namespace to make the early
// broadcast safe for batches still in flight on the previous challenge.
func (l *Leader[Fd, E]) ensureChallenge(upcoming int) error {
	if l.pro.Cfg.Mode == ModeNoRobust {
		return nil
	}
	if l.haveChall && l.sinceCh+upcoming <= l.pro.Cfg.ChallengeEvery {
		return nil
	}
	if pf := l.next; pf != nil {
		l.next = nil
		<-pf.done // almost always already closed: the prefetch started a full window ago
		if pf.err == nil {
			l.challID = pf.id
			l.haveChall = true
			l.sinceCh = 0
			l.prefetchNext()
			return nil
		}
		// The prefetch failed (e.g. a peer hiccup); fall through and rotate
		// synchronously under the same ID so the counter stays contiguous.
	}
	nextID := l.challID&0xFFFF0000 | (l.challID+1)&0xFFFF
	if err := l.installChallenge(nextID); err != nil {
		return err
	}
	l.challID = nextID
	l.haveChall = true
	l.sinceCh = 0
	l.prefetchNext()
	return nil
}

// installChallenge samples fresh verification randomness and broadcasts it
// to every server under the given challenge ID.
func (l *Leader[Fd, E]) installChallenge(id uint32) error {
	ch, err := l.pro.newChallenge()
	if err != nil {
		return err
	}
	w := &wbuf{}
	w.u32(id)
	w.raw(l.pro.marshalChallenge(ch))
	_, err = l.broadcast(MsgSetChallenge, l.same(w.b))
	return err
}

// prefetchNext starts generating and broadcasting the next challenge in the
// background. Callers must hold lmu. At most one prefetch is outstanding per
// session, and its result is only adopted under lmu, so the session's
// challenge counter stays strictly sequential.
func (l *Leader[Fd, E]) prefetchNext() {
	pf := &challPrefetch{
		id:   l.challID&0xFFFF0000 | (l.challID+1)&0xFFFF,
		done: make(chan struct{}),
	}
	l.next = pf
	go func() {
		pf.err = l.installChallenge(pf.id)
		close(pf.done)
	}()
}

// ProcessBatch verifies and aggregates a batch of submissions, returning the
// per-submission accept decisions.
//
// ProcessBatch may be called concurrently: the leader lock covers only
// challenge rotation and batch-ID allocation, after which each batch runs
// its verification rounds independently. Servers key their per-batch state
// by the allocated batch ID, so overlapping batches never interfere.
func (l *Leader[Fd, E]) ProcessBatch(subs []*Submission) ([]bool, error) {
	p := l.pro
	f := p.Cfg.Field
	count := len(subs)
	if count == 0 {
		return nil, nil
	}
	for _, sub := range subs {
		if len(sub.Bundles) != p.Cfg.Servers {
			return nil, errors.New("core: submission bundle count mismatch")
		}
	}

	// Critical section: rotate the challenge if the window is exhausted and
	// allocate this batch's identifiers. The three network rounds below run
	// outside the lock so in-flight batches pipeline.
	l.lmu.Lock()
	if err := l.ensureChallenge(count); err != nil {
		l.lmu.Unlock()
		return nil, err
	}
	l.sinceCh += count
	// Like the challenge counter, the batch counter increments within its
	// session's 32-bit slot so it can never wrap into a neighboring
	// session's namespace.
	l.batchSeq = l.batchSeq&^uint64(0xFFFFFFFF) | (l.batchSeq+1)&0xFFFFFFFF
	batchID := l.batchSeq
	challID := l.challID
	l.lmu.Unlock()

	// Stamp the batch with the collection window open right now (0 when
	// windowing is off). One stamp per batch, leader-assigned, so every
	// server files these submissions under the same window regardless of
	// clock skew; it rides in Round1 (for no-robust accumulation) and in
	// the commit finish (where the robust modes accumulate).
	wid := l.currentWindow()

	// In the robust modes, Round1 seeds per-batch state on every server
	// that completes it, and only MsgFinish releases that state. If the
	// batch fails in any later round — or Round1 itself fails on just some
	// servers — send a best-effort all-reject finish so a failed batch (a
	// routine, counted outcome under the pipeline) does not leak xShares
	// and verifier sessions on the servers that got through Round1.
	finished := p.Cfg.Mode == ModeNoRobust // no-robust servers keep no batch state
	defer func() {
		if finished {
			return
		}
		fw := &wbuf{}
		fw.u64(batchID)
		fw.blob(make([]byte, (count+7)/8))
		_, _ = l.broadcast(MsgFinish, l.same(fw.b)) // best effort
	}()

	// Round 1: relay each server its bundles. Requests are built in pooled
	// arena buffers sized exactly up front, so the steady state allocates
	// nothing; broadcast waits for every peer before returning (even on
	// error), which is what makes freeing the arenas afterwards safe.
	// Responses are never pooled — a Coalescer hands out subslices of one
	// envelope, so their lifetimes are not ours to manage.
	reqs := make([][]byte, p.Cfg.Servers)
	arenas := make([]*transport.Buf, p.Cfg.Servers)
	var w wbuf
	for i := 0; i < p.Cfg.Servers; i++ {
		hint := 4 + 8 + 4 + 8
		for _, sub := range subs {
			hint += 4 + len(sub.Bundles[i])
		}
		w.grab(hint)
		w.u32(challID)
		w.u64(batchID)
		w.u32(uint32(count))
		for _, sub := range subs {
			w.blob(sub.Bundles[i])
		}
		w.u64(wid)
		reqs[i], arenas[i] = w.seal()
	}
	t0 := l.m.start()
	r1resps, err := l.broadcast(MsgRound1, reqs)
	for _, a := range arenas {
		a.Free()
	}
	if err != nil {
		return nil, err
	}
	l.m.observeRound1(t0)

	if p.Cfg.Mode == ModeNoRobust {
		accepts := make([]bool, count)
		for i := range accepts {
			accepts[i] = true
		}
		return accepts, nil
	}

	sys := p.snipSys()
	reps := sys.Reps
	if sys.M == 0 {
		reps = 0
	}

	// Parse Round1 responses; sum the Beaver openings per submission.
	opened := make([]*snip.Round1[E], count)
	var mpcOpened []*mpc.Open[E]
	var mpcDone bool
	if p.Cfg.Mode == ModeMPC {
		mpcOpened = make([]*mpc.Open[E], count)
	}
	for i, resp := range r1resps {
		r := &rbuf{b: resp}
		for j := 0; j < count; j++ {
			r1 := &snip.Round1[E]{D: rvec(r, f, reps), E: rvec(r, f, reps)}
			if r.err != nil {
				return nil, fmt.Errorf("core: bad Round1 response from server %d", i)
			}
			if opened[j] == nil {
				opened[j] = r1
			} else {
				field.AddVec(f, opened[j].D, r1.D)
				field.AddVec(f, opened[j].E, r1.E)
			}
			if p.Cfg.Mode == ModeMPC {
				n := int(r.u32())
				op := &mpc.Open[E]{D: rvec(r, f, n), E: rvec(r, f, n)}
				if r.err != nil {
					return nil, fmt.Errorf("core: bad MPC open from server %d", i)
				}
				if mpcOpened[j] == nil {
					mpcOpened[j] = op
				} else {
					field.AddVec(f, mpcOpened[j].D, op.D)
					field.AddVec(f, mpcOpened[j].E, op.E)
				}
				mpcDone = len(op.D) == 0
			}
		}
		if !r.done() {
			return nil, fmt.Errorf("core: trailing bytes in Round1 response from server %d", i)
		}
	}

	// The leader needs its own challenge state to sum and decide shares.
	l.Server.mu.Lock()
	chSt := l.Server.challenges[challID]
	l.Server.mu.Unlock()
	if chSt == nil {
		return nil, errors.New("core: leader lost its own challenge state")
	}

	// Round 2: establish per-submission accept verdicts for the SNIP check,
	// either through the amortized batch probes (default) or the legacy
	// per-submission exchange.
	var snipOK []bool
	t0 = l.m.start()
	if p.Cfg.DisableBatchVerify {
		var w wbuf
		w.grab(4 + 8 + count*(reps+1)*16)
		w.u32(challID)
		w.u64(batchID)
		for j := 0; j < count; j++ {
			wvec(&w, f, opened[j].D)
			wvec(&w, f, opened[j].E)
		}
		req, arena := w.seal()
		r2resps, err := l.broadcast(MsgRound2, l.same(req))
		arena.Free()
		if err != nil {
			return nil, err
		}
		r2 := make([][]*snip.Round2[E], count) // [submission][server]
		for j := range r2 {
			r2[j] = make([]*snip.Round2[E], p.Cfg.Servers)
		}
		for i, resp := range r2resps {
			r := &rbuf{b: resp}
			for j := 0; j < count; j++ {
				sig := rvec(r, f, reps)
				tau := rvec(r, f, 1)
				if r.err != nil {
					return nil, fmt.Errorf("core: bad Round2 response from server %d", i)
				}
				r2[j][i] = &snip.Round2[E]{Sigma: sig, Tau: tau[0]}
			}
			if !r.done() {
				return nil, fmt.Errorf("core: trailing bytes in Round2 response from server %d", i)
			}
		}
		snipOK = make([]bool, count)
		for j := 0; j < count; j++ {
			snipOK[j] = chSt.ev.Decide(r2[j])
		}
	} else {
		var err error
		if snipOK, err = l.batchVerify(chSt, challID, batchID, count, reps, opened); err != nil {
			return nil, err
		}
	}
	l.m.observeRound2(t0)

	// MPC rounds: iterate until every session reports its Valid τ share.
	validTau := make([]E, count)
	if p.Cfg.Mode == ModeMPC {
		for j := range validTau {
			validTau[j] = f.Zero()
		}
		for round := 0; !mpcDone; round++ {
			if round > 64 {
				return nil, errors.New("core: MPC did not converge")
			}
			var w wbuf
			w.grab(4 + 8 + count*4)
			w.u32(challID)
			w.u64(batchID)
			for j := 0; j < count; j++ {
				w.u32(uint32(len(mpcOpened[j].D)))
				wvec(&w, f, mpcOpened[j].D)
				wvec(&w, f, mpcOpened[j].E)
			}
			req, arena := w.seal()
			resps, err := l.broadcast(MsgMPCRound, l.same(req))
			arena.Free()
			if err != nil {
				return nil, err
			}
			next := make([]*mpc.Open[E], count)
			allDone := true
			for i, resp := range resps {
				r := &rbuf{b: resp}
				for j := 0; j < count; j++ {
					if done := r.u8(); done == 1 {
						tau := rvec(r, f, 1)
						if r.err != nil {
							return nil, fmt.Errorf("core: bad MPC tau from server %d", i)
						}
						validTau[j] = f.Add(validTau[j], tau[0])
						continue
					}
					allDone = false
					n := int(r.u32())
					op := &mpc.Open[E]{D: rvec(r, f, n), E: rvec(r, f, n)}
					if r.err != nil {
						return nil, fmt.Errorf("core: bad MPC open from server %d", i)
					}
					if next[j] == nil {
						next[j] = op
					} else {
						field.AddVec(f, next[j].D, op.D)
						field.AddVec(f, next[j].E, op.E)
					}
				}
				if !r.done() {
					return nil, fmt.Errorf("core: trailing bytes in MPC response from server %d", i)
				}
			}
			mpcOpened = next
			mpcDone = allDone
		}
	}

	// Decide and broadcast the accept bitmap.
	accepts := make([]bool, count)
	bitmap := make([]byte, (count+7)/8)
	for j := 0; j < count; j++ {
		ok := snipOK[j]
		if p.Cfg.Mode == ModeMPC {
			ok = ok && f.IsZero(validTau[j])
		}
		accepts[j] = ok
		if ok {
			bitmap[j/8] |= 1 << uint(j%8)
		}
	}
	var fw wbuf
	fw.grab(8 + 4 + len(bitmap) + 8)
	fw.u64(batchID)
	fw.blob(bitmap)
	fw.u64(wid)
	req, arena := fw.seal()
	finished = true
	t0 = l.m.start()
	_, err = l.broadcast(MsgFinish, l.same(req))
	arena.Free()
	if err != nil {
		return nil, err
	}
	l.m.observeFinish(t0)
	return accepts, nil
}

// batchVerify drives the amortized SNIP check: one MsgRound2Batch probe over
// the full batch (shipping the opened masks along), then — only if the
// combined check fails — a bisection over subranges, each probe under a
// fresh crypto/rand-derived λ seed. Singleton probes are exactly the
// per-submission test, so the returned verdicts match the legacy path's;
// interior probes err on the side of accepting a range only when its
// combined share sums to zero, which a range containing an invalid
// submission survives with probability ≈ 2/|F| per probe.
//
// The worst case (every submission invalid) costs 2·count−1 probes; the
// common all-honest case costs exactly one.
func (l *Leader[Fd, E]) batchVerify(chSt *challState[Fd, E], challID uint32, batchID uint64, count, reps int, opened []*snip.Round1[E]) ([]bool, error) {
	p := l.pro
	f := p.Cfg.Field
	ok := make([]bool, count)
	type span struct{ lo, hi int }
	stack := []span{{0, count}}
	first := true
	probes := 0
	defer func() { l.m.countBisect(probes) }()
	for len(stack) > 0 {
		sp := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		var seed [prg.SeedSize]byte
		if _, err := rand.Read(seed[:]); err != nil {
			return nil, err
		}
		var w wbuf
		hint := 4 + 8 + 1 + 4 + len(seed) + 4 + 4
		if first {
			hint += count * (reps + 1) * 16
		}
		w.grab(hint)
		w.u32(challID)
		w.u64(batchID)
		if first {
			w.u8(1)
			for j := 0; j < count; j++ {
				wvec(&w, f, opened[j].D)
				wvec(&w, f, opened[j].E)
			}
		} else {
			w.u8(0)
		}
		w.blob(seed[:])
		w.u32(uint32(sp.lo))
		w.u32(uint32(sp.hi))
		req, arena := w.seal()
		resps, err := l.broadcast(MsgRound2Batch, l.same(req))
		arena.Free()
		if err != nil {
			return nil, err
		}
		first = false
		probes++
		r2 := make([]*snip.Round2[E], len(resps))
		for i, resp := range resps {
			r := &rbuf{b: resp}
			sig := rvec(r, f, reps)
			tau := rvec(r, f, 1)
			if r.err != nil || !r.done() {
				return nil, fmt.Errorf("core: bad Round2Batch response from server %d", i)
			}
			r2[i] = &snip.Round2[E]{Sigma: sig, Tau: tau[0]}
		}
		switch {
		case chSt.ev.Decide(r2):
			for j := sp.lo; j < sp.hi; j++ {
				ok[j] = true
			}
		case sp.hi-sp.lo == 1:
			// Singleton under nonzero λ: definitively invalid.
		default:
			mid := (sp.lo + sp.hi) / 2
			stack = append(stack, span{mid, sp.hi}, span{sp.lo, mid})
		}
	}
	return ok, nil
}

// Aggregate fetches every server's accumulator, checks that they agree on
// the accepted count, and returns the summed aggregate (the input to the
// AFE's Decode). It takes no leader lock: callers who need a quiescent
// snapshot (batches neither in flight nor queued) must arrange that
// themselves, as Pipeline.Aggregate does.
func (l *Leader[Fd, E]) Aggregate() ([]E, uint64, error) {
	p := l.pro
	f := p.Cfg.Field
	resps, err := l.broadcast(MsgAggregate, l.same(nil))
	if err != nil {
		return nil, 0, err
	}
	var agg []E
	var count uint64
	for i, resp := range resps {
		r := &rbuf{b: resp}
		n := r.u64()
		vec := rvec(r, f, p.kPrime)
		if !r.done() {
			return nil, 0, fmt.Errorf("core: bad aggregate from server %d", i)
		}
		if i == 0 {
			count = n
			agg = vec
			continue
		}
		if n != count {
			return nil, 0, fmt.Errorf("core: server %d accepted %d submissions, server 0 accepted %d", i, n, count)
		}
		field.AddVec(f, agg, vec)
	}
	return agg, count, nil
}

// Reset clears all servers' accumulators and sessions (benchmark runs).
// Concurrent in-flight batches will fail their next round after a reset;
// quiesce first.
func (l *Leader[Fd, E]) Reset() error {
	_, err := l.broadcast(MsgReset, l.same(nil))
	return err
}

// PeerStats exposes the per-server transport counters (Figure 6).
func (l *Leader[Fd, E]) PeerStats(i int) transport.Stats { return l.peers[i].Stats().Snapshot() }

// Cluster is an in-process deployment: s servers wired to a leader over
// byte-counting in-memory transports. It is the configuration used by the
// examples, the integration tests, and the throughput benchmarks.
type Cluster[Fd field.Field[E], E any] struct {
	Leader  *Leader[Fd, E]
	Servers []*Server[Fd, E]
}

// NewLocalCluster builds the in-process deployment for pro.
func NewLocalCluster[Fd field.Field[E], E any](pro *Protocol[Fd, E]) (*Cluster[Fd, E], error) {
	s := pro.Cfg.Servers
	servers := make([]*Server[Fd, E], s)
	peers := make([]transport.Peer, s)
	for i := 0; i < s; i++ {
		srv, err := NewServer(pro, i, nil)
		if err != nil {
			return nil, err
		}
		servers[i] = srv
		if i == 0 {
			peers[i] = &transport.LoopbackPeer{Handler: srv.Handle}
		} else {
			peers[i] = transport.NewMemPeer(srv.Handle)
		}
	}
	leader, err := NewLeader(servers[0], peers)
	if err != nil {
		return nil, err
	}
	return &Cluster[Fd, E]{Leader: leader, Servers: servers}, nil
}

// PublicKeys returns the servers' sealbox keys in index order, as clients
// need them.
func (c *Cluster[Fd, E]) PublicKeys() []*sealbox.PublicKey {
	out := make([]*sealbox.PublicKey, len(c.Servers))
	for i, s := range c.Servers {
		out[i] = s.PublicKey()
	}
	return out
}
