package core

import (
	"crypto/rand"
	"testing"

	"prio/internal/afe"
	"prio/internal/dp"
	"prio/internal/field"
	"prio/internal/prg"
	"prio/internal/sealbox"
)

// Fault-injection tests: malformed messages, protocol-order violations, and
// byzantine bundles must produce errors (or rejections), never panics or
// silent corruption.

func TestServerRejectsMalformedMessages(t *testing.T) {
	pro, cl, _, _ := newSumDeployment(t, ModeSNIP, 2, false)
	_ = pro
	srv := cl.Servers[1]

	cases := []struct {
		name    string
		msgType byte
		payload []byte
	}{
		{"unknown type", 99, nil},
		{"truncated challenge", MsgSetChallenge, []byte{1, 2}},
		{"truncated round1", MsgRound1, []byte{0}},
		{"round1 huge count", MsgRound1, func() []byte {
			w := &wbuf{}
			w.u32(1)
			w.u64(1)
			w.u32(1 << 30)
			return w.b
		}()},
		{"round2 unknown batch", MsgRound2, func() []byte {
			w := &wbuf{}
			w.u32(1)
			w.u64(999)
			return w.b
		}()},
		{"finish unknown batch", MsgFinish, func() []byte {
			w := &wbuf{}
			w.u64(12345)
			w.blob([]byte{0xFF})
			return w.b
		}()},
		{"mpc round in snip mode", MsgMPCRound, func() []byte {
			w := &wbuf{}
			w.u32(1)
			w.u64(1)
			return w.b
		}()},
	}
	for _, c := range cases {
		if _, err := srv.Handle(c.msgType, c.payload); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestRound1RequiresChallenge(t *testing.T) {
	_, cl, client, scheme := newSumDeployment(t, ModeSNIP, 2, false)
	enc, _ := scheme.Encode(1)
	sub, err := client.BuildSubmission(enc)
	if err != nil {
		t.Fatal(err)
	}
	// Talk to a server directly with a challenge ID it has never seen.
	w := &wbuf{}
	w.u32(77)
	w.u64(1)
	w.u32(1)
	w.blob(sub.Bundles[1])
	if _, err := cl.Servers[1].Handle(MsgRound1, w.b); err == nil {
		t.Error("Round1 accepted unknown challenge ID")
	}
}

func TestWrongLengthBundleRejected(t *testing.T) {
	pro, cl, client, scheme := newSumDeployment(t, ModeSNIP, 3, false)
	enc, _ := scheme.Encode(3)
	sub, err := client.BuildSubmission(enc)
	if err != nil {
		t.Fatal(err)
	}
	// Replace server 1's bundle with an explicit vector of the wrong length.
	f := pro.Cfg.Field
	w := &wbuf{}
	w.u8(bundleExplicit)
	wvec(w, f, make([]uint64, pro.FlatLen()-1))
	sub.Bundles[1] = w.b
	if _, err := cl.Leader.ProcessBatch([]*Submission{sub}); err == nil {
		t.Error("short explicit bundle did not error")
	}

	// A seed bundle with a truncated seed.
	sub2, err := client.BuildSubmission(enc)
	if err != nil {
		t.Fatal(err)
	}
	sub2.Bundles[1] = append([]byte{bundleSeed}, make([]byte, prg.SeedSize-1)...)
	if _, err := cl.Leader.ProcessBatch([]*Submission{sub2}); err == nil {
		t.Error("truncated seed bundle did not error")
	}

	// Unknown bundle flag.
	sub3, err := client.BuildSubmission(enc)
	if err != nil {
		t.Fatal(err)
	}
	sub3.Bundles[1] = []byte{0x7F, 1, 2, 3}
	if _, err := cl.Leader.ProcessBatch([]*Submission{sub3}); err == nil {
		t.Error("unknown bundle flag did not error")
	}
}

func TestGarbledSeedYieldsRejectionNotPanic(t *testing.T) {
	// A syntactically valid but wrong seed expands to garbage shares: the
	// submission must be *rejected* (sums no longer verify), not crash.
	_, cl, client, scheme := newSumDeployment(t, ModeSNIP, 3, false)
	enc, _ := scheme.Encode(3)
	sub, err := client.BuildSubmission(enc)
	if err != nil {
		t.Fatal(err)
	}
	sub.Bundles[1][3] ^= 0xA5 // corrupt the seed bytes
	accepts, err := cl.Leader.ProcessBatch([]*Submission{sub})
	if err != nil {
		t.Fatal(err)
	}
	if accepts[0] {
		t.Error("garbled seed accepted")
	}
}

func TestBundleCountMismatch(t *testing.T) {
	_, cl, client, scheme := newSumDeployment(t, ModeSNIP, 3, false)
	enc, _ := scheme.Encode(3)
	sub, err := client.BuildSubmission(enc)
	if err != nil {
		t.Fatal(err)
	}
	sub.Bundles = sub.Bundles[:2]
	if _, err := cl.Leader.ProcessBatch([]*Submission{sub}); err == nil {
		t.Error("submission with missing bundle did not error")
	}
}

func TestEmptyBatchIsNoop(t *testing.T) {
	_, cl, _, _ := newSumDeployment(t, ModeSNIP, 2, false)
	accepts, err := cl.Leader.ProcessBatch(nil)
	if err != nil || accepts != nil {
		t.Errorf("empty batch: accepts=%v err=%v", accepts, err)
	}
}

func TestMixedBatchFiltersOnlyBadSubmissions(t *testing.T) {
	// A batch interleaving honest and malicious submissions must keep every
	// honest one and drop every bad one — per-submission isolation.
	f := field.NewF64()
	_, cl, client, scheme := newSumDeployment(t, ModeSNIP, 3, true)
	var subs []*Submission
	wantAccept := []bool{}
	wantSum := uint64(0)
	for i := 0; i < 12; i++ {
		if i%3 == 2 {
			evil := make([]uint64, scheme.K())
			evil[0] = f.FromUint64(uint64(1000 + i))
			sub, err := client.BuildSubmission(evil)
			if err != nil {
				t.Fatal(err)
			}
			subs = append(subs, sub)
			wantAccept = append(wantAccept, false)
			continue
		}
		v := uint64(i)
		wantSum += v
		enc, _ := scheme.Encode(v)
		sub, err := client.BuildSubmission(enc)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub)
		wantAccept = append(wantAccept, true)
	}
	accepts, err := cl.Leader.ProcessBatch(subs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range accepts {
		if accepts[i] != wantAccept[i] {
			t.Errorf("submission %d: accept=%v want %v", i, accepts[i], wantAccept[i])
		}
	}
	agg, n, err := cl.Leader.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	got, err := scheme.Decode(agg, int(n))
	if err != nil {
		t.Fatal(err)
	}
	if got.Uint64() != wantSum {
		t.Errorf("aggregate = %v, want %d", got, wantSum)
	}
}

func TestDifferentialPrivacyIntegration(t *testing.T) {
	// Section 7 extension: servers add discrete-Laplace noise shares before
	// publishing. The decoded aggregate equals truth + Σ noise; with s
	// servers each adding noise, the sum must stay near the truth.
	_, cl, client, scheme := newSumDeployment(t, ModeSNIP, 3, false)
	var subs []*Submission
	truth := uint64(0)
	for i := 0; i < 30; i++ {
		v := uint64(i % 16)
		truth += v
		enc, _ := scheme.Encode(v)
		sub, err := client.BuildSubmission(enc)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub)
	}
	if _, err := cl.Leader.ProcessBatch(subs); err != nil {
		t.Fatal(err)
	}
	params := dp.Params{Epsilon: 1, Sensitivity: 255}
	for _, srv := range cl.Servers {
		noise, err := dp.NoiseVector(field.NewF64(), rand.Reader, scheme.KPrime(), params)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.AddNoise(noise); err != nil {
			t.Fatal(err)
		}
	}
	agg, _, err := cl.Leader.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	// Interpret the (possibly negative) noised total.
	f := field.NewF64()
	v := f.ToBig(agg[0])
	signed := v.Int64()
	if v.BitLen() > 62 { // wrapped negative
		signed = -int64(field.ModulusF64 - agg[0])
	}
	diff := signed - int64(truth)
	if diff < -20000 || diff > 20000 {
		t.Errorf("noised aggregate off by %d; noise scale implausible", diff)
	}
	if err := cl.Servers[0].AddNoise([]uint64{1, 2}); err == nil {
		t.Error("AddNoise accepted wrong-length vector")
	}
}

func TestSealedDeploymentRequiresKeys(t *testing.T) {
	f := field.NewF64()
	pro, err := NewProtocol(Config[field.F64, uint64]{
		Field: f, Scheme: afe.NewSum(f, 4), Servers: 2, Mode: ModeSNIP, Seal: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewClient(pro, nil, nil); err == nil {
		t.Error("NewClient accepted missing keys in sealed mode")
	}
	pub, _, err := sealbox.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewClient(pro, []*sealbox.PublicKey{pub}, nil); err == nil {
		t.Error("NewClient accepted too few keys")
	}
}

func TestLeaderPeerCountValidation(t *testing.T) {
	pro, cl, _, _ := newSumDeployment(t, ModeSNIP, 3, false)
	_ = pro
	if _, err := NewLeader(cl.Servers[0], nil); err == nil {
		t.Error("NewLeader accepted wrong peer count")
	}
}
