package core

import (
	"testing"

	"prio/internal/telemetry"
)

// TestPipelineMetricsAddUp runs honest and dishonest submissions through a
// real deployment and checks the verification-stage ledger balances: the
// per-outcome counters sum to the submitted count and match ShardStats,
// every round landed in the stage histograms, and the bisecting fallback
// counters fire exactly when a batch carries an invalid proof.
func TestPipelineMetricsAddUp(t *testing.T) {
	if !telemetry.Enabled {
		t.Skip("telemetry compiled out (-tags notelemetry)")
	}
	_, cl, client, scheme := newSumDeployment(t, ModeSNIP, 3, true)
	reg := telemetry.New()
	pl, err := NewPipeline(cl.Leader, PipelineConfig{Shards: 2, MaxBatch: 4, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Close()

	const honest, cheats = 30, 6
	done := make(chan SubmitResult, honest+cheats)
	for i := 0; i < honest; i++ {
		enc, err := scheme.Encode(uint64(i % 100))
		if err != nil {
			t.Fatal(err)
		}
		sub, err := client.BuildSubmission(enc)
		if err != nil {
			t.Fatal(err)
		}
		if err := pl.SubmitFunc(sub, func(r SubmitResult) { done <- r }); err != nil {
			t.Fatal(err)
		}
	}
	enc0, err := scheme.Encode(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cheats; i++ {
		// An out-of-range encoding: the SNIP check must reject it.
		bad := make([]uint64, len(enc0))
		for j := range bad {
			bad[j] = 7
		}
		sub, err := client.BuildSubmission(bad)
		if err != nil {
			t.Fatal(err)
		}
		if err := pl.SubmitFunc(sub, func(r SubmitResult) { done <- r }); err != nil {
			t.Fatal(err)
		}
	}
	var accepted, rejected int
	for i := 0; i < honest+cheats; i++ {
		if r := <-done; r.Accepted {
			accepted++
		} else {
			rejected++
		}
	}
	if accepted != honest || rejected != cheats {
		t.Fatalf("accepted=%d rejected=%d, want %d/%d", accepted, rejected, honest, cheats)
	}

	snap := reg.Snapshot()
	count := func(name string) uint64 {
		v, ok := snap[name].(uint64)
		if !ok {
			t.Fatalf("missing counter %s", name)
		}
		return v
	}
	hist := func(name string) uint64 {
		m, ok := snap[name].(map[string]any)
		if !ok {
			t.Fatalf("missing histogram %s", name)
		}
		return m["count"].(uint64)
	}
	sum := count(`prio_pipeline_submissions_total{outcome="accepted"}`) +
		count(`prio_pipeline_submissions_total{outcome="rejected"}`) +
		count(`prio_pipeline_submissions_total{outcome="failed"}`)
	if sum != honest+cheats {
		t.Fatalf("pipeline outcomes sum to %d, want %d", sum, honest+cheats)
	}
	st := pl.Stats()
	if count(`prio_pipeline_submissions_total{outcome="accepted"}`) != st.Accepted ||
		count(`prio_pipeline_submissions_total{outcome="rejected"}`) != st.Rejected ||
		count("prio_verify_batches_total") != st.Batches {
		t.Fatalf("registry counters disagree with ShardStats %+v", st)
	}

	batches := count("prio_verify_batches_total")
	for _, h := range []string{
		"prio_verify_batch_seconds",
		"prio_verify_round1_seconds",
		"prio_verify_round2_seconds",
		"prio_verify_finish_seconds",
		"prio_pipeline_batch_size",
	} {
		if got := hist(h); got != batches {
			t.Errorf("histogram %s count = %d, want one per batch (%d)", h, got, batches)
		}
	}
	if got := hist("prio_pipeline_queue_wait_seconds"); got != honest+cheats {
		t.Errorf("queue-wait count = %d, want one per submission (%d)", got, honest+cheats)
	}

}

// TestBisectFallbackMetrics drives one mixed batch straight through
// ProcessBatch on a metered leader: the combined RLC check must fail,
// trigger the bisection, and the fallback counters must record it —
// deterministically, unlike pipeline batching.
func TestBisectFallbackMetrics(t *testing.T) {
	if !telemetry.Enabled {
		t.Skip("telemetry compiled out (-tags notelemetry)")
	}
	_, cl, client, scheme := newSumDeployment(t, ModeSNIP, 3, true)
	reg := telemetry.New()
	cl.Leader.m = newPipeMetrics(reg)

	subs := make([]*Submission, 0, 8)
	for i := 0; i < 8; i++ {
		enc, err := scheme.Encode(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if i == 3 || i == 6 {
			for j := range enc {
				enc[j] = 7 // out of range: fails the SNIP check
			}
		}
		sub, err := client.BuildSubmission(enc)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub)
	}
	accepts, err := cl.Leader.ProcessBatch(subs)
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range accepts {
		if want := i != 3 && i != 6; ok != want {
			t.Errorf("submission %d: accepted=%v, want %v", i, ok, want)
		}
	}

	snap := reg.Snapshot()
	if got := snap["prio_verify_batch_fallback_total"].(uint64); got != 1 {
		t.Errorf("fallbacks = %d, want 1", got)
	}
	// Two invalid members in a batch of eight: bisection needs strictly
	// more than one probe; the counter records all probes beyond the first.
	if got := snap["prio_verify_bisect_probes_total"].(uint64); got == 0 {
		t.Error("no bisect probes counted")
	}
	if got := snap["prio_verify_round2_seconds"].(map[string]any)["count"].(uint64); got != 1 {
		t.Errorf("round2 observations = %d, want 1", got)
	}
}
