package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"prio/internal/field"
	"prio/internal/telemetry"
)

// Pipeline is the sharded, concurrent aggregation front-end: it accepts a
// stream of client submissions and fans them out across several leader
// sessions that verify batches in parallel against the shared server set.
//
// The paper's protocol makes this legal: verification of distinct
// submissions is independent (Section 4.2), any server may lead for a slice
// of the traffic (Appendix I / Figure 5), and the servers' accumulators are
// order-insensitive sums — so K concurrent leader sessions produce exactly
// the aggregate a single serial leader would. Each session owns a private
// (challenge, batch) ID namespace (NewLeaderSession), so sessions never
// collide in the servers' state tables. See docs/PIPELINE.md for the design
// write-up.
//
// Shape: Submit → bounded queue → K shard workers, each looping
// (collect up to MaxBatch, ProcessBatch, record). Workers batch
// adaptively — under light load a submission rides alone for low latency;
// under heavy load batches fill to MaxBatch, amortizing the per-round
// broadcasts. Over TCP, wrap peers in transport.Coalescer so concurrent
// shards' round payloads merge onto each server connection.
type Pipeline[Fd field.Field[E], E any] struct {
	cfg      PipelineConfig
	sessions []*Leader[Fd, E]
	queue    chan pipeJob
	stopping chan struct{} // closed by Close: retry backoffs abort immediately

	wg      sync.WaitGroup
	shards  []ShardStats
	refused uint64 // submissions refused unqueued by TrySubmitFunc (queue full)
	m       *pipeMetrics

	// closeMu makes Submit's send atomic with respect to Close: senders
	// hold the read side across the channel send (many may block there at
	// once), Close takes the write side before closing the queue, so a
	// send on a closed channel is impossible. Workers never touch closeMu,
	// so they keep draining the queue and blocked senders always make
	// progress.
	closeMu sync.RWMutex
	closed  bool

	mu      sync.Mutex
	quiet   *sync.Cond // signaled when pending returns to zero
	pending int64      // submissions accepted but not yet decided
	err     error      // first shard failure (sticky)
}

// PipelineConfig tunes a Pipeline. The zero value gives one shard per CPU,
// batches of up to 16, and a queue of 4 batches per shard.
type PipelineConfig struct {
	// Shards is the number of concurrent leader sessions (1–255;
	// default GOMAXPROCS, the paper's "one leader slice per core").
	Shards int
	// MaxBatch bounds how many submissions one verification round covers
	// (default 16, the batch size the seed's benchmarks use).
	MaxBatch int
	// QueueDepth is the submission queue capacity; Submit blocks when the
	// queue is full, providing backpressure (default 4·Shards·MaxBatch).
	QueueDepth int
	// Registry receives the pipeline's telemetry: stage-duration
	// histograms (queue wait, verification rounds, commit), batch-size
	// distribution, and outcome counters mirroring ShardStats. Nil gives
	// the pipeline a private registry — pass telemetry.Default (as
	// prio-server does) to expose the metrics on the admin endpoint.
	// Sharing one registry between two live pipelines merges their
	// counters; give each its own for per-instance numbers.
	Registry *telemetry.Registry
	// Retries is how many times a shard re-runs a failed batch before
	// counting its submissions Failed (default 0: fail fast, the
	// single-process behavior). Each re-run goes through ProcessBatch
	// afresh, so it allocates a new batch ID — the old attempt's
	// server-side state was already released by the abort path — and under
	// a cluster roster the re-run lands on whatever peers answer now, which
	// is how an interrupted round survives a leader failover.
	Retries int
	// RetryBackoff is the pause before the first re-run, doubling per
	// attempt (default 50ms when Retries > 0). Long enough for the health
	// checker to notice a dead peer and the roster to re-point.
	RetryBackoff time.Duration
}

// withDefaults resolves the zero values.
func (c PipelineConfig) withDefaults() PipelineConfig {
	if c.Shards == 0 {
		// Clamp so the default never violates the 255-session namespace
		// limit on very wide hosts.
		c.Shards = min(runtime.GOMAXPROCS(0), 0xFF)
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 16
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4 * c.Shards * c.MaxBatch
	}
	if c.Retries > 0 && c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	return c
}

// ShardStats counts one shard's work. Merged stats describe the whole
// pipeline; the Accepted total is cross-checked against the servers'
// accumulators in Pipeline.Aggregate.
type ShardStats struct {
	Batches   uint64 // verification rounds driven
	Processed uint64 // submissions decided
	Accepted  uint64 // submissions whose shares entered the accumulators
	Rejected  uint64 // submissions refused by SNIP/MPC verification
	Failed    uint64 // submissions lost to batch-level errors (after any retries)
	// Retried counts submission re-runs: a batch that failed its round and
	// was re-driven contributes its size here per extra attempt. Retried
	// submissions are not double-counted in Processed/Accepted/Rejected —
	// only the attempt that reaches a decision lands there.
	Retried uint64
	// FailedOver counts batch re-run attempts (each under a fresh batch ID,
	// the old attempt's server-side state released by the abort path).
	FailedOver uint64
	// Refused counts submissions TrySubmitFunc turned away with a full
	// queue (whole pipeline, not per shard). Whether a refusal is a loss is
	// the intake edge's call: the streaming ingest layer re-queues refusals
	// and sheds only when its own buffer also overflows (its IngestStats
	// carry the authoritative shed count), while a bare TrySubmitFunc
	// caller that does not retry loses the submission.
	Refused uint64
}

// merge adds o into s.
func (s *ShardStats) merge(o ShardStats) {
	s.Batches += o.Batches
	s.Processed += o.Processed
	s.Accepted += o.Accepted
	s.Rejected += o.Rejected
	s.Failed += o.Failed
	s.Retried += o.Retried
	s.FailedOver += o.FailedOver
	s.Refused += o.Refused
}

// pipeJob is one queued submission with an optional completion channel or
// callback.
type pipeJob struct {
	sub *Submission
	res chan<- SubmitResult
	fn  func(SubmitResult)
	enq time.Time // enqueue instant for the queue-wait histogram (zero when telemetry is off)
}

// finish delivers the decision to whichever completion the submitter chose.
func (j *pipeJob) finish(r SubmitResult) {
	if j.res != nil {
		j.res <- r
	}
	if j.fn != nil {
		j.fn(r)
	}
}

// SubmitResult reports one submission's outcome to a SubmitWait caller.
type SubmitResult struct {
	// Accepted is true when the servers verified the submission and added
	// its shares to their accumulators.
	Accepted bool
	// Err is set when the whole batch failed before a decision was made.
	Err error
}

// NewPipeline builds a pipeline in front of leader's server set and starts
// its shard workers. It opens cfg.Shards leader sessions that share
// leader's peers, so the peers must tolerate concurrent Calls (every
// transport.Peer does; wrap TCP peers in transport.Coalescer to also merge
// the concurrent rounds into batched frames).
//
// Sessions are numbered from 1 so the caller's own leader (session 0)
// keeps its ID namespace to itself.
func NewPipeline[Fd field.Field[E], E any](leader *Leader[Fd, E], cfg PipelineConfig) (*Pipeline[Fd, E], error) {
	cfg = cfg.withDefaults()
	if cfg.Shards < 1 || cfg.Shards > 0xFF {
		return nil, fmt.Errorf("core: pipeline needs 1–255 shards, got %d", cfg.Shards)
	}
	if cfg.MaxBatch < 1 {
		return nil, fmt.Errorf("core: pipeline MaxBatch must be positive, got %d", cfg.MaxBatch)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.New()
	}
	p := &Pipeline[Fd, E]{
		cfg:      cfg,
		queue:    make(chan pipeJob, cfg.QueueDepth),
		stopping: make(chan struct{}),
		shards:   make([]ShardStats, cfg.Shards),
		m:        newPipeMetrics(reg),
	}
	p.quiet = sync.NewCond(&p.mu)
	reg.GaugeFunc("prio_pipeline_queue_depth",
		"submissions waiting in the pipeline queue",
		func() float64 { return float64(len(p.queue)) })
	reg.GaugeFunc("prio_pipeline_queue_capacity",
		"pipeline queue capacity",
		func() float64 { return float64(cap(p.queue)) })
	if sys := leader.pro.snipSys(); sys != nil {
		reg.CounterFunc("prio_snip_evcache_hits_total",
			"challenge-keyed evaluator cache hits",
			func() uint64 { h, _ := sys.EvCacheStats(); return h })
		reg.CounterFunc("prio_snip_evcache_misses_total",
			"challenge-keyed evaluator cache misses (Lagrange precomputation rebuilt)",
			func() uint64 { _, m := sys.EvCacheStats(); return m })
	}
	for i := 0; i < cfg.Shards; i++ {
		sess, err := NewLeaderSession(leader.Server, leader.peers, i+1)
		if err != nil {
			return nil, err
		}
		sess.m = p.m
		p.sessions = append(p.sessions, sess)
	}
	p.wg.Add(cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		go p.shardLoop(i)
	}
	return p, nil
}

// Submit enqueues one submission, blocking when the queue is full
// (backpressure toward the ingest edge). It returns an error only when the
// pipeline is closed; verification outcomes are counted in Stats.
func (p *Pipeline[Fd, E]) Submit(sub *Submission) error {
	return p.submit(pipeJob{sub: sub})
}

// SubmitWait enqueues one submission and blocks for its individual accept
// decision — the client-facing path, where the submitter wants to know its
// contribution landed.
func (p *Pipeline[Fd, E]) SubmitWait(sub *Submission) (bool, error) {
	res := make(chan SubmitResult, 1)
	if err := p.submit(pipeJob{sub: sub, res: res}); err != nil {
		return false, err
	}
	r := <-res
	return r.Accepted, r.Err
}

// SubmitFunc enqueues one submission like Submit (blocking while the queue
// is full) and invokes fn with the individual decision once a shard reaches
// it. fn runs on the deciding shard's goroutine and must not block; the
// streaming ingest layer uses this to ack many in-flight submissions without
// parking a goroutine per submission.
func (p *Pipeline[Fd, E]) SubmitFunc(sub *Submission, fn func(SubmitResult)) error {
	return p.submit(pipeJob{sub: sub, fn: fn})
}

// TrySubmitFunc is the non-blocking SubmitFunc: when the queue has room the
// submission is enqueued and fn will see its decision; when the queue is
// full the submission is refused — counted in Stats().Refused, fn never
// called — and TrySubmitFunc returns false. Intake edges that must not
// stall their reader (a streaming connection, an RPC handler) use this and
// decide what a refusal means: buffer and retry, or shed toward the client.
func (p *Pipeline[Fd, E]) TrySubmitFunc(sub *Submission, fn func(SubmitResult)) (bool, error) {
	p.closeMu.RLock()
	defer p.closeMu.RUnlock()
	if p.closed {
		return false, errors.New("core: pipeline is closed")
	}
	p.mu.Lock()
	p.pending++
	p.mu.Unlock()
	job := pipeJob{sub: sub, fn: fn}
	if telemetry.Enabled {
		job.enq = time.Now()
	}
	sub.Trace.Stage("pipeline.queue")
	select {
	case p.queue <- job:
		return true, nil
	default:
		atomic.AddUint64(&p.refused, 1)
		p.m.refused.Inc()
		p.settle(1)
		return false, nil
	}
}

// submit guards the queue against closure.
func (p *Pipeline[Fd, E]) submit(job pipeJob) error {
	p.closeMu.RLock()
	defer p.closeMu.RUnlock()
	if p.closed {
		return errors.New("core: pipeline is closed")
	}
	p.mu.Lock()
	p.pending++
	p.mu.Unlock()
	if telemetry.Enabled {
		job.enq = time.Now()
	}
	job.sub.Trace.Stage("pipeline.queue")
	p.queue <- job
	return nil
}

// settle retires n decided submissions, waking Drain when the pipeline goes
// quiet.
func (p *Pipeline[Fd, E]) settle(n int) {
	p.mu.Lock()
	p.pending -= int64(n)
	if p.pending == 0 {
		p.quiet.Broadcast()
	}
	p.mu.Unlock()
}

// shardLoop is one worker: block for a job, opportunistically drain more up
// to MaxBatch, verify, record, repeat. The drain is what makes batching
// adaptive: an idle pipeline verifies singletons immediately, a saturated
// one fills every round.
func (p *Pipeline[Fd, E]) shardLoop(i int) {
	defer p.wg.Done()
	sess := p.sessions[i]
	st := &p.shards[i]
	jobs := make([]pipeJob, 0, p.cfg.MaxBatch)
	subs := make([]*Submission, 0, p.cfg.MaxBatch)
	for {
		job, ok := <-p.queue
		if !ok {
			return
		}
		jobs = append(jobs[:0], job)
	drain:
		for len(jobs) < p.cfg.MaxBatch {
			select {
			case job, ok := <-p.queue:
				if !ok {
					break drain
				}
				jobs = append(jobs, job)
			default:
				break drain
			}
		}

		subs = subs[:0]
		for _, j := range jobs {
			subs = append(subs, j.sub)
			j.sub.Trace.Stage("verify")
		}
		if telemetry.Enabled {
			now := time.Now()
			for _, j := range jobs {
				if !j.enq.IsZero() {
					p.m.queueWait.Observe(now.Sub(j.enq))
				}
			}
			p.m.batchSize.Observe(uint64(len(jobs)))
		}
		t0 := p.m.start()
		accepts, err := sess.ProcessBatch(subs)
		p.m.batchDur.Since(t0)

		// Batch-level failure: re-run the whole batch in place, up to
		// cfg.Retries times with doubling backoff. Each attempt is a fresh
		// ProcessBatch — new batch ID, prior attempt's server state already
		// released by the leader's abort path — so under a cluster roster
		// this is the failover re-run: the interrupted round is driven
		// again once the surviving peers answer, instead of discarding the
		// submissions. Retrying in-shard (not re-queueing) cannot deadlock
		// on a full queue and preserves completion-callback ordering.
		for attempt := 1; err != nil && attempt <= p.cfg.Retries; attempt++ {
			atomic.AddUint64(&st.FailedOver, 1)
			atomic.AddUint64(&st.Retried, uint64(len(jobs)))
			p.m.reruns.Inc()
			p.m.retried.Add(uint64(len(jobs)))
			if !p.sleepRetry(p.cfg.RetryBackoff << (attempt - 1)) {
				break // closing: give up on further attempts
			}
			t0 = p.m.start()
			accepts, err = sess.ProcessBatch(subs)
			p.m.batchDur.Since(t0)
		}

		// Counters are written with atomics so Stats can snapshot them
		// while the shard runs; one add per outcome per batch keeps the
		// accounting off the per-submission path.
		atomic.AddUint64(&st.Batches, 1)
		p.m.batches.Inc()
		if err != nil {
			atomic.AddUint64(&st.Failed, uint64(len(jobs)))
			p.m.failed.Add(uint64(len(jobs)))
			p.recordErr(err)
			for _, j := range jobs {
				j.sub.Trace.Finish("failed")
				j.finish(SubmitResult{Err: err})
			}
			p.settle(len(jobs))
			continue
		}
		atomic.AddUint64(&st.Processed, uint64(len(jobs)))
		var nAccept uint64
		for k, j := range jobs {
			if accepts[k] {
				nAccept++
				j.sub.Trace.Finish("accepted")
			} else {
				j.sub.Trace.Finish("rejected")
			}
			j.finish(SubmitResult{Accepted: accepts[k]})
		}
		atomic.AddUint64(&st.Accepted, nAccept)
		atomic.AddUint64(&st.Rejected, uint64(len(jobs))-nAccept)
		p.m.accepted.Add(nAccept)
		p.m.rejected.Add(uint64(len(jobs)) - nAccept)
		p.settle(len(jobs))
	}
}

// sleepRetry pauses for a retry backoff, returning false when the pipeline
// is closing and the retry should be abandoned.
func (p *Pipeline[Fd, E]) sleepRetry(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-p.stopping:
		return false
	}
}

// recordErr keeps the first batch-level failure for Close to return.
func (p *Pipeline[Fd, E]) recordErr(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

// Drain blocks until every submission accepted so far has been decided. The
// pipeline stays open; use it to quiesce before reading an aggregate
// mid-run.
func (p *Pipeline[Fd, E]) Drain() {
	p.mu.Lock()
	for p.pending > 0 {
		p.quiet.Wait()
	}
	p.mu.Unlock()
}

// Quiesce pauses intake, waits until every in-flight submission has been
// decided, runs fn, then resumes intake. It is the boundary primitive the
// window service uses to close a collection window: with no batch in flight,
// advancing the window function and sealing the closed window cannot race a
// commit, so every server files every submission under the same window.
// Unlike a bare Drain, Quiesce blocks new Submits for the duration, so it
// completes even under sustained load.
func (p *Pipeline[Fd, E]) Quiesce(fn func()) {
	p.closeMu.Lock()
	defer p.closeMu.Unlock()
	p.Drain()
	fn()
}

// Close stops intake, waits for the shards to finish every queued
// submission, and returns the first batch-level error (nil when every batch
// completed its rounds — individual rejections are not errors).
func (p *Pipeline[Fd, E]) Close() error {
	p.closeMu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
		close(p.stopping)
	}
	p.closeMu.Unlock()
	p.wg.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Stats merges the per-shard counters. It is safe to call while the
// pipeline runs; the snapshot is advisory until the pipeline is drained.
func (p *Pipeline[Fd, E]) Stats() ShardStats {
	var out ShardStats
	for i := range p.shards {
		out.merge(p.loadShard(i))
	}
	out.Refused = atomic.LoadUint64(&p.refused)
	return out
}

// ShardStatsAt returns one shard's counters (benchmark introspection).
func (p *Pipeline[Fd, E]) ShardStatsAt(i int) ShardStats { return p.loadShard(i) }

// loadShard reads a shard's counters with atomic loads, since its worker
// may still be writing them.
func (p *Pipeline[Fd, E]) loadShard(i int) ShardStats {
	s := &p.shards[i]
	return ShardStats{
		Batches:    atomic.LoadUint64(&s.Batches),
		Processed:  atomic.LoadUint64(&s.Processed),
		Accepted:   atomic.LoadUint64(&s.Accepted),
		Rejected:   atomic.LoadUint64(&s.Rejected),
		Failed:     atomic.LoadUint64(&s.Failed),
		Retried:    atomic.LoadUint64(&s.Retried),
		FailedOver: atomic.LoadUint64(&s.FailedOver),
	}
}

// Shards returns the configured shard count.
func (p *Pipeline[Fd, E]) Shards() int { return p.cfg.Shards }

// Aggregate quiesces the pipeline and merges the per-shard results into
// the final aggregate: it pauses intake (Submit blocks for the duration),
// waits for every in-flight submission to be decided, then fetches and
// sums the servers' accumulators and cross-checks the servers' accepted
// count against the shards' own tallies — a cheap end-to-end consistency
// check that every accepted submission landed exactly once. Pausing intake
// is what makes the snapshot consistent: no batch can finish on one server
// before the accumulator fetch and on another after it.
func (p *Pipeline[Fd, E]) Aggregate() ([]E, uint64, error) {
	// Taking the write side of closeMu blocks new Submits and waits out
	// any sender mid-enqueue; the shard workers (which never touch
	// closeMu) then drain the queue to zero.
	p.closeMu.Lock()
	defer p.closeMu.Unlock()
	p.Drain()
	agg, n, err := p.sessions[0].Aggregate()
	if err != nil {
		return nil, 0, err
	}
	if want := p.Stats().Accepted; n != want {
		return nil, 0, fmt.Errorf("core: servers accumulated %d submissions, shards accepted %d", n, want)
	}
	return agg, n, nil
}
