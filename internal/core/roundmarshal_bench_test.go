package core

import (
	"io"
	"testing"
)

// BenchmarkRoundMarshal exercises the leader's hot-path request building:
// a pooled arena (wbuf.grab) sized by an exact hint, the Round1-shaped
// header and bundle blobs appended in place, the message streamed to the
// connection writer, and the arena returned to the pool. Steady state must
// be zero allocations per round — the CI alloc gate pins it there.
func BenchmarkRoundMarshal(b *testing.B) {
	const count = 64
	bundles := make([][]byte, count)
	for i := range bundles {
		bundles[i] = make([]byte, 512)
	}
	hint := 4 + 8 + 4 + 8
	for _, bl := range bundles {
		hint += 4 + len(bl)
	}
	marshal := func() {
		var w wbuf
		w.grab(hint)
		w.u32(count)
		w.u64(0x1234)
		w.u32(7)
		w.u64(0x99)
		for _, bl := range bundles {
			w.blob(bl)
		}
		if _, err := w.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
		_, arena := w.seal()
		arena.Free()
	}
	marshal() // warm the size-classed pool so b.N=1 measures steady state
	b.ReportAllocs()
	b.SetBytes(int64(hint))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		marshal()
	}
}
