// Package core assembles the full Prio pipeline of Section 5.1 / Appendix H
// of "Prio: Private, Robust, and Scalable Computation of Aggregate
// Statistics" (Corrigan-Gibbs & Boneh, NSDI 2017):
//
//	Upload    — each client AFE-encodes its value, splits encoding and SNIP
//	            proof into per-server shares (PRG-compressed, Appendix I),
//	            seals each share to its server, and sends the submission to
//	            the current leader.
//	Validate  — the leader relays shares and drives the two verification
//	            rounds; servers exchange constant-size messages per
//	            submission (Section 4.2).
//	Aggregate — servers add the truncated encodings of accepted submissions
//	            into local accumulators.
//	Publish   — accumulators are summed and decoded with the AFE.
//
// The same pipeline runs in three modes: full Prio (SNIP verification),
// Prio-MPC (server-side Valid evaluation, Section 4.4), and the
// no-robustness baseline of Section 6.1 (secret-sharing sums without
// proofs). The modes share the transport, sharing, and accumulation code, so
// benchmark comparisons between them isolate the cost of robustness — the
// design of the paper's evaluation.
//
// # Roles
//
// Server (one per deployment slot) verifies its share of every submission
// and keeps the local accumulator of Section 3. Leader is a server that
// additionally coordinates verification for a slice of the traffic
// (Appendix I: "we assign a single Prio server to be the leader that
// coordinates the checking of each client data submission"). Client builds
// submissions. All three are driven through the byte-level wire protocol in
// wire.go, so the same code runs in-process (Cluster, the benchmarks) and
// over TCP/TLS (cmd/prio-server).
//
// # Concurrency
//
// Verifying distinct submissions is embarrassingly parallel — the paper
// scales throughput by giving every server a leader slice (Figure 5,
// Appendix I). This package applies the same idea at two levels:
//
//   - Leader sessions: NewLeaderSession opens independent (challenge,
//     batch) ID namespaces on one leader server, so several sessions can
//     drive verification rounds concurrently against the shared server set.
//     ProcessBatch holds the leader lock only to rotate challenges and
//     allocate batch IDs; the network rounds run lock-free.
//   - Pipeline: a sharded front-end that fans a stream of submissions
//     across K leader sessions with bounded queuing and adaptive batching,
//     then merges the per-shard results into the final aggregate.
//
// See docs/PIPELINE.md for the design and its paper grounding.
package core
