package core

import (
	"testing"

	"prio/internal/afe"
	"prio/internal/field"
	"prio/internal/transport"
)

// TestRotatingLeadership exercises the Figure 5 load-balancing arrangement:
// every server simultaneously acts as leader for a slice of the submissions,
// and the final aggregate is still exact. Challenge/batch namespacing keeps
// the concurrent verification sessions from colliding.
func TestRotatingLeadership(t *testing.T) {
	f := field.NewF64()
	scheme := afe.NewSum(f, 8)
	pro, err := NewProtocol(Config[field.F64, uint64]{
		Field:    f,
		Scheme:   scheme,
		Servers:  3,
		Mode:     ModeSNIP,
		SnipReps: 1,
		Seal:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewLocalCluster(pro)
	if err != nil {
		t.Fatal(err)
	}
	// Promote every server to leader with its own peer set.
	leaders := make([]*Leader[field.F64, uint64], len(cl.Servers))
	leaders[0] = cl.Leader
	for i := 1; i < len(cl.Servers); i++ {
		peers := make([]transport.Peer, len(cl.Servers))
		for j, srv := range cl.Servers {
			if i == j {
				peers[j] = &transport.LoopbackPeer{Handler: srv.Handle}
			} else {
				peers[j] = transport.NewMemPeer(srv.Handle)
			}
		}
		ld, err := NewLeader(cl.Servers[i], peers)
		if err != nil {
			t.Fatal(err)
		}
		leaders[i] = ld
	}

	client, err := NewClient(pro, cl.PublicKeys(), nil)
	if err != nil {
		t.Fatal(err)
	}

	// Round-robin batches across the three leaders.
	want := uint64(0)
	total := 0
	for batch := 0; batch < 9; batch++ {
		var subs []*Submission
		for i := 0; i < 4; i++ {
			v := uint64((batch*7 + i) % 256)
			want += v
			total++
			enc, err := scheme.Encode(v)
			if err != nil {
				t.Fatal(err)
			}
			sub, err := client.BuildSubmission(enc)
			if err != nil {
				t.Fatal(err)
			}
			subs = append(subs, sub)
		}
		ld := leaders[batch%len(leaders)]
		accepts, err := ld.ProcessBatch(subs)
		if err != nil {
			t.Fatalf("leader %d batch %d: %v", batch%len(leaders), batch, err)
		}
		for i, ok := range accepts {
			if !ok {
				t.Fatalf("leader %d rejected honest submission %d", batch%len(leaders), i)
			}
		}
	}

	agg, n, err := leaders[1].Aggregate() // any leader can publish
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(total) {
		t.Fatalf("count = %d, want %d", n, total)
	}
	got, err := scheme.Decode(agg, int(n))
	if err != nil {
		t.Fatal(err)
	}
	if got.Uint64() != want {
		t.Errorf("aggregate = %v, want %d", got, want)
	}
}

// TestConcurrentLeaders drives two leaders from separate goroutines to make
// sure interleaved sessions stay isolated under the race detector.
func TestConcurrentLeaders(t *testing.T) {
	f := field.NewF64()
	scheme := afe.NewSum(f, 4)
	pro, err := NewProtocol(Config[field.F64, uint64]{
		Field: f, Scheme: scheme, Servers: 2, Mode: ModeSNIP, SnipReps: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewLocalCluster(pro)
	if err != nil {
		t.Fatal(err)
	}
	peers := []transport.Peer{
		transport.NewMemPeer(cl.Servers[0].Handle),
		&transport.LoopbackPeer{Handler: cl.Servers[1].Handle},
	}
	second, err := NewLeader(cl.Servers[1], peers)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(pro, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	run := func(ld *Leader[field.F64, uint64], vals []uint64, errCh chan<- error) {
		for _, v := range vals {
			enc, err := scheme.Encode(v)
			if err != nil {
				errCh <- err
				return
			}
			sub, err := client.BuildSubmission(enc)
			if err != nil {
				errCh <- err
				return
			}
			if _, err := ld.ProcessBatch([]*Submission{sub}); err != nil {
				errCh <- err
				return
			}
		}
		errCh <- nil
	}
	errCh := make(chan error, 2)
	go run(cl.Leader, []uint64{1, 2, 3, 4, 5}, errCh)
	go run(second, []uint64{10, 10, 10}, errCh)
	for i := 0; i < 2; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	agg, n, err := cl.Leader.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Fatalf("count = %d, want 8", n)
	}
	got, err := scheme.Decode(agg, int(n))
	if err != nil {
		t.Fatal(err)
	}
	if got.Uint64() != 45 {
		t.Errorf("aggregate = %v, want 45", got)
	}
}
