package core

import (
	"encoding"
	"encoding/binary"
	"errors"
	"io"

	"prio/internal/field"
	"prio/internal/transport"
)

// Message types of the server-to-server (and client-to-leader) protocol.
const (
	MsgSetChallenge byte = 1 // leader -> servers: new verification challenge
	MsgRound1       byte = 2 // leader -> servers: batch of bundles; reply: Round1 shares
	MsgRound2       byte = 3 // leader -> servers: opened masks; reply: Round2 shares
	MsgMPCRound     byte = 4 // leader -> servers: opened MPC masks; reply: next masks or tau
	MsgFinish       byte = 5 // leader -> servers: accept bitmap; servers accumulate
	MsgAggregate    byte = 6 // anyone -> server: fetch accumulator
	MsgReset        byte = 7 // leader -> servers: clear accumulator and sessions
	MsgPublicKey    byte = 8 // anyone -> server: fetch sealbox public key
	MsgSubmit       byte = 9 // client -> leader: enqueue one submission
	// MsgRound2Batch replaces MsgRound2 on the batch-verification path: the
	// leader ships the opened masks once, then probes ranges of the batch
	// with fresh RLC seeds; each reply is a single combined σ/τ share for
	// the probed range instead of one pair per submission.
	MsgRound2Batch byte = 10 // leader -> servers: opened masks + RLC probe; reply: combined share
	// MsgWindowPublish seals one tumbling collection window on every server
	// and fetches its share: the server applies its own DP noise exactly
	// once, freezes the window, and replies (flags, ε, count, vec). See
	// window.go; window IDs are wall-time derived (internal/window), not
	// cluster leadership epochs.
	MsgWindowPublish byte = 11 // leader -> servers: seal window; reply: noised share
)

// errTruncated reports malformed wire input.
var errTruncated = errors.New("core: truncated or malformed message")

// wbuf is an append-only message writer. The zero value writes into a
// GC-managed slice; grab backs it with a pooled arena buffer instead, which
// is how the leader's verification rounds build requests with zero
// steady-state allocation (see transport.GetBuf for the ownership rules).
type wbuf struct {
	b     []byte
	arena *transport.Buf
}

var (
	_ io.WriterTo                = (*wbuf)(nil)
	_ encoding.BinaryMarshaler   = (*wbuf)(nil)
	_ encoding.BinaryUnmarshaler = (*rbuf)(nil)
	_ io.ReaderFrom              = (*rbuf)(nil)
)

// grab backs the writer with a pooled buffer sized for hint bytes and
// resets it. The caller owes the arena a release: either seal (caller
// frees later) or detach (ownership passes to the result's consumer).
func (w *wbuf) grab(hint int) {
	w.arena = transport.GetBuf(hint)
	w.b = w.arena.B
}

// seal returns the finished message and its arena. The bytes remain valid
// until buf.Free(); the writer is left reset for reuse.
func (w *wbuf) seal() (msg []byte, buf *transport.Buf) {
	buf = w.arena
	if buf != nil {
		buf.B = w.b // the slice may have outgrown the arena's original header
	}
	msg = w.b
	w.b = nil
	w.arena = nil
	return msg, buf
}

// detach returns the finished message and drops the arena box: the bytes
// are handed off with unknown lifetime (a handler response escaping to the
// transport layer), so they must not return to the pool from here.
func (w *wbuf) detach() []byte {
	msg := w.b
	w.b = nil
	w.arena = nil
	return msg
}

// WriteTo implements io.WriterTo, streaming the accumulated message.
func (w *wbuf) WriteTo(dst io.Writer) (int64, error) {
	n, err := dst.Write(w.b)
	return int64(n), err
}

// MarshalBinary implements encoding.BinaryMarshaler with a defensive copy,
// since the accumulated bytes may live in a pooled arena.
func (w *wbuf) MarshalBinary() ([]byte, error) {
	return append([]byte(nil), w.b...), nil
}

func (w *wbuf) u8(v byte)     { w.b = append(w.b, v) }
func (w *wbuf) u32(v uint32)  { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *wbuf) u64(v uint64)  { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *wbuf) raw(b []byte)  { w.b = append(w.b, b...) }
func (w *wbuf) blob(b []byte) { w.u32(uint32(len(b))); w.raw(b) }

// vec appends n field elements without a length prefix (the reader knows n
// from protocol context).
func wvec[Fd field.Field[E], E any](w *wbuf, f Fd, v []E) {
	w.b = field.AppendVec(f, w.b, v)
}

// rbuf is a cursor-based message reader; the first failure sticks.
type rbuf struct {
	b   []byte
	off int
	err error
}

func (r *rbuf) fail() { r.err = errTruncated }

func (r *rbuf) u8() byte {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *rbuf) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *rbuf) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *rbuf) blob() []byte {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.fail()
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

// rvec reads n field elements.
func rvec[Fd field.Field[E], E any](r *rbuf, f Fd, n int) []E {
	if r.err != nil {
		return nil
	}
	v, used, err := field.ReadVec(f, r.b[r.off:], n)
	if err != nil {
		r.fail()
		return nil
	}
	r.off += used
	return v
}

// done reports whether the buffer was fully and cleanly consumed.
func (r *rbuf) done() bool { return r.err == nil && r.off == len(r.b) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler: the reader cursors
// over data without copying it (blob results alias the input).
func (r *rbuf) UnmarshalBinary(data []byte) error {
	*r = rbuf{b: data}
	return nil
}

// ReadFrom implements io.ReaderFrom, loading the reader from a stream.
func (r *rbuf) ReadFrom(src io.Reader) (int64, error) {
	data, err := io.ReadAll(src)
	*r = rbuf{b: data}
	return int64(len(data)), err
}
