package core

import (
	"bytes"
	"testing"

	"prio/internal/afe"
	"prio/internal/field"
)

// Wire-format tests: the hand-rolled binary codec must round-trip exactly
// and reject every malformed prefix.

func TestWbufRbufRoundTrip(t *testing.T) {
	f := field.NewF64()
	w := &wbuf{}
	w.u8(7)
	w.u32(0xDEADBEEF)
	w.u64(1 << 60)
	w.blob([]byte("hello"))
	w.blob(nil)
	wvec(w, f, []uint64{1, 2, field.ModulusF64 - 1})

	r := &rbuf{b: w.b}
	if got := r.u8(); got != 7 {
		t.Errorf("u8 = %d", got)
	}
	if got := r.u32(); got != 0xDEADBEEF {
		t.Errorf("u32 = %x", got)
	}
	if got := r.u64(); got != 1<<60 {
		t.Errorf("u64 = %x", got)
	}
	if got := r.blob(); !bytes.Equal(got, []byte("hello")) {
		t.Errorf("blob = %q", got)
	}
	if got := r.blob(); len(got) != 0 {
		t.Errorf("empty blob = %q", got)
	}
	vec := rvec(r, f, 3)
	if !field.EqualVec(f, vec, []uint64{1, 2, field.ModulusF64 - 1}) {
		t.Errorf("vec = %v", vec)
	}
	if !r.done() {
		t.Error("reader not fully consumed")
	}
}

func TestRbufTruncationSticks(t *testing.T) {
	r := &rbuf{b: []byte{1, 2}}
	_ = r.u32() // fails: only 2 bytes
	if r.err == nil {
		t.Fatal("u32 on short buffer did not fail")
	}
	// Every subsequent read stays failed and returns zero values.
	if r.u8() != 0 || r.u64() != 0 || r.blob() != nil {
		t.Error("reads after failure returned data")
	}
	if r.done() {
		t.Error("failed reader reports done")
	}
}

func TestRbufBlobOverrun(t *testing.T) {
	w := &wbuf{}
	w.u32(100) // claims 100 bytes
	w.raw([]byte{1, 2, 3})
	r := &rbuf{b: w.b}
	if got := r.blob(); got != nil || r.err == nil {
		t.Error("blob overrun not detected")
	}
}

func TestRvecRejectsNonCanonical(t *testing.T) {
	f := field.NewF64()
	w := &wbuf{}
	for i := 0; i < 8; i++ {
		w.u8(0xFF) // 2^64-1 ≥ p: invalid element
	}
	r := &rbuf{b: w.b}
	if got := rvec(r, f, 1); got != nil || r.err == nil {
		t.Error("non-canonical element accepted by rvec")
	}
}

func TestChallengeMarshalRoundTrip(t *testing.T) {
	f := field.NewF64()
	for _, mode := range []Mode{ModeSNIP, ModeMPC} {
		pro, err := NewProtocol(Config[field.F64, uint64]{
			Field:    f,
			Scheme:   afe.NewSum(f, 6),
			Servers:  2,
			Mode:     mode,
			SnipReps: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		ch, err := pro.newChallenge()
		if err != nil {
			t.Fatal(err)
		}
		enc := pro.marshalChallenge(ch)
		back, err := pro.unmarshalChallenge(enc)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !field.EqualVec(f, back.sn.R, ch.sn.R) || !field.EqualVec(f, back.sn.Rho, ch.sn.Rho) {
			t.Errorf("%v: SNIP challenge round trip mismatch", mode)
		}
		if mode == ModeMPC && !field.EqualVec(f, back.validRho, ch.validRho) {
			t.Errorf("MPC validRho round trip mismatch")
		}
		// Truncated and padded encodings must be rejected.
		if _, err := pro.unmarshalChallenge(enc[:len(enc)-1]); err == nil {
			t.Errorf("%v: truncated challenge accepted", mode)
		}
		if _, err := pro.unmarshalChallenge(append(append([]byte(nil), enc...), 0)); err == nil {
			t.Errorf("%v: padded challenge accepted", mode)
		}
	}
}

func TestFlatLenByMode(t *testing.T) {
	f := field.NewF64()
	scheme := afe.NewSum(f, 6) // K=7, M=6
	lens := map[Mode]int{}
	for _, mode := range []Mode{ModeNoRobust, ModeSNIP, ModeMPC} {
		pro, err := NewProtocol(Config[field.F64, uint64]{
			Field: f, Scheme: scheme, Servers: 2, Mode: mode, SnipReps: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		lens[mode] = pro.FlatLen()
	}
	if lens[ModeNoRobust] != scheme.K() {
		t.Errorf("no-robust flat len = %d, want %d", lens[ModeNoRobust], scheme.K())
	}
	if lens[ModeSNIP] <= lens[ModeNoRobust] {
		t.Error("SNIP flat len should exceed bare encoding")
	}
	if lens[ModeMPC] <= lens[ModeNoRobust] {
		t.Error("MPC flat len should exceed bare encoding")
	}
}
