package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"prio/internal/field"
	"prio/internal/mpc"
	"prio/internal/prg"
	"prio/internal/sealbox"
	"prio/internal/snip"
	"prio/internal/transport"
)

// Server is one Prio aggregation server: it verifies its share of each
// submission and maintains the local accumulator of Section 3. Servers are
// driven entirely through Handle, which implements the wire protocol, so the
// same code runs in-process (benchmarks, examples) and behind TCP/TLS
// (cmd/prio-server).
type Server[Fd field.Field[E], E any] struct {
	pro  *Protocol[Fd, E]
	idx  int
	priv *sealbox.PrivateKey
	pub  *sealbox.PublicKey

	mu         sync.Mutex
	challenges map[uint32]*challState[Fd, E]
	lastChall  map[uint32]uint32 // newest challenge ID per leader-session namespace
	batches    map[uint64]*batchState[Fd, E]
	acc        []E
	accCount   uint64
	windows    map[uint64]*windowAcc[E] // per-collection-window accumulators (see window.go)
	spilled    uint64                   // shares rolled forward past a sealed window

	// windowFn stamps batches with their collection window (leader sessions
	// read it at commit time); noiseFn is this server's own DP-at-seal
	// policy. Both are atomics so handlers and sessions read them without
	// taking mu; nil means windowing / noise is off.
	windowFn atomic.Pointer[func() uint64]
	noiseFn  atomic.Pointer[func(k int) ([]E, float64, error)]
}

// challState caches the per-challenge verification engine.
type challState[Fd field.Field[E], E any] struct {
	ch *challenge[E]
	ev *snip.Evaluator[Fd, E]
}

// batchState holds per-batch verification sessions between rounds. Exactly
// one of snipSt (per-submission path) and snipBatch (batch path) is populated
// in the robust modes, according to Config.DisableBatchVerify.
type batchState[Fd field.Field[E], E any] struct {
	count     int
	xShares   [][]E
	snipSt    []*snip.State[E]
	snipBatch *snip.BatchState[E]
	mpcSess   []*mpc.Session[Fd, E]
	validTaus []E // MPC: shares of the Valid assertion combination
}

// NewServer constructs server idx of the deployment. A fresh sealbox key
// pair is generated when priv is nil.
func NewServer[Fd field.Field[E], E any](pro *Protocol[Fd, E], idx int, priv *sealbox.PrivateKey) (*Server[Fd, E], error) {
	if idx < 0 || idx >= pro.Cfg.Servers {
		return nil, fmt.Errorf("core: server index %d out of range", idx)
	}
	if priv == nil {
		var err error
		_, priv, err = sealbox.GenerateKey()
		if err != nil {
			return nil, err
		}
	}
	s := &Server[Fd, E]{
		pro:        pro,
		idx:        idx,
		priv:       priv,
		pub:        priv.Public(),
		challenges: make(map[uint32]*challState[Fd, E]),
		lastChall:  make(map[uint32]uint32),
		batches:    make(map[uint64]*batchState[Fd, E]),
	}
	s.resetLocked()
	return s, nil
}

// PublicKey returns the server's sealbox key for clients.
func (s *Server[Fd, E]) PublicKey() *sealbox.PublicKey { return s.pub }

// Index returns the server's position in the deployment.
func (s *Server[Fd, E]) Index() int { return s.idx }

// Handle implements transport.Handler.
//
// Contract: payload may live in a caller-owned scratch buffer that is
// recycled the moment Handle returns — the leader builds verification-round
// requests in a pooled arena and frees them right after the broadcast, which
// an in-process peer (MemPeer, LoopbackPeer) delivers to Handle directly.
// Every handler below therefore copies whatever it keeps past the return
// (decodeBundle, rvec, and unmarshalChallenge all produce fresh memory);
// new handlers must do the same. The returned response is handed off to the
// transport with Handle keeping no reference, so it must be freshly
// allocated, never pooled or cached.
func (s *Server[Fd, E]) Handle(msgType byte, payload []byte) ([]byte, error) {
	switch msgType {
	case MsgSetChallenge:
		return s.handleSetChallenge(payload)
	case MsgRound1:
		return s.handleRound1(payload)
	case MsgRound2:
		return s.handleRound2(payload)
	case MsgRound2Batch:
		return s.handleRound2Batch(payload)
	case MsgMPCRound:
		return s.handleMPCRound(payload)
	case MsgFinish:
		return s.handleFinish(payload)
	case MsgAggregate:
		return s.handleAggregate()
	case MsgWindowPublish:
		return s.handleWindowPublish(payload)
	case MsgReset:
		s.mu.Lock()
		s.resetLocked()
		s.mu.Unlock()
		return nil, nil
	case MsgPublicKey:
		return s.pub.Bytes(), nil
	default:
		return nil, fmt.Errorf("core: server %d: unknown message type %d", s.idx, msgType)
	}
}

// Handler returns s.Handle as a transport.Handler.
func (s *Server[Fd, E]) Handler() transport.Handler { return s.Handle }

// ReleaseLeader drops every piece of round state a given leader server left
// behind: in-flight batches (xShares, verifier sessions), challenge engines,
// and challenge-window bookkeeping whose IDs carry leader in their top bits.
// Cluster members call it when the health checker declares a peer dead — a
// leader killed between Round1 and MsgFinish can never finish its batches,
// so without this the state would sit in the maps forever. The accumulator
// is untouched: finished batches stay counted.
//
// It returns how many batches and challenges were released, for logging.
func (s *Server[Fd, E]) ReleaseLeader(leader int) (batches, challenges int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id := range s.batches {
		if int(id>>48) == leader {
			delete(s.batches, id)
			batches++
		}
	}
	for id := range s.challenges {
		if int(id>>24) == leader {
			delete(s.challenges, id)
			challenges++
		}
	}
	for ns := range s.lastChall {
		if int(ns>>8) == leader {
			delete(s.lastChall, ns)
		}
	}
	return batches, challenges
}

func (s *Server[Fd, E]) resetLocked() {
	acc := make([]E, s.pro.kPrime)
	f := s.pro.Cfg.Field
	for i := range acc {
		acc[i] = f.Zero()
	}
	s.acc = acc
	s.accCount = 0
	s.batches = make(map[uint64]*batchState[Fd, E])
	s.windows = make(map[uint64]*windowAcc[E])
	s.spilled = 0
}

func (s *Server[Fd, E]) handleSetChallenge(payload []byte) ([]byte, error) {
	r := &rbuf{b: payload}
	id := r.u32()
	if r.err != nil {
		return nil, errTruncated
	}
	ch, err := s.pro.unmarshalChallenge(r.b[r.off:])
	if err != nil {
		return nil, err
	}
	st := &challState[Fd, E]{ch: ch}
	if sys := s.pro.snipSys(); sys != nil {
		// The cache is keyed by (shape, challenge): in-process deployments,
		// where all servers share the Protocol's System, compute each
		// challenge's Lagrange weights once instead of once per server.
		st.ev = sys.CachedEvaluator(ch.sn)
	}
	// Challenge IDs carry their leader session in the top 16 bits; each
	// session keeps a window of three live challenges (the newest plus two
	// predecessors), so concurrent leader sessions rotate independently
	// without evicting one another's verification state. Three, not two,
	// because leaders prefetch: the next challenge is broadcast while
	// batches may still be in flight on the previous one, so "newest" runs
	// one step ahead of the challenge verification actually uses.
	ns := id >> 16
	s.mu.Lock()
	s.challenges[id] = st
	if prev, ok := s.lastChall[ns]; ok && prev != id {
		// Evict the slot falling out of the window. The counter is masked
		// to 16 bits (matching ensureChallenge's increment) so a wrapping
		// session never deletes a neighboring namespace's slot.
		delete(s.challenges, ns<<16|(prev-2)&0xFFFF)
	}
	s.lastChall[ns] = id
	s.mu.Unlock()
	return nil, nil
}

// handleRound1 ingests a batch of bundles. In SNIP/MPC modes it returns the
// servers' Round1 shares (and, for MPC, the first openings); in no-robust
// mode it accumulates immediately and returns nothing.
func (s *Server[Fd, E]) handleRound1(payload []byte) ([]byte, error) {
	p := s.pro
	f := p.Cfg.Field
	r := &rbuf{b: payload}
	challID := r.u32()
	batchID := r.u64()
	count := int(r.u32())
	if r.err != nil || count < 0 || count > 1<<20 {
		return nil, errTruncated
	}

	s.mu.Lock()
	chSt := s.challenges[challID]
	s.mu.Unlock()
	if p.Cfg.Mode != ModeNoRobust && chSt == nil {
		return nil, fmt.Errorf("core: server %d: unknown challenge %d", s.idx, challID)
	}

	bs := &batchState[Fd, E]{count: count}
	constServer := s.idx == 0

	// Decode phase: unpack every bundle, splitting out the SNIP inputs and
	// proof shares (and, in MPC mode, starting the cooperative sessions).
	snipInputs := make([][]E, 0, count)
	snipProofs := make([]*snip.Proof[E], 0, count)
	mpcOpens := make([]*mpc.Open[E], 0, count)
	for j := 0; j < count; j++ {
		bundle := r.blob()
		if r.err != nil {
			return nil, errTruncated
		}
		flat, err := p.decodeBundle(bundle, s.priv)
		if err != nil {
			return nil, fmt.Errorf("core: server %d: bundle %d: %w", s.idx, j, err)
		}
		x, triples, proofFlat, err := p.splitFlat(flat)
		if err != nil {
			return nil, err
		}
		bs.xShares = append(bs.xShares, x)

		switch p.Cfg.Mode {
		case ModeNoRobust:
			// Accumulate unconditionally; no verification exists.
		case ModeSNIP:
			pf, err := p.ValidSys.UnflattenProof(proofFlat)
			if err != nil {
				return nil, err
			}
			snipInputs = append(snipInputs, x)
			snipProofs = append(snipProofs, pf)
		case ModeMPC:
			pf, err := p.TripleSys.UnflattenProof(proofFlat)
			if err != nil {
				return nil, err
			}
			snipInputs = append(snipInputs, triples)
			snipProofs = append(snipProofs, pf)
			sess, err := mpc.NewSession(f, p.Cfg.Scheme.Circuit(), p.Cfg.Servers, x, triples, constServer)
			if err != nil {
				return nil, err
			}
			open, done := sess.Start()
			bs.mpcSess = append(bs.mpcSess, sess)
			if done {
				open = &mpc.Open[E]{}
			}
			mpcOpens = append(mpcOpens, open)
		}
	}
	// Optional trailing collection-window stamp (window.go). Robust modes
	// re-learn it from MsgFinish, where accumulation actually happens; the
	// Round1 copy is for no-robust mode, which accumulates right here.
	wid := uint64(0)
	if r.off < len(r.b) {
		wid = r.u64()
	}
	if !r.done() {
		return nil, errTruncated
	}

	// Verify phase: one batch pass over all submissions (or the legacy
	// per-submission loop when DisableBatchVerify is set). The wire format is
	// identical either way — Beaver openings are inherently per-submission.
	w := &wbuf{}
	if p.Cfg.Mode != ModeNoRobust {
		var r1s []*snip.Round1[E]
		if p.Cfg.DisableBatchVerify {
			for j := range snipInputs {
				st, r1, err := chSt.ev.Round1(snipInputs[j], snipProofs[j], constServer)
				if err != nil {
					return nil, err
				}
				bs.snipSt = append(bs.snipSt, st)
				r1s = append(r1s, r1)
			}
		} else {
			st, msgs, err := chSt.ev.Batch().Round1(snipInputs, snipProofs, constServer)
			if err != nil {
				return nil, err
			}
			bs.snipBatch = st
			r1s = msgs
		}
		for j := 0; j < count; j++ {
			wvec(w, f, r1s[j].D)
			wvec(w, f, r1s[j].E)
			if p.Cfg.Mode == ModeMPC {
				w.u32(uint32(len(mpcOpens[j].D)))
				wvec(w, f, mpcOpens[j].D)
				wvec(w, f, mpcOpens[j].E)
			}
		}
	}

	s.mu.Lock()
	if p.Cfg.Mode == ModeNoRobust {
		for _, x := range bs.xShares {
			field.AddVec(f, s.acc, x[:p.kPrime])
			s.windowAddLocked(wid, x[:p.kPrime])
		}
		s.accCount += uint64(count)
	} else {
		s.batches[batchID] = bs
	}
	s.mu.Unlock()
	return w.b, nil
}

// handleRound2 consumes the opened SNIP masks and returns Round2 shares.
func (s *Server[Fd, E]) handleRound2(payload []byte) ([]byte, error) {
	p := s.pro
	f := p.Cfg.Field
	sys := p.snipSys()
	if sys == nil {
		return nil, errors.New("core: Round2 in no-robust mode")
	}
	r := &rbuf{b: payload}
	challID := r.u32()
	batchID := r.u64()
	s.mu.Lock()
	chSt := s.challenges[challID]
	bs := s.batches[batchID]
	s.mu.Unlock()
	if chSt == nil || bs == nil {
		return nil, fmt.Errorf("core: server %d: unknown batch %d", s.idx, batchID)
	}
	reps := sys.Reps
	if sys.M == 0 {
		reps = 0
	}
	opened := make([]*snip.Round1[E], bs.count)
	for j := range opened {
		opened[j] = &snip.Round1[E]{D: rvec(r, f, reps), E: rvec(r, f, reps)}
	}
	if r.err != nil || !r.done() {
		return nil, errTruncated
	}
	w := &wbuf{}
	if bs.snipBatch != nil {
		// Batch-verified state still answers the per-submission round with
		// bit-identical values (Single reproduces the legacy Round2).
		bv := chSt.ev.Batch()
		if err := bv.SetOpened(bs.snipBatch, opened, p.Cfg.Servers); err != nil {
			return nil, err
		}
		for j := 0; j < bs.count; j++ {
			r2, err := bv.Single(bs.snipBatch, j)
			if err != nil {
				return nil, err
			}
			wvec(w, f, r2.Sigma)
			wvec(w, f, []E{r2.Tau})
		}
		return w.b, nil
	}
	for j := 0; j < bs.count; j++ {
		r2 := chSt.ev.Round2(bs.snipSt[j], opened[j], p.Cfg.Servers)
		wvec(w, f, r2.Sigma)
		wvec(w, f, []E{r2.Tau})
	}
	return w.b, nil
}

// handleRound2Batch consumes the opened SNIP masks (on the first probe of a
// batch) and answers random-linear-combination probes over submission
// ranges. The leader probes [0, count) once for the common all-honest case
// and bisects with fresh λ seeds only when a range fails.
func (s *Server[Fd, E]) handleRound2Batch(payload []byte) ([]byte, error) {
	p := s.pro
	f := p.Cfg.Field
	sys := p.snipSys()
	if sys == nil {
		return nil, errors.New("core: Round2Batch in no-robust mode")
	}
	r := &rbuf{b: payload}
	challID := r.u32()
	batchID := r.u64()
	hasOpened := r.u8()
	s.mu.Lock()
	chSt := s.challenges[challID]
	bs := s.batches[batchID]
	s.mu.Unlock()
	if chSt == nil || bs == nil {
		return nil, fmt.Errorf("core: server %d: unknown batch %d", s.idx, batchID)
	}
	if bs.snipBatch == nil {
		return nil, errors.New("core: Round2Batch on a batch verified per-submission")
	}
	bv := chSt.ev.Batch()
	if hasOpened == 1 {
		reps := sys.Reps
		if sys.M == 0 {
			reps = 0
		}
		opened := make([]*snip.Round1[E], bs.count)
		for j := range opened {
			opened[j] = &snip.Round1[E]{D: rvec(r, f, reps), E: rvec(r, f, reps)}
		}
		if r.err != nil {
			return nil, errTruncated
		}
		if err := bv.SetOpened(bs.snipBatch, opened, p.Cfg.Servers); err != nil {
			return nil, err
		}
	}
	seed := r.blob()
	lo := int(int32(r.u32()))
	hi := int(int32(r.u32()))
	if r.err != nil || !r.done() || len(seed) != prg.SeedSize {
		return nil, errTruncated
	}
	if lo < 0 || hi > bs.count || lo >= hi {
		return nil, snip.ErrBatchState
	}
	var ps prg.Seed
	copy(ps[:], seed)
	lambda := snip.RLCCoeffs(f, ps, hi-lo)
	r2, err := bv.Combined(bs.snipBatch, lambda, lo, hi)
	if err != nil {
		return nil, err
	}
	w := &wbuf{}
	wvec(w, f, r2.Sigma)
	wvec(w, f, []E{r2.Tau})
	return w.b, nil
}

// handleMPCRound advances the cooperative Valid evaluation by one round
// (ModeMPC only). The response carries, per submission, either the next
// openings or — once evaluation finishes — the Valid assertion share.
func (s *Server[Fd, E]) handleMPCRound(payload []byte) ([]byte, error) {
	p := s.pro
	f := p.Cfg.Field
	if p.Cfg.Mode != ModeMPC {
		return nil, errors.New("core: MPCRound outside MPC mode")
	}
	r := &rbuf{b: payload}
	challID := r.u32()
	batchID := r.u64()
	s.mu.Lock()
	chSt := s.challenges[challID]
	bs := s.batches[batchID]
	s.mu.Unlock()
	if chSt == nil || bs == nil {
		return nil, fmt.Errorf("core: server %d: unknown batch %d", s.idx, batchID)
	}
	if bs.validTaus == nil {
		bs.validTaus = make([]E, bs.count)
	}
	w := &wbuf{}
	for j := 0; j < bs.count; j++ {
		n := int(r.u32())
		if r.err != nil {
			return nil, errTruncated
		}
		opened := &mpc.Open[E]{D: rvec(r, f, n), E: rvec(r, f, n)}
		if r.err != nil {
			return nil, errTruncated
		}
		sess := bs.mpcSess[j]
		next, done, err := sess.Step(opened)
		if err != nil {
			return nil, err
		}
		if done {
			tau, err := sess.TauShare(chSt.ch.validRho)
			if err != nil {
				return nil, err
			}
			bs.validTaus[j] = tau
			w.u8(1)
			wvec(w, f, []E{tau})
		} else {
			w.u8(0)
			w.u32(uint32(len(next.D)))
			wvec(w, f, next.D)
			wvec(w, f, next.E)
		}
	}
	if !r.done() {
		return nil, errTruncated
	}
	return w.b, nil
}

// handleFinish applies the leader's accept decisions: accepted submissions'
// truncated shares enter the accumulator, and the batch state is dropped.
func (s *Server[Fd, E]) handleFinish(payload []byte) ([]byte, error) {
	p := s.pro
	f := p.Cfg.Field
	r := &rbuf{b: payload}
	batchID := r.u64()
	bitmap := r.blob()
	if r.err != nil {
		return nil, errTruncated
	}
	// Optional trailing collection-window stamp (window.go); absent means
	// unwindowed, and the per-window path stays dormant.
	wid := uint64(0)
	if r.off < len(r.b) {
		wid = r.u64()
	}
	if !r.done() {
		return nil, errTruncated
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	bs := s.batches[batchID]
	if bs == nil {
		return nil, fmt.Errorf("core: server %d: finish for unknown batch %d", s.idx, batchID)
	}
	delete(s.batches, batchID)
	if len(bitmap) != (bs.count+7)/8 {
		return nil, errTruncated
	}
	for j := 0; j < bs.count; j++ {
		if bitmap[j/8]&(1<<uint(j%8)) == 0 {
			continue
		}
		field.AddVec(f, s.acc, bs.xShares[j][:p.kPrime])
		s.accCount++
		s.windowAddLocked(wid, bs.xShares[j][:p.kPrime])
	}
	return nil, nil
}

// handleAggregate publishes the accumulator (Section 3, step "Publish").
func (s *Server[Fd, E]) handleAggregate() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := &wbuf{}
	w.u64(s.accCount)
	wvec(w, s.pro.Cfg.Field, s.acc)
	return w.b, nil
}

// AddNoise lets a deployment add differential-privacy noise shares to the
// local accumulator before publishing (Section 7): each server adds its own
// share so no single server ever sees the un-noised total.
func (s *Server[Fd, E]) AddNoise(noise []E) error {
	if len(noise) != s.pro.kPrime {
		return errors.New("core: noise vector length mismatch")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	field.AddVec(s.pro.Cfg.Field, s.acc, noise)
	return nil
}
