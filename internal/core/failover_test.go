package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"time"

	"prio/internal/afe"
	"prio/internal/field"
	"prio/internal/transport"
)

// faultPeer wraps a Peer and fails selected calls — the in-process stand-in
// for a server that dies mid-round.
type faultPeer struct {
	transport.Peer
	fail func(msgType byte) error
}

func (p *faultPeer) Call(msgType byte, payload []byte) ([]byte, error) {
	if err := p.fail(msgType); err != nil {
		return nil, err
	}
	return p.Peer.Call(msgType, payload)
}

// leaderOn builds a leader on cl.Servers[idx] whose peer for each server j
// is optionally wrapped by wrap(j, peer).
func leaderOn(t *testing.T, cl *Cluster[field.F64, uint64], idx int, wrap func(j int, p transport.Peer) transport.Peer) *Leader[field.F64, uint64] {
	t.Helper()
	peers := make([]transport.Peer, len(cl.Servers))
	for j, srv := range cl.Servers {
		var p transport.Peer
		if j == idx {
			p = &transport.LoopbackPeer{Handler: srv.Handle}
		} else {
			p = transport.NewMemPeer(srv.Handle)
		}
		if wrap != nil {
			p = wrap(j, p)
		}
		peers[j] = p
	}
	ld, err := NewLeaderSession(cl.Servers[idx], peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	return ld
}

// mixedBatch builds a batch of honest and invalid submissions plus the
// expected accept set and honest sum.
func mixedBatch(t *testing.T, client *Client[field.F64, uint64], scheme *afe.Sum[field.F64, uint64], n int) (subs []*Submission, want []bool, sum uint64) {
	t.Helper()
	f := field.NewF64()
	for i := 0; i < n; i++ {
		if i%4 == 3 {
			evil := make([]uint64, scheme.K())
			evil[0] = f.FromUint64(uint64(500 + i))
			sub, err := client.BuildSubmission(evil)
			if err != nil {
				t.Fatal(err)
			}
			subs = append(subs, sub)
			want = append(want, false)
			continue
		}
		v := uint64(i)
		sum += v
		enc, err := scheme.Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		sub, err := client.BuildSubmission(enc)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub)
		want = append(want, true)
	}
	return subs, want, sum
}

// TestBatchRerunIdempotenceAcrossLeaders is the failover correctness core:
// a batch interrupted after Round1 (a peer dies during round 2) and then
// re-run by a *different* leader server must produce exactly the accept set
// a clean run would, with every accepted submission counted once in the
// accumulators — no double counting from the aborted attempt, no losses.
func TestBatchRerunIdempotenceAcrossLeaders(t *testing.T) {
	_, cl, client, scheme := newSumDeployment(t, ModeSNIP, 3, true)
	subs, wantAccept, wantSum := mixedBatch(t, client, scheme, 12)

	// Leader on server 0 whose link to server 2 dies in round 2: Round1 has
	// seeded batch state on servers 0 and 1 by then, so this is an
	// interruption mid-verification, not a clean refusal.
	var failing atomic.Bool
	failing.Store(true)
	lead0 := leaderOn(t, cl, 0, func(j int, p transport.Peer) transport.Peer {
		if j != 2 {
			return p
		}
		return &faultPeer{Peer: p, fail: func(msgType byte) error {
			if failing.Load() && (msgType == MsgRound2Batch || msgType == MsgRound2) {
				return errors.New("injected: peer lost mid-round")
			}
			return nil
		}}
	})
	if _, err := lead0.ProcessBatch(subs); err == nil {
		t.Fatal("interrupted batch did not error")
	}
	// The abort finish released every server's batch state and accumulated
	// nothing (regression guard for the re-run below being truly fresh).
	for i, srv := range cl.Servers {
		srv.mu.Lock()
		leaked, acc := len(srv.batches), srv.accCount
		srv.mu.Unlock()
		if leaked != 0 {
			t.Fatalf("server %d holds %d batch states after interrupt", i, leaked)
		}
		if acc != 0 {
			t.Fatalf("server %d accumulated %d submissions from the aborted attempt", i, acc)
		}
	}

	// Re-run the identical batch on the next leader in rotation order.
	lead1 := leaderOn(t, cl, 1, nil)
	accepts, err := lead1.ProcessBatch(subs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range accepts {
		if accepts[i] != wantAccept[i] {
			t.Errorf("submission %d: accept=%v, want %v", i, accepts[i], wantAccept[i])
		}
	}
	agg, n, err := lead1.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	var wantCount uint64
	for _, w := range wantAccept {
		if w {
			wantCount++
		}
	}
	if n != wantCount {
		t.Fatalf("accumulators hold %d submissions, want %d", n, wantCount)
	}
	got, err := scheme.Decode(agg, int(n))
	if err != nil {
		t.Fatal(err)
	}
	if got.Uint64() != wantSum {
		t.Errorf("aggregate = %v, want %d (double count or loss across the re-run)", got, wantSum)
	}
}

// TestReleaseLeaderDropsAbandonedState covers the case the abort path cannot
// reach: the dying leader's finish also fails toward a server, stranding
// batch and challenge state there under the dead leader's ID namespace.
// ReleaseLeader (wired to the cluster's OnPeerDown) must drop exactly that
// namespace and leave other leaders' state alone.
func TestReleaseLeaderDropsAbandonedState(t *testing.T) {
	_, cl, client, scheme := newSumDeployment(t, ModeSNIP, 3, true)
	subs, _, _ := mixedBatch(t, client, scheme, 4)

	// Server 2 stops hearing from leader 0 entirely after Round1: round 2
	// AND the abort finish fail, so server 2 keeps the batch state.
	var failing atomic.Bool
	failing.Store(true)
	lead0 := leaderOn(t, cl, 0, func(j int, p transport.Peer) transport.Peer {
		if j != 2 {
			return p
		}
		return &faultPeer{Peer: p, fail: func(msgType byte) error {
			if failing.Load() && msgType != MsgRound1 && msgType != MsgSetChallenge {
				return errors.New("injected: leader unreachable")
			}
			return nil
		}}
	})
	if _, err := lead0.ProcessBatch(subs); err == nil {
		t.Fatal("interrupted batch did not error")
	}
	srv2 := cl.Servers[2]
	srv2.mu.Lock()
	leaked := len(srv2.batches)
	srv2.mu.Unlock()
	if leaked == 0 {
		t.Fatal("expected stranded batch state on server 2")
	}

	// A different leader's concurrent state must survive the release.
	lead1 := leaderOn(t, cl, 1, nil)
	if _, err := lead1.ProcessBatch(subs[:2]); err != nil {
		t.Fatal(err)
	}

	batches, challenges := srv2.ReleaseLeader(0)
	if batches != leaked || challenges == 0 {
		t.Errorf("released %d batches / %d challenges, want %d / >0", batches, challenges, leaked)
	}
	srv2.mu.Lock()
	rest := len(srv2.batches)
	haveOther := false
	for id := range srv2.challenges {
		if int(id>>24) == 1 {
			haveOther = true
		}
		if int(id>>24) == 0 {
			t.Errorf("challenge %#x from leader 0 survived release", id)
		}
	}
	srv2.mu.Unlock()
	if rest != 0 {
		t.Errorf("%d batch states survived release", rest)
	}
	if !haveOther {
		t.Error("leader 1's challenge state was dropped too")
	}

	// Releasing an idle leader is a no-op, and server 2 still verifies for
	// live leaders afterwards.
	if b, c := srv2.ReleaseLeader(0); b != 0 || c != 0 {
		t.Errorf("second release found %d/%d", b, c)
	}
	if _, err := lead1.ProcessBatch(subs[:2]); err != nil {
		t.Errorf("server 2 broken after release: %v", err)
	}
}

// TestPipelineRetriesTransientFailure: with Retries configured, a batch that
// fails its first attempt (peer briefly unreachable) is re-run in place and
// its submissions decided normally — Retried/FailedOver count the event,
// Failed stays zero, and the accumulators agree with the shard tallies.
func TestPipelineRetriesTransientFailure(t *testing.T) {
	_, cl, client, scheme := newSumDeployment(t, ModeSNIP, 3, true)
	var calls atomic.Int64
	lead := leaderOn(t, cl, 0, func(j int, p transport.Peer) transport.Peer {
		if j != 1 {
			return p
		}
		return &faultPeer{Peer: p, fail: func(msgType byte) error {
			// The first Round1 this peer sees fails; everything after works.
			if msgType == MsgRound1 && calls.Add(1) == 1 {
				return errors.New("injected: transient peer outage")
			}
			return nil
		}}
	})
	pl, err := NewPipeline(lead, PipelineConfig{Shards: 1, MaxBatch: 4, Retries: 2, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	oks := make([]bool, n)
	for i := 0; i < n; i++ {
		enc, err := scheme.Encode(1)
		if err != nil {
			t.Fatal(err)
		}
		sub, err := client.BuildSubmission(enc)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, sub *Submission) {
			defer wg.Done()
			oks[i], errs[i] = pl.SubmitWait(sub)
		}(i, sub)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("submission %d failed: %v", i, errs[i])
		}
		if !oks[i] {
			t.Errorf("submission %d rejected", i)
		}
	}
	st := pl.Stats()
	if st.Failed != 0 {
		t.Errorf("Failed = %d after successful retry", st.Failed)
	}
	if st.FailedOver == 0 || st.Retried == 0 {
		t.Errorf("retry not counted: FailedOver=%d Retried=%d", st.FailedOver, st.Retried)
	}
	if st.Accepted != n {
		t.Errorf("Accepted = %d, want %d", st.Accepted, n)
	}
	if _, cnt, err := pl.Aggregate(); err != nil || cnt != n {
		t.Errorf("aggregate count %d err %v, want %d submissions counted once", cnt, err, n)
	}
	if err := pl.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}

// TestPipelineRetryExhaustion: a permanently dead peer exhausts the retry
// budget and the batch fails with every attempt counted.
func TestPipelineRetryExhaustion(t *testing.T) {
	_, cl, client, scheme := newSumDeployment(t, ModeSNIP, 3, true)
	lead := leaderOn(t, cl, 0, func(j int, p transport.Peer) transport.Peer {
		if j != 2 {
			return p
		}
		return &faultPeer{Peer: p, fail: func(msgType byte) error {
			return errors.New("injected: peer gone for good")
		}}
	})
	pl, err := NewPipeline(lead, PipelineConfig{Shards: 1, MaxBatch: 4, Retries: 2, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	enc, _ := scheme.Encode(1)
	sub, err := client.BuildSubmission(enc)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := pl.SubmitWait(sub); err == nil || ok {
		t.Fatalf("submission against dead peer: ok=%v err=%v", ok, err)
	}
	st := pl.Stats()
	if st.Failed != 1 || st.FailedOver != 2 || st.Retried != 2 {
		t.Errorf("stats = %+v, want Failed=1 FailedOver=2 Retried=2", st)
	}
	pl.Close()
}
