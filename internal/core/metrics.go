package core

import (
	"time"

	"prio/internal/telemetry"
)

// pipeMetrics is the verification pipeline's view into the telemetry
// registry: stage-duration histograms for every hop of the hot path and
// outcome counters matching ShardStats. One instance is shared by a
// Pipeline and all of its leader sessions; a nil *pipeMetrics (a Leader
// built outside a Pipeline) is a no-op everywhere.
type pipeMetrics struct {
	queueWait *telemetry.DurationHistogram // submit → shard pickup
	batchDur  *telemetry.DurationHistogram // whole ProcessBatch
	round1    *telemetry.DurationHistogram // MsgRound1 broadcast round-trip
	round2    *telemetry.DurationHistogram // SNIP round 2 (batch probes or legacy), all probes
	finish    *telemetry.DurationHistogram // MsgFinish commit broadcast
	batchSize *telemetry.Histogram

	batches  *telemetry.Counter
	accepted *telemetry.Counter
	rejected *telemetry.Counter
	failed   *telemetry.Counter
	refused  *telemetry.Counter
	retried  *telemetry.Counter
	reruns   *telemetry.Counter

	bisectProbes *telemetry.Counter // extra Round2Batch probes beyond the first
	fallbacks    *telemetry.Counter // batches whose combined check failed
}

// newPipeMetrics registers the pipeline's metric families in reg.
func newPipeMetrics(reg *telemetry.Registry) *pipeMetrics {
	outcome := func(v string) telemetry.Label { return telemetry.Label{Key: "outcome", Value: v} }
	return &pipeMetrics{
		queueWait: reg.Duration("prio_pipeline_queue_wait_seconds",
			"time a submission spends in the pipeline queue before a shard picks it up"),
		batchDur: reg.Duration("prio_verify_batch_seconds",
			"wall time of one ProcessBatch (all verification rounds)"),
		round1: reg.Duration("prio_verify_round1_seconds",
			"MsgRound1 broadcast round-trip (bundle relay + local circuit pass)"),
		round2: reg.Duration("prio_verify_round2_seconds",
			"SNIP round-2 phase: combined probe plus any bisect probes (or the legacy exchange)"),
		finish: reg.Duration("prio_verify_finish_seconds",
			"MsgFinish commit broadcast (accept bitmap to accumulators)"),
		batchSize: reg.Histogram("prio_pipeline_batch_size",
			"submissions per verification round (adaptive batching fill)"),
		batches: reg.Counter("prio_verify_batches_total",
			"verification rounds driven"),
		accepted: reg.Counter("prio_pipeline_submissions_total",
			"submissions by decision", outcome("accepted")),
		rejected: reg.Counter("prio_pipeline_submissions_total",
			"submissions by decision", outcome("rejected")),
		failed: reg.Counter("prio_pipeline_submissions_total",
			"submissions by decision", outcome("failed")),
		refused: reg.Counter("prio_pipeline_submissions_total",
			"submissions by decision", outcome("refused")),
		retried: reg.Counter("prio_pipeline_retried_total",
			"submissions re-run after a batch-level failure (failover re-queue)"),
		reruns: reg.Counter("prio_verify_batch_reruns_total",
			"failed verification batches re-run under a fresh batch ID"),
		bisectProbes: reg.Counter("prio_verify_bisect_probes_total",
			"extra Round2Batch probes issued by the bisecting fallback"),
		fallbacks: reg.Counter("prio_verify_batch_fallback_total",
			"batches whose combined RLC check failed, triggering bisection"),
	}
}

// start returns the wall clock for a stage timing, or the zero time when
// metrics are absent or compiled out (Since then records nothing).
func (m *pipeMetrics) start() time.Time {
	if m == nil || !telemetry.Enabled {
		return time.Time{}
	}
	return time.Now()
}

func (m *pipeMetrics) observeRound1(t0 time.Time) {
	if m == nil {
		return
	}
	m.round1.Since(t0)
}

func (m *pipeMetrics) observeRound2(t0 time.Time) {
	if m == nil {
		return
	}
	m.round2.Since(t0)
}

func (m *pipeMetrics) observeFinish(t0 time.Time) {
	if m == nil {
		return
	}
	m.finish.Since(t0)
}

// countBisect records one batch's probe tally after its round-2 phase.
func (m *pipeMetrics) countBisect(probes int) {
	if m == nil || probes <= 1 {
		return
	}
	m.fallbacks.Inc()
	m.bisectProbes.Add(uint64(probes - 1))
}
