package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"prio/internal/afe"
	"prio/internal/field"
	"prio/internal/sealbox"
	"prio/internal/transport"
)

// sumSequential computes the reference aggregate for values with a fresh
// serial deployment.
func sumSequential(t *testing.T, mode Mode, servers int, values []uint64) uint64 {
	t.Helper()
	_, cl, client, scheme := newSumDeployment(t, mode, servers, true)
	var subs []*Submission
	for _, v := range values {
		enc, err := scheme.Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		sub, err := client.BuildSubmission(enc)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub)
	}
	if _, err := cl.Leader.ProcessBatch(subs); err != nil {
		t.Fatal(err)
	}
	agg, n, err := cl.Leader.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(values)) {
		t.Fatalf("sequential accepted %d of %d", n, len(values))
	}
	got, err := scheme.Decode(agg, int(n))
	if err != nil {
		t.Fatal(err)
	}
	return got.Uint64()
}

// TestConcurrentLeadersMatchSequential runs several leader sessions against
// one shared server set from concurrent goroutines and checks the merged
// aggregate equals what a single serial leader computes — the protocol-level
// guarantee (Appendix I) behind the pipeline. Run under -race.
func TestConcurrentLeadersMatchSequential(t *testing.T) {
	const (
		leaders   = 4
		perLeader = 6
		servers   = 3
	)
	for _, mode := range []Mode{ModeSNIP, ModeMPC, ModeNoRobust} {
		t.Run(mode.String(), func(t *testing.T) {
			_, cl, client, scheme := newSumDeployment(t, mode, servers, true)

			// ≥4 concurrent leader sessions sharing cl's server set.
			var sessions []*Leader[field.F64, uint64]
			for i := 0; i < leaders; i++ {
				ld, err := NewLeaderSession(cl.Leader.Server, cl.Leader.peers, i+1)
				if err != nil {
					t.Fatal(err)
				}
				sessions = append(sessions, ld)
			}

			var values []uint64
			for i := 0; i < leaders*perLeader; i++ {
				values = append(values, uint64(i*7%256))
			}
			var want uint64
			for _, v := range values {
				want += v
			}
			subs := make([]*Submission, len(values))
			for i, v := range values {
				enc, err := scheme.Encode(v)
				if err != nil {
					t.Fatal(err)
				}
				subs[i], err = client.BuildSubmission(enc)
				if err != nil {
					t.Fatal(err)
				}
			}

			var wg sync.WaitGroup
			errs := make([]error, leaders)
			for i, ld := range sessions {
				wg.Add(1)
				go func(i int, ld *Leader[field.F64, uint64]) {
					defer wg.Done()
					// Each session verifies its slice in two batches so
					// rotation and batching interleave across sessions.
					slice := subs[i*perLeader : (i+1)*perLeader]
					for off := 0; off < len(slice); off += 2 {
						accepts, err := ld.ProcessBatch(slice[off : off+2])
						if err != nil {
							errs[i] = err
							return
						}
						for _, ok := range accepts {
							if !ok {
								t.Errorf("leader %d: honest submission rejected", i)
							}
						}
					}
				}(i, ld)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("leader %d: %v", i, err)
				}
			}

			agg, n, err := sessions[0].Aggregate()
			if err != nil {
				t.Fatal(err)
			}
			if n != uint64(len(values)) {
				t.Fatalf("accepted %d of %d", n, len(values))
			}
			got, err := scheme.Decode(agg, int(n))
			if err != nil {
				t.Fatal(err)
			}
			if got.Uint64() != want {
				t.Errorf("concurrent aggregate = %d, want %d", got.Uint64(), want)
			}
			if seq := sumSequential(t, mode, servers, values); seq != got.Uint64() {
				t.Errorf("concurrent aggregate %d != sequential %d", got.Uint64(), seq)
			}
		})
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	for _, mode := range []Mode{ModeSNIP, ModeMPC, ModeNoRobust} {
		t.Run(mode.String(), func(t *testing.T) {
			_, cl, client, scheme := newSumDeployment(t, mode, 3, true)
			pl, err := NewPipeline(cl.Leader, PipelineConfig{Shards: 4, MaxBatch: 4})
			if err != nil {
				t.Fatal(err)
			}

			const n = 40
			var want uint64
			for i := 0; i < n; i++ {
				v := uint64(i % 250)
				want += v
				enc, err := scheme.Encode(v)
				if err != nil {
					t.Fatal(err)
				}
				sub, err := client.BuildSubmission(enc)
				if err != nil {
					t.Fatal(err)
				}
				if err := pl.Submit(sub); err != nil {
					t.Fatal(err)
				}
			}

			agg, count, err := pl.Aggregate()
			if err != nil {
				t.Fatal(err)
			}
			if count != n {
				t.Fatalf("accepted %d of %d", count, n)
			}
			got, err := scheme.Decode(agg, int(count))
			if err != nil {
				t.Fatal(err)
			}
			if got.Uint64() != want {
				t.Errorf("aggregate = %d, want %d", got.Uint64(), want)
			}

			st := pl.Stats()
			if st.Processed != n || st.Accepted != n || st.Rejected != 0 || st.Failed != 0 {
				t.Errorf("stats = %+v", st)
			}
			if err := pl.Close(); err != nil {
				t.Fatal(err)
			}
			if err := pl.Submit(nil); err == nil {
				t.Error("Submit after Close succeeded")
			}
		})
	}
}

// TestChallengeWindowWrapStaysInNamespace regresses the eviction arithmetic
// of handleSetChallenge: when a session's 16-bit challenge counter wraps,
// the window eviction must stay inside that session's namespace instead of
// deleting a neighbor's live challenge.
func TestChallengeWindowWrapStaysInNamespace(t *testing.T) {
	pro, cl, _, _ := newSumDeployment(t, ModeSNIP, 1, false)
	srv := cl.Servers[0]
	set := func(id uint32) {
		ch, err := pro.newChallenge()
		if err != nil {
			t.Fatal(err)
		}
		w := &wbuf{}
		w.u32(id)
		w.raw(pro.marshalChallenge(ch))
		if _, err := srv.handleSetChallenge(w.b); err != nil {
			t.Fatal(err)
		}
	}
	neighbor := uint32(0x0002FFFF) // session 2's newest challenge
	set(neighbor)
	set(0x00030000) // session 3 wraps its counter to 0…
	set(0x00030001) // …and rotates again: evicts 0x0003FFFF, not 0x0002FFFF
	srv.mu.Lock()
	_, ok := srv.challenges[neighbor]
	srv.mu.Unlock()
	if !ok {
		t.Error("session 3's wrap evicted session 2's live challenge")
	}
}

// TestFailedBatchReleasesServerState regresses the abort path: when a batch
// fails after Round1 seeded per-batch state on some servers, the leader's
// best-effort all-reject finish must release that state instead of leaking
// it (failed batches are a routine counted outcome under the pipeline).
func TestFailedBatchReleasesServerState(t *testing.T) {
	_, cl, client, scheme := newSumDeployment(t, ModeSNIP, 3, false)
	enc, err := scheme.Encode(3)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := client.BuildSubmission(enc)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt server 2's bundle: servers 0 and 1 complete Round1 and store
	// batch state; server 2 errors, failing the whole batch.
	sub.Bundles[2] = []byte{0x7F, 9, 9}
	if _, err := cl.Leader.ProcessBatch([]*Submission{sub}); err == nil {
		t.Fatal("corrupt bundle did not fail the batch")
	}
	for i, srv := range cl.Servers {
		srv.mu.Lock()
		n := len(srv.batches)
		srv.mu.Unlock()
		if n != 0 {
			t.Errorf("server %d leaked %d batch states after failed batch", i, n)
		}
	}
	if srv := cl.Servers[0]; srv.accCount != 0 {
		t.Errorf("abort finish accumulated %d submissions", srv.accCount)
	}
}

// TestPipelineSubmitWait checks the per-submission decision path, including
// a malicious submission rejected mid-stream.
func TestPipelineSubmitWait(t *testing.T) {
	f := field.NewF64()
	_, cl, client, scheme := newSumDeployment(t, ModeSNIP, 3, true)
	pl, err := NewPipeline(cl.Leader, PipelineConfig{Shards: 3, MaxBatch: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Close()

	var wg sync.WaitGroup
	const honest = 9
	results := make([]bool, honest+1)
	rerrs := make([]error, honest+1)
	for i := 0; i < honest; i++ {
		enc, err := scheme.Encode(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		sub, err := client.BuildSubmission(enc)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, sub *Submission) {
			defer wg.Done()
			results[i], rerrs[i] = pl.SubmitWait(sub)
		}(i, sub)
	}
	evil := make([]uint64, scheme.K())
	evil[0] = f.FromUint64(1 << 40)
	evilSub, err := client.BuildSubmission(evil)
	if err != nil {
		t.Fatal(err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[honest], rerrs[honest] = pl.SubmitWait(evilSub)
	}()
	wg.Wait()

	for i := 0; i < honest; i++ {
		if rerrs[i] != nil {
			t.Fatalf("submission %d: %v", i, rerrs[i])
		}
		if !results[i] {
			t.Errorf("honest submission %d rejected", i)
		}
	}
	if rerrs[honest] != nil {
		t.Fatalf("evil submission: %v", rerrs[honest])
	}
	if results[honest] {
		t.Error("malicious submission accepted")
	}
	st := pl.Stats()
	if st.Accepted != honest || st.Rejected != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestPipelineOverCoalescedTCP runs the pipeline against real TCP servers
// with coalescing peers — the deployment shape of cmd/prio-server.
func TestPipelineOverCoalescedTCP(t *testing.T) {
	const nServers = 3
	f := field.NewF64()
	scheme := afe.NewSum(f, 8)
	pro, err := NewProtocol(Config[field.F64, uint64]{
		Field:    f,
		Scheme:   scheme,
		Servers:  nServers,
		Mode:     ModeSNIP,
		SnipReps: 2,
		Seal:     true,
	})
	if err != nil {
		t.Fatal(err)
	}

	servers := make([]*Server[field.F64, uint64], nServers)
	addrs := make([]string, nServers)
	for i := range servers {
		srv, err := NewServer(pro, i, nil)
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
		ln, err := transport.Listen("127.0.0.1:0", nil, srv.Handle)
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		addrs[i] = ln.Addr().String()
	}

	peers := make([]transport.Peer, nServers)
	for i, addr := range addrs {
		if i == 0 {
			peers[i] = &transport.LoopbackPeer{Handler: servers[0].Handle}
			continue
		}
		tp, err := transport.Dial(addr, nil)
		if err != nil {
			t.Fatal(err)
		}
		c := transport.NewCoalescer(tp)
		defer c.Close()
		peers[i] = c
	}
	leader, err := NewLeader(servers[0], peers)
	if err != nil {
		t.Fatal(err)
	}

	keys := make([]*sealbox.PublicKey, nServers)
	for i, srv := range servers {
		keys[i] = srv.PublicKey()
	}
	client, err := NewClient(pro, keys, nil)
	if err != nil {
		t.Fatal(err)
	}

	pl, err := NewPipeline(leader, PipelineConfig{Shards: 4, MaxBatch: 3})
	if err != nil {
		t.Fatal(err)
	}

	const n = 24
	var want uint64
	for i := 0; i < n; i++ {
		v := uint64(i * 5 % 256)
		want += v
		enc, err := scheme.Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		sub, err := client.BuildSubmission(enc)
		if err != nil {
			t.Fatal(err)
		}
		if err := pl.Submit(sub); err != nil {
			t.Fatal(err)
		}
	}
	agg, count, err := pl.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Close(); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("accepted %d of %d", count, n)
	}
	got, err := scheme.Decode(agg, int(count))
	if err != nil {
		t.Fatal(err)
	}
	if got.Uint64() != want {
		t.Errorf("aggregate = %d, want %d", got.Uint64(), want)
	}
}

// TestTrySubmitRefused exercises the non-blocking intake edge: with the
// single shard wedged mid-Round1 and a two-slot queue, TrySubmitFunc must
// refuse the overflow (counted, never decided) while everything it accepted
// is still verified once the shard unwedges.
func TestTrySubmitRefused(t *testing.T) {
	_, cl, client, scheme := newSumDeployment(t, ModeSNIP, 2, false)
	gate := make(chan struct{})
	gated := func(h transport.Handler) transport.Handler {
		return func(msgType byte, payload []byte) ([]byte, error) {
			if msgType == MsgRound1 {
				<-gate
			}
			return h(msgType, payload)
		}
	}
	peers := []transport.Peer{
		&transport.LoopbackPeer{Handler: gated(cl.Servers[0].Handle)},
		transport.NewMemPeer(gated(cl.Servers[1].Handle)),
	}
	ld, err := NewLeader(cl.Servers[0], peers)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPipeline(ld, PipelineConfig{Shards: 1, MaxBatch: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}

	const n = 6
	var decided sync.WaitGroup
	var accepted int64
	enq := 0
	for i := 0; i < n; i++ {
		enc, err := scheme.Encode(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		sub, err := client.BuildSubmission(enc)
		if err != nil {
			t.Fatal(err)
		}
		decided.Add(1)
		ok, err := pl.TrySubmitFunc(sub, func(r SubmitResult) {
			if r.Err == nil && r.Accepted {
				atomic.AddInt64(&accepted, 1)
			}
			decided.Done()
		})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			decided.Done() // refused: the callback never runs
		} else {
			enq++
		}
	}
	// The shard holds one submission and the queue two more, so at least
	// three of the six attempts must have been refused.
	if enq > 3 {
		t.Fatalf("enqueued %d submissions past a wedged 1-shard/2-slot pipeline", enq)
	}
	if st := pl.Stats(); st.Refused != uint64(n-enq) {
		t.Errorf("Refused = %d, want %d", st.Refused, n-enq)
	}

	close(gate)
	pl.Drain()
	decided.Wait()
	st := pl.Stats()
	if st.Accepted != uint64(enq) || atomic.LoadInt64(&accepted) != int64(enq) {
		t.Errorf("accepted %d (callbacks %d), want %d", st.Accepted, accepted, enq)
	}
	if st.Refused != uint64(n-enq) || st.Failed != 0 {
		t.Errorf("stats = %+v", st)
	}
	if err := pl.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := pl.TrySubmitFunc(nil, nil); err == nil {
		t.Error("TrySubmitFunc after Close succeeded")
	}
}

// TestChallengePrefetchRotation drives many rotations through one leader
// with a tiny challenge window, so nearly every rotation adopts a challenge
// that was generated and broadcast off-path. The aggregate must stay exact.
func TestChallengePrefetchRotation(t *testing.T) {
	f := field.NewF64()
	scheme := afe.NewSum(f, 8)
	pro, err := NewProtocol(Config[field.F64, uint64]{
		Field:          f,
		Scheme:         scheme,
		Servers:        3,
		Mode:           ModeSNIP,
		SnipReps:       1,
		ChallengeEvery: 2, // rotate on every 2-submission batch
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewLocalCluster(pro)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(pro, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	total := 0
	for batch := 0; batch < 12; batch++ {
		var subs []*Submission
		for i := 0; i < 2; i++ {
			v := uint64((batch*31 + i) % 256)
			want += v
			total++
			enc, err := scheme.Encode(v)
			if err != nil {
				t.Fatal(err)
			}
			sub, err := client.BuildSubmission(enc)
			if err != nil {
				t.Fatal(err)
			}
			subs = append(subs, sub)
		}
		accepts, err := cl.Leader.ProcessBatch(subs)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		for i, ok := range accepts {
			if !ok {
				t.Fatalf("batch %d: honest submission %d rejected", batch, i)
			}
		}
	}
	agg, n, err := cl.Leader.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(total) {
		t.Fatalf("count = %d, want %d", n, total)
	}
	got, err := scheme.Decode(agg, int(n))
	if err != nil {
		t.Fatal(err)
	}
	if got.Uint64() != want {
		t.Errorf("aggregate = %v, want %d", got, want)
	}
}
