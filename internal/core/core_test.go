package core

import (
	"testing"

	"prio/internal/afe"
	"prio/internal/field"
)

// newSumDeployment builds a local cluster summing 8-bit integers.
func newSumDeployment(t *testing.T, mode Mode, servers int, seal bool) (*Protocol[field.F64, uint64], *Cluster[field.F64, uint64], *Client[field.F64, uint64], *afe.Sum[field.F64, uint64]) {
	t.Helper()
	f := field.NewF64()
	scheme := afe.NewSum(f, 8)
	pro, err := NewProtocol(Config[field.F64, uint64]{
		Field:    f,
		Scheme:   scheme,
		Servers:  servers,
		Mode:     mode,
		SnipReps: 2,
		Seal:     seal,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewLocalCluster(pro)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(pro, cl.PublicKeys(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return pro, cl, client, scheme
}

func TestEndToEndAllModes(t *testing.T) {
	for _, mode := range []Mode{ModeNoRobust, ModeSNIP, ModeMPC} {
		for _, servers := range []int{1, 2, 5} {
			t.Run(mode.String()+"/"+string(rune('0'+servers)), func(t *testing.T) {
				_, cl, client, scheme := newSumDeployment(t, mode, servers, true)
				values := []uint64{3, 200, 17, 0, 255, 42}
				want := uint64(0)
				var subs []*Submission
				for _, v := range values {
					want += v
					enc, err := scheme.Encode(v)
					if err != nil {
						t.Fatal(err)
					}
					sub, err := client.BuildSubmission(enc)
					if err != nil {
						t.Fatal(err)
					}
					subs = append(subs, sub)
				}
				accepts, err := cl.Leader.ProcessBatch(subs)
				if err != nil {
					t.Fatal(err)
				}
				for i, ok := range accepts {
					if !ok {
						t.Errorf("honest submission %d rejected", i)
					}
				}
				agg, n, err := cl.Leader.Aggregate()
				if err != nil {
					t.Fatal(err)
				}
				if n != uint64(len(values)) {
					t.Fatalf("accepted count = %d, want %d", n, len(values))
				}
				got, err := scheme.Decode(agg, int(n))
				if err != nil {
					t.Fatal(err)
				}
				if got.Uint64() != want {
					t.Errorf("aggregate = %v, want %d", got, want)
				}
			})
		}
	}
}

func TestMaliciousClientRejected(t *testing.T) {
	for _, mode := range []Mode{ModeSNIP, ModeMPC} {
		t.Run(mode.String(), func(t *testing.T) {
			f := field.NewF64()
			_, cl, client, scheme := newSumDeployment(t, mode, 3, true)
			// Honest submissions worth 10 total.
			var subs []*Submission
			for _, v := range []uint64{4, 6} {
				enc, _ := scheme.Encode(v)
				sub, err := client.BuildSubmission(enc)
				if err != nil {
					t.Fatal(err)
				}
				subs = append(subs, sub)
			}
			// Malicious: claim a huge value with bogus bits (the Section 1
			// attack). BuildSubmission shares whatever encoding it is given.
			evil := make([]uint64, scheme.K())
			evil[0] = f.FromUint64(1 << 40)
			evilSub, err := client.BuildSubmission(evil)
			if err != nil {
				t.Fatal(err)
			}
			subs = append(subs, evilSub)

			accepts, err := cl.Leader.ProcessBatch(subs)
			if err != nil {
				t.Fatal(err)
			}
			if !accepts[0] || !accepts[1] {
				t.Error("honest submissions rejected")
			}
			if accepts[2] {
				t.Error("malicious submission accepted")
			}
			agg, n, err := cl.Leader.Aggregate()
			if err != nil {
				t.Fatal(err)
			}
			if n != 2 {
				t.Fatalf("accepted count = %d, want 2", n)
			}
			got, err := scheme.Decode(agg, int(n))
			if err != nil {
				t.Fatal(err)
			}
			if got.Uint64() != 10 {
				t.Errorf("aggregate = %v, want 10 (malicious influence!)", got)
			}
		})
	}
}

func TestNoRobustModeIsVulnerable(t *testing.T) {
	// Negative control: without SNIPs the Section 1 attack succeeds. This
	// pins down that the robustness in the previous test comes from the
	// proofs, not from some accidental filtering.
	_, cl, client, scheme := newSumDeployment(t, ModeNoRobust, 3, true)
	enc, _ := scheme.Encode(1)
	sub, err := client.BuildSubmission(enc)
	if err != nil {
		t.Fatal(err)
	}
	evil := make([]uint64, scheme.K())
	evil[0] = 1 << 40
	evilSub, err := client.BuildSubmission(evil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Leader.ProcessBatch([]*Submission{sub, evilSub}); err != nil {
		t.Fatal(err)
	}
	agg, n, err := cl.Leader.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	got, err := scheme.Decode(agg, int(n))
	if err == nil && got.Uint64() == 1 {
		t.Error("no-robust mode unexpectedly filtered the attack")
	}
}

func TestMultipleBatchesAndChallengeRotation(t *testing.T) {
	f := field.NewF64()
	scheme := afe.NewSum(f, 4)
	pro, err := NewProtocol(Config[field.F64, uint64]{
		Field:          f,
		Scheme:         scheme,
		Servers:        3,
		Mode:           ModeSNIP,
		SnipReps:       1,
		Seal:           false,
		ChallengeEvery: 5, // force rotations
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewLocalCluster(pro)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(pro, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(0)
	total := 0
	for batch := 0; batch < 6; batch++ {
		var subs []*Submission
		for i := 0; i < 3; i++ {
			v := uint64((batch + i) % 16)
			want += v
			total++
			enc, _ := scheme.Encode(v)
			sub, err := client.BuildSubmission(enc)
			if err != nil {
				t.Fatal(err)
			}
			subs = append(subs, sub)
		}
		accepts, err := cl.Leader.ProcessBatch(subs)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		for i, ok := range accepts {
			if !ok {
				t.Fatalf("batch %d submission %d rejected", batch, i)
			}
		}
	}
	agg, n, err := cl.Leader.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(total) {
		t.Fatalf("count = %d, want %d", n, total)
	}
	got, err := scheme.Decode(agg, int(n))
	if err != nil {
		t.Fatal(err)
	}
	if got.Uint64() != want {
		t.Errorf("aggregate = %v, want %d", got, want)
	}
}

func TestResetClearsState(t *testing.T) {
	_, cl, client, scheme := newSumDeployment(t, ModeSNIP, 2, false)
	enc, _ := scheme.Encode(9)
	sub, _ := client.BuildSubmission(enc)
	if _, err := cl.Leader.ProcessBatch([]*Submission{sub}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Leader.Reset(); err != nil {
		t.Fatal(err)
	}
	agg, n, err := cl.Leader.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("count after reset = %d", n)
	}
	got, err := scheme.Decode(agg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sign() != 0 {
		t.Errorf("aggregate after reset = %v", got)
	}
}

func TestSubmissionMarshalRoundTrip(t *testing.T) {
	_, _, client, scheme := newSumDeployment(t, ModeSNIP, 4, true)
	enc, _ := scheme.Encode(100)
	sub, err := client.BuildSubmission(enc)
	if err != nil {
		t.Fatal(err)
	}
	b := sub.Marshal()
	back, err := UnmarshalSubmission(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Bundles) != len(sub.Bundles) {
		t.Fatal("bundle count mismatch")
	}
	for i := range back.Bundles {
		if string(back.Bundles[i]) != string(sub.Bundles[i]) {
			t.Errorf("bundle %d mismatch", i)
		}
	}
	if _, err := UnmarshalSubmission(b[:len(b)-1]); err == nil {
		t.Error("truncated submission accepted")
	}
	if _, err := UnmarshalSubmission(nil); err == nil {
		t.Error("empty submission accepted")
	}
}

func TestSealedBundleTamperRejected(t *testing.T) {
	_, cl, client, scheme := newSumDeployment(t, ModeSNIP, 3, true)
	enc, _ := scheme.Encode(5)
	sub, err := client.BuildSubmission(enc)
	if err != nil {
		t.Fatal(err)
	}
	sub.Bundles[1][10] ^= 0xFF
	if _, err := cl.Leader.ProcessBatch([]*Submission{sub}); err == nil {
		t.Error("tampered sealed bundle did not error")
	}
}

func TestBitVectorEndToEnd(t *testing.T) {
	// The Figure 4 workload: 0/1 vectors summed per position.
	f := field.NewF64()
	scheme := afe.NewBitVector(f, 64)
	pro, err := NewProtocol(Config[field.F64, uint64]{
		Field:   f,
		Scheme:  scheme,
		Servers: 5,
		Mode:    ModeSNIP,
		Seal:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewLocalCluster(pro)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(pro, cl.PublicKeys(), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]uint64, 64)
	var subs []*Submission
	for c := 0; c < 10; c++ {
		bits := make([]bool, 64)
		for i := range bits {
			bits[i] = (c+i)%3 == 0
			if bits[i] {
				want[i]++
			}
		}
		enc, err := scheme.Encode(bits)
		if err != nil {
			t.Fatal(err)
		}
		sub, err := client.BuildSubmission(enc)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub)
	}
	if _, err := cl.Leader.ProcessBatch(subs); err != nil {
		t.Fatal(err)
	}
	agg, n, err := cl.Leader.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	got, err := scheme.Decode(agg, int(n))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("position %d count = %d, want %d", i, got[i], want[i])
		}
	}
	// Non-leader servers exchanged only constant-size verification traffic:
	// far less than the submission itself (the Figure 6 property).
	st := cl.Leader.PeerStats(1)
	perSub := float64(st.BytesSent+st.BytesRecv) / 10
	if perSub > 4096 {
		t.Errorf("per-submission server traffic = %.0f bytes, expected small constant", perSub)
	}
}

func TestServerIndexValidation(t *testing.T) {
	f := field.NewF64()
	pro, err := NewProtocol(Config[field.F64, uint64]{
		Field:   f,
		Scheme:  afe.NewSum(f, 4),
		Servers: 2,
		Mode:    ModeSNIP,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewServer(pro, 2, nil); err == nil {
		t.Error("NewServer accepted out-of-range index")
	}
	if _, err := NewServer(pro, -1, nil); err == nil {
		t.Error("NewServer accepted negative index")
	}
}

func TestConfigValidation(t *testing.T) {
	f := field.NewF64()
	if _, err := NewProtocol(Config[field.F64, uint64]{Field: f, Scheme: afe.NewSum(f, 4), Servers: 0}); err == nil {
		t.Error("accepted zero servers")
	}
	if _, err := NewProtocol(Config[field.F64, uint64]{Field: f, Servers: 2}); err == nil {
		t.Error("accepted missing scheme")
	}
	if _, err := NewProtocol(Config[field.F64, uint64]{Field: f, Scheme: afe.NewSum(f, 4), Servers: 2, Mode: Mode(99)}); err == nil {
		t.Error("accepted unknown mode")
	}
}

func TestClientEncodingLengthValidation(t *testing.T) {
	_, _, client, _ := newSumDeployment(t, ModeSNIP, 2, false)
	if _, err := client.BuildSubmission([]uint64{1, 2}); err == nil {
		t.Error("BuildSubmission accepted wrong-length encoding")
	}
}
