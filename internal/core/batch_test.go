package core

import (
	"fmt"
	"math/rand"
	"testing"

	"prio/internal/afe"
	"prio/internal/field"
)

// diffScheme is one AFE entry of the differential matrix: a scheme plus an
// honest-encoding generator indexed by submission number.
type diffScheme struct {
	name   string
	scheme afe.Scheme[uint64]
	encode func(i int) ([]uint64, error)
}

// diffSchemes spans the AFE types and circuit shapes the engine supports:
// scalar bit-decomposition (Sum, Variance), wide parallel range checks
// (BitVector), one-hot (FreqCount), and multiplication-heavy cross terms
// (LinReg).
func diffSchemes(f field.F64) []diffScheme {
	sum := afe.NewSum(f, 4)
	bv := afe.NewBitVector(f, 8)
	fc := afe.NewFreqCount(f, 5)
	lr := afe.NewLinRegUniform(f, 2, 3)
	vr := afe.NewVariance(f, 3)
	return []diffScheme{
		{"sum4", sum, func(i int) ([]uint64, error) { return sum.Encode(uint64(i) % 16) }},
		{"bitvec8", bv, func(i int) ([]uint64, error) {
			bits := make([]bool, 8)
			for j := range bits {
				bits[j] = (i+j)%3 == 0
			}
			return bv.Encode(bits)
		}},
		{"freq5", fc, func(i int) ([]uint64, error) { return fc.Encode(i % 5) }},
		{"linreg2", lr, func(i int) ([]uint64, error) {
			return lr.Encode([]uint64{uint64(i) % 8, uint64(i*3) % 8}, uint64(i*5)%8)
		}},
		{"variance3", vr, func(i int) ([]uint64, error) { return vr.Encode(uint64(i) % 8) }},
	}
}

// newDiffCluster builds an unsealed local cluster for one side of the A/B.
func newDiffCluster(t *testing.T, scheme afe.Scheme[uint64], mode Mode, disableBatch bool) (*Cluster[field.F64, uint64], *Client[field.F64, uint64]) {
	t.Helper()
	f := field.NewF64()
	pro, err := NewProtocol(Config[field.F64, uint64]{
		Field:              f,
		Scheme:             scheme,
		Servers:            3,
		Mode:               mode,
		SnipReps:           1,
		DisableBatchVerify: disableBatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewLocalCluster(pro)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(pro, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return cl, client
}

// TestBatchVerifyDifferential is the core-level equivalence suite for the
// batched verification path: the same submission batch — with 0, 1, and N
// malicious submissions planted at deterministic random positions — is
// processed by a default (batched, bisecting) deployment and by a
// DisableBatchVerify (per-submission) deployment. Both must accept exactly
// the honest submissions, which also pins down that the bisect fallback
// rejects only the planted positions.
func TestBatchVerifyDifferential(t *testing.T) {
	f := field.NewF64()
	const b = 10
	rng := rand.New(rand.NewSource(0x5e1fc0de))
	for _, ds := range diffSchemes(f) {
		for _, mode := range []Mode{ModeSNIP, ModeMPC} {
			// MPC mode triples the per-case cost; the triple-wellformedness
			// SNIP shape is scheme-independent, so two shapes (M small and M
			// large) cover it.
			if mode == ModeMPC && ds.name != "sum4" && ds.name != "linreg2" {
				continue
			}
			for _, nBad := range []int{0, 1, b / 2} {
				name := fmt.Sprintf("%s/%s/bad%d", ds.name, mode, nBad)
				bad := make([]bool, b)
				for _, p := range rng.Perm(b)[:nBad] {
					bad[p] = true
				}
				t.Run(name, func(t *testing.T) {
					clBatch, client := newDiffCluster(t, ds.scheme, mode, false)
					clLegacy, _ := newDiffCluster(t, ds.scheme, mode, true)
					subs := make([]*Submission, b)
					for i := 0; i < b; i++ {
						enc, err := ds.encode(i)
						if err != nil {
							t.Fatal(err)
						}
						if bad[i] {
							// Out-of-range first element: every scheme here
							// constrains it to {0, 1} (a bit or a one-hot
							// entry), so Valid must reject this.
							enc[0] = f.Add(enc[0], f.FromUint64(1<<40))
						}
						if subs[i], err = client.BuildSubmission(enc); err != nil {
							t.Fatal(err)
						}
					}
					gotBatch, err := clBatch.Leader.ProcessBatch(subs)
					if err != nil {
						t.Fatalf("batch ProcessBatch: %v", err)
					}
					gotLegacy, err := clLegacy.Leader.ProcessBatch(subs)
					if err != nil {
						t.Fatalf("legacy ProcessBatch: %v", err)
					}
					for i := 0; i < b; i++ {
						if gotBatch[i] != !bad[i] {
							t.Errorf("submission %d: batch path accept=%v, want %v", i, gotBatch[i], !bad[i])
						}
						if gotBatch[i] != gotLegacy[i] {
							t.Errorf("submission %d: batch accept=%v, legacy accept=%v", i, gotBatch[i], gotLegacy[i])
						}
					}
					_, nA, err := clBatch.Leader.Aggregate()
					if err != nil {
						t.Fatal(err)
					}
					_, nB, err := clLegacy.Leader.Aggregate()
					if err != nil {
						t.Fatal(err)
					}
					if nA != nB || nA != uint64(b-nBad) {
						t.Errorf("accepted counts: batch=%d legacy=%d want=%d", nA, nB, b-nBad)
					}
				})
			}
		}
	}
}

// TestBatchVerifyAllMalicious drives the bisect fallback to its worst case:
// every submission in the batch is bad, so the root probe and every split
// fails and each singleton must be individually rejected.
func TestBatchVerifyAllMalicious(t *testing.T) {
	f := field.NewF64()
	scheme := afe.NewSum(f, 4)
	cl, client := newDiffCluster(t, scheme, ModeSNIP, false)
	const b = 6
	subs := make([]*Submission, b)
	for i := 0; i < b; i++ {
		enc, err := scheme.Encode(uint64(i) % 16)
		if err != nil {
			t.Fatal(err)
		}
		enc[0] = f.Add(enc[0], f.FromUint64(3))
		if subs[i], err = client.BuildSubmission(enc); err != nil {
			t.Fatal(err)
		}
	}
	accepts, err := cl.Leader.ProcessBatch(subs)
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range accepts {
		if ok {
			t.Errorf("all-malicious batch: submission %d accepted", i)
		}
	}
	_, n, err := cl.Leader.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("accepted count = %d, want 0", n)
	}
}

// TestBatchVerifyChallengeRotation crosses the batched path with challenge
// rotation: batches straddling a rotation boundary must verify under the
// correct (cached) evaluator for their challenge window.
func TestBatchVerifyChallengeRotation(t *testing.T) {
	f := field.NewF64()
	scheme := afe.NewSum(f, 4)
	pro, err := NewProtocol(Config[field.F64, uint64]{
		Field:          f,
		Scheme:         scheme,
		Servers:        3,
		Mode:           ModeSNIP,
		SnipReps:       1,
		ChallengeEvery: 4, // rotate mid-run
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewLocalCluster(pro)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(pro, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(0)
	total := 0
	for batch := 0; batch < 5; batch++ {
		subs := make([]*Submission, 3)
		for i := range subs {
			v := uint64((batch*3 + i) % 16)
			want += v
			total++
			enc, err := scheme.Encode(v)
			if err != nil {
				t.Fatal(err)
			}
			if subs[i], err = client.BuildSubmission(enc); err != nil {
				t.Fatal(err)
			}
		}
		accepts, err := cl.Leader.ProcessBatch(subs)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		for i, ok := range accepts {
			if !ok {
				t.Fatalf("batch %d submission %d rejected", batch, i)
			}
		}
	}
	agg, n, err := cl.Leader.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(total) {
		t.Fatalf("count = %d, want %d", n, total)
	}
	got, err := scheme.Decode(agg, int(n))
	if err != nil {
		t.Fatal(err)
	}
	if got.Uint64() != want {
		t.Errorf("aggregate = %v, want %d", got, want)
	}
}
