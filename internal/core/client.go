package core

import (
	"crypto/rand"
	"fmt"
	"io"

	"prio/internal/field"
	"prio/internal/mpc"
	"prio/internal/prg"
	"prio/internal/sealbox"
	"prio/internal/share"
	"prio/internal/telemetry"
)

// Submission is one client's upload: a bundle per server, delivered to the
// leader, which relays each sealed bundle to its server. With PRG share
// compression (Appendix I, optimization 1) the leader's bundle carries the
// one explicit share vector and every other bundle is a 16-byte seed, so
// total upload size is flatLen + O(s) — the factor-s saving the paper
// reports for its five-server deployment.
type Submission struct {
	Bundles [][]byte

	// Trace, when non-nil, is a sampled telemetry trace riding along this
	// submission through the server: the ingest edge attaches it to the
	// fresh decoded Submission, each stage boundary marks it, and the
	// deciding shard finishes it. Never serialized, never set on the
	// client side — client code may share one *Submission across
	// goroutines, which only works because nothing down here writes it.
	Trace *telemetry.Trace
}

// Marshal serializes the submission for the client-to-leader channel.
func (s *Submission) Marshal() []byte { return s.AppendBinary(nil) }

// AppendBinary appends the wire form to b and returns the result, letting a
// caller with a recycled buffer (the ingest submitter's pooled frame
// scratch) serialize without a fresh allocation per submission.
func (s *Submission) AppendBinary(b []byte) []byte {
	w := wbuf{b: b}
	w.u32(uint32(len(s.Bundles)))
	for _, bundle := range s.Bundles {
		w.blob(bundle)
	}
	return w.b
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Submission) MarshalBinary() ([]byte, error) { return s.Marshal(), nil }

// UnmarshalBinary implements encoding.BinaryUnmarshaler. Like
// UnmarshalSubmission, the decoded Bundles alias data — the caller must not
// recycle the input while the submission is live.
func (s *Submission) UnmarshalBinary(data []byte) error {
	sub, err := UnmarshalSubmission(data)
	if err != nil {
		return err
	}
	s.Bundles = sub.Bundles
	return nil
}

// UnmarshalSubmission parses a client upload. The returned Bundles alias b.
func UnmarshalSubmission(b []byte) (*Submission, error) {
	r := &rbuf{b: b}
	n := int(r.u32())
	if r.err != nil || n < 1 || n > 1<<10 {
		return nil, errTruncated
	}
	out := &Submission{Bundles: make([][]byte, n)}
	for i := 0; i < n; i++ {
		out.Bundles[i] = r.blob()
	}
	if !r.done() {
		return nil, errTruncated
	}
	return out, nil
}

// Bundle flags: an explicit share vector or a PRG seed.
const (
	bundleExplicit byte = 0
	bundleSeed     byte = 1
)

// Client builds submissions for one deployment. It is safe for concurrent
// use.
type Client[Fd field.Field[E], E any] struct {
	pro  *Protocol[Fd, E]
	keys []*sealbox.PublicKey // per server; required when Cfg.Seal
	rnd  io.Reader
}

// NewClient constructs a client. keys must hold one sealbox public key per
// server when cfg.Seal is set; otherwise it may be nil. rnd defaults to
// crypto/rand.
func NewClient[Fd field.Field[E], E any](pro *Protocol[Fd, E], keys []*sealbox.PublicKey, rnd io.Reader) (*Client[Fd, E], error) {
	if pro.Cfg.Seal && len(keys) != pro.Cfg.Servers {
		return nil, fmt.Errorf("core: need %d server keys, got %d", pro.Cfg.Servers, len(keys))
	}
	if rnd == nil {
		rnd = rand.Reader
	}
	return &Client[Fd, E]{pro: pro, keys: keys, rnd: rnd}, nil
}

// BuildSubmission turns an AFE encoding into a complete upload: proof
// generation (per mode), share splitting with PRG compression, and sealing.
func (c *Client[Fd, E]) BuildSubmission(encoding []E) (*Submission, error) {
	p := c.pro
	f := p.Cfg.Field
	if len(encoding) != p.l {
		return nil, fmt.Errorf("core: encoding has %d elements, want %d", len(encoding), p.l)
	}

	// Assemble the flat vector to share: x ‖ [triples] ‖ [proof].
	flat := make([]E, 0, p.flatLen)
	flat = append(flat, encoding...)
	switch p.Cfg.Mode {
	case ModeNoRobust:
	case ModeSNIP:
		pf, err := p.ValidSys.Prove(encoding, c.rnd)
		if err != nil {
			return nil, err
		}
		flat = append(flat, p.ValidSys.FlattenProof(pf)...)
	case ModeMPC:
		triples, err := mpc.DealTriples(f, p.m, c.rnd)
		if err != nil {
			return nil, err
		}
		pf, err := p.TripleSys.Prove(triples, c.rnd)
		if err != nil {
			return nil, err
		}
		flat = append(flat, triples...)
		flat = append(flat, p.TripleSys.FlattenProof(pf)...)
	}

	s := p.Cfg.Servers
	sub := &Submission{Bundles: make([][]byte, s)}
	var explicit []E
	if s == 1 {
		explicit = flat
	} else {
		seeds, last, err := share.SplitSeeded(f, flat, s)
		if err != nil {
			return nil, err
		}
		explicit = last
		for i := 1; i < s; i++ {
			sub.Bundles[i] = append([]byte{bundleSeed}, seeds[i-1][:]...)
		}
	}
	w := &wbuf{}
	w.u8(bundleExplicit)
	wvec(w, f, explicit)
	sub.Bundles[0] = w.b

	if p.Cfg.Seal {
		for i := range sub.Bundles {
			sealed, err := sealbox.Seal(c.keys[i], sub.Bundles[i])
			if err != nil {
				return nil, err
			}
			sub.Bundles[i] = sealed
		}
	}
	return sub, nil
}

// decodeBundle recovers a server's flat share vector from its bundle.
func (p *Protocol[Fd, E]) decodeBundle(bundle []byte, priv *sealbox.PrivateKey) ([]E, error) {
	if p.Cfg.Seal {
		pt, err := sealbox.Open(priv, bundle)
		if err != nil {
			return nil, err
		}
		bundle = pt
	}
	if len(bundle) < 1 {
		return nil, errTruncated
	}
	f := p.Cfg.Field
	switch bundle[0] {
	case bundleSeed:
		if len(bundle) != 1+prg.SeedSize {
			return nil, errTruncated
		}
		var seed prg.Seed
		copy(seed[:], bundle[1:])
		return share.Expand(f, seed, p.flatLen), nil
	case bundleExplicit:
		r := &rbuf{b: bundle[1:]}
		flat := rvec(r, f, p.flatLen)
		if !r.done() {
			return nil, errTruncated
		}
		return flat, nil
	default:
		return nil, errTruncated
	}
}

// Prove runs only the proof-generation step of BuildSubmission; the
// client-time benchmarks (Table 3, Figures 7 and 8) use it to isolate the
// cryptographic work from sealing and transport.
func (c *Client[Fd, E]) Prove(encoding []E) error {
	switch c.pro.Cfg.Mode {
	case ModeSNIP:
		_, err := c.pro.ValidSys.Prove(encoding, c.rnd)
		return err
	case ModeMPC:
		triples, err := mpc.DealTriples(c.pro.Cfg.Field, c.pro.m, c.rnd)
		if err != nil {
			return err
		}
		_, err = c.pro.TripleSys.Prove(triples, c.rnd)
		return err
	default:
		return nil
	}
}
