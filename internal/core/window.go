package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"prio/internal/field"
)

// This file holds the server side of tumbling collection windows: every
// accepted submission lands both in the all-time accumulator (the paper's
// run-until-asked Section-3 sum, unchanged) and, when a window function is
// installed, in a per-window accumulator keyed by WindowID. The leader
// assigns each batch its window at commit time and carries it in MsgFinish,
// so all servers agree on which window a submission belongs to regardless of
// clock skew between them.
//
// Note on naming: a *window* is a collection interval (internal/window
// derives IDs from wall time). It is unrelated to the cluster's *epoch*,
// which numbers leadership terms (internal/cluster); see docs/CLUSTER.md.
//
// WindowID 0 is reserved for "unwindowed": a deployment that never installs
// a window function stamps every batch 0 and the per-window path stays
// dormant — the seed's aggregate-on-demand behavior.

// windowRetention is how many sealed windows a server keeps behind the most
// recently sealed one, bounding memory for long-running services while still
// letting a recovered or re-elected leader re-publish recent windows
// bit-identically.
const windowRetention = 64

// windowAcc is one window's share of the aggregate on this server. Once
// sealed it is immutable: the stored vector already includes this server's
// DP noise (drawn exactly once), so re-publishing after a leader failover
// returns bit-identical bytes.
type windowAcc[E any] struct {
	vec    []E
	count  uint64
	sealed bool
	noised bool
	eps    float64 // ε this server spent sealing the window (0 when unnoised)
}

// WindowState is the exportable form of one window accumulator, used by the
// checkpoint layer (internal/window) to persist and restore shard state.
type WindowState[E any] struct {
	ID     uint64
	Sealed bool
	Noised bool
	Eps    float64
	Count  uint64
	Vec    []E
}

// AccState is a deep copy of everything the accumulator side of a Server
// owns: the all-time total plus every live window. Verification session
// state (challenges, in-flight batches) is deliberately excluded — it is
// worthless across a restart, which is exactly when AccState travels.
type AccState[E any] struct {
	Total      []E
	TotalCount uint64
	Spilled    uint64
	Windows    []WindowState[E]
}

// SetWindowFunc installs the function leader sessions consult to stamp each
// batch with its collection window. nil (the default) stamps 0, disabling
// per-window accumulation. Safe to call while the pipeline runs; all
// sessions of this server observe the change on their next batch.
func (s *Server[Fd, E]) SetWindowFunc(fn func() uint64) {
	if fn == nil {
		s.windowFn.Store(nil)
		return
	}
	s.windowFn.Store(&fn)
}

// currentWindow reports the window open right now (0 when unwindowed).
func (s *Server[Fd, E]) currentWindow() uint64 {
	if p := s.windowFn.Load(); p != nil {
		return (*p)()
	}
	return 0
}

// SetWindowNoise installs the differential-privacy hook run when this server
// seals a window: it must return a length-k noise vector in the field plus
// the ε actually spent, or an error to refuse the seal (budget exhausted).
// Crucially the hook is this server's own policy — a malicious leader can
// ask for a publish but can never lower or disable another server's noise,
// matching the Section-7 trust model where privacy holds as long as one
// server is honest.
func (s *Server[Fd, E]) SetWindowNoise(fn func(k int) ([]E, float64, error)) {
	if fn == nil {
		s.noiseFn.Store(nil)
		return
	}
	s.noiseFn.Store(&fn)
}

// newWindowLocked allocates the zero accumulator for wid. Callers hold s.mu.
func (s *Server[Fd, E]) newWindowLocked(wid uint64) *windowAcc[E] {
	f := s.pro.Cfg.Field
	vec := make([]E, s.pro.kPrime)
	for i := range vec {
		vec[i] = f.Zero()
	}
	wa := &windowAcc[E]{vec: vec}
	s.windows[wid] = wa
	return wa
}

// windowAddLocked adds one accepted submission's truncated share into window
// wid, spilling forward past sealed windows: a share arriving for a window
// that already sealed (a batch retried across a leader failover, or clock
// skew at a boundary) rolls into the next open window instead of mutating a
// published aggregate or being dropped. Callers hold s.mu.
func (s *Server[Fd, E]) windowAddLocked(wid uint64, x []E) {
	if wid == 0 {
		return
	}
	f := s.pro.Cfg.Field
	for {
		wa := s.windows[wid]
		if wa == nil {
			wa = s.newWindowLocked(wid)
		}
		if !wa.sealed {
			field.AddVec(f, wa.vec, x)
			wa.count++
			return
		}
		s.spilled++
		wid++
	}
}

// pruneWindowsLocked drops sealed windows that have fallen out of the
// retention horizon behind the newly sealed wid. Callers hold s.mu.
func (s *Server[Fd, E]) pruneWindowsLocked(wid uint64) {
	if wid <= windowRetention {
		return
	}
	cut := wid - windowRetention
	for id, wa := range s.windows {
		if wa.sealed && id < cut {
			delete(s.windows, id)
		}
	}
}

// WindowSpills reports how many accepted shares spilled forward past a
// sealed window (each lands intact in the next open window).
func (s *Server[Fd, E]) WindowSpills() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spilled
}

// handleWindowPublish seals window wid on this server and returns its share:
// flags (bit 0 = noised, bit 1 = was already sealed), the ε spent, the
// accepted count, and the share
// vector. Sealing is idempotent — the first publish draws this server's DP
// noise exactly once and freezes the vector; every later publish of the same
// window (a new leader catching up after failover) returns the stored bytes,
// which is what makes recovered windows publish bit-identically.
func (s *Server[Fd, E]) handleWindowPublish(payload []byte) ([]byte, error) {
	r := &rbuf{b: payload}
	wid := r.u64()
	if r.err != nil || !r.done() || wid == 0 {
		return nil, errTruncated
	}
	f := s.pro.Cfg.Field
	s.mu.Lock()
	defer s.mu.Unlock()
	wa := s.windows[wid]
	if wa == nil {
		// A window this server saw no submissions for still seals (and is
		// still noised): an empty window's zero count is itself a release.
		wa = s.newWindowLocked(wid)
	}
	resealed := wa.sealed
	if !wa.sealed {
		if fnp := s.noiseFn.Load(); fnp != nil {
			noise, eps, err := (*fnp)(s.pro.kPrime)
			if err != nil {
				return nil, fmt.Errorf("core: server %d: window %d seal refused: %w", s.idx, wid, err)
			}
			if len(noise) != s.pro.kPrime {
				return nil, errors.New("core: window noise vector length mismatch")
			}
			field.AddVec(f, wa.vec, noise)
			wa.noised = true
			wa.eps = eps
		}
		wa.sealed = true
		s.pruneWindowsLocked(wid)
	}
	w := &wbuf{}
	var flags byte
	if wa.noised {
		flags |= 1
	}
	if resealed {
		flags |= 2
	}
	w.u8(flags)
	w.u64(math.Float64bits(wa.eps))
	w.u64(wa.count)
	wvec(w, f, wa.vec)
	return w.b, nil
}

// AccState deep-copies the accumulator state (all-time total plus every live
// window, sorted by ID so serializations are deterministic). It is the
// checkpoint layer's read side and safe to call while batches commit.
func (s *Server[Fd, E]) AccState() AccState[E] {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := AccState[E]{
		Total:      append([]E(nil), s.acc...),
		TotalCount: s.accCount,
		Spilled:    s.spilled,
		Windows:    make([]WindowState[E], 0, len(s.windows)),
	}
	for id, wa := range s.windows {
		st.Windows = append(st.Windows, WindowState[E]{
			ID:     id,
			Sealed: wa.sealed,
			Noised: wa.noised,
			Eps:    wa.eps,
			Count:  wa.count,
			Vec:    append([]E(nil), wa.vec...),
		})
	}
	sort.Slice(st.Windows, func(i, j int) bool { return st.Windows[i].ID < st.Windows[j].ID })
	return st
}

// RestoreAccState replaces the accumulator state wholesale — the recovery
// path after a restart, before any traffic is accepted. Vector lengths must
// match the deployment's aggregate width.
func (s *Server[Fd, E]) RestoreAccState(st AccState[E]) error {
	k := s.pro.kPrime
	if len(st.Total) != k {
		return fmt.Errorf("core: restore total length %d, want %d", len(st.Total), k)
	}
	for _, ws := range st.Windows {
		if len(ws.Vec) != k {
			return fmt.Errorf("core: restore window %d length %d, want %d", ws.ID, len(ws.Vec), k)
		}
		if ws.ID == 0 {
			return errors.New("core: restore window ID 0 is reserved")
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.acc = append([]E(nil), st.Total...)
	s.accCount = st.TotalCount
	s.spilled = st.Spilled
	s.windows = make(map[uint64]*windowAcc[E], len(st.Windows))
	for _, ws := range st.Windows {
		s.windows[ws.ID] = &windowAcc[E]{
			vec:    append([]E(nil), ws.Vec...),
			count:  ws.Count,
			sealed: ws.Sealed,
			noised: ws.Noised,
			eps:    ws.Eps,
		}
	}
	return nil
}

// WindowPublish is the leader's view of one published window: the summed
// aggregate across all servers plus the per-server metadata needed to judge
// it. Counts can disagree after a crash that lost a member's in-flight
// window — the publish still completes, flagged inconsistent, rather than
// wedging the release schedule.
type WindowPublish[E any] struct {
	ID     uint64
	Agg    []E       // sum of every server's sealed (noised) share
	Counts []uint64  // per-server accepted counts, index order
	Eps    []float64 // per-server ε spent sealing, index order
	Noised bool      // true iff every server applied noise
	// Resealed is true iff every server had already sealed this window —
	// i.e. this publish replayed stored shares (a re-elected leader
	// catching up) rather than performing the first seal.
	Resealed bool
}

// Consistent reports whether every server accumulated the same number of
// accepted submissions into this window.
func (wp *WindowPublish[E]) Consistent() bool {
	for _, c := range wp.Counts[1:] {
		if c != wp.Counts[0] {
			return false
		}
	}
	return true
}

// MinEps is the smallest per-server ε — with every server adding independent
// noise, the release is at least MinEps-DP even if all other servers
// colluded to cancel theirs.
func (wp *WindowPublish[E]) MinEps() float64 {
	min := math.Inf(1)
	for _, e := range wp.Eps {
		if e < min {
			min = e
		}
	}
	return min
}

// PublishWindow seals window id on every server and returns the summed,
// noised aggregate. Idempotent end to end: servers seal once and replay the
// stored share afterwards, so calling this again (or from a different
// leader after failover) yields bit-identical bytes.
func (l *Leader[Fd, E]) PublishWindow(id uint64) (*WindowPublish[E], error) {
	if id == 0 {
		return nil, errors.New("core: window ID 0 is reserved")
	}
	p := l.pro
	f := p.Cfg.Field
	w := &wbuf{}
	w.u64(id)
	resps, err := l.broadcast(MsgWindowPublish, l.same(w.b))
	if err != nil {
		return nil, err
	}
	wp := &WindowPublish[E]{
		ID:       id,
		Counts:   make([]uint64, len(resps)),
		Eps:      make([]float64, len(resps)),
		Noised:   true,
		Resealed: true,
	}
	for i, resp := range resps {
		r := &rbuf{b: resp}
		flags := r.u8()
		eps := math.Float64frombits(r.u64())
		n := r.u64()
		vec := rvec(r, f, p.kPrime)
		if !r.done() {
			return nil, fmt.Errorf("core: bad window publish from server %d", i)
		}
		wp.Counts[i] = n
		wp.Eps[i] = eps
		if flags&1 == 0 {
			wp.Noised = false
		}
		if flags&2 == 0 {
			wp.Resealed = false
		}
		if i == 0 {
			wp.Agg = vec
		} else {
			field.AddVec(f, wp.Agg, vec)
		}
	}
	return wp, nil
}
