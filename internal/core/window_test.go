package core

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"prio/internal/field"
)

// submitValues pushes one batch of honest submissions through the leader.
func submitValues(t *testing.T, cl *Cluster[field.F64, uint64], client *Client[field.F64, uint64], scheme interface {
	Encode(uint64) ([]uint64, error)
}, values ...uint64) {
	t.Helper()
	var subs []*Submission
	for _, v := range values {
		enc, err := scheme.Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		sub, err := client.BuildSubmission(enc)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub)
	}
	accepts, err := cl.Leader.ProcessBatch(subs)
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range accepts {
		if !ok {
			t.Fatalf("honest submission %d rejected", i)
		}
	}
}

func TestWindowedAccumulationAllModes(t *testing.T) {
	for _, mode := range []Mode{ModeNoRobust, ModeSNIP, ModeMPC} {
		t.Run(mode.String(), func(t *testing.T) {
			_, cl, client, scheme := newSumDeployment(t, mode, 3, false)
			var cur atomic.Uint64
			cur.Store(1)
			for _, srv := range cl.Servers {
				srv.SetWindowFunc(cur.Load)
			}

			submitValues(t, cl, client, scheme, 3, 4)
			cur.Store(2)
			submitValues(t, cl, client, scheme, 10)

			w1, err := cl.Leader.PublishWindow(1)
			if err != nil {
				t.Fatal(err)
			}
			if !w1.Consistent() || w1.Counts[0] != 2 {
				t.Fatalf("window 1: counts = %v", w1.Counts)
			}
			if w1.Noised {
				t.Fatal("window 1 claims noise with no noise hook installed")
			}
			if got := w1.Agg[0]; got != 7 {
				t.Fatalf("window 1 aggregate = %d, want 7", got)
			}
			w2, err := cl.Leader.PublishWindow(2)
			if err != nil {
				t.Fatal(err)
			}
			if !w2.Consistent() || w2.Counts[0] != 1 || w2.Agg[0] != 10 {
				t.Fatalf("window 2: counts = %v, agg = %v", w2.Counts, w2.Agg[0])
			}

			// The all-time accumulator is untouched by windowing.
			agg, n, err := cl.Leader.Aggregate()
			if err != nil {
				t.Fatal(err)
			}
			if n != 3 || agg[0] != 17 {
				t.Fatalf("all-time aggregate = %d over %d, want 17 over 3", agg[0], n)
			}
		})
	}
}

func TestWindowPublishIdempotent(t *testing.T) {
	f := field.NewF64()
	_, cl, client, scheme := newSumDeployment(t, ModeSNIP, 2, false)
	for _, srv := range cl.Servers {
		srv.SetWindowFunc(func() uint64 { return 7 })
		// A noise hook that yields a different vector every call: only
		// seal-once makes repeated publishes bit-identical.
		calls := 0
		srv.SetWindowNoise(func(k int) ([]uint64, float64, error) {
			calls++
			noise := make([]uint64, k)
			for i := range noise {
				noise[i] = f.FromInt64(int64(calls * 1000))
			}
			return noise, 0.5, nil
		})
	}
	submitValues(t, cl, client, scheme, 5, 6)

	first, err := cl.Leader.PublishWindow(7)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Noised || first.MinEps() != 0.5 {
		t.Fatalf("first publish: noised=%v eps=%v", first.Noised, first.Eps)
	}
	second, err := cl.Leader.PublishWindow(7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Agg, second.Agg) {
		t.Fatalf("re-publish not bit-identical: %v vs %v", first.Agg, second.Agg)
	}
	if !reflect.DeepEqual(first.Counts, second.Counts) || !reflect.DeepEqual(first.Eps, second.Eps) {
		t.Fatal("re-publish metadata differs")
	}
}

func TestWindowSealRefusedSurfacesError(t *testing.T) {
	_, cl, client, scheme := newSumDeployment(t, ModeSNIP, 2, false)
	refused := errors.New("budget exhausted")
	for _, srv := range cl.Servers {
		srv.SetWindowFunc(func() uint64 { return 3 })
		srv.SetWindowNoise(func(k int) ([]uint64, float64, error) {
			return nil, 0, refused
		})
	}
	submitValues(t, cl, client, scheme, 1)
	if _, err := cl.Leader.PublishWindow(3); !errors.Is(err, refused) {
		t.Fatalf("publish error = %v, want wrapped %v", err, refused)
	}
}

func TestWindowSpillForward(t *testing.T) {
	_, cl, client, scheme := newSumDeployment(t, ModeSNIP, 2, false)
	for _, srv := range cl.Servers {
		srv.SetWindowFunc(func() uint64 { return 4 })
	}
	submitValues(t, cl, client, scheme, 2)
	if _, err := cl.Leader.PublishWindow(4); err != nil {
		t.Fatal(err)
	}
	// A late batch still stamped for the sealed window must not mutate the
	// published aggregate; it rolls into window 5.
	submitValues(t, cl, client, scheme, 9)
	again, err := cl.Leader.PublishWindow(4)
	if err != nil {
		t.Fatal(err)
	}
	if again.Agg[0] != 2 || again.Counts[0] != 1 {
		t.Fatalf("sealed window mutated: agg=%d counts=%v", again.Agg[0], again.Counts)
	}
	next, err := cl.Leader.PublishWindow(5)
	if err != nil {
		t.Fatal(err)
	}
	if next.Agg[0] != 9 || next.Counts[0] != 1 {
		t.Fatalf("spilled share lost: agg=%d counts=%v", next.Agg[0], next.Counts)
	}
	for i, srv := range cl.Servers {
		if srv.WindowSpills() != 1 {
			t.Errorf("server %d spills = %d, want 1", i, srv.WindowSpills())
		}
	}
}

func TestAccStateRoundTrip(t *testing.T) {
	pro, cl, client, scheme := newSumDeployment(t, ModeSNIP, 2, false)
	var cur atomic.Uint64
	cur.Store(1)
	for _, srv := range cl.Servers {
		srv.SetWindowFunc(cur.Load)
	}
	submitValues(t, cl, client, scheme, 11, 12)
	if _, err := cl.Leader.PublishWindow(1); err != nil {
		t.Fatal(err)
	}
	cur.Store(2)
	submitValues(t, cl, client, scheme, 13)

	for i, srv := range cl.Servers {
		st := srv.AccState()
		if st.TotalCount != 3 || len(st.Windows) != 2 {
			t.Fatalf("server %d: state = %+v", i, st)
		}
		if !st.Windows[0].Sealed || st.Windows[1].Sealed {
			t.Fatalf("server %d: seal flags wrong: %+v", i, st.Windows)
		}
		fresh, err := NewServer(pro, i, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.RestoreAccState(st); err != nil {
			t.Fatal(err)
		}
		got := fresh.AccState()
		if !reflect.DeepEqual(st, got) {
			t.Fatalf("server %d: restore not exact:\n%+v\n%+v", i, st, got)
		}
	}

	// Restore validation: wrong vector width and reserved ID refused.
	fresh, _ := NewServer(pro, 0, nil)
	if err := fresh.RestoreAccState(AccState[uint64]{Total: []uint64{1, 2, 3}}); err == nil {
		t.Error("wrong total width accepted")
	}
	st := cl.Servers[0].AccState()
	st.Windows[0].ID = 0
	if err := fresh.RestoreAccState(st); err == nil {
		t.Error("reserved window ID 0 accepted")
	}
}

func TestWindowRetentionPrunes(t *testing.T) {
	_, cl, client, scheme := newSumDeployment(t, ModeSNIP, 2, false)
	var cur atomic.Uint64
	cur.Store(1)
	for _, srv := range cl.Servers {
		srv.SetWindowFunc(cur.Load)
	}
	submitValues(t, cl, client, scheme, 1)
	if _, err := cl.Leader.PublishWindow(1); err != nil {
		t.Fatal(err)
	}
	// Sealing a window far in the future prunes window 1 (sealed, beyond
	// the retention horizon) but keeps unsealed windows.
	far := uint64(windowRetention + 10)
	cur.Store(far)
	submitValues(t, cl, client, scheme, 2)
	if _, err := cl.Leader.PublishWindow(far); err != nil {
		t.Fatal(err)
	}
	st := cl.Servers[0].AccState()
	for _, ws := range st.Windows {
		if ws.ID == 1 {
			t.Fatal("window 1 survived past the retention horizon")
		}
	}
}

func TestPipelineQuiesce(t *testing.T) {
	_, cl, client, scheme := newSumDeployment(t, ModeSNIP, 2, false)
	pipe, err := NewPipeline(cl.Leader, PipelineConfig{Shards: 2, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	var cur atomic.Uint64
	cur.Store(1)
	for _, srv := range cl.Servers {
		srv.SetWindowFunc(cur.Load)
	}
	for i := 0; i < 10; i++ {
		enc, _ := scheme.Encode(1)
		sub, err := client.BuildSubmission(enc)
		if err != nil {
			t.Fatal(err)
		}
		if err := pipe.Submit(sub); err != nil {
			t.Fatal(err)
		}
	}
	var pub *WindowPublish[uint64]
	pipe.Quiesce(func() {
		cur.Store(2)
		var err error
		pub, err = cl.Leader.PublishWindow(1)
		if err != nil {
			t.Fatal(err)
		}
	})
	if !pub.Consistent() || pub.Counts[0] != 10 || pub.Agg[0] != 10 {
		t.Fatalf("quiesced window publish: counts=%v agg=%v", pub.Counts, pub.Agg[0])
	}
	// The pipeline stays usable after Quiesce.
	enc, _ := scheme.Encode(1)
	sub, err := client.BuildSubmission(enc)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := pipe.SubmitWait(sub); err != nil || !ok {
		t.Fatalf("post-quiesce submit: ok=%v err=%v", ok, err)
	}
}
