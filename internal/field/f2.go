package field

import (
	"io"
	"math/big"
)

// F2 is the two-element field GF(2). Addition is XOR and multiplication is
// AND. The boolean OR/AND encodings of Section 5.2 work over F_2^λ; the afe
// package uses a packed-bitset representation for those on the hot path, but
// F2 keeps the generic machinery honest at the smallest possible field and
// backs the reference implementations.
type F2 struct{}

// NewF2 returns the GF(2) field instance.
func NewF2() F2 { return F2{} }

// Name implements Field.
func (F2) Name() string { return "F2" }

// Bits implements Field.
func (F2) Bits() int { return 1 }

// ElemSize implements Field.
func (F2) ElemSize() int { return 1 }

// Modulus implements Field.
func (F2) Modulus() *big.Int { return big.NewInt(2) }

// Zero implements Field.
func (F2) Zero() uint8 { return 0 }

// One implements Field.
func (F2) One() uint8 { return 1 }

// FromUint64 implements Field.
func (F2) FromUint64(v uint64) uint8 { return uint8(v & 1) }

// FromInt64 implements Field.
func (F2) FromInt64(v int64) uint8 { return uint8(uint64(v) & 1) }

// FromBig implements Field.
func (F2) FromBig(v *big.Int) uint8 { return uint8(v.Bit(0)) }

// ToBig implements Field.
func (F2) ToBig(a uint8) *big.Int { return big.NewInt(int64(a & 1)) }

// ToUint64 implements Field.
func (F2) ToUint64(a uint8) (uint64, bool) { return uint64(a & 1), true }

// Add implements Field (XOR).
func (F2) Add(a, b uint8) uint8 { return (a ^ b) & 1 }

// Sub implements Field (XOR; characteristic two).
func (F2) Sub(a, b uint8) uint8 { return (a ^ b) & 1 }

// Neg implements Field (identity; characteristic two).
func (F2) Neg(a uint8) uint8 { return a & 1 }

// Mul implements Field (AND).
func (F2) Mul(a, b uint8) uint8 { return a & b & 1 }

// Inv implements Field: Inv(1) = 1, Inv(0) = 0.
func (F2) Inv(a uint8) uint8 { return a & 1 }

// Equal implements Field.
func (F2) Equal(a, b uint8) bool { return a&1 == b&1 }

// IsZero implements Field.
func (F2) IsZero(a uint8) bool { return a&1 == 0 }

// AppendElem implements Field.
func (F2) AppendElem(dst []byte, a uint8) []byte { return append(dst, a&1) }

// ReadElem implements Field.
func (F2) ReadElem(src []byte) (uint8, error) {
	if len(src) < 1 {
		return 0, ErrShortBuffer
	}
	if src[0] > 1 {
		return 0, ErrNonCanonical
	}
	return src[0], nil
}

// SampleElem implements Field.
func (F2) SampleElem(r io.Reader) (uint8, error) {
	var b [1]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return b[0] & 1, nil
}

// TwoAdicity implements Field: 2-1 = 1 has no factors of two.
func (F2) TwoAdicity() int { return 0 }

// RootOfUnity implements Field; only the trivial root exists.
func (F2) RootOfUnity(logN int) uint8 {
	if logN != 0 {
		panic("field: F2 has no non-trivial roots of unity")
	}
	return 1
}
