package field

import (
	"io"
	"math/big"
)

// FP is an arbitrary-prime field backed by math/big. It is the reference
// implementation used to cross-check the specialized fields, and it realizes
// the exact field sizes of the paper's evaluation (an 87-bit and a 265-bit
// FFT-friendly prime; see Table 3).
//
// FP elements are *big.Int values in [0, p) and are treated as immutable:
// no FP method mutates an element that it did not itself allocate.
type FP struct {
	p        *big.Int
	bits     int
	elemSize int
	adicity  int
	root     *big.Int // primitive 2^adicity-th root of unity
	name     string
}

// NewFP constructs the field of integers modulo the odd prime p. It derives
// the two-adicity of p-1 and locates a maximal-order power-of-two root of
// unity by exponentiating small candidates. NewFP panics if p is not prime
// (probabilistically checked); use it for trusted, baked-in parameters.
func NewFP(name string, p *big.Int) *FP {
	if !p.ProbablyPrime(32) {
		panic("field: NewFP modulus is not prime")
	}
	pm1 := new(big.Int).Sub(p, big.NewInt(1))
	adicity := 0
	for pm1.Bit(adicity) == 0 {
		adicity++
	}
	odd := new(big.Int).Rsh(pm1, uint(adicity))
	one := big.NewInt(1)
	half := new(big.Int).Lsh(one, uint(adicity-1))
	var root *big.Int
	for x := int64(2); ; x++ {
		y := new(big.Int).Exp(big.NewInt(x), odd, p)
		if new(big.Int).Exp(y, half, p).Cmp(one) != 0 {
			root = y
			break
		}
	}
	return &FP{
		p:        new(big.Int).Set(p),
		bits:     p.BitLen(),
		elemSize: (p.BitLen() + 7) / 8,
		adicity:  adicity,
		root:     root,
		name:     name,
	}
}

// Name implements Field.
func (f *FP) Name() string { return f.name }

// Bits implements Field.
func (f *FP) Bits() int { return f.bits }

// ElemSize implements Field.
func (f *FP) ElemSize() int { return f.elemSize }

// Modulus implements Field.
func (f *FP) Modulus() *big.Int { return new(big.Int).Set(f.p) }

// Zero implements Field.
func (f *FP) Zero() *big.Int { return new(big.Int) }

// One implements Field.
func (f *FP) One() *big.Int { return big.NewInt(1) }

// FromUint64 implements Field.
func (f *FP) FromUint64(v uint64) *big.Int {
	return new(big.Int).Mod(new(big.Int).SetUint64(v), f.p)
}

// FromInt64 implements Field.
func (f *FP) FromInt64(v int64) *big.Int {
	return new(big.Int).Mod(big.NewInt(v), f.p)
}

// FromBig implements Field.
func (f *FP) FromBig(v *big.Int) *big.Int { return new(big.Int).Mod(v, f.p) }

// ToBig implements Field.
func (f *FP) ToBig(a *big.Int) *big.Int { return new(big.Int).Set(a) }

// ToUint64 implements Field.
func (f *FP) ToUint64(a *big.Int) (uint64, bool) {
	if a.BitLen() > 64 {
		return 0, false
	}
	return a.Uint64(), true
}

// Add implements Field.
func (f *FP) Add(a, b *big.Int) *big.Int {
	r := new(big.Int).Add(a, b)
	if r.Cmp(f.p) >= 0 {
		r.Sub(r, f.p)
	}
	return r
}

// Sub implements Field.
func (f *FP) Sub(a, b *big.Int) *big.Int {
	r := new(big.Int).Sub(a, b)
	if r.Sign() < 0 {
		r.Add(r, f.p)
	}
	return r
}

// Neg implements Field.
func (f *FP) Neg(a *big.Int) *big.Int {
	if a.Sign() == 0 {
		return new(big.Int)
	}
	return new(big.Int).Sub(f.p, a)
}

// Mul implements Field.
func (f *FP) Mul(a, b *big.Int) *big.Int {
	r := new(big.Int).Mul(a, b)
	return r.Mod(r, f.p)
}

// Inv implements Field; Inv of zero returns zero.
func (f *FP) Inv(a *big.Int) *big.Int {
	if a.Sign() == 0 {
		return new(big.Int)
	}
	return new(big.Int).ModInverse(a, f.p)
}

// Equal implements Field.
func (f *FP) Equal(a, b *big.Int) bool { return a.Cmp(b) == 0 }

// IsZero implements Field.
func (f *FP) IsZero(a *big.Int) bool { return a.Sign() == 0 }

// AppendElem implements Field (fixed-width little-endian).
func (f *FP) AppendElem(dst []byte, a *big.Int) []byte {
	buf := make([]byte, f.elemSize)
	a.FillBytes(buf) // big-endian
	for i, j := 0, len(buf)-1; i < j; i, j = i+1, j-1 {
		buf[i], buf[j] = buf[j], buf[i]
	}
	return append(dst, buf...)
}

// ReadElem implements Field.
func (f *FP) ReadElem(src []byte) (*big.Int, error) {
	if len(src) < f.elemSize {
		return nil, ErrShortBuffer
	}
	buf := make([]byte, f.elemSize)
	for i := range buf {
		buf[i] = src[f.elemSize-1-i] // reverse to big-endian
	}
	v := new(big.Int).SetBytes(buf)
	if v.Cmp(f.p) >= 0 {
		return nil, ErrNonCanonical
	}
	return v, nil
}

// SampleElem implements Field by masked rejection sampling.
func (f *FP) SampleElem(r io.Reader) (*big.Int, error) {
	buf := make([]byte, f.elemSize)
	excess := uint(f.elemSize*8 - f.bits)
	for {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		buf[0] &= 0xFF >> excess // buf is interpreted big-endian below
		v := new(big.Int).SetBytes(buf)
		if v.Cmp(f.p) < 0 {
			return v, nil
		}
	}
}

// TwoAdicity implements Field.
func (f *FP) TwoAdicity() int { return f.adicity }

// RootOfUnity implements Field.
func (f *FP) RootOfUnity(logN int) *big.Int {
	if logN < 0 || logN > f.adicity {
		panic("field: FP root of unity order out of range")
	}
	r := new(big.Int).Set(f.root)
	for i := f.adicity; i > logN; i-- {
		r.Mul(r, r)
		r.Mod(r, f.p)
	}
	return r
}
