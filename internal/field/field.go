package field

import (
	"errors"
	"io"
	"math/big"
)

// ErrShortBuffer is returned by ReadElem when the source slice holds fewer
// than ElemSize bytes.
var ErrShortBuffer = errors.New("field: short buffer")

// ErrNonCanonical is returned by ReadElem when the decoded integer is not in
// the canonical range [0, p).
var ErrNonCanonical = errors.New("field: non-canonical element encoding")

// Field describes a prime field with element type E. Implementations are
// small value types (often zero-sized) so that generic code instantiated on a
// concrete Field implementation compiles to direct calls.
//
// Elements are immutable values: no method may mutate its arguments.
type Field[E any] interface {
	// Name returns a short human-readable identifier, e.g. "F64".
	Name() string
	// Bits returns the bit length of the field modulus.
	Bits() int
	// ElemSize returns the number of bytes of the fixed-width canonical
	// little-endian element encoding.
	ElemSize() int
	// Modulus returns a fresh copy of the field modulus.
	Modulus() *big.Int

	// Zero returns the additive identity.
	Zero() E
	// One returns the multiplicative identity.
	One() E
	// FromUint64 maps v into the field (reducing mod p).
	FromUint64(v uint64) E
	// FromInt64 maps v into the field; negative values map to p - |v| mod p.
	FromInt64(v int64) E
	// FromBig maps an arbitrary integer into the field (reducing mod p).
	FromBig(v *big.Int) E
	// ToBig returns the canonical representative in [0, p) as a fresh big.Int.
	ToBig(a E) *big.Int
	// ToUint64 returns the canonical representative if it fits in a uint64.
	ToUint64(a E) (uint64, bool)

	// Add returns a + b.
	Add(a, b E) E
	// Sub returns a - b.
	Sub(a, b E) E
	// Neg returns -a.
	Neg(a E) E
	// Mul returns a * b.
	Mul(a, b E) E
	// Inv returns the multiplicative inverse of a, or zero if a is zero.
	Inv(a E) E
	// Equal reports whether a and b represent the same field element.
	Equal(a, b E) bool
	// IsZero reports whether a is the additive identity.
	IsZero(a E) bool

	// AppendElem appends the fixed-width canonical encoding of a to dst.
	AppendElem(dst []byte, a E) []byte
	// ReadElem decodes one element from the front of src.
	ReadElem(src []byte) (E, error)
	// SampleElem draws a uniformly random element using entropy from r.
	SampleElem(r io.Reader) (E, error)

	// TwoAdicity returns the largest k such that 2^k divides p - 1.
	TwoAdicity() int
	// RootOfUnity returns a primitive 2^logN-th root of unity. It panics if
	// logN exceeds TwoAdicity. RootOfUnity(0) is One.
	RootOfUnity(logN int) E
}

// Pow returns a^e by square-and-multiply.
func Pow[Fd Field[E], E any](f Fd, a E, e uint64) E {
	r := f.One()
	base := a
	for e > 0 {
		if e&1 == 1 {
			r = f.Mul(r, base)
		}
		base = f.Mul(base, base)
		e >>= 1
	}
	return r
}

// PowBig returns a^e for a non-negative big integer exponent.
func PowBig[Fd Field[E], E any](f Fd, a E, e *big.Int) E {
	r := f.One()
	base := a
	for i := 0; i < e.BitLen(); i++ {
		if e.Bit(i) == 1 {
			r = f.Mul(r, base)
		}
		base = f.Mul(base, base)
	}
	return r
}

// InnerProduct returns the dot product of a and b, which must have equal
// length. It is the workhorse of SNIP verification (polynomial evaluation by
// precomputed Lagrange weights).
func InnerProduct[Fd Field[E], E any](f Fd, a, b []E) E {
	if len(a) != len(b) {
		panic("field: InnerProduct length mismatch")
	}
	acc := f.Zero()
	for i := range a {
		acc = f.Add(acc, f.Mul(a[i], b[i]))
	}
	return acc
}

// Sum returns the sum of the elements of a.
func Sum[Fd Field[E], E any](f Fd, a []E) E {
	acc := f.Zero()
	for _, v := range a {
		acc = f.Add(acc, v)
	}
	return acc
}

// AddVec adds src into dst element-wise: dst[i] += src[i]. The slices must
// have equal length. This is the server accumulator update.
func AddVec[Fd Field[E], E any](f Fd, dst, src []E) {
	if len(dst) != len(src) {
		panic("field: AddVec length mismatch")
	}
	for i := range dst {
		dst[i] = f.Add(dst[i], src[i])
	}
}

// SubVec subtracts src from dst element-wise: dst[i] -= src[i].
func SubVec[Fd Field[E], E any](f Fd, dst, src []E) {
	if len(dst) != len(src) {
		panic("field: SubVec length mismatch")
	}
	for i := range dst {
		dst[i] = f.Sub(dst[i], src[i])
	}
}

// ScaleVec multiplies every element of dst by c in place.
func ScaleVec[Fd Field[E], E any](f Fd, dst []E, c E) {
	for i := range dst {
		dst[i] = f.Mul(dst[i], c)
	}
}

// EqualVec reports whether a and b are element-wise equal.
func EqualVec[Fd Field[E], E any](f Fd, a, b []E) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !f.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// SampleVec fills a fresh slice of n uniformly random elements from r.
func SampleVec[Fd Field[E], E any](f Fd, r io.Reader, n int) ([]E, error) {
	out := make([]E, n)
	for i := range out {
		e, err := f.SampleElem(r)
		if err != nil {
			return nil, err
		}
		out[i] = e
	}
	return out, nil
}

// AppendVec appends the canonical encodings of all elements of a to dst.
func AppendVec[Fd Field[E], E any](f Fd, dst []byte, a []E) []byte {
	for _, v := range a {
		dst = f.AppendElem(dst, v)
	}
	return dst
}

// ReadVec decodes n elements from the front of src, returning the elements
// and the number of bytes consumed.
func ReadVec[Fd Field[E], E any](f Fd, src []byte, n int) ([]E, int, error) {
	sz := f.ElemSize()
	if len(src) < n*sz {
		return nil, 0, ErrShortBuffer
	}
	out := make([]E, n)
	for i := 0; i < n; i++ {
		e, err := f.ReadElem(src[i*sz:])
		if err != nil {
			return nil, 0, err
		}
		out[i] = e
	}
	return out, n * sz, nil
}
