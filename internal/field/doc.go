// Package field provides the finite-field arithmetic that underlies every
// other component of this Prio implementation: secret sharing (Section 3),
// polynomial identities and SNIP proofs (Section 4.2), and the
// affine-aggregatable encodings of Section 5 all operate on vectors of
// field elements.
//
// The package exposes a generic Field[E] interface with four concrete
// instantiations:
//
//   - F64:  the 64-bit "Goldilocks" prime 2^64 - 2^32 + 1 (two-adicity 32).
//     This is the hot-path field; elements are plain uint64 values.
//   - F128: a 128-bit FFT-friendly prime (two-adicity 66) with elements in
//     Montgomery form. Use it when a single SNIP identity test must have
//     ~2^-120 soundness error, as the paper recommends (Section 4.3,
//     |F| ~ 2^128).
//   - FP:   an arbitrary-prime field backed by math/big. It is slow but
//     flexible; the benchmark harness uses it to realize the paper's 87-bit
//     and 265-bit field configurations (Table 3).
//   - F2:   GF(2). It exists for the boolean OR/AND encodings of Section 5.2
//     and for exercising generic code at the smallest possible field.
//
// Implementations are small value types (often zero-sized) so that generic
// code instantiated on a concrete Field compiles to direct calls; the
// throughput figures (Figures 4, 5 and the pipeline benchmark) depend on
// F64 staying allocation-free on its hot paths.
//
// All arithmetic is constant-time-ish but NOT hardened against side
// channels; this is a research system, matching the paper's prototype.
package field
