package field

import (
	"math/big"
	"testing"
	"testing/quick"
)

// Field axioms as testing/quick properties, for the two specialized fields
// whose arithmetic is hand-written (F64's Goldilocks reduction and F128's
// Montgomery CIOS). The FP reference field is checked against math/big in
// the conformance suite.

func TestF64AxiomsQuick(t *testing.T) {
	f := NewF64()
	cfg := &quick.Config{MaxCount: 3000}
	norm := func(v uint64) uint64 { return v % ModulusF64 }

	if err := quick.Check(func(a, b, c uint64) bool {
		a, b, c = norm(a), norm(b), norm(c)
		// associativity and commutativity
		if f.Add(f.Add(a, b), c) != f.Add(a, f.Add(b, c)) {
			return false
		}
		if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
			return false
		}
		if f.Add(a, b) != f.Add(b, a) || f.Mul(a, b) != f.Mul(b, a) {
			return false
		}
		// distributivity
		if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
			return false
		}
		// identities and inverses
		if f.Add(a, 0) != a || f.Mul(a, 1) != a {
			return false
		}
		if f.Add(a, f.Neg(a)) != 0 {
			return false
		}
		if a != 0 && f.Mul(a, f.Inv(a)) != 1 {
			return false
		}
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestF128AxiomsQuick(t *testing.T) {
	f := NewF128()
	cfg := &quick.Config{MaxCount: 1000}
	mk := func(lo, hi uint64) U128 {
		v := new(big.Int).Lsh(new(big.Int).SetUint64(hi), 64)
		v.Or(v, new(big.Int).SetUint64(lo))
		return f.FromBig(v)
	}
	if err := quick.Check(func(a0, a1, b0, b1, c0, c1 uint64) bool {
		a, b, c := mk(a0, a1), mk(b0, b1), mk(c0, c1)
		if !f.Equal(f.Add(f.Add(a, b), c), f.Add(a, f.Add(b, c))) {
			return false
		}
		if !f.Equal(f.Mul(f.Mul(a, b), c), f.Mul(a, f.Mul(b, c))) {
			return false
		}
		if !f.Equal(f.Mul(a, f.Add(b, c)), f.Add(f.Mul(a, b), f.Mul(a, c))) {
			return false
		}
		if !f.Equal(f.Sub(f.Add(a, b), b), a) {
			return false
		}
		if !f.IsZero(f.Add(a, f.Neg(a))) {
			return false
		}
		if !f.IsZero(a) && !f.Equal(f.Mul(a, f.Inv(a)), f.One()) {
			return false
		}
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestF128AddSubAgainstBigQuick(t *testing.T) {
	f := NewF128()
	p := f.Modulus()
	if err := quick.Check(func(a0, a1, b0, b1 uint64) bool {
		ab := new(big.Int).Lsh(new(big.Int).SetUint64(a1), 64)
		ab.Or(ab, new(big.Int).SetUint64(a0))
		ab.Mod(ab, p)
		bb := new(big.Int).Lsh(new(big.Int).SetUint64(b1), 64)
		bb.Or(bb, new(big.Int).SetUint64(b0))
		bb.Mod(bb, p)
		a, b := f.FromBig(ab), f.FromBig(bb)
		wantAdd := new(big.Int).Add(ab, bb)
		wantAdd.Mod(wantAdd, p)
		wantSub := new(big.Int).Sub(ab, bb)
		wantSub.Mod(wantSub, p)
		return f.ToBig(f.Add(a, b)).Cmp(wantAdd) == 0 &&
			f.ToBig(f.Sub(a, b)).Cmp(wantSub) == 0
	}, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodingRoundTripQuick(t *testing.T) {
	f64 := NewF64()
	if err := quick.Check(func(v uint64) bool {
		a := f64.FromUint64(v)
		enc := f64.AppendElem(nil, a)
		dec, err := f64.ReadElem(enc)
		return err == nil && dec == a
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	f128 := NewF128()
	if err := quick.Check(func(lo, hi uint64) bool {
		v := new(big.Int).Lsh(new(big.Int).SetUint64(hi), 64)
		v.Or(v, new(big.Int).SetUint64(lo))
		a := f128.FromBig(v)
		enc := f128.AppendElem(nil, a)
		dec, err := f128.ReadElem(enc)
		return err == nil && f128.Equal(dec, a)
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestInnerProductBilinearQuick(t *testing.T) {
	f := NewF64()
	if err := quick.Check(func(raw []uint64, k uint64) bool {
		if len(raw) < 2 {
			return true
		}
		n := len(raw) / 2
		a := make([]uint64, n)
		b := make([]uint64, n)
		for i := 0; i < n; i++ {
			a[i] = raw[i] % ModulusF64
			b[i] = raw[n+i] % ModulusF64
		}
		k %= ModulusF64
		// <k·a, b> == k·<a, b>
		ka := append([]uint64(nil), a...)
		ScaleVec(f, ka, k)
		return f.Mul(k, InnerProduct(f, a, b)) == InnerProduct(f, ka, b)
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Slab-kernel properties: the vectorized F64 kernels must agree with the
// generic scalar path element-for-element on every length — including empty,
// length-1, and lengths that are not a multiple of the kernels' unroll
// stride — and the scratch pool must never alias live results.

// slabLens covers the stride edge cases: empty, single, odd, one under and
// over the 2-way unroll boundary, and a few larger odd sizes.
var slabLens = []int{0, 1, 2, 3, 4, 5, 7, 8, 15, 33, 63, 100, 255}

// randSlab derives a deterministic pseudo-random canonical vector.
func randSlab(n int, seed uint64) []uint64 {
	out := make([]uint64, n)
	x := seed*0x9E3779B97F4A7C15 + 1
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = x % ModulusF64
	}
	return out
}

func TestSlabKernelsMatchScalar(t *testing.T) {
	f := NewF64()
	for _, n := range slabLens {
		a := randSlab(n, uint64(n)+1)
		b := randSlab(n, uint64(n)+2)
		c := randSlab(1, uint64(n)+3)[0]

		add := make([]uint64, n)
		AddSlice(add, a, b)
		sub := make([]uint64, n)
		SubSlice(sub, a, b)
		mul := make([]uint64, n)
		MulSlice(mul, a, b)
		scale := make([]uint64, n)
		ScaleSlice(scale, a, c)
		saxpy := append([]uint64(nil), b...)
		ScaleAddSlice(saxpy, a, c)
		for i := 0; i < n; i++ {
			if add[i] != f.Add(a[i], b[i]) {
				t.Fatalf("n=%d AddSlice[%d] = %d, want %d", n, i, add[i], f.Add(a[i], b[i]))
			}
			if sub[i] != f.Sub(a[i], b[i]) {
				t.Fatalf("n=%d SubSlice[%d] mismatch", n, i)
			}
			if mul[i] != f.Mul(a[i], b[i]) {
				t.Fatalf("n=%d MulSlice[%d] mismatch", n, i)
			}
			if scale[i] != f.Mul(c, a[i]) {
				t.Fatalf("n=%d ScaleSlice[%d] mismatch", n, i)
			}
			if saxpy[i] != f.Add(b[i], f.Mul(c, a[i])) {
				t.Fatalf("n=%d ScaleAddSlice[%d] mismatch", n, i)
			}
		}
		if got, want := DotSlice(a, b), InnerProduct(f, a, b); got != want {
			t.Fatalf("n=%d DotSlice = %d, want %d", n, got, want)
		}
	}
}

// TestDotSliceExtremes drives the deferred-reduction accumulator with
// worst-case magnitudes (all elements p-1) at lengths long enough to carry
// into the third limb.
func TestDotSliceExtremes(t *testing.T) {
	f := NewF64()
	for _, n := range []int{1, 2, 3, 64, 1023, 4096} {
		a := make([]uint64, n)
		for i := range a {
			a[i] = ModulusF64 - 1
		}
		if got, want := DotSlice(a, a), InnerProduct(f, a, a); got != want {
			t.Fatalf("n=%d DotSlice(p-1,...) = %d, want %d", n, got, want)
		}
	}
}

func TestMulAcc192MatchesScalar(t *testing.T) {
	f := NewF64()
	for _, n := range slabLens {
		const rows = 7
		acc0 := make([]uint64, n)
		acc1 := make([]uint64, n)
		acc2 := make([]uint64, n)
		want := make([]uint64, n)
		for r := 0; r < rows; r++ {
			src := randSlab(n, uint64(100*r+n))
			c := randSlab(1, uint64(999*r+n))[0]
			MulAcc192(acc0, acc1, acc2, src, c)
			for i := 0; i < n; i++ {
				want[i] = f.Add(want[i], f.Mul(c, src[i]))
			}
		}
		got := make([]uint64, n)
		Reduce192Slice(got, acc0, acc1, acc2)
		for i := 0; i < n; i++ {
			if got[i] != want[i] {
				t.Fatalf("n=%d lane %d: Reduce192Slice = %d, want %d", n, i, got[i], want[i])
			}
		}
	}
}

// TestSlabPoolNoAliasing checks the GetSlab/PutSlab contract: a returned
// slab is zeroed regardless of what a previous user left in it, and reusing
// the pool never mutates results that were copied out before PutSlab.
func TestSlabPoolNoAliasing(t *testing.T) {
	s1 := GetSlab(64)
	for i := range s1 {
		s1[i] = 0xDEAD
	}
	result := append([]uint64(nil), s1...) // copy out, then release
	PutSlab(s1)

	s2 := GetSlab(64)
	for _, v := range s2 {
		if v != 0 {
			t.Fatal("GetSlab returned a non-zeroed slab")
		}
	}
	for i := range s2 {
		s2[i] = 0xBEEF
	}
	for _, v := range result {
		if v != 0xDEAD {
			t.Fatal("pooled slab reuse aliased a copied-out result")
		}
	}
	PutSlab(s2)

	// Growing requests after the pool holds smaller buffers must still yield
	// full-length zeroed slabs.
	s3 := GetSlab(128)
	if len(s3) != 128 {
		t.Fatalf("GetSlab(128) returned len %d", len(s3))
	}
	for _, v := range s3 {
		if v != 0 {
			t.Fatal("grown slab not zeroed")
		}
	}
	PutSlab(s3)
}

func TestFromInt64Quick(t *testing.T) {
	f := NewF64()
	p := f.Modulus()
	if err := quick.Check(func(v int64) bool {
		want := new(big.Int).Mod(big.NewInt(v), p)
		return f.ToBig(f.FromInt64(v)).Cmp(want) == 0
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
