package field

import (
	"math/big"
	"testing"
	"testing/quick"
)

// Field axioms as testing/quick properties, for the two specialized fields
// whose arithmetic is hand-written (F64's Goldilocks reduction and F128's
// Montgomery CIOS). The FP reference field is checked against math/big in
// the conformance suite.

func TestF64AxiomsQuick(t *testing.T) {
	f := NewF64()
	cfg := &quick.Config{MaxCount: 3000}
	norm := func(v uint64) uint64 { return v % ModulusF64 }

	if err := quick.Check(func(a, b, c uint64) bool {
		a, b, c = norm(a), norm(b), norm(c)
		// associativity and commutativity
		if f.Add(f.Add(a, b), c) != f.Add(a, f.Add(b, c)) {
			return false
		}
		if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
			return false
		}
		if f.Add(a, b) != f.Add(b, a) || f.Mul(a, b) != f.Mul(b, a) {
			return false
		}
		// distributivity
		if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
			return false
		}
		// identities and inverses
		if f.Add(a, 0) != a || f.Mul(a, 1) != a {
			return false
		}
		if f.Add(a, f.Neg(a)) != 0 {
			return false
		}
		if a != 0 && f.Mul(a, f.Inv(a)) != 1 {
			return false
		}
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestF128AxiomsQuick(t *testing.T) {
	f := NewF128()
	cfg := &quick.Config{MaxCount: 1000}
	mk := func(lo, hi uint64) U128 {
		v := new(big.Int).Lsh(new(big.Int).SetUint64(hi), 64)
		v.Or(v, new(big.Int).SetUint64(lo))
		return f.FromBig(v)
	}
	if err := quick.Check(func(a0, a1, b0, b1, c0, c1 uint64) bool {
		a, b, c := mk(a0, a1), mk(b0, b1), mk(c0, c1)
		if !f.Equal(f.Add(f.Add(a, b), c), f.Add(a, f.Add(b, c))) {
			return false
		}
		if !f.Equal(f.Mul(f.Mul(a, b), c), f.Mul(a, f.Mul(b, c))) {
			return false
		}
		if !f.Equal(f.Mul(a, f.Add(b, c)), f.Add(f.Mul(a, b), f.Mul(a, c))) {
			return false
		}
		if !f.Equal(f.Sub(f.Add(a, b), b), a) {
			return false
		}
		if !f.IsZero(f.Add(a, f.Neg(a))) {
			return false
		}
		if !f.IsZero(a) && !f.Equal(f.Mul(a, f.Inv(a)), f.One()) {
			return false
		}
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestF128AddSubAgainstBigQuick(t *testing.T) {
	f := NewF128()
	p := f.Modulus()
	if err := quick.Check(func(a0, a1, b0, b1 uint64) bool {
		ab := new(big.Int).Lsh(new(big.Int).SetUint64(a1), 64)
		ab.Or(ab, new(big.Int).SetUint64(a0))
		ab.Mod(ab, p)
		bb := new(big.Int).Lsh(new(big.Int).SetUint64(b1), 64)
		bb.Or(bb, new(big.Int).SetUint64(b0))
		bb.Mod(bb, p)
		a, b := f.FromBig(ab), f.FromBig(bb)
		wantAdd := new(big.Int).Add(ab, bb)
		wantAdd.Mod(wantAdd, p)
		wantSub := new(big.Int).Sub(ab, bb)
		wantSub.Mod(wantSub, p)
		return f.ToBig(f.Add(a, b)).Cmp(wantAdd) == 0 &&
			f.ToBig(f.Sub(a, b)).Cmp(wantSub) == 0
	}, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodingRoundTripQuick(t *testing.T) {
	f64 := NewF64()
	if err := quick.Check(func(v uint64) bool {
		a := f64.FromUint64(v)
		enc := f64.AppendElem(nil, a)
		dec, err := f64.ReadElem(enc)
		return err == nil && dec == a
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	f128 := NewF128()
	if err := quick.Check(func(lo, hi uint64) bool {
		v := new(big.Int).Lsh(new(big.Int).SetUint64(hi), 64)
		v.Or(v, new(big.Int).SetUint64(lo))
		a := f128.FromBig(v)
		enc := f128.AppendElem(nil, a)
		dec, err := f128.ReadElem(enc)
		return err == nil && f128.Equal(dec, a)
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestInnerProductBilinearQuick(t *testing.T) {
	f := NewF64()
	if err := quick.Check(func(raw []uint64, k uint64) bool {
		if len(raw) < 2 {
			return true
		}
		n := len(raw) / 2
		a := make([]uint64, n)
		b := make([]uint64, n)
		for i := 0; i < n; i++ {
			a[i] = raw[i] % ModulusF64
			b[i] = raw[n+i] % ModulusF64
		}
		k %= ModulusF64
		// <k·a, b> == k·<a, b>
		ka := append([]uint64(nil), a...)
		ScaleVec(f, ka, k)
		return f.Mul(k, InnerProduct(f, a, b)) == InnerProduct(f, ka, b)
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFromInt64Quick(t *testing.T) {
	f := NewF64()
	p := f.Modulus()
	if err := quick.Check(func(v int64) bool {
		want := new(big.Int).Mod(big.NewInt(v), p)
		return f.ToBig(f.FromInt64(v)).Cmp(want) == 0
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
