package field

import (
	"bytes"
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"
)

// checkField runs the generic conformance suite against any Field
// implementation, cross-checking every operation against math/big.
func checkField[Fd Field[E], E any](t *testing.T, f Fd) {
	t.Helper()
	p := f.Modulus()

	sample := func() E {
		e, err := f.SampleElem(rand.Reader)
		if err != nil {
			t.Fatalf("SampleElem: %v", err)
		}
		return e
	}

	// Identities.
	if !f.IsZero(f.Zero()) {
		t.Error("Zero is not zero")
	}
	if f.IsZero(f.One()) && p.Cmp(big.NewInt(1)) != 0 {
		t.Error("One is zero")
	}
	if got := f.ToBig(f.One()); got.Cmp(big.NewInt(1)) != 0 {
		t.Errorf("ToBig(One) = %v, want 1", got)
	}

	const iters = 200
	for i := 0; i < iters; i++ {
		a, b := sample(), sample()
		ab, bb := f.ToBig(a), f.ToBig(b)

		if ab.Cmp(p) >= 0 || ab.Sign() < 0 {
			t.Fatalf("sample out of range: %v", ab)
		}

		// Add/Sub/Neg/Mul vs big.Int.
		wantAdd := new(big.Int).Add(ab, bb)
		wantAdd.Mod(wantAdd, p)
		if got := f.ToBig(f.Add(a, b)); got.Cmp(wantAdd) != 0 {
			t.Fatalf("Add(%v,%v) = %v, want %v", ab, bb, got, wantAdd)
		}
		wantSub := new(big.Int).Sub(ab, bb)
		wantSub.Mod(wantSub, p)
		if got := f.ToBig(f.Sub(a, b)); got.Cmp(wantSub) != 0 {
			t.Fatalf("Sub(%v,%v) = %v, want %v", ab, bb, got, wantSub)
		}
		wantNeg := new(big.Int).Neg(ab)
		wantNeg.Mod(wantNeg, p)
		if got := f.ToBig(f.Neg(a)); got.Cmp(wantNeg) != 0 {
			t.Fatalf("Neg(%v) = %v, want %v", ab, got, wantNeg)
		}
		wantMul := new(big.Int).Mul(ab, bb)
		wantMul.Mod(wantMul, p)
		if got := f.ToBig(f.Mul(a, b)); got.Cmp(wantMul) != 0 {
			t.Fatalf("Mul(%v,%v) = %v, want %v", ab, bb, got, wantMul)
		}

		// Inverse.
		if !f.IsZero(a) {
			inv := f.Inv(a)
			if got := f.ToBig(f.Mul(a, inv)); got.Cmp(big.NewInt(1)) != 0 {
				t.Fatalf("a * Inv(a) = %v, want 1 (a=%v)", got, ab)
			}
		}

		// Encoding round trip.
		enc := f.AppendElem(nil, a)
		if len(enc) != f.ElemSize() {
			t.Fatalf("encoding size = %d, want %d", len(enc), f.ElemSize())
		}
		dec, err := f.ReadElem(enc)
		if err != nil {
			t.Fatalf("ReadElem: %v", err)
		}
		if !f.Equal(dec, a) {
			t.Fatalf("encode/decode mismatch: %v != %v", f.ToBig(dec), ab)
		}

		// FromBig/ToBig round trip.
		if got := f.ToBig(f.FromBig(ab)); got.Cmp(ab) != 0 {
			t.Fatalf("FromBig/ToBig mismatch")
		}
	}

	// Inv(0) == 0 by convention.
	if !f.IsZero(f.Inv(f.Zero())) {
		t.Error("Inv(0) != 0")
	}
	// Neg(0) == 0.
	if !f.IsZero(f.Neg(f.Zero())) {
		t.Error("Neg(0) != 0")
	}
	// FromInt64 of negative values.
	if got := f.ToBig(f.FromInt64(-1)); got.Cmp(new(big.Int).Sub(p, big.NewInt(1))) != 0 && p.Cmp(big.NewInt(2)) != 0 {
		t.Errorf("FromInt64(-1) = %v, want p-1", got)
	}
	// ReadElem rejects short buffers.
	if _, err := f.ReadElem(make([]byte, f.ElemSize()-1)); err == nil {
		t.Error("ReadElem accepted short buffer")
	}
}

func checkRoots[Fd Field[E], E any](t *testing.T, f Fd) {
	t.Helper()
	k := f.TwoAdicity()
	if k == 0 {
		return
	}
	if k > 12 {
		k = 12 // keep the test cheap; lower orders derive from higher ones
	}
	for logN := 1; logN <= k; logN++ {
		w := f.RootOfUnity(logN)
		n := uint64(1) << uint(logN)
		if got := Pow(f, w, n); !f.Equal(got, f.One()) {
			t.Fatalf("RootOfUnity(%d)^%d != 1", logN, n)
		}
		if got := Pow(f, w, n/2); f.Equal(got, f.One()) {
			t.Fatalf("RootOfUnity(%d) is not primitive", logN)
		}
	}
	if !f.Equal(f.RootOfUnity(0), f.One()) {
		t.Error("RootOfUnity(0) != 1")
	}
}

func TestF64Conformance(t *testing.T)  { checkField(t, NewF64()); checkRoots(t, NewF64()) }
func TestF128Conformance(t *testing.T) { checkField(t, NewF128()); checkRoots(t, NewF128()) }
func TestFP87Conformance(t *testing.T) { checkField(t, NewFP87()); checkRoots(t, NewFP87()) }
func TestFP265Conformance(t *testing.T) {
	checkField(t, NewFP265())
	checkRoots(t, NewFP265())
}
func TestF2Conformance(t *testing.T) { checkField(t, NewF2()) }

func TestF64MulQuick(t *testing.T) {
	f := NewF64()
	p := f.Modulus()
	err := quick.Check(func(a, b uint64) bool {
		a %= ModulusF64
		b %= ModulusF64
		want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		want.Mod(want, p)
		return f.ToBig(f.Mul(a, b)).Cmp(want) == 0
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestF64AddSubQuick(t *testing.T) {
	f := NewF64()
	err := quick.Check(func(a, b uint64) bool {
		a %= ModulusF64
		b %= ModulusF64
		return f.Sub(f.Add(a, b), b) == a && f.Add(f.Sub(a, b), b) == a
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestF64EdgeCases(t *testing.T) {
	f := NewF64()
	pm1 := ModulusF64 - 1
	cases := []struct{ a, b uint64 }{
		{0, 0}, {1, 1}, {pm1, pm1}, {pm1, 1}, {epsF64, epsF64},
		{epsF64 + 1, epsF64 + 1}, {pm1, epsF64}, {1 << 63, 1 << 63},
	}
	p := f.Modulus()
	for _, c := range cases {
		want := new(big.Int).Mul(new(big.Int).SetUint64(c.a), new(big.Int).SetUint64(c.b))
		want.Mod(want, p)
		if got := f.ToBig(f.Mul(c.a, c.b)); got.Cmp(want) != 0 {
			t.Errorf("Mul(%d,%d) = %v, want %v", c.a, c.b, got, want)
		}
		wantA := new(big.Int).Add(new(big.Int).SetUint64(c.a), new(big.Int).SetUint64(c.b))
		wantA.Mod(wantA, p)
		if got := f.ToBig(f.Add(c.a, c.b)); got.Cmp(wantA) != 0 {
			t.Errorf("Add(%d,%d) = %v, want %v", c.a, c.b, got, wantA)
		}
	}
}

func TestF128MontgomeryQuick(t *testing.T) {
	f := NewF128()
	p := f.Modulus()
	err := quick.Check(func(a0, a1, b0, b1 uint64) bool {
		ab := new(big.Int).Or(new(big.Int).Lsh(new(big.Int).SetUint64(a1), 64), new(big.Int).SetUint64(a0))
		bb := new(big.Int).Or(new(big.Int).Lsh(new(big.Int).SetUint64(b1), 64), new(big.Int).SetUint64(b0))
		ab.Mod(ab, p)
		bb.Mod(bb, p)
		a := f.FromBig(ab)
		b := f.FromBig(bb)
		want := new(big.Int).Mul(ab, bb)
		want.Mod(want, p)
		return f.ToBig(f.Mul(a, b)).Cmp(want) == 0
	}, &quick.Config{MaxCount: 1000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestF128KnownModulus(t *testing.T) {
	p := NewF128().Modulus()
	if !p.ProbablyPrime(40) {
		t.Fatal("F128 modulus is not prime")
	}
	// p = 2^66 * (2^62 - 7) + 1
	want := new(big.Int).Lsh(new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 62), big.NewInt(7)), 66)
	want.Add(want, big.NewInt(1))
	if p.Cmp(want) != 0 {
		t.Fatalf("F128 modulus = %v, want 2^66*(2^62-7)+1 = %v", p, want)
	}
}

func TestBakedPrimesMatchSearch(t *testing.T) {
	if testing.Short() {
		t.Skip("prime search skipped in -short mode")
	}
	if got := FindFFTPrime(87, 40); got.String() != ModulusFP87Decimal {
		t.Errorf("FindFFTPrime(87,40) = %v, want %v", got, ModulusFP87Decimal)
	}
	if got := FindFFTPrime(265, 40); got.String() != ModulusFP265Decimal {
		t.Errorf("FindFFTPrime(265,40) = %v, want %v", got, ModulusFP265Decimal)
	}
}

func TestVectorHelpers(t *testing.T) {
	f := NewF64()
	a := []uint64{1, 2, 3, 4}
	b := []uint64{5, 6, 7, 8}
	if got := InnerProduct(f, a, b); got != 5+12+21+32 {
		t.Errorf("InnerProduct = %d", got)
	}
	if got := Sum(f, a); got != 10 {
		t.Errorf("Sum = %d", got)
	}
	dst := append([]uint64(nil), a...)
	AddVec(f, dst, b)
	if !EqualVec(f, dst, []uint64{6, 8, 10, 12}) {
		t.Errorf("AddVec = %v", dst)
	}
	SubVec(f, dst, b)
	if !EqualVec(f, dst, a) {
		t.Errorf("SubVec did not invert AddVec: %v", dst)
	}
	ScaleVec(f, dst, 2)
	if !EqualVec(f, dst, []uint64{2, 4, 6, 8}) {
		t.Errorf("ScaleVec = %v", dst)
	}
	if EqualVec(f, a, b) || EqualVec(f, a, a[:3]) {
		t.Error("EqualVec false positives")
	}

	enc := AppendVec(f, nil, a)
	dec, n, err := ReadVec(f, enc, len(a))
	if err != nil || n != len(enc) || !EqualVec(f, dec, a) {
		t.Errorf("AppendVec/ReadVec round trip failed: %v %d %v", dec, n, err)
	}
	if _, _, err := ReadVec(f, enc[:len(enc)-1], len(a)); err == nil {
		t.Error("ReadVec accepted truncated input")
	}
}

func TestPowHelpers(t *testing.T) {
	f := NewF64()
	if got := Pow(f, 3, 5); got != 243 {
		t.Errorf("Pow(3,5) = %d", got)
	}
	if got := Pow(f, 7, 0); got != 1 {
		t.Errorf("Pow(7,0) = %d", got)
	}
	e := new(big.Int).SetUint64(ModulusF64 - 1)
	if got := PowBig(f, 12345, e); got != 1 {
		t.Errorf("Fermat little theorem failed: %d", got)
	}
}

func TestNonCanonicalRejected(t *testing.T) {
	f := NewF64()
	enc := f.AppendElem(nil, 0)
	for i := range enc {
		enc[i] = 0xFF // 2^64-1 > p
	}
	if _, err := f.ReadElem(enc); err == nil {
		t.Error("F64 accepted non-canonical encoding")
	}

	f128 := NewF128()
	enc2 := bytes.Repeat([]byte{0xFF}, 16)
	if _, err := f128.ReadElem(enc2); err == nil {
		t.Error("F128 accepted non-canonical encoding")
	}
}
