package field

import (
	"encoding/binary"
	"io"
	"math/big"
	"math/bits"
)

// ModulusF64 is the "Goldilocks" prime 2^64 - 2^32 + 1.
//
// Its multiplicative group has two-adicity 32, so radix-2 NTTs of size up to
// 2^32 are available — far beyond the largest Valid circuit in the paper's
// evaluation (M = 8760 for the Tokyo cell grid).
const ModulusF64 uint64 = 18446744069414584321

// rootF64 is a primitive 2^32-th root of unity mod ModulusF64. It equals
// 7^((p-1)/2^32) mod p for the group generator 7.
const rootF64 uint64 = 1753635133440165772

// epsF64 is 2^32 - 1; note 2^64 ≡ epsF64 (mod p), the identity that drives
// the fast reduction below.
const epsF64 uint64 = 0xFFFFFFFF

// F64 is the Goldilocks field. Elements are uint64 values in [0, p).
// The zero value of F64 is ready to use.
type F64 struct{}

// NewF64 returns the Goldilocks field instance.
func NewF64() F64 { return F64{} }

// Name implements Field.
func (F64) Name() string { return "F64" }

// Bits implements Field.
func (F64) Bits() int { return 64 }

// ElemSize implements Field.
func (F64) ElemSize() int { return 8 }

// Modulus implements Field.
func (F64) Modulus() *big.Int { return new(big.Int).SetUint64(ModulusF64) }

// Zero implements Field.
func (F64) Zero() uint64 { return 0 }

// One implements Field.
func (F64) One() uint64 { return 1 }

// FromUint64 implements Field.
func (F64) FromUint64(v uint64) uint64 {
	if v >= ModulusF64 {
		v -= ModulusF64
	}
	return v
}

// FromInt64 implements Field.
func (f F64) FromInt64(v int64) uint64 {
	if v >= 0 {
		return f.FromUint64(uint64(v))
	}
	return f.Neg(f.FromUint64(uint64(-v)))
}

// FromBig implements Field.
func (F64) FromBig(v *big.Int) uint64 {
	m := new(big.Int).Mod(v, new(big.Int).SetUint64(ModulusF64))
	return m.Uint64()
}

// ToBig implements Field.
func (F64) ToBig(a uint64) *big.Int { return new(big.Int).SetUint64(a) }

// ToUint64 implements Field.
func (F64) ToUint64(a uint64) (uint64, bool) { return a, true }

// Add implements Field.
func (F64) Add(a, b uint64) uint64 {
	r, carry := bits.Add64(a, b, 0)
	if carry != 0 {
		// 2^64 ≡ eps, and r = a+b-2^64 < p-1, so r+eps cannot overflow.
		r += epsF64
	}
	if r >= ModulusF64 {
		r -= ModulusF64
	}
	return r
}

// Sub implements Field.
func (F64) Sub(a, b uint64) uint64 {
	r, borrow := bits.Sub64(a, b, 0)
	if borrow != 0 {
		// a-b+2^64 needs -2^64 ≡ -eps: r ≥ 2^64-p+1 > eps, so no underflow.
		r -= epsF64
	}
	return r
}

// Neg implements Field.
func (F64) Neg(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	return ModulusF64 - a
}

// Mul implements Field.
func (F64) Mul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return reduce128(hi, lo)
}

// reduce128 reduces hi*2^64 + lo modulo the Goldilocks prime using the
// identities 2^64 ≡ 2^32 - 1 and 2^96 ≡ -1 (mod p).
func reduce128(hi, lo uint64) uint64 {
	hihi := hi >> 32
	hilo := hi & epsF64
	t0, borrow := bits.Sub64(lo, hihi, 0)
	if borrow != 0 {
		t0 -= epsF64
	}
	t1 := hilo * epsF64
	t2, carry := bits.Add64(t0, t1, 0)
	if carry != 0 {
		t2 += epsF64
	}
	if t2 >= ModulusF64 {
		t2 -= ModulusF64
	}
	return t2
}

// Inv implements Field. It computes a^(p-2) by square-and-multiply; Inv of
// zero returns zero.
func (f F64) Inv(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	return Pow(f, a, ModulusF64-2)
}

// Equal implements Field.
func (F64) Equal(a, b uint64) bool { return a == b }

// IsZero implements Field.
func (F64) IsZero(a uint64) bool { return a == 0 }

// AppendElem implements Field (8-byte little-endian).
func (F64) AppendElem(dst []byte, a uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, a)
}

// ReadElem implements Field.
func (F64) ReadElem(src []byte) (uint64, error) {
	if len(src) < 8 {
		return 0, ErrShortBuffer
	}
	v := binary.LittleEndian.Uint64(src)
	if v >= ModulusF64 {
		return 0, ErrNonCanonical
	}
	return v, nil
}

// SampleElem implements Field by rejection sampling (rejection probability
// ≈ 2^-32 per draw).
func (F64) SampleElem(r io.Reader) (uint64, error) {
	var buf [8]byte
	for {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return 0, err
		}
		v := binary.LittleEndian.Uint64(buf[:])
		if v < ModulusF64 {
			return v, nil
		}
	}
}

// TwoAdicity implements Field.
func (F64) TwoAdicity() int { return 32 }

// RootOfUnity implements Field.
func (f F64) RootOfUnity(logN int) uint64 {
	if logN < 0 || logN > 32 {
		panic("field: F64 root of unity order out of range")
	}
	r := rootF64
	for i := 32; i > logN; i-- {
		r = f.Mul(r, r)
	}
	return r
}
