package field

import (
	"math/bits"
	"sync"
)

// Slab kernels: vectorized Goldilocks (F64) arithmetic over []uint64.
//
// The generic Field interface keeps every element operation behind a method
// call, which the Go compiler dispatches through a generics dictionary — fine
// for protocol glue, ruinous on the SNIP verification hot path, where a
// server does millions of multiply-adds per second. The kernels below are
// monomorphic uint64 loops the compiler can inline, bounds-check-eliminate,
// and pipeline; DotSlice additionally defers modular reduction by
// accumulating full 128-bit products into a 192-bit accumulator, so the
// per-element cost drops from a multiply plus a full reduction to a multiply
// plus three add-with-carry instructions.
//
// All inputs are canonical Goldilocks elements in [0, p); all outputs are
// canonical. Slices passed to a kernel must have equal lengths (the kernels
// panic otherwise, like their generic counterparts AddVec/InnerProduct).

// AddSlice sets dst[i] = a[i] + b[i] mod p. dst may alias a or b.
func AddSlice(dst, a, b []uint64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("field: AddSlice length mismatch")
	}
	var f F64
	for i := range dst {
		dst[i] = f.Add(a[i], b[i])
	}
}

// SubSlice sets dst[i] = a[i] - b[i] mod p. dst may alias a or b.
func SubSlice(dst, a, b []uint64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("field: SubSlice length mismatch")
	}
	var f F64
	for i := range dst {
		dst[i] = f.Sub(a[i], b[i])
	}
}

// MulSlice sets dst[i] = a[i] * b[i] mod p. dst may alias a or b.
func MulSlice(dst, a, b []uint64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("field: MulSlice length mismatch")
	}
	for i := range dst {
		hi, lo := bits.Mul64(a[i], b[i])
		dst[i] = reduce128(hi, lo)
	}
}

// ScaleSlice sets dst[i] = c * src[i] mod p. dst may alias src.
func ScaleSlice(dst, src []uint64, c uint64) {
	if len(dst) != len(src) {
		panic("field: ScaleSlice length mismatch")
	}
	for i := range dst {
		hi, lo := bits.Mul64(c, src[i])
		dst[i] = reduce128(hi, lo)
	}
}

// ScaleAddSlice sets dst[i] += c * src[i] mod p (the axpy kernel behind
// random-linear-combination folding). dst may alias src.
func ScaleAddSlice(dst, src []uint64, c uint64) {
	if len(dst) != len(src) {
		panic("field: ScaleAddSlice length mismatch")
	}
	var f F64
	for i := range dst {
		hi, lo := bits.Mul64(c, src[i])
		dst[i] = f.Add(dst[i], reduce128(hi, lo))
	}
}

// DotSlice returns the inner product <a, b> mod p with deferred reduction:
// the 128-bit products are summed into a single 192-bit accumulator and
// reduced once at the end. It is the hot kernel of batch SNIP verification
// (evaluating polynomial shares at the challenge point).
func DotSlice(a, b []uint64) uint64 {
	if len(a) != len(b) {
		panic("field: DotSlice length mismatch")
	}
	// Two independent accumulator chains break the add-with-carry dependency
	// so the multiplier and the adders overlap.
	var e0, e1, e2 uint64 // even-index accumulator (192-bit)
	var o0, o1, o2 uint64 // odd-index accumulator
	i := 0
	for ; i+1 < len(a); i += 2 {
		hi, lo := bits.Mul64(a[i], b[i])
		var c uint64
		e0, c = bits.Add64(e0, lo, 0)
		e1, c = bits.Add64(e1, hi, c)
		e2 += c
		hi, lo = bits.Mul64(a[i+1], b[i+1])
		o0, c = bits.Add64(o0, lo, 0)
		o1, c = bits.Add64(o1, hi, c)
		o2 += c
	}
	if i < len(a) {
		hi, lo := bits.Mul64(a[i], b[i])
		var c uint64
		e0, c = bits.Add64(e0, lo, 0)
		e1, c = bits.Add64(e1, hi, c)
		e2 += c
	}
	var c uint64
	e0, c = bits.Add64(e0, o0, 0)
	e1, c = bits.Add64(e1, o1, c)
	e2 += c + o2
	return reduce192(e2, e1, e0)
}

// MulAcc192 accumulates c * src[i] into the per-lane 192-bit accumulator
// (acc2[i]:acc1[i]:acc0[i]) without reduction. It is the slab-major
// counterpart of DotSlice's inner loop: batch verification keeps one lane per
// submission and folds the shared Lagrange weight c across all submissions'
// wire shares in a single pass. Reduce with Reduce192Slice once the whole
// sum is accumulated. The accumulators tolerate at least 2^63 calls before
// overflow, far beyond any batch size.
func MulAcc192(acc0, acc1, acc2, src []uint64, c uint64) {
	n := len(src)
	if len(acc0) != n || len(acc1) != n || len(acc2) != n {
		panic("field: MulAcc192 length mismatch")
	}
	// Lanes are independent: processing two per iteration gives the core two
	// multiply/add-with-carry chains to overlap (same trick as DotSlice).
	i := 0
	for ; i+1 < n; i += 2 {
		hi0, lo0 := bits.Mul64(c, src[i])
		hi1, lo1 := bits.Mul64(c, src[i+1])
		var cr uint64
		acc0[i], cr = bits.Add64(acc0[i], lo0, 0)
		acc1[i], cr = bits.Add64(acc1[i], hi0, cr)
		acc2[i] += cr
		acc0[i+1], cr = bits.Add64(acc0[i+1], lo1, 0)
		acc1[i+1], cr = bits.Add64(acc1[i+1], hi1, cr)
		acc2[i+1] += cr
	}
	if i < n {
		hi, lo := bits.Mul64(c, src[i])
		var cr uint64
		acc0[i], cr = bits.Add64(acc0[i], lo, 0)
		acc1[i], cr = bits.Add64(acc1[i], hi, cr)
		acc2[i] += cr
	}
}

// Reduce192Slice reduces each lane's 192-bit accumulator into a canonical
// element: dst[i] = (acc2[i]·2^128 + acc1[i]·2^64 + acc0[i]) mod p.
func Reduce192Slice(dst, acc0, acc1, acc2 []uint64) {
	n := len(dst)
	if len(acc0) != n || len(acc1) != n || len(acc2) != n {
		panic("field: Reduce192Slice length mismatch")
	}
	for i := 0; i < n; i++ {
		dst[i] = reduce192(acc2[i], acc1[i], acc0[i])
	}
}

// r2modF64 is 2^128 mod p. With eps = 2^32 - 1: 2^128 ≡ eps² = 2^64 - 2^33 + 1
// ≡ (2^32 - 1) - 2^33 + 1 = -2^32 ≡ p - 2^32 (mod p).
const r2modF64 uint64 = ModulusF64 - (1 << 32)

// reduce192 reduces hi2·2^128 + hi·2^64 + lo modulo the Goldilocks prime.
// reduce128 is exact for arbitrary 64-bit limbs (its intermediate sums cannot
// double-overflow; see the bound analysis in f64.go), so the 192-bit value
// folds as reduce128(hi, lo) + hi2·(2^128 mod p).
func reduce192(hi2, hi, lo uint64) uint64 {
	var f F64
	m := reduce128(hi, lo)
	if hi2 == 0 {
		return m
	}
	h, l := bits.Mul64(hi2, r2modF64)
	return f.Add(m, reduce128(h, l))
}

// slabPool recycles []uint64 scratch buffers across batch verifications. One
// pool serves all sizes; GetSlab reallocates when a pooled buffer is too
// small, and buffers converge to the deployment's working sizes (N, 2N,
// batch) after a few rounds.
var slabPool sync.Pool // of *[]uint64

// GetSlab returns a zeroed []uint64 of length n, reusing pooled scratch when
// possible. The slab is private to the caller until PutSlab returns it;
// callers must not retain references past PutSlab — results computed into a
// slab are copied out before the slab goes back, or the slab is simply never
// returned.
func GetSlab(n int) []uint64 {
	if v := slabPool.Get(); v != nil {
		if s := *(v.(*[]uint64)); cap(s) >= n {
			s = s[:n]
			clear(s)
			return s
		}
		// Too small for this caller: drop it and let the pool refill with
		// buffers of the working size.
	}
	return make([]uint64, n)
}

// GetSlabUninit returns a []uint64 of length n with UNSPECIFIED contents,
// reusing pooled scratch without the clearing pass. Use it only for buffers
// every element of which is written before it is read; accumulator slabs
// must use GetSlab.
func GetSlabUninit(n int) []uint64 {
	if v := slabPool.Get(); v != nil {
		if s := *(v.(*[]uint64)); cap(s) >= n {
			return s[:n]
		}
	}
	return make([]uint64, n)
}

// PutSlab returns a slab obtained from GetSlab to the pool.
func PutSlab(s []uint64) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	slabPool.Put(&s)
}
