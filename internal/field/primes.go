package field

import "math/big"

// The paper's prototype evaluated Prio over an 87-bit and a 265-bit
// FFT-friendly field (Table 3). The exact moduli were not published, so we
// fix deterministic substitutes of the same shape c·2^40 + 1: the smallest
// such primes of each bit length with two-adicity 40, found by the
// documented search below (see FindFFTPrime and primes_test.go).
const (
	// ModulusFP87Decimal = 70368744177705 * 2^40 + 1, an 87-bit prime with
	// two-adicity 40.
	ModulusFP87Decimal = "77371252455381347157934081"
	// ModulusFP265Decimal is a 265-bit prime of the form c * 2^40 + 1 with
	// two-adicity 40.
	ModulusFP265Decimal = "29642774844752946028434172162224104410437116074403984394101141506068642141306881"
)

// NewFP87 returns the 87-bit reference field used to reproduce the "87-bit"
// column of Table 3.
func NewFP87() *FP {
	p, _ := new(big.Int).SetString(ModulusFP87Decimal, 10)
	return NewFP("FP87", p)
}

// NewFP265 returns the 265-bit reference field used to reproduce the
// "265-bit" column of Table 3.
func NewFP265() *FP {
	p, _ := new(big.Int).SetString(ModulusFP265Decimal, 10)
	return NewFP("FP265", p)
}

// FindFFTPrime deterministically locates the smallest prime p = c·2^adicity+1
// (c odd, scanned upward from 2^(bits-adicity-1)+1) with exactly the given
// bit length. It documents the provenance of the baked-in constants above and
// lets tests re-derive them.
func FindFFTPrime(bitLen, adicity int) *big.Int {
	one := big.NewInt(1)
	two := big.NewInt(2)
	pow := new(big.Int).Lsh(one, uint(adicity))
	c := new(big.Int).Lsh(one, uint(bitLen-adicity-1))
	c.Or(c, one)
	for {
		p := new(big.Int).Mul(c, pow)
		p.Add(p, one)
		if p.BitLen() == bitLen && p.ProbablyPrime(32) {
			return p
		}
		c.Add(c, two)
	}
}
