package field

import (
	"encoding/binary"
	"io"
	"math/big"
	"math/bits"
)

// ModulusF128Decimal is the 128-bit FFT-friendly prime
//
//	p = 2^66 * (2^62 - 7) + 1
//
// whose multiplicative group has two-adicity 66. It is the same modulus used
// by the libprio family for 128-bit-soundness Prio deployments; the paper
// recommends |F| ~ 2^128 so that a single Schwartz-Zippel identity test has
// negligible failure probability (Section 4.3).
const ModulusF128Decimal = "340282366920938462946865773367900766209"

// rootF128Decimal is a primitive 2^66-th root of unity modulo the F128
// modulus (computed as g^((p-1)/2^66) for a verified non-residue g).
const rootF128Decimal = "145091266659756586618791329697897684742"

// U128 is an element of F128 in Montgomery form (value * 2^128 mod p),
// stored as two little-endian 64-bit limbs.
type U128 struct {
	Lo, Hi uint64
}

// f128Consts holds the precomputed Montgomery constants, built once at
// package initialization from the decimal modulus string.
type f128Consts struct {
	p0, p1   uint64 // modulus limbs
	inv      uint64 // -p^{-1} mod 2^64
	one      U128   // 2^128 mod p (Montgomery form of 1)
	r2       U128   // 2^256 mod p (for conversion into Montgomery form)
	rootMont U128   // primitive 2^66 root of unity, Montgomery form
	pBig     *big.Int
}

var f128c = initF128()

func initF128() f128Consts {
	p, ok := new(big.Int).SetString(ModulusF128Decimal, 10)
	if !ok {
		panic("field: bad F128 modulus")
	}
	var c f128Consts
	c.pBig = p
	c.p0 = p.Uint64()
	c.p1 = new(big.Int).Rsh(p, 64).Uint64()

	r := new(big.Int).Lsh(big.NewInt(1), 64) // 2^64
	pinv := new(big.Int).ModInverse(p, r)
	// inv = -p^{-1} mod 2^64
	c.inv = -pinv.Uint64()

	toU128 := func(v *big.Int) U128 {
		m := new(big.Int).Mod(v, p)
		return U128{Lo: m.Uint64(), Hi: new(big.Int).Rsh(m, 64).Uint64()}
	}
	c.one = toU128(new(big.Int).Lsh(big.NewInt(1), 128))
	c.r2 = toU128(new(big.Int).Lsh(big.NewInt(1), 256))

	root, ok := new(big.Int).SetString(rootF128Decimal, 10)
	if !ok {
		panic("field: bad F128 root")
	}
	// Convert the canonical root into Montgomery form: root * 2^128 mod p.
	c.rootMont = toU128(new(big.Int).Lsh(root, 128))
	return c
}

// F128 is the 128-bit FFT-friendly field. The zero value is ready to use.
type F128 struct{}

// NewF128 returns the F128 field instance.
func NewF128() F128 { return F128{} }

// Name implements Field.
func (F128) Name() string { return "F128" }

// Bits implements Field.
func (F128) Bits() int { return 128 }

// ElemSize implements Field.
func (F128) ElemSize() int { return 16 }

// Modulus implements Field.
func (F128) Modulus() *big.Int { return new(big.Int).Set(f128c.pBig) }

// Zero implements Field.
func (F128) Zero() U128 { return U128{} }

// One implements Field.
func (F128) One() U128 { return f128c.one }

// madd64 computes x + y*z + c, returning (carry-word, low-word).
func madd64(x, y, z, c uint64) (hi, lo uint64) {
	hi, lo = bits.Mul64(y, z)
	var cc uint64
	lo, cc = bits.Add64(lo, x, 0)
	hi += cc
	lo, cc = bits.Add64(lo, c, 0)
	hi += cc
	return
}

// montMul returns a*b*2^-128 mod p (CIOS Montgomery multiplication for two
// limbs, following Koç-Acar-Kaliski).
func montMul(a, b U128) U128 {
	var t0, t1, t2, t3 uint64
	aw := [2]uint64{a.Lo, a.Hi}
	for i := 0; i < 2; i++ {
		ai := aw[i]
		// t += ai * b
		var C uint64
		C, t0 = madd64(t0, ai, b.Lo, 0)
		C, t1 = madd64(t1, ai, b.Hi, C)
		var c uint64
		t2, c = bits.Add64(t2, C, 0)
		t3 += c
		// Montgomery reduction step: t += m*p; t >>= 64.
		m := t0 * f128c.inv
		C, _ = madd64(t0, m, f128c.p0, 0)
		C, t0 = madd64(t1, m, f128c.p1, C)
		t1, c = bits.Add64(t2, C, 0)
		t2 = t3 + c
		t3 = 0
	}
	// Result is t2*2^128 + t1*2^64 + t0 < 2p: one conditional subtraction.
	if t2 != 0 || u128GTE(t1, t0, f128c.p1, f128c.p0) {
		var b uint64
		t0, b = bits.Sub64(t0, f128c.p0, 0)
		t1, _ = bits.Sub64(t1, f128c.p1, b)
	}
	return U128{Lo: t0, Hi: t1}
}

// u128GTE reports whether (aHi,aLo) >= (bHi,bLo).
func u128GTE(aHi, aLo, bHi, bLo uint64) bool {
	if aHi != bHi {
		return aHi > bHi
	}
	return aLo >= bLo
}

// toMont converts a canonical residue into Montgomery form.
func toMont(a U128) U128 { return montMul(a, f128c.r2) }

// fromMont converts a Montgomery-form element to its canonical residue.
func fromMont(a U128) U128 { return montMul(a, U128{Lo: 1}) }

// FromUint64 implements Field.
func (F128) FromUint64(v uint64) U128 { return toMont(U128{Lo: v}) }

// FromInt64 implements Field.
func (f F128) FromInt64(v int64) U128 {
	if v >= 0 {
		return f.FromUint64(uint64(v))
	}
	return f.Neg(f.FromUint64(uint64(-v)))
}

// FromBig implements Field.
func (F128) FromBig(v *big.Int) U128 {
	m := new(big.Int).Mod(v, f128c.pBig)
	return toMont(U128{Lo: m.Uint64(), Hi: new(big.Int).Rsh(m, 64).Uint64()})
}

// ToBig implements Field.
func (F128) ToBig(a U128) *big.Int {
	c := fromMont(a)
	v := new(big.Int).SetUint64(c.Hi)
	v.Lsh(v, 64)
	return v.Or(v, new(big.Int).SetUint64(c.Lo))
}

// ToUint64 implements Field.
func (F128) ToUint64(a U128) (uint64, bool) {
	c := fromMont(a)
	return c.Lo, c.Hi == 0
}

// Add implements Field.
func (F128) Add(a, b U128) U128 {
	lo, c := bits.Add64(a.Lo, b.Lo, 0)
	hi, c2 := bits.Add64(a.Hi, b.Hi, c)
	if c2 != 0 || u128GTE(hi, lo, f128c.p1, f128c.p0) {
		var br uint64
		lo, br = bits.Sub64(lo, f128c.p0, 0)
		hi, _ = bits.Sub64(hi, f128c.p1, br)
	}
	return U128{Lo: lo, Hi: hi}
}

// Sub implements Field.
func (F128) Sub(a, b U128) U128 {
	lo, br := bits.Sub64(a.Lo, b.Lo, 0)
	hi, br2 := bits.Sub64(a.Hi, b.Hi, br)
	if br2 != 0 {
		var c uint64
		lo, c = bits.Add64(lo, f128c.p0, 0)
		hi, _ = bits.Add64(hi, f128c.p1, c)
	}
	return U128{Lo: lo, Hi: hi}
}

// Neg implements Field.
func (F128) Neg(a U128) U128 {
	if a.Lo == 0 && a.Hi == 0 {
		return a
	}
	lo, br := bits.Sub64(f128c.p0, a.Lo, 0)
	hi, _ := bits.Sub64(f128c.p1, a.Hi, br)
	return U128{Lo: lo, Hi: hi}
}

// Mul implements Field.
func (F128) Mul(a, b U128) U128 { return montMul(a, b) }

// Inv implements Field (Fermat: a^(p-2)), returning zero for zero input.
func (f F128) Inv(a U128) U128 {
	if a.Lo == 0 && a.Hi == 0 {
		return a
	}
	// exponent e = p - 2, little-endian limbs
	var e0, e1 uint64
	{
		var br uint64
		e0, br = bits.Sub64(f128c.p0, 2, 0)
		e1, _ = bits.Sub64(f128c.p1, 0, br)
	}
	r := f.One()
	base := a
	for i := 0; i < 64; i++ {
		if (e0>>uint(i))&1 == 1 {
			r = montMul(r, base)
		}
		base = montMul(base, base)
	}
	for i := 0; i < 64; i++ {
		if (e1>>uint(i))&1 == 1 {
			r = montMul(r, base)
		}
		base = montMul(base, base)
	}
	return r
}

// Equal implements Field. Montgomery representation is canonical (< p), so
// limb equality suffices.
func (F128) Equal(a, b U128) bool { return a == b }

// IsZero implements Field.
func (F128) IsZero(a U128) bool { return a.Lo == 0 && a.Hi == 0 }

// AppendElem implements Field (16-byte little-endian canonical residue).
func (F128) AppendElem(dst []byte, a U128) []byte {
	c := fromMont(a)
	dst = binary.LittleEndian.AppendUint64(dst, c.Lo)
	return binary.LittleEndian.AppendUint64(dst, c.Hi)
}

// ReadElem implements Field.
func (F128) ReadElem(src []byte) (U128, error) {
	if len(src) < 16 {
		return U128{}, ErrShortBuffer
	}
	lo := binary.LittleEndian.Uint64(src)
	hi := binary.LittleEndian.Uint64(src[8:])
	if u128GTE(hi, lo, f128c.p1, f128c.p0) {
		return U128{}, ErrNonCanonical
	}
	return toMont(U128{Lo: lo, Hi: hi}), nil
}

// SampleElem implements Field by rejection sampling 16-byte draws.
func (F128) SampleElem(r io.Reader) (U128, error) {
	var buf [16]byte
	for {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return U128{}, err
		}
		lo := binary.LittleEndian.Uint64(buf[:8])
		hi := binary.LittleEndian.Uint64(buf[8:])
		if !u128GTE(hi, lo, f128c.p1, f128c.p0) {
			return toMont(U128{Lo: lo, Hi: hi}), nil
		}
	}
}

// TwoAdicity implements Field.
func (F128) TwoAdicity() int { return 66 }

// RootOfUnity implements Field.
func (f F128) RootOfUnity(logN int) U128 {
	if logN < 0 || logN > 66 {
		panic("field: F128 root of unity order out of range")
	}
	r := f128c.rootMont
	for i := 66; i > logN; i-- {
		r = montMul(r, r)
	}
	return r
}
