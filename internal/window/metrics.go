package window

import (
	"prio/internal/field"
	"prio/internal/telemetry"
)

// metricsSet is the prio_window_* series. Catalogued in
// docs/OBSERVABILITY.md — keep the two in sync.
type metricsSet struct {
	published    *telemetry.Counter
	republished  *telemetry.Counter
	inconsistent *telemetry.Counter
	skipped      *telemetry.Counter
	pubFailures  *telemetry.Counter
	pubDur       *telemetry.DurationHistogram

	ckpts        *telemetry.Counter
	ckptFailures *telemetry.Counter
	ckptBytes    *telemetry.Gauge
	ckptDur      *telemetry.DurationHistogram

	lastCount *telemetry.Gauge
}

func newMetrics[Fd field.Field[E], E any](r *telemetry.Registry, s *Service[Fd, E]) *metricsSet {
	m := &metricsSet{
		published:    r.Counter("prio_window_published_total", "Collection windows this leader has published."),
		republished:  r.Counter("prio_window_republished_total", "Published windows that replayed already-sealed shares (post-failover catch-up)."),
		inconsistent: r.Counter("prio_window_inconsistent_total", "Published windows whose per-server accepted counts disagreed."),
		skipped:      r.Counter("prio_window_skipped_total", "Closed windows dropped past the catch-up horizon instead of published."),
		pubFailures:  r.Counter("prio_window_publish_failures_total", "Window publish attempts that failed (retried at the next boundary)."),
		pubDur:       r.Duration("prio_window_publish_seconds", "Latency of one window publish round across the roster."),
		ckpts:        r.Counter("prio_window_checkpoints_total", "Durable checkpoints written."),
		ckptFailures: r.Counter("prio_window_checkpoint_failures_total", "Checkpoint writes that failed."),
		ckptBytes:    r.Gauge("prio_window_checkpoint_bytes", "Size of the most recent checkpoint file."),
		ckptDur:      r.Duration("prio_window_checkpoint_seconds", "Latency of one durable checkpoint write (marshal, fsync, rename)."),
		lastCount:    r.Gauge("prio_window_last_count", "Accepted submissions in the most recently published window (server 0's count)."),
	}
	r.GaugeFunc("prio_window_current", "Collection window open right now.", func() float64 {
		return float64(s.Current())
	})
	r.GaugeFunc("prio_window_last_published", "Newest window this member has published.", func() float64 {
		return float64(s.LastPublished())
	})
	r.GaugeFunc("prio_window_spilled_total", "Accepted shares that arrived for a sealed window and rolled forward.", func() float64 {
		return float64(s.cfg.Server.WindowSpills())
	})
	r.GaugeFunc("prio_window_dp_epsilon_spent", "Cumulative DP epsilon this member has spent sealing windows.", func() float64 {
		return s.cfg.Budget.Spent()
	})
	return m
}
