// Package window turns the run-until-asked Prio accumulator into a
// long-running aggregation service with tumbling collection windows:
// submissions land in the window open at their commit, each window seals
// with this server's own differential-privacy noise at close (internal/dp,
// Section 7 of the paper), and the sitting leader publishes the noised
// per-window aggregate over the existing transport (core.MsgWindowPublish).
//
// Durability comes from the checkpoint layer (checkpoint.go): periodic
// atomic-rename snapshots of the sealed and in-progress window accumulators
// — versioned, CRC-protected, fsync'd — so a kill -9 and restart replays
// from the last checkpoint and loses at most the in-flight window. Torn or
// truncated files fail the CRC and are skipped, falling back to the
// previous snapshot.
//
// Terminology: a *window* is a wall-clock collection interval (WindowID =
// quantized UnixNano). It is deliberately not called an epoch — in this
// codebase an epoch is a cluster leadership term (internal/cluster), a
// counter with no relation to time or to aggregation. See docs/WINDOWS.md
// and the terminology note in docs/CLUSTER.md.
package window
