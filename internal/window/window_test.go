package window

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prio/internal/afe"
	"prio/internal/core"
	"prio/internal/dp"
	"prio/internal/field"
)

// fakeClock is a settable clock shared by every service in a test.
type fakeClock struct{ ns atomic.Int64 }

func (c *fakeClock) Now() time.Time     { return time.Unix(0, c.ns.Load()) }
func (c *fakeClock) Set(t time.Time)    { c.ns.Store(t.UnixNano()) }
func (c *fakeClock) Advance(d time.Duration) { c.ns.Add(int64(d)) }

// newDeployment builds a local SNIP-mode cluster summing 8-bit integers.
func newDeployment(t *testing.T, servers int) (*core.Cluster[field.F64, uint64], *core.Client[field.F64, uint64], *afe.Sum[field.F64, uint64]) {
	t.Helper()
	f := field.NewF64()
	scheme := afe.NewSum(f, 8)
	pro, err := core.NewProtocol(core.Config[field.F64, uint64]{
		Field:    f,
		Scheme:   scheme,
		Servers:  servers,
		Mode:     core.ModeSNIP,
		SnipReps: 2,
		Seal:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := core.NewLocalCluster(pro)
	if err != nil {
		t.Fatal(err)
	}
	client, err := core.NewClient(pro, cl.PublicKeys(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return cl, client, scheme
}

func submit(t *testing.T, cl *core.Cluster[field.F64, uint64], client *core.Client[field.F64, uint64], scheme *afe.Sum[field.F64, uint64], vals ...uint64) {
	t.Helper()
	var subs []*core.Submission
	for _, v := range vals {
		enc, err := scheme.Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		sub, err := client.BuildSubmission(enc)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub)
	}
	accepts, err := cl.Leader.ProcessBatch(subs)
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range accepts {
		if !ok {
			t.Fatalf("submission %d rejected", i)
		}
	}
}

// recorder collects OnPublish records.
type recorder struct {
	mu   sync.Mutex
	recs []Record
}

func (rc *recorder) add(r Record) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.recs = append(rc.recs, r)
}

func (rc *recorder) all() []Record {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return append([]Record(nil), rc.recs...)
}

// newServices builds one Service per cluster member: member 0 carries the
// Leader and the recorder, every member gets its own checkpoint store under
// base (reused across "restarts" of the same test).
func newServices(t *testing.T, cl *core.Cluster[field.F64, uint64], now func() time.Time, width time.Duration, base string, eps float64, budget func() *dp.Budget, rec *recorder) []*Service[field.F64, uint64] {
	t.Helper()
	f := field.NewF64()
	svcs := make([]*Service[field.F64, uint64], len(cl.Servers))
	for i, srv := range cl.Servers {
		st, err := NewStore(filepath.Join(base, "m"+string(rune('0'+i))))
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config[field.F64, uint64]{
			Field:  f,
			Width:  width,
			Server: srv,
			Store:  st,
			Clock:  now,
		}
		if eps > 0 {
			cfg.DP = dp.Params{Epsilon: eps, Sensitivity: 1}
		}
		if budget != nil {
			cfg.Budget = budget()
		}
		if i == 0 {
			cfg.Leader = cl.Leader
			if rec != nil {
				cfg.OnPublish = rec.add
			}
		}
		svc, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		svcs[i] = svc
	}
	return svcs
}

func TestIDHelpers(t *testing.T) {
	w := time.Minute
	t0 := time.Unix(7200, 0)
	id := ID(t0, w)
	if id == 0 {
		t.Fatal("ID 0 is reserved")
	}
	if got := ID(t0, 0); got != 0 {
		t.Fatalf("zero width ID = %d, want 0", got)
	}
	if s, e := StartOf(id, w), EndOf(id, w); t0.Before(s) || !t0.Before(e) {
		t.Fatalf("t=%v outside its window [%v, %v)", t0, s, e)
	}
	if ID(EndOf(id, w), w) != id+1 {
		t.Fatal("window end does not open the next window")
	}
}

func testSnapshot(k int) *Snapshot[uint64] {
	total := make([]uint64, k)
	vec1 := make([]uint64, k)
	vec2 := make([]uint64, k)
	for i := 0; i < k; i++ {
		total[i] = uint64(i * 3)
		vec1[i] = uint64(i + 1)
		vec2[i] = uint64(i * i)
	}
	return &Snapshot[uint64]{
		LastPublished: 41,
		DPSpent:       1.25,
		Acc: core.AccState[uint64]{
			Total:      total,
			TotalCount: 99,
			Spilled:    2,
			Windows: []core.WindowState[uint64]{
				{ID: 41, Sealed: true, Noised: true, Eps: 0.5, Count: 60, Vec: vec1},
				{ID: 42, Count: 39, Vec: vec2},
			},
		},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	f := field.NewF64()
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	const k = 9
	snap := testSnapshot(k)
	if _, err := Save(st, f, snap); err != nil {
		t.Fatal(err)
	}
	// Re-open the store (a restart) and load.
	st2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, info, err := Load(st2, f, k)
	if err != nil {
		t.Fatal(err)
	}
	if info.Skipped != 0 || info.File == "" {
		t.Fatalf("load info = %+v", info)
	}
	if !reflect.DeepEqual(snap, got) {
		t.Fatalf("round trip not exact:\nsaved %+v\ngot   %+v", snap, got)
	}
	// Saves prune down to ckptKeep files, and the re-opened store resumed
	// the sequence (no name collision with the first file).
	for i := 0; i < 4; i++ {
		if _, err := Save(st2, f, snap); err != nil {
			t.Fatal(err)
		}
	}
	files, err := st2.list()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != ckptKeep {
		t.Fatalf("kept %d files, want %d", len(files), ckptKeep)
	}
}

func TestCheckpointCorruptFallsBack(t *testing.T) {
	f := field.NewF64()
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	const k = 4
	older := testSnapshot(k)
	older.LastPublished = 1
	newer := testSnapshot(k)
	newer.LastPublished = 2
	if _, err := Save(st, f, older); err != nil {
		t.Fatal(err)
	}
	if _, err := Save(st, f, newer); err != nil {
		t.Fatal(err)
	}
	files, _ := st.list()
	if len(files) != 2 {
		t.Fatalf("have %d files", len(files))
	}
	// Flip one payload byte of the newest file: the CRC must catch it and
	// Load must fall back to the older snapshot.
	newest := filepath.Join(dir, files[1].name)
	b, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	b[len(ckptMagic)+8+3] ^= 0xFF
	if err := os.WriteFile(newest, b, 0o600); err != nil {
		t.Fatal(err)
	}
	got, info, err := Load(st, f, k)
	if err != nil {
		t.Fatal(err)
	}
	if info.Skipped != 1 || got == nil || got.LastPublished != 1 {
		t.Fatalf("fallback failed: info=%+v got=%+v", info, got)
	}
	// Truncate the older file too (a torn write): nothing usable remains,
	// which is a clean empty start, not an error.
	oldest := filepath.Join(dir, files[0].name)
	ob, _ := os.ReadFile(oldest)
	if err := os.WriteFile(oldest, ob[:len(ob)/2], 0o600); err != nil {
		t.Fatal(err)
	}
	got, info, err = Load(st, f, k)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil || info.Skipped != 2 {
		t.Fatalf("fully corrupt store: info=%+v got=%+v", info, got)
	}
	// A snapshot for the wrong aggregate width is rejected as corrupt, not
	// restored into a mismatched server.
	if _, err := Save(st, f, testSnapshot(k)); err != nil {
		t.Fatal(err)
	}
	if _, info, err := Load(st, f, k+1); err != nil || info.File != "" {
		t.Fatalf("wrong-width snapshot accepted: info=%+v err=%v", info, err)
	}
}

func TestBoundaryPublishAndLedger(t *testing.T) {
	cl, client, scheme := newDeployment(t, 3)
	clk := &fakeClock{}
	width := time.Minute
	clk.Set(time.Unix(6000, 0))
	rec := &recorder{}
	svcs := newServices(t, cl, clk.Now, width, t.TempDir(), 0, nil, rec)
	w1 := svcs[0].Current()

	submit(t, cl, client, scheme, 3, 4, 5)
	clk.Advance(width)
	for _, s := range svcs {
		s.CloseBoundary()
	}
	recs := rec.all()
	if len(recs) != 1 {
		t.Fatalf("published %d windows, want 1", len(recs))
	}
	r := recs[0]
	if r.ID != w1 || r.Count != 3 || !r.Consistent || r.Noised || r.Republished {
		t.Fatalf("record = %+v", r)
	}
	if r.Agg[0] != "12" {
		t.Fatalf("aggregate = %v, want [12 ...]", r.Agg)
	}
	if svcs[0].LastPublished() != w1 {
		t.Fatalf("lastPub = %d, want %d", svcs[0].LastPublished(), w1)
	}
	// Every member checkpointed at the boundary.
	for i, s := range svcs {
		if files, _ := s.cfg.Store.list(); len(files) == 0 {
			t.Fatalf("member %d has no checkpoint", i)
		}
	}
	// An idle boundary publishes the (empty) next window rather than
	// stalling the release schedule.
	clk.Advance(width)
	svcs[0].CloseBoundary()
	recs = rec.all()
	if len(recs) != 2 || recs[1].ID != w1+1 || recs[1].Count != 0 {
		t.Fatalf("idle window record: %+v", recs)
	}
}

func TestCatchUpHorizonSkips(t *testing.T) {
	cl, _, _ := newDeployment(t, 2)
	clk := &fakeClock{}
	width := time.Minute
	clk.Set(time.Unix(60000, 0))
	rec := &recorder{}
	svcs := newServices(t, cl, clk.Now, width, t.TempDir(), 0, nil, rec)
	w1 := svcs[0].Current()
	// Jump ten windows: only the newest MaxCatchUp close, the rest are
	// skipped, and the cursor lands on the latest closed window.
	clk.Advance(10 * width)
	svcs[0].CloseBoundary()
	recs := rec.all()
	if len(recs) != defaultMaxCatchUp {
		t.Fatalf("published %d windows, want %d", len(recs), defaultMaxCatchUp)
	}
	if first, last := recs[0].ID, recs[len(recs)-1].ID; last != w1+9 || first != w1+10-uint64(defaultMaxCatchUp) {
		t.Fatalf("published %d..%d", first, last)
	}
	if svcs[0].LastPublished() != w1+9 {
		t.Fatalf("lastPub = %d", svcs[0].LastPublished())
	}
}

func TestCrashRecoveryBitIdentical(t *testing.T) {
	base := t.TempDir()
	clk := &fakeClock{}
	width := time.Minute
	clk.Set(time.Unix(120000, 0))

	cl, client, scheme := newDeployment(t, 3)
	rec := &recorder{}
	budget := func() *dp.Budget {
		b, err := dp.NewBudget(10, false)
		if err != nil {
			panic(err)
		}
		return b
	}
	svcs := newServices(t, cl, clk.Now, width, base, 0.5, budget, rec)
	w1 := svcs[0].Current()

	submit(t, cl, client, scheme, 5, 6)
	clk.Advance(width)
	for _, s := range svcs {
		s.CloseBoundary() // leader publishes w1 (sealing with noise); all checkpoint
	}
	recs := rec.all()
	if len(recs) != 1 || !recs[0].Noised || recs[0].Eps != 0.5 {
		t.Fatalf("pre-crash publish: %+v", recs)
	}
	sealed, err := cl.Leader.PublishWindow(w1)
	if err != nil {
		t.Fatal(err)
	}
	if !sealed.Resealed {
		t.Fatal("replay of a published window should report resealed")
	}

	// Submissions for the next window land after the boundary checkpoint —
	// these are the in-flight state a kill -9 may lose.
	submit(t, cl, client, scheme, 200)

	// "kill -9": drop the whole cluster, rebuild from scratch, and recover
	// each member from its checkpoint directory.
	cl2, client2, scheme2 := newDeployment(t, 3)
	rec2 := &recorder{}
	svcs2 := newServices(t, cl2, clk.Now, width, base, 0.5, budget, rec2)
	for i, s := range svcs2 {
		ok, info := s.Recovered()
		if !ok || info.Skipped != 0 {
			t.Fatalf("member %d did not recover: %+v", i, info)
		}
	}
	if lp := svcs2[0].LastPublished(); lp != w1 {
		t.Fatalf("recovered cursor = %d, want %d", lp, w1)
	}

	// The recovered sealed aggregate is bit-identical to the pre-crash one
	// — stored noise replays, it is never redrawn.
	replay, err := cl2.Leader.PublishWindow(w1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sealed.Agg, replay.Agg) {
		t.Fatalf("recovered aggregate differs:\npre  %v\npost %v", sealed.Agg, replay.Agg)
	}
	if !reflect.DeepEqual(sealed.Counts, replay.Counts) || !reflect.DeepEqual(sealed.Eps, replay.Eps) {
		t.Fatal("recovered metadata differs")
	}
	if !replay.Resealed {
		t.Fatal("recovered publish should replay sealed shares")
	}

	// The in-flight window 2 submission (200) died with the process; the
	// next window still closes correctly with post-restart traffic only.
	submit(t, cl2, client2, scheme2, 7, 8)
	clk.Advance(width)
	for _, s := range svcs2 {
		s.CloseBoundary()
	}
	got := rec2.all()
	if len(got) != 1 || got[0].ID != w1+1 || got[0].Count != 2 {
		t.Fatalf("post-restart window: %+v", got)
	}
	// DP ledger survived the crash: w1 (pre-crash) + w2 (post-restart).
	if spent := svcs2[0].cfg.Budget.Spent(); spent != 1.0 {
		t.Fatalf("recovered budget spent = %g, want 1.0", spent)
	}
}

func TestCrashMidWindowLosesOnlyInFlight(t *testing.T) {
	base := t.TempDir()
	clk := &fakeClock{}
	width := time.Minute
	clk.Set(time.Unix(180000, 0))

	cl, client, scheme := newDeployment(t, 2)
	svcs := newServices(t, cl, clk.Now, width, base, 0, nil, nil)
	w1 := svcs[0].Current()

	submit(t, cl, client, scheme, 10, 20)
	for _, s := range svcs {
		s.Checkpoint() // mid-window snapshot
	}
	submit(t, cl, client, scheme, 99) // in-flight, not checkpointed

	// Crash before the window closed: recovery replays the checkpoint, so
	// exactly the un-checkpointed submission is lost and the window seals
	// from the durable state.
	cl2, _, _ := newDeployment(t, 2)
	rec2 := &recorder{}
	svcs2 := newServices(t, cl2, clk.Now, width, base, 0, nil, rec2)
	clk.Advance(width)
	for _, s := range svcs2 {
		s.CloseBoundary()
	}
	recs := rec2.all()
	if len(recs) != 1 || recs[0].ID != w1 || recs[0].Count != 2 {
		t.Fatalf("recovered window: %+v", recs)
	}
	if recs[0].Agg[0] != "30" {
		t.Fatalf("recovered aggregate = %v, want [30 ...]", recs[0].Agg)
	}
}

func TestBudgetExhaustionBlocksSeal(t *testing.T) {
	cl, client, scheme := newDeployment(t, 2)
	clk := &fakeClock{}
	width := time.Minute
	clk.Set(time.Unix(240000, 0))
	rec := &recorder{}
	// Cap 0.5, ε 0.4 per window, no clamping: the first window fits, the
	// second refuses to seal and the publish cursor does not advance.
	budget := func() *dp.Budget {
		b, err := dp.NewBudget(0.5, false)
		if err != nil {
			panic(err)
		}
		return b
	}
	svcs := newServices(t, cl, clk.Now, width, t.TempDir(), 0.4, budget, rec)
	w1 := svcs[0].Current()

	submit(t, cl, client, scheme, 1)
	clk.Advance(width)
	svcs[0].CloseBoundary()
	submit(t, cl, client, scheme, 2)
	clk.Advance(width)
	svcs[0].CloseBoundary()

	recs := rec.all()
	if len(recs) != 1 || recs[0].ID != w1 {
		t.Fatalf("records = %+v", recs)
	}
	if svcs[0].LastPublished() != w1 {
		t.Fatalf("cursor advanced past a refused window: %d", svcs[0].LastPublished())
	}
	if _, err := cl.Leader.PublishWindow(w1 + 1); !errors.Is(err, dp.ErrBudgetExhausted) {
		t.Fatalf("publish error = %v, want budget exhaustion", err)
	}
}

func TestBudgetClampTrimsWindowEpsilon(t *testing.T) {
	cl, client, scheme := newDeployment(t, 2)
	clk := &fakeClock{}
	width := time.Minute
	clk.Set(time.Unix(300000, 0))
	rec := &recorder{}
	budget := func() *dp.Budget {
		b, err := dp.NewBudget(0.5, true)
		if err != nil {
			panic(err)
		}
		return b
	}
	svcs := newServices(t, cl, clk.Now, width, t.TempDir(), 0.4, budget, rec)

	submit(t, cl, client, scheme, 1)
	clk.Advance(width)
	svcs[0].CloseBoundary()
	submit(t, cl, client, scheme, 2)
	clk.Advance(width)
	svcs[0].CloseBoundary()

	recs := rec.all()
	if len(recs) != 2 {
		t.Fatalf("published %d windows, want 2", len(recs))
	}
	if recs[0].Eps != 0.4 || !almostEqual(recs[1].Eps, 0.1) {
		t.Fatalf("eps = %g, %g; want 0.4 then clamped 0.1", recs[0].Eps, recs[1].Eps)
	}
}

func almostEqual(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func TestAggregatesHandler(t *testing.T) {
	cl, client, scheme := newDeployment(t, 2)
	clk := &fakeClock{}
	width := time.Minute
	clk.Set(time.Unix(360000, 0))
	svcs := newServices(t, cl, clk.Now, width, t.TempDir(), 0, nil, nil)
	w1 := svcs[0].Current()

	submit(t, cl, client, scheme, 4, 4)
	clk.Advance(width)
	svcs[0].CloseBoundary()

	rr := httptest.NewRecorder()
	svcs[0].AggregatesHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/aggregates", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var view struct {
		Width         string   `json:"width"`
		Current       uint64   `json:"current_window"`
		LastPublished uint64   `json:"last_published"`
		Windows       []Record `json:"windows"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	if view.Width != "1m0s" || view.LastPublished != w1 || len(view.Windows) != 1 {
		t.Fatalf("view = %+v", view)
	}
	if w := view.Windows[0]; w.ID != w1 || w.Count != 2 || w.Agg[0] != "8" {
		t.Fatalf("window = %+v", w)
	}
}

func TestServiceLoopRealTime(t *testing.T) {
	cl, client, scheme := newDeployment(t, 2)
	rec := &recorder{}
	svcs := newServices(t, cl, time.Now, 75*time.Millisecond, t.TempDir(), 0, nil, rec)
	for _, s := range svcs {
		s.Start()
	}
	defer func() {
		for _, s := range svcs {
			s.Close()
		}
	}()
	submit(t, cl, client, scheme, 1, 2, 3)
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		for _, r := range rec.all() {
			if r.Count == 3 {
				return // the submissions' window closed and published
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("window never published; records: %+v", rec.all())
}
