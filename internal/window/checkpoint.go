package window

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"prio/internal/core"
	"prio/internal/field"
)

// Checkpoint file layout (all integers little-endian):
//
//	magic   [8]byte  "PRWCKPT1"
//	version u32      1
//	length  u32      payload byte count
//	payload          marshalled Snapshot (see marshalSnapshot)
//	crc     u32      CRC-32 (IEEE) over payload
//
// A write is atomic at the file level: the bytes go to a .tmp sibling,
// fsync, rename over the final name, fsync the directory. A crash at any
// point leaves either the complete new file or the previous one; a torn or
// truncated file fails the length or CRC check on load and is skipped. The
// store keeps the newest ckptKeep files so one corrupt snapshot (a bad
// sector, a partial rename on a dying disk) still falls back a generation
// instead of losing all accumulator state.
const (
	ckptMagic   = "PRWCKPT1"
	ckptVersion = 1
	ckptPrefix  = "ckpt-"
	ckptKeep    = 2
)

// ErrCorrupt marks a checkpoint file that failed structural or CRC
// validation. Load treats it as skippable, not fatal.
var ErrCorrupt = errors.New("window: corrupt checkpoint")

// Snapshot is everything a member must persist to survive a restart: the
// accumulator state (all-time total plus every live window, sealed windows
// already carrying their noise), the publish cursor, and the DP budget
// ledger — restoring spent ε is what keeps a crash loop from silently
// resetting the composition guarantee.
type Snapshot[E any] struct {
	LastPublished uint64
	DPSpent       float64
	Acc           core.AccState[E]
}

// Store manages the checkpoint files of one member in one directory.
// Save/Load are free functions because they are generic over the field
// (Go methods cannot introduce type parameters).
type Store struct {
	dir string

	mu  sync.Mutex
	seq uint64 // sequence of the newest file written or found
}

// NewStore opens (creating if needed, mode 0700 — accumulator shares are
// sensitive) the checkpoint directory and resumes the sequence numbering
// after any existing files.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("window: empty checkpoint dir")
	}
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("window: checkpoint dir: %w", err)
	}
	st := &Store{dir: dir}
	files, err := st.list()
	if err != nil {
		return nil, err
	}
	if n := len(files); n > 0 {
		st.seq = files[n-1].seq
	}
	return st, nil
}

// Dir returns the checkpoint directory.
func (st *Store) Dir() string { return st.dir }

type ckptFile struct {
	name string
	seq  uint64
}

// list returns the checkpoint files ascending by sequence.
func (st *Store) list() ([]ckptFile, error) {
	ents, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, err
	}
	var out []ckptFile
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, ckptPrefix) || strings.HasSuffix(name, ".tmp") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimPrefix(name, ckptPrefix), 16, 64)
		if err != nil {
			continue
		}
		out = append(out, ckptFile{name: name, seq: seq})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out, nil
}

// Save durably writes snap as the newest checkpoint and prunes old files
// down to ckptKeep. It returns the file's byte size.
func Save[Fd field.Field[E], E any](st *Store, f Fd, snap *Snapshot[E]) (int, error) {
	payload := marshalSnapshot(f, snap)
	buf := make([]byte, 0, len(ckptMagic)+12+len(payload))
	buf = append(buf, ckptMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, ckptVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))

	st.mu.Lock()
	defer st.mu.Unlock()
	st.seq++
	name := fmt.Sprintf("%s%016x", ckptPrefix, st.seq)
	tmp := filepath.Join(st.dir, name+".tmp")
	final := filepath.Join(st.dir, name)
	fh, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return 0, err
	}
	if _, err := fh.Write(buf); err != nil {
		fh.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := fh.Sync(); err != nil {
		fh.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := fh.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := syncDir(st.dir); err != nil {
		return 0, err
	}
	st.pruneLocked()
	return len(buf), nil
}

// syncDir fsyncs a directory so a rename survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// pruneLocked removes everything but the newest ckptKeep files (best
// effort — a prune failure never fails the save that preceded it).
func (st *Store) pruneLocked() {
	files, err := st.list()
	if err != nil {
		return
	}
	for len(files) > ckptKeep {
		os.Remove(filepath.Join(st.dir, files[0].name))
		files = files[1:]
	}
}

// LoadInfo reports what Load found.
type LoadInfo struct {
	File    string // basename of the snapshot loaded, "" when none usable
	Skipped int    // corrupt, torn, or unreadable files skipped over
}

// Load returns the newest valid checkpoint, walking backwards past corrupt
// files (counted in LoadInfo.Skipped). A missing or fully-corrupt store
// returns (nil, info, nil): starting empty is the correct recovery for a
// first boot, and the caller decides whether skipped > 0 deserves a loud
// log line. k is the deployment's aggregate width; a snapshot for a
// different protocol shape fails validation and is skipped too.
func Load[Fd field.Field[E], E any](st *Store, f Fd, k int) (*Snapshot[E], LoadInfo, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	files, err := st.list()
	if err != nil {
		return nil, LoadInfo{}, err
	}
	var info LoadInfo
	for i := len(files) - 1; i >= 0; i-- {
		b, err := os.ReadFile(filepath.Join(st.dir, files[i].name))
		if err != nil {
			info.Skipped++
			continue
		}
		snap, err := unmarshalCheckpoint(f, k, b)
		if err != nil {
			info.Skipped++
			continue
		}
		info.File = files[i].name
		return snap, info, nil
	}
	return nil, info, nil
}

// marshalSnapshot serializes the payload section. Window order is already
// deterministic (AccState sorts by ID).
func marshalSnapshot[Fd field.Field[E], E any](f Fd, snap *Snapshot[E]) []byte {
	b := binary.LittleEndian.AppendUint64(nil, snap.LastPublished)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(snap.DPSpent))
	b = binary.LittleEndian.AppendUint64(b, snap.Acc.TotalCount)
	b = binary.LittleEndian.AppendUint64(b, snap.Acc.Spilled)
	b = field.AppendVec(f, b, snap.Acc.Total)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(snap.Acc.Windows)))
	for _, ws := range snap.Acc.Windows {
		b = binary.LittleEndian.AppendUint64(b, ws.ID)
		var flags byte
		if ws.Sealed {
			flags |= 1
		}
		if ws.Noised {
			flags |= 2
		}
		b = append(b, flags)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(ws.Eps))
		b = binary.LittleEndian.AppendUint64(b, ws.Count)
		b = field.AppendVec(f, b, ws.Vec)
	}
	return b
}

// ckptReader is a sticky-error cursor over the payload.
type ckptReader struct {
	b   []byte
	off int
	err error
}

func (r *ckptReader) fail() { r.err = ErrCorrupt }

func (r *ckptReader) u8() byte {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *ckptReader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *ckptReader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func readCkptVec[Fd field.Field[E], E any](r *ckptReader, f Fd, n int) []E {
	if r.err != nil {
		return nil
	}
	v, used, err := field.ReadVec(f, r.b[r.off:], n)
	if err != nil {
		r.fail()
		return nil
	}
	r.off += used
	return v
}

// unmarshalCheckpoint validates the envelope (magic, version, length, CRC)
// and decodes the payload.
func unmarshalCheckpoint[Fd field.Field[E], E any](f Fd, k int, b []byte) (*Snapshot[E], error) {
	head := len(ckptMagic) + 8 // magic + version + length
	if len(b) < head+4 || string(b[:len(ckptMagic)]) != ckptMagic {
		return nil, ErrCorrupt
	}
	if binary.LittleEndian.Uint32(b[len(ckptMagic):]) != ckptVersion {
		return nil, fmt.Errorf("%w: unknown version", ErrCorrupt)
	}
	plen := int(binary.LittleEndian.Uint32(b[len(ckptMagic)+4:]))
	if plen < 0 || len(b) != head+plen+4 {
		return nil, fmt.Errorf("%w: truncated", ErrCorrupt)
	}
	payload := b[head : head+plen]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(b[head+plen:]) {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	r := &ckptReader{b: payload}
	snap := &Snapshot[E]{}
	snap.LastPublished = r.u64()
	snap.DPSpent = math.Float64frombits(r.u64())
	snap.Acc.TotalCount = r.u64()
	snap.Acc.Spilled = r.u64()
	snap.Acc.Total = readCkptVec(r, f, k)
	nw := int(r.u32())
	if r.err != nil || nw < 0 || nw > 1<<20 {
		return nil, ErrCorrupt
	}
	for i := 0; i < nw; i++ {
		ws := core.WindowState[E]{}
		ws.ID = r.u64()
		flags := r.u8()
		ws.Sealed = flags&1 != 0
		ws.Noised = flags&2 != 0
		ws.Eps = math.Float64frombits(r.u64())
		ws.Count = r.u64()
		ws.Vec = readCkptVec(r, f, k)
		if r.err != nil || ws.ID == 0 {
			return nil, ErrCorrupt
		}
		snap.Acc.Windows = append(snap.Acc.Windows, ws)
	}
	if r.err != nil || r.off != len(payload) {
		return nil, ErrCorrupt
	}
	return snap, nil
}
