package window

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"prio/internal/core"
	"prio/internal/dp"
	"prio/internal/field"
	"prio/internal/telemetry"
)

// ID returns the tumbling collection window containing t at the given
// width: windows tile wall time in width-sized intervals, numbered from the
// Unix epoch, offset by one so that WindowID 0 stays reserved for
// "unwindowed" (core's dormant state). All members compute the same ID for
// the same instant; the leader's clock is nonetheless the only one that
// matters for assignment, because batches are stamped leader-side.
func ID(t time.Time, width time.Duration) uint64 {
	if width <= 0 {
		return 0
	}
	return uint64(t.UnixNano()/int64(width)) + 1
}

// StartOf returns the instant window id opens.
func StartOf(id uint64, width time.Duration) time.Time {
	return time.Unix(0, int64(id-1)*int64(width))
}

// EndOf returns the instant window id closes (exclusive).
func EndOf(id uint64, width time.Duration) time.Time {
	return StartOf(id, width).Add(width)
}

// defaultMaxCatchUp bounds how many closed windows a (re-elected or
// restarted) leader publishes in one boundary pass. Windows further back
// are counted skipped rather than flooding the roster with ancient seals.
const defaultMaxCatchUp = 4

// historyCap bounds the in-memory published-window ring served by
// /aggregates.
const historyCap = 64

// Record is one published window as the operator sees it on /aggregates
// and in the per-window ledger line.
type Record struct {
	ID          uint64    `json:"id"`
	Start       time.Time `json:"start"`
	End         time.Time `json:"end"`
	Count       uint64    `json:"count"`  // server 0's accepted count
	Counts      []uint64  `json:"counts"` // per-server accepted counts
	Agg         []string  `json:"aggregate"`
	Noised      bool      `json:"noised"`
	Eps         float64   `json:"epsilon"` // min per-server ε spent on this window
	Consistent  bool      `json:"consistent"`
	Republished bool      `json:"republished,omitempty"`

	// Stages carries the per-window delta of the registry's cumulative
	// stage series (telemetry.WindowView), for ledger consumers; it is not
	// serialized on /aggregates.
	Stages map[string]telemetry.SeriesDelta `json:"-"`
}

// Config assembles a Service. Server is the local member's protocol state;
// Leader (sharing that server) publishes on window close when IsLeader
// allows. Everything else is optional.
type Config[Fd field.Field[E], E any] struct {
	Field  Fd
	Width  time.Duration
	Server *core.Server[Fd, E]
	Leader *core.Leader[Fd, E]

	// Quiesce wraps the close boundary so sealing cannot race a batch
	// commit; wire it to Pipeline.Quiesce. Nil runs the boundary directly
	// (callers that quiesce by construction, e.g. tests).
	Quiesce func(fn func())
	// IsLeader gates publishing — cluster members pass Node.IsLeader so
	// only the sitting leader drives window closes, and the duty survives
	// failover with the leadership. Nil means always leader (single
	// process).
	IsLeader func() bool

	// Store enables durable checkpointing; nil runs memory-only.
	Store *Store
	// CheckpointEvery is the periodic snapshot cadence (default: Width/2,
	// clamped to [1s, 30s]). Boundary publishes checkpoint regardless.
	CheckpointEvery time.Duration

	// DP configures the per-window release noise this member adds at seal
	// (zero Epsilon: no noise). Budget, when set, accounts cumulative ε
	// across windows and refuses seals past the cap.
	DP     dp.Params
	Budget *dp.Budget

	// Registry receives prio_window_* metrics and feeds the per-window
	// stage deltas (nil: a private registry).
	Registry *telemetry.Registry
	// Logf receives operational lines (recovery, publish failures, budget
	// exhaustion); nil discards.
	Logf func(format string, args ...any)
	// OnPublish observes every successfully published window, in order —
	// prio-server prints its ledger lines from here. Called off the
	// boundary's critical section but on the service goroutine.
	OnPublish func(Record)

	// MaxCatchUp overrides defaultMaxCatchUp (tests).
	MaxCatchUp int
	// Clock overrides time.Now (tests).
	Clock func() time.Time
}

// Service runs the window lifecycle for one member: stamping (via the
// server's window function), boundary detection, leader-driven sealing and
// publishing, checkpointing, and recovery. Construct with New — which also
// performs checkpoint recovery — then Start.
type Service[Fd field.Field[E], E any] struct {
	cfg  Config[Fd, E]
	k    int
	m    *metricsSet
	view *telemetry.WindowView

	mu      sync.Mutex
	lastPub uint64
	history []Record
	recov   LoadInfo
	recovered bool

	stop     chan struct{}
	done     chan struct{}
	started  bool
	stopOnce sync.Once
}

// New builds the service, recovers from the newest valid checkpoint when a
// Store is configured, and installs the window-stamp and DP-noise hooks on
// the server. The service is inert until Start.
func New[Fd field.Field[E], E any](cfg Config[Fd, E]) (*Service[Fd, E], error) {
	if cfg.Server == nil {
		return nil, errors.New("window: Config.Server is required")
	}
	if cfg.Width <= 0 {
		return nil, errors.New("window: Config.Width must be positive")
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.MaxCatchUp <= 0 {
		cfg.MaxCatchUp = defaultMaxCatchUp
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = cfg.Width / 2
		if cfg.CheckpointEvery < time.Second {
			cfg.CheckpointEvery = time.Second
		}
		if cfg.CheckpointEvery > 30*time.Second {
			cfg.CheckpointEvery = 30 * time.Second
		}
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.New()
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.DP.Epsilon != 0 {
		if err := cfg.DP.Valid(); err != nil {
			return nil, err
		}
	}

	s := &Service[Fd, E]{
		cfg:  cfg,
		k:    len(cfg.Server.AccState().Total),
		view: cfg.Registry.NewWindowView(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}

	// Boot cursor: nothing before this process started is ours to publish
	// unless a checkpoint says otherwise (recover below may pull it back,
	// bounded by MaxCatchUp so an old snapshot cannot trigger a flood).
	bootID := ID(cfg.Clock(), cfg.Width)
	s.lastPub = bootID - 1

	if cfg.Store != nil {
		if err := s.recover(bootID); err != nil {
			return nil, err
		}
	}

	// Stamp every batch with the wall-clock window; seal with this
	// member's own noise policy. Installed after recovery so no batch can
	// land between restore and hook installation.
	width := cfg.Width
	clock := cfg.Clock
	cfg.Server.SetWindowFunc(func() uint64 { return ID(clock(), width) })
	if cfg.DP.Epsilon > 0 {
		f, p, budget := cfg.Field, cfg.DP, cfg.Budget
		logf := cfg.Logf
		cfg.Server.SetWindowNoise(func(k int) ([]E, float64, error) {
			granted, err := budget.Spend(p.Epsilon)
			if err != nil {
				logf("window: DP budget refused seal: %v", err)
				return nil, 0, err
			}
			if granted < p.Epsilon {
				logf("window: DP budget clamped seal epsilon %g -> %g (budget nearly exhausted)",
					p.Epsilon, granted)
			}
			noise, err := dp.NoiseVector(f, nil, k, dp.Params{Epsilon: granted, Sensitivity: p.Sensitivity})
			if err != nil {
				return nil, 0, err
			}
			return noise, granted, nil
		})
	}

	s.m = newMetrics(cfg.Registry, s)
	return s, nil
}

// recover loads the newest valid checkpoint and restores server state, the
// DP ledger, and the publish cursor.
func (s *Service[Fd, E]) recover(bootID uint64) error {
	snap, info, err := Load(s.cfg.Store, s.cfg.Field, s.k)
	s.recov = info
	if err != nil {
		return err
	}
	if info.Skipped > 0 {
		s.cfg.Logf("window: skipped %d corrupt checkpoint file(s) in %s", info.Skipped, s.cfg.Store.Dir())
	}
	if snap == nil {
		return nil
	}
	if err := s.cfg.Server.RestoreAccState(snap.Acc); err != nil {
		return fmt.Errorf("window: checkpoint %s: %w", info.File, err)
	}
	s.cfg.Budget.Restore(snap.DPSpent)
	// Publish cursor: resume where the checkpoint left off, but never more
	// than MaxCatchUp windows back — older sealed windows were published
	// before the crash (sealing happens on publish) and stay replayable
	// from the restored state if anyone asks.
	floor := uint64(0)
	if bootID > uint64(s.cfg.MaxCatchUp)+1 {
		floor = bootID - 1 - uint64(s.cfg.MaxCatchUp)
	}
	s.lastPub = max(snap.LastPublished, floor)
	s.recovered = true
	s.cfg.Logf("window: recovered from checkpoint %s: %d windows, total count %d, dp spent %g, last published %d",
		info.File, len(snap.Acc.Windows), snap.Acc.TotalCount, snap.DPSpent, snap.LastPublished)
	return nil
}

// Recovered reports whether a checkpoint was restored at construction, and
// how the load went.
func (s *Service[Fd, E]) Recovered() (bool, LoadInfo) { return s.recovered, s.recov }

// Width returns the configured window width.
func (s *Service[Fd, E]) Width() time.Duration { return s.cfg.Width }

// Current returns the window open right now.
func (s *Service[Fd, E]) Current() uint64 { return ID(s.cfg.Clock(), s.cfg.Width) }

// LastPublished returns the newest window this member has published (or
// adopted as published at boot).
func (s *Service[Fd, E]) LastPublished() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastPub
}

// History returns the published-window records, oldest first.
func (s *Service[Fd, E]) History() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Record(nil), s.history...)
}

// Start launches the service loop: wake at each window boundary (sealing
// and publishing when leading) and checkpoint periodically in between.
func (s *Service[Fd, E]) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	go s.loop()
}

// Close stops the loop and writes a final checkpoint.
func (s *Service[Fd, E]) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.mu.Lock()
	started := s.started
	s.mu.Unlock()
	if started {
		<-s.done
	} else {
		s.Checkpoint()
		close(s.done)
	}
}

func (s *Service[Fd, E]) loop() {
	defer close(s.done)
	ckpt := time.NewTicker(s.cfg.CheckpointEvery)
	defer ckpt.Stop()
	for {
		now := s.cfg.Clock()
		// Wake just past the boundary so ID(now) has moved on.
		boundary := EndOf(ID(now, s.cfg.Width), s.cfg.Width)
		timer := time.NewTimer(boundary.Sub(now) + 5*time.Millisecond)
		select {
		case <-s.stop:
			timer.Stop()
			s.Checkpoint()
			return
		case <-ckpt.C:
			timer.Stop()
			s.Checkpoint()
		case <-timer.C:
			s.CloseBoundary()
		}
	}
}

// CloseBoundary runs one window-close pass: when this member is the
// sitting leader, quiesce intake and publish every closed, not-yet-published
// window (bounded by MaxCatchUp), then checkpoint. Exported for tests and
// callers with their own scheduling; the Start loop calls it at each
// boundary.
func (s *Service[Fd, E]) CloseBoundary() {
	closed := ID(s.cfg.Clock(), s.cfg.Width) - 1
	leading := closed != 0 && s.cfg.Leader != nil &&
		(s.cfg.IsLeader == nil || s.cfg.IsLeader())
	var recs []Record
	if leading {
		boundary := func() { recs = s.publishThrough(closed) }
		if s.cfg.Quiesce != nil {
			s.cfg.Quiesce(boundary)
		} else {
			boundary()
		}
	}
	// Everyone checkpoints at the boundary — a follower's share just got
	// sealed (noised) by the leader's publish broadcast, and that state is
	// exactly what must survive a crash for re-publishes to stay
	// bit-identical.
	s.Checkpoint()
	if s.cfg.OnPublish != nil {
		for _, r := range recs {
			s.cfg.OnPublish(r)
		}
	}
}

// publishThrough publishes windows (lastPub, closed], newest-bounded by
// MaxCatchUp. On a publish failure it stops advancing the cursor so the
// window is retried at the next boundary.
func (s *Service[Fd, E]) publishThrough(closed uint64) []Record {
	s.mu.Lock()
	lo := s.lastPub + 1
	s.mu.Unlock()
	if closed < lo {
		return nil
	}
	if n := closed - lo + 1; n > uint64(s.cfg.MaxCatchUp) {
		skip := n - uint64(s.cfg.MaxCatchUp)
		s.m.skipped.Add(skip)
		s.cfg.Logf("window: skipping %d windows older than catch-up horizon (%d..%d)", skip, lo, lo+skip-1)
		lo += skip
		s.mu.Lock()
		if s.lastPub < lo-1 {
			s.lastPub = lo - 1
		}
		s.mu.Unlock()
	}
	var recs []Record
	for wid := lo; wid <= closed; wid++ {
		rec, err := s.publishOne(wid)
		if err != nil {
			s.m.pubFailures.Inc()
			s.cfg.Logf("window: publish %d failed: %v", wid, err)
			break
		}
		recs = append(recs, rec)
		s.mu.Lock()
		s.lastPub = wid
		s.history = append(s.history, rec)
		if len(s.history) > historyCap {
			s.history = s.history[len(s.history)-historyCap:]
		}
		s.mu.Unlock()
	}
	return recs
}

// publishOne seals window wid on every server and folds the result into a
// Record.
func (s *Service[Fd, E]) publishOne(wid uint64) (Record, error) {
	t0 := time.Now()
	wp, err := s.cfg.Leader.PublishWindow(wid)
	if err != nil {
		return Record{}, err
	}
	s.m.pubDur.Since(t0)
	rec := Record{
		ID:          wid,
		Start:       StartOf(wid, s.cfg.Width),
		End:         EndOf(wid, s.cfg.Width),
		Count:       wp.Counts[0],
		Counts:      wp.Counts,
		Agg:         renderVec(s.cfg.Field, wp.Agg),
		Noised:      wp.Noised,
		Consistent:  wp.Consistent(),
		Republished: wp.Resealed,
		Stages:      s.view.Advance(),
	}
	if wp.Noised {
		rec.Eps = wp.MinEps()
	}
	s.m.published.Inc()
	if rec.Republished {
		s.m.republished.Inc()
	}
	if !rec.Consistent {
		s.m.inconsistent.Inc()
		s.cfg.Logf("window: window %d published with inconsistent per-server counts %v (crash-damaged window)", wid, wp.Counts)
	}
	s.m.lastCount.Set(float64(rec.Count))
	return rec, nil
}

// Checkpoint writes one durable snapshot now (no-op without a Store).
func (s *Service[Fd, E]) Checkpoint() {
	if s.cfg.Store == nil {
		return
	}
	t0 := time.Now()
	snap := &Snapshot[E]{
		LastPublished: s.LastPublished(),
		DPSpent:       s.cfg.Budget.Spent(),
		Acc:           s.cfg.Server.AccState(),
	}
	n, err := Save(s.cfg.Store, s.cfg.Field, snap)
	if err != nil {
		s.m.ckptFailures.Inc()
		s.cfg.Logf("window: checkpoint failed: %v", err)
		return
	}
	s.m.ckptDur.Since(t0)
	s.m.ckpts.Inc()
	s.m.ckptBytes.Set(float64(n))
}

// renderVec formats field elements as decimal strings for JSON (exact for
// any field width, unlike float64).
func renderVec[Fd field.Field[E], E any](f Fd, v []E) []string {
	out := make([]string, len(v))
	for i, e := range v {
		out[i] = f.ToBig(e).String()
	}
	return out
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
