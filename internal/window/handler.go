package window

import (
	"encoding/json"
	"net/http"
)

// aggregatesView is the /aggregates response shape.
type aggregatesView struct {
	Width         string   `json:"width"`
	Current       uint64   `json:"current_window"`
	LastPublished uint64   `json:"last_published"`
	Recovered     bool     `json:"recovered"`
	RecoveredFrom string   `json:"recovered_from,omitempty"`
	DPEpsSpent    float64  `json:"dp_epsilon_spent"`
	DPEpsCap      *float64 `json:"dp_epsilon_cap,omitempty"`
	Windows       []Record `json:"windows"`
}

// AggregatesHandler serves the operator view of published windows: newest
// first, with the publish cursor, recovery provenance, and the DP ledger.
func (s *Service[Fd, E]) AggregatesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		hist := s.History()
		// Newest first reads better for operators tailing releases.
		for i, j := 0, len(hist)-1; i < j; i, j = i+1, j-1 {
			hist[i], hist[j] = hist[j], hist[i]
		}
		recovered, info := s.Recovered()
		view := aggregatesView{
			Width:         s.cfg.Width.String(),
			Current:       s.Current(),
			LastPublished: s.LastPublished(),
			Recovered:     recovered,
			RecoveredFrom: info.File,
			DPEpsSpent:    s.cfg.Budget.Spent(),
			Windows:       hist,
		}
		if cap := s.cfg.Budget.Cap(); s.cfg.Budget != nil {
			view.DPEpsCap = &cap
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(view)
	})
}
