package nizk

import (
	"errors"
	"fmt"
)

// Submission is one client's upload in the NIZK scheme: a ciphertext and a
// validity proof per bit position.
type Submission struct {
	Cts    []Ciphertext
	Proofs []*BitProof
}

// NewSubmission encrypts and proves an l-bit vector.
func NewSubmission(jointKey Point, bits []bool) (*Submission, error) {
	s := &Submission{
		Cts:    make([]Ciphertext, len(bits)),
		Proofs: make([]*BitProof, len(bits)),
	}
	for i, b := range bits {
		var m uint8
		if b {
			m = 1
		}
		ct, r, err := EncryptBit(jointKey, m)
		if err != nil {
			return nil, err
		}
		pf, err := ProveBit(jointKey, ct, m, r)
		if err != nil {
			return nil, err
		}
		s.Cts[i] = ct
		s.Proofs[i] = pf
	}
	return s, nil
}

// Verify checks every bit proof, as each server must before accumulating.
func (s *Submission) Verify(jointKey Point) bool {
	if len(s.Cts) != len(s.Proofs) {
		return false
	}
	for i := range s.Cts {
		if !VerifyBit(jointKey, s.Cts[i], s.Proofs[i]) {
			return false
		}
	}
	return true
}

// Bytes returns the upload's wire size.
func (s *Submission) Bytes() int { return SubmissionBytes(len(s.Cts)) }

// Aggregator is one server's state in the NIZK scheme: it verifies
// submissions and maintains the homomorphic sum per position.
type Aggregator struct {
	jointKey Point
	share    *KeyShare
	acc      []Ciphertext
	count    int
}

// NewAggregator builds a server with its key share and the joint key.
func NewAggregator(jointKey Point, share *KeyShare, l int) *Aggregator {
	return &Aggregator{jointKey: jointKey, share: share, acc: make([]Ciphertext, l)}
}

// Process verifies a submission and folds it into the accumulator; invalid
// submissions are rejected without effect.
func (a *Aggregator) Process(s *Submission) error {
	if len(s.Cts) != len(a.acc) {
		return errors.New("nizk: submission length mismatch")
	}
	if !s.Verify(a.jointKey) {
		return errors.New("nizk: invalid proof")
	}
	for i := range a.acc {
		a.acc[i] = AddCiphertexts(a.acc[i], s.Cts[i])
	}
	a.count++
	return nil
}

// Count returns the number of accepted submissions.
func (a *Aggregator) Count() int { return a.count }

// DecryptionShares returns this server's partial decryptions of the
// accumulated ciphertexts; all servers' shares jointly decrypt the tallies.
func (a *Aggregator) DecryptionShares() []Point {
	out := make([]Point, len(a.acc))
	for i := range a.acc {
		out[i] = PartialDecrypt(a.share, a.acc[i].C1)
	}
	return out
}

// Recover decodes the per-position counts from an accumulator and every
// server's decryption shares.
func Recover(acc []Ciphertext, shares [][]Point, maxCount int) ([]int, error) {
	out := make([]int, len(acc))
	for i := range acc {
		partials := make([]Point, len(shares))
		for srv := range shares {
			if len(shares[srv]) != len(acc) {
				return nil, fmt.Errorf("nizk: server %d supplied %d shares, want %d", srv, len(shares[srv]), len(acc))
			}
			partials[srv] = shares[srv][i]
		}
		m, err := RecoverCount(acc[i], partials, maxCount)
		if err != nil {
			return nil, err
		}
		out[i] = m
	}
	return out, nil
}

// Accumulator exposes the homomorphic sums (e.g. to hand to Recover).
func (a *Aggregator) Accumulator() []Ciphertext { return a.acc }
