package nizk

import (
	"testing"
	"testing/quick"
)

// TestSubmissionRoundTripQuick: random bit vectors encrypt, prove, verify,
// aggregate and decrypt back to exact per-position counts for random server
// counts — the NIZK baseline must be a faithful comparator, not a strawman.
func TestSubmissionRoundTripQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("public-key heavy; skipped in -short mode")
	}
	err := quick.Check(func(pattern uint8, sRaw uint8) bool {
		const l = 4
		s := int(sRaw%3) + 1
		shares := make([]*KeyShare, s)
		pubs := make([]Point, s)
		for i := range shares {
			ks, err := GenerateKeyShare()
			if err != nil {
				return false
			}
			shares[i] = ks
			pubs[i] = ks.Pub
		}
		joint := JointKey(pubs)

		bits := make([]bool, l)
		want := make([]int, l)
		for i := range bits {
			bits[i] = pattern&(1<<uint(i)) != 0
			if bits[i] {
				want[i] = 1
			}
		}
		sub, err := NewSubmission(joint, bits)
		if err != nil {
			return false
		}
		aggs := make([]*Aggregator, s)
		for i := range aggs {
			aggs[i] = NewAggregator(joint, shares[i], l)
			if err := aggs[i].Process(sub); err != nil {
				return false
			}
		}
		dec := make([][]Point, s)
		for i := range aggs {
			dec[i] = aggs[i].DecryptionShares()
		}
		got, err := Recover(aggs[0].Accumulator(), dec, 1)
		if err != nil {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 6})
	if err != nil {
		t.Fatal(err)
	}
}
