package nizk

import (
	"math/big"
	"testing"
)

func testKeys(t *testing.T, s int) ([]*KeyShare, Point) {
	t.Helper()
	shares := make([]*KeyShare, s)
	pubs := make([]Point, s)
	for i := range shares {
		ks, err := GenerateKeyShare()
		if err != nil {
			t.Fatal(err)
		}
		shares[i] = ks
		pubs[i] = ks.Pub
	}
	return shares, JointKey(pubs)
}

func TestEncryptProveVerify(t *testing.T) {
	_, joint := testKeys(t, 3)
	for _, m := range []uint8{0, 1} {
		ct, r, err := EncryptBit(joint, m)
		if err != nil {
			t.Fatal(err)
		}
		pf, err := ProveBit(joint, ct, m, r)
		if err != nil {
			t.Fatal(err)
		}
		if !VerifyBit(joint, ct, pf) {
			t.Errorf("valid proof for bit %d rejected", m)
		}
	}
	if _, _, err := EncryptBit(joint, 2); err == nil {
		t.Error("EncryptBit accepted non-bit")
	}
}

func TestProofRejectsNonBit(t *testing.T) {
	// Encrypt m=2 by hand and try to prove it with either witness; both
	// claims must fail verification.
	_, joint := testKeys(t, 2)
	ct, r, err := EncryptBit(joint, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Turn it into an encryption of 2 by adding G to C2.
	ct2 := Ciphertext{C1: ct.C1, C2: add(ct.C2, baseMul(big.NewInt(1)))}
	for _, claim := range []uint8{0, 1} {
		pf, err := ProveBit(joint, ct2, claim, r)
		if err != nil {
			t.Fatal(err)
		}
		if VerifyBit(joint, ct2, pf) {
			t.Errorf("proof of non-bit accepted (claimed %d)", claim)
		}
	}
}

func TestProofTamperRejected(t *testing.T) {
	_, joint := testKeys(t, 2)
	ct, r, err := EncryptBit(joint, 1)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := ProveBit(joint, ct, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	one := big.NewInt(1)
	n := curve.Params().N
	mutations := []func(*BitProof){
		func(p *BitProof) { p.Z0 = new(big.Int).Add(p.Z0, one) },
		func(p *BitProof) { p.Z1 = new(big.Int).Add(p.Z1, one) },
		func(p *BitProof) { p.C0 = new(big.Int).Mod(new(big.Int).Add(p.C0, one), n) },
		func(p *BitProof) { p.A0 = baseMul(big.NewInt(7)) },
		func(p *BitProof) { p.B1 = baseMul(big.NewInt(9)) },
	}
	for i, mut := range mutations {
		cp := *pf
		mut(&cp)
		if VerifyBit(joint, ct, &cp) {
			t.Errorf("mutation %d accepted", i)
		}
	}
	// Proof transplanted onto a different ciphertext must fail.
	ct2, _, err := EncryptBit(joint, 1)
	if err != nil {
		t.Fatal(err)
	}
	if VerifyBit(joint, ct2, pf) {
		t.Error("proof accepted for the wrong ciphertext")
	}
	if VerifyBit(joint, ct, nil) {
		t.Error("nil proof accepted")
	}
}

func TestHomomorphicAggregationAndDecryption(t *testing.T) {
	const s = 3
	shares, joint := testKeys(t, s)
	const l = 8
	aggs := make([]*Aggregator, s)
	for i := range aggs {
		aggs[i] = NewAggregator(joint, shares[i], l)
	}
	// Ten clients with deterministic bit patterns.
	want := make([]int, l)
	for c := 0; c < 10; c++ {
		bits := make([]bool, l)
		for i := range bits {
			bits[i] = (c+i)%3 == 0
			if bits[i] {
				want[i]++
			}
		}
		sub, err := NewSubmission(joint, bits)
		if err != nil {
			t.Fatal(err)
		}
		for i := range aggs {
			if err := aggs[i].Process(sub); err != nil {
				t.Fatal(err)
			}
		}
	}
	if aggs[0].Count() != 10 {
		t.Fatalf("count = %d", aggs[0].Count())
	}
	decShares := make([][]Point, s)
	for i := range aggs {
		decShares[i] = aggs[i].DecryptionShares()
	}
	got, err := Recover(aggs[0].Accumulator(), decShares, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("count[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestAggregatorRejectsInvalid(t *testing.T) {
	shares, joint := testKeys(t, 2)
	agg := NewAggregator(joint, shares[0], 4)
	sub, err := NewSubmission(joint, []bool{true, false, true, true})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one proof.
	sub.Proofs[2].Z0 = new(big.Int).Add(sub.Proofs[2].Z0, big.NewInt(1))
	if err := agg.Process(sub); err == nil {
		t.Error("invalid submission accepted")
	}
	if agg.Count() != 0 {
		t.Error("rejected submission entered the accumulator")
	}
	// Length mismatch.
	short, err := NewSubmission(joint, []bool{true})
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Process(short); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestSubmissionBytes(t *testing.T) {
	if SubmissionBytes(10) != 10*(CiphertextBytes+ProofBytes) {
		t.Error("SubmissionBytes formula drifted")
	}
	sub := &Submission{Cts: make([]Ciphertext, 5), Proofs: make([]*BitProof, 5)}
	if sub.Bytes() != SubmissionBytes(5) {
		t.Error("Bytes() disagrees with SubmissionBytes")
	}
}

func TestRecoverCountEdges(t *testing.T) {
	shares, joint := testKeys(t, 1)
	// Encrypt 1, decrypt with the single share.
	ct, _, err := EncryptBit(joint, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := RecoverCount(ct, []Point{PartialDecrypt(shares[0], ct.C1)}, 5)
	if err != nil || m != 1 {
		t.Errorf("recovered %d err=%v", m, err)
	}
	// Zero.
	ct0, _, err := EncryptBit(joint, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err = RecoverCount(ct0, []Point{PartialDecrypt(shares[0], ct0.C1)}, 5)
	if err != nil || m != 0 {
		t.Errorf("recovered %d err=%v", m, err)
	}
	// Out of range: sum of 3 ones with maxCount 2.
	acc := ct
	acc = AddCiphertexts(acc, ct)
	acc = AddCiphertexts(acc, ct)
	if _, err := RecoverCount(acc, []Point{PartialDecrypt(shares[0], acc.C1)}, 2); err == nil {
		t.Error("out-of-range count recovered")
	}
}
