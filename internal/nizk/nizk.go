// Package nizk implements the discrete-log NIZK comparison system of the
// paper's evaluation (Section 6): a private-aggregation scheme in the style
// of Kursawe et al. and PrivEx's "distributed decryption" variant, in which
// every 0/1 value is encrypted under exponential ElGamal and accompanied by
// a non-interactive disjunctive Chaum-Pedersen proof (a Schnorr-style OR
// proof, per the paper's citations [22, 103]) that the plaintext is a bit.
//
// Robustness therefore costs the client two scalar multiplications per bit
// for encryption plus six for the proof, and costs every server roughly
// eight multiplications per bit to verify — the Θ(M) public-key work whose
// hundred-fold overhead motivates SNIPs (Table 2, Figures 4-7).
//
// The group is NIST P-256 (the paper's prototype used OpenSSL's P-256).
package nizk

import (
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"math/big"
)

var curve = elliptic.P256()

// Point is an affine P-256 point; the zero value is the point at infinity.
type Point struct {
	X, Y *big.Int
}

// IsInfinity reports whether p is the group identity.
func (p Point) IsInfinity() bool { return p.X == nil || (p.X.Sign() == 0 && p.Y.Sign() == 0) }

// add returns p + q.
func add(p, q Point) Point {
	if p.IsInfinity() {
		return q
	}
	if q.IsInfinity() {
		return p
	}
	x, y := curve.Add(p.X, p.Y, q.X, q.Y)
	return Point{X: x, Y: y}
}

// neg returns -p.
func neg(p Point) Point {
	if p.IsInfinity() {
		return p
	}
	y := new(big.Int).Sub(curve.Params().P, p.Y)
	y.Mod(y, curve.Params().P)
	return Point{X: new(big.Int).Set(p.X), Y: y}
}

// mul returns k·p.
func mul(p Point, k *big.Int) Point {
	if p.IsInfinity() || k.Sign() == 0 {
		return Point{}
	}
	x, y := curve.ScalarMult(p.X, p.Y, k.Bytes())
	return Point{X: x, Y: y}
}

// baseMul returns k·G.
func baseMul(k *big.Int) Point {
	if k.Sign() == 0 {
		return Point{}
	}
	x, y := curve.ScalarBaseMult(k.Bytes())
	return Point{X: x, Y: y}
}

// randScalar samples a uniform non-zero scalar.
func randScalar() (*big.Int, error) {
	n := curve.Params().N
	for {
		k, err := rand.Int(rand.Reader, n)
		if err != nil {
			return nil, err
		}
		if k.Sign() != 0 {
			return k, nil
		}
	}
}

// KeyShare is one server's slice of the joint decryption key.
type KeyShare struct {
	Priv *big.Int
	Pub  Point
}

// GenerateKeyShare creates a server key share.
func GenerateKeyShare() (*KeyShare, error) {
	priv, err := randScalar()
	if err != nil {
		return nil, err
	}
	return &KeyShare{Priv: priv, Pub: baseMul(priv)}, nil
}

// JointKey combines the servers' public shares into the encryption key:
// decryption then requires every server's cooperation, so privacy holds
// unless all servers collude — the same trust model as Prio.
func JointKey(pubs []Point) Point {
	acc := Point{}
	for _, p := range pubs {
		acc = add(acc, p)
	}
	return acc
}

// Ciphertext is an exponential-ElGamal encryption: C1 = rG, C2 = rY + mG.
// Ciphertexts add homomorphically component-wise.
type Ciphertext struct {
	C1, C2 Point
}

// EncryptBit encrypts m ∈ {0,1} under the joint key, returning the
// randomness for proof generation.
func EncryptBit(jointKey Point, m uint8) (Ciphertext, *big.Int, error) {
	if m > 1 {
		return Ciphertext{}, nil, errors.New("nizk: plaintext must be a bit")
	}
	r, err := randScalar()
	if err != nil {
		return Ciphertext{}, nil, err
	}
	ct := Ciphertext{C1: baseMul(r), C2: mul(jointKey, r)}
	if m == 1 {
		ct.C2 = add(ct.C2, baseMul(big.NewInt(1)))
	}
	return ct, r, nil
}

// AddCiphertexts returns the homomorphic sum.
func AddCiphertexts(a, b Ciphertext) Ciphertext {
	return Ciphertext{C1: add(a.C1, b.C1), C2: add(a.C2, b.C2)}
}

// BitProof is a disjunctive Chaum-Pedersen proof that a ciphertext encrypts
// 0 or 1 (a Fiat-Shamir OR composition of two DLEQ proofs).
type BitProof struct {
	A0, B0, A1, B1 Point
	C0, C1, Z0, Z1 *big.Int
}

// challengeHash derives the Fiat-Shamir challenge from the full transcript.
func challengeHash(jointKey Point, ct Ciphertext, a0, b0, a1, b1 Point) *big.Int {
	h := sha256.New()
	for _, p := range []Point{jointKey, ct.C1, ct.C2, a0, b0, a1, b1} {
		if p.IsInfinity() {
			h.Write([]byte{0})
			continue
		}
		h.Write(p.X.Bytes())
		h.Write(p.Y.Bytes())
	}
	c := new(big.Int).SetBytes(h.Sum(nil))
	return c.Mod(c, curve.Params().N)
}

// ProveBit produces the validity proof for a ciphertext of bit m created
// with randomness r.
func ProveBit(jointKey Point, ct Ciphertext, m uint8, r *big.Int) (*BitProof, error) {
	n := curve.Params().N
	// Branch statements: b=0 proves (C1, C2) = (rG, rY);
	// b=1 proves (C1, C2 − G) = (rG, rY).
	c2 := [2]Point{ct.C2, add(ct.C2, neg(baseMul(big.NewInt(1))))}

	k, err := randScalar()
	if err != nil {
		return nil, err
	}
	zFake, err := randScalar()
	if err != nil {
		return nil, err
	}
	cFake, err := randScalar()
	if err != nil {
		return nil, err
	}

	real := int(m)
	fake := 1 - real
	var a, b [2]Point
	// Real branch commitment.
	a[real] = baseMul(k)
	b[real] = mul(jointKey, k)
	// Fake branch: A = zG − c·C1, B = zY − c·C2'.
	a[fake] = add(baseMul(zFake), neg(mul(ct.C1, cFake)))
	b[fake] = add(mul(jointKey, zFake), neg(mul(c2[fake], cFake)))

	c := challengeHash(jointKey, ct, a[0], b[0], a[1], b[1])
	cReal := new(big.Int).Sub(c, cFake)
	cReal.Mod(cReal, n)
	zReal := new(big.Int).Mul(cReal, r)
	zReal.Add(zReal, k)
	zReal.Mod(zReal, n)

	pf := &BitProof{A0: a[0], B0: b[0], A1: a[1], B1: b[1]}
	if real == 0 {
		pf.C0, pf.Z0 = cReal, zReal
		pf.C1, pf.Z1 = cFake, zFake
	} else {
		pf.C0, pf.Z0 = cFake, zFake
		pf.C1, pf.Z1 = cReal, zReal
	}
	return pf, nil
}

// VerifyBit checks the proof; servers run this per submitted bit.
func VerifyBit(jointKey Point, ct Ciphertext, pf *BitProof) bool {
	if pf == nil || pf.C0 == nil || pf.C1 == nil || pf.Z0 == nil || pf.Z1 == nil {
		return false
	}
	n := curve.Params().N
	c := challengeHash(jointKey, ct, pf.A0, pf.B0, pf.A1, pf.B1)
	sum := new(big.Int).Add(pf.C0, pf.C1)
	sum.Mod(sum, n)
	if sum.Cmp(c) != 0 {
		return false
	}
	c2 := [2]Point{ct.C2, add(ct.C2, neg(baseMul(big.NewInt(1))))}
	as := [2]Point{pf.A0, pf.A1}
	bs := [2]Point{pf.B0, pf.B1}
	cs := [2]*big.Int{pf.C0, pf.C1}
	zs := [2]*big.Int{pf.Z0, pf.Z1}
	for branch := 0; branch < 2; branch++ {
		// zG == A + c·C1
		lhs := baseMul(zs[branch])
		rhs := add(as[branch], mul(ct.C1, cs[branch]))
		if !pointsEqual(lhs, rhs) {
			return false
		}
		// zY == B + c·C2'
		lhs = mul(jointKey, zs[branch])
		rhs = add(bs[branch], mul(c2[branch], cs[branch]))
		if !pointsEqual(lhs, rhs) {
			return false
		}
	}
	return true
}

func pointsEqual(a, b Point) bool {
	if a.IsInfinity() || b.IsInfinity() {
		return a.IsInfinity() == b.IsInfinity()
	}
	return a.X.Cmp(b.X) == 0 && a.Y.Cmp(b.Y) == 0
}

// PartialDecrypt is one server's decryption share x_i·C1.
func PartialDecrypt(share *KeyShare, c1 Point) Point { return mul(c1, share.Priv) }

// RecoverCount removes the decryption shares and solves the small discrete
// log mG → m by lookup, for m ≤ maxCount (the client count). A baby-step
// table keeps this O(√maxCount · step) per value.
func RecoverCount(ct Ciphertext, partials []Point, maxCount int) (int, error) {
	point := ct.C2
	for _, p := range partials {
		point = add(point, neg(p))
	}
	if point.IsInfinity() {
		return 0, nil
	}
	// Simple scan: counts in aggregation runs are small relative to the
	// cost of the exponentiations above.
	acc := Point{}
	g := baseMul(big.NewInt(1))
	for m := 1; m <= maxCount; m++ {
		acc = add(acc, g)
		if pointsEqual(acc, point) {
			return m, nil
		}
	}
	return 0, errors.New("nizk: plaintext out of range")
}

// CiphertextBytes is the wire size of one ciphertext (two compressed
// points).
const CiphertextBytes = 2 * 33

// ProofBytes is the wire size of one bit proof (four compressed points and
// four scalars).
const ProofBytes = 4*33 + 4*32

// SubmissionBytes returns the upload size for an l-bit NIZK submission —
// what each server receives per client, the linear growth of Figure 6.
func SubmissionBytes(l int) int { return l * (CiphertextBytes + ProofBytes) }
