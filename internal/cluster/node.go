package cluster

import (
	"crypto/tls"
	"fmt"
	"strconv"
	"sync"
	"time"

	"prio/internal/telemetry"
	"prio/internal/transport"
)

// Config describes one member's view of the cluster.
type Config struct {
	// Roster lists every member in protocol-index order; all members must
	// agree on it. Required.
	Roster *Roster
	// Self is this member's roster index. Required (0 is a valid index).
	Self int
	// TLS is the client configuration for dialing peers (nil = plaintext).
	TLS *tls.Config
	// PingInterval is the per-peer health probe cadence (default 250ms,
	// jittered ±20% by the checker).
	PingInterval time.Duration
	// PingTimeout bounds one probe (default PingInterval).
	PingTimeout time.Duration
	// FailAfter is the consecutive probe failures marking a peer down
	// (default 3); failover latency is roughly FailAfter·PingInterval.
	FailAfter int
	// RotateEvery, when positive, makes the sitting leader cede duty on the
	// interval by bumping the epoch — the Figure 5 load-balancing rotation.
	// Zero rotates only on failover.
	RotateEvery time.Duration
	// Grace is how long after Start the member refuses to claim leadership,
	// giving epoch gossip time to catch a restarted member up to the
	// cluster's present instead of letting it reassert epoch 0 (default
	// 4·PingInterval).
	Grace time.Duration
	// Registry receives the cluster gauges and counters (nil = private).
	Registry *telemetry.Registry
	// OnLeaderChange observes every local leadership-view change. Runs off
	// the probe goroutines; must not block.
	OnLeaderChange func(epoch uint64, leader int)
	// OnPeerDown and OnPeerUp observe peer liveness transitions. The server
	// wires OnPeerDown to core.Server.ReleaseLeader so a dead coordinator's
	// half-finished round state is dropped. Must not block.
	OnPeerDown func(peer int)
	OnPeerUp   func(peer int)
	// Probe overrides the network probe (tests). The default sends
	// MsgClusterInfo to the peer over a re-dialing connection and returns
	// its Info payload, so every health probe doubles as epoch gossip.
	Probe func(peer int, timeout time.Duration) ([]byte, error)
}

func (c Config) withDefaults() Config {
	if c.PingInterval <= 0 {
		c.PingInterval = 250 * time.Millisecond
	}
	if c.PingTimeout <= 0 {
		c.PingTimeout = c.PingInterval
	}
	if c.FailAfter < 1 {
		c.FailAfter = 3
	}
	if c.Grace <= 0 {
		c.Grace = 4 * c.PingInterval
	}
	return c
}

// Node is one cluster member's control plane: it probes peers, maintains the
// liveness view and the epoch counter, and answers "am I the leader right
// now?" for the data plane (ingest gate, publish loop). Leadership is
// deterministic given (epoch, liveness): the first live member scanning the
// roster from epoch mod n. Members converge on epoch through gossip
// (highest wins) and on liveness through their own probes; transient
// disagreement is safe because leader duty is namespaced coordination work,
// not exclusive state.
type Node struct {
	cfg     Config
	n, self int
	checker *transport.HealthChecker
	peers   []*transport.RedialPeer
	quit    chan struct{}
	wg      sync.WaitGroup
	stop    sync.Once

	mu     sync.Mutex
	epoch  uint64
	leader int
	ready  bool

	failovers *telemetry.Counter
	rotations *telemetry.Counter
	adoptions *telemetry.Counter
	pingFails *telemetry.Counter
	pings     *telemetry.Counter
}

// New validates cfg and builds the member. Call Start to begin probing.
func New(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Roster == nil {
		return nil, fmt.Errorf("cluster: config needs a roster")
	}
	n := cfg.Roster.N()
	if cfg.Self < 0 || cfg.Self >= n {
		return nil, fmt.Errorf("cluster: self index %d outside roster of %d", cfg.Self, n)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.New()
	}
	nd := &Node{
		cfg:       cfg,
		n:         n,
		self:      cfg.Self,
		quit:      make(chan struct{}),
		failovers: reg.Counter("prio_cluster_failovers_total", "epoch bumps caused by the sitting leader going down"),
		rotations: reg.Counter("prio_cluster_rotations_total", "epoch bumps from timed leadership rotation"),
		adoptions: reg.Counter("prio_cluster_epoch_adoptions_total", "higher epochs adopted from peer gossip"),
		pings:     reg.Counter("prio_cluster_pings_total", "peer health probes sent"),
		pingFails: reg.Counter("prio_cluster_ping_failures_total", "peer health probes that failed or timed out"),
	}

	probes := make([]transport.ProbeFunc, n)
	for i := 0; i < n; i++ {
		if i == nd.self {
			continue // own slot: always up, never probed
		}
		i := i
		call := cfg.Probe
		if call == nil {
			p := transport.NewRedialPeer(cfg.Roster.Addrs[i], cfg.TLS)
			nd.peers = append(nd.peers, p)
			call = func(_ int, timeout time.Duration) ([]byte, error) {
				return p.CallTimeout(MsgClusterInfo, nil, timeout)
			}
		}
		probes[i] = func(timeout time.Duration) error {
			nd.pings.Inc()
			resp, err := call(i, timeout)
			if err != nil {
				nd.pingFails.Inc()
				return err
			}
			info, err := ParseInfo(resp)
			if err != nil {
				nd.pingFails.Inc()
				return err
			}
			nd.observe(info)
			return nil
		}
	}
	nd.checker = transport.NewHealthChecker(probes, transport.HealthConfig{
		Interval:      cfg.PingInterval,
		Timeout:       cfg.PingTimeout,
		FailThreshold: cfg.FailAfter,
		OnChange:      nd.peerChange,
	})
	nd.leader = nd.leaderAtLocked(0)

	reg.GaugeFunc("prio_cluster_leader", "roster index this member believes holds leadership",
		func() float64 { _, l := nd.View(); return float64(l) })
	reg.GaugeFunc("prio_cluster_epoch", "leadership rotation epoch",
		func() float64 { e, _ := nd.View(); return float64(e) })
	reg.GaugeFunc("prio_cluster_is_leader", "1 when this member holds leadership",
		func() float64 {
			if nd.IsLeader() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("prio_cluster_size", "roster size", func() float64 { return float64(n) })
	for i := 0; i < n; i++ {
		i := i
		reg.GaugeFunc("prio_cluster_peer_up", "1 while the member is considered live",
			func() float64 {
				if nd.checker.Up(i) {
					return 1
				}
				return 0
			}, telemetry.Label{Key: "peer", Value: strconv.Itoa(i)})
	}
	return nd, nil
}

// Start begins probing, arms the boot grace, and (on the leader) the
// rotation timer.
func (n *Node) Start() {
	n.checker.Start()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		select {
		case <-time.After(n.cfg.Grace):
			n.mu.Lock()
			n.ready = true
			n.mu.Unlock()
		case <-n.quit:
		}
	}()
	if n.cfg.RotateEvery > 0 {
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			tick := time.NewTicker(n.cfg.RotateEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					n.rotate()
				case <-n.quit:
					return
				}
			}
		}()
	}
}

// Stop halts probing and timers and drops the peer connections.
func (n *Node) Stop() {
	n.stop.Do(func() {
		close(n.quit)
		n.checker.Stop()
		n.wg.Wait()
		for _, p := range n.peers {
			p.Close()
		}
	})
}

// leaderAtLocked resolves epoch to a member: the first live one scanning
// from epoch mod n. Callers hold mu (or the node is not yet started).
func (n *Node) leaderAtLocked(epoch uint64) int {
	start := int(epoch % uint64(n.n))
	for k := 0; k < n.n; k++ {
		i := (start + k) % n.n
		if i == n.self || n.checker.Up(i) {
			return i
		}
	}
	return start
}

// recomputeLocked re-derives the leader from (epoch, liveness); returns the
// OnLeaderChange callback to run outside mu, or nil.
func (n *Node) recomputeLocked() func() {
	l := n.leaderAtLocked(n.epoch)
	if l == n.leader {
		return nil
	}
	n.leader = l
	epoch := n.epoch
	if cb := n.cfg.OnLeaderChange; cb != nil {
		return func() { cb(epoch, l) }
	}
	return func() {}
}

// peerChange is the health checker's transition callback.
func (n *Node) peerChange(peer int, up bool) {
	n.mu.Lock()
	if !up && peer == n.leader {
		// The coordinator died mid-round: advance the epoch so duty moves
		// to the next live member instead of merely skipping the dead one
		// at the same epoch (which would hand duty straight back on
		// recovery, re-interrupting in-flight rounds).
		n.epoch++
		n.failovers.Inc()
	}
	cb := n.recomputeLocked()
	n.mu.Unlock()
	if up {
		if f := n.cfg.OnPeerUp; f != nil {
			f(peer)
		}
	} else {
		if f := n.cfg.OnPeerDown; f != nil {
			f(peer)
		}
	}
	if cb != nil {
		cb()
	}
}

// observe folds a peer's gossiped Info into the local view: higher epochs
// win. This is how a restarted member (back at epoch 0) catches up within
// one probe round instead of contesting leadership.
func (n *Node) observe(info Info) {
	n.mu.Lock()
	var cb func()
	if info.Epoch > n.epoch {
		n.epoch = info.Epoch
		n.adoptions.Inc()
		cb = n.recomputeLocked()
	}
	n.mu.Unlock()
	if cb != nil {
		cb()
	}
}

// rotate is the timed leadership handoff: only the sitting leader bumps, so
// the cluster's epoch advances once per interval, not once per member.
func (n *Node) rotate() {
	n.mu.Lock()
	if !(n.ready && n.leader == n.self) {
		n.mu.Unlock()
		return
	}
	n.epoch++
	n.rotations.Inc()
	cb := n.recomputeLocked()
	n.mu.Unlock()
	if cb != nil {
		cb()
	}
}

// View returns the current (epoch, leader) pair.
func (n *Node) View() (epoch uint64, leader int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch, n.leader
}

// Self returns this member's roster index.
func (n *Node) Self() int { return n.self }

// IsLeader reports whether this member currently holds coordination duty.
// Always false during the boot grace.
func (n *Node) IsLeader() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ready && n.leader == n.self
}

// Alive snapshots the liveness view (own slot always true).
func (n *Node) Alive() []bool { return n.checker.View() }

// InfoNow assembles this member's gossip payload.
func (n *Node) InfoNow() Info {
	var alive uint64
	for i, up := range n.Alive() {
		if up {
			alive |= 1 << uint(i)
		}
	}
	epoch, leader := n.View()
	return Info{
		Epoch:  epoch,
		Leader: uint32(leader),
		Self:   uint32(n.self),
		N:      uint32(n.n),
		Alive:  alive,
	}
}

// HandleInfo answers one MsgClusterInfo request; servers splice it into
// their transport handler.
func (n *Node) HandleInfo(payload []byte) ([]byte, error) {
	return n.InfoNow().Marshal(), nil
}

// LeaderGate returns the ingest-admission check: nil while this member
// leads, an error naming the real leader otherwise. Wire it into
// ingest.Config.Gate so clients probing a non-leader are refused at stream
// open and re-resolve instead of submitting into the void.
func (n *Node) LeaderGate() func() error {
	return func() error {
		n.mu.Lock()
		epoch, leader, ready := n.epoch, n.leader, n.ready
		n.mu.Unlock()
		if ready && leader == n.self {
			return nil
		}
		return fmt.Errorf("cluster: member %d is not the leader (epoch %d, leader %d)", n.self, epoch, leader)
	}
}
