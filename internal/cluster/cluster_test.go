package cluster

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"prio/internal/transport"
)

func TestRosterParse(t *testing.T) {
	r, err := ParseRoster("a:1, b:2,c:3")
	if err != nil {
		t.Fatal(err)
	}
	if r.N() != 3 || r.Addrs[1] != "b:2" {
		t.Fatalf("parsed %v", r.Addrs)
	}
	if _, err := ParseRoster(""); err == nil {
		t.Error("empty roster accepted")
	}
	if _, err := ParseRoster("x:1,x:1"); err == nil {
		t.Error("duplicate member accepted")
	}
	if _, err := ParseRoster(strings.Repeat("m:1,", MaxMembers) + "last:1"); err == nil {
		t.Error("oversized roster accepted")
	}
}

func TestRosterFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "roster")
	content := "# three-member deployment\nhost0:7000\nhost1:7000  # second\n\nhost2:7000\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := LoadOrParseRoster(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.String() != "host0:7000,host1:7000,host2:7000" {
		t.Fatalf("loaded %q", r.String())
	}
	// The same entry point must fall back to the comma form.
	r, err = LoadOrParseRoster("p:1,q:2")
	if err != nil || r.N() != 2 {
		t.Fatalf("comma fallback: %v %v", r, err)
	}
}

func TestInfoRoundTrip(t *testing.T) {
	in := Info{Epoch: 7, Leader: 1, Self: 2, N: 3, Alive: 0b101}
	out, err := ParseInfo(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip %+v != %+v", out, in)
	}
	if !out.AliveAt(0) || out.AliveAt(1) || !out.AliveAt(2) {
		t.Error("bitmap decode wrong")
	}
	if _, err := ParseInfo(in.Marshal()[:10]); err == nil {
		t.Error("short info accepted")
	}
}

// fakeCluster wires n Nodes together with in-memory probes: a probe from
// member a to member b fails while down[b] is set, and otherwise returns
// b's real gossip payload.
type fakeCluster struct {
	mu    sync.Mutex
	nodes []*Node
	down  []bool
}

func (fc *fakeCluster) setDown(i int, d bool) {
	fc.mu.Lock()
	fc.down[i] = d
	fc.mu.Unlock()
}

func (fc *fakeCluster) probe(peer int, _ time.Duration) ([]byte, error) {
	fc.mu.Lock()
	dead := fc.down[peer]
	node := fc.nodes[peer]
	fc.mu.Unlock()
	if dead || node == nil {
		return nil, errors.New("unreachable")
	}
	return node.HandleInfo(nil)
}

func newFakeCluster(t *testing.T, n int, cfg Config) *fakeCluster {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = "member" + string(rune('0'+i)) + ":0"
	}
	ros := &Roster{Addrs: addrs}
	fc := &fakeCluster{nodes: make([]*Node, n), down: make([]bool, n)}
	for i := 0; i < n; i++ {
		c := cfg
		c.Roster = ros
		c.Self = i
		c.Probe = fc.probe
		if c.PingInterval == 0 {
			c.PingInterval = 5 * time.Millisecond
		}
		if c.Grace == 0 {
			c.Grace = time.Millisecond
		}
		nd, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		fc.mu.Lock()
		fc.nodes[i] = nd
		fc.mu.Unlock()
	}
	for _, nd := range fc.nodes {
		nd.Start()
	}
	t.Cleanup(func() {
		for _, nd := range fc.nodes {
			nd.Stop()
		}
	})
	return fc
}

func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal(msg)
}

// TestFailoverElectsNextMember: killing the leader moves duty to the next
// live member within the failure threshold, every survivor agrees, and the
// restarted member rejoins as a follower (epoch gossip wins over its stale
// epoch-0 claim to leadership).
func TestFailoverElectsNextMember(t *testing.T) {
	fc := newFakeCluster(t, 3, Config{})
	waitFor(t, 2*time.Second, func() bool { return fc.nodes[0].IsLeader() }, "member 0 never took initial leadership")

	fc.setDown(0, true)
	waitFor(t, 2*time.Second, func() bool { return fc.nodes[1].IsLeader() }, "member 1 never took over")
	waitFor(t, 2*time.Second, func() bool {
		e2, l2 := fc.nodes[2].View()
		return e2 >= 1 && l2 == 1
	}, "member 2 never agreed on the new leader")
	if fc.nodes[2].IsLeader() {
		t.Error("member 2 claims leadership too")
	}

	// "Restart" member 0: back online at its stale epoch. It must adopt the
	// cluster epoch via gossip and stay a follower.
	fc.setDown(0, false)
	waitFor(t, 2*time.Second, func() bool {
		e0, l0 := fc.nodes[0].View()
		return e0 >= 1 && l0 == 1
	}, "restarted member never adopted the cluster epoch")
	if fc.nodes[0].IsLeader() {
		t.Error("restarted member reasserted leadership")
	}
	if !fc.nodes[1].IsLeader() {
		t.Error("leader lost duty when the old member returned")
	}
}

// TestCascadingFailover: with members 0 and 1 both dead, duty lands on 2.
func TestCascadingFailover(t *testing.T) {
	fc := newFakeCluster(t, 3, Config{})
	waitFor(t, 2*time.Second, func() bool { return fc.nodes[0].IsLeader() }, "no initial leader")
	fc.setDown(0, true)
	waitFor(t, 2*time.Second, func() bool { return fc.nodes[1].IsLeader() }, "member 1 never led")
	fc.setDown(1, true)
	waitFor(t, 2*time.Second, func() bool { return fc.nodes[2].IsLeader() }, "member 2 never led")
}

// TestTimedRotation: with RotateEvery set, the sitting leader cedes duty on
// the interval and the epoch advances once per handoff (only the leader
// bumps, so n members do not multiply the rotation rate).
func TestTimedRotation(t *testing.T) {
	fc := newFakeCluster(t, 3, Config{RotateEvery: 20 * time.Millisecond})
	sawLeader := make(map[int]bool)
	waitFor(t, 5*time.Second, func() bool {
		for i, nd := range fc.nodes {
			if nd.IsLeader() {
				sawLeader[i] = true
			}
		}
		return len(sawLeader) == 3
	}, "rotation never cycled duty through all members")
}

// TestLeaderGate: followers refuse ingest admission, naming the leader.
func TestLeaderGate(t *testing.T) {
	fc := newFakeCluster(t, 2, Config{})
	waitFor(t, 2*time.Second, func() bool { return fc.nodes[0].IsLeader() }, "no leader")
	if err := fc.nodes[0].LeaderGate()(); err != nil {
		t.Errorf("leader gate refused: %v", err)
	}
	err := fc.nodes[1].LeaderGate()()
	if err == nil {
		t.Fatal("follower gate admitted")
	}
	if !strings.Contains(err.Error(), "leader 0") {
		t.Errorf("gate error does not name the leader: %v", err)
	}
}

// TestResolveOverTCP exercises the wire path end to end: real listeners
// answering MsgClusterInfo, one member down, Resolve picking the
// highest-epoch answer.
func TestResolveOverTCP(t *testing.T) {
	mk := func(info Info) (*transport.Server, string) {
		srv, err := transport.Listen("127.0.0.1:0", nil, func(msgType byte, payload []byte) ([]byte, error) {
			if msgType != MsgClusterInfo {
				return nil, errors.New("unexpected type")
			}
			return info.Marshal(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return srv, srv.Addr().String()
	}
	// Member 0 is dead (never listened); 1 and 2 answer, 2 with the higher
	// epoch view naming 1 as leader.
	s1, a1 := mk(Info{Epoch: 0, Leader: 0, Self: 1, N: 3})
	defer s1.Close()
	s2, a2 := mk(Info{Epoch: 3, Leader: 1, Self: 2, N: 3})
	defer s2.Close()
	ros := &Roster{Addrs: []string{"127.0.0.1:1", a1, a2}}

	info, addr, err := Resolve(ros, ResolveConfig{Timeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 3 || addr != a1 {
		t.Fatalf("resolved epoch %d addr %s, want epoch 3 addr %s", info.Epoch, addr, a1)
	}

	// All members dead: resolution must fail, not hang.
	dead := &Roster{Addrs: []string{"127.0.0.1:1"}}
	if _, _, err := Resolve(dead, ResolveConfig{Timeout: 200 * time.Millisecond}); err == nil {
		t.Error("resolve against dead roster succeeded")
	}
}
