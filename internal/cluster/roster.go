// Package cluster gives a Prio deployment its multi-server shape: a roster
// of independent prio-server processes, deterministic leadership rotation
// across them per epoch counter, health-checked peers, and failover — when
// the current leader dies, the survivors bump the epoch and the next live
// roster member takes over coordination (the paper's §7 deployment story;
// the roster-driven service arrangement follows dedis/cothority).
//
// Leadership here is coordination duty, not consensus: any server can verify
// any submission (Appendix I), and challenge/batch identifiers are
// namespaced by server index, so even two servers briefly acting as leader
// during a transition cannot corrupt state — the cost of a split is only
// duplicated work. That is why a gossiped epoch counter with
// highest-epoch-wins is enough and no election protocol is needed.
package cluster

import (
	"fmt"
	"os"
	"strings"
)

// Roster is the ordered list of deployment members. Index in Addrs is the
// server's protocol index (its share slot); every member must hold the same
// roster for the deterministic rotation to agree.
type Roster struct {
	Addrs []string
}

// MaxMembers bounds a roster: the protocol's ID namespacing carries the
// leader index in a byte, and the liveness bitmap in 64 bits.
const MaxMembers = 64

// ParseRoster parses a comma-separated address list in index order.
func ParseRoster(s string) (*Roster, error) {
	var addrs []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return newRoster(addrs)
}

// LoadRoster reads a roster file: one address per line, in index order.
// Blank lines and #-comments are skipped.
func LoadRoster(path string) (*Roster, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var addrs []string
	for _, line := range strings.Split(string(b), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		if line = strings.TrimSpace(line); line != "" {
			addrs = append(addrs, line)
		}
	}
	return newRoster(addrs)
}

// LoadOrParseRoster accepts either form: a path to a roster file when one
// exists, otherwise a comma-separated list. This is what the -roster flag
// takes.
func LoadOrParseRoster(s string) (*Roster, error) {
	if _, err := os.Stat(s); err == nil {
		return LoadRoster(s)
	}
	return ParseRoster(s)
}

func newRoster(addrs []string) (*Roster, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: empty roster")
	}
	if len(addrs) > MaxMembers {
		return nil, fmt.Errorf("cluster: roster has %d members, max %d", len(addrs), MaxMembers)
	}
	seen := make(map[string]int, len(addrs))
	for i, a := range addrs {
		if j, dup := seen[a]; dup {
			return nil, fmt.Errorf("cluster: address %q appears at roster indexes %d and %d", a, j, i)
		}
		seen[a] = i
	}
	return &Roster{Addrs: addrs}, nil
}

// N returns the member count.
func (r *Roster) N() int { return len(r.Addrs) }

// String renders the roster as its comma-separated form.
func (r *Roster) String() string { return strings.Join(r.Addrs, ",") }
