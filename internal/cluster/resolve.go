package cluster

import (
	"crypto/tls"
	"fmt"
	"time"

	"prio/internal/transport"
)

// ResolveConfig tunes client-side leader discovery.
type ResolveConfig struct {
	// TLS is the dial configuration (nil = plaintext).
	TLS *tls.Config
	// Timeout bounds each member's MsgClusterInfo round trip (default 1s),
	// so resolution over a roster with dead members stays fast.
	Timeout time.Duration
}

// Resolve asks every roster member for its cluster Info and returns the
// highest-epoch view plus the leader's address. Clients (prio-load, the
// failover submitter) call it before dialing an ingest stream and again
// after a stream dies — the re-targeting that rides out a leader kill.
// Members that are down or mid-restart are skipped; it fails only when no
// member answers.
func Resolve(r *Roster, cfg ResolveConfig) (Info, string, error) {
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = time.Second
	}
	var best Info
	found := false
	var lastErr error
	for _, addr := range r.Addrs {
		p := transport.NewRedialPeer(addr, cfg.TLS)
		resp, err := p.CallTimeout(MsgClusterInfo, nil, timeout)
		p.Close()
		if err != nil {
			lastErr = err
			continue
		}
		info, err := ParseInfo(resp)
		if err != nil {
			lastErr = err
			continue
		}
		if int(info.N) != r.N() {
			lastErr = fmt.Errorf("cluster: member %s reports roster size %d, ours is %d", addr, info.N, r.N())
			continue
		}
		if !found || info.Epoch > best.Epoch {
			best = info
			found = true
		}
	}
	if !found {
		return Info{}, "", fmt.Errorf("cluster: no roster member answered: %w", lastErr)
	}
	if int(best.Leader) >= r.N() {
		return Info{}, "", fmt.Errorf("cluster: reported leader %d outside roster", best.Leader)
	}
	return best, r.Addrs[best.Leader], nil
}
