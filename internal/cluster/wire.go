package cluster

import (
	"encoding/binary"
	"fmt"
)

// MsgClusterInfo is the cluster-membership exchange: a member (or a client
// resolving the leader) sends an empty request, the served member answers
// with its Info. The type sits in the 0x30 block, clear of the core protocol
// (1–10), ingest (0x20–0x22), and the reserved transport types (0xFC–0xFF).
// cmd/prio-server splices HandleInfo in front of the core handler for it.
const MsgClusterInfo byte = 0x30

// Info is one member's view of the cluster, small enough to ride along every
// health probe: epoch gossip is what lets a restarted member rejoin at the
// cluster's current epoch instead of reasserting leadership from epoch 0.
type Info struct {
	// Epoch is the rotation counter; leaderAt(Epoch) holds coordination
	// duty. Failovers and timed rotations bump it; members adopt any higher
	// epoch they see.
	Epoch uint64
	// Leader is the sender's current view of the leader index.
	Leader uint32
	// Self is the sender's roster index.
	Self uint32
	// N is the sender's roster size, a cheap configuration cross-check.
	N uint32
	// Alive is the sender's liveness bitmap (bit i = member i up).
	Alive uint64
}

const infoLen = 8 + 4 + 4 + 4 + 8

// Marshal encodes the Info.
func (in Info) Marshal() []byte {
	b := make([]byte, infoLen)
	binary.LittleEndian.PutUint64(b[0:], in.Epoch)
	binary.LittleEndian.PutUint32(b[8:], in.Leader)
	binary.LittleEndian.PutUint32(b[12:], in.Self)
	binary.LittleEndian.PutUint32(b[16:], in.N)
	binary.LittleEndian.PutUint64(b[20:], in.Alive)
	return b
}

// ParseInfo decodes an Info.
func ParseInfo(b []byte) (Info, error) {
	if len(b) != infoLen {
		return Info{}, fmt.Errorf("cluster: info is %d bytes, want %d", len(b), infoLen)
	}
	return Info{
		Epoch:  binary.LittleEndian.Uint64(b[0:]),
		Leader: binary.LittleEndian.Uint32(b[8:]),
		Self:   binary.LittleEndian.Uint32(b[12:]),
		N:      binary.LittleEndian.Uint32(b[16:]),
		Alive:  binary.LittleEndian.Uint64(b[20:]),
	}, nil
}

// AliveAt reports bit i of the liveness bitmap.
func (in Info) AliveAt(i int) bool { return i < 64 && in.Alive&(1<<uint(i)) != 0 }
