package ingest

import (
	"errors"
	"sync"
	"time"

	"prio/internal/core"
)

// ErrAbandoned reports a submission that exhausted its delivery attempts.
var ErrAbandoned = errors.New("ingest: submission abandoned after max attempts")

// FailoverConfig tunes a FailoverSubmitter.
type FailoverConfig struct {
	// Dial opens a stream to the current leader. The failover layer owns ack
	// interception, so the callee must build the StreamSubmitter with the
	// provided onAck (typically Dial(resolveLeader(), SubmitterConfig{TLS:
	// tls, OnAck: onAck})). Re-resolving the leader on every call is the
	// point: after a failover this is what re-targets the stream.
	Dial func(onAck func(Ack)) (*StreamSubmitter, error)
	// MaxAttempts bounds delivery attempts per submission, counting the
	// first (default 4). A shed, failed, or stream-death outcome consumes
	// one attempt; beyond the budget the submission is abandoned.
	MaxAttempts int
	// DialAttempts bounds consecutive failed dials before giving up
	// (default 20). Between dials the submitter backs off.
	DialAttempts int
	// RedialBackoff is the initial wait after a failed dial, doubling up to
	// a 2s cap (default 100ms).
	RedialBackoff time.Duration
	// OnFinal, when set, observes every final decision: accepted, rejected,
	// or (with Status StatusFailed and the submission abandoned) the end of
	// the retry budget. Retried sheds and failures are not surfaced here —
	// they are the layer's job to hide.
	OnFinal func(Ack)
}

func (c FailoverConfig) withDefaults() FailoverConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.DialAttempts <= 0 {
		c.DialAttempts = 20
	}
	if c.RedialBackoff <= 0 {
		c.RedialBackoff = 100 * time.Millisecond
	}
	return c
}

// FailoverStats counts a FailoverSubmitter's work. The client-side loss
// ledger closes as Submitted == Accepted + Rejected + Abandoned once Wait
// returns: every submission reached a final state.
type FailoverStats struct {
	Submitted uint64
	Accepted  uint64
	Rejected  uint64
	// ShedRetried counts shed acks answered with a re-submission.
	ShedRetried uint64
	// FailedRetried counts failed acks and stream deaths answered with a
	// re-submission.
	FailedRetried uint64
	// Failovers counts stream deaths that stranded in-flight submissions
	// (each triggers a re-dial of the — possibly new — leader).
	Failovers uint64
	// Redials counts successful Dial calls after the first.
	Redials uint64
	// Abandoned counts submissions that exhausted MaxAttempts.
	Abandoned uint64
}

// entry is one logical submission riding the failover layer.
type entry struct {
	sub      *core.Submission
	attempts int
	start    time.Time
}

// ackKey namespaces stream-local ack IDs by dial generation, so a late ack
// from a dead stream cannot resolve a submission already re-queued onto its
// successor.
type ackKey struct {
	gen uint64
	id  uint64
}

// FailoverSubmitter wraps StreamSubmitter with at-least-once delivery across
// leader failovers: when the stream dies (leader killed) it re-dials via
// cfg.Dial — which re-resolves the leader — and re-submits everything that
// was in flight; shed and failed acks are retried the same way up to
// MaxAttempts.
//
// At-least-once means a submission whose ack was lost with the old leader
// may be verified and aggregated twice by the server side. That skews the
// aggregate by the duplicate's value but never breaks privacy (each copy is
// an independently valid share set); deployments that need exactly-once must
// deduplicate behind ingest. What this layer guarantees is the client-side
// ledger: after Wait, Submitted == Accepted + Rejected + Abandoned.
type FailoverSubmitter struct {
	cfg FailoverConfig

	mu       sync.Mutex
	cond     *sync.Cond
	cur      *StreamSubmitter
	gen      uint64 // current dial generation
	dialing  bool
	inflight map[ackKey]*entry
	retryq   []*entry
	pending  int // inflight + queued + being-sent, for Wait
	closed   bool
	dialErr  error // terminal dial failure, poisons future sends
	stats    FailoverStats
}

// NewFailoverSubmitter builds the failover layer. The first dial happens
// lazily on the first Submit.
func NewFailoverSubmitter(cfg FailoverConfig) (*FailoverSubmitter, error) {
	if cfg.Dial == nil {
		return nil, errors.New("ingest: FailoverConfig.Dial is required")
	}
	f := &FailoverSubmitter{
		cfg:      cfg.withDefaults(),
		inflight: make(map[ackKey]*entry),
	}
	f.cond = sync.NewCond(&f.mu)
	go f.retryLoop()
	return f, nil
}

// Submit delivers one submission with retries, blocking while the current
// stream's credit window is full (or a re-dial is in progress). The final
// decision arrives via OnFinal; Wait drains everything outstanding.
func (f *FailoverSubmitter) Submit(sub *core.Submission) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrSubmitterClosed
	}
	f.stats.Submitted++
	f.pending++
	f.mu.Unlock()
	e := &entry{sub: sub, attempts: 1, start: time.Now()}
	if err := f.send(e); err != nil {
		f.abandon(e)
		return err
	}
	return nil
}

// Stats snapshots the counters.
func (f *FailoverSubmitter) Stats() FailoverStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Wait blocks until every submission has reached a final state (accepted,
// rejected, or abandoned).
func (f *FailoverSubmitter) Wait() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for f.pending > 0 && !f.closed {
		f.cond.Wait()
	}
}

// Close tears the layer down. Submissions still in flight or queued for
// retry are abandoned.
func (f *FailoverSubmitter) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	cur := f.cur
	f.cur = nil
	orphans := f.takeOrphansLocked(f.gen)
	orphans = append(orphans, f.retryq...)
	f.retryq = nil
	f.cond.Broadcast()
	f.mu.Unlock()
	if cur != nil {
		cur.Close()
	}
	for _, e := range orphans {
		f.abandon(e)
	}
	return nil
}

// send places e on a live stream, re-dialing as needed. It blocks on the
// stream's credit window — backpressure propagates to the caller.
func (f *FailoverSubmitter) send(e *entry) error {
	for {
		s, gen, err := f.stream()
		if err != nil {
			return err
		}
		id, err := s.Submit(e.sub)
		if err != nil {
			// The stream died under us; drop it (if still current) and loop
			// into a fresh dial. The watcher goroutine requeues whatever else
			// was in flight.
			f.dropStream(s)
			continue
		}
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			return ErrSubmitterClosed
		}
		f.inflight[ackKey{gen: gen, id: id}] = e
		f.mu.Unlock()
		return nil
	}
}

// stream returns the current live stream, dialing one (with backoff) if
// needed. Concurrent callers during a dial wait rather than dialing too.
func (f *FailoverSubmitter) stream() (*StreamSubmitter, uint64, error) {
	f.mu.Lock()
	for {
		if f.closed {
			f.mu.Unlock()
			return nil, 0, ErrSubmitterClosed
		}
		if f.dialErr != nil {
			err := f.dialErr
			f.mu.Unlock()
			return nil, 0, err
		}
		if f.cur != nil {
			s, gen := f.cur, f.gen
			f.mu.Unlock()
			return s, gen, nil
		}
		if f.dialing {
			f.cond.Wait()
			continue
		}
		f.dialing = true
		f.gen++
		gen := f.gen
		first := gen == 1
		f.mu.Unlock()

		s, err := f.dialWithBackoff(gen)

		f.mu.Lock()
		f.dialing = false
		if err != nil {
			f.dialErr = err
		} else if f.closed {
			f.mu.Unlock()
			s.Close()
			f.mu.Lock()
		} else {
			f.cur = s
			if !first {
				f.stats.Redials++
			}
			go f.watch(s, gen)
		}
		f.cond.Broadcast()
	}
}

// dialWithBackoff runs cfg.Dial up to DialAttempts times. The onAck closure
// binds this stream's generation so its acks resolve only entries submitted
// on it.
func (f *FailoverSubmitter) dialWithBackoff(gen uint64) (*StreamSubmitter, error) {
	backoff := f.cfg.RedialBackoff
	var lastErr error
	for try := 0; try < f.cfg.DialAttempts; try++ {
		if try > 0 {
			time.Sleep(backoff)
			if backoff *= 2; backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
		}
		f.mu.Lock()
		dead := f.closed
		f.mu.Unlock()
		if dead {
			return nil, ErrSubmitterClosed
		}
		s, err := f.cfg.Dial(func(a Ack) { f.onAck(gen, a) })
		if err == nil {
			return s, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// dropStream forgets s as the current stream so the next send re-dials.
func (f *FailoverSubmitter) dropStream(s *StreamSubmitter) {
	f.mu.Lock()
	if f.cur == s {
		f.cur = nil
	}
	f.mu.Unlock()
}

// watch requeues everything in flight on s when it dies.
func (f *FailoverSubmitter) watch(s *StreamSubmitter, gen uint64) {
	<-s.Done()
	f.mu.Lock()
	if f.cur == s {
		f.cur = nil
	}
	closed := f.closed
	orphans := f.takeOrphansLocked(gen)
	if len(orphans) > 0 && !closed {
		f.stats.Failovers++
	}
	f.mu.Unlock()
	for _, e := range orphans {
		if closed {
			f.abandon(e)
			continue
		}
		f.retry(e, &f.stats.FailedRetried)
	}
}

// takeOrphansLocked removes and returns every inflight entry of generation
// gen. Caller holds f.mu.
func (f *FailoverSubmitter) takeOrphansLocked(gen uint64) []*entry {
	var out []*entry
	for k, e := range f.inflight {
		if k.gen == gen {
			delete(f.inflight, k)
			out = append(out, e)
		}
	}
	return out
}

// onAck resolves one stream ack against the inflight table. It runs on a
// stream's read goroutine, so the retry path only enqueues — the retryLoop
// goroutine does the (potentially blocking) re-submission.
func (f *FailoverSubmitter) onAck(gen uint64, a Ack) {
	f.mu.Lock()
	e, ok := f.inflight[ackKey{gen: gen, id: a.ID}]
	if ok {
		delete(f.inflight, ackKey{gen: gen, id: a.ID})
	}
	f.mu.Unlock()
	if !ok {
		return // late ack for an entry already requeued elsewhere
	}
	switch a.Status {
	case StatusAccepted, StatusRejected:
		f.final(e, a.Status)
	case StatusShed:
		f.retry(e, &f.stats.ShedRetried)
	default: // StatusFailed and anything unknown
		f.retry(e, &f.stats.FailedRetried)
	}
}

// retry spends one attempt and requeues e, or abandons it past the budget.
// counter points at the stats field tallying this retry flavor.
func (f *FailoverSubmitter) retry(e *entry, counter *uint64) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		f.abandon(e)
		return
	}
	e.attempts++
	if e.attempts > f.cfg.MaxAttempts {
		f.mu.Unlock()
		f.abandon(e)
		return
	}
	*counter++
	f.retryq = append(f.retryq, e)
	f.cond.Broadcast()
	f.mu.Unlock()
}

// retryLoop re-submits queued entries off the ack/watch goroutines, where
// blocking on credits would stall ack intake.
func (f *FailoverSubmitter) retryLoop() {
	f.mu.Lock()
	for {
		for len(f.retryq) == 0 && !f.closed {
			f.cond.Wait()
		}
		if f.closed {
			f.mu.Unlock()
			return
		}
		e := f.retryq[0]
		f.retryq = f.retryq[1:]
		f.mu.Unlock()
		if err := f.send(e); err != nil {
			f.abandon(e)
		}
		f.mu.Lock()
	}
}

// final books a decided submission and notifies OnFinal.
func (f *FailoverSubmitter) final(e *entry, status AckStatus) {
	f.mu.Lock()
	switch status {
	case StatusAccepted:
		f.stats.Accepted++
	case StatusRejected:
		f.stats.Rejected++
	}
	f.pending--
	if f.pending == 0 {
		f.cond.Broadcast()
	}
	f.mu.Unlock()
	if f.cfg.OnFinal != nil {
		f.cfg.OnFinal(Ack{Status: status, Latency: time.Since(e.start)})
	}
}

// abandon ends a submission without a decision.
func (f *FailoverSubmitter) abandon(e *entry) {
	f.mu.Lock()
	f.stats.Abandoned++
	f.pending--
	if f.pending == 0 {
		f.cond.Broadcast()
	}
	f.mu.Unlock()
	if f.cfg.OnFinal != nil {
		f.cfg.OnFinal(Ack{Status: StatusFailed, Latency: time.Since(e.start)})
	}
}
