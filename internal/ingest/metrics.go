package ingest

import (
	"sync/atomic"

	"prio/internal/telemetry"
	"prio/internal/transport"
)

// ingestMetrics is the ingest edge's view into the telemetry registry.
// The registry counters are the source of truth for the subsystem-wide
// totals — Server.Stats reads them back — while the per-stream Stats
// structs keep their own atomics (a stream's counters die with it, the
// registry's do not).
type ingestMetrics struct {
	streams  *telemetry.Counter
	received *telemetry.Counter
	accepted *telemetry.Counter
	rejected *telemetry.Counter
	shed     *telemetry.Counter
	failed   *telemetry.Counter

	frameDur  *telemetry.DurationHistogram // submit frame decode → routed (fast path or parked)
	intakeDur *telemetry.DurationHistogram // wait in the intake queue before the pump drains it
	decision  *telemetry.DurationHistogram // frame decode → ack decision, any outcome

	retunes     *telemetry.Counter // dynamic-credit window changes pushed to clients
	busyStreams int64              // streams the last tune tick saw submitting (atomic)

	// Wire totals fold each closed stream's FrameConn counters into these;
	// the registered CounterFuncs add the live streams on top, so the
	// exported series never move backwards when a stream closes.
	closedWire transport.Stats
}

// newIngestMetrics registers the ingest metric families in reg. The wire
// CounterFuncs close over s to include the live streams' FrameConn counters.
func newIngestMetrics(reg *telemetry.Registry, s *Server) *ingestMetrics {
	m := &ingestMetrics{
		streams: reg.Counter("prio_ingest_streams_total",
			"ingest streams opened"),
		received: reg.Counter("prio_ingest_received_total",
			"submit frames decoded"),
		accepted: reg.Counter("prio_ingest_accepted_total",
			"submissions acked accepted (shares entered the accumulators)"),
		rejected: reg.Counter("prio_ingest_rejected_total",
			"submissions acked rejected (verification refused the proof)"),
		shed: reg.Counter("prio_ingest_shed_total",
			"submissions acked shed (credit overrun or intake queue full)"),
		failed: reg.Counter("prio_ingest_failed_total",
			"submissions acked failed (batch-level verification error)"),
		frameDur: reg.Duration("prio_ingest_frame_seconds",
			"submit frame handling: decode through routing into the sink or intake queue"),
		intakeDur: reg.Duration("prio_ingest_intake_wait_seconds",
			"time a parked submission waits in the intake queue before the pump drains it"),
		decision: reg.Duration("prio_ingest_decision_seconds",
			"submit frame decode to ack decision, across all outcomes"),
		retunes: reg.Counter("prio_ingest_credit_retunes_total",
			"dynamic-credit window retunes pushed to clients"),
	}
	wire := func(v *uint64, fc func(*transport.Stats) *uint64) func() uint64 {
		return func() uint64 {
			total := atomic.LoadUint64(v)
			s.mu.Lock()
			for _, st := range s.streams {
				total += atomic.LoadUint64(fc(st.fc.Stats()))
			}
			s.mu.Unlock()
			return total
		}
	}
	reg.CounterFunc("prio_ingest_wire_frames_in_total",
		"frames received on ingest streams, live and closed",
		wire(&m.closedWire.MsgsRecv, func(st *transport.Stats) *uint64 { return &st.MsgsRecv }))
	reg.CounterFunc("prio_ingest_wire_frames_out_total",
		"frames sent on ingest streams, live and closed",
		wire(&m.closedWire.MsgsSent, func(st *transport.Stats) *uint64 { return &st.MsgsSent }))
	reg.CounterFunc("prio_ingest_wire_bytes_in_total",
		"framed bytes received on ingest streams, live and closed",
		wire(&m.closedWire.BytesRecv, func(st *transport.Stats) *uint64 { return &st.BytesRecv }))
	reg.CounterFunc("prio_ingest_wire_bytes_out_total",
		"framed bytes sent on ingest streams, live and closed",
		wire(&m.closedWire.BytesSent, func(st *transport.Stats) *uint64 { return &st.BytesSent }))
	reg.GaugeFunc("prio_ingest_intake_depth",
		"submissions parked in the intake queue",
		func() float64 { return float64(len(s.intake)) })
	reg.GaugeFunc("prio_ingest_streams_active",
		"ingest streams currently open",
		func() float64 {
			s.mu.Lock()
			n := len(s.streams)
			s.mu.Unlock()
			return float64(n)
		})
	reg.GaugeFunc("prio_ingest_busy_streams",
		"streams the last dynamic-credit tick saw submitting",
		func() float64 { return float64(atomic.LoadInt64(&m.busyStreams)) })
	reg.GaugeFunc("prio_ingest_credit_target",
		"mean per-stream window target across open streams",
		func() float64 {
			s.mu.Lock()
			total, n := 0, 0
			for _, st := range s.streams {
				st.cmu.Lock()
				total += st.target
				st.cmu.Unlock()
				n++
			}
			s.mu.Unlock()
			if n == 0 {
				return 0
			}
			return float64(total) / float64(n)
		})
	return m
}

// setBusyStreams records the busy-stream count from the latest tune tick.
func (m *ingestMetrics) setBusyStreams(n int) {
	atomic.StoreInt64(&m.busyStreams, int64(n))
}

// countAck records one decision in the registry counters.
func (m *ingestMetrics) countAck(status AckStatus) {
	switch status {
	case StatusAccepted:
		m.accepted.Inc()
	case StatusRejected:
		m.rejected.Inc()
	case StatusShed:
		m.shed.Inc()
	case StatusFailed:
		m.failed.Inc()
	}
}

// foldWire accumulates a closing stream's FrameConn counters into the
// process totals.
func (m *ingestMetrics) foldWire(st transport.Stats) {
	atomic.AddUint64(&m.closedWire.MsgsRecv, st.MsgsRecv)
	atomic.AddUint64(&m.closedWire.MsgsSent, st.MsgsSent)
	atomic.AddUint64(&m.closedWire.BytesRecv, st.BytesRecv)
	atomic.AddUint64(&m.closedWire.BytesSent, st.BytesSent)
}
