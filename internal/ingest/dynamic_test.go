package ingest

import (
	"testing"
	"time"
)

// waitCredits polls a submitter's window until cond holds or the deadline
// passes, returning the last observed window either way.
func waitCredits(s *StreamSubmitter, cond func(int) bool) int {
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := s.Credits()
		if cond(n) || time.Now().After(deadline) {
			return n
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDynamicCreditsTuning drives one busy and one idle stream against a
// dynamic-credit server and checks the asymmetry the tuner exists for: the
// busy stream's window grows toward the intake queue's free space (clamped
// to MaxCredits) while the idle stream decays to MinCredits — and once the
// busy stream quiesces, it decays to the floor too. Every submission must
// still be decided accepted: growing and shrinking windows shed nothing.
func TestDynamicCreditsTuning(t *testing.T) {
	gate := make(chan struct{})
	sink := &fakeSink{gate: gate}
	cfg := Config{
		Credits:        8,
		MinCredits:     4,
		MaxCredits:     64,
		QueueDepth:     256,
		DynamicCredits: true,
		TuneInterval:   10 * time.Millisecond,
	}
	_, addr, stop := serveIngest(t, sink, cfg)
	defer stop()

	busy, err := Dial(addr, SubmitterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer busy.Close()
	idle, err := Dial(addr, SubmitterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()

	if got := busy.Credits(); got != cfg.Credits {
		t.Fatalf("initial window = %d, want the static grant %d", got, cfg.Credits)
	}

	// Park the hello grant's worth of submissions in flight: the gated sink
	// never decides, so the stream stays busy across tune ticks.
	const parked = 8
	for i := 0; i < parked; i++ {
		if _, err := busy.Submit(testSub(byte(i))); err != nil {
			t.Fatal(err)
		}
	}

	if got := waitCredits(busy, func(n int) bool { return n == cfg.MaxCredits }); got != cfg.MaxCredits {
		t.Errorf("busy stream window = %d, want grown to MaxCredits %d", got, cfg.MaxCredits)
	}
	if got := waitCredits(idle, func(n int) bool { return n == cfg.MinCredits }); got != cfg.MinCredits {
		t.Errorf("idle stream window = %d, want decayed to MinCredits %d", got, cfg.MinCredits)
	}

	// Release the sink; once the acks drain, the busy stream has neither
	// in-flight submissions nor fresh receives, so it decays to the floor.
	close(gate)
	if err := busy.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := waitCredits(busy, func(n int) bool { return n == cfg.MinCredits }); got != cfg.MinCredits {
		t.Errorf("quiesced stream window = %d, want decayed to MinCredits %d", got, cfg.MinCredits)
	}

	st := busy.Stats()
	if st.Accepted != parked || st.Shed != 0 || st.Rejected != 0 || st.Failed != 0 {
		t.Errorf("busy stream stats = %+v, want %d accepted and no losses", st, parked)
	}
}

// TestDynamicCreditsGrowUnblocksSubmit proves a grow retune takes effect
// mid-flight: a submitter blocked on an exhausted static window proceeds as
// soon as the tuner widens it, without waiting for any ack.
func TestDynamicCreditsGrowUnblocksSubmit(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	sink := &fakeSink{gate: gate}
	cfg := Config{
		Credits:        4,
		MinCredits:     4,
		MaxCredits:     32,
		QueueDepth:     128,
		DynamicCredits: true,
		TuneInterval:   10 * time.Millisecond,
	}
	_, addr, stop := serveIngest(t, sink, cfg)
	defer stop()

	sub, err := Dial(addr, SubmitterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// Exhaust the hello window, then submit one more: with no acks coming
	// (gated sink) only a grow retune can admit it.
	done := make(chan error, 1)
	go func() {
		for i := 0; i < cfg.Credits+1; i++ {
			if _, err := sub.Submit(testSub(byte(i))); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("submit beyond the static window never unblocked; grow retune not applied")
	}
}

// TestDynamicCreditsOffKeepsStaticWindow pins the escape hatch: without
// DynamicCredits the window never moves, no matter how busy the stream is.
func TestDynamicCreditsOffKeepsStaticWindow(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	sink := &fakeSink{gate: gate}
	_, addr, stop := serveIngest(t, sink, Config{Credits: 8, QueueDepth: 256})
	defer stop()

	sub, err := Dial(addr, SubmitterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	for i := 0; i < 8; i++ {
		if _, err := sub.Submit(testSub(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(100 * time.Millisecond)
	if got := sub.Credits(); got != 8 {
		t.Fatalf("static-mode window = %d, want 8 forever", got)
	}
}
