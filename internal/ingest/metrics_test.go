package ingest

import (
	"strings"
	"sync/atomic"
	"testing"

	"prio/internal/core"
	"prio/internal/telemetry"
)

// skipIfNoTelemetry skips tests that assert Server.Stats or registry
// values when the notelemetry build tag has compiled the counters out
// (Stats then reads zeros by design).
func skipIfNoTelemetry(t *testing.T) {
	t.Helper()
	if !telemetry.Enabled {
		t.Skip("telemetry compiled out (-tags notelemetry): counters read zero")
	}
}

// TestMetricsAddUp drives a mixed workload — accepts, rejects, sheds —
// through a real stream and checks the telemetry ledger balances: every
// decoded submission is accounted for by exactly one outcome counter, the
// Stats view agrees with the registry, the latency histograms saw every
// decision, and the Prometheus exposition carries the same numbers an
// operator's scrape would alert on.
func TestMetricsAddUp(t *testing.T) {
	skipIfNoTelemetry(t)
	reg := telemetry.New()
	tracer := telemetry.NewTracer(2, 64)
	sink := &fakeSink{decide: func(sub *core.Submission) core.SubmitResult {
		return core.SubmitResult{Accepted: sub.Bundles[0][0]%4 != 0}
	}}
	ing, addr, stop := serveIngest(t, sink, Config{
		Credits: 8, QueueDepth: 16, Registry: reg, Tracer: tracer,
	})
	defer stop()

	sub, err := Dial(addr, SubmitterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	const total = 200
	for i := 0; i < total; i++ {
		if i == total/2 {
			// Saturate the fast path mid-run so the intake queue (and its
			// wait histogram) sees traffic too.
			atomic.StoreInt32(&sink.full, 1)
		}
		if i == total*3/4 {
			atomic.StoreInt32(&sink.full, 0)
		}
		if _, err := sub.Submit(testSub(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := sub.Wait(); err != nil {
		t.Fatal(err)
	}

	st := ing.Stats()
	if st.Received != total {
		t.Fatalf("received %d, want %d", st.Received, total)
	}
	if got := st.Accepted + st.Rejected + st.Shed + st.Failed; got != st.Received {
		t.Fatalf("outcomes %d (accepted=%d rejected=%d shed=%d failed=%d) != received %d",
			got, st.Accepted, st.Rejected, st.Shed, st.Failed, st.Received)
	}
	if st.Accepted == 0 || st.Rejected == 0 {
		t.Fatalf("workload should both accept and reject: %+v", st)
	}
	if st.Streams != 1 {
		t.Fatalf("streams = %d, want 1", st.Streams)
	}

	// The client's view must agree with the server's ledger.
	cst := sub.Stats()
	if cst.Accepted != st.Accepted || cst.Rejected != st.Rejected ||
		cst.Shed != st.Shed || cst.Failed != st.Failed {
		t.Fatalf("client stats %+v disagree with server %+v", cst, st)
	}

	// Stats is a view over the registry: the exported series must carry the
	// same values.
	snap := reg.Snapshot()
	for name, want := range map[string]uint64{
		"prio_ingest_received_total": st.Received,
		"prio_ingest_accepted_total": st.Accepted,
		"prio_ingest_rejected_total": st.Rejected,
		"prio_ingest_shed_total":     st.Shed,
		"prio_ingest_failed_total":   st.Failed,
		"prio_ingest_streams_total":  st.Streams,
	} {
		if got := snap[name]; got != want {
			t.Errorf("registry %s = %v, want %d", name, got, want)
		}
	}

	// Every decision landed in the decision histogram; every decoded frame
	// in the frame histogram.
	dec := snap["prio_ingest_decision_seconds"].(map[string]any)
	if got := dec["count"].(uint64); got != total {
		t.Errorf("decision histogram count = %d, want %d", got, total)
	}
	frame := snap["prio_ingest_frame_seconds"].(map[string]any)
	if got := frame["count"].(uint64); got != total {
		t.Errorf("frame histogram count = %d, want %d", got, total)
	}
	if st.Shed > 0 {
		wait := snap["prio_ingest_intake_wait_seconds"].(map[string]any)
		if wait["count"].(uint64) == 0 {
			t.Errorf("saturated run should have exercised the intake queue")
		}
	}

	// The Prometheus exposition agrees with the snapshot.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"prio_ingest_received_total 200",
		"prio_ingest_decision_seconds_count 200",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// The tracer sampled 1-in-2 lifecycles; its ring holds finished traces
	// with at least the recv stage and a real outcome.
	traces := tracer.Snapshot()
	if len(traces) == 0 {
		t.Fatal("tracer captured nothing")
	}
	for _, tr := range traces {
		if tr.Outcome == "" || len(tr.Spans) == 0 {
			t.Errorf("trace %d: outcome=%q spans=%d", tr.ID, tr.Outcome, len(tr.Spans))
		}
		if tr.Spans[0].Stage != "ingest.recv" {
			t.Errorf("trace %d: first span %q, want ingest.recv", tr.ID, tr.Spans[0].Stage)
		}
	}
}
