package ingest

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"prio/internal/core"
	"prio/internal/telemetry"
	"prio/internal/transport"
)

// Sink is where decoded submissions go: the verification pipeline, or a
// stand-in for tests. core.Pipeline implements it.
type Sink interface {
	// SubmitFunc enqueues one submission, blocking while the sink is
	// saturated, and invokes fn with the decision once it is made.
	SubmitFunc(sub *core.Submission, fn func(core.SubmitResult)) error
	// TrySubmitFunc is the non-blocking SubmitFunc: false means the sink's
	// queue was full and fn will never run.
	TrySubmitFunc(sub *core.Submission, fn func(core.SubmitResult)) (bool, error)
}

// Defaults for Config's zero values.
const (
	DefaultCredits      = 64
	DefaultQueueDepth   = 1024
	DefaultMinCredits   = 16
	DefaultTuneInterval = 100 * time.Millisecond
)

// Config tunes the server side of the ingest subsystem.
type Config struct {
	// Credits is the per-stream window: how many submissions one stream may
	// have un-acked. A compliant client stalls at this bound, so the
	// server's per-stream memory exposure is fixed (default 64).
	Credits int
	// QueueDepth bounds the intake queue buffering submissions the pipeline
	// could not take immediately. Arrivals beyond it are shed. Keep it at
	// least Credits, or a single fast stream can be shed under a slow
	// pipeline (default 1024).
	QueueDepth int
	// Registry receives the ingest metric families. Nil means a private
	// registry — counters still work and Stats still reads them, but nothing
	// is exported. prio-server passes telemetry.Default so the admin
	// endpoint sees them.
	Registry *telemetry.Registry
	// Tracer, when non-nil, samples submission lifecycles at the ingest
	// edge: sampled submissions carry a Trace through the pipeline and land
	// in the tracer's ring on decision.
	Tracer *telemetry.Tracer
	// Gate, when non-nil, is consulted once per stream open: a non-nil
	// error refuses the stream with an MsgError frame carrying the error
	// text. Cluster followers install their node's LeaderGate here so
	// clients dialing a non-leader get an immediate, descriptive refusal
	// (naming the sitting leader) instead of a silently idle stream.
	Gate func() error
	// DynamicCredits turns on per-stream window tuning: a background tuner
	// divides the intake queue's free space among the streams that are
	// actually submitting, so a few busy streams may grow their windows up
	// to MaxCredits while idle streams decay to MinCredits and keep the
	// aggregate exposure bounded. Off, every stream keeps the static
	// Credits window for its whole life, as before.
	DynamicCredits bool
	// MinCredits floors a tuned window (default 16): even an idle stream
	// can burst this far before its first retune.
	MinCredits int
	// MaxCredits caps a tuned window (default 8×Credits): one monopolist
	// stream cannot grow past it no matter how empty the queue is.
	MaxCredits int
	// TuneInterval is the retune cadence (default 100ms).
	TuneInterval time.Duration
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.Credits <= 0 {
		c.Credits = DefaultCredits
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.MinCredits <= 0 {
		c.MinCredits = DefaultMinCredits
	}
	if c.MinCredits > c.Credits {
		c.MinCredits = c.Credits
	}
	if c.MaxCredits < c.Credits {
		c.MaxCredits = 8 * c.Credits
	}
	if c.TuneInterval <= 0 {
		c.TuneInterval = DefaultTuneInterval
	}
	return c
}

// intakeItem is one submission parked in the intake queue because the
// pipeline was momentarily full.
type intakeItem struct {
	st  *stream
	id  uint64
	sub *core.Submission
	rcv time.Time // frame decode time (zero when telemetry is compiled out)
	enq time.Time // intake enqueue time, for the queue-wait histogram
}

// Server terminates ingest streams: it decodes pipelined submission frames,
// routes them into the Sink with credit-based backpressure, and acks each
// decision back on the stream that submitted it. Register Handler with a
// transport server's OnStream.
type Server struct {
	sink Sink
	cfg  Config

	intake chan intakeItem
	quit   chan struct{}
	wg     sync.WaitGroup

	m      *ingestMetrics
	tracer *telemetry.Tracer

	mu       sync.Mutex
	streams  map[uint64]*stream
	streamWG sync.WaitGroup // active handleStream readers
	nextID   uint64
	closed   bool
}

// NewServer builds an ingest server feeding sink and starts its intake pump.
func NewServer(sink Sink, cfg Config) *Server {
	s := &Server{
		sink:    sink,
		cfg:     cfg.withDefaults(),
		quit:    make(chan struct{}),
		streams: make(map[uint64]*stream),
		tracer:  cfg.Tracer,
	}
	s.intake = make(chan intakeItem, s.cfg.QueueDepth)
	reg := s.cfg.Registry
	if reg == nil {
		reg = telemetry.New()
	}
	s.m = newIngestMetrics(reg, s)
	s.wg.Add(1)
	go s.pump()
	if s.cfg.DynamicCredits {
		s.wg.Add(1)
		go s.tune()
	}
	return s
}

// Handler returns the transport.StreamHandler terminating ingest streams.
func (s *Server) Handler() transport.StreamHandler {
	return s.handleStream
}

// Stats returns the aggregate counters across all streams, past and
// present. It is a view over the telemetry registry: the counters it reads
// are the same series the admin endpoint exports. (Under the notelemetry
// build tag the counters are compiled out and this reads zeros.)
func (s *Server) Stats() Stats {
	return Stats{
		Streams:  s.m.streams.Value(),
		Received: s.m.received.Value(),
		Accepted: s.m.accepted.Value(),
		Rejected: s.m.rejected.Value(),
		Shed:     s.m.shed.Value(),
		Failed:   s.m.failed.Value(),
	}
}

// StreamSnapshot pairs an active stream's ID with its counters.
type StreamSnapshot struct {
	ID    uint64
	Stats Stats
}

// StreamStats snapshots every active stream's counters.
func (s *Server) StreamStats() []StreamSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]StreamSnapshot, 0, len(s.streams))
	for _, st := range s.streams {
		out = append(out, StreamSnapshot{ID: st.id, Stats: st.stats.Snapshot()})
	}
	return out
}

// Close refuses new streams, drops the active ones, and stops the intake
// pump. Ordering matters: the stream readers are gone before the pump, so
// no submission can be parked in the intake queue after its final drain —
// every received submission is either acked or died with its stream.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, st := range s.streams {
		st.kill()
	}
	s.mu.Unlock()
	s.streamWG.Wait()
	close(s.quit)
	s.wg.Wait()
}

// pump drains the intake queue into the sink's blocking path. Items land in
// intake only when the pipeline's own queue was full, so the pump spends its
// time blocked in SubmitFunc — exactly the backpressure point — while the
// per-stream readers stay responsive for acks and sheds.
func (s *Server) pump() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			for {
				select {
				case it := <-s.intake:
					it.sub.Trace.Finish("failed")
					it.st.decide(it.id, StatusFailed, it.rcv)
				default:
					return
				}
			}
		case it := <-s.intake:
			if telemetry.Enabled && !it.enq.IsZero() {
				s.m.intakeDur.Observe(time.Since(it.enq))
			}
			if err := s.sink.SubmitFunc(it.sub, func(r core.SubmitResult) {
				status := statusOf(r)
				it.sub.Trace.Finish(status.String())
				it.st.decide(it.id, status, it.rcv)
			}); err != nil {
				it.sub.Trace.Finish("failed")
				it.st.decide(it.id, StatusFailed, it.rcv)
			}
		}
	}
}

// stream is the server side of one ingest connection.
//
// The credit state follows the HTTP/2 flow-control shape rather than a bare
// counter so the window can move while submissions are in flight: target is
// what the tuner wants, window is what is enforced right now, and inflight
// is the charge against it. A grow raises window immediately; a shrink only
// lowers target, and window decays one slot per ack (see finish) — so a
// submission sent legally under the old window is never shed retroactively.
type stream struct {
	id  uint64
	srv *Server
	fc  *transport.FrameConn

	cmu      sync.Mutex
	target   int
	window   int
	inflight int
	lastRecv uint64 // Received at the previous tune tick (tuner-only)

	acks  chan ackEntry
	dead  chan struct{}
	once  sync.Once
	stats Stats
}

// kill marks the stream dead and closes its connection, releasing anything
// blocked on either (the reader in ReadFrame, the ack writer in Flush).
// Decisions arriving from the pipeline afterwards are dropped; the client
// is gone.
func (st *stream) kill() {
	st.once.Do(func() {
		close(st.dead)
		st.fc.Close()
	})
}

// finish records one decision and queues its ack. It runs on pipeline shard
// goroutines (whose contract is that it must NEVER block) and on the stream
// reader. The ack channel outgrows the credit window, so a compliant client
// cannot fill it: an overflow means the client overran its credits while
// not draining acks (or stopped reading entirely, wedging the ack writer
// against a full socket). Such a stream is dropped rather than allowed to
// stall a verification shard.
func (st *stream) finish(id uint64, status AckStatus) {
	st.stats.countAck(status)
	st.srv.m.countAck(status)
	st.cmu.Lock()
	if st.inflight > 0 {
		st.inflight--
	}
	if st.window > st.target {
		st.window-- // retire one slot of a pending shrink
	}
	st.cmu.Unlock()
	select {
	case st.acks <- ackEntry{id: id, status: status}:
	case <-st.dead:
	default:
		st.kill()
	}
}

// decide is finish plus the decision-latency observation: rcv is the
// submit frame's decode time, zero when telemetry is compiled out.
func (st *stream) decide(id uint64, status AckStatus, rcv time.Time) {
	if telemetry.Enabled && !rcv.IsZero() {
		st.srv.m.decision.Observe(time.Since(rcv))
	}
	st.finish(id, status)
}

// handleStream runs the per-connection protocol: hello, then a read loop
// feeding the sink, with a parallel ack writer batching decisions back.
func (s *Server) handleStream(open []byte, fc *transport.FrameConn) {
	if string(open) != magic {
		fc.WriteFrame(transport.MsgError, []byte(fmt.Sprintf("ingest: unknown subprotocol %q", open)))
		fc.Flush()
		return
	}
	if s.cfg.Gate != nil {
		if err := s.cfg.Gate(); err != nil {
			fc.WriteFrame(transport.MsgError, []byte(err.Error()))
			fc.Flush()
			return
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		fc.WriteFrame(transport.MsgError, []byte("ingest: server is shut down"))
		fc.Flush()
		return
	}
	s.nextID++
	st := &stream{
		id:     s.nextID,
		srv:    s,
		fc:     fc,
		target: s.cfg.Credits,
		window: s.cfg.Credits,
		acks:   make(chan ackEntry, s.cfg.MaxCredits+16),
		dead:   make(chan struct{}),
	}
	s.streams[st.id] = st
	s.streamWG.Add(1)
	s.mu.Unlock()
	s.m.streams.Inc()

	defer func() {
		st.kill()
		s.mu.Lock()
		delete(s.streams, st.id)
		// Fold the dead connection's wire counters into the process totals
		// under the same critical section that removes it from the live set,
		// so the wire CounterFuncs never count it twice (they sum live
		// streams under this mutex).
		s.m.foldWire(fc.Stats().Snapshot())
		s.mu.Unlock()
		s.streamWG.Done()
	}()

	hello := binary.LittleEndian.AppendUint32(nil, uint32(s.cfg.Credits))
	if err := fc.WriteFrame(msgHello, hello); err != nil {
		return
	}
	if err := fc.Flush(); err != nil {
		return
	}
	go st.ackLoop(fc)

	for {
		msgType, payload, err := fc.ReadFrame()
		if err != nil {
			return // client closed (or conn died): teardown
		}
		if msgType != msgSubmit {
			fc.WriteFrame(transport.MsgError, []byte(fmt.Sprintf("ingest: unexpected frame type %#x", msgType)))
			fc.Flush()
			return
		}
		rcv := telemetry.Start()
		id, sub, err := decodeSubmit(payload)
		if err != nil {
			fc.WriteFrame(transport.MsgError, []byte(err.Error()))
			fc.Flush()
			return
		}
		atomic.AddUint64(&st.stats.Received, 1)
		s.m.received.Inc()
		if tr := s.tracer.Sample(); tr != nil {
			tr.Stage("ingest.recv")
			sub.Trace = tr
		}
		st.route(id, sub, rcv)
		if telemetry.Enabled {
			s.m.frameDur.Since(rcv)
		}
	}
}

// route spends one credit and hands the submission to the sink: straight
// through when the pipeline has room, parked in the bounded intake queue
// when it is momentarily full, shed when that is full too. rcv is the
// submit frame's decode time for the latency histograms.
func (st *stream) route(id uint64, sub *core.Submission, rcv time.Time) {
	s := st.srv
	// Spend one window slot. A submission past the granted window is shed
	// unverified; its ack (like every ack) hands the slot back, so a
	// client that raced a little ahead recovers instead of wedging.
	st.cmu.Lock()
	st.inflight++
	over := st.inflight > st.window
	st.cmu.Unlock()
	if over {
		sub.Trace.Finish("shed")
		st.decide(id, StatusShed, rcv)
		return
	}
	ok, err := s.sink.TrySubmitFunc(sub, func(r core.SubmitResult) {
		status := statusOf(r)
		// Backstop: the verification pipeline finishes the trace with stage
		// detail before delivering the decision (Finish is first-wins), so
		// this only seals traces a simpler sink left open.
		sub.Trace.Finish(status.String())
		st.decide(id, status, rcv)
	})
	if err != nil {
		sub.Trace.Finish("failed")
		st.decide(id, StatusFailed, rcv)
		return
	}
	if ok {
		return
	}
	sub.Trace.Stage("ingest.intake")
	select {
	case s.intake <- intakeItem{st: st, id: id, sub: sub, rcv: rcv, enq: telemetry.Start()}:
	default:
		sub.Trace.Finish("shed")
		st.decide(id, StatusShed, rcv)
	}
}

// tune is the dynamic-credit loop: every TuneInterval it divides the intake
// queue's free space among the streams that submitted since the last tick
// (or still have submissions in flight), clamps the share to
// [MinCredits, MaxCredits], and decays idle streams to MinCredits. Retunes
// within 12.5% of the current target are suppressed so a steady load does
// not generate a msgCredit drizzle. The intent is the asymmetric fairness
// the intake queue wants: a handful of busy streams may take the whole
// queue between them, while thousands of idle streams keep only the floor
// exposure.
func (s *Server) tune() {
	defer s.wg.Done()
	tick := time.NewTicker(s.cfg.TuneInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-tick.C:
		}
		s.mu.Lock()
		streams := make([]*stream, 0, len(s.streams))
		for _, st := range s.streams {
			streams = append(streams, st)
		}
		s.mu.Unlock()
		if len(streams) == 0 {
			s.m.setBusyStreams(0)
			continue
		}
		busy := make([]bool, len(streams))
		nbusy := 0
		for i, st := range streams {
			recv := atomic.LoadUint64(&st.stats.Received)
			st.cmu.Lock()
			active := st.inflight > 0 || recv != st.lastRecv
			st.lastRecv = recv
			st.cmu.Unlock()
			if active {
				busy[i] = true
				nbusy++
			}
		}
		s.m.setBusyStreams(nbusy)
		free := s.cfg.QueueDepth - len(s.intake)
		share := s.cfg.MinCredits
		if nbusy > 0 {
			share = free / nbusy
		}
		share = min(max(share, s.cfg.MinCredits), s.cfg.MaxCredits)
		for i, st := range streams {
			want := s.cfg.MinCredits
			if busy[i] {
				want = share
			}
			st.retune(want)
		}
	}
}

// retune moves one stream's window target to want, unless the change is
// within the hysteresis band. Grows take effect immediately; shrinks drain
// via finish. The client is informed with a msgCredit frame; a write error
// is ignored here because the stream's reader owns failure handling.
func (st *stream) retune(want int) {
	st.cmu.Lock()
	cur := st.target
	if 8*abs(want-cur) <= cur {
		st.cmu.Unlock()
		return
	}
	st.target = want
	if want > st.window {
		st.window = want
	}
	st.cmu.Unlock()
	st.srv.m.retunes.Inc()
	var msg [4]byte
	binary.LittleEndian.PutUint32(msg[:], uint32(want))
	if st.fc.WriteFrame(msgCredit, msg[:]) == nil {
		st.fc.Flush()
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// ackLoop batches decided submissions into ack frames. One frame per wakeup
// amortizes framing and flushes across every decision ready at that moment.
func (st *stream) ackLoop(fc *transport.FrameConn) {
	defer st.kill() // a dead writer must also release the reader
	batch := make([]ackEntry, 0, 64)
	for {
		select {
		case a := <-st.acks:
			batch = append(batch[:0], a)
		drain:
			for len(batch) < cap(batch) {
				select {
				case a := <-st.acks:
					batch = append(batch, a)
				default:
					break drain
				}
			}
			if err := writeAcks(fc, batch); err != nil {
				return
			}
		case <-st.dead:
			return
		}
	}
}
