package ingest

import (
	"crypto/tls"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"prio/internal/core"
	"prio/internal/transport"
)

// ErrSubmitterClosed reports use of a StreamSubmitter after Close.
var ErrSubmitterClosed = errors.New("ingest: submitter closed")

// Ack is one asynchronous per-submission decision, matched to its Submit
// call by ID.
type Ack struct {
	// ID is the value the matching Submit returned.
	ID uint64
	// Status is the server's decision.
	Status AckStatus
	// Latency spans Submit's call (including any wait for a credit) to the
	// ack's arrival.
	Latency time.Duration
}

// SubmitterConfig tunes a StreamSubmitter.
type SubmitterConfig struct {
	// TLS upgrades the connection when non-nil.
	TLS *tls.Config
	// OnAck, when set, observes every decision. It runs on the submitter's
	// read goroutine: a blocking callback stalls ack intake and therefore
	// credit replenishment.
	OnAck func(Ack)
}

// SubmitterStats counts a submitter's work. Read with Snapshot.
type SubmitterStats struct {
	Submitted uint64
	Accepted  uint64
	Rejected  uint64
	Shed      uint64
	Failed    uint64
}

// StreamSubmitter is the client side of the ingest subsystem: it holds one
// persistent (typically TLS) connection to the leader, pipelines many framed
// submissions in flight, and consumes asynchronous per-submission acks. The
// server's credit grant bounds how far it may run ahead; Submit blocks once
// the window is full, so overload turns into queuing here, at the client.
//
// Submit may be called from many goroutines; acks resolve in server order,
// not submission order.
type StreamSubmitter struct {
	fc    *transport.FrameConn
	onAck func(Ack)

	writeq chan *transport.Buf // framed submit payloads awaiting the writer

	dead chan struct{} // closed on first failure or Close

	mu          sync.Mutex
	cond        *sync.Cond // signaled when the window opens, outstanding hits zero, or the stream dies
	pending     map[uint64]time.Time
	nextID      uint64
	outstanding int
	limit       int // the server's current window grant (msgCredit retunes it)
	err         error

	stats SubmitterStats
}

// Dial opens a streaming ingest session with the leader at addr.
func Dial(addr string, cfg SubmitterConfig) (*StreamSubmitter, error) {
	fc, err := transport.DialStream(addr, cfg.TLS)
	if err != nil {
		return nil, err
	}
	if err := fc.WriteFrame(transport.MsgStreamOpen, []byte(magic)); err != nil {
		fc.Close()
		return nil, err
	}
	if err := fc.Flush(); err != nil {
		fc.Close()
		return nil, err
	}
	msgType, payload, err := fc.ReadFrame()
	if err != nil {
		fc.Close()
		return nil, err
	}
	if msgType == transport.MsgError {
		fc.Close()
		return nil, fmt.Errorf("ingest: server refused stream: %s", payload)
	}
	if msgType != msgHello || len(payload) != 4 {
		fc.Close()
		return nil, errProto
	}
	credits := int(binary.LittleEndian.Uint32(payload))
	if credits < 1 || credits > 1<<20 {
		fc.Close()
		return nil, fmt.Errorf("ingest: implausible credit grant %d", credits)
	}

	s := &StreamSubmitter{
		fc: fc,
		onAck: cfg.OnAck,
		// The queue outgrows the initial window so a dynamic-credit grow
		// (msgCredit) widens the pipeline without the writer queue becoming
		// the new bottleneck.
		writeq:  make(chan *transport.Buf, max(2*credits, 256)),
		dead:    make(chan struct{}),
		pending: make(map[uint64]time.Time),
		limit:   credits,
	}
	s.cond = sync.NewCond(&s.mu)
	go s.readLoop()
	go s.writeLoop()
	return s, nil
}

// Credits returns the server's current window grant for this stream. Under
// dynamic credits it moves with the server's msgCredit retunes.
func (s *StreamSubmitter) Credits() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.limit
}

// Submit queues one submission on the stream and returns its ID, blocking
// while the credit window is exhausted (the server is behind — queue here
// rather than on its floor). The decision arrives asynchronously via OnAck;
// Wait blocks until every outstanding submission is decided.
func (s *StreamSubmitter) Submit(sub *core.Submission) (uint64, error) {
	start := time.Now() // window wait is part of the measured latency
	s.mu.Lock()
	for s.err == nil && s.outstanding >= s.limit {
		s.cond.Wait()
	}
	if s.err != nil {
		s.mu.Unlock()
		return 0, s.Err()
	}
	s.nextID++
	id := s.nextID
	s.pending[id] = start
	s.outstanding++
	s.mu.Unlock()
	atomic.AddUint64(&s.stats.Submitted, 1)
	select {
	case s.writeq <- encodeSubmit(id, sub):
		return id, nil
	case <-s.dead:
		s.mu.Lock()
		delete(s.pending, id)
		s.outstanding--
		s.mu.Unlock()
		return 0, s.Err()
	}
}

// Outstanding reports how many submissions await their ack.
func (s *StreamSubmitter) Outstanding() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.outstanding
}

// Stats snapshots the submitter's counters.
func (s *StreamSubmitter) Stats() SubmitterStats {
	return SubmitterStats{
		Submitted: atomic.LoadUint64(&s.stats.Submitted),
		Accepted:  atomic.LoadUint64(&s.stats.Accepted),
		Rejected:  atomic.LoadUint64(&s.stats.Rejected),
		Shed:      atomic.LoadUint64(&s.stats.Shed),
		Failed:    atomic.LoadUint64(&s.stats.Failed),
	}
}

// Done returns a channel that is closed when the stream dies — transport
// failure, server error frame, or Close. After it fires, Err reports why and
// any still-outstanding submissions will never be acked; a failover layer
// uses this as its re-dial trigger.
func (s *StreamSubmitter) Done() <-chan struct{} { return s.dead }

// Err returns the error that killed the stream, if any.
func (s *StreamSubmitter) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return ErrSubmitterClosed
}

// Wait blocks until every outstanding submission has been acked, returning
// the stream error if it died first.
func (s *StreamSubmitter) Wait() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.outstanding > 0 && s.err == nil {
		s.cond.Wait()
	}
	return s.err
}

// Close tears the stream down. In-flight submissions whose acks have not
// arrived are abandoned; call Wait first for a graceful drain.
func (s *StreamSubmitter) Close() error {
	s.fail(ErrSubmitterClosed)
	return nil
}

// fail records the first error, wakes every blocked caller, and closes the
// connection.
func (s *StreamSubmitter) fail(err error) {
	s.mu.Lock()
	already := s.err != nil
	if !already {
		s.err = err
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	if already {
		return
	}
	close(s.dead)
	s.fc.Close()
}

// writeLoop drains queued submit frames onto the wire, flushing whenever the
// queue momentarily empties — the batching that turns many small Submits
// into few syscalls without adding latency under light load.
func (s *StreamSubmitter) writeLoop() {
	// Each payload lives in a pooled buffer; WriteFrame copies it into the
	// connection's write buffer, after which it goes back to the arena.
	for {
		select {
		case payload := <-s.writeq:
			err := s.fc.WriteFrame(msgSubmit, payload.B)
			payload.Free()
			if err != nil {
				s.fail(err)
				return
			}
		drain:
			for {
				select {
				case payload := <-s.writeq:
					err := s.fc.WriteFrame(msgSubmit, payload.B)
					payload.Free()
					if err != nil {
						s.fail(err)
						return
					}
				default:
					break drain
				}
			}
			if err := s.fc.Flush(); err != nil {
				s.fail(err)
				return
			}
		case <-s.dead:
			return
		}
	}
}

// readLoop consumes ack frames, matching each decision to its pending
// submission by ID and returning the credit.
func (s *StreamSubmitter) readLoop() {
	for {
		msgType, payload, err := s.fc.ReadFrame()
		if err != nil {
			s.fail(err)
			return
		}
		switch msgType {
		case msgAcks:
			if err := decodeAcks(payload, s.complete); err != nil {
				s.fail(err)
				return
			}
		case msgCredit:
			if len(payload) != 4 {
				s.fail(errProto)
				return
			}
			n := int(binary.LittleEndian.Uint32(payload))
			if n < 1 || n > 1<<20 {
				s.fail(fmt.Errorf("ingest: implausible credit retune %d", n))
				return
			}
			s.mu.Lock()
			s.limit = n
			s.cond.Broadcast() // a grow may unblock window-waiting Submits
			s.mu.Unlock()
		case transport.MsgError:
			s.fail(fmt.Errorf("ingest: server error: %s", payload))
			return
		default:
			s.fail(fmt.Errorf("ingest: unexpected frame type %#x", msgType))
			return
		}
	}
}

// complete resolves one acked submission.
func (s *StreamSubmitter) complete(id uint64, status AckStatus) {
	s.mu.Lock()
	start, ok := s.pending[id]
	if ok {
		delete(s.pending, id)
		s.outstanding--
		// Wake window-blocked Submits (the slot this ack frees) and Wait
		// (when the stream drained).
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	if !ok {
		return // unknown ID: tolerate (e.g. duplicate ack) rather than kill the stream
	}
	switch status {
	case StatusAccepted:
		atomic.AddUint64(&s.stats.Accepted, 1)
	case StatusRejected:
		atomic.AddUint64(&s.stats.Rejected, 1)
	case StatusShed:
		atomic.AddUint64(&s.stats.Shed, 1)
	case StatusFailed:
		atomic.AddUint64(&s.stats.Failed, 1)
	}
	if s.onAck != nil {
		s.onAck(Ack{ID: id, Status: status, Latency: time.Since(start)})
	}
}
