package ingest

import (
	"encoding/binary"
	"errors"

	"prio/internal/core"
	"prio/internal/transport"
)

// magic names the stream subprotocol in the MsgStreamOpen payload.
const magic = "prio-ingest/1"

// Frame types of the ingest stream, disjoint from core's message space
// (1–9) and below transport's reserved range (0xFD–0xFF).
const (
	msgHello  byte = 0x20 // server → client: u32 credit grant
	msgSubmit byte = 0x21 // client → server: u64 id ‖ Submission.Marshal
	msgAcks   byte = 0x22 // server → client: u32 n, then n × (u64 id ‖ u8 status)
	// msgCredit retunes the stream's window mid-flight (dynamic credits):
	// the client raises its submit limit immediately on a grow and lets a
	// shrink take effect as outstanding submissions drain. The server
	// enforces the shrink the same way — one window slot retired per ack —
	// so a submission sent legally under the old window is never shed for
	// arriving after the retune.
	msgCredit byte = 0x23 // server → client: u32 new window
)

// errProto reports a malformed ingest frame.
var errProto = errors.New("ingest: malformed frame")

// AckStatus is the server's per-submission decision, delivered
// asynchronously and matched to the submission by ID.
type AckStatus uint8

const (
	// StatusRejected: the servers verified the submission and refused it.
	StatusRejected AckStatus = iota
	// StatusAccepted: the submission's shares entered the accumulators.
	StatusAccepted
	// StatusShed: the server dropped the submission unverified — its intake
	// was full, or the stream overran its credit window. Retrying later is
	// safe: a shed submission never reached the accumulators.
	StatusShed
	// StatusFailed: a batch-level verification error lost the submission.
	StatusFailed
)

// String implements fmt.Stringer.
func (st AckStatus) String() string {
	switch st {
	case StatusRejected:
		return "rejected"
	case StatusAccepted:
		return "accepted"
	case StatusShed:
		return "shed"
	case StatusFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// statusOf maps a pipeline decision to its wire status.
func statusOf(r core.SubmitResult) AckStatus {
	switch {
	case r.Err != nil:
		return StatusFailed
	case r.Accepted:
		return StatusAccepted
	default:
		return StatusRejected
	}
}

// ackEntry is one (submission ID, decision) pair awaiting transmission.
type ackEntry struct {
	id     uint64
	status AckStatus
}

// encodeSubmit frames one submission under its stream-local ID into a
// pooled buffer; the write loop returns it to the arena after the frame is
// copied into the connection's write buffer.
func encodeSubmit(id uint64, sub *core.Submission) *transport.Buf {
	size := 8 + 4
	for _, b := range sub.Bundles {
		size += 4 + len(b)
	}
	buf := transport.GetBuf(size)
	buf.B = binary.LittleEndian.AppendUint64(buf.B, id)
	buf.B = sub.AppendBinary(buf.B)
	return buf
}

// decodeSubmit parses a submit frame.
func decodeSubmit(payload []byte) (uint64, *core.Submission, error) {
	if len(payload) < 8 {
		return 0, nil, errProto
	}
	id := binary.LittleEndian.Uint64(payload)
	sub, err := core.UnmarshalSubmission(payload[8:])
	if err != nil {
		return 0, nil, err
	}
	return id, sub, nil
}

// writeAcks sends one ack frame carrying the batch and flushes it.
func writeAcks(fc *transport.FrameConn, acks []ackEntry) error {
	out := make([]byte, 0, 4+9*len(acks))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(acks)))
	for _, a := range acks {
		out = binary.LittleEndian.AppendUint64(out, a.id)
		out = append(out, byte(a.status))
	}
	if err := fc.WriteFrame(msgAcks, out); err != nil {
		return err
	}
	return fc.Flush()
}

// decodeAcks parses an ack frame into the callback.
func decodeAcks(payload []byte, fn func(id uint64, status AckStatus)) error {
	if len(payload) < 4 {
		return errProto
	}
	n := int(binary.LittleEndian.Uint32(payload))
	if n < 0 || len(payload) != 4+9*n {
		return errProto
	}
	off := 4
	for i := 0; i < n; i++ {
		id := binary.LittleEndian.Uint64(payload[off:])
		status := AckStatus(payload[off+8])
		off += 9
		fn(id, status)
	}
	return nil
}
