package ingest

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prio/internal/afe"
	"prio/internal/core"
	"prio/internal/field"
	"prio/internal/sealbox"
	"prio/internal/transport"
)

// fakeSink is a scriptable Sink for protocol-level tests: decide controls
// each submission's outcome, gate (when non-nil) delays decisions until
// released, and full (atomic) makes TrySubmitFunc report a saturated queue.
type fakeSink struct {
	decide func(sub *core.Submission) core.SubmitResult
	gate   chan struct{}
	full   int32

	mu       sync.Mutex
	inflight int
	maxSeen  int
}

func (f *fakeSink) SubmitFunc(sub *core.Submission, fn func(core.SubmitResult)) error {
	f.mu.Lock()
	f.inflight++
	if f.inflight > f.maxSeen {
		f.maxSeen = f.inflight
	}
	f.mu.Unlock()
	go func() {
		if f.gate != nil {
			<-f.gate
		}
		r := core.SubmitResult{Accepted: true}
		if f.decide != nil {
			r = f.decide(sub)
		}
		f.mu.Lock()
		f.inflight--
		f.mu.Unlock()
		fn(r)
	}()
	return nil
}

func (f *fakeSink) TrySubmitFunc(sub *core.Submission, fn func(core.SubmitResult)) (bool, error) {
	if atomic.LoadInt32(&f.full) != 0 {
		return false, nil
	}
	return true, f.SubmitFunc(sub, fn)
}

// serveIngest stands up a TCP endpoint running the ingest stream handler.
func serveIngest(t *testing.T, sink Sink, cfg Config) (*Server, string, func()) {
	t.Helper()
	ing := NewServer(sink, cfg)
	srv, err := transport.Listen("127.0.0.1:0", nil, func(byte, []byte) ([]byte, error) {
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.OnStream(ing.Handler())
	return ing, srv.Addr().String(), func() {
		srv.Close()
		ing.Close()
	}
}

// testSub fabricates a submission whose first bundle byte tags it.
func testSub(tag byte) *core.Submission {
	return &core.Submission{Bundles: [][]byte{{tag, 1, 2, 3}}}
}

// TestAckIDMatching pipelines submissions from several goroutines over one
// stream, with the sink deciding accept/reject from each submission's own
// payload, and checks every ack matches the expectation recorded for its ID.
// Run under -race: it exercises the submitter's shared pending table.
func TestAckIDMatching(t *testing.T) {
	sink := &fakeSink{decide: func(sub *core.Submission) core.SubmitResult {
		return core.SubmitResult{Accepted: sub.Bundles[0][0]%2 == 0}
	}}
	_, addr, stop := serveIngest(t, sink, Config{Credits: 8})
	defer stop()

	var mu sync.Mutex
	want := make(map[uint64]bool) // id → expect accepted
	got := make(map[uint64]AckStatus)
	sub, err := Dial(addr, SubmitterConfig{OnAck: func(a Ack) {
		mu.Lock()
		got[a.ID] = a.Status
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	const workers, per = 4, 32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tag := byte(w*per + i)
				id, err := sub.Submit(testSub(tag))
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				mu.Lock()
				want[id] = tag%2 == 0
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if err := sub.Wait(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != workers*per || len(want) != workers*per {
		t.Fatalf("acked %d of %d submissions", len(got), workers*per)
	}
	for id, accepted := range want {
		wantStatus := StatusRejected
		if accepted {
			wantStatus = StatusAccepted
		}
		if got[id] != wantStatus {
			t.Errorf("id %d: status %v, want %v", id, got[id], wantStatus)
		}
	}
	st := sub.Stats()
	if st.Accepted+st.Rejected != workers*per || st.Shed != 0 || st.Failed != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestBackpressureNoDrops wedges the sink so credits exhaust, keeps
// submitting past the window, and checks that (a) the client was actually
// gated — the server never saw more than the credit window in flight — and
// (b) nothing was shed: backpressure queued the flood at the client.
func TestBackpressureNoDrops(t *testing.T) {
	skipIfNoTelemetry(t)
	const credits, total = 8, 50
	sink := &fakeSink{gate: make(chan struct{})}
	ing, addr, stop := serveIngest(t, sink, Config{Credits: credits, QueueDepth: 64})
	defer stop()

	sub, err := Dial(addr, SubmitterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if sub.Credits() != credits {
		t.Fatalf("granted %d credits, want %d", sub.Credits(), credits)
	}

	done := make(chan error, 1)
	go func() {
		for i := 0; i < total; i++ {
			if _, err := sub.Submit(testSub(byte(i))); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	// With the sink wedged, the submitter must stall at the credit window.
	deadline := time.Now().Add(2 * time.Second)
	for sub.Outstanding() < credits && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := sub.Outstanding(); n != credits {
		t.Fatalf("outstanding = %d, want the full window %d", n, credits)
	}
	select {
	case err := <-done:
		t.Fatalf("submitter finished while gated (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(sink.gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := sub.Wait(); err != nil {
		t.Fatal(err)
	}
	st := sub.Stats()
	if st.Accepted != total || st.Shed != 0 || st.Failed != 0 {
		t.Errorf("client stats = %+v, want %d accepted and no sheds", st, total)
	}
	srvStats := ing.Stats()
	if srvStats.Accepted != total || srvStats.Shed != 0 {
		t.Errorf("server stats = %+v", srvStats)
	}
	sink.mu.Lock()
	maxSeen := sink.maxSeen
	sink.mu.Unlock()
	if maxSeen > credits {
		t.Errorf("sink saw %d submissions in flight, credits allow %d", maxSeen, credits)
	}
}

// TestIntakeQueueAbsorbsFullPipeline forces the non-blocking pipeline path
// to report "full": submissions must detour through the intake queue and
// still be decided, with nothing shed.
func TestIntakeQueueAbsorbsFullPipeline(t *testing.T) {
	skipIfNoTelemetry(t)
	sink := &fakeSink{}
	atomic.StoreInt32(&sink.full, 1) // TrySubmitFunc always refuses
	ing, addr, stop := serveIngest(t, sink, Config{Credits: 8, QueueDepth: 32})
	defer stop()

	sub, err := Dial(addr, SubmitterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	const total = 24
	for i := 0; i < total; i++ {
		if _, err := sub.Submit(testSub(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := sub.Wait(); err != nil {
		t.Fatal(err)
	}
	if st := sub.Stats(); st.Accepted != total || st.Shed != 0 {
		t.Errorf("stats = %+v, want %d accepted via the intake queue", st, total)
	}
	if st := ing.Stats(); st.Accepted != total || st.Shed != 0 {
		t.Errorf("server stats = %+v", st)
	}
}

// TestShedWhenEverythingFull exhausts both the pipeline and the intake
// queue: the overflow must come back as explicit shed acks (returning their
// credits), not silent drops or a wedged stream.
func TestShedWhenEverythingFull(t *testing.T) {
	skipIfNoTelemetry(t)
	sink := &fakeSink{gate: make(chan struct{})}
	atomic.StoreInt32(&sink.full, 1)
	ing, addr, stop := serveIngest(t, sink, Config{Credits: 16, QueueDepth: 4})
	defer stop()

	var shed atomic.Int64
	sub, err := Dial(addr, SubmitterConfig{OnAck: func(a Ack) {
		if a.Status == StatusShed {
			shed.Add(1)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	const total = 16 // within credits, beyond QueueDepth+pump
	for i := 0; i < total; i++ {
		if _, err := sub.Submit(testSub(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Sheds ack immediately; everything else waits on the gate. The pump
	// holds one item, the queue four, so ≥ 11 must shed.
	deadline := time.Now().Add(2 * time.Second)
	for shed.Load() < total-5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := shed.Load(); got < total-5 {
		t.Fatalf("shed %d, want ≥ %d", got, total-5)
	}
	close(sink.gate)
	atomic.StoreInt32(&sink.full, 0)
	if err := sub.Wait(); err != nil {
		t.Fatal(err)
	}
	st := sub.Stats()
	if st.Shed != uint64(shed.Load()) || st.Accepted+st.Shed != total {
		t.Errorf("stats = %+v", st)
	}
	if srvStats := ing.Stats(); srvStats.Shed != st.Shed {
		t.Errorf("server shed %d, client saw %d", srvStats.Shed, st.Shed)
	}
}

// TestTeardownMidFlight kills the server while submissions are in flight:
// blocked and future Submits must fail promptly, Wait must return the
// stream error, and nothing may deadlock (run under -race and -timeout).
func TestTeardownMidFlight(t *testing.T) {
	sink := &fakeSink{gate: make(chan struct{})}
	defer close(sink.gate)
	_, addr, stop := serveIngest(t, sink, Config{Credits: 4})

	sub, err := Dial(addr, SubmitterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	for i := 0; i < 4; i++ {
		if _, err := sub.Submit(testSub(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// One more submitter is now blocked on the exhausted window.
	blocked := make(chan error, 1)
	go func() {
		_, err := sub.Submit(testSub(0xEE))
		blocked <- err
	}()
	select {
	case err := <-blocked:
		t.Fatalf("fifth submit returned early (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}

	stop() // tear the server down mid-flight
	if err := <-blocked; err == nil {
		t.Error("blocked Submit survived teardown")
	}
	if err := sub.Wait(); err == nil {
		t.Error("Wait returned nil after teardown with acks outstanding")
	}
	if _, err := sub.Submit(testSub(0xFF)); err == nil {
		t.Error("Submit on a dead stream succeeded")
	}
}

// TestStreamedPipelineOverCoalescedTCP is the full-stack integration test:
// real servers behind TCP listeners, a leader whose peers ride coalesced TCP
// connections, a sharded verification pipeline, the ingest stream handler on
// the leader's own listener, and a StreamSubmitter pushing pipelined
// submissions — then the aggregate must be exact and every ack accounted.
func TestStreamedPipelineOverCoalescedTCP(t *testing.T) {
	skipIfNoTelemetry(t)
	f := field.NewF64()
	scheme := afe.NewSum(f, 8)
	pro, err := core.NewProtocol(core.Config[field.F64, uint64]{
		Field: f, Scheme: scheme, Servers: 3, Mode: core.ModeSNIP, SnipReps: 1, Seal: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Two follower servers behind real TCP listeners.
	servers := make([]*core.Server[field.F64, uint64], 3)
	peers := make([]transport.Peer, 3)
	for i := 0; i < 3; i++ {
		srv, err := core.NewServer(pro, i, nil)
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
	}
	peers[0] = &transport.LoopbackPeer{Handler: servers[0].Handle}
	for i := 1; i < 3; i++ {
		ln, err := transport.Listen("127.0.0.1:0", nil, servers[i].Handle)
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		p, err := transport.Dial(ln.Addr().String(), nil)
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = transport.NewCoalescer(p)
	}
	leader, err := core.NewLeader(servers[0], peers)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.NewPipeline(leader, core.PipelineConfig{Shards: 4, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Close()

	// The leader's own listener terminates ingest streams.
	ing := NewServer(pl, Config{Credits: 32, QueueDepth: 256})
	defer ing.Close()
	ln, err := transport.Listen("127.0.0.1:0", nil, servers[0].Handle)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ln.OnStream(ing.Handler())

	keys := make([]*sealbox.PublicKey, 3)
	for i, srv := range servers {
		keys[i] = srv.PublicKey()
	}
	client, err := core.NewClient(pro, keys, nil)
	if err != nil {
		t.Fatal(err)
	}

	const total = 120
	var want uint64
	subs := make([]*core.Submission, total)
	for i := range subs {
		v := uint64(i % 200)
		want += v
		enc, err := scheme.Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		subs[i], err = client.BuildSubmission(enc)
		if err != nil {
			t.Fatal(err)
		}
	}

	var acked atomic.Int64
	streamer, err := Dial(ln.Addr().String(), SubmitterConfig{OnAck: func(a Ack) {
		acked.Add(1)
		if a.Status != StatusAccepted {
			t.Errorf("submission %d: %v", a.ID, a.Status)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer streamer.Close()
	for _, sub := range subs {
		if _, err := streamer.Submit(sub); err != nil {
			t.Fatal(err)
		}
	}
	if err := streamer.Wait(); err != nil {
		t.Fatal(err)
	}
	if acked.Load() != total {
		t.Fatalf("acked %d of %d", acked.Load(), total)
	}

	agg, n, err := pl.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	if n != total {
		t.Fatalf("aggregated %d of %d", n, total)
	}
	got, err := scheme.Decode(agg, int(n))
	if err != nil {
		t.Fatal(err)
	}
	if got.Uint64() != want {
		t.Errorf("aggregate = %v, want %d", got, want)
	}
	if st := ing.Stats(); st.Accepted != total || st.Shed != 0 || st.Streams != 1 {
		t.Errorf("ingest stats = %+v", st)
	}
}

// TestNonReadingFloodDoesNotWedge regresses the shard-wedging hazard: a
// client that floods submissions while never reading acks eventually fills
// the server's ack channel (the ack writer is blocked against the client's
// full socket). finish must drop that stream rather than block — blocking
// there would stall a pipeline shard goroutine and take the whole server
// down with one bad connection. Afterwards a compliant stream must work.
func TestNonReadingFloodDoesNotWedge(t *testing.T) {
	skipIfNoTelemetry(t)
	sink := &fakeSink{}
	ing, addr, stop := serveIngest(t, sink, Config{Credits: 8, QueueDepth: 16})
	defer stop()

	fc, err := transport.DialStream(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	if err := fc.WriteFrame(transport.MsgStreamOpen, []byte(magic)); err != nil {
		t.Fatal(err)
	}
	if err := fc.Flush(); err != nil {
		t.Fatal(err)
	}
	if msgType, _, err := fc.ReadFrame(); err != nil || msgType != msgHello {
		t.Fatalf("hello: type %d err %v", msgType, err)
	}
	// Flood without ever reading an ack. Acks pile into the kernel buffers,
	// then into the server's ack channel; once that overflows the server
	// must kill the stream, surfacing here as a write error.
	payload := append([]byte(nil), encodeSubmit(0, testSub(1)).B...)
	killed := false
	for i := 0; i < 2_000_000; i++ {
		binary.LittleEndian.PutUint64(payload, uint64(i+1))
		if err := fc.WriteFrame(msgSubmit, payload); err != nil {
			killed = true
			break
		}
		if i%64 == 0 {
			if err := fc.Flush(); err != nil {
				killed = true
				break
			}
		}
	}
	if !killed {
		t.Fatal("server never dropped a 2M-submission non-reading flood")
	}

	// The server must still serve compliant streams.
	s, err := Dial(addr, SubmitterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 20; i++ {
		if _, err := s.Submit(testSub(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Accepted != 20 {
		t.Fatalf("post-flood stream: %+v", st)
	}
	if st := ing.Stats(); st.Streams != 2 {
		t.Errorf("server saw %d streams, want 2", st.Streams)
	}
}
