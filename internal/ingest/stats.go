package ingest

import "sync/atomic"

// Stats counts one stream's — or, merged, the whole ingest subsystem's —
// traffic and outcomes. All fields are updated atomically; read a consistent
// copy with Snapshot.
type Stats struct {
	Streams  uint64 // streams opened (aggregate only; 0 on per-stream stats)
	Received uint64 // submit frames decoded
	Accepted uint64 // acked accepted
	Rejected uint64 // acked rejected (verification refused)
	Shed     uint64 // acked shed (intake full or credit overrun)
	Failed   uint64 // acked failed (batch-level error)
}

// Snapshot returns a consistent copy of the counters.
func (s *Stats) Snapshot() Stats {
	return Stats{
		Streams:  atomic.LoadUint64(&s.Streams),
		Received: atomic.LoadUint64(&s.Received),
		Accepted: atomic.LoadUint64(&s.Accepted),
		Rejected: atomic.LoadUint64(&s.Rejected),
		Shed:     atomic.LoadUint64(&s.Shed),
		Failed:   atomic.LoadUint64(&s.Failed),
	}
}

// countAck records one decision in the counters.
func (s *Stats) countAck(status AckStatus) {
	switch status {
	case StatusAccepted:
		atomic.AddUint64(&s.Accepted, 1)
	case StatusRejected:
		atomic.AddUint64(&s.Rejected, 1)
	case StatusShed:
		atomic.AddUint64(&s.Shed, 1)
	case StatusFailed:
		atomic.AddUint64(&s.Failed, 1)
	}
}

// Acked sums the decided outcomes.
func (s Stats) Acked() uint64 { return s.Accepted + s.Rejected + s.Shed + s.Failed }
