// Package ingest is the streaming submission subsystem: the layer between
// the transport and the verification pipeline that lets one client
// connection carry many submissions in flight at once.
//
// The request/response path (core.MsgSubmit) costs a full round-trip per
// submission, which caps a client's upload rate at 1/RTT regardless of how
// fast the servers verify — after the sharded pipeline parallelized
// verification, that round-trip became the system's front-door bottleneck.
// The paper's deployment model (§6.2) is millions of clients holding
// long-lived TLS connections, which only makes sense if those connections
// are pipelined.
//
// # Protocol
//
// A client opens a stream with transport.MsgStreamOpen carrying the
// subprotocol magic, and the server answers with a hello frame granting an
// initial credit window. From then on the stream is asymmetric and fully
// asynchronous:
//
//   - client → server: submit frames, each a client-chosen 64-bit submission
//     ID plus a marshalled core.Submission. Each submit spends one credit.
//   - server → client: ack frames, each batching one or more (ID, status)
//     decisions. Each ack returns one credit.
//
// Statuses are Accepted (shares entered the accumulators), Rejected
// (verification refused the submission), Shed (dropped unverified because
// the server's intake was full or the stream overran its credits — safe to
// retry), and Failed (lost to a batch-level error).
//
// # Backpressure
//
// Credits make overload degrade into queuing at the client instead of
// unbounded memory or silent drops on the server. A stream may have at most
// its credit grant un-acked; StreamSubmitter.Submit blocks once the window
// is full, so a flooding client stalls on its own connection while the
// server's exposure per stream stays fixed. Server-side, submissions go to
// the verification pipeline through a non-blocking enqueue; when the
// pipeline is saturated they fall into a bounded intake queue that a pump
// goroutine drains into the pipeline's blocking path, and only when that
// buffer is also full — aggregate arrivals beyond Credits×streams — does the
// server shed, explicitly, with an ack the client can act on.
//
// See docs/INGEST.md for the design note and cmd/prio-load for the matching
// open/closed-loop load generator.
package ingest
