package ingest

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"prio/internal/core"
)

// flakySink accepts each distinct submission only after failUntil sightings:
// earlier attempts come back as failed acks, exercising the retry path
// deterministically.
type flakySink struct {
	mu        sync.Mutex
	seen      map[byte]int
	failUntil int
}

func (f *flakySink) SubmitFunc(sub *core.Submission, fn func(core.SubmitResult)) error {
	tag := sub.Bundles[0][0]
	f.mu.Lock()
	f.seen[tag]++
	n := f.seen[tag]
	f.mu.Unlock()
	if n < f.failUntil {
		fn(core.SubmitResult{Err: errors.New("scripted failure")})
	} else {
		fn(core.SubmitResult{Accepted: true})
	}
	return nil
}

func (f *flakySink) TrySubmitFunc(sub *core.Submission, fn func(core.SubmitResult)) (bool, error) {
	return true, f.SubmitFunc(sub, fn)
}

// TestFailoverRetriesFailedAcks: every submission fails its first attempt;
// the failover layer must re-submit and converge with a closed ledger.
func TestFailoverRetriesFailedAcks(t *testing.T) {
	sink := &flakySink{seen: make(map[byte]int), failUntil: 2}
	_, addr, stop := serveIngest(t, sink, Config{Credits: 8})
	defer stop()

	fs, err := NewFailoverSubmitter(FailoverConfig{
		Dial: func(onAck func(Ack)) (*StreamSubmitter, error) {
			return Dial(addr, SubmitterConfig{OnAck: onAck})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	const total = 10
	for i := 0; i < total; i++ {
		if err := fs.Submit(testSub(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	fs.Wait()
	st := fs.Stats()
	if st.Accepted != total || st.Abandoned != 0 {
		t.Errorf("stats = %+v, want %d accepted", st, total)
	}
	if st.FailedRetried != total {
		t.Errorf("FailedRetried = %d, want %d (each submission failed once)", st.FailedRetried, total)
	}
	if st.Submitted != st.Accepted+st.Rejected+st.Abandoned {
		t.Errorf("ledger open: %+v", st)
	}
}

// TestFailoverAbandonsAfterMaxAttempts: a sink that never accepts must not
// retry forever — the budget runs out and the ledger still closes, with the
// loss explicit in Abandoned.
func TestFailoverAbandonsAfterMaxAttempts(t *testing.T) {
	sink := &flakySink{seen: make(map[byte]int), failUntil: 1 << 30}
	_, addr, stop := serveIngest(t, sink, Config{Credits: 8})
	defer stop()

	var finals []AckStatus
	var mu sync.Mutex
	fs, err := NewFailoverSubmitter(FailoverConfig{
		MaxAttempts: 2,
		Dial: func(onAck func(Ack)) (*StreamSubmitter, error) {
			return Dial(addr, SubmitterConfig{OnAck: onAck})
		},
		OnFinal: func(a Ack) {
			mu.Lock()
			finals = append(finals, a.Status)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	const total = 5
	for i := 0; i < total; i++ {
		if err := fs.Submit(testSub(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	fs.Wait()
	st := fs.Stats()
	if st.Abandoned != total || st.Accepted != 0 {
		t.Errorf("stats = %+v, want %d abandoned", st, total)
	}
	if st.FailedRetried != total {
		t.Errorf("FailedRetried = %d, want %d (one retry per submission)", st.FailedRetried, total)
	}
	if st.Submitted != st.Accepted+st.Rejected+st.Abandoned {
		t.Errorf("ledger open: %+v", st)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(finals) != total {
		t.Errorf("OnFinal fired %d times, want %d", len(finals), total)
	}
	for _, s := range finals {
		if s != StatusFailed {
			t.Errorf("abandoned submission reported as %v", s)
		}
	}
}

// TestFailoverRedialsAfterStreamDeath is the client half of leader failover:
// the serving endpoint dies with submissions in flight, a replacement comes
// up at a different address, and the layer must re-dial (the Dial closure
// re-resolves, as it would via cluster.Resolve) and re-submit the strays so
// every submission still reaches a final decision.
func TestFailoverRedialsAfterStreamDeath(t *testing.T) {
	gate := make(chan struct{})
	sinkA := &fakeSink{gate: gate} // wedged: decisions never arrive
	_, addrA, stopA := serveIngest(t, sinkA, Config{Credits: 8})

	var mu sync.Mutex
	addr := addrA
	fs, err := NewFailoverSubmitter(FailoverConfig{
		RedialBackoff: 5 * time.Millisecond,
		Dial: func(onAck func(Ack)) (*StreamSubmitter, error) {
			mu.Lock()
			a := addr
			mu.Unlock()
			return Dial(a, SubmitterConfig{OnAck: onAck})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	const total = 8
	for i := 0; i < total; i++ {
		if err := fs.Submit(testSub(byte(i))); err != nil {
			t.Fatal(err)
		}
	}

	// Replacement endpoint that accepts everything, then kill the original
	// out from under the stream.
	sinkB := &fakeSink{}
	_, addrB, stopB := serveIngest(t, sinkB, Config{Credits: 8})
	defer stopB()
	mu.Lock()
	addr = addrB
	mu.Unlock()
	stopA()
	close(gate)

	fs.Wait()
	st := fs.Stats()
	if st.Accepted != total || st.Abandoned != 0 {
		t.Errorf("stats = %+v, want %d accepted on the successor", st, total)
	}
	if st.Failovers == 0 || st.Redials == 0 {
		t.Errorf("failover not counted: %+v", st)
	}
	if st.Submitted != st.Accepted+st.Rejected+st.Abandoned {
		t.Errorf("ledger open: %+v", st)
	}
}

// TestGateRefusesStream: a follower's admission gate must bounce the dial
// with the gate's own message, so clients learn who the leader is.
func TestGateRefusesStream(t *testing.T) {
	sink := &fakeSink{}
	gateErr := errors.New("cluster: member 1 is not the leader (epoch 3, leader 0)")
	_, addr, stop := serveIngest(t, sink, Config{Gate: func() error { return gateErr }})
	defer stop()

	_, err := Dial(addr, SubmitterConfig{})
	if err == nil {
		t.Fatal("gated stream admitted")
	}
	if !strings.Contains(err.Error(), "not the leader") {
		t.Errorf("refusal lost the gate message: %v", err)
	}
}
