package transport

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"net"
	"os"
	"sync"
	"time"
)

// TCPPeer is a Peer over a (possibly TLS) stream connection. Calls are
// serialized on the connection: one frame round-trip at a time. A serial
// leader matches this naturally (lock-step rounds); concurrent leader
// sessions should wrap the peer in a Coalescer so their in-flight rounds
// merge into batched frames instead of queuing head-to-tail.
type TCPPeer struct {
	mu    sync.Mutex
	conn  net.Conn
	stats Stats
}

// Dial connects to a server at addr. If tlsCfg is non-nil the connection is
// upgraded to TLS (the paper's servers communicate over TLS).
func Dial(addr string, tlsCfg *tls.Config) (*TCPPeer, error) {
	var conn net.Conn
	var err error
	if tlsCfg != nil {
		conn, err = tls.Dial("tcp", addr, tlsCfg)
	} else {
		conn, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return nil, err
	}
	return &TCPPeer{conn: conn}, nil
}

// Call implements Peer.
func (p *TCPPeer) Call(msgType byte, payload []byte) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn == nil {
		return nil, ErrClosed
	}
	if err := writeFrame(p.conn, msgType, payload); err != nil {
		return nil, err
	}
	p.stats.add(true, frameLen(payload))
	respType, resp, err := readFrame(p.conn)
	if err != nil {
		return nil, err
	}
	p.stats.add(false, frameLen(resp))
	return decodeCallResult(msgType, respType, resp)
}

// Stats implements Peer.
func (p *TCPPeer) Stats() *Stats { return &p.stats }

// Close implements Peer.
func (p *TCPPeer) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn == nil {
		return nil
	}
	err := p.conn.Close()
	p.conn = nil
	return err
}

// Server accepts connections and dispatches frames to a Handler.
type Server struct {
	ln     net.Listener
	h      Handler
	wg     sync.WaitGroup
	mu     sync.Mutex
	stream StreamHandler
	protos map[string]StreamHandler
	conns  map[net.Conn]struct{}
	closed bool
}

// Serve starts accepting on ln; it returns immediately and handles
// connections on background goroutines. The handler is wrapped with
// BatchHandler, so every served endpoint understands MsgBatched envelopes
// from Coalescer-wrapped peers, and the rounds subprotocol is registered
// over the same handler, so every served endpoint also speaks streamed
// verification rounds (StreamPeer clients).
func Serve(ln net.Listener, h Handler) *Server {
	s := &Server{ln: ln, h: BatchHandler(h), conns: make(map[net.Conn]struct{})}
	s.protos = map[string]StreamHandler{RoundsProto: roundsDispatcher(s.h)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Listen opens a TCP listener on addr (":0" for an ephemeral port) and
// serves h on it. If tlsCfg is non-nil the listener requires TLS.
func Listen(addr string, tlsCfg *tls.Config, h Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tlsCfg != nil {
		ln = tls.NewListener(ln, tlsCfg)
	}
	return Serve(ln, h), nil
}

// Addr returns the listener's address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// OnStream registers the handler for MsgStreamOpen frames. A connection that
// sends one leaves request/response dispatch for good: the handler owns its
// frames until it returns, after which the connection is closed. Without a
// registered handler, stream opens are answered with a MsgError frame and
// the connection is dropped.
func (s *Server) OnStream(h StreamHandler) {
	s.mu.Lock()
	s.stream = h
	s.mu.Unlock()
}

// OnStreamProto registers a handler for one named subprotocol: a stream
// whose MsgStreamOpen payload equals proto goes to h instead of the default
// OnStream handler. Serve pre-registers RoundsProto this way.
func (s *Server) OnStreamProto(proto string, h StreamHandler) {
	s.mu.Lock()
	s.protos[proto] = h
	s.mu.Unlock()
}

// DropConns severs every active connection while leaving the listener up —
// clients see a transport error and re-dial onto the same server. It exists
// for fault-injection tests (a mid-round connection loss without a process
// kill); production failover drills kill the process instead.
func (s *Server) DropConns() {
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
}

// Close stops accepting, tears down active connections, and waits for the
// handler goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			for {
				msgType, payload, err := readFrame(conn)
				if err != nil {
					return
				}
				if msgType == MsgPing {
					if err := writeFrame(conn, MsgPing, payload); err != nil {
						return
					}
					continue
				}
				if msgType == MsgStreamOpen {
					s.mu.Lock()
					sh, ok := s.protos[string(payload)]
					if !ok {
						sh = s.stream
					}
					s.mu.Unlock()
					if sh == nil {
						_ = writeFrame(conn, MsgError, []byte("transport: no stream handler"))
						return
					}
					sh(payload, NewFrameConn(conn))
					return
				}
				resp, herr := s.h(msgType, payload)
				respType, body := encodeHandlerResult(msgType, resp, herr)
				if err := writeFrame(conn, respType, body); err != nil {
					return
				}
			}
		}()
	}
}

// SelfSignedTLS generates an in-memory certificate for host and returns the
// matching server and client TLS configurations. Production deployments
// would use a real PKI (the paper assumes one exists); for experiments and
// examples a pinned self-signed certificate provides the same channel
// properties.
func SelfSignedTLS(host string) (serverCfg, clientCfg *tls.Config, err error) {
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, nil, err
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 120))
	if err != nil {
		return nil, nil, err
	}
	tmpl := x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{CommonName: host, Organization: []string{"prio"}},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(24 * 365 * time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		DNSNames:              []string{host},
		IsCA:                  true,
		BasicConstraintsValid: true,
	}
	if ip := net.ParseIP(host); ip != nil {
		tmpl.IPAddresses = []net.IP{ip}
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &priv.PublicKey, priv)
	if err != nil {
		return nil, nil, err
	}
	cert := tls.Certificate{Certificate: [][]byte{der}, PrivateKey: priv}
	pool := x509.NewCertPool()
	parsed, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, nil, err
	}
	pool.AddCert(parsed)
	serverCfg = &tls.Config{Certificates: []tls.Certificate{cert}, MinVersion: tls.VersionTLS13}
	clientCfg = &tls.Config{RootCAs: pool, ServerName: host, MinVersion: tls.VersionTLS13}
	return serverCfg, clientCfg, nil
}

// LoadServerTLS builds a server-side TLS configuration. With certFile and
// keyFile set it loads the pinned PEM pair; with both empty it falls back to
// a fresh self-signed certificate for host, which gives the channel
// confidentiality the paper assumes (§6.2) without a PKI — peers then either
// pin the certificate out of band or dial unauthenticated.
func LoadServerTLS(certFile, keyFile, host string) (*tls.Config, error) {
	if certFile == "" && keyFile == "" {
		cfg, _, err := SelfSignedTLS(host)
		return cfg, err
	}
	cert, err := tls.LoadX509KeyPair(certFile, keyFile)
	if err != nil {
		return nil, err
	}
	return &tls.Config{Certificates: []tls.Certificate{cert}, MinVersion: tls.VersionTLS13}, nil
}

// ClientTLS builds a client-side TLS configuration. With caFile set, the
// dialed server must present a certificate chaining to that PEM bundle
// (pinning). With caFile empty, the connection is encrypted but the server
// unauthenticated — the default for self-signed deployments, where pinning
// requires distributing the generated certificate first.
func ClientTLS(caFile string) (*tls.Config, error) {
	if caFile == "" {
		return &tls.Config{InsecureSkipVerify: true, MinVersion: tls.VersionTLS13}, nil
	}
	pem, err := os.ReadFile(caFile)
	if err != nil {
		return nil, err
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(pem) {
		return nil, fmt.Errorf("transport: no certificates in %s", caFile)
	}
	return &tls.Config{RootCAs: pool, MinVersion: tls.VersionTLS13}, nil
}
