package transport

import (
	"bytes"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// waitCond polls until cond holds or the deadline passes.
func waitCond(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal(msg)
}

// TestHealthDeadPeerGoesDown: a target failing every probe is marked down
// after exactly FailThreshold consecutive failures, and comes back up on the
// first success after recovery.
func TestHealthDeadPeerGoesDown(t *testing.T) {
	var dead atomic.Bool
	dead.Store(true)
	var probes atomic.Int64
	h := NewHealthChecker([]ProbeFunc{
		nil, // self slot: never probed, always up
		func(time.Duration) error {
			probes.Add(1)
			if dead.Load() {
				return errors.New("connection refused")
			}
			return nil
		},
	}, HealthConfig{Interval: 5 * time.Millisecond, FailThreshold: 3})
	h.Start()
	defer h.Stop()

	if !h.Up(0) || !h.Up(1) {
		t.Fatal("targets must start optimistically up")
	}
	waitCond(t, 2*time.Second, func() bool { return !h.Up(1) }, "dead peer never marked down")
	if n := probes.Load(); n < 3 {
		t.Errorf("went down after %d probes, threshold is 3", n)
	}
	if !h.Up(0) {
		t.Error("self slot went down")
	}

	dead.Store(false)
	waitCond(t, 2*time.Second, func() bool { return h.Up(1) }, "recovered peer never marked up")
}

// TestHealthFlappingPeerStaysUp: a target that fails often but never
// FailThreshold times in a row stays up.
func TestHealthFlappingPeerStaysUp(t *testing.T) {
	var n atomic.Int64
	var transitions atomic.Int64
	h := NewHealthChecker([]ProbeFunc{
		func(time.Duration) error {
			// Two failures, one success, repeat: never 3 consecutive.
			if n.Add(1)%3 == 0 {
				return nil
			}
			return errors.New("flap")
		},
	}, HealthConfig{
		Interval:      3 * time.Millisecond,
		FailThreshold: 3,
		OnChange:      func(int, bool) { transitions.Add(1) },
	})
	h.Start()
	time.Sleep(150 * time.Millisecond)
	h.Stop()
	if !h.Up(0) {
		t.Error("flapping peer marked down")
	}
	if got := transitions.Load(); got != 0 {
		t.Errorf("flapping peer transitioned %d times", got)
	}
}

// TestHealthSlowPeerVsDeadPeer: a peer slower than the probe timeout is as
// down as a dead one — its probes overrun the window and count as failures —
// but unlike a dead one it recovers the moment it answers fast again.
func TestHealthSlowPeerVsDeadPeer(t *testing.T) {
	var delay atomic.Int64 // ms
	delay.Store(50)
	h := NewHealthChecker([]ProbeFunc{
		func(time.Duration) error { // slow peer: alive but over timeout
			time.Sleep(time.Duration(delay.Load()) * time.Millisecond)
			return nil
		},
		func(time.Duration) error { // dead peer: fails instantly
			return errors.New("down")
		},
	}, HealthConfig{Interval: 5 * time.Millisecond, Timeout: 10 * time.Millisecond, FailThreshold: 3})
	h.Start()
	defer h.Stop()

	waitCond(t, 2*time.Second, func() bool { return !h.Up(0) }, "slow peer never marked down")
	waitCond(t, 2*time.Second, func() bool { return !h.Up(1) }, "dead peer never marked down")

	// The slow peer speeds up and must come back; the dead one must not.
	delay.Store(0)
	waitCond(t, 2*time.Second, func() bool { return h.Up(0) }, "fast-again peer never marked up")
	if h.Up(1) {
		t.Error("dead peer resurrected")
	}
}

// TestPingEchoAndRedial: MsgPing is echoed by the TCP server's read loop, a
// RedialPeer survives its server restarting, and its CallTimeout fails
// promptly against a dead address instead of hanging.
func TestPingEchoAndRedial(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", nil, func(byte, []byte) ([]byte, error) {
		return nil, errors.New("handler must not see pings")
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()
	p := NewRedialPeer(addr, nil)
	defer p.Close()

	resp, err := p.CallTimeout(MsgPing, []byte("nonce"), time.Second)
	if err != nil {
		t.Fatalf("ping: %v", err)
	}
	if !bytes.Equal(resp, []byte("nonce")) {
		t.Fatalf("ping echoed %q", resp)
	}

	// Kill the server; the held connection is now dead. The first call
	// reports the break, the next one re-dials the restarted server.
	srv.Close()
	if _, err := p.CallTimeout(MsgPing, nil, time.Second); err == nil {
		t.Fatal("call against closed server succeeded")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	srv2 := Serve(ln, func(byte, []byte) ([]byte, error) { return nil, nil })
	defer srv2.Close()
	waitCond(t, 2*time.Second, func() bool {
		_, err := p.CallTimeout(MsgPing, nil, time.Second)
		return err == nil
	}, "redial against restarted server never succeeded")
}
