package transport

import (
	"bufio"
	"crypto/tls"
	"encoding/binary"
	"net"
	"sync"
)

// MsgStreamOpen is the reserved frame type that switches a served connection
// out of request/response dispatch and into streaming mode: the frame's
// payload names the subprotocol, and the registered StreamHandler takes
// ownership of the connection for its remaining lifetime. Streaming is what
// lets one client pipeline many submissions per connection with asynchronous
// acks, instead of paying a round-trip per message (see internal/ingest).
const MsgStreamOpen byte = 0xFD

// StreamHandler owns a connection after a MsgStreamOpen frame. open is the
// opening frame's payload (the subprotocol announcement); conn carries every
// subsequent frame in both directions. The handler runs on the connection's
// serving goroutine and should return only when the stream is finished; the
// server closes the connection afterwards.
type StreamHandler func(open []byte, conn *FrameConn)

// FrameConn is a framed, buffered stream connection: the raw substrate under
// streaming subprotocols. Reads are owned by a single goroutine (frames
// arrive in order); writes may come from many goroutines and are serialized
// internally. Writes are buffered — call Flush when a batch of frames must
// actually hit the wire.
type FrameConn struct {
	conn net.Conn
	r    *bufio.Reader

	wmu sync.Mutex
	w   *bufio.Writer

	stats Stats

	cmu    sync.Mutex
	closed bool
}

// NewFrameConn wraps an established connection for framed streaming.
func NewFrameConn(conn net.Conn) *FrameConn {
	return &FrameConn{
		conn: conn,
		r:    bufio.NewReaderSize(conn, 64<<10),
		w:    bufio.NewWriterSize(conn, 64<<10),
	}
}

// DialStream connects to addr and prepares the connection for streaming. If
// tlsCfg is non-nil the connection is upgraded to TLS. The caller speaks its
// subprotocol by first writing a MsgStreamOpen frame.
func DialStream(addr string, tlsCfg *tls.Config) (*FrameConn, error) {
	var conn net.Conn
	var err error
	if tlsCfg != nil {
		conn, err = tls.Dial("tcp", addr, tlsCfg)
	} else {
		conn, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return nil, err
	}
	return NewFrameConn(conn), nil
}

// ReadFrame reads the next frame. Only one goroutine may read at a time.
func (f *FrameConn) ReadFrame() (byte, []byte, error) {
	msgType, payload, err := readFrame(f.r)
	if err != nil {
		return 0, nil, err
	}
	f.stats.add(false, frameLen(payload))
	return msgType, payload, nil
}

// WriteFrame appends one frame to the write buffer. Safe for concurrent use;
// nothing reaches the wire until the buffer fills or Flush is called.
func (f *FrameConn) WriteFrame(msgType byte, payload []byte) error {
	f.wmu.Lock()
	defer f.wmu.Unlock()
	if err := writeFrame(f.w, msgType, payload); err != nil {
		return err
	}
	f.stats.add(true, frameLen(payload))
	return nil
}

// WriteFrameParts appends one frame whose payload is the concatenation of
// parts, without assembling them first: the header and each part are copied
// directly into the connection's write buffer under the write lock. This is
// the zero-intermediate path the verification rounds ride — a correlation
// header on the stack plus a pooled message body reach the wire with no
// joined []byte ever existing.
func (f *FrameConn) WriteFrameParts(msgType byte, parts ...[]byte) error {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total > MaxFrame {
		return ErrFrameSize
	}
	var hdr [5]byte
	hdr[0] = msgType
	binary.LittleEndian.PutUint32(hdr[1:], uint32(total))
	f.wmu.Lock()
	defer f.wmu.Unlock()
	if _, err := f.w.Write(hdr[:]); err != nil {
		return err
	}
	for _, p := range parts {
		if _, err := f.w.Write(p); err != nil {
			return err
		}
	}
	f.stats.add(true, 5+total)
	return nil
}

// Flush pushes buffered frames to the wire.
func (f *FrameConn) Flush() error {
	f.wmu.Lock()
	defer f.wmu.Unlock()
	return f.w.Flush()
}

// Stats exposes the connection's traffic counters.
func (f *FrameConn) Stats() *Stats { return &f.stats }

// Close tears the connection down, unblocking any reader.
func (f *FrameConn) Close() error {
	f.cmu.Lock()
	defer f.cmu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	return f.conn.Close()
}
