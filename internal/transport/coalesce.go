package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"prio/internal/telemetry"
)

// MsgBatched is the reserved envelope type for coalesced requests: a single
// frame carrying several independent protocol messages. Coalescer emits it,
// BatchHandler (installed automatically by Serve) unwraps it. Application
// message types must stay below it.
const MsgBatched byte = 0xFE

// errBatch reports a malformed coalescing envelope.
var errBatch = errors.New("transport: malformed batched envelope")

// coalesceBatchSizes records how many concurrent Calls each flush merged
// onto the wire, across every Coalescer in the process. The distribution
// is the wire-amplification dial: a mode at 1 means coalescing buys
// nothing (each RPC pays its own round-trip); a fat right tail means many
// shards' rounds share each syscall.
var coalesceBatchSizes = telemetry.Default.Histogram(
	"prio_coalesce_batch_size", "calls merged per coalesced flush")

// Envelope wire format (little-endian):
//
//	request:  u32 count, then per entry: u8 msgType, u32 len, payload
//	response: u32 count, then per entry: u8 status (1 ok, 0 error), u32 len, body
//
// Per-entry handler failures travel as status-0 bodies holding the error
// string, so one bad request in an envelope does not poison its siblings.

// pendingCall is one caller waiting inside a Coalescer.
type pendingCall struct {
	msgType byte
	payload []byte
	done    chan struct{}
	resp    []byte
	err     error
}

// Coalescer wraps a Peer so that Calls issued concurrently coalesce into a
// single MsgBatched frame on the underlying connection. The Prio pipeline
// runs many leader sessions against the same server set; without
// coalescing, each session's Round1/Round2 would queue head-to-tail on the
// per-server TCP connection (TCPPeer serializes Calls). With it, all rounds
// in flight at flush time ride one round-trip, which is what lets shard
// throughput scale past a single connection's request rate.
//
// A lone Call passes straight through to the underlying peer, so wrapping a
// serial leader costs nothing.
type Coalescer struct {
	peer Peer

	mu      sync.Mutex
	pending []*pendingCall
	active  bool
}

// NewCoalescer wraps p. The wrapped peer's server must understand
// MsgBatched envelopes (transport.Serve installs BatchHandler, so every TCP
// server does; for in-memory peers wrap the handler explicitly).
func NewCoalescer(p Peer) *Coalescer { return &Coalescer{peer: p} }

// Call implements Peer. The first caller to find no flush in progress
// becomes the flusher: it repeatedly drains everything queued — its own
// request included — into batched frames until the queue is empty, while
// other callers just park on their response.
func (c *Coalescer) Call(msgType byte, payload []byte) ([]byte, error) {
	pc := &pendingCall{msgType: msgType, payload: payload, done: make(chan struct{})}
	c.mu.Lock()
	c.pending = append(c.pending, pc)
	if c.active {
		c.mu.Unlock()
		<-pc.done
		return pc.resp, pc.err
	}
	c.active = true
	c.mu.Unlock()
	for {
		c.mu.Lock()
		batch := c.pending
		c.pending = nil
		if len(batch) == 0 {
			c.active = false
			c.mu.Unlock()
			break
		}
		c.mu.Unlock()
		c.flush(batch)
	}
	// pc was queued before this goroutine became the flusher, so it is
	// already resolved by the loop above.
	<-pc.done
	return pc.resp, pc.err
}

// flush issues one underlying round-trip for the batch and distributes the
// results.
func (c *Coalescer) flush(batch []*pendingCall) {
	coalesceBatchSizes.Observe(uint64(len(batch)))
	if len(batch) == 1 {
		pc := batch[0]
		pc.resp, pc.err = c.peer.Call(pc.msgType, pc.payload)
		close(pc.done)
		return
	}
	req := encodeBatchRequest(batch)
	resp, err := c.peer.Call(MsgBatched, req)
	if err != nil {
		for _, pc := range batch {
			pc.err = err
			close(pc.done)
		}
		return
	}
	decodeBatchResponse(resp, batch)
	for _, pc := range batch {
		close(pc.done)
	}
}

// Stats implements Peer, exposing the underlying peer's counters (so byte
// accounting reflects what actually crossed the wire, envelopes included).
func (c *Coalescer) Stats() *Stats { return c.peer.Stats() }

// Close implements Peer.
func (c *Coalescer) Close() error { return c.peer.Close() }

// encodeBatchRequest packs the batch into one envelope payload.
func encodeBatchRequest(batch []*pendingCall) []byte {
	n := 4
	for _, pc := range batch {
		n += 1 + 4 + len(pc.payload)
	}
	b := make([]byte, 0, n)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(batch)))
	for _, pc := range batch {
		b = append(b, pc.msgType)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(pc.payload)))
		b = append(b, pc.payload...)
	}
	return b
}

// decodeBatchResponse unpacks a response envelope into the batch's pending
// calls.
func decodeBatchResponse(resp []byte, batch []*pendingCall) {
	fail := func() {
		for _, pc := range batch {
			if pc.err == nil && pc.resp == nil {
				pc.err = errBatch
			}
		}
	}
	if len(resp) < 4 || binary.LittleEndian.Uint32(resp) != uint32(len(batch)) {
		fail()
		return
	}
	off := 4
	for _, pc := range batch {
		if off+5 > len(resp) {
			fail()
			return
		}
		status := resp[off]
		n := int(binary.LittleEndian.Uint32(resp[off+1:]))
		off += 5
		if n < 0 || off+n > len(resp) {
			fail()
			return
		}
		body := resp[off : off+n]
		off += n
		if status == 1 {
			pc.resp = body
		} else {
			pc.err = fmt.Errorf("transport: remote error: %s", body)
		}
	}
	if off != len(resp) {
		fail()
	}
}

// BatchHandler wraps h so it additionally understands MsgBatched envelopes.
// The entries of an envelope are dispatched concurrently — they are
// independent requests that happened to share a frame — which recovers
// multicore parallelism even when every leader session funnels through one
// connection. Handlers must be safe for concurrent use (the Handler
// contract already requires this).
func BatchHandler(h Handler) Handler {
	return func(msgType byte, payload []byte) ([]byte, error) {
		if msgType != MsgBatched {
			return h(msgType, payload)
		}
		if len(payload) < 4 {
			return nil, errBatch
		}
		count := int(binary.LittleEndian.Uint32(payload))
		if count < 0 || count > 1<<16 {
			return nil, errBatch
		}
		types := make([]byte, count)
		payloads := make([][]byte, count)
		off := 4
		for i := 0; i < count; i++ {
			if off+5 > len(payload) {
				return nil, errBatch
			}
			types[i] = payload[off]
			n := int(binary.LittleEndian.Uint32(payload[off+1:]))
			off += 5
			if n < 0 || off+n > len(payload) {
				return nil, errBatch
			}
			payloads[i] = payload[off : off+n]
			off += n
		}
		if off != len(payload) {
			return nil, errBatch
		}

		resps := make([][]byte, count)
		errs := make([]error, count)
		var wg sync.WaitGroup
		for i := 0; i < count; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resps[i], errs[i] = h(types[i], payloads[i])
			}(i)
		}
		wg.Wait()

		n := 4
		for i := range resps {
			body := resps[i]
			if errs[i] != nil {
				body = []byte(errs[i].Error())
			}
			n += 5 + len(body)
		}
		out := make([]byte, 0, n)
		out = binary.LittleEndian.AppendUint32(out, uint32(count))
		for i := range resps {
			if errs[i] != nil {
				out = append(out, 0)
				msg := errs[i].Error()
				out = binary.LittleEndian.AppendUint32(out, uint32(len(msg)))
				out = append(out, msg...)
			} else {
				out = append(out, 1)
				out = binary.LittleEndian.AppendUint32(out, uint32(len(resps[i])))
				out = append(out, resps[i]...)
			}
		}
		return out, nil
	}
}
