package transport

import (
	"crypto/tls"
	"encoding"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"prio/internal/telemetry"
)

// The rounds subprotocol moves leader↔server verification traffic (Round1,
// Round2, MPC rounds, Finish, window publishes) off request/response Peer
// connections and onto one persistent FrameConn per peer, the same machinery
// the ingest path uses. Each logical call carries a correlation ID, so many
// calls are in flight concurrently: shard A's Round2 no longer queues
// head-to-tail behind shard B's Round1 the way it does on a mutex-serialized
// TCPPeer, and no coalescing timer sits in the latency path. Replies arrive
// in whatever order the server finishes them and are matched back to their
// waiting callers by ID.
//
// Wire format, inside the stream opened with a MsgStreamOpen frame whose
// payload is RoundsProto:
//
//	call  frame (type 0x30): u64 corr ‖ u8 inner msgType ‖ body
//	reply frame (type 0x31): u64 corr ‖ u8 status        ‖ body
//
// status 1 means body is the handler's response; status 0 means body is the
// handler's error string (the stream stays usable — handler errors are a
// healthy exchange, exactly as MsgError responses are on a RedialPeer). A
// MsgError frame at the stream level is fatal and kills every pending call.

// RoundsProto names the verification-round subprotocol in the MsgStreamOpen
// payload.
const RoundsProto = "prio-rounds/1"

const (
	msgRoundsCall  byte = 0x30
	msgRoundsReply byte = 0x31
)

var (
	errShortRoundsFrame = errors.New("transport: rounds frame too short")
	errBadReplyStatus   = errors.New("transport: rounds reply has invalid status byte")
)

// Rounds-stream telemetry, shared by every StreamPeer and dispatcher in the
// process (the operator endpoint serves telemetry.Default).
var (
	streamOpens = telemetry.Default.Counter("prio_transport_stream_opens_total",
		"verification-round stream connections established (client side)")
	streamCalls = telemetry.Default.Counter("prio_transport_stream_calls_total",
		"calls issued over verification-round streams")
	streamErrors = telemetry.Default.Counter("prio_transport_stream_errors_total",
		"verification-round streams torn down by transport failures")
	streamFlushes = telemetry.Default.Counter("prio_transport_stream_flushes_total",
		"buffered-write flushes on verification-round streams (client side)")
	streamInflight int64
)

func init() {
	telemetry.Default.GaugeFunc("prio_transport_stream_inflight",
		"calls awaiting replies across all verification-round streams",
		func() float64 { return float64(atomic.LoadInt64(&streamInflight)) })
}

// CallFrame is the decoded payload of a msgRoundsCall frame.
type CallFrame struct {
	Corr uint64 // correlation ID, echoed verbatim in the reply
	Type byte   // inner message type, dispatched to the server Handler
	Body []byte // inner payload
}

// ReplyFrame is the decoded payload of a msgRoundsReply frame.
type ReplyFrame struct {
	Corr uint64
	OK   bool   // true: Body is the response; false: Body is the error text
	Body []byte
}

var (
	_ encoding.BinaryMarshaler   = (*CallFrame)(nil)
	_ encoding.BinaryUnmarshaler = (*CallFrame)(nil)
	_ encoding.BinaryMarshaler   = (*ReplyFrame)(nil)
	_ encoding.BinaryUnmarshaler = (*ReplyFrame)(nil)
)

// MarshalBinary implements encoding.BinaryMarshaler. The hot path does not
// use it — StreamPeer.Call and the dispatcher write the 9-byte header and
// the body as separate WriteFrameParts segments — but it round-trips with
// UnmarshalBinary for tests and tooling.
func (c *CallFrame) MarshalBinary() ([]byte, error) {
	b := make([]byte, 9+len(c.Body))
	binary.LittleEndian.PutUint64(b, c.Corr)
	b[8] = c.Type
	copy(b[9:], c.Body)
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. Body aliases data;
// the caller keeps ownership of the input and must not recycle it while the
// frame is live.
func (c *CallFrame) UnmarshalBinary(data []byte) error {
	if len(data) < 9 {
		return errShortRoundsFrame
	}
	c.Corr = binary.LittleEndian.Uint64(data)
	c.Type = data[8]
	c.Body = data[9:]
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (r *ReplyFrame) MarshalBinary() ([]byte, error) {
	b := make([]byte, 9+len(r.Body))
	binary.LittleEndian.PutUint64(b, r.Corr)
	if r.OK {
		b[8] = 1
	}
	copy(b[9:], r.Body)
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. Body aliases data.
func (r *ReplyFrame) UnmarshalBinary(data []byte) error {
	if len(data) < 9 {
		return errShortRoundsFrame
	}
	if data[8] > 1 {
		return errBadReplyStatus
	}
	r.Corr = binary.LittleEndian.Uint64(data)
	r.OK = data[8] == 1
	r.Body = data[9:]
	return nil
}

// roundsCall is one caller waiting for its correlated reply.
type roundsCall struct {
	done chan struct{}
	resp []byte
	err  error
}

// outFrame is one queued rounds frame: the 9-byte correlation header plus
// the body, written as separate segments so the body never gets copied into
// an intermediate buffer.
type outFrame struct {
	hdr  [9]byte
	body []byte
}

// roundsConn is one live stream connection with its pending-call table. The
// table lives here, not on the peer, so a late failure of a replaced
// connection can only resolve calls that were registered on it — never calls
// riding its successor.
type roundsConn struct {
	fc      *FrameConn
	writeq  chan outFrame // call frames awaiting the writer goroutine
	dead    chan struct{}
	once    sync.Once
	waiters map[uint64]*roundsCall // guarded by the owning peer's mu
}

// StreamPeer is a Peer whose calls ride the rounds subprotocol on one
// persistent, pipelined stream connection. Concurrent Calls are all in
// flight at once (no per-connection serialization, no coalescing delay);
// writes gather in the connection's buffer and a dedicated flusher pushes
// them to the wire, so a burst of shard rounds costs one syscall, not one
// per round.
//
// Like RedialPeer, the connection is dialed lazily and dropped on any
// transport failure; the next Call re-dials. Pending calls on a failed
// connection all return the transport error, which is what lets
// Pipeline.Retries re-run an interrupted batch — the failover behavior the
// request/response path had is preserved here.
type StreamPeer struct {
	addr   string
	tlsCfg *tls.Config

	// DialTimeout bounds each connection attempt (default 2s).
	DialTimeout time.Duration

	stats Stats

	mu     sync.Mutex
	conn   *roundsConn
	corr   uint64
	closed bool
}

// NewStreamPeer builds a streamed-rounds peer for addr. No connection is
// made until the first Call, so boot order across a deployment's servers
// does not matter.
func NewStreamPeer(addr string, tlsCfg *tls.Config) *StreamPeer {
	return &StreamPeer{addr: addr, tlsCfg: tlsCfg, DialTimeout: 2 * time.Second}
}

// dialLocked opens a connection, announces the subprotocol, and starts the
// reader and flusher. Called with p.mu held.
func (p *StreamPeer) dialLocked() (*roundsConn, error) {
	conn, err := dialConn(p.addr, p.tlsCfg, p.DialTimeout)
	if err != nil {
		return nil, err
	}
	fc := NewFrameConn(conn)
	if err := fc.WriteFrame(MsgStreamOpen, []byte(RoundsProto)); err != nil {
		fc.Close()
		return nil, err
	}
	if err := fc.Flush(); err != nil {
		fc.Close()
		return nil, err
	}
	rc := &roundsConn{
		fc:      fc,
		writeq:  make(chan outFrame, 512),
		dead:    make(chan struct{}),
		waiters: make(map[uint64]*roundsCall),
	}
	go p.readLoop(rc)
	go p.writeLoop(rc)
	streamOpens.Inc()
	return rc, nil
}

// Call implements Peer. The request is queued for the connection's writer
// goroutine — correlation header by value, payload as its own segment — and
// the goroutine parks until the reader matches the reply. The payload stays
// live for the whole call (the reply cannot arrive before the frame is
// written), so pooled request arenas are safe to free once Call returns.
func (p *StreamPeer) Call(msgType byte, payload []byte) ([]byte, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	rc := p.conn
	if rc == nil {
		nc, err := p.dialLocked()
		if err != nil {
			p.mu.Unlock()
			return nil, err
		}
		rc = nc
		p.conn = rc
	}
	p.corr++
	corr := p.corr
	call := &roundsCall{done: make(chan struct{})}
	rc.waiters[corr] = call
	p.mu.Unlock()

	var f outFrame
	binary.LittleEndian.PutUint64(f.hdr[:8], corr)
	f.hdr[8] = msgType
	f.body = payload
	streamCalls.Inc()
	atomic.AddInt64(&streamInflight, 1)
	select {
	case rc.writeq <- f:
		p.stats.add(true, 5+9+len(payload))
	case <-rc.dead:
		// fail() resolves every registered waiter, this call included.
	}
	<-call.done
	atomic.AddInt64(&streamInflight, -1)
	return call.resp, call.err
}

// readLoop owns the connection's read side, resolving waiters as replies
// arrive — in whatever order the server finished them.
func (p *StreamPeer) readLoop(rc *roundsConn) {
	for {
		msgType, payload, err := rc.fc.ReadFrame()
		if err != nil {
			p.fail(rc, err)
			return
		}
		switch msgType {
		case msgRoundsReply:
			var rf ReplyFrame
			if err := rf.UnmarshalBinary(payload); err != nil {
				p.fail(rc, err)
				return
			}
			p.mu.Lock()
			call := rc.waiters[rf.Corr]
			delete(rc.waiters, rf.Corr)
			p.mu.Unlock()
			if call == nil {
				continue // reply for a caller already failed out
			}
			p.stats.add(false, frameLen(payload))
			if rf.OK {
				// rf.Body aliases payload, which is fresh per frame and
				// handed to exactly this caller — safe to return as-is.
				call.resp = rf.Body
			} else {
				call.err = fmt.Errorf("transport: remote error: %s", rf.Body)
			}
			close(call.done)
		case MsgError:
			p.fail(rc, fmt.Errorf("transport: remote stream error: %s", payload))
			return
		default:
			p.fail(rc, fmt.Errorf("transport: unexpected frame type %#x on rounds stream", msgType))
			return
		}
	}
}

// writeLoop owns the connection's write side: it drains queued call frames
// into the buffered writer and flushes only when the queue momentarily
// empties, so a burst of concurrent shard rounds costs one syscall rather
// than one per call.
func (p *StreamPeer) writeLoop(rc *roundsConn) {
	for {
		select {
		case <-rc.dead:
			return
		case f := <-rc.writeq:
			if err := rc.fc.WriteFrameParts(msgRoundsCall, f.hdr[:], f.body); err != nil {
				p.fail(rc, err)
				return
			}
		drain:
			for {
				select {
				case f := <-rc.writeq:
					if err := rc.fc.WriteFrameParts(msgRoundsCall, f.hdr[:], f.body); err != nil {
						p.fail(rc, err)
						return
					}
				default:
					break drain
				}
			}
			if err := rc.fc.Flush(); err != nil {
				p.fail(rc, err)
				return
			}
			streamFlushes.Inc()
		}
	}
}

// fail tears down one connection and resolves every call registered on it
// with err. Idempotent and safe from any goroutine; the peer itself stays
// usable (the next Call re-dials) unless it was Closed.
func (p *StreamPeer) fail(rc *roundsConn, err error) {
	rc.once.Do(func() {
		close(rc.dead)
		rc.fc.Close()
		streamErrors.Inc()
	})
	p.mu.Lock()
	if p.conn == rc {
		p.conn = nil
	}
	waiters := rc.waiters
	rc.waiters = make(map[uint64]*roundsCall)
	p.mu.Unlock()
	for _, call := range waiters {
		call.err = err
		close(call.done)
	}
}

// Stats implements Peer.
func (p *StreamPeer) Stats() *Stats { return &p.stats }

// Close implements Peer: fails pending calls and refuses further ones.
func (p *StreamPeer) Close() error {
	p.mu.Lock()
	p.closed = true
	rc := p.conn
	p.mu.Unlock()
	if rc != nil {
		p.fail(rc, ErrClosed)
	}
	return nil
}

// roundsDispatcher is the server side: a StreamHandler that decodes call
// frames, dispatches each to the request/response Handler on its own
// goroutine (concurrent calls proceed concurrently — the whole point), and
// queues correlated replies for a writer goroutine that drains bursts into
// the buffered writer and flushes once per burst, not once per reply.
func roundsDispatcher(h Handler) StreamHandler {
	return func(open []byte, fc *FrameConn) {
		writeq := make(chan outFrame, 512)
		werr := make(chan struct{})  // closed when the writer hits an error
		wdone := make(chan struct{}) // closed when the writer exits
		go func() {
			defer close(wdone)
			for {
				f, ok := <-writeq
				if !ok {
					fc.Flush()
					return
				}
				if fc.WriteFrameParts(msgRoundsReply, f.hdr[:], f.body) != nil {
					fc.Close() // unblock the read loop
					close(werr)
					return
				}
			drain:
				for {
					select {
					case f, ok := <-writeq:
						if !ok {
							fc.Flush()
							return
						}
						if fc.WriteFrameParts(msgRoundsReply, f.hdr[:], f.body) != nil {
							fc.Close()
							close(werr)
							return
						}
					default:
						break drain
					}
				}
				if fc.Flush() != nil {
					fc.Close()
					close(werr)
					return
				}
			}
		}()
		var wg sync.WaitGroup
		defer func() {
			wg.Wait()     // all handlers finished: no more writeq senders
			close(writeq) // writer drains the tail, flushes, exits
			<-wdone
		}()
		for {
			msgType, payload, err := fc.ReadFrame()
			if err != nil {
				return
			}
			if msgType != msgRoundsCall {
				fc.WriteFrame(MsgError, []byte("transport: expected rounds call frame"))
				return
			}
			var cf CallFrame
			if err := cf.UnmarshalBinary(payload); err != nil {
				fc.WriteFrame(MsgError, []byte(err.Error()))
				return
			}
			wg.Add(1)
			go func(cf CallFrame) {
				defer wg.Done()
				resp, herr := h(cf.Type, cf.Body)
				var f outFrame
				binary.LittleEndian.PutUint64(f.hdr[:8], cf.Corr)
				if herr != nil {
					f.body = []byte(herr.Error())
				} else {
					f.hdr[8] = 1
					f.body = resp
				}
				select {
				case writeq <- f:
				case <-werr: // writer is gone; the stream is tearing down
				}
			}(cf)
		}
	}
}
