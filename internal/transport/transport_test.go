package transport

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// echoHandler responds with the request payload reversed.
func echoHandler(msgType byte, payload []byte) ([]byte, error) {
	if msgType == 9 {
		return nil, errors.New("boom")
	}
	out := make([]byte, len(payload))
	for i, b := range payload {
		out[len(payload)-1-i] = b
	}
	return out, nil
}

func checkPeer(t *testing.T, p Peer) {
	t.Helper()
	resp, err := p.Call(1, []byte("hello"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(resp) != "olleh" {
		t.Errorf("resp = %q", resp)
	}
	// Error propagation.
	if _, err := p.Call(9, []byte("x")); err == nil {
		t.Error("remote error not propagated")
	}
	// Stats counted.
	st := p.Stats().Snapshot()
	if st.MsgsSent < 2 || st.BytesSent == 0 {
		t.Errorf("stats not counted: %+v", st)
	}
}

func TestMemPeer(t *testing.T) {
	p := NewMemPeer(echoHandler)
	checkPeer(t, p)
	st := p.Stats().Snapshot()
	want := uint64(1 + 4 + 5)
	if st.BytesSent != want+uint64(1+4+1) { // "hello" + "x"
		t.Errorf("BytesSent = %d", st.BytesSent)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Call(1, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Call after close: %v", err)
	}
}

func TestTCPPlain(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", nil, echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p, err := Dial(srv.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	checkPeer(t, p)
}

func TestTCPTLS(t *testing.T) {
	serverCfg, clientCfg, err := SelfSignedTLS("127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Listen("127.0.0.1:0", serverCfg, echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p, err := Dial(srv.Addr().String(), clientCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	checkPeer(t, p)
}

func TestTCPLargePayload(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", nil, echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p, err := Dial(srv.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	big := bytes.Repeat([]byte{7}, 1<<20)
	resp, err := p.Call(2, big)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != len(big) {
		t.Errorf("resp len = %d", len(resp))
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", nil, echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := Dial(srv.Addr().String(), nil)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer p.Close()
			for j := 0; j < 20; j++ {
				msg := []byte(fmt.Sprintf("c%d-%d", i, j))
				resp, err := p.Call(1, msg)
				if err != nil {
					t.Errorf("call: %v", err)
					return
				}
				if len(resp) != len(msg) {
					t.Errorf("bad response length")
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestLoopbackPeerNotCounted(t *testing.T) {
	p := &LoopbackPeer{Handler: echoHandler}
	if _, err := p.Call(1, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats().Snapshot(); st.BytesSent != 0 || st.MsgsSent != 0 {
		t.Error("loopback peer counted traffic")
	}
}

func TestFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, 1, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameSize) {
		t.Errorf("writeFrame oversize: %v", err)
	}
}
