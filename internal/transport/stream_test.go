package transport

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestStreamEcho drives the streaming mode end to end: a connection opens a
// stream, pipelines several frames without waiting, and reads the echoes
// back in order.
func TestStreamEcho(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", nil, func(msgType byte, payload []byte) ([]byte, error) {
		return payload, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.OnStream(func(open []byte, conn *FrameConn) {
		if string(open) != "echo/1" {
			conn.WriteFrame(MsgError, []byte("bad subprotocol"))
			conn.Flush()
			return
		}
		for {
			msgType, payload, err := conn.ReadFrame()
			if err != nil {
				return
			}
			if err := conn.WriteFrame(msgType, payload); err != nil {
				return
			}
			if err := conn.Flush(); err != nil {
				return
			}
		}
	})

	fc, err := DialStream(srv.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	if err := fc.WriteFrame(MsgStreamOpen, []byte("echo/1")); err != nil {
		t.Fatal(err)
	}
	const n = 32
	for i := 0; i < n; i++ {
		if err := fc.WriteFrame(0x10, []byte(fmt.Sprintf("frame-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := fc.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		msgType, payload, err := fc.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if msgType != 0x10 || !bytes.Equal(payload, []byte(fmt.Sprintf("frame-%d", i))) {
			t.Fatalf("frame %d: got type %d payload %q", i, msgType, payload)
		}
	}
}

// TestStreamOpenWithoutHandler checks that a stream open on a server with no
// stream handler is answered with a MsgError frame.
func TestStreamOpenWithoutHandler(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", nil, func(msgType byte, payload []byte) ([]byte, error) {
		return payload, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	fc, err := DialStream(srv.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	if err := fc.WriteFrame(MsgStreamOpen, []byte("any/1")); err != nil {
		t.Fatal(err)
	}
	if err := fc.Flush(); err != nil {
		t.Fatal(err)
	}
	msgType, payload, err := fc.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if msgType != MsgError || !strings.Contains(string(payload), "no stream handler") {
		t.Fatalf("got type %d payload %q, want MsgError", msgType, payload)
	}
}

// TestStreamConcurrentWriters checks WriteFrame's serialization: frames from
// many goroutines must interleave whole, never byte-wise.
func TestStreamConcurrentWriters(t *testing.T) {
	got := make(chan []byte, 256)
	srv, err := Listen("127.0.0.1:0", nil, func(byte, []byte) ([]byte, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.OnStream(func(open []byte, conn *FrameConn) {
		for {
			_, payload, err := conn.ReadFrame()
			if err != nil {
				close(got)
				return
			}
			got <- append([]byte(nil), payload...)
		}
	})

	fc, err := DialStream(srv.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := fc.WriteFrame(MsgStreamOpen, nil); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const writers, frames = 8, 16
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte('a' + w)}, 100+w)
			for i := 0; i < frames; i++ {
				if err := fc.WriteFrame(0x11, payload); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := fc.Flush(); err != nil {
		t.Fatal(err)
	}
	fc.Close()
	count := 0
	for payload := range got {
		if len(payload) < 100 {
			t.Fatalf("torn frame of %d bytes", len(payload))
		}
		for _, b := range payload {
			if b != payload[0] {
				t.Fatalf("interleaved frame %q", payload)
			}
		}
		count++
	}
	if count != writers*frames {
		t.Fatalf("received %d frames, want %d", count, writers*frames)
	}
}
