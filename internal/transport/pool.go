package transport

import (
	"math/bits"
	"sync"
)

// Scratch-buffer arena for the hot marshalling paths, modeled on the field
// package's slab pool but storing *Buf instead of boxed slice headers so a
// full Get/Free round trip is allocation-free. Verification-round requests
// (internal/core's leader) and streamed-frame scratch space draw from here;
// a frame built in a pooled Buf is written straight into the connection's
// bufio writer by WriteFrameParts, so the only copies on the wire path are
// payload → bufio buffer → kernel.
//
// Ownership rule: whoever calls GetBuf must eventually call Free exactly
// once, and must not retain b.B (or anything aliasing it) past the Free.
// Buffers that escape to callers with unknown lifetimes (handler responses,
// decoded frames) must NOT be pooled.

// Buf is a pooled byte buffer. The zero value is usable but unpooled; use
// GetBuf for pooled instances.
type Buf struct {
	// B is the working slice. Callers may reslice and append to it freely;
	// Free files the buffer by B's final capacity.
	B []byte
}

const (
	minBufClass = 8  // 256 B — smaller asks round up
	maxBufClass = 22 // 4 MiB — larger asks bypass the pool
)

// bufPools[i] holds *Buf whose capacity is at least 1<<(minBufClass+i).
var bufPools [maxBufClass - minBufClass + 1]sync.Pool

// bufClass maps a size to the pool index that guarantees capacity for it,
// or -1 when the size bypasses the pool.
func bufClass(n int) int {
	if n <= 1<<minBufClass {
		return 0
	}
	if n > 1<<maxBufClass {
		return -1
	}
	return bits.Len(uint(n-1)) - minBufClass
}

// GetBuf returns a buffer with capacity ≥ n and length 0. Oversized requests
// are served by a plain allocation and recycled opportunistically.
func GetBuf(n int) *Buf {
	c := bufClass(n)
	if c < 0 {
		return &Buf{B: make([]byte, 0, n)}
	}
	if v := bufPools[c].Get(); v != nil {
		b := v.(*Buf)
		b.B = b.B[:0]
		return b
	}
	return &Buf{B: make([]byte, 0, 1<<(minBufClass+c))}
}

// Free returns the buffer to its size class for reuse. The caller must not
// touch b or b.B afterwards. Nil buffers are ignored.
func (b *Buf) Free() {
	if b == nil || b.B == nil {
		return
	}
	// File by the floor class so a pooled entry always satisfies the class's
	// capacity guarantee even after the slice grew past its original class.
	c := bits.Len(uint(cap(b.B))) - 1 - minBufClass
	if c < 0 || c > maxBufClass-minBufClass {
		return // outside the pooled range; let the GC take it
	}
	b.B = b.B[:0]
	bufPools[c].Put(b)
}

// PutBytes recycles a raw slice into the arena. Unlike (*Buf).Free this
// boxes a fresh *Buf (one small allocation), so it is for cold-path
// opportunistic recycling only; hot paths should hold the *Buf.
func PutBytes(p []byte) {
	if cap(p) < 1<<minBufClass {
		return
	}
	c := bits.Len(uint(cap(p))) - 1 - minBufClass
	if c < 0 || c > maxBufClass-minBufClass {
		return
	}
	bufPools[c].Put(&Buf{B: p[:0]})
}
