package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// MaxFrame bounds a single message; larger frames indicate corruption or
// abuse and are rejected.
const MaxFrame = 1 << 28

// Errors returned by transports.
var (
	ErrClosed       = errors.New("transport: connection closed")
	ErrFrameSize    = errors.New("transport: frame exceeds maximum size")
	ErrTypeMismatch = errors.New("transport: response type does not match request")
)

// Handler processes one request message and returns the response payload.
// Handlers must be safe for concurrent use.
type Handler func(msgType byte, payload []byte) ([]byte, error)

// Stats counts traffic through a peer, in payload-plus-framing bytes.
// All fields are accessed atomically.
type Stats struct {
	BytesSent uint64
	BytesRecv uint64
	MsgsSent  uint64
	MsgsRecv  uint64
}

// add records one message of n framed bytes in the given direction.
func (s *Stats) add(sent bool, n int) {
	if sent {
		atomic.AddUint64(&s.BytesSent, uint64(n))
		atomic.AddUint64(&s.MsgsSent, 1)
	} else {
		atomic.AddUint64(&s.BytesRecv, uint64(n))
		atomic.AddUint64(&s.MsgsRecv, 1)
	}
}

// Snapshot returns a consistent copy of the counters.
func (s *Stats) Snapshot() Stats {
	return Stats{
		BytesSent: atomic.LoadUint64(&s.BytesSent),
		BytesRecv: atomic.LoadUint64(&s.BytesRecv),
		MsgsSent:  atomic.LoadUint64(&s.MsgsSent),
		MsgsRecv:  atomic.LoadUint64(&s.MsgsRecv),
	}
}

// Peer is the client side of a request/response channel to one server.
// Implementations are safe for concurrent Call use.
type Peer interface {
	// Call sends a typed request and blocks for the typed response.
	Call(msgType byte, payload []byte) ([]byte, error)
	// Stats exposes the traffic counters for this peer.
	Stats() *Stats
	// Close releases the underlying resources.
	Close() error
}

// frameLen is the framed size of a payload: type byte + length + payload.
func frameLen(payload []byte) int { return 1 + 4 + len(payload) }

// writeFrame writes one tagged frame to w.
func writeFrame(w io.Writer, msgType byte, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameSize
	}
	var hdr [5]byte
	hdr[0] = msgType
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one tagged frame from r. The payload buffer grows
// geometrically from at most 1 MiB rather than trusting the 4-byte length
// up front: a peer that announces a 256 MB frame must actually send the
// bytes before this side commits the memory, so a forged header costs the
// attacker bandwidth instead of costing us an allocation. Frames at or
// below the initial step — every frame the protocol sends in practice —
// still take the single-allocation fast path.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[1:]))
	if n > MaxFrame {
		return 0, nil, ErrFrameSize
	}
	const step = 1 << 20
	if n <= step {
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return 0, nil, err
		}
		return hdr[0], payload, nil
	}
	payload := make([]byte, step)
	read := 0
	for {
		if _, err := io.ReadFull(r, payload[read:]); err != nil {
			return 0, nil, err
		}
		read = len(payload)
		if read == n {
			return hdr[0], payload, nil
		}
		grown := make([]byte, min(2*read, n))
		copy(grown, payload)
		payload = grown
	}
}

// MemPeer is an in-process Peer that invokes a Handler directly while
// accounting the bytes a real network would carry.
type MemPeer struct {
	mu      sync.Mutex
	handler Handler
	stats   Stats
	closed  bool
}

// NewMemPeer wires a Peer directly to a server handler.
func NewMemPeer(h Handler) *MemPeer { return &MemPeer{handler: h} }

// Call implements Peer.
func (p *MemPeer) Call(msgType byte, payload []byte) ([]byte, error) {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	p.stats.add(true, frameLen(payload))
	resp, err := p.handler(msgType, payload)
	if err != nil {
		return nil, err
	}
	p.stats.add(false, frameLen(resp))
	return resp, nil
}

// Stats implements Peer.
func (p *MemPeer) Stats() *Stats { return &p.stats }

// Close implements Peer.
func (p *MemPeer) Close() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	return nil
}

// LoopbackPeer calls a handler directly without accounting; leaders use it
// for their own co-located server so that self-traffic does not pollute the
// network measurements.
type LoopbackPeer struct {
	Handler Handler
	stats   Stats
}

// Call implements Peer.
func (p *LoopbackPeer) Call(msgType byte, payload []byte) ([]byte, error) {
	return p.Handler(msgType, payload)
}

// Stats implements Peer.
func (p *LoopbackPeer) Stats() *Stats { return &p.stats }

// Close implements Peer.
func (p *LoopbackPeer) Close() error { return nil }

// MsgError is the reserved frame type wrapping handler failures for
// transmission: its payload is the error string. Streaming subprotocols use
// it too, to report a fatal stream error before closing.
const MsgError byte = 0xFF

// MsgPing is the reserved liveness probe: TCP servers echo the frame back
// (payload included) from the read loop itself, before any handler dispatch,
// so a ping measures transport liveness even when the application handler is
// busy. Cluster health checks (internal/cluster) ride on it.
const MsgPing byte = 0xFC

func encodeHandlerResult(msgType byte, resp []byte, err error) (byte, []byte) {
	if err != nil {
		return MsgError, []byte(err.Error())
	}
	return msgType, resp
}

func decodeCallResult(reqType, respType byte, payload []byte) ([]byte, error) {
	switch respType {
	case reqType:
		return payload, nil
	case MsgError:
		return nil, fmt.Errorf("transport: remote error: %s", payload)
	default:
		return nil, ErrTypeMismatch
	}
}
