package transport

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ProbeFunc checks one target's liveness, returning nil when the target
// answered within timeout. Implementations must honor the timeout themselves
// (RedialPeer.CallTimeout with MsgPing does); the checker additionally
// abandons probes that overrun it.
type ProbeFunc func(timeout time.Duration) error

// HealthConfig tunes a HealthChecker.
type HealthConfig struct {
	// Interval between probes per target (default 250ms). Each tick is
	// jittered by ±JitterFrac so a cluster's checkers do not synchronize
	// into probe bursts.
	Interval time.Duration
	// Timeout bounds one probe (default Interval). A probe that has not
	// answered within it counts as a failure even if it eventually returns:
	// a peer slower than the timeout is operationally down.
	Timeout time.Duration
	// JitterFrac is the ± fraction of Interval applied per tick
	// (default 0.2, clamped to [0, 0.9]).
	JitterFrac float64
	// FailThreshold is how many consecutive failures mark a target down
	// (default 3). One success marks it up again, so a flapping target with
	// any successes inside the window stays up while a dead one converges
	// in FailThreshold·Interval.
	FailThreshold int
	// OnChange observes up/down transitions. It runs on the target's probe
	// goroutine and must not block.
	OnChange func(target int, up bool)
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = c.Interval
	}
	if c.JitterFrac == 0 {
		c.JitterFrac = 0.2
	}
	if c.JitterFrac < 0 {
		c.JitterFrac = 0
	}
	if c.JitterFrac > 0.9 {
		c.JitterFrac = 0.9
	}
	if c.FailThreshold < 1 {
		c.FailThreshold = 3
	}
	return c
}

// healthTarget is one probed peer. fails is only touched by the target's
// probe goroutine; up is read concurrently through Up/View.
type healthTarget struct {
	probe    ProbeFunc
	up       atomic.Bool
	fails    int
	inflight chan error // pending probe result, nil when none outstanding
}

// HealthChecker probes a set of targets on jittered intervals and keeps a
// liveness view: a target is down after FailThreshold consecutive probe
// failures and up again on the first success. A nil ProbeFunc (a member's
// own slot) is permanently up. Targets start optimistically up, so a cluster
// booting in any order does not declare its peers dead before first contact.
type HealthChecker struct {
	cfg     HealthConfig
	targets []*healthTarget
	quit    chan struct{}
	wg      sync.WaitGroup
}

// NewHealthChecker builds a checker over probes (indexed by target). Call
// Start to begin probing.
func NewHealthChecker(probes []ProbeFunc, cfg HealthConfig) *HealthChecker {
	h := &HealthChecker{cfg: cfg.withDefaults(), quit: make(chan struct{})}
	for _, p := range probes {
		t := &healthTarget{probe: p}
		t.up.Store(true)
		h.targets = append(h.targets, t)
	}
	return h
}

// Start launches one probe goroutine per target with a real ProbeFunc.
func (h *HealthChecker) Start() {
	for i, t := range h.targets {
		if t.probe == nil {
			continue
		}
		h.wg.Add(1)
		go h.probeLoop(i, t)
	}
}

// Stop halts probing. In-flight probes are abandoned (their goroutines exit
// when the probe returns).
func (h *HealthChecker) Stop() {
	close(h.quit)
	h.wg.Wait()
}

// Up reports target i's current liveness.
func (h *HealthChecker) Up(i int) bool { return h.targets[i].up.Load() }

// View snapshots liveness across all targets.
func (h *HealthChecker) View() []bool {
	out := make([]bool, len(h.targets))
	for i := range out {
		out[i] = h.Up(i)
	}
	return out
}

// probeLoop drives one target: launch a probe each jittered tick, count it
// failed if it errors or overruns the timeout. An overrunning probe is not
// awaited past its window — its late result is discarded, and no new probe
// launches while one is still pending (so a hung peer accumulates one stuck
// goroutine, not one per tick).
func (h *HealthChecker) probeLoop(i int, t *healthTarget) {
	defer h.wg.Done()
	rng := rand.New(rand.NewSource(int64(i)*0x9E3779B9 + time.Now().UnixNano()))
	timer := time.NewTimer(h.jitter(rng, h.cfg.Interval/4))
	defer timer.Stop()
	for {
		select {
		case <-h.quit:
			return
		case <-timer.C:
		}
		h.probeOnce(i, t)
		timer.Reset(h.jitter(rng, h.cfg.Interval))
	}
}

// probeOnce runs (or accounts for) one probe window.
func (h *HealthChecker) probeOnce(i int, t *healthTarget) {
	if t.inflight != nil {
		// A previous probe is still running. If it finished since the last
		// tick, discard its stale result; if it is still stuck, this window
		// is a failure and we keep waiting rather than piling on.
		select {
		case <-t.inflight:
			t.inflight = nil
		default:
			h.record(i, t, false)
			return
		}
	}
	ch := make(chan error, 1)
	t.inflight = ch
	probe := t.probe
	timeout := h.cfg.Timeout
	go func() { ch <- probe(timeout) }()
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	select {
	case err := <-ch:
		t.inflight = nil
		h.record(i, t, err == nil)
	case <-deadline.C:
		h.record(i, t, false) // slow is down; result discarded next tick
	case <-h.quit:
	}
}

// record applies one probe outcome to the target's consecutive-failure
// counter and fires OnChange on transitions.
func (h *HealthChecker) record(i int, t *healthTarget, ok bool) {
	if ok {
		t.fails = 0
		if t.up.CompareAndSwap(false, true) && h.cfg.OnChange != nil {
			h.cfg.OnChange(i, true)
		}
		return
	}
	t.fails++
	if t.fails >= h.cfg.FailThreshold {
		if t.up.CompareAndSwap(true, false) && h.cfg.OnChange != nil {
			h.cfg.OnChange(i, false)
		}
	}
}

// jitter spreads d by ±JitterFrac.
func (h *HealthChecker) jitter(rng *rand.Rand, d time.Duration) time.Duration {
	if h.cfg.JitterFrac == 0 || d <= 0 {
		return d
	}
	f := 1 + h.cfg.JitterFrac*(2*rng.Float64()-1)
	return time.Duration(float64(d) * f)
}
