// Package transport carries the Prio wire protocol between servers (and
// from clients to the leader). The paper's deployment (Section 6.2) runs a
// handful of servers in distinct data centers speaking TLS; this package
// provides that plus the in-process equivalents the benchmarks need:
//
//   - a tagged request/response framing (1-byte type, 4-byte length);
//   - an in-memory implementation for single-process clusters and
//     benchmarks (MemPeer, LoopbackPeer);
//   - a TCP implementation with optional TLS (self-signed, in-memory CA),
//     mirroring the paper's deployment where servers speak TLS to each
//     other (TCPPeer, Server);
//   - per-peer byte counters, which is how Figure 6 (per-server data
//     transfer per submission) is measured rather than estimated;
//   - request coalescing (Coalescer, BatchHandler): concurrent Calls to
//     one peer merge into a single MsgBatched frame per round-trip. The
//     sharded aggregation pipeline (internal/core, docs/PIPELINE.md) runs
//     many leader sessions against the same server set; coalescing keeps
//     their per-round RPCs from queuing head-to-tail on each server
//     connection, the transport-level half of the Appendix-I
//     load-balancing design;
//   - a streaming mode (MsgStreamOpen, StreamHandler, FrameConn): a
//     connection leaves request/response dispatch and hands its raw frames
//     to a subprotocol handler, with buffered, concurrency-safe writes.
//     The streaming ingest subsystem (internal/ingest, docs/INGEST.md)
//     uses it to pipeline many client submissions per connection with
//     asynchronous acks.
package transport
