package transport

import (
	"crypto/tls"
	"net"
	"sync"
	"time"
)

// RedialPeer is a Peer that dials lazily and re-dials after transport-level
// failures, instead of staying dead the way a TCPPeer does once its
// connection breaks. Cluster members use it for their peer links: a server
// that was restarted (the failover drill kills one with SIGKILL) becomes
// reachable again on the next Call without anyone rebuilding the peer set.
//
// Calls are serialized on the connection, like TCPPeer; wrap in a Coalescer
// when concurrent leader sessions share the peer. A remote handler error
// (MsgError response) is a healthy exchange and keeps the connection; only
// dial, write, and read failures drop it.
type RedialPeer struct {
	addr   string
	tlsCfg *tls.Config

	// DialTimeout bounds each connection attempt (default 2s).
	DialTimeout time.Duration

	mu     sync.Mutex
	conn   net.Conn
	stats  Stats
	closed bool
}

// NewRedialPeer builds a re-dialing peer for addr. No connection is made
// until the first Call.
func NewRedialPeer(addr string, tlsCfg *tls.Config) *RedialPeer {
	return &RedialPeer{addr: addr, tlsCfg: tlsCfg, DialTimeout: 2 * time.Second}
}

// Call implements Peer.
func (p *RedialPeer) Call(msgType byte, payload []byte) ([]byte, error) {
	return p.call(msgType, payload, 0)
}

// CallTimeout is Call with a deadline covering the dial (if needed), the
// write, and the read of the response. Health probes use it so a hung peer
// turns into a timely error instead of a stuck checker.
func (p *RedialPeer) CallTimeout(msgType byte, payload []byte, timeout time.Duration) ([]byte, error) {
	return p.call(msgType, payload, timeout)
}

func (p *RedialPeer) call(msgType byte, payload []byte, timeout time.Duration) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	if p.conn == nil {
		dt := p.DialTimeout
		if timeout > 0 && (dt == 0 || timeout < dt) {
			dt = timeout
		}
		conn, err := dialConn(p.addr, p.tlsCfg, dt)
		if err != nil {
			return nil, err
		}
		p.conn = conn
	}
	if timeout > 0 {
		p.conn.SetDeadline(time.Now().Add(timeout))
		defer p.conn.SetDeadline(time.Time{})
	}
	respType, resp, err := p.writeRead(msgType, payload)
	if err != nil {
		// Transport-level failure: drop the connection so the next Call
		// re-dials.
		p.conn.Close()
		p.conn = nil
		return nil, err
	}
	return decodeCallResult(msgType, respType, resp)
}

func (p *RedialPeer) writeRead(msgType byte, payload []byte) (byte, []byte, error) {
	if err := writeFrame(p.conn, msgType, payload); err != nil {
		return 0, nil, err
	}
	p.stats.add(true, frameLen(payload))
	respType, resp, err := readFrame(p.conn)
	if err != nil {
		return 0, nil, err
	}
	p.stats.add(false, frameLen(resp))
	return respType, resp, nil
}

// Stats implements Peer.
func (p *RedialPeer) Stats() *Stats { return &p.stats }

// Close implements Peer: drops any live connection and refuses further Calls.
func (p *RedialPeer) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	if p.conn == nil {
		return nil
	}
	err := p.conn.Close()
	p.conn = nil
	return err
}

// dialConn opens one (possibly TLS) connection with a bounded dial.
func dialConn(addr string, tlsCfg *tls.Config, timeout time.Duration) (net.Conn, error) {
	d := &net.Dialer{Timeout: timeout}
	if tlsCfg != nil {
		return tls.DialWithDialer(d, "tcp", addr, tlsCfg)
	}
	return d.Dial("tcp", addr)
}
