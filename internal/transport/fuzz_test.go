package transport

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// frameBytes builds one wire frame for seeding the fuzz corpus.
func frameBytes(msgType byte, payload []byte) []byte {
	var buf bytes.Buffer
	if err := writeFrame(&buf, msgType, payload); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// callBytes builds a rounds-call payload: u64 correlation ID, inner type,
// body.
func callBytes(corr uint64, inner byte, body []byte) []byte {
	b := make([]byte, 9+len(body))
	binary.LittleEndian.PutUint64(b, corr)
	b[8] = inner
	copy(b[9:], body)
	return b
}

// FuzzFrameDecode drives arbitrary bytes through the stream frame parser and
// the rounds-frame decoders. It asserts three properties: no panic on any
// input, forged length headers fail without committing large allocations
// (readFrame's geometric growth means memory tracks bytes actually present),
// and any payload the decoders accept re-marshals to the identical bytes.
func FuzzFrameDecode(f *testing.F) {
	f.Add(frameBytes(MsgPing, nil))
	f.Add(frameBytes(0x30, callBytes(1, 2, []byte("body"))))
	f.Add(frameBytes(0x31, append(callBytes(7, 1, nil), "reply"...)))
	f.Add(append(frameBytes(1, []byte("a")), frameBytes(2, []byte("b"))...))
	// Forged header: declares a MaxFrame-sized payload that never arrives.
	f.Add([]byte{0x01, 0xff, 0xff, 0xff, 0x0f})
	// Over-limit length must be rejected outright.
	f.Add([]byte{0x01, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			msgType, payload, err := readFrame(r)
			if err != nil {
				break
			}
			// A parsed frame must re-frame to the same wire bytes.
			var buf bytes.Buffer
			if err := writeFrame(&buf, msgType, payload); err != nil {
				t.Fatalf("re-framing a parsed frame: %v", err)
			}

			var cf CallFrame
			if cf.UnmarshalBinary(payload) == nil {
				m, err := cf.MarshalBinary()
				if err != nil {
					t.Fatalf("CallFrame.MarshalBinary: %v", err)
				}
				if !bytes.Equal(m, payload) {
					t.Fatalf("CallFrame round-trip mismatch: %x != %x", m, payload)
				}
			}
			var rf ReplyFrame
			if rf.UnmarshalBinary(payload) == nil {
				m, err := rf.MarshalBinary()
				if err != nil {
					t.Fatalf("ReplyFrame.MarshalBinary: %v", err)
				}
				if !bytes.Equal(m, payload) {
					t.Fatalf("ReplyFrame round-trip mismatch: %x != %x", m, payload)
				}
			}
		}
	})
}
