package transport

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// tagEchoHandler answers every request with msgType ‖ payload, failing on a
// designated type.
func tagEchoHandler(failType byte) Handler {
	return func(msgType byte, payload []byte) ([]byte, error) {
		if msgType == failType {
			return nil, fmt.Errorf("boom %d", msgType)
		}
		return append([]byte{msgType}, payload...), nil
	}
}

func TestCoalescerSingleCallPassthrough(t *testing.T) {
	var calls atomic.Uint64
	h := func(msgType byte, payload []byte) ([]byte, error) {
		calls.Add(1)
		if msgType == MsgBatched {
			t.Error("lone call should not be enveloped")
		}
		return tagEchoHandler(0)(msgType, payload)
	}
	c := NewCoalescer(NewMemPeer(h))
	resp, err := c.Call(7, []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "\x07hi" {
		t.Fatalf("resp = %q", resp)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d", calls.Load())
	}
}

// blockingPeer delays the first underlying Call until released, forcing
// subsequent Calls to pile up in the coalescer.
type blockingPeer struct {
	inner   Peer
	mu      sync.Mutex
	started chan struct{}
	release chan struct{}
	first   bool
	batched atomic.Uint64
}

func (p *blockingPeer) Call(msgType byte, payload []byte) ([]byte, error) {
	p.mu.Lock()
	first := !p.first
	p.first = true
	p.mu.Unlock()
	if first {
		close(p.started)
		<-p.release
	}
	if msgType == MsgBatched {
		p.batched.Add(1)
	}
	return p.inner.Call(msgType, payload)
}

func (p *blockingPeer) Stats() *Stats { return p.inner.Stats() }
func (p *blockingPeer) Close() error  { return p.inner.Close() }

// waitPending spins until n calls sit in the coalescer's queue.
func waitPending(c *Coalescer, n int) {
	for {
		c.mu.Lock()
		queued := len(c.pending)
		c.mu.Unlock()
		if queued >= n {
			return
		}
		runtime.Gosched()
	}
}

func TestCoalescerMergesConcurrentCalls(t *testing.T) {
	h := BatchHandler(tagEchoHandler(0))
	bp := &blockingPeer{
		inner:   NewMemPeer(h),
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
	c := NewCoalescer(bp)

	const waiters = 8
	var wg sync.WaitGroup
	errs := make([]error, waiters+1)
	resps := make([][]byte, waiters+1)

	// One call occupies the underlying connection...
	wg.Add(1)
	go func() {
		defer wg.Done()
		resps[0], errs[0] = c.Call(1, []byte("first"))
	}()
	<-bp.started

	// ...while the rest queue up behind it.
	for i := 1; i <= waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = c.Call(byte(1+i%3), []byte{byte(i)})
		}(i)
	}
	waitPending(c, waiters)
	close(bp.release)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if string(resps[0]) != "\x01first" {
		t.Fatalf("first resp = %q", resps[0])
	}
	for i := 1; i <= waiters; i++ {
		want := string([]byte{byte(1 + i%3), byte(i)})
		if string(resps[i]) != want {
			t.Fatalf("resp %d = %q, want %q", i, resps[i], want)
		}
	}
	if bp.batched.Load() == 0 {
		t.Fatal("no batched envelope was used despite concurrent calls")
	}
}

func TestCoalescerPerEntryErrors(t *testing.T) {
	h := BatchHandler(tagEchoHandler(9))
	bp := &blockingPeer{
		inner:   NewMemPeer(h),
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
	c := NewCoalescer(bp)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Call(1, nil) // occupies the connection
	}()
	<-bp.started

	var okErr, badErr error
	var okResp []byte
	wg.Add(2)
	go func() { defer wg.Done(); okResp, okErr = c.Call(2, []byte("ok")) }()
	go func() { defer wg.Done(); _, badErr = c.Call(9, nil) }()
	waitPending(c, 2) // both must share the envelope before the flusher wakes
	close(bp.release)
	wg.Wait()

	if okErr != nil || string(okResp) != "\x02ok" {
		t.Fatalf("good entry: resp %q err %v", okResp, okErr)
	}
	if badErr == nil || !strings.Contains(badErr.Error(), "boom 9") {
		t.Fatalf("bad entry error = %v", badErr)
	}
}

func TestCoalescerOverTCP(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", nil, tagEchoHandler(9))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	peer, err := Dial(srv.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCoalescer(peer)
	defer c.Close()

	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msgType := byte(1 + i%5)
			if i%7 == 0 {
				msgType = 9 // server-side failure
			}
			resp, err := c.Call(msgType, []byte{byte(i)})
			if msgType == 9 {
				if err == nil || !strings.Contains(err.Error(), "boom") {
					errs[i] = fmt.Errorf("want boom, got resp %q err %v", resp, err)
				}
				return
			}
			if err != nil {
				errs[i] = err
				return
			}
			if len(resp) != 2 || resp[0] != msgType || resp[1] != byte(i) {
				errs[i] = fmt.Errorf("resp = %q", resp)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("call %d: %v", i, err)
		}
	}
}

func TestBatchHandlerRejectsMalformed(t *testing.T) {
	h := BatchHandler(tagEchoHandler(0))
	for _, payload := range [][]byte{
		nil,
		{1, 0, 0},
		{2, 0, 0, 0, 5, 9, 0, 0, 0}, // declares 2 entries, carries a truncated one
	} {
		if _, err := h(MsgBatched, payload); err == nil {
			t.Errorf("payload %v: want error", payload)
		}
	}
}

func TestCoalescerPropagatesTransportError(t *testing.T) {
	p := NewMemPeer(tagEchoHandler(0))
	p.Close()
	c := NewCoalescer(p)
	if _, err := c.Call(1, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}
