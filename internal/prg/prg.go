// Package prg implements the pseudo-random generator used for share
// compression (Appendix I, optimization 1): AES-128 in counter mode keyed by
// a 16-byte seed. A client can replace s-1 of its s additive shares by PRG
// seeds, shrinking an L-element upload from s·L field elements to
// L + O(1) — the 5x bandwidth saving the paper reports for five servers.
package prg

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"io"
)

// SeedSize is the byte length of a PRG seed (an AES-128 key).
const SeedSize = 16

// Seed keys a PRG. Two PRGs built from equal seeds produce identical output.
type Seed [SeedSize]byte

// NewSeed draws a fresh random seed from crypto/rand.
func NewSeed() (Seed, error) {
	var s Seed
	_, err := io.ReadFull(rand.Reader, s[:])
	return s, err
}

// PRG is a deterministic stream of pseudo-random bytes. It implements
// io.Reader and never returns an error from Read.
type PRG struct {
	stream cipher.Stream
}

// New constructs a PRG from seed.
func New(seed Seed) *PRG {
	block, err := aes.NewCipher(seed[:])
	if err != nil {
		// aes.NewCipher only fails on invalid key sizes; SeedSize is valid.
		panic("prg: " + err.Error())
	}
	var iv [aes.BlockSize]byte
	return &PRG{stream: cipher.NewCTR(block, iv[:])}
}

// Read fills p with pseudo-random bytes. It always returns len(p), nil.
func (g *PRG) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	g.stream.XORKeyStream(p, p)
	return len(p), nil
}
