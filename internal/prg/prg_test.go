package prg

import (
	"bytes"
	"testing"
)

func TestDeterministic(t *testing.T) {
	seed := Seed{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	a := make([]byte, 1000)
	b := make([]byte, 1000)
	if _, err := New(seed).Read(a); err != nil {
		t.Fatal(err)
	}
	if _, err := New(seed).Read(b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("same seed produced different streams")
	}
}

func TestSeedSensitivity(t *testing.T) {
	var s1, s2 Seed
	s2[0] = 1
	a := make([]byte, 64)
	b := make([]byte, 64)
	New(s1).Read(a)
	New(s2).Read(b)
	if bytes.Equal(a, b) {
		t.Error("different seeds produced identical streams")
	}
}

func TestChunkedReadsMatchOneShot(t *testing.T) {
	seed, err := NewSeed()
	if err != nil {
		t.Fatal(err)
	}
	one := make([]byte, 256)
	New(seed).Read(one)

	g := New(seed)
	var chunks []byte
	for _, n := range []int{1, 3, 16, 17, 64, 155} {
		buf := make([]byte, n)
		g.Read(buf)
		chunks = append(chunks, buf...)
	}
	if !bytes.Equal(one, chunks) {
		t.Error("chunked reads diverge from one-shot read")
	}
}

func TestOutputOverwritesInput(t *testing.T) {
	seed := Seed{42}
	buf := bytes.Repeat([]byte{0xAA}, 32)
	New(seed).Read(buf)
	ref := make([]byte, 32)
	New(seed).Read(ref)
	if !bytes.Equal(buf, ref) {
		t.Error("Read output depends on prior buffer contents")
	}
}

func TestNewSeedUnique(t *testing.T) {
	a, err := NewSeed()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSeed()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("two fresh seeds are equal")
	}
}
