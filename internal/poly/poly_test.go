package poly

import (
	"crypto/rand"
	"testing"

	"prio/internal/field"
)

func randVec(t *testing.T, n int) []uint64 {
	t.Helper()
	v, err := field.SampleVec(field.NewF64(), rand.Reader, n)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestNTTInverse(t *testing.T) {
	f := field.NewF64()
	for _, logN := range []int{0, 1, 2, 5, 8, 10} {
		d := NewDomain(f, logN)
		a := randVec(t, d.N)
		orig := append([]uint64(nil), a...)
		d.NTT(a)
		d.INTT(a)
		if !field.EqualVec(f, a, orig) {
			t.Errorf("logN=%d: INTT(NTT(a)) != a", logN)
		}
	}
}

func TestNTTMatchesDirectEvaluation(t *testing.T) {
	f := field.NewF64()
	d := NewDomain(f, 4)
	coeffs := randVec(t, d.N)
	evals := append([]uint64(nil), coeffs...)
	d.NTT(evals)
	for j := 0; j < d.N; j++ {
		want := Eval(f, coeffs, d.Point(j))
		if evals[j] != want {
			t.Fatalf("NTT[%d] = %d, want %d", j, evals[j], want)
		}
	}
}

func TestNTTMultiplicationMatchesNaive(t *testing.T) {
	f := field.NewF64()
	d := NewDomain(f, 5) // N = 32
	a := randVec(t, 10)
	b := randVec(t, 12)
	want := MulNaive(f, a, b)

	// pad to N, NTT, pointwise multiply, INTT
	pa := make([]uint64, d.N)
	pb := make([]uint64, d.N)
	copy(pa, a)
	copy(pb, b)
	d.NTT(pa)
	d.NTT(pb)
	for i := range pa {
		pa[i] = f.Mul(pa[i], pb[i])
	}
	d.INTT(pa)
	for i := range want {
		if pa[i] != want[i] {
			t.Fatalf("product coeff %d = %d, want %d", i, pa[i], want[i])
		}
	}
	for i := len(want); i < d.N; i++ {
		if pa[i] != 0 {
			t.Fatalf("product coeff %d = %d, want 0", i, pa[i])
		}
	}
}

func TestNTTF128(t *testing.T) {
	f := field.NewF128()
	d := NewDomain(f, 6)
	a, err := field.SampleVec(f, rand.Reader, d.N)
	if err != nil {
		t.Fatal(err)
	}
	orig := append([]field.U128(nil), a...)
	d.NTT(a)
	d.INTT(a)
	if !field.EqualVec(f, a, orig) {
		t.Error("F128 INTT(NTT(a)) != a")
	}
}

func TestNTTFP87(t *testing.T) {
	f := field.NewFP87()
	d := NewDomain(f, 4)
	a, err := field.SampleVec(f, rand.Reader, d.N)
	if err != nil {
		t.Fatal(err)
	}
	before := make([]string, len(a))
	for i, v := range a {
		before[i] = v.String()
	}
	d.NTT(a)
	d.INTT(a)
	for i, v := range a {
		if v.String() != before[i] {
			t.Fatalf("FP87 INTT(NTT(a))[%d] = %v, want %v", i, v, before[i])
		}
	}
}

func TestEvalWeights(t *testing.T) {
	f := field.NewF64()
	d := NewDomain(f, 5)
	coeffs := randVec(t, d.N)
	evals := append([]uint64(nil), coeffs...)
	d.NTT(evals)

	for _, r := range []uint64{0, 1, 2, 999, field.ModulusF64 - 1} {
		w := d.EvalWeights(r)
		got := field.InnerProduct(f, w, evals)
		want := Eval(f, coeffs, r)
		if got != want {
			t.Errorf("r=%d: weights eval = %d, want %d", r, got, want)
		}
	}
}

func TestEvalWeightsInDomain(t *testing.T) {
	f := field.NewF64()
	d := NewDomain(f, 4)
	coeffs := randVec(t, d.N)
	evals := append([]uint64(nil), coeffs...)
	d.NTT(evals)
	// r = w^5 lies in the domain; weights must pick out evals[5].
	r := d.Point(5)
	w := d.EvalWeights(r)
	got := field.InnerProduct(f, w, evals)
	if got != evals[5] {
		t.Errorf("in-domain eval = %d, want %d", got, evals[5])
	}
}

func TestEvalWeightsLinearOverShares(t *testing.T) {
	// The verifier applies weights to *shares*; check linearity:
	// weights·(x+y) == weights·x + weights·y.
	f := field.NewF64()
	d := NewDomain(f, 3)
	x := randVec(t, d.N)
	y := randVec(t, d.N)
	sum := append([]uint64(nil), x...)
	field.AddVec(f, sum, y)
	w := d.EvalWeights(12345)
	lhs := field.InnerProduct(f, w, sum)
	rhs := f.Add(field.InnerProduct(f, w, x), field.InnerProduct(f, w, y))
	if lhs != rhs {
		t.Error("evaluation weights are not linear")
	}
}

func TestBatchInv(t *testing.T) {
	f := field.NewF64()
	a := []uint64{1, 2, 3, 0, 12345, field.ModulusF64 - 1, 0, 7}
	inv := BatchInv(f, a)
	for i, v := range a {
		if v == 0 {
			if inv[i] != 0 {
				t.Errorf("BatchInv of zero = %d, want 0", inv[i])
			}
			continue
		}
		if f.Mul(v, inv[i]) != 1 {
			t.Errorf("a[%d]*inv = %d, want 1", i, f.Mul(v, inv[i]))
		}
	}
	if got := BatchInv(f, nil); len(got) != 0 {
		t.Error("BatchInv(nil) should be empty")
	}
}

func TestInterpolate(t *testing.T) {
	f := field.NewF64()
	coeffs := []uint64{5, 0, 3, 7} // 5 + 3x^2 + 7x^3
	xs := []uint64{1, 2, 3, 4}
	ys := make([]uint64, len(xs))
	for i, x := range xs {
		ys[i] = Eval(f, coeffs, x)
	}
	got := Interpolate(f, xs, ys)
	if !field.EqualVec(f, got, coeffs) {
		t.Errorf("Interpolate = %v, want %v", got, coeffs)
	}
}

func TestInterpolateRandom(t *testing.T) {
	f := field.NewF64()
	for n := 1; n <= 12; n++ {
		xs := make([]uint64, n)
		for i := range xs {
			xs[i] = uint64(i * i * 3) // distinct
		}
		ys := randVec(t, n)
		coeffs := Interpolate(f, xs, ys)
		if len(coeffs) != n {
			t.Fatalf("n=%d: got %d coefficients", n, len(coeffs))
		}
		for i := range xs {
			if got := Eval(f, coeffs, xs[i]); got != ys[i] {
				t.Fatalf("n=%d: P(%d) = %d, want %d", n, xs[i], got, ys[i])
			}
		}
	}
}

func TestInterpolateAgainstNTT(t *testing.T) {
	// Interpolating over the NTT domain must agree with INTT.
	f := field.NewF64()
	d := NewDomain(f, 3)
	ys := randVec(t, d.N)
	xs := make([]uint64, d.N)
	for i := range xs {
		xs[i] = d.Point(i)
	}
	want := Interpolate(f, xs, ys)
	got := append([]uint64(nil), ys...)
	d.INTT(got)
	if !field.EqualVec(f, got, want) {
		t.Error("INTT disagrees with reference interpolation")
	}
}

func TestEvalEmpty(t *testing.T) {
	f := field.NewF64()
	if Eval(f, nil, 5) != 0 {
		t.Error("Eval of empty polynomial should be 0")
	}
	if MulNaive(f, nil, []uint64{1}) != nil {
		t.Error("MulNaive with empty factor should be nil")
	}
}
