package poly

import (
	"crypto/rand"
	"testing"
	"testing/quick"

	"prio/internal/field"
)

func TestNTTLinearityQuick(t *testing.T) {
	// NTT(a + k·b) == NTT(a) + k·NTT(b): the property that lets servers
	// evaluate polynomial *shares* with the same machinery.
	f := field.NewF64()
	d := NewDomain(f, 5)
	err := quick.Check(func(seedA, seedB []uint64, k uint64) bool {
		if len(seedA) == 0 || len(seedB) == 0 {
			return true
		}
		k %= field.ModulusF64
		a := make([]uint64, d.N)
		b := make([]uint64, d.N)
		for i := 0; i < d.N; i++ {
			a[i] = seedA[i%len(seedA)] % field.ModulusF64
			b[i] = seedB[i%len(seedB)] % field.ModulusF64
		}
		comb := make([]uint64, d.N)
		for i := range comb {
			comb[i] = f.Add(a[i], f.Mul(k, b[i]))
		}
		d.NTT(a)
		d.NTT(b)
		d.NTT(comb)
		for i := range comb {
			if comb[i] != f.Add(a[i], f.Mul(k, b[i])) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInterpolateEvalQuick(t *testing.T) {
	f := field.NewF64()
	err := quick.Check(func(ys []uint64) bool {
		n := len(ys)
		if n == 0 || n > 10 {
			return true
		}
		xs := make([]uint64, n)
		for i := range xs {
			xs[i] = uint64(1000 + 13*i) // distinct
		}
		vals := make([]uint64, n)
		for i, y := range ys {
			vals[i] = y % field.ModulusF64
		}
		coeffs := Interpolate(f, xs, vals)
		for i := range xs {
			if Eval(f, coeffs, xs[i]) != vals[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEvalWeightsMatchHornerQuick(t *testing.T) {
	f := field.NewF64()
	d := NewDomain(f, 4)
	err := quick.Check(func(coeffSeed []uint64, r uint64) bool {
		if len(coeffSeed) == 0 {
			return true
		}
		r %= field.ModulusF64
		coeffs := make([]uint64, d.N)
		for i := range coeffs {
			coeffs[i] = coeffSeed[i%len(coeffSeed)] % field.ModulusF64
		}
		evals := append([]uint64(nil), coeffs...)
		d.NTT(evals)
		w := d.EvalWeights(r)
		return field.InnerProduct(f, w, evals) == Eval(f, coeffs, r)
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDomainPointPeriodicity(t *testing.T) {
	f := field.NewF64()
	d := NewDomain(f, 3)
	for i := 0; i < d.N; i++ {
		if d.Point(i) != d.Point(i+d.N) {
			t.Fatalf("Point not periodic at %d", i)
		}
	}
	// Points are distinct within a period.
	seen := map[uint64]bool{}
	for i := 0; i < d.N; i++ {
		if seen[d.Point(i)] {
			t.Fatalf("duplicate domain point at %d", i)
		}
		seen[d.Point(i)] = true
	}
}

func TestBatchInvMatchesInvQuick(t *testing.T) {
	f := field.NewF64()
	err := quick.Check(func(vals []uint64) bool {
		a := make([]uint64, len(vals))
		for i, v := range vals {
			a[i] = v % field.ModulusF64
		}
		inv := BatchInv(f, a)
		for i := range a {
			if inv[i] != f.Inv(a[i]) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTransformPanicsOnWrongLength(t *testing.T) {
	f := field.NewF64()
	d := NewDomain(f, 3)
	defer func() {
		if recover() == nil {
			t.Error("NTT accepted wrong-length input")
		}
	}()
	d.NTT(make([]uint64, d.N-1))
}

func TestF128DomainAgainstReference(t *testing.T) {
	f := field.NewF128()
	d := NewDomain(f, 3)
	coeffs, err := field.SampleVec(f, rand.Reader, d.N)
	if err != nil {
		t.Fatal(err)
	}
	evals := append([]field.U128(nil), coeffs...)
	d.NTT(evals)
	for j := 0; j < d.N; j++ {
		want := Eval(f, coeffs, d.Point(j))
		if !f.Equal(evals[j], want) {
			t.Fatalf("F128 NTT[%d] mismatch", j)
		}
	}
}
