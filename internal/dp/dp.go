// Package dp implements the differential-privacy extension discussed in
// Section 7: before publishing, each server adds noise to its accumulator so
// that the released aggregate is differentially private even though Prio
// itself computes exact sums. Because every server adds its own noise and
// accumulators are only ever revealed in sum, no single server sees the
// un-noised aggregate as long as one server is honest (the Dwork et al.
// distributed-noise approach the paper cites).
//
// Noise is two-sided geometric (discrete Laplace), the standard integer
// mechanism: adding Z with Pr[Z = k] ∝ exp(−|k|/b), b = Δ/ε, gives
// ε-differential privacy for sensitivity-Δ counts. With s servers each
// adding independent noise the released value carries s noise draws; the
// guarantee degrades gracefully and holds with parameter ε provided at
// least one server's noise survives.
package dp

import (
	"crypto/rand"
	"errors"
	"io"
	"math"
	"math/big"

	"prio/internal/field"
)

// Params configures the mechanism.
type Params struct {
	// Epsilon is the privacy budget per released component.
	Epsilon float64
	// Sensitivity is the most one client can change a component (1 for
	// counts and histograms; 2^b for b-bit sums).
	Sensitivity float64
}

// Valid reports whether the parameters are usable.
func (p Params) Valid() error {
	if p.Epsilon <= 0 || math.IsNaN(p.Epsilon) || math.IsInf(p.Epsilon, 0) {
		return errors.New("dp: epsilon must be positive and finite")
	}
	if p.Sensitivity <= 0 {
		return errors.New("dp: sensitivity must be positive")
	}
	return nil
}

// SampleDiscreteLaplace draws Z with Pr[Z = k] ∝ exp(−|k|·ε/Δ) as the
// difference of two geometric variables, using rejection-free inverse
// sampling from rnd (crypto/rand if nil).
func SampleDiscreteLaplace(rnd io.Reader, p Params) (int64, error) {
	if err := p.Valid(); err != nil {
		return 0, err
	}
	if rnd == nil {
		rnd = rand.Reader
	}
	alpha := math.Exp(-p.Epsilon / p.Sensitivity) // geometric parameter
	g1, err := sampleGeometric(rnd, alpha)
	if err != nil {
		return 0, err
	}
	g2, err := sampleGeometric(rnd, alpha)
	if err != nil {
		return 0, err
	}
	return g1 - g2, nil
}

// sampleGeometric draws G ≥ 0 with Pr[G = k] = (1−α)α^k by inverse CDF over
// a uniform 53-bit draw.
func sampleGeometric(rnd io.Reader, alpha float64) (int64, error) {
	u, err := uniform53(rnd)
	if err != nil {
		return 0, err
	}
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	// G = floor(log(1-u) / log(alpha))
	g := math.Floor(math.Log1p(-u) / math.Log(alpha))
	if g < 0 || math.IsNaN(g) || math.IsInf(g, 0) {
		return 0, nil
	}
	if g > math.MaxInt32 {
		g = math.MaxInt32 // tail clamp; probability astronomically small
	}
	return int64(g), nil
}

// uniform53 draws a uniform float in [0, 1) with 53 bits of precision.
func uniform53(rnd io.Reader) (float64, error) {
	max := new(big.Int).Lsh(big.NewInt(1), 53)
	v, err := rand.Int(rnd, max)
	if err != nil {
		return 0, err
	}
	f, _ := new(big.Float).SetInt(v).Float64()
	return f / float64(1<<53), nil
}

// NoiseVector samples one discrete-Laplace noise value per aggregate
// component, mapped into the field (negative noise becomes p − |z|). Servers
// pass the result to core.Server.AddNoise before publishing.
func NoiseVector[Fd field.Field[E], E any](f Fd, rnd io.Reader, k int, p Params) ([]E, error) {
	out := make([]E, k)
	for i := range out {
		z, err := SampleDiscreteLaplace(rnd, p)
		if err != nil {
			return nil, err
		}
		out[i] = f.FromInt64(z)
	}
	return out, nil
}
