package dp

import (
	"errors"
	"math"
	"sync"
	"testing"
)

func TestBudgetSpendRefuse(t *testing.T) {
	b, err := NewBudget(1.0, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		got, err := b.Spend(0.25)
		if err != nil || got != 0.25 {
			t.Fatalf("spend %d: got %v, %v", i, got, err)
		}
	}
	if got := b.Spent(); got != 1.0 {
		t.Fatalf("Spent = %v, want 1.0", got)
	}
	if got := b.Remaining(); got != 0 {
		t.Fatalf("Remaining = %v, want 0", got)
	}
	got, err := b.Spend(0.25)
	if !errors.Is(err, ErrBudgetExhausted) || got != 0 {
		t.Fatalf("over-cap spend: got %v, %v; want 0, ErrBudgetExhausted", got, err)
	}
	if b.Refused() != 1 {
		t.Fatalf("Refused = %d, want 1", b.Refused())
	}
	// Refusal deducted nothing.
	if b.Spent() != 1.0 {
		t.Fatalf("Spent after refusal = %v, want 1.0", b.Spent())
	}
}

func TestBudgetClampTrimsFinalGrant(t *testing.T) {
	b, err := NewBudget(1.0, true)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := b.Spend(0.8); err != nil || got != 0.8 {
		t.Fatalf("first spend: %v, %v", got, err)
	}
	// Overshooting request is trimmed to the remainder, not refused.
	got, err := b.Spend(0.8)
	if err != nil {
		t.Fatalf("clamped spend errored: %v", err)
	}
	if math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("clamped grant = %v, want 0.2", got)
	}
	// Now truly empty: even clamp mode refuses.
	if _, err := b.Spend(0.1); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("empty clamp spend: err = %v, want ErrBudgetExhausted", err)
	}
	if b.Refused() != 1 {
		t.Fatalf("Refused = %d, want 1", b.Refused())
	}
}

func TestBudgetNilUnlimited(t *testing.T) {
	var b *Budget
	got, err := b.Spend(5)
	if err != nil || got != 5 {
		t.Fatalf("nil spend: %v, %v", got, err)
	}
	if !math.IsInf(b.Cap(), 1) || !math.IsInf(b.Remaining(), 1) {
		t.Fatal("nil budget should be unlimited")
	}
	if b.Spent() != 0 || b.Refused() != 0 {
		t.Fatal("nil budget tracks nothing")
	}
	b.Restore(3) // must not panic
}

func TestBudgetRejectsBadInputs(t *testing.T) {
	if _, err := NewBudget(0, false); err == nil {
		t.Error("zero cap accepted")
	}
	if _, err := NewBudget(math.Inf(1), false); err == nil {
		t.Error("infinite cap accepted")
	}
	b, _ := NewBudget(1, false)
	for _, eps := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := b.Spend(eps); err == nil {
			t.Errorf("Spend(%v) accepted", eps)
		}
	}
	if b.Spent() != 0 {
		t.Fatalf("bad spends deducted budget: %v", b.Spent())
	}
}

func TestBudgetRestore(t *testing.T) {
	b, _ := NewBudget(2.0, false)
	b.Restore(1.5)
	if b.Spent() != 1.5 {
		t.Fatalf("Spent = %v, want 1.5", b.Spent())
	}
	if _, err := b.Spend(1.0); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("restored ledger did not enforce cap: %v", err)
	}
	if got, err := b.Spend(0.5); err != nil || got != 0.5 {
		t.Fatalf("spend within restored remainder: %v, %v", got, err)
	}
	// Out-of-range restores clamp rather than corrupt the ledger.
	b.Restore(99)
	if b.Spent() != 2.0 {
		t.Fatalf("over-cap restore: Spent = %v, want 2.0", b.Spent())
	}
	b.Restore(-1)
	if b.Spent() != 0 {
		t.Fatalf("negative restore: Spent = %v, want 0", b.Spent())
	}
}

func TestBudgetConcurrentSpendNeverOvershoots(t *testing.T) {
	b, _ := NewBudget(10.0, false)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var granted float64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if g, err := b.Spend(0.05); err == nil {
					mu.Lock()
					granted += g
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if granted > 10.0+1e-9 {
		t.Fatalf("granted %v past cap 10", granted)
	}
	if math.Abs(b.Spent()-granted) > 1e-9 {
		t.Fatalf("ledger %v != granted %v", b.Spent(), granted)
	}
}
