package dp

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// ErrBudgetExhausted is returned by Budget.Spend when granting the request
// would push cumulative ε past the configured cap (and clamping is either
// disabled or has nothing left to grant).
var ErrBudgetExhausted = errors.New("dp: privacy budget exhausted")

// Budget is a linear-composition privacy accountant for repeated releases
// over the same population. Under sequential composition the ε of k releases
// add, so a deployment that publishes every window must budget a total ε and
// stop (or degrade) once it is spent — dp.Params alone validates a single
// release and enforces nothing across them.
//
// Spend is the only mutating entry point on the release path: each window
// publish spends its per-release ε and the accountant refuses once the cap
// would be exceeded. With clamping enabled the final grant is trimmed to
// whatever remains (a smaller ε, i.e. *more* noise — degrading accuracy, not
// privacy), and only a fully empty budget refuses.
//
// A nil *Budget is valid and unlimited: every Spend grants in full. All
// methods are safe for concurrent use.
type Budget struct {
	mu      sync.Mutex
	cap     float64
	clamp   bool
	spent   float64
	refused uint64
}

// NewBudget returns an accountant with the given total ε cap. When clamp is
// true, a Spend that would overshoot is trimmed to the remaining budget
// instead of refused (callers should log the degradation loudly; the grant
// is still ε-DP, just noisier than requested).
func NewBudget(cap float64, clamp bool) (*Budget, error) {
	if cap <= 0 || math.IsNaN(cap) || math.IsInf(cap, 0) {
		return nil, errors.New("dp: budget cap must be positive and finite")
	}
	return &Budget{cap: cap, clamp: clamp}, nil
}

// Spend requests eps from the budget and returns the ε actually granted.
// The granted value (which equals eps unless clamping trimmed it) is what
// the caller must use as the release's noise parameter. On refusal the
// granted value is 0, the error is ErrBudgetExhausted, and nothing was
// deducted — the caller must not release.
func (b *Budget) Spend(eps float64) (float64, error) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return 0, errors.New("dp: spend epsilon must be positive and finite")
	}
	if b == nil {
		return eps, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	remaining := b.cap - b.spent
	switch {
	case eps <= remaining:
		b.spent += eps
		return eps, nil
	case b.clamp && remaining > 0:
		b.spent = b.cap
		return remaining, nil
	default:
		b.refused++
		return 0, fmt.Errorf("%w: spent %.6g of cap %.6g, requested %.6g",
			ErrBudgetExhausted, b.spent, b.cap, eps)
	}
}

// Spent returns cumulative ε granted so far (0 for a nil budget).
func (b *Budget) Spent() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.spent
}

// Cap returns the configured total ε (+Inf for a nil budget).
func (b *Budget) Cap() float64 {
	if b == nil {
		return math.Inf(1)
	}
	return b.cap
}

// Remaining returns the ε still grantable (+Inf for a nil budget).
func (b *Budget) Remaining() float64 {
	if b == nil {
		return math.Inf(1)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if r := b.cap - b.spent; r > 0 {
		return r
	}
	return 0
}

// Refused returns how many Spend calls were turned away.
func (b *Budget) Refused() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.refused
}

// Restore sets cumulative spend to the given value, clamped to [0, cap] —
// the checkpoint-recovery path: a restarted server must resume the ledger
// where it left off, or a crash loop would reset the budget and quietly
// break the composition guarantee.
func (b *Budget) Restore(spent float64) {
	if b == nil {
		return
	}
	if math.IsNaN(spent) || spent < 0 {
		spent = 0
	}
	if spent > b.cap {
		spent = b.cap
	}
	b.mu.Lock()
	b.spent = spent
	b.mu.Unlock()
}
