package dp

import (
	"math"
	"testing"

	"prio/internal/field"
)

func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{Epsilon: 0, Sensitivity: 1},
		{Epsilon: -1, Sensitivity: 1},
		{Epsilon: math.Inf(1), Sensitivity: 1},
		{Epsilon: 1, Sensitivity: 0},
	}
	for i, p := range bad {
		if p.Valid() == nil {
			t.Errorf("params %d accepted", i)
		}
		if _, err := SampleDiscreteLaplace(nil, p); err == nil {
			t.Errorf("sample with bad params %d succeeded", i)
		}
	}
	if (Params{Epsilon: 0.5, Sensitivity: 1}).Valid() != nil {
		t.Error("good params rejected")
	}
}

func TestNoiseDistributionShape(t *testing.T) {
	p := Params{Epsilon: 1, Sensitivity: 1}
	const n = 20000
	var sum, sumAbs float64
	zero := 0
	for i := 0; i < n; i++ {
		z, err := SampleDiscreteLaplace(nil, p)
		if err != nil {
			t.Fatal(err)
		}
		sum += float64(z)
		sumAbs += math.Abs(float64(z))
		if z == 0 {
			zero++
		}
	}
	mean := sum / n
	if math.Abs(mean) > 0.1 {
		t.Errorf("noise mean = %v, want ≈0", mean)
	}
	// For two-sided geometric with α=e^-1: E|Z| = 2α/(1-α²) ≈ 0.85.
	eAbs := sumAbs / n
	if eAbs < 0.6 || eAbs > 1.1 {
		t.Errorf("E|Z| = %v, want ≈0.85", eAbs)
	}
	// Pr[Z=0] = (1-α)/(1+α) ≈ 0.462.
	p0 := float64(zero) / n
	if p0 < 0.40 || p0 < 0.0 || p0 > 0.53 {
		t.Errorf("Pr[Z=0] = %v, want ≈0.46", p0)
	}
}

func TestSmallerEpsilonMeansMoreNoise(t *testing.T) {
	const n = 5000
	absFor := func(eps float64) float64 {
		var sumAbs float64
		for i := 0; i < n; i++ {
			z, err := SampleDiscreteLaplace(nil, Params{Epsilon: eps, Sensitivity: 1})
			if err != nil {
				t.Fatal(err)
			}
			sumAbs += math.Abs(float64(z))
		}
		return sumAbs / n
	}
	if absFor(0.1) <= absFor(2.0) {
		t.Error("noise did not grow as epsilon shrank")
	}
}

func TestNoiseVector(t *testing.T) {
	f := field.NewF64()
	vec, err := NoiseVector(f, nil, 16, Params{Epsilon: 1, Sensitivity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 16 {
		t.Fatalf("len = %d", len(vec))
	}
	// Noise must be "small" in the signed sense: either < 2^32 or within
	// 2^32 of p (negative values wrap).
	for _, v := range vec {
		neg := field.ModulusF64 - v
		if v > 1<<32 && neg > 1<<32 {
			t.Errorf("implausibly large noise value %d", v)
		}
	}
}
