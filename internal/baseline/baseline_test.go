package baseline

import (
	"testing"

	"prio/internal/field"
	"prio/internal/transport"
)

func TestNoPrivEndToEnd(t *testing.T) {
	f := field.NewF64()
	srv, err := NewNoPrivServer(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	peer := transport.NewMemPeer(srv.Handler())
	want := []uint64{0, 0, 0, 0}
	for c := 0; c < 10; c++ {
		vec := []uint64{uint64(c), 1, 0, uint64(c * c)}
		for i := range vec {
			want[i] += vec[i]
		}
		blob, err := BuildSubmission(f, srv.PublicKey(), vec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := peer.Call(MsgSubmit, blob); err != nil {
			t.Fatal(err)
		}
	}
	agg, n := srv.Aggregate()
	if n != 10 {
		t.Fatalf("count = %d", n)
	}
	if !field.EqualVec(f, agg, want) {
		t.Errorf("aggregate = %v, want %v", agg, want)
	}
	srv.Reset()
	agg, n = srv.Aggregate()
	if n != 0 || !f.IsZero(agg[0]) {
		t.Error("Reset did not clear the accumulator")
	}
}

func TestNoPrivRejectsMalformed(t *testing.T) {
	f := field.NewF64()
	srv, err := NewNoPrivServer(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Not a sealed box at all.
	if _, err := srv.Handle(MsgSubmit, []byte("junk")); err == nil {
		t.Error("accepted junk payload")
	}
	// Wrong vector length inside a valid box.
	blob, err := BuildSubmission(f, srv.PublicKey(), []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Handle(MsgSubmit, blob); err == nil {
		t.Error("accepted short vector")
	}
	// Unknown message type.
	if _, err := srv.Handle(99, nil); err == nil {
		t.Error("accepted unknown message type")
	}
	// Direct submit length check.
	if err := srv.Submit([]uint64{1}); err == nil {
		t.Error("Submit accepted wrong length")
	}
}
