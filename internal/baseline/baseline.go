// Package baseline implements the "No privacy" comparison point of the
// paper's evaluation (Section 6.1): a single server that accepts encrypted
// client submissions directly and aggregates them in the clear — no secret
// sharing, no proofs, no privacy guarantees whatsoever. Every Prio
// measurement in Figures 4, 5, 8 and Table 9 is reported relative to this
// scheme.
//
// (The "No robustness" baseline is core.ModeNoRobust: it shares all of
// Prio's pipeline except verification.)
package baseline

import (
	"errors"
	"fmt"
	"sync"

	"prio/internal/field"
	"prio/internal/sealbox"
	"prio/internal/transport"
)

// MsgSubmit is the only message type the no-privacy server understands.
const MsgSubmit byte = 1

// NoPrivServer accumulates plaintext vectors uploaded over sealed boxes
// (transport encryption only — the server sees every client's data).
type NoPrivServer[Fd field.Field[E], E any] struct {
	f    Fd
	k    int
	priv *sealbox.PrivateKey
	pub  *sealbox.PublicKey

	mu    sync.Mutex
	acc   []E
	count uint64
}

// NewNoPrivServer builds the server for k-element submissions.
func NewNoPrivServer[Fd field.Field[E], E any](f Fd, k int) (*NoPrivServer[Fd, E], error) {
	pub, priv, err := sealbox.GenerateKey()
	if err != nil {
		return nil, err
	}
	s := &NoPrivServer[Fd, E]{f: f, k: k, priv: priv, pub: pub}
	s.Reset()
	return s, nil
}

// PublicKey returns the upload encryption key.
func (s *NoPrivServer[Fd, E]) PublicKey() *sealbox.PublicKey { return s.pub }

// Handler returns the transport handler.
func (s *NoPrivServer[Fd, E]) Handler() transport.Handler { return s.Handle }

// Handle implements the wire protocol: sealed k-element vectors in, ack out.
func (s *NoPrivServer[Fd, E]) Handle(msgType byte, payload []byte) ([]byte, error) {
	if msgType != MsgSubmit {
		return nil, fmt.Errorf("baseline: unknown message type %d", msgType)
	}
	pt, err := sealbox.Open(s.priv, payload)
	if err != nil {
		return nil, err
	}
	vec, used, err := field.ReadVec(s.f, pt, s.k)
	if err != nil || used != len(pt) {
		return nil, errors.New("baseline: malformed submission")
	}
	s.mu.Lock()
	field.AddVec(s.f, s.acc, vec)
	s.count++
	s.mu.Unlock()
	return nil, nil
}

// Submit accumulates an already-unsealed vector (for in-process baselines
// that skip transport framing).
func (s *NoPrivServer[Fd, E]) Submit(vec []E) error {
	if len(vec) != s.k {
		return errors.New("baseline: submission length mismatch")
	}
	s.mu.Lock()
	field.AddVec(s.f, s.acc, vec)
	s.count++
	s.mu.Unlock()
	return nil
}

// Aggregate returns the running sum and submission count.
func (s *NoPrivServer[Fd, E]) Aggregate() ([]E, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]E(nil), s.acc...)
	return out, s.count
}

// Reset clears the accumulator.
func (s *NoPrivServer[Fd, E]) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.acc = make([]E, s.k)
	for i := range s.acc {
		s.acc[i] = s.f.Zero()
	}
	s.count = 0
}

// BuildSubmission seals a plaintext vector for upload.
func BuildSubmission[Fd field.Field[E], E any](f Fd, pub *sealbox.PublicKey, vec []E) ([]byte, error) {
	return sealbox.Seal(pub, field.AppendVec(f, nil, vec))
}
