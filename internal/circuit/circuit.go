// Package circuit implements the arithmetic circuits of Appendix C.1: DAGs
// of field additions, subtractions, multiplications, and multiplications by
// constants over input wires. Every AFE's Valid predicate (Section 5) is
// expressed as a circuit from this package, and the SNIP machinery
// (Section 4) proves that a secret-shared input satisfies it.
//
// Convention: rather than a single output wire that must equal one, a
// circuit carries a list of assertion wires that must all equal zero. This
// is the form used by the paper's own implementation (Appendix I, circuit
// optimization): the verifiers check all assertions at once by publishing a
// random linear combination of the assertion wires' shares. A traditional
// "Valid(x) = 1" circuit is the special case of asserting out - 1 = 0.
package circuit

import (
	"fmt"

	"prio/internal/field"
)

// Op identifies a gate's operation.
type Op uint8

// Gate operations. OpInput gates bind wire values to circuit inputs; the
// remaining operations combine earlier wires.
const (
	OpInput    Op = iota // wire = x[A]
	OpConst              // wire = K
	OpAdd                // wire = w[A] + w[B]
	OpSub                // wire = w[A] - w[B]
	OpMul                // wire = w[A] * w[B]  (counts toward M)
	OpMulConst           // wire = K * w[A]
)

// Gate is one node of the circuit DAG. The output of gate i is wire i; A and
// B refer to earlier wires.
type Gate[E any] struct {
	Op   Op
	A, B int
	K    E
}

// Circuit is an arithmetic circuit over NumInputs inputs. Gates are stored
// in topological order; MulGates lists the wire indices of multiplication
// gates in that order (their count is the M of the paper); Asserts lists the
// wires that must evaluate to zero for the input to be valid.
type Circuit[E any] struct {
	NumInputs int
	Gates     []Gate[E]
	MulGates  []int
	Asserts   []int
}

// M returns the number of multiplication gates, the parameter that governs
// SNIP proof size and verification cost.
func (c *Circuit[E]) M() int { return len(c.MulGates) }

// NumWires returns the total number of wires in the circuit.
func (c *Circuit[E]) NumWires() int { return len(c.Gates) }

// Check verifies structural well-formedness: topological operand order,
// input indices in range, and assertion wires in range. Circuits built via
// Builder always pass; Check guards hand-constructed ones.
func (c *Circuit[E]) Check() error {
	mul := 0
	for i, g := range c.Gates {
		switch g.Op {
		case OpInput:
			if g.A < 0 || g.A >= c.NumInputs {
				return fmt.Errorf("circuit: gate %d reads input %d of %d", i, g.A, c.NumInputs)
			}
		case OpConst:
		case OpAdd, OpSub, OpMul:
			if g.A < 0 || g.A >= i || g.B < 0 || g.B >= i {
				return fmt.Errorf("circuit: gate %d has non-topological operands (%d,%d)", i, g.A, g.B)
			}
			if g.Op == OpMul {
				if mul >= len(c.MulGates) || c.MulGates[mul] != i {
					return fmt.Errorf("circuit: MulGates out of sync at gate %d", i)
				}
				mul++
			}
		case OpMulConst:
			if g.A < 0 || g.A >= i {
				return fmt.Errorf("circuit: gate %d has non-topological operand %d", i, g.A)
			}
		default:
			return fmt.Errorf("circuit: gate %d has unknown op %d", i, g.Op)
		}
	}
	if mul != len(c.MulGates) {
		return fmt.Errorf("circuit: MulGates lists %d gates, found %d", len(c.MulGates), mul)
	}
	for _, w := range c.Asserts {
		if w < 0 || w >= len(c.Gates) {
			return fmt.Errorf("circuit: assertion wire %d out of range", w)
		}
	}
	return nil
}

// Trace is the result of evaluating a circuit in the clear: every wire
// value, plus the left (U) and right (V) inputs of each multiplication gate
// in order — exactly the values the SNIP prover interpolates into f and g.
type Trace[E any] struct {
	Wires []E
	U, V  []E
}

// Eval evaluates the circuit on input x, returning the full trace.
func Eval[Fd field.Field[E], E any](f Fd, c *Circuit[E], x []E) Trace[E] {
	if len(x) != c.NumInputs {
		panic("circuit: Eval input length mismatch")
	}
	w := make([]E, len(c.Gates))
	u := make([]E, 0, c.M())
	v := make([]E, 0, c.M())
	for i, g := range c.Gates {
		switch g.Op {
		case OpInput:
			w[i] = x[g.A]
		case OpConst:
			w[i] = g.K
		case OpAdd:
			w[i] = f.Add(w[g.A], w[g.B])
		case OpSub:
			w[i] = f.Sub(w[g.A], w[g.B])
		case OpMul:
			u = append(u, w[g.A])
			v = append(v, w[g.B])
			w[i] = f.Mul(w[g.A], w[g.B])
		case OpMulConst:
			w[i] = f.Mul(g.K, w[g.A])
		}
	}
	return Trace[E]{Wires: w, U: u, V: v}
}

// Validate reports whether every assertion wire evaluates to zero on x.
func Validate[Fd field.Field[E], E any](f Fd, c *Circuit[E], x []E) bool {
	tr := Eval(f, c, x)
	for _, a := range c.Asserts {
		if !f.IsZero(tr.Wires[a]) {
			return false
		}
	}
	return true
}

// ShareTrace is the result of evaluating a circuit on a secret share of the
// input. U and V hold the server's shares of f(ω_t) and g(ω_t) for each
// multiplication gate t; Wires holds the server's share of every wire.
type ShareTrace[E any] struct {
	Wires []E
	U, V  []E
}

// EvalShares walks the circuit on this server's input share. Multiplication
// gates cannot be evaluated locally, so their output-wire shares are taken
// from hAtMul — the client-supplied shares of h(ω_t) (Section 4.2, step 2).
// Affine gates operate share-wise; exactly one server (includeConst) folds
// public constants into its shares so that the constants are counted once
// in the share sum.
func EvalShares[Fd field.Field[E], E any](f Fd, c *Circuit[E], xShare []E, hAtMul []E, includeConst bool) ShareTrace[E] {
	if len(xShare) != c.NumInputs {
		panic("circuit: EvalShares input length mismatch")
	}
	if len(hAtMul) != c.M() {
		panic("circuit: EvalShares needs one h value per multiplication gate")
	}
	w := make([]E, len(c.Gates))
	u := make([]E, 0, c.M())
	v := make([]E, 0, c.M())
	mul := 0
	for i, g := range c.Gates {
		switch g.Op {
		case OpInput:
			w[i] = xShare[g.A]
		case OpConst:
			if includeConst {
				w[i] = g.K
			} else {
				w[i] = f.Zero()
			}
		case OpAdd:
			w[i] = f.Add(w[g.A], w[g.B])
		case OpSub:
			w[i] = f.Sub(w[g.A], w[g.B])
		case OpMul:
			u = append(u, w[g.A])
			v = append(v, w[g.B])
			w[i] = hAtMul[mul]
			mul++
		case OpMulConst:
			w[i] = f.Mul(g.K, w[g.A])
		}
	}
	return ShareTrace[E]{Wires: w, U: u, V: v}
}

// AssertShares returns the server's shares of the assertion wires from a
// share trace, in circuit order.
func AssertShares[E any](c *Circuit[E], st ShareTrace[E]) []E {
	out := make([]E, len(c.Asserts))
	for i, a := range c.Asserts {
		out[i] = st.Wires[a]
	}
	return out
}
