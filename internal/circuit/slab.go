package circuit

import "prio/internal/field"

// EvalSharesBatchF64 is the gate-major, slab-vectorized counterpart of
// EvalShares over the Goldilocks field: it walks the circuit once for a whole
// batch of submissions, with every wire holding a lane-per-submission slab.
// Gate dispatch is paid once per gate instead of once per gate per
// submission, and the per-lane arithmetic runs through the monomorphic field
// kernels instead of the generics dictionary.
//
// xShares[i] is submission i's input share (length NumInputs); hAtMul[t] is
// the lane slab of the submissions' shares of h(ω_{t+1}) for multiplication
// gate t. The returned U, V (length M) and assertion (length len(Asserts))
// slabs have one lane per submission and alias pooled backing arrays: callers
// must consume them and then call release, after which the slabs are invalid.
func EvalSharesBatchF64(c *Circuit[uint64], xShares [][]uint64, hAtMul [][]uint64, includeConst bool) (u, v, asserts [][]uint64, release func()) {
	b := len(xShares)
	for _, x := range xShares {
		if len(x) != c.NumInputs {
			panic("circuit: EvalSharesBatchF64 input length mismatch")
		}
	}
	if len(hAtMul) != c.M() {
		panic("circuit: EvalSharesBatchF64 needs one h slab per multiplication gate")
	}
	for _, h := range hAtMul {
		if len(h) != b {
			panic("circuit: EvalSharesBatchF64 h slab length mismatch")
		}
	}
	// Lane-major gather of the submissions' input shares. Both backings come
	// from the slab pool uninitialized: every input lane is written by the
	// gather, and every wire lane is written by its gate (OpConst lanes are
	// cleared explicitly below when this server does not carry constants).
	in := make([][]uint64, c.NumInputs)
	inBack := field.GetSlabUninit(c.NumInputs * b)
	for a := range in {
		in[a] = inBack[a*b : (a+1)*b]
	}
	// Transpose input-major (a outer): sequential writes per lane, and the
	// per-submission reads at consecutive offsets stay cache-resident.
	for a := range in {
		lane := in[a]
		for i, x := range xShares {
			lane[i] = x[a]
		}
	}
	w := make([][]uint64, len(c.Gates))
	wBack := field.GetSlabUninit(len(c.Gates) * b)
	for i := range w {
		w[i] = wBack[i*b : (i+1)*b]
	}
	mul := 0
	u = make([][]uint64, 0, c.M())
	v = make([][]uint64, 0, c.M())
	for i, g := range c.Gates {
		switch g.Op {
		case OpInput:
			copy(w[i], in[g.A])
		case OpConst:
			if includeConst {
				for j := range w[i] {
					w[i][j] = g.K
				}
			} else {
				clear(w[i])
			}
		case OpAdd:
			field.AddSlice(w[i], w[g.A], w[g.B])
		case OpSub:
			field.SubSlice(w[i], w[g.A], w[g.B])
		case OpMul:
			u = append(u, w[g.A])
			v = append(v, w[g.B])
			copy(w[i], hAtMul[mul])
			mul++
		case OpMulConst:
			field.ScaleSlice(w[i], w[g.A], g.K)
		}
	}
	asserts = make([][]uint64, len(c.Asserts))
	for k, a := range c.Asserts {
		asserts[k] = w[a]
	}
	release = func() {
		field.PutSlab(inBack)
		field.PutSlab(wBack)
	}
	return u, v, asserts, release
}
