package circuit

import "prio/internal/field"

// Wire is an opaque handle to a circuit wire, produced and consumed by a
// Builder.
type Wire int

// Builder constructs circuits gate by gate. It deduplicates constant gates
// and maintains the multiplication-gate index as it goes. The zero Builder
// is not usable; call NewBuilder.
type Builder[Fd field.Field[E], E any] struct {
	f      Fd
	c      *Circuit[E]
	inputs []Wire
	consts map[string]Wire // canonical encoding -> wire, for deduplication
}

// NewBuilder starts a circuit over numInputs inputs. The input gates are
// created eagerly so Input(i) is always valid.
func NewBuilder[Fd field.Field[E], E any](f Fd, numInputs int) *Builder[Fd, E] {
	b := &Builder[Fd, E]{
		f:      f,
		c:      &Circuit[E]{NumInputs: numInputs},
		consts: make(map[string]Wire),
	}
	b.inputs = make([]Wire, numInputs)
	for i := 0; i < numInputs; i++ {
		b.c.Gates = append(b.c.Gates, Gate[E]{Op: OpInput, A: i})
		b.inputs[i] = Wire(i)
	}
	return b
}

// Input returns the wire carrying input i.
func (b *Builder[Fd, E]) Input(i int) Wire { return b.inputs[i] }

// Const returns a wire carrying the constant v, reusing an existing gate if
// the same constant was requested before.
func (b *Builder[Fd, E]) Const(v E) Wire {
	key := string(b.f.AppendElem(nil, v))
	if w, ok := b.consts[key]; ok {
		return w
	}
	w := b.push(Gate[E]{Op: OpConst, K: v})
	b.consts[key] = w
	return w
}

// One returns a wire carrying 1.
func (b *Builder[Fd, E]) One() Wire { return b.Const(b.f.One()) }

// Add returns a wire carrying x + y.
func (b *Builder[Fd, E]) Add(x, y Wire) Wire {
	return b.push(Gate[E]{Op: OpAdd, A: int(x), B: int(y)})
}

// Sub returns a wire carrying x - y.
func (b *Builder[Fd, E]) Sub(x, y Wire) Wire {
	return b.push(Gate[E]{Op: OpSub, A: int(x), B: int(y)})
}

// Mul returns a wire carrying x * y. Each call adds one multiplication gate
// and therefore lengthens the SNIP proof by one point.
func (b *Builder[Fd, E]) Mul(x, y Wire) Wire {
	w := b.push(Gate[E]{Op: OpMul, A: int(x), B: int(y)})
	b.c.MulGates = append(b.c.MulGates, int(w))
	return w
}

// MulConst returns a wire carrying k * x; it costs no multiplication gate.
func (b *Builder[Fd, E]) MulConst(x Wire, k E) Wire {
	return b.push(Gate[E]{Op: OpMulConst, A: int(x), K: k})
}

// AssertZero requires wire w to equal zero in any valid input.
func (b *Builder[Fd, E]) AssertZero(w Wire) { b.c.Asserts = append(b.c.Asserts, int(w)) }

// AssertEqual requires x == y; it costs one subtraction gate.
func (b *Builder[Fd, E]) AssertEqual(x, y Wire) { b.AssertZero(b.Sub(x, y)) }

// AssertBit requires x ∈ {0,1} via the constraint x·(x−1) = 0 — one
// multiplication gate, the idiom behind every bit-validity check in the
// paper's encodings (Section 5.2).
func (b *Builder[Fd, E]) AssertBit(x Wire) {
	b.AssertZero(b.Mul(x, b.Sub(x, b.One())))
}

// WeightedSum returns Σ coeffs[i]·ws[i] using only affine gates.
func (b *Builder[Fd, E]) WeightedSum(ws []Wire, coeffs []E) Wire {
	if len(ws) != len(coeffs) {
		panic("circuit: WeightedSum length mismatch")
	}
	if len(ws) == 0 {
		return b.Const(b.f.Zero())
	}
	acc := b.MulConst(ws[0], coeffs[0])
	for i := 1; i < len(ws); i++ {
		acc = b.Add(acc, b.MulConst(ws[i], coeffs[i]))
	}
	return acc
}

// Sum returns Σ ws[i] using only affine gates.
func (b *Builder[Fd, E]) Sum(ws []Wire) Wire {
	if len(ws) == 0 {
		return b.Const(b.f.Zero())
	}
	acc := ws[0]
	for _, w := range ws[1:] {
		acc = b.Add(acc, w)
	}
	return acc
}

// AssertBitDecomposition requires that value = Σ 2^i bits[i] and that every
// bits[i] is a 0/1 value: the b-bit integer validity check of the summation
// AFE (Section 5.2). It costs len(bits) multiplication gates.
func (b *Builder[Fd, E]) AssertBitDecomposition(value Wire, bits []Wire) {
	coeffs := make([]E, len(bits))
	pow := b.f.One()
	two := b.f.FromUint64(2)
	for i := range bits {
		coeffs[i] = pow
		pow = b.f.Mul(pow, two)
		b.AssertBit(bits[i])
	}
	b.AssertEqual(value, b.WeightedSum(bits, coeffs))
}

// AssertOneHot requires that every ws[i] is a bit and Σ ws[i] = 1: the
// frequency-count encoding check (Section 5.2). It costs len(ws)
// multiplication gates.
func (b *Builder[Fd, E]) AssertOneHot(ws []Wire) {
	for _, w := range ws {
		b.AssertBit(w)
	}
	b.AssertEqual(b.Sum(ws), b.One())
}

// Build finalizes and returns the circuit. The Builder must not be used
// afterwards.
func (b *Builder[Fd, E]) Build() *Circuit[E] {
	c := b.c
	b.c = nil
	return c
}

func (b *Builder[Fd, E]) push(g Gate[E]) Wire {
	b.c.Gates = append(b.c.Gates, g)
	return Wire(len(b.c.Gates) - 1)
}
