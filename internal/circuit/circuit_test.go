package circuit

import (
	"crypto/rand"
	"testing"

	"prio/internal/field"
	"prio/internal/share"
)

// buildRange4 builds the 4-bit-integer validity circuit from Section 5.2:
// inputs are (x, b0..b3); asserts x = Σ 2^i b_i and each b_i ∈ {0,1}.
func buildRange4(f field.F64) *Circuit[uint64] {
	b := NewBuilder(f, 5)
	bits := []Wire{b.Input(1), b.Input(2), b.Input(3), b.Input(4)}
	b.AssertBitDecomposition(b.Input(0), bits)
	return b.Build()
}

func encode4(v uint64) []uint64 {
	return []uint64{v, v & 1, (v >> 1) & 1, (v >> 2) & 1, (v >> 3) & 1}
}

func TestRangeCircuitValidate(t *testing.T) {
	f := field.NewF64()
	c := buildRange4(f)
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	if c.M() != 4 {
		t.Fatalf("M = %d, want 4", c.M())
	}
	for v := uint64(0); v < 16; v++ {
		if !Validate(f, c, encode4(v)) {
			t.Errorf("valid encoding of %d rejected", v)
		}
	}
	bad := [][]uint64{
		{16, 0, 0, 0, 0},                   // value out of range, bits inconsistent
		{3, 1, 1, 1, 0},                    // bits say 7
		{2, 0, 2, 0, 0},                    // non-bit "bit"
		{5, 1, 0, 1, field.ModulusF64 - 1}, // huge "bit"
		{0, 0, 0, 0, field.ModulusF64 - 1}, // negative-looking bit
		{15, 1, 1, 1, 0},                   // off by 8
	}
	for i, x := range bad {
		if Validate(f, c, x) {
			t.Errorf("invalid encoding %d accepted", i)
		}
	}
}

func TestEvalTraceMulOperands(t *testing.T) {
	f := field.NewF64()
	// z = (x0 + x1) * x2; assert z - x3 = 0.
	b := NewBuilder(f, 4)
	sum := b.Add(b.Input(0), b.Input(1))
	z := b.Mul(sum, b.Input(2))
	b.AssertEqual(z, b.Input(3))
	c := b.Build()

	x := []uint64{3, 4, 5, 35}
	tr := Eval(f, c, x)
	if len(tr.U) != 1 || len(tr.V) != 1 {
		t.Fatalf("trace has %d/%d mul operands", len(tr.U), len(tr.V))
	}
	if tr.U[0] != 7 || tr.V[0] != 5 {
		t.Errorf("mul operands = (%d,%d), want (7,5)", tr.U[0], tr.V[0])
	}
	if !Validate(f, c, x) {
		t.Error("consistent input rejected")
	}
	if Validate(f, c, []uint64{3, 4, 5, 34}) {
		t.Error("inconsistent input accepted")
	}
}

func TestEvalSharesSumToClearTrace(t *testing.T) {
	f := field.NewF64()
	c := buildRange4(f)
	x := encode4(11)
	tr := Eval(f, c, x)

	const s = 3
	xShares, err := share.Split(f, rand.Reader, x, s)
	if err != nil {
		t.Fatal(err)
	}
	// Correct h values are the true mul-gate outputs; share them too.
	hClear := make([]uint64, c.M())
	for t2, w := range c.MulGates {
		hClear[t2] = tr.Wires[w]
	}
	hShares, err := share.Split(f, rand.Reader, hClear, s)
	if err != nil {
		t.Fatal(err)
	}

	traces := make([]ShareTrace[uint64], s)
	for i := 0; i < s; i++ {
		traces[i] = EvalShares(f, c, xShares[i], hShares[i], i == 0)
	}

	// Sum of share wires must equal the clear wires.
	sumW := make([]uint64, len(tr.Wires))
	sumU := make([]uint64, len(tr.U))
	sumV := make([]uint64, len(tr.V))
	for i := 0; i < s; i++ {
		field.AddVec(f, sumW, traces[i].Wires)
		field.AddVec(f, sumU, traces[i].U)
		field.AddVec(f, sumV, traces[i].V)
	}
	if !field.EqualVec(f, sumW, tr.Wires) {
		t.Error("share-trace wires do not sum to clear wires")
	}
	if !field.EqualVec(f, sumU, tr.U) || !field.EqualVec(f, sumV, tr.V) {
		t.Error("share-trace mul operands do not sum to clear operands")
	}

	// Assertion shares must sum to zero for a valid input.
	for _, a := range c.Asserts {
		total := uint64(0)
		for i := 0; i < s; i++ {
			total = f.Add(total, traces[i].Wires[a])
		}
		if total != 0 {
			t.Errorf("assertion wire %d sums to %d, want 0", a, total)
		}
	}
}

func TestConstDeduplication(t *testing.T) {
	f := field.NewF64()
	b := NewBuilder(f, 1)
	w1 := b.One()
	w2 := b.One()
	w3 := b.Const(1)
	if w1 != w2 || w1 != w3 {
		t.Error("constant gates were not deduplicated")
	}
	w4 := b.Const(2)
	if w4 == w1 {
		t.Error("distinct constants share a wire")
	}
}

func TestAssertOneHot(t *testing.T) {
	f := field.NewF64()
	b := NewBuilder(f, 4)
	b.AssertOneHot([]Wire{b.Input(0), b.Input(1), b.Input(2), b.Input(3)})
	c := b.Build()
	if c.M() != 4 {
		t.Fatalf("M = %d, want 4", c.M())
	}
	if !Validate(f, c, []uint64{0, 0, 1, 0}) {
		t.Error("one-hot vector rejected")
	}
	for _, bad := range [][]uint64{
		{0, 0, 0, 0},
		{1, 1, 0, 0},
		{0, 2, 0, 0},
		{field.ModulusF64 - 1, 1, 1, 0}, // sums to 1 but not bits
	} {
		if Validate(f, c, bad) {
			t.Errorf("non-one-hot vector %v accepted", bad)
		}
	}
}

func TestWeightedSumAndSum(t *testing.T) {
	f := field.NewF64()
	b := NewBuilder(f, 3)
	ws := []Wire{b.Input(0), b.Input(1), b.Input(2)}
	wsum := b.WeightedSum(ws, []uint64{1, 10, 100})
	b.AssertEqual(wsum, b.Const(321))
	plain := b.Sum(ws)
	b.AssertEqual(plain, b.Const(6))
	c := b.Build()
	if c.M() != 0 {
		t.Errorf("affine circuit has %d mul gates", c.M())
	}
	if !Validate(f, c, []uint64{1, 2, 3}) {
		t.Error("weighted-sum circuit rejected correct input")
	}
	if Validate(f, c, []uint64{1, 2, 4}) {
		t.Error("weighted-sum circuit accepted wrong input")
	}
}

func TestEmptySumsAreZero(t *testing.T) {
	f := field.NewF64()
	b := NewBuilder(f, 1)
	z := b.Sum(nil)
	b.AssertZero(z)
	z2 := b.WeightedSum(nil, nil)
	b.AssertZero(z2)
	c := b.Build()
	if !Validate(f, c, []uint64{42}) {
		t.Error("empty sums should assert cleanly")
	}
}

func TestCheckRejectsMalformed(t *testing.T) {
	f := field.NewF64()
	// Non-topological operand.
	c := &Circuit[uint64]{
		NumInputs: 1,
		Gates: []Gate[uint64]{
			{Op: OpInput, A: 0},
			{Op: OpAdd, A: 0, B: 2},
		},
	}
	if err := c.Check(); err == nil {
		t.Error("Check accepted forward reference")
	}
	// Input out of range.
	c2 := &Circuit[uint64]{
		NumInputs: 1,
		Gates:     []Gate[uint64]{{Op: OpInput, A: 5}},
	}
	if err := c2.Check(); err == nil {
		t.Error("Check accepted bad input index")
	}
	// MulGates out of sync.
	c3 := &Circuit[uint64]{
		NumInputs: 2,
		Gates: []Gate[uint64]{
			{Op: OpInput, A: 0},
			{Op: OpInput, A: 1},
			{Op: OpMul, A: 0, B: 1},
		},
	}
	if err := c3.Check(); err == nil {
		t.Error("Check accepted missing MulGates entry")
	}
	// Assertion out of range.
	c4 := &Circuit[uint64]{
		NumInputs: 1,
		Gates:     []Gate[uint64]{{Op: OpInput, A: 0}},
		Asserts:   []int{3},
	}
	if err := c4.Check(); err == nil {
		t.Error("Check accepted bad assertion wire")
	}
	_ = f
}

func TestBuilderCircuitsPassCheck(t *testing.T) {
	f := field.NewF64()
	c := buildRange4(f)
	if err := c.Check(); err != nil {
		t.Errorf("builder circuit fails Check: %v", err)
	}
	if got := c.NumWires(); got != len(c.Gates) {
		t.Errorf("NumWires = %d, want %d", got, len(c.Gates))
	}
}

func TestF128Circuit(t *testing.T) {
	f := field.NewF128()
	b := NewBuilder(f, 2)
	// assert x0^2 == x1
	sq := b.Mul(b.Input(0), b.Input(0))
	b.AssertEqual(sq, b.Input(1))
	c := b.Build()
	x0 := f.FromUint64(123456789)
	good := []field.U128{x0, f.Mul(x0, x0)}
	if !Validate(f, c, good) {
		t.Error("square relation rejected")
	}
	bad := []field.U128{x0, f.Add(f.Mul(x0, x0), f.One())}
	if Validate(f, c, bad) {
		t.Error("broken square relation accepted")
	}
}
