package circuit

import (
	"crypto/rand"
	mrand "math/rand"
	"testing"
	"testing/quick"

	"prio/internal/field"
	"prio/internal/share"
)

// randCircuit builds a random well-formed circuit over nIn inputs with
// roughly nGates gates, deterministically from seed.
func randCircuit(seed int64, nIn, nGates int) *Circuit[uint64] {
	f := field.NewF64()
	rng := mrand.New(mrand.NewSource(seed))
	b := NewBuilder(f, nIn)
	wires := make([]Wire, 0, nIn+nGates)
	for i := 0; i < nIn; i++ {
		wires = append(wires, b.Input(i))
	}
	pick := func() Wire { return wires[rng.Intn(len(wires))] }
	for g := 0; g < nGates; g++ {
		var w Wire
		switch rng.Intn(5) {
		case 0:
			w = b.Add(pick(), pick())
		case 1:
			w = b.Sub(pick(), pick())
		case 2:
			w = b.Mul(pick(), pick())
		case 3:
			w = b.MulConst(pick(), uint64(rng.Intn(1000)))
		default:
			w = b.Const(uint64(rng.Intn(1000)))
		}
		wires = append(wires, w)
	}
	// Assert a couple of random wires (values arbitrary; the property tests
	// only compare share evaluation with clear evaluation).
	b.AssertZero(pick())
	b.AssertZero(pick())
	return b.Build()
}

// TestEvalSharesMatchesClearQuick is the structural core of SNIP
// verification: for ANY circuit and ANY input, share-evaluating with correct
// h values must reproduce the clear trace in the exponent of the sharing.
func TestEvalSharesMatchesClearQuick(t *testing.T) {
	f := field.NewF64()
	err := quick.Check(func(seed int64, rawX []uint64, sRaw uint8) bool {
		nIn := len(rawX)
		if nIn == 0 || nIn > 12 {
			return true
		}
		s := int(sRaw%4) + 1
		c := randCircuit(seed, nIn, 20)
		if err := c.Check(); err != nil {
			t.Fatalf("random circuit malformed: %v", err)
		}
		x := make([]uint64, nIn)
		for i := range x {
			x[i] = rawX[i] % field.ModulusF64
		}
		tr := Eval(f, c, x)

		hClear := make([]uint64, c.M())
		for i, w := range c.MulGates {
			hClear[i] = tr.Wires[w]
		}
		xs, err := share.Split(f, rand.Reader, x, s)
		if err != nil {
			return false
		}
		hs, err := share.Split(f, rand.Reader, hClear, s)
		if err != nil {
			return false
		}
		sumW := make([]uint64, len(tr.Wires))
		sumU := make([]uint64, len(tr.U))
		sumV := make([]uint64, len(tr.V))
		for i := 0; i < s; i++ {
			st := EvalShares(f, c, xs[i], hs[i], i == 0)
			field.AddVec(f, sumW, st.Wires)
			field.AddVec(f, sumU, st.U)
			field.AddVec(f, sumV, st.V)
		}
		return field.EqualVec(f, sumW, tr.Wires) &&
			field.EqualVec(f, sumU, tr.U) &&
			field.EqualVec(f, sumV, tr.V)
	}, &quick.Config{MaxCount: 120})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAssertSharesExtractsAsserts(t *testing.T) {
	f := field.NewF64()
	c := randCircuit(42, 4, 15)
	x := []uint64{1, 2, 3, 4}
	tr := Eval(f, c, x)
	hClear := make([]uint64, c.M())
	for i, w := range c.MulGates {
		hClear[i] = tr.Wires[w]
	}
	st := EvalShares(f, c, x, hClear, true) // single "server" holding everything
	got := AssertShares(c, ShareTrace[uint64]{Wires: st.Wires})
	if len(got) != len(c.Asserts) {
		t.Fatalf("AssertShares returned %d values for %d asserts", len(got), len(c.Asserts))
	}
	for i, a := range c.Asserts {
		if got[i] != tr.Wires[a] {
			t.Errorf("assert %d = %d, want %d", i, got[i], tr.Wires[a])
		}
	}
}

func TestRandomCircuitsPassCheckQuick(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		c := randCircuit(seed, 5, 30)
		return c.Check() == nil && c.M() == len(c.MulGates)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEvalPanicsOnWrongInputLength(t *testing.T) {
	f := field.NewF64()
	c := randCircuit(1, 3, 5)
	defer func() {
		if recover() == nil {
			t.Error("Eval accepted wrong-length input")
		}
	}()
	Eval(f, c, []uint64{1})
}

func TestEvalSharesPanicsOnWrongHLength(t *testing.T) {
	f := field.NewF64()
	b := NewBuilder(f, 1)
	b.AssertBit(b.Input(0))
	c := b.Build()
	defer func() {
		if recover() == nil {
			t.Error("EvalShares accepted wrong h length")
		}
	}()
	EvalShares(f, c, []uint64{1}, nil, true)
}
