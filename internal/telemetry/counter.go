package telemetry

import (
	"math"
	"runtime"
	"sync/atomic"
	"unsafe"
)

// cell is one cache-line-padded counter stripe. The padding keeps
// concurrent writers on different cores from false-sharing a line, which
// is the entire point of striping.
type cell struct {
	v uint64
	_ [7]uint64
}

// Counter is a monotonically increasing, lock-free sharded counter. Adds
// land on one of several cache-line-padded stripes chosen by a cheap
// goroutine-affine hash, so concurrent writers do not contend on a single
// cache line; Value sums the stripes. The zero Counter is not usable —
// obtain one from a Registry (or NewCounter for an unregistered one).
//
// A nil *Counter is a valid no-op target for both Add and Value, so
// optional instrumentation needs no call-site branching.
type Counter struct {
	cells []cell
	mask  uint32
}

// counterStripes returns the stripe count: the next power of two covering
// GOMAXPROCS, capped so one counter stays a few KB at most.
func counterStripes() int {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < 64 {
		n <<= 1
	}
	return n
}

// NewCounter builds an unregistered counter. Most callers want
// Registry.Counter instead, which also names and exports it.
func NewCounter() *Counter {
	n := counterStripes()
	return &Counter{cells: make([]cell, n), mask: uint32(n - 1)}
}

// stripeHint derives a goroutine-affine stripe index from the address of
// a stack variable: goroutine stacks live in distinct allocations, so
// concurrent goroutines spread across stripes while one goroutine keeps
// hitting the same hot cell. Any index is correct — the hint only shapes
// contention.
func stripeHint() uint32 {
	var b byte
	p := uintptr(unsafe.Pointer(&b))
	return uint32((p >> 9) * 0x9E3779B1 >> 16)
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if !Enabled || c == nil {
		return
	}
	atomic.AddUint64(&c.cells[stripeHint()&c.mask].v, n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value sums the stripes. It is safe concurrently with Add; the result is
// a momentary snapshot.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var sum uint64
	for i := range c.cells {
		sum += atomic.LoadUint64(&c.cells[i].v)
	}
	return sum
}

// Gauge is a float64 value that can go up and down (queue depths,
// occupancy ratios). Reads and writes are atomic on the float's bit
// pattern. A nil *Gauge is a no-op.
type Gauge struct {
	bits uint64
}

// NewGauge builds an unregistered gauge; most callers want Registry.Gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if !Enabled || g == nil {
		return
	}
	atomic.StoreUint64(&g.bits, math.Float64bits(v))
}

// Add adjusts the gauge by delta (CAS loop; gauges are low-rate).
func (g *Gauge) Add(delta float64) {
	if !Enabled || g == nil {
		return
	}
	for {
		old := atomic.LoadUint64(&g.bits)
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if atomic.CompareAndSwapUint64(&g.bits, old, next) {
			return
		}
	}
}

// Value returns the current gauge reading.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(atomic.LoadUint64(&g.bits))
}
