package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer samples 1-in-N submissions and follows each through the server
// as a sequence of named stage spans, keeping the most recent completed
// traces in a fixed ring. It is the attribution tool the aggregate
// histograms cannot be: when p99 spikes, a handful of full lifecycles
// shows whether the time went to queueing, verification, or peer RPC.
//
// Overhead: unsampled submissions pay one atomic increment; sampled ones
// (1 in Every) pay a small allocation and a clock read per stage. A nil
// *Tracer never samples.
type Tracer struct {
	every uint64
	n     uint64 // atomic arrival counter

	mu   sync.Mutex
	ring []*Trace
	pos  int
	len  int
}

// NewTracer samples one submission in every, keeping the last capacity
// completed traces. every <= 0 disables sampling entirely.
func NewTracer(every, capacity int) *Tracer {
	if every <= 0 {
		return nil
	}
	if capacity <= 0 {
		capacity = 256
	}
	return &Tracer{every: uint64(every), ring: make([]*Trace, capacity)}
}

// Sample returns a new live trace for 1-in-Every calls and nil otherwise.
// The caller threads the trace along the submission's path, marking
// boundaries with Stage and sealing it with Finish.
func (t *Tracer) Sample() *Trace {
	if !Enabled || t == nil {
		return nil
	}
	n := atomic.AddUint64(&t.n, 1)
	if n%t.every != 0 {
		return nil
	}
	return &Trace{t: t, ID: n, Begin: time.Now()}
}

// record commits a finished trace into the ring.
func (t *Tracer) record(tr *Trace) {
	t.mu.Lock()
	t.ring[t.pos] = tr
	t.pos = (t.pos + 1) % len(t.ring)
	if t.len < len(t.ring) {
		t.len++
	}
	t.mu.Unlock()
}

// Span is one completed stage of a trace, as offsets from the trace start.
type Span struct {
	Stage string `json:"stage"`
	AtNS  int64  `json:"at_ns"`
	DurNS int64  `json:"dur_ns"`
}

// Trace is one sampled submission's lifecycle. Stage/Finish are
// internally locked: stages hand off between goroutines (stream reader →
// intake pump → shard worker), and the lock's cost is irrelevant at the
// sampling rate. All methods are nil-safe so call sites need no
// branching.
type Trace struct {
	ID      uint64    `json:"id"`
	Begin   time.Time `json:"begin"`
	Outcome string    `json:"outcome"`
	Spans   []Span    `json:"spans"`

	t     *Tracer
	mu    sync.Mutex
	cur   string
	curAt time.Time
	done  bool
}

// Stage closes the current stage (if any) and opens a new one.
func (tr *Trace) Stage(name string) {
	if tr == nil {
		return
	}
	now := time.Now()
	tr.mu.Lock()
	tr.closeSpanLocked(now)
	tr.cur = name
	tr.curAt = now
	tr.mu.Unlock()
}

// closeSpanLocked seals the open stage at now. Callers hold tr.mu.
func (tr *Trace) closeSpanLocked(now time.Time) {
	if tr.cur == "" {
		return
	}
	tr.Spans = append(tr.Spans, Span{
		Stage: tr.cur,
		AtNS:  tr.curAt.Sub(tr.Begin).Nanoseconds(),
		DurNS: now.Sub(tr.curAt).Nanoseconds(),
	})
	tr.cur = ""
}

// Finish closes the open stage, records the outcome, and commits the
// trace to its tracer's ring. Finishing twice keeps the first outcome.
func (tr *Trace) Finish(outcome string) {
	if tr == nil {
		return
	}
	now := time.Now()
	tr.mu.Lock()
	if tr.done {
		tr.mu.Unlock()
		return
	}
	tr.done = true
	tr.closeSpanLocked(now)
	tr.Outcome = outcome
	tr.mu.Unlock()
	tr.t.record(tr)
}

// Snapshot returns the completed traces, oldest first.
func (t *Tracer) Snapshot() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Trace, 0, t.len)
	start := t.pos - t.len
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.len; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// WriteJSON dumps the ring as a JSON array (the /debug/trace payload).
func (t *Tracer) WriteJSON(w io.Writer) error {
	traces := t.Snapshot()
	if traces == nil {
		traces = []*Trace{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(traces)
}
