package telemetry

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
)

// expvarOnce guards the process-global expvar name: expvar.Publish
// panics on duplicates, and one process serves one admin registry.
var expvarOnce sync.Once

// AdminHandler serves the operator endpoint for a registry:
//
//	/metrics      Prometheus text exposition
//	/healthz      liveness (200 "ok")
//	/debug/vars   expvar JSON (registry published as "prio")
//	/debug/pprof  the standard Go profiles
//	/debug/trace  sampled submission lifecycles from tr (JSON)
//
// tr may be nil (the trace dump is then an empty array). Mount it on a
// listener that is NOT the protocol port — profiles and metric sweeps
// must never contend with the ingest path's accept loop.
func AdminHandler(r *Registry, tr *Tracer) http.Handler {
	RegisterRuntimeMetrics(r)
	expvarOnce.Do(func() {
		expvar.Publish("prio", expvar.Func(func() any { return r.Snapshot() }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = tr.WriteJSON(w)
	})
	return mux
}
