//go:build !notelemetry

package telemetry

// Enabled reports whether telemetry write operations are compiled in.
// Build with -tags notelemetry to turn every Add/Observe into a no-op;
// the CI overhead smoke benchmarks both configurations.
const Enabled = true
