// Package telemetry is the process-wide metrics core: lock-free sharded
// counters, gauges, log-linear bounded-memory latency histograms with
// mergeable snapshots and quantile extraction, a named registry that
// serializes everything as Prometheus text or expvar JSON, and a sampled
// submission-lifecycle tracer.
//
// The package depends only on the standard library, so every layer of the
// server — transport, snip, core, ingest — can record into it without
// import cycles. Hot-path write operations (Counter.Add,
// Histogram.Observe) are single atomic adds on striped cells; reading is
// the expensive side (a scrape sums the stripes), which is the right
// trade for counters written millions of times per scrape.
//
// Building with -tags notelemetry compiles every write operation to a
// no-op (the Enabled constant gates them, so the calls fold away),
// which is how the CI overhead smoke measures the cost of the
// instrumentation itself.
//
// Conventions follow Prometheus: counters end in _total, durations are
// exported in seconds (recorded internally in nanoseconds), and names
// are prio_<subsystem>_<what>[_unit]. See docs/OBSERVABILITY.md for the
// full metric catalog.
package telemetry
