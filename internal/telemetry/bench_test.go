package telemetry

import (
	"testing"
	"time"
)

// The overhead benchmarks run in both build modes: compare `go test -bench`
// against `go test -tags notelemetry -bench` to see what instrumentation
// costs at each call site (the notelemetry numbers should be ~zero — the
// ops compile to constant-false branches).

func BenchmarkCounterAdd(b *testing.B) {
	c := NewCounter()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
	_ = c.Value()
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.RunParallel(func(pb *testing.PB) {
		v := uint64(1)
		for pb.Next() {
			h.Observe(v)
			v = v*2862933555777941757 + 3037000493 // cheap LCG: spread the octaves
		}
	})
}

func BenchmarkDurationSince(b *testing.B) {
	d := &DurationHistogram{H: NewHistogram()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t0 := Start()
		d.Since(t0)
	}
}

func BenchmarkTracerUnsampled(b *testing.B) {
	tr := NewTracer(1<<30, 8) // effectively never samples
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if t := tr.Sample(); t != nil {
				t.Finish("bench")
			}
		}
	})
}

func BenchmarkRegistrySnapshot(b *testing.B) {
	r := New()
	for _, n := range []string{"a", "b", "c", "d"} {
		r.Counter("bench_"+n+"_total", "bench").Inc()
	}
	h := r.Duration("bench_seconds", "bench")
	h.Observe(time.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}
