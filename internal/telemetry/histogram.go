package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Log-linear bucket layout (the HDR-histogram shape): each power-of-two
// octave of the uint64 value domain is subdivided into histSub linear
// sub-buckets, so the bucket width is always ≤ 1/histSub of the value —
// a fixed ~3.1% relative-error bound with a fixed 15 KB footprint,
// independent of how many values are observed or how they are
// distributed. Values below histSub are recorded exactly.
const (
	histSubBits = 5
	histSub     = 1 << histSubBits // 32 sub-buckets per octave
	histBuckets = (64-histSubBits)*histSub + histSub
)

// bucketIndex maps a value to its bucket.
func bucketIndex(v uint64) int {
	if v < histSub {
		return int(v)
	}
	e := bits.Len64(v) - 1 // position of the top bit, ≥ histSubBits
	return (e-histSubBits+1)*histSub + int((v>>(uint(e)-histSubBits))&(histSub-1))
}

// bucketUpper returns the largest value a bucket covers — what Quantile
// reports, biasing estimates high by at most one part in histSub.
func bucketUpper(i int) uint64 {
	if i < histSub {
		return uint64(i)
	}
	o := uint(i / histSub)
	s := uint64(i % histSub)
	shift := o - 1 // e - histSubBits for this octave
	return (histSub+s)<<shift + (1 << shift) - 1
}

// Histogram is a concurrent log-linear histogram over uint64 values with
// bounded memory and bounded relative error. Observe is one atomic add on
// the value's bucket plus one on the running sum; quantiles are computed
// from snapshots. A nil *Histogram is a no-op.
//
// scale is the multiplier applied when exporting (Prometheus wants
// seconds; durations are recorded in nanoseconds, so their scale is 1e-9).
type Histogram struct {
	scale  float64
	sum    uint64 // Σ observed values, raw units
	counts [histBuckets]uint64
}

// NewHistogram builds an unregistered histogram over raw values; most
// callers want Registry.Histogram or Registry.Duration.
func NewHistogram() *Histogram { return &Histogram{scale: 1} }

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if !Enabled || h == nil {
		return
	}
	atomic.AddUint64(&h.counts[bucketIndex(v)], 1)
	atomic.AddUint64(&h.sum, v)
}

// Snapshot returns a consistent-enough copy for quantile extraction and
// merging. Buckets are loaded atomically one by one, so a snapshot taken
// mid-traffic can be off by the few observations that landed during the
// sweep — fine for monitoring, and exact once writers quiesce.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{}
	if h == nil {
		return s
	}
	s.Sum = atomic.LoadUint64(&h.sum)
	s.counts = make([]uint64, histBuckets)
	for i := range h.counts {
		c := atomic.LoadUint64(&h.counts[i])
		s.counts[i] = c
		s.Count += c
	}
	return s
}

// HistSnapshot is an immutable copy of a histogram's buckets. Snapshots
// merge associatively and commutatively (bucket-wise sums), so per-shard
// or per-window snapshots can be combined in any grouping, and subtract
// (Delta) to carve a cumulative series into collection windows.
type HistSnapshot struct {
	Count  uint64
	Sum    uint64
	counts []uint64
}

// Merge returns the combination of s and o.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	out := HistSnapshot{Count: s.Count + o.Count, Sum: s.Sum + o.Sum}
	if s.counts == nil && o.counts == nil {
		return out
	}
	out.counts = make([]uint64, histBuckets)
	copy(out.counts, s.counts)
	for i, c := range o.counts {
		out.counts[i] += c
	}
	return out
}

// Delta returns the observations present in s but not in prev — the
// inverse of Merge for the common "cumulative series, periodic snapshot"
// pattern: snapshot at each window boundary, Delta against the previous
// boundary, and the result is exactly that window's distribution (same
// quantile and mean semantics as any other snapshot). If s is not a
// superset of prev (the histogram restarted), s is returned whole.
func (s HistSnapshot) Delta(prev HistSnapshot) HistSnapshot {
	if prev.Count == 0 {
		return s
	}
	if s.Count < prev.Count || s.Sum < prev.Sum {
		return s
	}
	out := HistSnapshot{Count: s.Count - prev.Count, Sum: s.Sum - prev.Sum}
	if s.counts == nil {
		return out
	}
	out.counts = make([]uint64, len(s.counts))
	for i, c := range s.counts {
		var p uint64
		if i < len(prev.counts) {
			p = prev.counts[i]
		}
		if c >= p {
			out.counts[i] = c - p
		}
	}
	return out
}

// Quantile returns the q-th quantile (q in [0,1]) as the upper bound of
// the bucket holding that rank: an overestimate by at most ~3.1%
// (1/histSub) of the true value. Returns 0 on an empty snapshot.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 || len(s.counts) == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i, c := range s.counts {
		cum += c
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// Mean returns the arithmetic mean of the observed values (exact, from
// the running sum — not a bucket estimate).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// DurationHistogram records time.Durations into a Histogram in
// nanoseconds; the underlying histogram exports in seconds. A nil
// *DurationHistogram is a no-op.
type DurationHistogram struct {
	H *Histogram
}

// Observe records one duration (negatives clamp to zero).
func (d *DurationHistogram) Observe(dur time.Duration) {
	if !Enabled || d == nil {
		return
	}
	if dur < 0 {
		dur = 0
	}
	d.H.Observe(uint64(dur))
}

// Since records the time elapsed from t0. A zero t0 (from a disabled
// Start) records nothing.
func (d *DurationHistogram) Since(t0 time.Time) {
	if !Enabled || d == nil || t0.IsZero() {
		return
	}
	d.Observe(time.Since(t0))
}

// Snapshot exposes the underlying histogram's snapshot (values in ns).
func (d *DurationHistogram) Snapshot() HistSnapshot {
	if d == nil {
		return HistSnapshot{}
	}
	return d.H.Snapshot()
}

// Start returns the current time when telemetry is compiled in, and the
// zero time otherwise — pair it with Since so disabled builds skip the
// clock reads entirely.
func Start() time.Time {
	if !Enabled {
		return time.Time{}
	}
	return time.Now()
}
