package telemetry

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Label is one name=value dimension on a metric series.
type Label struct {
	Key, Value string
}

// Default is the process-wide registry: the binaries register their
// subsystems into it and the admin endpoint serves it. Libraries accept a
// *Registry in their configs so tests can isolate their counters; nil
// there usually means a private registry, not Default.
var Default = New()

// kind discriminates what a series holds.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindCounterFunc
	kindGaugeFunc
	kindHistogram
)

// promType renders the Prometheus TYPE line for a kind.
func (k kind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// series is one labeled instance within a family.
type series struct {
	labels string // rendered {k="v",...}, or ""
	c      *Counter
	g      *Gauge
	cf     func() uint64
	gf     func() float64
	h      *Histogram
}

// family is all series sharing one metric name.
type family struct {
	name, help string
	kind       kind
	series     []*series
	byLabel    map[string]*series
}

// Registry is a named collection of metrics. Get-or-create accessors make
// registration idempotent: asking twice for the same name and labels
// returns the same metric. All methods are safe for concurrent use;
// metric writes themselves never touch the registry lock.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// New builds an empty registry.
func New() *Registry { return &Registry{fams: make(map[string]*family)} }

// renderLabels produces the canonical {k="v",...} form, keys sorted, or
// "" for no labels.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies the Prometheus label-value escapes.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// lookup finds or creates the series for (name, labels) under the given
// kind, panicking on a kind clash — that is a programming error, not a
// runtime condition.
func (r *Registry) lookup(name, help string, k kind, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.fams[name]
	if fam == nil {
		fam = &family{name: name, help: help, kind: k, byLabel: make(map[string]*series)}
		r.fams[name] = fam
	} else if fam.kind != k {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s",
			name, fam.kind.promType(), k.promType()))
	}
	key := renderLabels(labels)
	s := fam.byLabel[key]
	if s == nil {
		s = &series{labels: key}
		fam.byLabel[key] = s
		fam.series = append(fam.series, s)
	}
	return s
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.lookup(name, help, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.c == nil {
		s.c = NewCounter()
	}
	return s.c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.lookup(name, help, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.g == nil {
		s.g = NewGauge()
	}
	return s.g
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for subsystems that already keep their own atomic
// totals (transport.Stats, snip's evaluator cache). Re-registering the
// same name and labels keeps the first fn.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	s := r.lookup(name, help, kindCounterFunc, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.cf == nil {
		s.cf = fn
	}
}

// GaugeFunc registers a gauge read from fn at scrape time (queue depths,
// pool occupancy). Re-registering keeps the first fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.lookup(name, help, kindGaugeFunc, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.gf == nil {
		s.gf = fn
	}
}

// Histogram returns the named histogram over raw values (batch sizes,
// byte counts), creating it on first use.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	s := r.lookup(name, help, kindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.h == nil {
		s.h = NewHistogram()
	}
	return s.h
}

// Duration returns the named duration histogram (recorded in
// nanoseconds, exported in seconds per Prometheus convention), creating
// it on first use. Name it *_seconds.
func (r *Registry) Duration(name, help string, labels ...Label) *DurationHistogram {
	s := r.lookup(name, help, kindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.h == nil {
		s.h = NewHistogram()
		s.h.scale = 1e-9
	}
	return &DurationHistogram{H: s.h}
}

// snapshotFamilies copies the family list under the lock so serialization
// runs without holding it (scrape-time funcs may take other locks).
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		f.series = append([]*series(nil), f.series...)
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
	}
	return fams
}

// WritePrometheus serializes every metric in the text exposition format.
// Histograms coarsen to one cumulative le bucket per power-of-two octave
// (the full log-linear resolution stays available to in-process readers
// via Snapshot/Quantile).
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, fam := range r.snapshotFamilies() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			fam.name, fam.help, fam.name, fam.kind.promType()); err != nil {
			return err
		}
		for _, s := range fam.series {
			var err error
			switch fam.kind {
			case kindCounter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", fam.name, s.labels, s.c.Value())
			case kindCounterFunc:
				_, err = fmt.Fprintf(w, "%s%s %d\n", fam.name, s.labels, s.cf())
			case kindGauge:
				_, err = fmt.Fprintf(w, "%s%s %g\n", fam.name, s.labels, s.g.Value())
			case kindGaugeFunc:
				_, err = fmt.Fprintf(w, "%s%s %g\n", fam.name, s.labels, s.gf())
			case kindHistogram:
				err = writePromHistogram(w, fam.name, s.labels, s.h)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writePromHistogram emits cumulative octave buckets, _sum and _count.
func writePromHistogram(w io.Writer, name, labels string, h *Histogram) error {
	snap := h.Snapshot()
	scale := h.scale
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	le := func(bound string) string {
		if inner == "" {
			return fmt.Sprintf(`{le="%s"}`, bound)
		}
		return fmt.Sprintf(`{%s,le="%s"}`, inner, bound)
	}
	// Find the active octave range so an idle histogram stays one line.
	first, last := -1, -1
	for i, c := range snap.counts {
		if c != 0 {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	var cum uint64
	if first >= 0 {
		fo, lo := first/histSub, last/histSub
		idx := 0
		for o := 0; o <= lo; o++ {
			end := (o + 1) * histSub // exclusive
			for ; idx < end; idx++ {
				cum += snap.counts[idx]
			}
			if o < fo {
				continue
			}
			bound := float64(bucketUpper(end-1)) * scale
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, le(fmt.Sprintf("%g", bound)), cum); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, le("+Inf"), snap.Count); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum%s %g\n%s_count%s %d\n",
		name, labels, float64(snap.Sum)*scale, name, labels, snap.Count)
	return err
}

// Snapshot renders the registry as a JSON-friendly map for expvar:
// counters and gauges as numbers, histograms as {count, sum, mean, p50,
// p95, p99, p999} objects in export units.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	for _, fam := range r.snapshotFamilies() {
		for _, s := range fam.series {
			key := fam.name + s.labels
			switch fam.kind {
			case kindCounter:
				out[key] = s.c.Value()
			case kindCounterFunc:
				out[key] = s.cf()
			case kindGauge:
				out[key] = s.g.Value()
			case kindGaugeFunc:
				out[key] = s.gf()
			case kindHistogram:
				snap := s.h.Snapshot()
				scale := s.h.scale
				out[key] = map[string]any{
					"count": snap.Count,
					"sum":   float64(snap.Sum) * scale,
					"mean":  snap.Mean() * scale,
					"p50":   float64(snap.Quantile(0.50)) * scale,
					"p95":   float64(snap.Quantile(0.95)) * scale,
					"p99":   float64(snap.Quantile(0.99)) * scale,
					"p999":  float64(snap.Quantile(0.999)) * scale,
				}
			}
		}
	}
	return out
}

// RegisterRuntimeMetrics adds the standard process gauges (goroutines,
// heap, GC cycles) to r. Idempotent.
func RegisterRuntimeMetrics(r *Registry) {
	r.GaugeFunc("go_goroutines", "number of live goroutines",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_mem_heap_alloc_bytes", "bytes of allocated heap objects",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	r.GaugeFunc("go_gc_cycles_total", "completed GC cycles",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.NumGC)
		})
}
