package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// skipDisabled skips tests that assert live metric writes when the
// notelemetry build tag has compiled them out.
func skipDisabled(t *testing.T) {
	t.Helper()
	if !Enabled {
		t.Skip("telemetry compiled out (-tags notelemetry)")
	}
}

// TestCounterConcurrent hammers one counter from many goroutines and
// checks no increment is lost across the stripes.
func TestCounterConcurrent(t *testing.T) {
	skipDisabled(t)
	c := NewCounter()
	const goroutines, per = 16, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got, want := c.Value(), uint64(goroutines*per); got != want {
		t.Fatalf("counter lost updates: got %d, want %d", got, want)
	}
}

// TestCounterNil checks the nil no-op contract.
func TestCounterNil(t *testing.T) {
	var c *Counter
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter should read 0")
	}
	var h *Histogram
	h.Observe(1)
	if s := h.Snapshot(); s.Count != 0 || s.Quantile(0.5) != 0 {
		t.Fatal("nil histogram should be empty")
	}
	var d *DurationHistogram
	d.Observe(time.Second)
	d.Since(time.Now())
	var g *Gauge
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge should read 0")
	}
}

func TestGauge(t *testing.T) {
	skipDisabled(t)
	g := NewGauge()
	g.Set(3.5)
	g.Add(-1.25)
	if got := g.Value(); got != 2.25 {
		t.Fatalf("gauge = %v, want 2.25", got)
	}
}

// TestBucketRoundTrip checks the log-linear index/bound pair is
// consistent: every value lands in a bucket whose bounds contain it, and
// the relative width honors the error bound.
func TestBucketRoundTrip(t *testing.T) {
	check := func(v uint64) {
		t.Helper()
		i := bucketIndex(v)
		up := bucketUpper(i)
		if v > up {
			t.Fatalf("value %d above its bucket upper bound %d (bucket %d)", v, up, i)
		}
		if i > 0 {
			if prev := bucketUpper(i - 1); v <= prev {
				t.Fatalf("value %d at or below previous bucket bound %d (bucket %d)", v, prev, i)
			}
		}
		if v >= histSub {
			if rel := float64(up-v) / float64(v); rel > 1.0/histSub {
				t.Fatalf("value %d: relative error %f exceeds %f", v, rel, 1.0/histSub)
			}
		}
	}
	for v := uint64(0); v < 4096; v++ {
		check(v)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100000; i++ {
		check(rng.Uint64())
	}
	check(math.MaxUint64)
	if got := bucketIndex(math.MaxUint64); got != histBuckets-1 {
		t.Fatalf("MaxUint64 bucket = %d, want %d", got, histBuckets-1)
	}
	if got := bucketUpper(histBuckets - 1); got != math.MaxUint64 {
		t.Fatalf("last bucket upper = %d, want MaxUint64", got)
	}
}

// quantileExact is the sort-based reference the histogram replaces.
func quantileExact(vals []uint64, q float64) uint64 {
	s := append([]uint64(nil), vals...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(math.Ceil(q*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s[rank]
}

// TestQuantileAccuracy bounds the histogram's quantile error against the
// exact sort on random and adversarial distributions: estimates must
// never be low and at most 1/histSub high.
func TestQuantileAccuracy(t *testing.T) {
	skipDisabled(t)
	rng := rand.New(rand.NewSource(42))
	dists := map[string]func(n int) []uint64{
		"uniform": func(n int) []uint64 {
			v := make([]uint64, n)
			for i := range v {
				v[i] = uint64(rng.Int63n(1e9))
			}
			return v
		},
		"lognormal": func(n int) []uint64 {
			v := make([]uint64, n)
			for i := range v {
				v[i] = uint64(math.Exp(rng.NormFloat64()*2 + 12))
			}
			return v
		},
		"constant": func(n int) []uint64 {
			v := make([]uint64, n)
			for i := range v {
				v[i] = 123457
			}
			return v
		},
		// Adversarial: values pinned to power-of-two bucket edges, where
		// off-by-one index math would show.
		"edges": func(n int) []uint64 {
			v := make([]uint64, n)
			for i := range v {
				e := uint(rng.Intn(40))
				v[i] = (1 << e) - uint64(rng.Intn(2))
			}
			return v
		},
		// Adversarial: bimodal with a 5-decade gap, probing interpolation
		// assumptions (there are none to exploit — buckets are counted).
		"bimodal": func(n int) []uint64 {
			v := make([]uint64, n)
			for i := range v {
				if i%10 == 0 {
					v[i] = uint64(1e10 + rng.Int63n(1e9))
				} else {
					v[i] = uint64(100 + rng.Int63n(100))
				}
			}
			return v
		},
	}
	for name, gen := range dists {
		vals := gen(20000)
		h := NewHistogram()
		for _, v := range vals {
			h.Observe(v)
		}
		snap := h.Snapshot()
		if snap.Count != uint64(len(vals)) {
			t.Fatalf("%s: count %d != %d", name, snap.Count, len(vals))
		}
		for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
			exact := quantileExact(vals, q)
			est := snap.Quantile(q)
			if est < exact {
				t.Errorf("%s q%g: estimate %d below exact %d", name, q, est, exact)
			}
			// The estimate is the upper bound of the exact value's bucket
			// (or an adjacent tie), so it overshoots by at most one bucket
			// width: 1/histSub relative, +1 for the integer edge.
			limit := exact + exact/histSub + 1
			if est > limit {
				t.Errorf("%s q%g: estimate %d exceeds bound %d (exact %d)", name, q, est, limit, exact)
			}
		}
	}
}

// TestSnapshotMergeAssociative checks (a∪b)∪c == a∪(b∪c) bucket-wise,
// the property that makes per-shard and per-window merging order-free.
func TestSnapshotMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mk := func() HistSnapshot {
		h := NewHistogram()
		for i := 0; i < 5000; i++ {
			h.Observe(uint64(rng.Int63n(1 << uint(20+rng.Intn(20)))))
		}
		return h.Snapshot()
	}
	a, b, c := mk(), mk(), mk()
	left := a.Merge(b).Merge(c)
	right := a.Merge(b.Merge(c))
	if left.Count != right.Count || left.Sum != right.Sum {
		t.Fatalf("merge not associative: counts %d/%d sums %d/%d",
			left.Count, right.Count, left.Sum, right.Sum)
	}
	for i := range left.counts {
		if left.counts[i] != right.counts[i] {
			t.Fatalf("merge not associative at bucket %d: %d != %d", i, left.counts[i], right.counts[i])
		}
	}
	// Commutativity and identity ride along.
	ab, ba := a.Merge(b), b.Merge(a)
	for i := range ab.counts {
		if ab.counts[i] != ba.counts[i] {
			t.Fatalf("merge not commutative at bucket %d", i)
		}
	}
	if z := a.Merge(HistSnapshot{}); z.Count != a.Count || z.Sum != a.Sum {
		t.Fatal("merging the zero snapshot changed the histogram")
	}
	for _, q := range []float64{0.5, 0.99} {
		if left.Quantile(q) != right.Quantile(q) {
			t.Fatalf("quantile %g differs across merge orders", q)
		}
	}
}

// TestHistogramConcurrent checks observations are not lost under
// concurrent writers (run with -race for the memory-model half).
func TestHistogramConcurrent(t *testing.T) {
	skipDisabled(t)
	h := NewHistogram()
	const goroutines, per = 8, 20000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < per; i++ {
				h.Observe(uint64(rng.Int63n(1e6)))
			}
		}(g)
	}
	wg.Wait()
	if got, want := h.Snapshot().Count, uint64(goroutines*per); got != want {
		t.Fatalf("histogram lost observations: got %d, want %d", got, want)
	}
}

// TestRegistry exercises get-or-create identity, label rendering, and
// the Prometheus exposition shape.
func TestRegistry(t *testing.T) {
	skipDisabled(t)
	r := New()
	c1 := r.Counter("prio_test_total", "a counter", Label{"outcome", "ok"})
	c2 := r.Counter("prio_test_total", "a counter", Label{"outcome", "ok"})
	if c1 != c2 {
		t.Fatal("get-or-create returned distinct counters for identical series")
	}
	c1.Add(3)
	r.Counter("prio_test_total", "a counter", Label{"outcome", "bad"}).Add(1)
	r.Gauge("prio_test_depth", "a gauge").Set(7)
	r.CounterFunc("prio_test_func_total", "a counter func", func() uint64 { return 9 })
	d := r.Duration("prio_test_seconds", "a duration histogram")
	d.Observe(1500 * time.Microsecond)
	d.Observe(2 * time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE prio_test_total counter",
		`prio_test_total{outcome="ok"} 3`,
		`prio_test_total{outcome="bad"} 1`,
		"prio_test_depth 7",
		"prio_test_func_total 9",
		"# TYPE prio_test_seconds histogram",
		`prio_test_seconds_bucket{le="+Inf"} 2`,
		"prio_test_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q in:\n%s", want, out)
		}
	}
	// Duration histograms export seconds: the sum of 1.5ms + 2ms.
	if !strings.Contains(out, "prio_test_seconds_sum 0.0035") {
		t.Errorf("duration sum not in seconds:\n%s", out)
	}

	snap := r.Snapshot()
	if snap[`prio_test_total{outcome="ok"}`] != uint64(3) {
		t.Errorf("expvar snapshot counter = %v", snap[`prio_test_total{outcome="ok"}`])
	}
	hist, ok := snap["prio_test_seconds"].(map[string]any)
	if !ok || hist["count"] != uint64(2) {
		t.Errorf("expvar snapshot histogram = %v", snap["prio_test_seconds"])
	}
}

// TestRegistryConcurrent races get-or-create against scraping.
func TestRegistryConcurrent(t *testing.T) {
	skipDisabled(t)
	r := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("prio_conc_total", "c", Label{"g", string(rune('a' + g%4))}).Inc()
				r.Duration("prio_conc_seconds", "d").Observe(time.Duration(i))
			}
		}(g)
	}
	for i := 0; i < 10; i++ {
		var b strings.Builder
		_ = r.WritePrometheus(&b)
		_ = r.Snapshot()
	}
	wg.Wait()
	var total uint64
	for _, g := range []string{"a", "b", "c", "d"} {
		total += r.Counter("prio_conc_total", "c", Label{"g", g}).Value()
	}
	if total != 8*200 {
		t.Fatalf("lost counts across label series: %d", total)
	}
}

// TestTracer checks sampling cadence, span bookkeeping, and ring
// eviction.
func TestTracer(t *testing.T) {
	skipDisabled(t)
	tr := NewTracer(4, 8)
	var sampled int
	for i := 0; i < 64; i++ {
		s := tr.Sample()
		if s == nil {
			continue
		}
		sampled++
		s.Stage("ingest")
		s.Stage("verify")
		s.Finish("accepted")
	}
	if sampled != 16 {
		t.Fatalf("sampled %d of 64 at 1-in-4", sampled)
	}
	traces := tr.Snapshot()
	if len(traces) != 8 {
		t.Fatalf("ring holds %d traces, want capacity 8", len(traces))
	}
	for _, s := range traces {
		if s.Outcome != "accepted" || len(s.Spans) != 2 {
			t.Fatalf("trace %d: outcome %q spans %d", s.ID, s.Outcome, len(s.Spans))
		}
		if s.Spans[0].Stage != "ingest" || s.Spans[1].Stage != "verify" {
			t.Fatalf("trace %d: stages %v", s.ID, s.Spans)
		}
		if s.Spans[1].AtNS < s.Spans[0].AtNS {
			t.Fatalf("trace %d: spans out of order", s.ID)
		}
	}
	// Oldest-first ordering: IDs ascend.
	for i := 1; i < len(traces); i++ {
		if traces[i].ID <= traces[i-1].ID {
			t.Fatalf("ring not oldest-first: %d then %d", traces[i-1].ID, traces[i].ID)
		}
	}
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"outcome": "accepted"`) {
		t.Fatalf("trace JSON missing outcome: %s", b.String())
	}

	// Disabled and nil tracers never sample and dump empty arrays.
	if NewTracer(0, 8) != nil {
		t.Fatal("every=0 should return a nil tracer")
	}
	var none *Tracer
	if none.Sample() != nil {
		t.Fatal("nil tracer sampled")
	}
	b.Reset()
	if err := none.WriteJSON(&b); err != nil || !strings.Contains(b.String(), "[]") {
		t.Fatalf("nil tracer dump = %q, %v", b.String(), err)
	}
	var noTrace *Trace
	noTrace.Stage("x")
	noTrace.Finish("y")
}

// TestTracerConcurrent samples from many goroutines with handoffs
// (-race is the real assertion).
func TestTracerConcurrent(t *testing.T) {
	skipDisabled(t)
	tr := NewTracer(2, 32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s := tr.Sample()
				s.Stage("a")
				done := make(chan struct{})
				go func() { // cross-goroutine handoff, as ingest → shard does
					s.Stage("b")
					s.Finish("ok")
					close(done)
				}()
				<-done
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Snapshot()); got != 32 {
		t.Fatalf("ring holds %d, want 32", got)
	}
}
