package telemetry

import "sync"

// WindowView slices a registry's cumulative series into per-window deltas:
// call Advance at each collection-window boundary and it returns what every
// counter and histogram accumulated since the previous boundary. This is the
// windowed companion to the always-cumulative /metrics view — the stage
// histograms and counters keep their monotone semantics for Prometheus,
// while window-oriented consumers (the window service's per-window ledger,
// prio-load's interval lines) read bounded per-window series from the same
// underlying metrics instead of double-instrumenting the hot path.
//
// Gauges are skipped: they are instantaneous readings, and a delta of two
// gauge reads means nothing. Advance is safe for concurrent use with metric
// writers; like Snapshot, a boundary taken mid-traffic can be off by the few
// observations landing during the sweep.
type WindowView struct {
	reg *Registry

	mu       sync.Mutex
	counters map[string]uint64
	hists    map[string]HistSnapshot
}

// SeriesDelta is one series' change across a window. Exactly one of Counter
// and Hist is meaningful, per IsHist.
type SeriesDelta struct {
	Counter uint64
	Hist    HistSnapshot
	IsHist  bool
	// Scale converts Hist values to export units (1e-9 for durations).
	Scale float64
}

// NewWindowView starts a view whose first Advance reports everything
// accumulated so far (baseline zero).
func (r *Registry) NewWindowView() *WindowView {
	return &WindowView{
		reg:      r,
		counters: make(map[string]uint64),
		hists:    make(map[string]HistSnapshot),
	}
}

// Advance closes the current window: it returns each cumulative series'
// delta since the previous Advance, keyed by name plus rendered labels, and
// makes now the new baseline. A counter that went backwards (a restarted
// subsystem re-registering) reports its current value whole.
func (v *WindowView) Advance() map[string]SeriesDelta {
	out := make(map[string]SeriesDelta)
	if v == nil {
		return out
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, fam := range v.reg.snapshotFamilies() {
		for _, s := range fam.series {
			key := fam.name + s.labels
			switch fam.kind {
			case kindCounter, kindCounterFunc:
				var cur uint64
				if fam.kind == kindCounter {
					cur = s.c.Value()
				} else {
					cur = s.cf()
				}
				d := cur
				if prev, ok := v.counters[key]; ok && cur >= prev {
					d = cur - prev
				}
				v.counters[key] = cur
				out[key] = SeriesDelta{Counter: d}
			case kindHistogram:
				cur := s.h.Snapshot()
				out[key] = SeriesDelta{
					Hist:   cur.Delta(v.hists[key]),
					IsHist: true,
					Scale:  s.h.scale,
				}
				v.hists[key] = cur
			}
		}
	}
	return out
}
