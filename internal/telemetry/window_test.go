package telemetry

import (
	"testing"
	"time"
)

func TestHistSnapshotDelta(t *testing.T) {
	skipDisabled(t)
	h := NewHistogram()
	for _, v := range []uint64{1, 5, 100} {
		h.Observe(v)
	}
	base := h.Snapshot()
	for _, v := range []uint64{7, 7, 2000} {
		h.Observe(v)
	}
	d := h.Snapshot().Delta(base)
	if d.Count != 3 || d.Sum != 7+7+2000 {
		t.Fatalf("delta count=%d sum=%d, want 3, 2014", d.Count, d.Sum)
	}
	if q := d.Quantile(0.5); q < 7 || q > 8 {
		t.Fatalf("delta p50 = %d, want ~7", q)
	}
	// Delta then Merge reconstructs the cumulative snapshot.
	full := h.Snapshot()
	re := base.Merge(d)
	if re.Count != full.Count || re.Sum != full.Sum {
		t.Fatalf("base+delta = %d/%d, cumulative = %d/%d", re.Count, re.Sum, full.Count, full.Sum)
	}
	// A reset (current not a superset of baseline) returns current whole.
	h2 := NewHistogram()
	h2.Observe(3)
	if d := h2.Snapshot().Delta(base); d.Count != 1 || d.Sum != 3 {
		t.Fatalf("reset delta = %d/%d, want 1/3", d.Count, d.Sum)
	}
	// Empty baseline is the identity.
	if d := full.Delta(HistSnapshot{}); d.Count != full.Count {
		t.Fatal("empty baseline delta should return current whole")
	}
}

func TestWindowViewAdvance(t *testing.T) {
	skipDisabled(t)
	r := New()
	c := r.Counter("acc_total", "accepted")
	var fnVal uint64
	r.CounterFunc("fn_total", "func-backed", func() uint64 { return fnVal })
	d := r.Duration("lat_seconds", "latency")
	r.Gauge("depth", "queue depth").Set(9) // gauges are skipped

	c.Add(5)
	fnVal = 2
	d.Observe(10 * time.Millisecond)

	v := r.NewWindowView()
	w1 := v.Advance()
	if w1["acc_total"].Counter != 5 || w1["fn_total"].Counter != 2 {
		t.Fatalf("first window counters: %+v", w1)
	}
	if got := w1["lat_seconds"]; !got.IsHist || got.Hist.Count != 1 || got.Scale != 1e-9 {
		t.Fatalf("first window histogram: %+v", got)
	}
	if _, ok := w1["depth"]; ok {
		t.Fatal("gauge leaked into window deltas")
	}

	c.Add(3)
	d.Observe(20 * time.Millisecond)
	d.Observe(30 * time.Millisecond)
	w2 := v.Advance()
	if w2["acc_total"].Counter != 3 {
		t.Fatalf("second window counter = %d, want 3", w2["acc_total"].Counter)
	}
	if w2["fn_total"].Counter != 0 {
		t.Fatalf("idle func counter delta = %d, want 0", w2["fn_total"].Counter)
	}
	if h := w2["lat_seconds"].Hist; h.Count != 2 || h.Sum != uint64(50*time.Millisecond) {
		t.Fatalf("second window histogram = %d/%d", h.Count, h.Sum)
	}

	// An idle third window is all zeros.
	w3 := v.Advance()
	if w3["acc_total"].Counter != 0 || w3["lat_seconds"].Hist.Count != 0 {
		t.Fatalf("idle window not empty: %+v", w3)
	}
}
