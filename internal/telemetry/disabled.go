//go:build notelemetry

package telemetry

// Enabled is false under -tags notelemetry: every metric write compiles
// to an immediate return and call sites guarded by it skip their
// time.Now() reads, so the instrumented binary runs at bare speed.
const Enabled = false
