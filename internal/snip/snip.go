package snip

import (
	"errors"
	"fmt"
	"io"
	"math/bits"
	"sync"
	"sync/atomic"

	"prio/internal/circuit"
	"prio/internal/field"
	"prio/internal/poly"
	"prio/internal/share"
)

// Params configures a SNIP system.
type Params struct {
	// Reps is the number of independent polynomial identity tests. One test
	// fails a cheating client with probability ≤ 2N/|F|; over F64 use 2 reps
	// for ≈2⁻⁹⁰ soundness, over F128 a single test already gives ≈2⁻¹¹⁴
	// (Section 4.3: take |F| ≈ 2^128 "or repeat Step 3 a few times").
	// Zero means 1.
	Reps int
}

// Errors returned by the prover and verifier.
var (
	ErrFieldTooSmall = errors.New("snip: field two-adicity insufficient for circuit size")
	ErrDimensions    = errors.New("snip: proof dimensions do not match system")
)

// Triple is an additive share (or clear value) of a Beaver multiplication
// triple a·b = c.
type Triple[E any] struct {
	A, B, C E
}

// System binds a field, a validation circuit and proof parameters, and
// precomputes the NTT domains shared by prover and verifiers. A System's
// parameters are immutable and it is safe for concurrent use; the only
// mutable state is the internal challenge-keyed evaluator cache, which is
// guarded by its own lock.
type System[Fd field.Field[E], E any] struct {
	F    Fd
	C    *circuit.Circuit[E]
	Reps int

	// M is the multiplication-gate count; N = 2^LogN is the interpolation
	// domain size, the least power of two with room for the M wire points,
	// the random anchor at position 0, and Reps-1 extra random anchors that
	// keep repeated identity tests zero-knowledge.
	M, N, LogN int

	dN  *poly.Domain[Fd, E] // nil when M == 0
	d2N *poly.Domain[Fd, E]

	// Challenge-keyed evaluator cache (CachedEvaluator): in-process servers
	// sharing a System and a challenge share one Lagrange precomputation.
	evMu    sync.Mutex
	evCache map[string]*Evaluator[Fd, E]
	evOrder []string

	// Cache outcome counters (atomic; see EvCacheStats). A healthy
	// deployment hits almost always — each challenge rotation costs one
	// miss shared by every in-process server.
	evHits, evMisses uint64
}

// EvCacheStats reports the evaluator cache's cumulative hits and misses —
// the telemetry layer exposes them as the cache hit-rate a mis-tuned
// rotation cadence (or a challenge flood) would degrade.
func (sys *System[Fd, E]) EvCacheStats() (hits, misses uint64) {
	return atomic.LoadUint64(&sys.evHits), atomic.LoadUint64(&sys.evMisses)
}

// NewSystem builds a SNIP system for circuit c over field f. It fails if
// the field's two-adicity cannot accommodate the required NTT sizes.
func NewSystem[Fd field.Field[E], E any](f Fd, c *circuit.Circuit[E], p Params) (*System[Fd, E], error) {
	reps := p.Reps
	if reps <= 0 {
		reps = 1
	}
	sys := &System[Fd, E]{F: f, C: c, Reps: reps, M: c.M()}
	if sys.M == 0 {
		// Purely affine circuit: no polynomial test needed, only the
		// assertion-wire check.
		return sys, nil
	}
	need := sys.M + reps // positions 1..M plus anchors {0, M+1..M+reps-1}
	logN := bits.Len(uint(need - 1))
	if 1<<uint(logN) < need {
		logN++
	}
	if logN+1 > f.TwoAdicity() {
		return nil, fmt.Errorf("%w: need 2^%d-point domain over %s", ErrFieldTooSmall, logN+1, f.Name())
	}
	sys.LogN = logN
	sys.N = 1 << uint(logN)
	sys.dN = poly.NewDomain(f, logN)
	sys.d2N = poly.NewDomain(f, logN+1)
	return sys, nil
}

// Proof is a SNIP proof — or, since sharing is component-wise, one additive
// share of a SNIP proof. H is in point-value form over the 2N-point domain;
// H[2t] is h(ω_N^t), the output of multiplication gate t.
type Proof[E any] struct {
	F0, G0     E
	FPad, GPad []E         // Reps-1 extra random anchors each
	H          []E         // 2N evaluations of h (empty when M == 0)
	Triples    []Triple[E] // one Beaver triple per repetition
}

// ProofLen returns the number of field elements in a proof (share): the
// client-to-server cost that grows linearly in M (Table 2, "Proof len").
func (sys *System[Fd, E]) ProofLen() int {
	if sys.M == 0 {
		return 0
	}
	return 2 + 2*(sys.Reps-1) + 2*sys.N + 3*sys.Reps
}

// Prove builds the SNIP proof for input x. The prover evaluates Valid(x),
// interpolates f and g through the multiplication-gate operands (with
// uniformly random anchors for zero knowledge), computes h = f·g by NTT, and
// deals itself Beaver triples (Section 4.2, step 1 and step 3b).
//
// Prove does not require Valid(x) to hold: dishonest inputs yield proofs the
// servers will reject, which the adversarial tests rely on.
func (sys *System[Fd, E]) Prove(x []E, rnd io.Reader) (*Proof[E], error) {
	f := sys.F
	if len(x) != sys.C.NumInputs {
		return nil, fmt.Errorf("snip: input has %d elements, circuit wants %d", len(x), sys.C.NumInputs)
	}
	pf := &Proof[E]{}
	if sys.M == 0 {
		return pf, nil
	}
	tr := circuit.Eval(f, sys.C, x)

	// Point-value tables for f and g over the N-domain: wire operands at
	// positions 1..M, random anchors at 0 and M+1..M+Reps-1, zero elsewhere.
	fv := make([]E, sys.N)
	gv := make([]E, sys.N)
	for i := range fv {
		fv[i] = f.Zero()
		gv[i] = f.Zero()
	}
	var err error
	if pf.F0, err = f.SampleElem(rnd); err != nil {
		return nil, err
	}
	if pf.G0, err = f.SampleElem(rnd); err != nil {
		return nil, err
	}
	fv[0], gv[0] = pf.F0, pf.G0
	copy(fv[1:], tr.U)
	copy(gv[1:], tr.V)
	pf.FPad = make([]E, sys.Reps-1)
	pf.GPad = make([]E, sys.Reps-1)
	for j := range pf.FPad {
		if pf.FPad[j], err = f.SampleElem(rnd); err != nil {
			return nil, err
		}
		if pf.GPad[j], err = f.SampleElem(rnd); err != nil {
			return nil, err
		}
		fv[sys.M+1+j] = pf.FPad[j]
		gv[sys.M+1+j] = pf.GPad[j]
	}

	// Interpolate (INTT), zero-pad to 2N, evaluate (NTT), multiply pointwise.
	sys.dN.INTT(fv)
	sys.dN.INTT(gv)
	f2 := make([]E, 2*sys.N)
	g2 := make([]E, 2*sys.N)
	zero := f.Zero()
	for i := range f2 {
		f2[i], g2[i] = zero, zero
	}
	copy(f2, fv)
	copy(g2, gv)
	sys.d2N.NTT(f2)
	sys.d2N.NTT(g2)
	pf.H = make([]E, 2*sys.N)
	for i := range pf.H {
		pf.H[i] = f.Mul(f2[i], g2[i])
	}

	pf.Triples = make([]Triple[E], sys.Reps)
	for j := range pf.Triples {
		a, err := f.SampleElem(rnd)
		if err != nil {
			return nil, err
		}
		b, err := f.SampleElem(rnd)
		if err != nil {
			return nil, err
		}
		pf.Triples[j] = Triple[E]{A: a, B: b, C: f.Mul(a, b)}
	}
	return pf, nil
}

// Split divides the proof into s additive shares (component-wise). The
// original proof is not modified.
func (sys *System[Fd, E]) Split(pf *Proof[E], s int, rnd io.Reader) ([]*Proof[E], error) {
	f := sys.F
	if s < 1 {
		return nil, share.ErrBadShareCount
	}
	// Flatten, split, unflatten: keeps the sharing logic in one place.
	flat := sys.flatten(pf)
	shares, err := share.Split(f, rnd, flat, s)
	if err != nil {
		return nil, err
	}
	out := make([]*Proof[E], s)
	for i := range shares {
		out[i] = sys.unflatten(shares[i])
	}
	return out, nil
}

// FlattenProof packs a proof into a single vector of ProofLen elements in a
// fixed layout; it is how the pipeline serializes proof shares and folds
// them into PRG-compressed bundles.
func (sys *System[Fd, E]) FlattenProof(pf *Proof[E]) []E { return sys.flatten(pf) }

// UnflattenProof is the inverse of FlattenProof.
func (sys *System[Fd, E]) UnflattenProof(flat []E) (*Proof[E], error) {
	if len(flat) != sys.ProofLen() {
		return nil, ErrDimensions
	}
	return sys.unflatten(flat), nil
}

// flatten packs a proof into a single vector in a fixed layout.
func (sys *System[Fd, E]) flatten(pf *Proof[E]) []E {
	if sys.M == 0 {
		return nil
	}
	flat := make([]E, 0, sys.ProofLen())
	flat = append(flat, pf.F0, pf.G0)
	flat = append(flat, pf.FPad...)
	flat = append(flat, pf.GPad...)
	flat = append(flat, pf.H...)
	for _, t := range pf.Triples {
		flat = append(flat, t.A, t.B, t.C)
	}
	return flat
}

// unflatten is the inverse of flatten.
func (sys *System[Fd, E]) unflatten(flat []E) *Proof[E] {
	pf := &Proof[E]{}
	if sys.M == 0 {
		return pf
	}
	pf.F0, pf.G0 = flat[0], flat[1]
	idx := 2
	pf.FPad = append([]E(nil), flat[idx:idx+sys.Reps-1]...)
	idx += sys.Reps - 1
	pf.GPad = append([]E(nil), flat[idx:idx+sys.Reps-1]...)
	idx += sys.Reps - 1
	pf.H = append([]E(nil), flat[idx:idx+2*sys.N]...)
	idx += 2 * sys.N
	pf.Triples = make([]Triple[E], sys.Reps)
	for j := range pf.Triples {
		pf.Triples[j] = Triple[E]{A: flat[idx], B: flat[idx+1], C: flat[idx+2]}
		idx += 3
	}
	return pf
}

// checkDims validates that a received proof share has the shape this system
// expects; malformed shapes are rejected before any arithmetic.
func (sys *System[Fd, E]) checkDims(pf *Proof[E]) error {
	if sys.M == 0 {
		if len(pf.H) != 0 || len(pf.Triples) != 0 {
			return ErrDimensions
		}
		return nil
	}
	if len(pf.FPad) != sys.Reps-1 || len(pf.GPad) != sys.Reps-1 ||
		len(pf.H) != 2*sys.N || len(pf.Triples) != sys.Reps {
		return ErrDimensions
	}
	return nil
}
