package snip

import (
	"io"
	"sync"

	"prio/internal/circuit"
	"prio/internal/field"
)

// Challenge holds the verifier-side randomness for one verification batch:
// the identity-test points r (one per repetition, sampled outside the NTT
// domain so in-domain leakage cannot occur) and the coefficients of the
// random linear combination over assertion wires. Servers share a Challenge;
// clients must not learn it before submitting (Appendix I discusses reusing
// one challenge across a bounded batch of Q submissions, degrading soundness
// to (2M+1)Q/|F|).
type Challenge[E any] struct {
	R   []E // identity-test evaluation points, len Reps
	Rho []E // assertion combination coefficients, len(C.Asserts)
}

// NewChallenge samples a challenge from rnd.
func (sys *System[Fd, E]) NewChallenge(rnd io.Reader) (*Challenge[E], error) {
	f := sys.F
	ch := &Challenge[E]{}
	if sys.M > 0 {
		ch.R = make([]E, sys.Reps)
		for j := range ch.R {
		resample:
			r, err := f.SampleElem(rnd)
			if err != nil {
				return nil, err
			}
			// Exclude the 2N-point domain (r^2N == 1) and repeats: both are
			// negligible events, but excluding them keeps zero knowledge
			// unconditional (Appendix D.2 requires r outside {ω^t}).
			if f.Equal(field.Pow(f, r, uint64(2*sys.N)), f.One()) {
				goto resample
			}
			for k := 0; k < j; k++ {
				if f.Equal(ch.R[k], r) {
					goto resample
				}
			}
			ch.R[j] = r
		}
	}
	ch.Rho = make([]E, len(sys.C.Asserts))
	for k := range ch.Rho {
		rho, err := f.SampleElem(rnd)
		if err != nil {
			return nil, err
		}
		ch.Rho[k] = rho
	}
	return ch, nil
}

// Evaluator is the per-challenge verification engine: it owns the
// precomputed Lagrange evaluation weights for every identity-test point, so
// verifying a submission costs one circuit walk plus a handful of O(N)
// inner products (Appendix I, optimization 2). Evaluators are immutable and
// safe for concurrent use.
type Evaluator[Fd field.Field[E], E any] struct {
	sys *System[Fd, E]
	ch  *Challenge[E]
	wN  [][]E // per rep: weights evaluating a share of f or g at r_j
	w2N [][]E // per rep: weights evaluating a share of h at r_j

	batchOnce sync.Once
	batch     *BatchVerifier[Fd, E] // lazily built by Batch()
}

// NewEvaluator precomputes the evaluation weights for ch.
func (sys *System[Fd, E]) NewEvaluator(ch *Challenge[E]) *Evaluator[Fd, E] {
	ev := &Evaluator[Fd, E]{sys: sys, ch: ch}
	if sys.M > 0 {
		ev.wN = make([][]E, sys.Reps)
		ev.w2N = make([][]E, sys.Reps)
		for j, r := range ch.R {
			ev.wN[j] = sys.dN.EvalWeights(r)
			ev.w2N[j] = sys.d2N.EvalWeights(r)
		}
	}
	return ev
}

// State carries one server's intermediate values between the two
// verification rounds for a single submission.
type State[E any] struct {
	hr      []E         // shares of h(r_j)
	triples []Triple[E] // this server's triple shares
	tau     E           // share of Σ ρ_k · assert_k
}

// Round1 is the first server-to-server message of the Beaver multiplication:
// shares of d_j = f(r_j) − a_j and e_j = r_j·g(r_j) − b_j. The leader sums
// all servers' Round1 messages to open d and e (Appendix C.2).
type Round1[E any] struct {
	D, E []E
}

// Round2 is the second message: shares of the identity-test results σ_j and
// of the assertion combination τ. The submission is valid iff every σ_j and
// τ sum to zero across servers.
type Round2[E any] struct {
	Sigma []E
	Tau   E
}

// Round1 runs this server's local verification pass over its input share
// and proof share: the circuit walk of Section 4.2 step 2 and the polynomial
// evaluations of step 3a. constServer marks the one server that folds public
// circuit constants into its shares.
func (ev *Evaluator[Fd, E]) Round1(xShare []E, pf *Proof[E], constServer bool) (*State[E], *Round1[E], error) {
	sys := ev.sys
	f := sys.F
	if len(xShare) != sys.C.NumInputs {
		return nil, nil, ErrDimensions
	}
	if err := sys.checkDims(pf); err != nil {
		return nil, nil, err
	}

	var hAtMul []E
	if sys.M > 0 {
		hAtMul = make([]E, sys.M)
		for t := 0; t < sys.M; t++ {
			hAtMul[t] = pf.H[2*(t+1)] // ω_{2N}^{2(t+1)} = ω_N^{t+1}... see below
		}
	}
	// Note on indexing: multiplication gate t (0-based) lives at domain
	// point ω_N^{t+1}; position 0 is the random anchor. The even-indexed
	// entries of the 2N-point table are exactly the N-point table.
	st := circuit.EvalShares(f, sys.C, xShare, hAtMul, constServer)

	state := &State[E]{}
	// Assertion combination share.
	state.tau = f.Zero()
	for k, a := range sys.C.Asserts {
		state.tau = f.Add(state.tau, f.Mul(ev.ch.Rho[k], st.Wires[a]))
	}

	msg := &Round1[E]{}
	if sys.M == 0 {
		return state, msg, nil
	}

	// Assemble the point-value share tables for f and g.
	fv := make([]E, sys.N)
	gv := make([]E, sys.N)
	zero := f.Zero()
	for i := range fv {
		fv[i], gv[i] = zero, zero
	}
	fv[0], gv[0] = pf.F0, pf.G0
	copy(fv[1:], st.U)
	copy(gv[1:], st.V)
	for j := 0; j < sys.Reps-1; j++ {
		fv[sys.M+1+j] = pf.FPad[j]
		gv[sys.M+1+j] = pf.GPad[j]
	}

	state.hr = make([]E, sys.Reps)
	state.triples = pf.Triples
	msg.D = make([]E, sys.Reps)
	msg.E = make([]E, sys.Reps)
	for j := 0; j < sys.Reps; j++ {
		fr := field.InnerProduct(f, ev.wN[j], fv)
		gr := field.InnerProduct(f, ev.wN[j], gv)
		state.hr[j] = field.InnerProduct(f, ev.w2N[j], pf.H)
		msg.D[j] = f.Sub(fr, pf.Triples[j].A)
		msg.E[j] = f.Sub(f.Mul(ev.ch.R[j], gr), pf.Triples[j].B)
	}
	return state, msg, nil
}

// SumRound1 opens the Beaver masks by summing every server's Round1 shares.
// The leader runs this and broadcasts the result.
func SumRound1[Fd field.Field[E], E any](f Fd, msgs []*Round1[E]) *Round1[E] {
	if len(msgs) == 0 {
		return &Round1[E]{}
	}
	out := &Round1[E]{
		D: append([]E(nil), msgs[0].D...),
		E: append([]E(nil), msgs[0].E...),
	}
	for _, m := range msgs[1:] {
		field.AddVec(f, out.D, m.D)
		field.AddVec(f, out.E, m.E)
	}
	return out
}

// Round2 completes the Beaver multiplication with the opened d and e values
// and produces this server's shares of the test results (Section 4.2, steps
// 3b and 4). s is the number of servers (the public constant in Beaver's
// σ_i = de/s + d·b_i + e·a_i + c_i).
func (ev *Evaluator[Fd, E]) Round2(state *State[E], opened *Round1[E], s int) *Round2[E] {
	sys := ev.sys
	f := sys.F
	out := &Round2[E]{Tau: state.tau}
	if sys.M == 0 {
		return out
	}
	invS := f.Inv(f.FromUint64(uint64(s)))
	out.Sigma = make([]E, sys.Reps)
	for j := 0; j < sys.Reps; j++ {
		d, e := opened.D[j], opened.E[j]
		// [f(r)·r·g(r)]_i = de/s + d·b_i + e·a_i + c_i
		prod := f.Mul(f.Mul(d, e), invS)
		prod = f.Add(prod, f.Mul(d, state.triples[j].B))
		prod = f.Add(prod, f.Mul(e, state.triples[j].A))
		prod = f.Add(prod, state.triples[j].C)
		// σ_i = [r·(f(r)g(r) − h(r))]_i
		out.Sigma[j] = f.Sub(prod, f.Mul(ev.ch.R[j], state.hr[j]))
	}
	return out
}

// Decide sums the servers' Round2 shares and accepts iff every identity test
// and the assertion combination are zero.
func (ev *Evaluator[Fd, E]) Decide(msgs []*Round2[E]) bool {
	f := ev.sys.F
	if len(msgs) == 0 {
		return false
	}
	tau := f.Zero()
	sigma := make([]E, len(msgs[0].Sigma))
	for i := range sigma {
		sigma[i] = f.Zero()
	}
	for _, m := range msgs {
		if len(m.Sigma) != len(sigma) {
			return false
		}
		tau = f.Add(tau, m.Tau)
		for j := range sigma {
			sigma[j] = f.Add(sigma[j], m.Sigma[j])
		}
	}
	if !f.IsZero(tau) {
		return false
	}
	for j := range sigma {
		if !f.IsZero(sigma[j]) {
			return false
		}
	}
	return true
}

// VerifyDistributed runs the entire two-round protocol locally across s
// simulated servers and returns the decision. It is the reference flow used
// by tests and by single-process deployments; networked deployments drive
// the same Round1/SumRound1/Round2/Decide sequence over a transport.
func (ev *Evaluator[Fd, E]) VerifyDistributed(xShares [][]E, pfShares []*Proof[E]) (bool, error) {
	s := len(xShares)
	if s == 0 || len(pfShares) != s {
		return false, ErrDimensions
	}
	states := make([]*State[E], s)
	r1 := make([]*Round1[E], s)
	for i := 0; i < s; i++ {
		st, m, err := ev.Round1(xShares[i], pfShares[i], i == 0)
		if err != nil {
			return false, err
		}
		states[i], r1[i] = st, m
	}
	opened := SumRound1(ev.sys.F, r1)
	r2 := make([]*Round2[E], s)
	for i := 0; i < s; i++ {
		r2[i] = ev.Round2(states[i], opened, s)
	}
	return ev.Decide(r2), nil
}
