package snip

import (
	"crypto/rand"
	"testing"

	"prio/internal/circuit"
	"prio/internal/field"
	"prio/internal/share"
)

// range4 is the 4-bit integer validity circuit (value + 4 bits, M = 4).
func range4[Fd field.Field[E], E any](f Fd) *circuit.Circuit[E] {
	b := circuit.NewBuilder(f, 5)
	bits := []circuit.Wire{b.Input(1), b.Input(2), b.Input(3), b.Input(4)}
	b.AssertBitDecomposition(b.Input(0), bits)
	return b.Build()
}

func encode4[Fd field.Field[E], E any](f Fd, v uint64) []E {
	return []E{
		f.FromUint64(v),
		f.FromUint64(v & 1),
		f.FromUint64((v >> 1) & 1),
		f.FromUint64((v >> 2) & 1),
		f.FromUint64((v >> 3) & 1),
	}
}

// runProtocol shares x, proves, and runs distributed verification with s
// servers, returning the decision.
func runProtocol[Fd field.Field[E], E any](t *testing.T, f Fd, sys *System[Fd, E], x []E, s int) bool {
	t.Helper()
	pf, err := sys.Prove(x, rand.Reader)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	return verifyShared(t, f, sys, x, pf, s)
}

func verifyShared[Fd field.Field[E], E any](t *testing.T, f Fd, sys *System[Fd, E], x []E, pf *Proof[E], s int) bool {
	t.Helper()
	xShares, err := share.Split(f, rand.Reader, x, s)
	if err != nil {
		t.Fatal(err)
	}
	pfShares, err := sys.Split(pf, s, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := sys.NewChallenge(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ev := sys.NewEvaluator(ch)
	ok, err := ev.VerifyDistributed(xShares, pfShares)
	if err != nil {
		t.Fatalf("VerifyDistributed: %v", err)
	}
	return ok
}

func TestCompletenessF64(t *testing.T) {
	f := field.NewF64()
	for _, reps := range []int{1, 2, 3} {
		sys, err := NewSystem(f, range4(f), Params{Reps: reps})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []int{1, 2, 5} {
			for v := uint64(0); v < 16; v += 5 {
				if !runProtocol(t, f, sys, encode4(f, v), s) {
					t.Errorf("reps=%d s=%d v=%d: honest submission rejected", reps, s, v)
				}
			}
		}
	}
}

func TestCompletenessF128(t *testing.T) {
	f := field.NewF128()
	sys, err := NewSystem(f, range4(f), Params{})
	if err != nil {
		t.Fatal(err)
	}
	if !runProtocol(t, f, sys, encode4(f, 9), 3) {
		t.Error("F128 honest submission rejected")
	}
}

func TestCompletenessFP87(t *testing.T) {
	f := field.NewFP87()
	sys, err := NewSystem(f, range4(f), Params{})
	if err != nil {
		t.Fatal(err)
	}
	if !runProtocol(t, f, sys, encode4(f, 13), 2) {
		t.Error("FP87 honest submission rejected")
	}
}

func TestRejectsInvalidData(t *testing.T) {
	f := field.NewF64()
	sys, err := NewSystem(f, range4(f), Params{Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]uint64{
		{16, 0, 0, 0, 0},                   // value/bits inconsistent
		{3, 1, 1, 1, 0},                    // bits encode 7, value says 3
		{2, 0, 2, 0, 0},                    // non-bit entry
		{1, field.ModulusF64 - 1, 1, 0, 0}, // wrap-around attack: -1 and ... bits
	}
	for i, x := range bad {
		if runProtocol(t, f, sys, x, 3) {
			t.Errorf("invalid submission %d accepted", i)
		}
	}
}

func TestRejectsLargeValueAttack(t *testing.T) {
	// The headline robustness scenario from Section 1: a client tries to add
	// r >> 1 to a sum that should accept only 0/1 values.
	f := field.NewF64()
	b := circuit.NewBuilder(f, 1)
	b.AssertBit(b.Input(0))
	c := b.Build()
	sys, err := NewSystem(f, c, Params{Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []uint64{2, 100000, field.ModulusF64 - 1} {
		if runProtocol(t, f, sys, []uint64{v}, 5) {
			t.Errorf("out-of-range value %d accepted", v)
		}
	}
	for _, v := range []uint64{0, 1} {
		if !runProtocol(t, f, sys, []uint64{v}, 5) {
			t.Errorf("honest bit %d rejected", v)
		}
	}
}

// TestRejectsTamperedProofs mutates every component of an otherwise honest
// proof and checks the verifiers reject. This exercises the soundness
// theorem (Appendix D.1): any deviation makes the tested polynomial nonzero.
func TestRejectsTamperedProofs(t *testing.T) {
	f := field.NewF64()
	sys, err := NewSystem(f, range4(f), Params{Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	x := encode4(f, 11)

	mutations := []struct {
		name string
		fn   func(pf *Proof[uint64])
	}{
		{"F0", func(pf *Proof[uint64]) { pf.F0 = f.Add(pf.F0, 1) }},
		{"G0", func(pf *Proof[uint64]) { pf.G0 = f.Add(pf.G0, 1) }},
		{"FPad", func(pf *Proof[uint64]) { pf.FPad[0] = f.Add(pf.FPad[0], 1) }},
		{"H-mul-point", func(pf *Proof[uint64]) { pf.H[2] = f.Add(pf.H[2], 1) }},
		{"H-odd-point", func(pf *Proof[uint64]) { pf.H[3] = f.Add(pf.H[3], 1) }},
		{"H-last", func(pf *Proof[uint64]) { pf.H[len(pf.H)-1] = f.Add(pf.H[len(pf.H)-1], 5) }},
		{"triple-A", func(pf *Proof[uint64]) { pf.Triples[0].A = f.Add(pf.Triples[0].A, 1) }},
		{"triple-B", func(pf *Proof[uint64]) { pf.Triples[0].B = f.Add(pf.Triples[0].B, 1) }},
		{"triple-C", func(pf *Proof[uint64]) { pf.Triples[0].C = f.Add(pf.Triples[0].C, 1) }},
		{"triple-C-rep2", func(pf *Proof[uint64]) { pf.Triples[1].C = f.Add(pf.Triples[1].C, 7) }},
	}
	for _, m := range mutations {
		pf, err := sys.Prove(x, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		m.fn(pf)
		if verifyShared(t, f, sys, x, pf, 3) {
			t.Errorf("mutation %q accepted", m.name)
		}
	}
}

// TestRejectsForgedMulOutput models the canonical cheating strategy: the
// client fabricates an h whose value at a multiplication point hides an
// invalid wire (claiming 2·(2−1) = 0 so that the bit check passes). The
// polynomial identity test must catch it.
func TestRejectsForgedMulOutput(t *testing.T) {
	f := field.NewF64()
	b := circuit.NewBuilder(f, 1)
	b.AssertBit(b.Input(0))
	c := b.Build()
	sys, err := NewSystem(f, c, Params{Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	x := []uint64{2} // not a bit: u=2, v=1, true product 2
	pf, err := sys.Prove(x, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// Erase the true product at the multiplication point so the assertion
	// wire share sums to zero.
	delta := f.Sub(0, pf.H[2])
	pf.H[2] = f.Add(pf.H[2], delta)
	accepted := 0
	for trial := 0; trial < 10; trial++ {
		if verifyShared(t, f, sys, x, pf, 3) {
			accepted++
		}
	}
	if accepted > 0 {
		t.Errorf("forged mul output accepted %d/10 times", accepted)
	}
}

func TestAffineOnlyCircuit(t *testing.T) {
	// M = 0: sum of inputs must equal 10; no polynomial machinery at all.
	f := field.NewF64()
	b := circuit.NewBuilder(f, 3)
	sum := b.Sum([]circuit.Wire{b.Input(0), b.Input(1), b.Input(2)})
	b.AssertEqual(sum, b.Const(10))
	c := b.Build()
	sys, err := NewSystem(f, c, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.ProofLen() != 0 {
		t.Errorf("affine circuit proof length = %d, want 0", sys.ProofLen())
	}
	if !runProtocol(t, f, sys, []uint64{1, 2, 7}, 4) {
		t.Error("valid affine submission rejected")
	}
	if runProtocol(t, f, sys, []uint64{1, 2, 8}, 4) {
		t.Error("invalid affine submission accepted")
	}
}

func TestProofLen(t *testing.T) {
	f := field.NewF64()
	sys, err := NewSystem(f, range4(f), Params{Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	pf, err := sys.Prove(encode4(f, 5), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got := 2 + len(pf.FPad) + len(pf.GPad) + len(pf.H) + 3*len(pf.Triples)
	if got != sys.ProofLen() {
		t.Errorf("actual proof elements %d != ProofLen %d", got, sys.ProofLen())
	}
	// M=4, reps=2 → need 6 points → N=8, proof = 2 + 2 + 16 + 6 = 26.
	if sys.N != 8 {
		t.Errorf("N = %d, want 8", sys.N)
	}
	if sys.ProofLen() != 26 {
		t.Errorf("ProofLen = %d, want 26", sys.ProofLen())
	}
}

func TestChallengeAvoidsDomain(t *testing.T) {
	f := field.NewF64()
	sys, err := NewSystem(f, range4(f), Params{Reps: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		ch, err := sys.NewChallenge(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[uint64]bool{}
		for _, r := range ch.R {
			if f.Equal(field.Pow(f, r, uint64(2*sys.N)), f.One()) {
				t.Fatal("challenge point lies in the NTT domain")
			}
			if seen[r] {
				t.Fatal("repeated challenge point")
			}
			seen[r] = true
		}
		if len(ch.Rho) != len(sys.C.Asserts) {
			t.Fatal("wrong number of assertion coefficients")
		}
	}
}

func TestDimensionChecks(t *testing.T) {
	f := field.NewF64()
	sys, err := NewSystem(f, range4(f), Params{})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := sys.NewChallenge(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ev := sys.NewEvaluator(ch)
	x := encode4(f, 3)
	pf, err := sys.Prove(x, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ev.Round1(x[:3], pf, true); err == nil {
		t.Error("Round1 accepted short input share")
	}
	short := *pf
	short.H = pf.H[:len(pf.H)-1]
	if _, _, err := ev.Round1(x, &short, true); err == nil {
		t.Error("Round1 accepted truncated H")
	}
	noTriples := *pf
	noTriples.Triples = nil
	if _, _, err := ev.Round1(x, &noTriples, true); err == nil {
		t.Error("Round1 accepted missing triples")
	}
}

func TestOpenedMasksAreRandomized(t *testing.T) {
	// The opened Beaver values d = f(r) − a and e = r·g(r) − b must change
	// across protocol runs on identical data: they are what the adversary
	// sees, and their uniformity is the heart of the zero-knowledge argument
	// (Appendix D.2).
	f := field.NewF64()
	sys, err := NewSystem(f, range4(f), Params{})
	if err != nil {
		t.Fatal(err)
	}
	x := encode4(f, 7)
	ch, err := sys.NewChallenge(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ev := sys.NewEvaluator(ch)

	seen := map[[2]uint64]bool{}
	for i := 0; i < 30; i++ {
		pf, err := sys.Prove(x, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		xs, err := share.Split(f, rand.Reader, x, 2)
		if err != nil {
			t.Fatal(err)
		}
		ps, err := sys.Split(pf, 2, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		var r1s []*Round1[uint64]
		var states []*State[uint64]
		for j := 0; j < 2; j++ {
			st, m, err := ev.Round1(xs[j], ps[j], j == 0)
			if err != nil {
				t.Fatal(err)
			}
			states = append(states, st)
			r1s = append(r1s, m)
		}
		opened := SumRound1(f, r1s)
		key := [2]uint64{opened.D[0], opened.E[0]}
		if seen[key] {
			t.Fatal("opened (d,e) repeated across runs: Beaver masks are not fresh")
		}
		seen[key] = true
		// The run must still verify.
		r2 := []*Round2[uint64]{ev.Round2(states[0], opened, 2), ev.Round2(states[1], opened, 2)}
		if !ev.Decide(r2) {
			t.Fatal("honest run rejected")
		}
	}
}

func TestFieldTooSmall(t *testing.T) {
	// F2 has two-adicity 0; any circuit with a multiplication gate must be
	// refused.
	f := field.NewF2()
	b := circuit.NewBuilder(f, 1)
	b.AssertBit(b.Input(0))
	c := b.Build()
	if _, err := NewSystem(f, c, Params{}); err == nil {
		t.Error("NewSystem accepted a field with insufficient two-adicity")
	}
}

func TestDecideRejectsEmptyAndMismatched(t *testing.T) {
	f := field.NewF64()
	sys, err := NewSystem(f, range4(f), Params{})
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := sys.NewChallenge(rand.Reader)
	ev := sys.NewEvaluator(ch)
	if ev.Decide(nil) {
		t.Error("Decide accepted empty message set")
	}
	if ev.Decide([]*Round2[uint64]{{Sigma: []uint64{0}}, {Sigma: []uint64{0, 0}}}) {
		t.Error("Decide accepted mismatched sigma lengths")
	}
}
