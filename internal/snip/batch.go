package snip

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sync/atomic"

	"prio/internal/circuit"
	"prio/internal/field"
	"prio/internal/prg"
)

// Batch SNIP verification. The per-submission protocol (verify.go) spends
// its cycles on (a) the circuit walk, (b) the Lagrange inner products that
// evaluate f, g and h shares at the challenge point, and (c) per-element
// generics dispatch. The batch path removes all three for same-shape
// submissions checked under one challenge:
//
//   - the circuit is walked gate-major over lane slabs, once per batch;
//   - the expensive h evaluation ⟨w2N, H_i⟩ is deferred out of Round1 and
//     amortized by a random linear combination: the servers publish a single
//     σ_comb = Σ_i λ_i·σ_i per repetition, which costs ONE 2N-length inner
//     product per repetition for the whole batch instead of one per
//     submission (Σ_i λ_i·⟨w2N, H_i⟩ = ⟨w2N, Σ_i λ_i·H_i⟩, and the fold
//     Σ λ_i·H_i is a reduction-free multiply-accumulate pass);
//   - over F64 all slab math runs through the monomorphic kernels in
//     internal/field.
//
// Soundness: with λ drawn after the submissions are fixed and never reused
// across batches, a range containing an invalid submission passes one
// repetition with probability ≤ (2N+1)/|F| + 1/(|F|−1) (identity-test
// slack plus the chance λ aligns with the kernel of the bad σ/τ vector).
// When the combined check fails, the leader bisects with fresh λ per probe;
// a singleton range with nonzero λ is exactly the per-submission test
// (λ·σ = 0 ⟺ σ = 0), so the accepted set equals the per-submission
// verifier's accepted set up to the negligible interior-probe error.
// docs/VERIFY.md develops the full argument.

// ErrBatchState is returned when BatchVerifier methods are invoked out of
// order or with arguments inconsistent with the batch: a missing SetOpened,
// an opened-mask count that does not match the batch, out-of-range probe
// bounds, or a λ vector of the wrong length.
var ErrBatchState = errors.New("snip: batch verifier state mismatch")

// ShapeKey identifies the circuit shape this system verifies: two systems
// with equal keys verify interchangeable submissions. It is the cache key
// deployments use to share per-shape verification precomputation.
func (sys *System[Fd, E]) ShapeKey() string {
	return fmt.Sprintf("%s/in%d/g%d/m%d/n%d/rep%d/as%d",
		sys.F.Name(), sys.C.NumInputs, len(sys.C.Gates), sys.M, sys.N, sys.Reps, len(sys.C.Asserts))
}

// evCacheCap bounds the challenge-keyed evaluator cache. Deployments rotate
// challenges on a window of two or three; eight leaves slack for overlap
// during rotation without letting a challenge flood grow the cache.
const evCacheCap = 8

// CachedEvaluator returns an Evaluator for ch, memoized by a digest of the
// challenge and the circuit shape, so every in-process server verifying the
// same batch shares one O(N·Reps) Lagrange-weight precomputation instead of
// each rebuilding it. The cache holds the evCacheCap most recent challenges.
func (sys *System[Fd, E]) CachedEvaluator(ch *Challenge[E]) *Evaluator[Fd, E] {
	shape := sys.ShapeKey()
	buf := make([]byte, 0, len(shape)+16*(len(ch.R)+len(ch.Rho)))
	buf = append(buf, shape...)
	buf = field.AppendVec(sys.F, buf, ch.R)
	buf = field.AppendVec(sys.F, buf, ch.Rho)
	sum := sha256.Sum256(buf)
	key := string(sum[:])

	sys.evMu.Lock()
	if ev, ok := sys.evCache[key]; ok {
		sys.evMu.Unlock()
		atomic.AddUint64(&sys.evHits, 1)
		return ev
	}
	sys.evMu.Unlock()
	// Build outside the lock: EvalWeights is O(N) per repetition and other
	// challenges' lookups should not wait on it.
	atomic.AddUint64(&sys.evMisses, 1)
	ev := sys.NewEvaluator(ch)
	sys.evMu.Lock()
	defer sys.evMu.Unlock()
	if cached, ok := sys.evCache[key]; ok {
		return cached
	}
	if sys.evCache == nil {
		sys.evCache = make(map[string]*Evaluator[Fd, E], evCacheCap)
	}
	for len(sys.evOrder) >= evCacheCap {
		delete(sys.evCache, sys.evOrder[0])
		sys.evOrder = sys.evOrder[1:]
	}
	sys.evCache[key] = ev
	sys.evOrder = append(sys.evOrder, key)
	return ev
}

// BatchVerifier checks many same-shape submissions under one challenge in a
// single polynomial pass. It is derived from (and shares the precomputed
// weights of) an Evaluator; like the Evaluator it is immutable and safe for
// concurrent use — all per-batch state lives in the BatchState.
type BatchVerifier[Fd field.Field[E], E any] struct {
	ev   *Evaluator[Fd, E]
	fast bool // F64: elements are canonical uint64, slab kernels engaged
}

// Batch returns the batch verifier for this evaluator, constructing it on
// first use.
func (ev *Evaluator[Fd, E]) Batch() *BatchVerifier[Fd, E] {
	ev.batchOnce.Do(func() {
		ev.batch = &BatchVerifier[Fd, E]{ev: ev}
		if _, ok := any(ev.sys.F).(field.F64); ok {
			ev.batch.fast = true
		}
	})
	return ev.batch
}

// BatchState carries one server's intermediate values for a whole batch
// between the verification rounds, in lane-major (slab) layout.
type BatchState[E any] struct {
	count   int
	taus    []E           // per submission: share of Σ ρ_k·assert_k
	triples [][]Triple[E] // per submission: this server's triple shares
	h       [][]E         // per submission: share of H (2N evals)
	p       [][]E         // [rep][submission]: Beaver-completed products, set by SetOpened
	opened  bool
}

// Count returns the number of submissions in the batch.
func (st *BatchState[E]) Count() int { return st.count }

// Round1 runs this server's local verification pass over a whole batch of
// input and proof shares, producing the same per-submission D/E messages as
// Evaluator.Round1 — the Beaver openings are inherently per-submission, so
// the wire format is unchanged — but deferring the h evaluations to the
// combined (or bisect) check. All shapes are validated before any
// arithmetic; a malformed share yields an error, never a panic.
func (bv *BatchVerifier[Fd, E]) Round1(xShares [][]E, pfs []*Proof[E], constServer bool) (*BatchState[E], []*Round1[E], error) {
	sys := bv.ev.sys
	if len(xShares) != len(pfs) {
		return nil, nil, ErrDimensions
	}
	b := len(xShares)
	for i := 0; i < b; i++ {
		if pfs[i] == nil || len(xShares[i]) != sys.C.NumInputs {
			return nil, nil, ErrDimensions
		}
		if err := sys.checkDims(pfs[i]); err != nil {
			return nil, nil, err
		}
	}
	st := &BatchState[E]{
		count:   b,
		taus:    make([]E, b),
		triples: make([][]Triple[E], b),
		h:       make([][]E, b),
	}
	for i, pf := range pfs {
		st.triples[i] = pf.Triples
		st.h[i] = pf.H
	}
	msgs := make([]*Round1[E], b)
	if b == 0 {
		return st, msgs, nil
	}
	if bv.fast {
		bv.round1Fast(st, xShares, pfs, constServer, msgs)
	} else {
		bv.round1Generic(st, xShares, pfs, constServer, msgs)
	}
	return st, msgs, nil
}

// round1Generic is the field-agnostic batch pass: per-submission circuit
// walks sharing scratch buffers, with the hr inner products (the dominant
// cost) deferred to Combined/Single.
func (bv *BatchVerifier[Fd, E]) round1Generic(st *BatchState[E], xShares [][]E, pfs []*Proof[E], constServer bool, msgs []*Round1[E]) {
	ev := bv.ev
	sys := ev.sys
	f := sys.F
	var fv, gv, hAt []E
	if sys.M > 0 {
		fv = make([]E, sys.N)
		gv = make([]E, sys.N)
		hAt = make([]E, sys.M)
	}
	zero := f.Zero()
	for i, pf := range pfs {
		for t := 0; t < sys.M; t++ {
			hAt[t] = pf.H[2*(t+1)]
		}
		tr := circuit.EvalShares(f, sys.C, xShares[i], hAt, constServer)
		tau := f.Zero()
		for k, a := range sys.C.Asserts {
			tau = f.Add(tau, f.Mul(ev.ch.Rho[k], tr.Wires[a]))
		}
		st.taus[i] = tau
		msg := &Round1[E]{}
		msgs[i] = msg
		if sys.M == 0 {
			continue
		}
		for t := range fv {
			fv[t], gv[t] = zero, zero
		}
		fv[0], gv[0] = pf.F0, pf.G0
		copy(fv[1:], tr.U)
		copy(gv[1:], tr.V)
		for j := 0; j < sys.Reps-1; j++ {
			fv[sys.M+1+j] = pf.FPad[j]
			gv[sys.M+1+j] = pf.GPad[j]
		}
		msg.D = make([]E, sys.Reps)
		msg.E = make([]E, sys.Reps)
		for j := 0; j < sys.Reps; j++ {
			fr := field.InnerProduct(f, ev.wN[j], fv)
			gr := field.InnerProduct(f, ev.wN[j], gv)
			msg.D[j] = f.Sub(fr, pf.Triples[j].A)
			msg.E[j] = f.Sub(f.Mul(ev.ch.R[j], gr), pf.Triples[j].B)
		}
	}
}

// round1Fast is the F64 slab pass: one gate-major circuit walk for the whole
// batch, then per-repetition multiply-accumulate folds of the Lagrange
// weights across all lanes with a single deferred reduction each.
func (bv *BatchVerifier[Fd, E]) round1Fast(st *BatchState[E], xShares [][]E, pfs []*Proof[E], constServer bool, msgs []*Round1[E]) {
	ev := bv.ev
	sys := ev.sys
	b := len(xShares)
	c64 := any(sys.C).(*circuit.Circuit[uint64])
	xs := make([][]uint64, b)
	for i := range xs {
		xs[i] = asU64s(xShares[i])
	}
	// Lane-major gather of the h shares at the multiplication points. The
	// walk copies these lanes into its own wires, so the backing goes back
	// to the pool right after.
	hAt := make([][]uint64, sys.M)
	hBack := field.GetSlabUninit(sys.M * b)
	for t := range hAt {
		hAt[t] = hBack[t*b : (t+1)*b]
	}
	// Gather lane-by-lane (t outer): writes stream through each lane and the
	// strided H reads stay cache-resident across consecutive t.
	hs := make([][]uint64, b)
	for i, pf := range pfs {
		hs[i] = asU64s(pf.H)
	}
	for t := 0; t < sys.M; t++ {
		lane, off := hAt[t], 2*(t+1)
		for i := range hs {
			lane[i] = hs[i][off]
		}
	}
	u, v, asserts, release := circuit.EvalSharesBatchF64(c64, xs, hAt, constServer)
	defer release()
	field.PutSlab(hBack)

	// τ_i = Σ_k ρ_k·assert_k[i]: one fused multiply-accumulate pass per
	// assertion wire across all lanes, one reduction per lane at the end.
	a0, a1, a2 := field.GetSlab(b), field.GetSlab(b), field.GetSlab(b)
	for k, aw := range asserts {
		field.MulAcc192(a0, a1, a2, aw, asU64(ev.ch.Rho[k]))
	}
	field.Reduce192Slice(asU64s(st.taus), a0, a1, a2)

	if sys.M == 0 {
		for i := range msgs {
			msgs[i] = &Round1[E]{}
		}
		field.PutSlab(a0)
		field.PutSlab(a1)
		field.PutSlab(a2)
		return
	}

	reps := sys.Reps
	// Lane gathers of the per-proof scalars: anchors, pads, triple parts.
	f0s, g0s := field.GetSlab(b), field.GetSlab(b)
	pads := make([][]uint64, 2*(reps-1)) // f pads then g pads
	for k := range pads {
		pads[k] = field.GetSlab(b)
	}
	for i, pf := range pfs {
		f0s[i] = asU64(pf.F0)
		g0s[i] = asU64(pf.G0)
		for k := 0; k < reps-1; k++ {
			pads[k][i] = asU64(pf.FPad[k])
			pads[reps-1+k][i] = asU64(pf.GPad[k])
		}
	}
	// One backing array for all D/E messages and one for the message structs
	// keep allocations flat in b.
	deBack := make([]E, 2*reps*b)
	msgBack := make([]Round1[E], b)
	for i := range msgs {
		msgBack[i].D = deBack[i*2*reps : i*2*reps+reps]
		msgBack[i].E = deBack[i*2*reps+reps : (i+1)*2*reps]
		msgs[i] = &msgBack[i]
	}
	res := field.GetSlab(b) // reduced f(r)/g(r) lanes
	ab := field.GetSlab(b)  // triple-share gather
	for j := 0; j < reps; j++ {
		wj := asU64s(ev.wN[j])
		// f(r_j) lanes: weights folded across anchor, U slabs, and pads.
		zero3(a0, a1, a2)
		field.MulAcc192(a0, a1, a2, f0s, wj[0])
		for t := 0; t < sys.M; t++ {
			field.MulAcc192(a0, a1, a2, u[t], wj[t+1])
		}
		for k := 0; k < reps-1; k++ {
			field.MulAcc192(a0, a1, a2, pads[k], wj[sys.M+1+k])
		}
		field.Reduce192Slice(res, a0, a1, a2)
		for i, pf := range pfs {
			ab[i] = asU64(pf.Triples[j].A)
		}
		field.SubSlice(res, res, ab) // D = f(r) − a
		for i := range msgs {
			msgs[i].D[j] = fromU64[E](res[i])
		}
		// r_j·g(r_j) lanes.
		zero3(a0, a1, a2)
		field.MulAcc192(a0, a1, a2, g0s, wj[0])
		for t := 0; t < sys.M; t++ {
			field.MulAcc192(a0, a1, a2, v[t], wj[t+1])
		}
		for k := 0; k < reps-1; k++ {
			field.MulAcc192(a0, a1, a2, pads[reps-1+k], wj[sys.M+1+k])
		}
		field.Reduce192Slice(res, a0, a1, a2)
		field.ScaleSlice(res, res, asU64(ev.ch.R[j]))
		for i, pf := range pfs {
			ab[i] = asU64(pf.Triples[j].B)
		}
		field.SubSlice(res, res, ab) // E = r·g(r) − b
		for i := range msgs {
			msgs[i].E[j] = fromU64[E](res[i])
		}
	}
	for _, s := range [][]uint64{a0, a1, a2, f0s, g0s, res, ab} {
		field.PutSlab(s)
	}
	for _, s := range pads {
		field.PutSlab(s)
	}
}

// SetOpened ingests the per-submission opened Beaver masks — the sum of all
// servers' Round1 messages, exactly as in the per-submission protocol — and
// completes this server's product shares [f(r)·r·g(r)]_i = de/s + d·b + e·a
// + c for every submission and repetition. s is the server count. It must be
// called once before Combined or Single.
func (bv *BatchVerifier[Fd, E]) SetOpened(st *BatchState[E], opened []*Round1[E], s int) error {
	sys := bv.ev.sys
	f := sys.F
	if len(opened) != st.count || s < 1 {
		return ErrBatchState
	}
	if sys.M > 0 {
		for _, o := range opened {
			if o == nil || len(o.D) != sys.Reps || len(o.E) != sys.Reps {
				return ErrBatchState
			}
		}
		invS := f.Inv(f.FromUint64(uint64(s)))
		st.p = make([][]E, sys.Reps)
		for j := range st.p {
			row := make([]E, st.count)
			for i := 0; i < st.count; i++ {
				d, e := opened[i].D[j], opened[i].E[j]
				prod := f.Mul(f.Mul(d, e), invS)
				prod = f.Add(prod, f.Mul(d, st.triples[i][j].B))
				prod = f.Add(prod, f.Mul(e, st.triples[i][j].A))
				prod = f.Add(prod, st.triples[i][j].C)
				row[i] = prod
			}
			st.p[j] = row
		}
	}
	st.opened = true
	return nil
}

// Combined produces this server's share of the random-linear-combination
// check over submissions [lo, hi):
//
//	σ_comb[j] = Σ_i λ_{i−lo}·[f(r_j)·r_j·g(r_j)]_i − r_j·⟨w2N_j, Σ_i λ_{i−lo}·H_i⟩
//	τ_comb    = Σ_i λ_{i−lo}·τ_i
//
// Summed across servers (Decide), both are zero when every submission in the
// range is valid. λ must have length hi−lo with every coefficient nonzero
// and must be freshly drawn (RLCCoeffs from a fresh seed) for every batch
// and every bisect probe: a singleton range under nonzero λ is then exactly
// the per-submission test, and independent challenges stop crafted
// submissions from cancelling each other.
func (bv *BatchVerifier[Fd, E]) Combined(st *BatchState[E], lambda []E, lo, hi int) (*Round2[E], error) {
	ev := bv.ev
	sys := ev.sys
	f := sys.F
	if !st.opened || lo < 0 || hi > st.count || lo >= hi || len(lambda) != hi-lo {
		return nil, ErrBatchState
	}
	out := &Round2[E]{}
	if bv.fast {
		l64 := asU64s(lambda)
		out.Tau = fromU64[E](field.DotSlice(l64, asU64s(st.taus)[lo:hi]))
		if sys.M == 0 {
			return out, nil
		}
		n2 := 2 * sys.N
		a0, a1, a2 := field.GetSlab(n2), field.GetSlab(n2), field.GetSlab(n2)
		for i := lo; i < hi; i++ {
			field.MulAcc192(a0, a1, a2, asU64s(st.h[i]), l64[i-lo])
		}
		hl := field.GetSlab(n2)
		field.Reduce192Slice(hl, a0, a1, a2)
		var g field.F64
		out.Sigma = make([]E, sys.Reps)
		for j := 0; j < sys.Reps; j++ {
			sp := field.DotSlice(l64, asU64s(st.p[j])[lo:hi])
			hr := field.DotSlice(asU64s(ev.w2N[j]), hl)
			out.Sigma[j] = fromU64[E](g.Sub(sp, g.Mul(asU64(ev.ch.R[j]), hr)))
		}
		for _, s := range [][]uint64{a0, a1, a2, hl} {
			field.PutSlab(s)
		}
		return out, nil
	}
	tau := f.Zero()
	for i := lo; i < hi; i++ {
		tau = f.Add(tau, f.Mul(lambda[i-lo], st.taus[i]))
	}
	out.Tau = tau
	if sys.M == 0 {
		return out, nil
	}
	hl := make([]E, 2*sys.N)
	for t := range hl {
		hl[t] = f.Zero()
	}
	for i := lo; i < hi; i++ {
		li := lambda[i-lo]
		for t, hv := range st.h[i] {
			hl[t] = f.Add(hl[t], f.Mul(li, hv))
		}
	}
	out.Sigma = make([]E, sys.Reps)
	for j := 0; j < sys.Reps; j++ {
		sp := f.Zero()
		for i := lo; i < hi; i++ {
			sp = f.Add(sp, f.Mul(lambda[i-lo], st.p[j][i]))
		}
		hr := field.InnerProduct(f, ev.w2N[j], hl)
		out.Sigma[j] = f.Sub(sp, f.Mul(ev.ch.R[j], hr))
	}
	return out, nil
}

// Single reproduces the legacy per-submission Round2 message for submission
// i — the same values Evaluator.Round2 computes — from the batch state. It
// is what the bisect fallback emits at singleton leaves and what keeps the
// wire-compatible per-submission round working off batch state.
func (bv *BatchVerifier[Fd, E]) Single(st *BatchState[E], i int) (*Round2[E], error) {
	ev := bv.ev
	sys := ev.sys
	f := sys.F
	if !st.opened || i < 0 || i >= st.count {
		return nil, ErrBatchState
	}
	out := &Round2[E]{Tau: st.taus[i]}
	if sys.M == 0 {
		return out, nil
	}
	out.Sigma = make([]E, sys.Reps)
	for j := 0; j < sys.Reps; j++ {
		var hr E
		if bv.fast {
			hr = fromU64[E](field.DotSlice(asU64s(ev.w2N[j]), asU64s(st.h[i])))
		} else {
			hr = field.InnerProduct(f, ev.w2N[j], st.h[i])
		}
		out.Sigma[j] = f.Sub(st.p[j][i], f.Mul(ev.ch.R[j], hr))
	}
	return out, nil
}

// RLCCoeffs expands a PRG seed into n nonzero random-linear-combination
// coefficients. The leader draws a fresh crypto/rand seed for every batch
// and every bisect probe and ships only the 16-byte seed; deriving λ
// deterministically from it keeps all servers in lockstep without ever
// reusing a challenge. Coefficients are rejection-sampled to be nonzero: a
// zero λ would silently drop its submission from the check, and nonzero λ
// makes the singleton range exactly the per-submission test.
func RLCCoeffs[Fd field.Field[E], E any](f Fd, seed prg.Seed, n int) []E {
	g := prg.New(seed)
	out := make([]E, n)
	for i := range out {
		for {
			e, err := f.SampleElem(g)
			if err != nil {
				// prg.PRG.Read never fails.
				panic("snip: PRG sampling failed: " + err.Error())
			}
			if !f.IsZero(e) {
				out[i] = e
				break
			}
		}
	}
	return out
}

// asU64s reinterprets a []E as []uint64. Valid only on the F64 fast path
// (Batch() sets fast only when the field's element type is uint64).
func asU64s[E any](v []E) []uint64 { return any(v).([]uint64) }

func asU64[E any](v E) uint64 { return any(v).(uint64) }

func fromU64[E any](v uint64) E { return any(v).(E) }

func zero3(a, b, c []uint64) {
	clear(a)
	clear(b)
	clear(c)
}
