package snip

import (
	"encoding/binary"
	"testing"

	"prio/internal/field"
	"prio/internal/prg"
)

// ctrReader is a deterministic entropy source for building seed corpora:
// fuzz seeds must be reproducible across runs. A counter stream (rather
// than a constant) keeps rejection-sampling loops finite.
type ctrReader struct{ n byte }

func (r *ctrReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = r.n ^ 0x5a
		r.n++
	}
	return len(p), nil
}

// fuzzSystem builds the fixed range4/F64 system all fuzz targets share.
func fuzzSystem(tb testing.TB) (field.F64, *System[field.F64, uint64], *Evaluator[field.F64, uint64]) {
	f := field.NewF64()
	sys, err := NewSystem(f, range4(f), Params{Reps: 2})
	if err != nil {
		tb.Fatal(err)
	}
	ch, err := sys.NewChallenge(&ctrReader{})
	if err != nil {
		tb.Fatal(err)
	}
	return f, sys, sys.NewEvaluator(ch)
}

// fuzzElems maps arbitrary bytes to field elements, 8 bytes per element.
// FromUint64 reduces, so every input decodes; structure, not canonicality,
// is what these targets probe.
func fuzzElems(f field.F64, data []byte) []uint64 {
	elems := make([]uint64, 0, len(data)/8)
	for len(data) >= 8 {
		elems = append(elems, f.FromUint64(binary.LittleEndian.Uint64(data)))
		data = data[8:]
	}
	return elems
}

// FuzzProofDecode drives UnflattenProof and the canonical byte decoder with
// malformed inputs: both must error (or round-trip exactly), never panic.
func FuzzProofDecode(f *testing.F) {
	fd, sys, ev := fuzzSystem(f)
	// Seed: a valid flattened proof, then structural mutations of it.
	x := encode4(fd, 11)
	pf, err := sys.Prove(x, &ctrReader{})
	if err != nil {
		f.Fatal(err)
	}
	valid := field.AppendVec(fd, nil, sys.FlattenProof(pf))
	f.Add(valid)
	f.Add(valid[:len(valid)-8])                                 // truncated
	f.Add(append(append([]byte(nil), valid...), valid[:16]...)) // padded
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Canonical decoder path: may reject, must not panic.
		if elems, _, err := field.ReadVec(fd, data, len(data)/8); err == nil {
			if _, err := sys.UnflattenProof(elems); err != nil && err != ErrDimensions {
				t.Fatalf("UnflattenProof: unexpected error %v", err)
			}
		}
		// Reducing decoder path: always yields elements; UnflattenProof must
		// either reject the length or round-trip exactly.
		elems := fuzzElems(fd, data)
		pf, err := sys.UnflattenProof(elems)
		if err != nil {
			return
		}
		back := sys.FlattenProof(pf)
		if len(back) != len(elems) {
			t.Fatalf("round trip length %d != %d", len(back), len(elems))
		}
		for i := range back {
			if !fd.Equal(back[i], elems[i]) {
				t.Fatalf("round trip differs at %d", i)
			}
		}
		// A shape-valid proof share must flow through verification without
		// panicking, whatever its contents.
		if st, m, err := ev.Round1(encode4(fd, 3), pf, true); err == nil {
			op := SumRound1(fd, []*Round1[uint64]{m})
			_ = ev.Round2(st, op, 1)
		}
	})
}

// FuzzBatchVerify drives the batch-verify entry points — Round1, SetOpened,
// Combined, Single — with one adversarially mangled submission inside an
// otherwise honest batch. Malformed inputs must error, never panic, and
// must never corrupt the honest lanes' bookkeeping.
func FuzzBatchVerify(f *testing.F) {
	fd, sys, ev := fuzzSystem(f)
	f.Add(uint8(2), uint8(1), uint8(0), []byte{})
	f.Add(uint8(3), uint8(0), uint8(4), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(1), uint8(0), uint8(255), make([]byte, 64))
	f.Add(uint8(4), uint8(3), uint8(7), make([]byte, 256))

	f.Fuzz(func(t *testing.T, bRaw, target, rangeRaw uint8, mangle []byte) {
		b := int(bRaw)%4 + 1
		bv := ev.Batch()
		xs := make([][]uint64, b)
		pfs := make([]*Proof[uint64], b)
		for i := 0; i < b; i++ {
			xs[i] = encode4(fd, uint64(i))
			var err error
			if pfs[i], err = sys.Prove(xs[i], &ctrReader{}); err != nil {
				t.Fatal(err)
			}
		}
		// Mangle one submission's proof share: overwrite its flat vector with
		// fuzz bytes, at fuzz-chosen (possibly dimension-breaking) length.
		ti := int(target) % b
		elems := fuzzElems(fd, mangle)
		flat := sys.FlattenProof(pfs[ti])
		if len(elems) < len(flat) {
			copy(flat, elems)
			pfs[ti] = sys.unflatten(flat)
		} else {
			// Wrong shape entirely: hand-built proof with fuzz-length slices.
			n := len(elems)
			pfs[ti] = &Proof[uint64]{
				FPad:    elems[:n/4],
				GPad:    elems[n/4 : n/2],
				H:       elems[n/2:],
				Triples: make([]Triple[uint64], n%5),
			}
		}
		st, msgs, err := bv.Round1(xs, pfs, true)
		if err != nil {
			return // malformed shape rejected before arithmetic: the contract
		}
		opened := make([]*Round1[uint64], b)
		for i := 0; i < b; i++ {
			opened[i] = SumRound1(fd, []*Round1[uint64]{msgs[i]})
		}
		if err := bv.SetOpened(st, opened, 1); err != nil {
			t.Fatalf("SetOpened on self-consistent batch: %v", err)
		}
		// Fuzz-chosen (often invalid) range: Combined must error or decide.
		lo, hi := int(rangeRaw)%(b+2)-1, int(rangeRaw>>4)%(b+2)
		var seed prg.Seed
		copy(seed[:], mangle)
		n := hi - lo
		if n > 0 {
			lambda := RLCCoeffs(fd, seed, n)
			if _, err := bv.Combined(st, lambda, lo, hi); err != nil && err != ErrBatchState {
				t.Fatalf("Combined: unexpected error %v", err)
			}
		}
		for i := -1; i <= b; i++ {
			if _, err := bv.Single(st, i); err != nil && err != ErrBatchState {
				t.Fatalf("Single(%d): unexpected error %v", i, err)
			}
		}
	})
}

// TestFuzzSeedsSane executes every inline fuzz seed as a plain test so the
// corpora stay green under `go test` without the fuzz engine.
func TestFuzzSeedsSane(t *testing.T) {
	fd, sys, _ := fuzzSystem(t)
	x := encode4(fd, 11)
	pf, err := sys.Prove(x, &ctrReader{})
	if err != nil {
		t.Fatal(err)
	}
	flat := sys.FlattenProof(pf)
	back, err := sys.UnflattenProof(flat)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range sys.FlattenProof(back) {
		if !fd.Equal(e, flat[i]) {
			t.Fatalf("seed proof round trip differs at %d", i)
		}
	}
	if _, err := sys.UnflattenProof(flat[:len(flat)-1]); err != ErrDimensions {
		t.Fatalf("truncated proof: got %v, want ErrDimensions", err)
	}
}
