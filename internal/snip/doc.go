// Package snip implements secret-shared non-interactive proofs, the core
// cryptographic contribution of the Prio paper (Section 4).
//
// A client holding x ∈ F^L proves to s servers — each holding only an
// additive share of x — that Valid(x) holds for a public arithmetic circuit,
// without revealing anything else about x. The proof consists of:
//
//   - shares of f(ω⁰) and g(ω⁰), the random anchors of the two polynomials
//     that interpolate the left/right inputs of every multiplication gate
//     (Section 4.2, "client evaluation of Valid");
//   - shares of h = f·g in point-value form over a 2N-point root-of-unity
//     domain, so verifiers never interpolate (Appendix I, optimization 2);
//   - shares of one Beaver multiplication triple per soundness repetition
//     (Appendix C.2).
//
// Verification is the Schwartz-Zippel polynomial identity test of Section
// 4.2, executed over shares with Beaver's MPC multiplication, plus a
// random-linear-combination check that all assertion wires are zero
// (Appendix I, circuit optimization). Each server transmits a constant
// number of field elements per submission, independent of |x| and of the
// circuit size — the property measured in Figure 6.
//
// The package is two-phase: a System precomputes everything derivable from
// the circuit (domains, FFT plans, layouts), and per-challenge Evaluators
// run the two verification rounds. Evaluators are safe for concurrent use
// across submissions, which is what lets core's sharded pipeline verify
// many batches in parallel under one challenge (Appendix I's window Q).
package snip
