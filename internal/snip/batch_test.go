package snip

import (
	"crypto/rand"
	"testing"

	"prio/internal/circuit"
	"prio/internal/field"
	"prio/internal/prg"
	"prio/internal/share"
)

// affine2 is an M == 0 circuit: valid inputs are pairs with x0 == x1.
func affine2[Fd field.Field[E], E any](f Fd) *circuit.Circuit[E] {
	b := circuit.NewBuilder(f, 2)
	b.AssertEqual(b.Input(0), b.Input(1))
	return b.Build()
}

// batchRun holds one full batch-protocol execution: s servers, each with a
// BatchState over the same batch, plus the per-submission opened masks.
type batchRun[Fd field.Field[E], E any] struct {
	f   Fd
	sys *System[Fd, E]
	ev  *Evaluator[Fd, E]
	bv  *BatchVerifier[Fd, E]
	s   int
	sts []*BatchState[E] // per server
	r1  [][]*Round1[E]   // [server][submission]
}

// newBatchRun shares every input and proof across s servers, runs the batch
// Round1 on each server, opens the Beaver masks, and feeds them back.
func newBatchRun[Fd field.Field[E], E any](t *testing.T, f Fd, sys *System[Fd, E], ev *Evaluator[Fd, E], xs [][]E, pfs []*Proof[E], s int) *batchRun[Fd, E] {
	t.Helper()
	b := len(xs)
	xsh := make([][][]E, s) // [server][submission]
	pfsh := make([][]*Proof[E], s)
	for k := 0; k < s; k++ {
		xsh[k] = make([][]E, b)
		pfsh[k] = make([]*Proof[E], b)
	}
	for i := 0; i < b; i++ {
		xp, err := share.Split(f, rand.Reader, xs[i], s)
		if err != nil {
			t.Fatal(err)
		}
		pp, err := sys.Split(pfs[i], s, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < s; k++ {
			xsh[k][i] = xp[k]
			pfsh[k][i] = pp[k]
		}
	}
	br := &batchRun[Fd, E]{f: f, sys: sys, ev: ev, bv: ev.Batch(), s: s}
	br.sts = make([]*BatchState[E], s)
	br.r1 = make([][]*Round1[E], s)
	for k := 0; k < s; k++ {
		st, msgs, err := br.bv.Round1(xsh[k], pfsh[k], k == 0)
		if err != nil {
			t.Fatalf("batch Round1 server %d: %v", k, err)
		}
		br.sts[k] = st
		br.r1[k] = msgs
	}
	opened := make([]*Round1[E], b)
	for i := 0; i < b; i++ {
		per := make([]*Round1[E], s)
		for k := 0; k < s; k++ {
			per[k] = br.r1[k][i]
		}
		opened[i] = SumRound1(f, per)
	}
	for k := 0; k < s; k++ {
		if err := br.bv.SetOpened(br.sts[k], opened, s); err != nil {
			t.Fatalf("SetOpened server %d: %v", k, err)
		}
	}
	return br
}

// combined runs the RLC check over [lo, hi) across all servers.
func (br *batchRun[Fd, E]) combined(t *testing.T, lambda []E, lo, hi int) bool {
	t.Helper()
	r2 := make([]*Round2[E], br.s)
	for k := 0; k < br.s; k++ {
		m, err := br.bv.Combined(br.sts[k], lambda, lo, hi)
		if err != nil {
			t.Fatalf("Combined server %d: %v", k, err)
		}
		r2[k] = m
	}
	return br.ev.Decide(r2)
}

// single runs the per-submission check for submission i off the batch state.
func (br *batchRun[Fd, E]) single(t *testing.T, i int) bool {
	t.Helper()
	r2 := make([]*Round2[E], br.s)
	for k := 0; k < br.s; k++ {
		m, err := br.bv.Single(br.sts[k], i)
		if err != nil {
			t.Fatalf("Single server %d: %v", k, err)
		}
		r2[k] = m
	}
	return br.ev.Decide(r2)
}

func freshSeed(t *testing.T) prg.Seed {
	t.Helper()
	var seed prg.Seed
	if _, err := rand.Read(seed[:]); err != nil {
		t.Fatal(err)
	}
	return seed
}

// TestBatchRound1MatchesLegacy checks that the batch pass produces exactly
// the wire messages and per-submission Round2 values of the legacy
// per-submission path, over both the F64 slab fast path and the generic
// path (F128), for both M > 0 and M == 0 circuit shapes.
func TestBatchRound1MatchesLegacy(t *testing.T) {
	t.Run("F64", func(t *testing.T) { testBatchMatchesLegacy(t, field.NewF64()) })
	t.Run("F128", func(t *testing.T) { testBatchMatchesLegacy(t, field.NewF128()) })
}

func testBatchMatchesLegacy[Fd field.Field[E], E any](t *testing.T, f Fd) {
	for _, mk := range []struct {
		name string
		c    *circuit.Circuit[E]
		x    func(i int) []E
	}{
		{"range4", range4(f), func(i int) []E { return encode4(f, uint64(i)%16) }},
		{"affine2", affine2(f), func(i int) []E {
			v := f.FromUint64(uint64(i))
			return []E{v, v}
		}},
	} {
		t.Run(mk.name, func(t *testing.T) {
			sys, err := NewSystem(f, mk.c, Params{Reps: 2})
			if err != nil {
				t.Fatal(err)
			}
			ch, err := sys.NewChallenge(rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			ev := sys.NewEvaluator(ch)
			const b, s = 7, 3
			xs := make([][]E, b)
			pfs := make([]*Proof[E], b)
			for i := range xs {
				xs[i] = mk.x(i)
				if pfs[i], err = sys.Prove(xs[i], rand.Reader); err != nil {
					t.Fatal(err)
				}
			}
			// One fixed sharing driven through BOTH paths.
			xsh := make([][][]E, s)
			pfsh := make([][]*Proof[E], s)
			for k := 0; k < s; k++ {
				xsh[k] = make([][]E, b)
				pfsh[k] = make([]*Proof[E], b)
			}
			for i := 0; i < b; i++ {
				xp, err := share.Split(f, rand.Reader, xs[i], s)
				if err != nil {
					t.Fatal(err)
				}
				pp, err := sys.Split(pfs[i], s, rand.Reader)
				if err != nil {
					t.Fatal(err)
				}
				for k := 0; k < s; k++ {
					xsh[k][i], pfsh[k][i] = xp[k], pp[k]
				}
			}
			bv := ev.Batch()
			legacySt := make([][]*State[E], s) // [server][submission]
			legacyR1 := make([][]*Round1[E], s)
			batchSt := make([]*BatchState[E], s)
			batchR1 := make([][]*Round1[E], s)
			for k := 0; k < s; k++ {
				legacySt[k] = make([]*State[E], b)
				legacyR1[k] = make([]*Round1[E], b)
				for i := 0; i < b; i++ {
					st, m, err := ev.Round1(xsh[k][i], pfsh[k][i], k == 0)
					if err != nil {
						t.Fatal(err)
					}
					legacySt[k][i], legacyR1[k][i] = st, m
				}
				st, msgs, err := bv.Round1(xsh[k], pfsh[k], k == 0)
				if err != nil {
					t.Fatal(err)
				}
				batchSt[k], batchR1[k] = st, msgs
			}
			eq := func(a, b []E) bool {
				if len(a) != len(b) {
					return false
				}
				for i := range a {
					if !f.Equal(a[i], b[i]) {
						return false
					}
				}
				return true
			}
			for k := 0; k < s; k++ {
				for i := 0; i < b; i++ {
					if !eq(batchR1[k][i].D, legacyR1[k][i].D) || !eq(batchR1[k][i].E, legacyR1[k][i].E) {
						t.Fatalf("server %d submission %d: batch Round1 differs from legacy", k, i)
					}
				}
			}
			// Open and compare Round2 values per submission.
			opened := make([]*Round1[E], b)
			for i := 0; i < b; i++ {
				per := make([]*Round1[E], s)
				for k := 0; k < s; k++ {
					per[k] = legacyR1[k][i]
				}
				opened[i] = SumRound1(f, per)
			}
			for k := 0; k < s; k++ {
				if err := bv.SetOpened(batchSt[k], opened, s); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < b; i++ {
					want := ev.Round2(legacySt[k][i], opened[i], s)
					got, err := bv.Single(batchSt[k], i)
					if err != nil {
						t.Fatal(err)
					}
					if !eq(got.Sigma, want.Sigma) || !f.Equal(got.Tau, want.Tau) {
						t.Fatalf("server %d submission %d: Single differs from legacy Round2", k, i)
					}
				}
			}
		})
	}
}

// TestBatchCombinedHonest checks completeness: the RLC check accepts every
// all-honest batch, over full ranges and subranges.
func TestBatchCombinedHonest(t *testing.T) {
	f := field.NewF64()
	sys, err := NewSystem(f, range4(f), Params{Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := sys.NewChallenge(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ev := sys.NewEvaluator(ch)
	const b, s = 9, 3
	xs := make([][]uint64, b)
	pfs := make([]*Proof[uint64], b)
	for i := range xs {
		xs[i] = encode4(f, uint64(i)%16)
		if pfs[i], err = sys.Prove(xs[i], rand.Reader); err != nil {
			t.Fatal(err)
		}
	}
	br := newBatchRun(t, f, sys, ev, xs, pfs, s)
	for _, rng := range [][2]int{{0, b}, {0, 1}, {b - 1, b}, {2, 6}} {
		lambda := RLCCoeffs(f, freshSeed(t), rng[1]-rng[0])
		if !br.combined(t, lambda, rng[0], rng[1]) {
			t.Fatalf("honest batch range [%d,%d) rejected", rng[0], rng[1])
		}
	}
}

// TestBatchCombinedPlanted plants invalid submissions (both invalid inputs,
// which break the assertion check τ, and tampered H shares, which break the
// polynomial identity σ) and checks that the RLC over any range containing
// one fails, while singleton checks identify exactly the planted set.
func TestBatchCombinedPlanted(t *testing.T) {
	f := field.NewF64()
	sys, err := NewSystem(f, range4(f), Params{Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := sys.NewChallenge(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ev := sys.NewEvaluator(ch)
	const b, s = 8, 2
	bad := map[int]bool{2: true, 5: true, 6: true}
	xs := make([][]uint64, b)
	pfs := make([]*Proof[uint64], b)
	for i := range xs {
		xs[i] = encode4(f, uint64(i)%16)
		if bad[i] && i%2 == 0 {
			// Invalid input: claim value 9 with the bit pattern of i.
			xs[i][0] = f.FromUint64(9)
			if i == 2 {
				xs[i][0] = f.FromUint64(12)
			}
		}
		if pfs[i], err = sys.Prove(xs[i], rand.Reader); err != nil {
			t.Fatal(err)
		}
		if bad[i] && i%2 == 1 {
			// Valid input, corrupted proof: tamper one H evaluation.
			pfs[i].H[3] = f.Add(pfs[i].H[3], f.One())
		}
	}
	br := newBatchRun(t, f, sys, ev, xs, pfs, s)
	if br.combined(t, RLCCoeffs(f, freshSeed(t), b), 0, b) {
		t.Fatal("combined check accepted a batch with planted bad submissions")
	}
	if !br.combined(t, RLCCoeffs(f, freshSeed(t), 2), 3, 5) {
		t.Fatal("combined check rejected an all-honest subrange")
	}
	if br.combined(t, RLCCoeffs(f, freshSeed(t), 3), 4, 7) {
		t.Fatal("combined check accepted a subrange containing bad submissions")
	}
	for i := 0; i < b; i++ {
		if got := br.single(t, i); got != !bad[i] {
			t.Fatalf("submission %d: single verdict %v, want %v", i, got, !bad[i])
		}
		// A singleton RLC range with nonzero λ must agree with Single.
		if got := br.combined(t, RLCCoeffs(f, freshSeed(t), 1), i, i+1); got != !bad[i] {
			t.Fatalf("submission %d: singleton combined verdict %v, want %v", i, got, !bad[i])
		}
	}
}

// TestRLCCancelRegression crafts two bad submissions whose individual test
// values cancel exactly (σ_A = −σ_B): under a fixed all-ones combination the
// batch check is blind to them, which is why λ must be drawn fresh from
// crypto/rand-derived seeds per batch. The test demonstrates the attack
// against λ ≡ 1 and then checks that independently seeded challenges reject
// the pair.
func TestRLCCancelRegression(t *testing.T) {
	f := field.NewF64()
	sys, err := NewSystem(f, range4(f), Params{Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := sys.NewChallenge(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ev := sys.NewEvaluator(ch)
	const s = 2
	xs := [][]uint64{encode4(f, 3), encode4(f, 11)}
	pfs := make([]*Proof[uint64], 2)
	for i := range pfs {
		if pfs[i], err = sys.Prove(xs[i], rand.Reader); err != nil {
			t.Fatal(err)
		}
	}
	// Mirror-image tampering: +δ on one proof's H point, −δ on the other's.
	// Both submissions are now invalid, with σ_A[j] = −σ_B[j] and τ = 0.
	delta := f.FromUint64(0xBEEF)
	pfs[0].H[3] = f.Add(pfs[0].H[3], delta)
	pfs[1].H[3] = f.Sub(pfs[1].H[3], delta)

	br := newBatchRun(t, f, sys, ev, xs, pfs, s)
	if br.single(t, 0) || br.single(t, 1) {
		t.Fatal("tampered submissions passed individual verification")
	}
	ones := []uint64{f.One(), f.One()}
	if !br.combined(t, ones, 0, 2) {
		t.Fatal("expected the crafted pair to cancel under λ ≡ 1; the attack setup is broken")
	}
	for trial := 0; trial < 8; trial++ {
		if br.combined(t, RLCCoeffs(f, freshSeed(t), 2), 0, 2) {
			t.Fatal("crafted cancelling pair accepted under an independent random challenge")
		}
	}
}

// TestRLCCoeffs checks the coefficient derivation: deterministic per seed,
// never zero, and different across seeds.
func TestRLCCoeffs(t *testing.T) {
	f := field.NewF64()
	var s1, s2 prg.Seed
	s2[0] = 1
	a := RLCCoeffs(f, s1, 64)
	b := RLCCoeffs(f, s1, 64)
	c := RLCCoeffs(f, s2, 64)
	same, diff := true, false
	for i := range a {
		if f.IsZero(a[i]) || f.IsZero(c[i]) {
			t.Fatal("RLCCoeffs produced a zero coefficient")
		}
		same = same && f.Equal(a[i], b[i])
		diff = diff || !f.Equal(a[i], c[i])
	}
	if !same {
		t.Fatal("RLCCoeffs is not deterministic in the seed")
	}
	if !diff {
		t.Fatal("RLCCoeffs ignores the seed")
	}
}

// TestBatchStateErrors drives the error paths: misuse must produce errors,
// never panics (the batch-verify fuzz target relies on this).
func TestBatchStateErrors(t *testing.T) {
	f := field.NewF64()
	sys, err := NewSystem(f, range4(f), Params{Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := sys.NewChallenge(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	bv := sys.NewEvaluator(ch).Batch()
	x := encode4(f, 5)
	pf, err := sys.Prove(x, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := bv.Round1([][]uint64{x}, nil, true); err == nil {
		t.Fatal("count mismatch accepted")
	}
	if _, _, err := bv.Round1([][]uint64{x[:3]}, []*Proof[uint64]{pf}, true); err == nil {
		t.Fatal("short input accepted")
	}
	short := *pf
	short.H = short.H[:len(short.H)-1]
	if _, _, err := bv.Round1([][]uint64{x}, []*Proof[uint64]{&short}, true); err == nil {
		t.Fatal("truncated proof accepted")
	}
	st, msgs, err := bv.Round1([][]uint64{x}, []*Proof[uint64]{pf}, true)
	if err != nil {
		t.Fatal(err)
	}
	lambda := RLCCoeffs(f, prg.Seed{}, 1)
	if _, err := bv.Combined(st, lambda, 0, 1); err == nil {
		t.Fatal("Combined before SetOpened accepted")
	}
	if _, err := bv.Single(st, 0); err == nil {
		t.Fatal("Single before SetOpened accepted")
	}
	if err := bv.SetOpened(st, nil, 1); err == nil {
		t.Fatal("SetOpened with wrong count accepted")
	}
	if err := bv.SetOpened(st, msgs, 1); err != nil {
		t.Fatal(err)
	}
	for _, rng := range [][2]int{{-1, 1}, {0, 2}, {1, 1}, {0, 0}} {
		if _, err := bv.Combined(st, lambda, rng[0], rng[1]); err == nil {
			t.Fatalf("Combined accepted bad range %v", rng)
		}
	}
	if _, err := bv.Combined(st, lambda[:0], 0, 1); err == nil {
		t.Fatal("Combined accepted λ length mismatch")
	}
	if _, err := bv.Single(st, 1); err == nil {
		t.Fatal("Single accepted out-of-range index")
	}
}

// TestCachedEvaluator checks the shape/challenge-keyed memoization and its
// eviction bound.
func TestCachedEvaluator(t *testing.T) {
	f := field.NewF64()
	sys, err := NewSystem(f, range4(f), Params{Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	ch1, err := sys.NewChallenge(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ev1 := sys.CachedEvaluator(ch1)
	if sys.CachedEvaluator(ch1) != ev1 {
		t.Fatal("same challenge did not hit the cache")
	}
	ch2, err := sys.NewChallenge(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if sys.CachedEvaluator(ch2) == ev1 {
		t.Fatal("distinct challenges shared an evaluator")
	}
	for i := 0; i < 2*evCacheCap; i++ {
		chI, err := sys.NewChallenge(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		sys.CachedEvaluator(chI)
	}
	sys.evMu.Lock()
	n := len(sys.evCache)
	sys.evMu.Unlock()
	if n > evCacheCap {
		t.Fatalf("evaluator cache grew to %d entries, cap is %d", n, evCacheCap)
	}
	// Evicted challenge rebuilds without error.
	if sys.CachedEvaluator(ch1) == nil {
		t.Fatal("rebuild after eviction failed")
	}
	if sys.ShapeKey() == "" {
		t.Fatal("empty shape key")
	}
}
