package snip

import (
	"crypto/rand"
	"testing"
	"testing/quick"

	"prio/internal/circuit"
	"prio/internal/field"
	"prio/internal/share"
)

// TestCompletenessQuick: for random b-bit values and random share counts,
// the full SNIP protocol accepts honest submissions.
func TestCompletenessQuick(t *testing.T) {
	f := field.NewF64()
	sysCache := map[int]*System[field.F64, uint64]{}
	err := quick.Check(func(v uint16, sRaw, bitsRaw uint8) bool {
		bits := int(bitsRaw%12) + 1
		s := int(sRaw%5) + 1
		val := uint64(v) & ((1 << uint(bits)) - 1)
		sys, ok := sysCache[bits]
		if !ok {
			b := circuit.NewBuilder(f, bits+1)
			ws := make([]circuit.Wire, bits)
			for i := range ws {
				ws[i] = b.Input(i + 1)
			}
			b.AssertBitDecomposition(b.Input(0), ws)
			var err error
			sys, err = NewSystem(f, b.Build(), Params{Reps: 1})
			if err != nil {
				t.Fatal(err)
			}
			sysCache[bits] = sys
		}
		x := make([]uint64, bits+1)
		x[0] = val
		for i := 0; i < bits; i++ {
			x[i+1] = (val >> uint(i)) & 1
		}
		pf, err := sys.Prove(x, rand.Reader)
		if err != nil {
			return false
		}
		xs, err := share.Split(f, rand.Reader, x, s)
		if err != nil {
			return false
		}
		ps, err := sys.Split(pf, s, rand.Reader)
		if err != nil {
			return false
		}
		ch, err := sys.NewChallenge(rand.Reader)
		if err != nil {
			return false
		}
		ok2, err := sys.NewEvaluator(ch).VerifyDistributed(xs, ps)
		return err == nil && ok2
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSoundnessQuick: random non-bit values are rejected.
func TestSoundnessQuick(t *testing.T) {
	f := field.NewF64()
	b := circuit.NewBuilder(f, 1)
	b.AssertBit(b.Input(0))
	sys, err := NewSystem(f, b.Build(), Params{Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	err = quick.Check(func(v uint64) bool {
		v %= field.ModulusF64
		if v == 0 || v == 1 {
			return true // valid values are covered by completeness
		}
		x := []uint64{v}
		pf, err := sys.Prove(x, rand.Reader)
		if err != nil {
			return false
		}
		xs, err := share.Split(f, rand.Reader, x, 2)
		if err != nil {
			return false
		}
		ps, err := sys.Split(pf, 2, rand.Reader)
		if err != nil {
			return false
		}
		ch, err := sys.NewChallenge(rand.Reader)
		if err != nil {
			return false
		}
		accepted, err := sys.NewEvaluator(ch).VerifyDistributed(xs, ps)
		return err == nil && !accepted
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFlattenRoundTripQuick: proof (un)flattening is lossless — the property
// the PRG share-compression pipeline depends on.
func TestFlattenRoundTripQuick(t *testing.T) {
	f := field.NewF64()
	b := circuit.NewBuilder(f, 3)
	for i := 0; i < 3; i++ {
		b.AssertBit(b.Input(i))
	}
	sys, err := NewSystem(f, b.Build(), Params{Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	err = quick.Check(func(bits uint8) bool {
		x := []uint64{uint64(bits) & 1, uint64(bits>>1) & 1, uint64(bits>>2) & 1}
		pf, err := sys.Prove(x, rand.Reader)
		if err != nil {
			return false
		}
		flat := sys.FlattenProof(pf)
		if len(flat) != sys.ProofLen() {
			return false
		}
		back, err := sys.UnflattenProof(flat)
		if err != nil {
			return false
		}
		if !f.Equal(back.F0, pf.F0) || !f.Equal(back.G0, pf.G0) {
			return false
		}
		if !field.EqualVec(f, back.H, pf.H) {
			return false
		}
		for j := range pf.Triples {
			if back.Triples[j] != pf.Triples[j] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.UnflattenProof(make([]uint64, sys.ProofLen()-1)); err == nil {
		t.Error("UnflattenProof accepted short vector")
	}
}

// TestShareSumEqualsProof: the sum of proof shares reconstructs the proof —
// additive sharing must be component-exact.
func TestShareSumEqualsProof(t *testing.T) {
	f := field.NewF64()
	b := circuit.NewBuilder(f, 2)
	b.AssertBit(b.Input(0))
	b.AssertBit(b.Input(1))
	sys, err := NewSystem(f, b.Build(), Params{Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	pf, err := sys.Prove([]uint64{1, 0}, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	shares, err := sys.Split(pf, 4, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	sum := make([]uint64, sys.ProofLen())
	for _, sh := range shares {
		field.AddVec(f, sum, sys.FlattenProof(sh))
	}
	if !field.EqualVec(f, sum, sys.FlattenProof(pf)) {
		t.Error("proof shares do not sum to the proof")
	}
}

// TestHEncodesTrueProducts pins the indexing convention: H[2(t+1)] must be
// the output of multiplication gate t.
func TestHEncodesTrueProducts(t *testing.T) {
	f := field.NewF64()
	b := circuit.NewBuilder(f, 2)
	m1 := b.Mul(b.Input(0), b.Input(1)) // 6*7 = 42
	b.Mul(m1, b.Input(0))               // 42*6 = 252
	b.AssertZero(b.Sub(m1, m1))
	sys, err := NewSystem(f, b.Build(), Params{})
	if err != nil {
		t.Fatal(err)
	}
	pf, err := sys.Prove([]uint64{6, 7}, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if pf.H[2] != 42 {
		t.Errorf("H[2] = %d, want 42", pf.H[2])
	}
	if pf.H[4] != 252 {
		t.Errorf("H[4] = %d, want 252", pf.H[4])
	}
}

// TestRejectsDataShareTamper: a malicious server (or corrupted channel)
// flipping a data share makes the honest servers reject — they can no
// longer reconstruct consistent polynomials.
func TestRejectsDataShareTamper(t *testing.T) {
	f := field.NewF64()
	b := circuit.NewBuilder(f, 1)
	b.AssertBit(b.Input(0))
	sys, err := NewSystem(f, b.Build(), Params{Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	x := []uint64{1}
	pf, err := sys.Prove(x, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	xs, err := share.Split(f, rand.Reader, x, 3)
	if err != nil {
		t.Fatal(err)
	}
	xs[1][0] = f.Add(xs[1][0], 1) // tampered share
	ps, err := sys.Split(pf, 3, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := sys.NewChallenge(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	accepted, err := sys.NewEvaluator(ch).VerifyDistributed(xs, ps)
	if err != nil {
		t.Fatal(err)
	}
	if accepted {
		t.Error("tampered data share accepted")
	}
}
