// Package cli holds small helpers shared by the command-line binaries:
// parsing a textual private value for a scheme (prio-client) and fabricating
// a default valid value for load generation (prio-load).
package cli

import (
	"fmt"
	"strconv"
	"strings"

	"prio"
)

// EncodeValue parses the textual value for the given scheme and encodes it.
// The syntax is scheme-dependent: a decimal integer for sums and counters, a
// comma-separated vector for surveys, "x1,x2,...;y" for regression.
func EncodeValue(scheme prio.Scheme, v string) ([]uint64, error) {
	switch s := scheme.(type) {
	case *prio.Sum:
		x, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return nil, err
		}
		return s.Encode(x)
	case *prio.Variance:
		x, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return nil, err
		}
		return s.Encode(x)
	case *prio.FreqCount:
		x, err := strconv.Atoi(v)
		if err != nil {
			return nil, err
		}
		return s.Encode(x)
	case *prio.MostPopular:
		x, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return nil, err
		}
		return s.Encode(x)
	case *prio.BitVector:
		parts := strings.Split(v, ",")
		bits := make([]bool, len(parts))
		for i, p := range parts {
			bits[i] = strings.TrimSpace(p) == "1"
		}
		return s.Encode(bits)
	case *prio.IntVector:
		parts := strings.Split(v, ",")
		vals := make([]uint64, len(parts))
		for i, p := range parts {
			x, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
			if err != nil {
				return nil, err
			}
			vals[i] = x
		}
		return s.Encode(vals)
	case *prio.LinReg:
		halves := strings.SplitN(v, ";", 2)
		if len(halves) != 2 {
			return nil, fmt.Errorf("linreg value must be \"x1,x2,...;y\"")
		}
		parts := strings.Split(halves[0], ",")
		xs := make([]uint64, len(parts))
		for i, p := range parts {
			x, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
			if err != nil {
				return nil, err
			}
			xs[i] = x
		}
		y, err := strconv.ParseUint(strings.TrimSpace(halves[1]), 10, 64)
		if err != nil {
			return nil, err
		}
		return s.Encode(xs, y)
	default:
		return nil, fmt.Errorf("no value parser for scheme %s", scheme.Name())
	}
}

// DefaultEncoding fabricates a valid private value for the scheme — what a
// load generator submits when the operator does not care which value floods
// the deployment.
func DefaultEncoding(scheme prio.Scheme) ([]uint64, error) {
	switch s := scheme.(type) {
	case *prio.Sum:
		return s.Encode(1)
	case *prio.Variance:
		return s.Encode(1)
	case *prio.FreqCount:
		return s.Encode(0)
	case *prio.MostPopular:
		return s.Encode(1)
	case *prio.BitVector:
		return s.Encode(make([]bool, s.Len()))
	case *prio.IntVector:
		return s.Encode(make([]uint64, s.Len()))
	case *prio.LinReg:
		return s.Encode(make([]uint64, s.D()), 0)
	default:
		return nil, fmt.Errorf("no default value for scheme %s", scheme.Name())
	}
}

// ParseMode maps the -mode flag onto a deployment mode. All binaries accept
// the same three names, matching the paper's evaluation variants.
func ParseMode(s string) (prio.Mode, error) {
	switch s {
	case "prio":
		return prio.ModePrio, nil
	case "prio-mpc":
		return prio.ModePrioMPC, nil
	case "no-robust":
		return prio.ModeNoRobustness, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want prio, prio-mpc, or no-robust)", s)
	}
}
