package cli

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
)

// logLevel is shared by every binary that imports this package: one
// -log-level flag, one leveled key=value logger.
var logLevel = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")

// InitLog installs the process logger per -log-level: a slog TextHandler
// writing key=value lines to stderr. It also becomes the slog default, so
// stdlib log.Printf output in dependencies routes through the same handler
// at info level. Call it right after flag.Parse.
func InitLog() *slog.Logger {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "bad -log-level %q: want debug, info, warn, or error\n", *logLevel)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
	slog.SetDefault(logger)
	// Strip the stdlib prefix duplication: the handler adds its own
	// timestamp, so the bridged log.Printf path must not.
	log.SetFlags(0)
	return logger
}

// Fatal logs msg at error level with the given key=value attrs and exits.
// It is the slog-era log.Fatal for the binaries' setup paths.
func Fatal(msg string, args ...any) {
	slog.Error(msg, args...)
	os.Exit(1)
}
