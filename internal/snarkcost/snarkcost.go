// Package snarkcost reproduces the paper's SNARK client-cost estimate
// (Section 6.2, Figure 7 "SNARK (Est.)"). The paper did not run a SNARK
// prover; it extrapolated from libsnark/Pinocchio timings:
//
//   - to make the statement concise enough for succinct verification, the
//     client must hash its full submission inside the circuit — s·L
//     subset-sum hashes of ~300 multiplication gates each — on top of the
//     Valid circuit's own M gates;
//   - each SNARK multiplication gate costs the prover a handful of group
//     exponentiations.
//
// We keep the identical formula and calibrate the per-exponentiation cost by
// measuring P-256 scalar multiplication on the host, so the estimate scales
// with the machine the benchmarks run on, exactly as the paper scaled its
// estimate to its testbed.
package snarkcost

import (
	"crypto/elliptic"
	"crypto/rand"
	"math/big"
	"time"
)

// GatesPerHash is the paper's "optimistic" 300 multiplication gates per
// subset-sum hash.
const GatesPerHash = 300

// ExpsPerGate is the assumed number of exponentiation-equivalents the SNARK
// prover performs per multiplication gate (Pinocchio-style provers compute
// several multi-exponentiations over the gate count; 6 is a conservative
// per-gate figure).
const ExpsPerGate = 6

// MeasureExpCost times one P-256 scalar multiplication on this host (median
// of iters trials).
func MeasureExpCost(iters int) time.Duration {
	if iters < 1 {
		iters = 1
	}
	curve := elliptic.P256()
	k, _ := rand.Int(rand.Reader, curve.Params().N)
	if k.Sign() == 0 {
		k = big.NewInt(1)
	}
	x, y := curve.ScalarBaseMult(k.Bytes())
	start := time.Now()
	for i := 0; i < iters; i++ {
		x, y = curve.ScalarMult(x, y, k.Bytes())
	}
	_ = y
	return time.Since(start) / time.Duration(iters)
}

// Gates returns the estimated SNARK circuit size for a Valid circuit of
// mulGates gates over an inputLen-element submission shared across servers
// servers: M + 300·s·L.
func Gates(mulGates, inputLen, servers int) int {
	return mulGates + GatesPerHash*servers*inputLen
}

// EstimateProofTime returns the estimated client proving time.
func EstimateProofTime(mulGates, inputLen, servers int, expCost time.Duration) time.Duration {
	return time.Duration(Gates(mulGates, inputLen, servers)) * ExpsPerGate * expCost
}

// ProofBytes is the constant SNARK proof size the paper quotes (288 bytes,
// "admirably short").
const ProofBytes = 288
