package snarkcost

import (
	"testing"
	"time"
)

func TestGatesFormula(t *testing.T) {
	// M + 300·s·L, per the paper's estimate.
	if got := Gates(100, 10, 5); got != 100+300*5*10 {
		t.Errorf("Gates = %d", got)
	}
	if got := Gates(0, 0, 5); got != 0 {
		t.Errorf("Gates with empty input = %d", got)
	}
}

func TestEstimateScalesLinearly(t *testing.T) {
	exp := time.Microsecond
	a := EstimateProofTime(100, 100, 5, exp)
	b := EstimateProofTime(200, 200, 5, exp)
	if b != 2*a {
		t.Errorf("estimate not linear: %v vs %v", a, b)
	}
	if a != time.Duration(Gates(100, 100, 5))*ExpsPerGate*exp {
		t.Errorf("estimate formula drifted")
	}
}

func TestMeasureExpCostSane(t *testing.T) {
	c := MeasureExpCost(4)
	// A P-256 scalar multiplication takes somewhere between 1µs and 50ms on
	// any machine this will ever run on.
	if c < time.Microsecond || c > 50*time.Millisecond {
		t.Errorf("implausible exponentiation cost %v", c)
	}
	if MeasureExpCost(0) <= 0 {
		t.Error("MeasureExpCost(0) should clamp iterations and stay positive")
	}
}
