// Package sketch implements the count-min sketch of Cormode and
// Muthukrishnan, the randomized data structure behind Prio's approximate
// counts over large domains (Appendix G, following Melis et al.). A sketch
// with R = ⌈ln(1/δ)⌉ rows and C = ⌈e/ε⌉ columns overestimates any item's
// count by at most ε·n except with probability δ.
//
// Hashing is SHA-256 over (row index, item), so clients and servers derive
// identical positions without coordination.
package sketch

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
)

// Params fixes the sketch dimensions.
type Params struct {
	Rows, Cols int
}

// NewParams derives dimensions from the accuracy target: estimates are
// within ε·n of the truth with probability 1−δ.
func NewParams(epsilon, delta float64) Params {
	if epsilon <= 0 || delta <= 0 || delta >= 1 {
		panic("sketch: need epsilon > 0 and 0 < delta < 1")
	}
	return Params{
		Rows: int(math.Ceil(math.Log(1 / delta))),
		Cols: int(math.Ceil(math.E / epsilon)),
	}
}

// Cells returns Rows·Cols, the flat size of the sketch.
func (p Params) Cells() int { return p.Rows * p.Cols }

// Index returns the column that item hashes to in the given row.
func (p Params) Index(row int, item []byte) int {
	h := sha256.New()
	var rb [4]byte
	binary.LittleEndian.PutUint32(rb[:], uint32(row))
	h.Write(rb[:])
	h.Write(item)
	digest := h.Sum(nil)
	v := binary.LittleEndian.Uint64(digest[:8])
	return int(v % uint64(p.Cols))
}

// Positions returns the flat cell index (row·Cols + col) of item in every
// row — the cells a client sets to one in its submission.
func (p Params) Positions(item []byte) []int {
	out := make([]int, p.Rows)
	for r := 0; r < p.Rows; r++ {
		out[r] = r*p.Cols + p.Index(r, item)
	}
	return out
}

// Sketch is a materialized count table, e.g. the decoded sum of client
// submissions.
type Sketch struct {
	P      Params
	Counts []uint64 // flat, row-major, length P.Cells()
}

// New returns an empty sketch.
func New(p Params) *Sketch {
	return &Sketch{P: p, Counts: make([]uint64, p.Cells())}
}

// FromCounts wraps an existing flat count table (must have length Cells()).
func FromCounts(p Params, counts []uint64) *Sketch {
	if len(counts) != p.Cells() {
		panic("sketch: count table size mismatch")
	}
	return &Sketch{P: p, Counts: counts}
}

// Add inserts one occurrence of item.
func (s *Sketch) Add(item []byte) {
	for _, pos := range s.P.Positions(item) {
		s.Counts[pos]++
	}
}

// Estimate returns the count-min estimate for item: the minimum of its cells,
// an overestimate of the true count by at most ε·n w.h.p.
func (s *Sketch) Estimate(item []byte) uint64 {
	min := uint64(math.MaxUint64)
	for _, pos := range s.P.Positions(item) {
		if s.Counts[pos] < min {
			min = s.Counts[pos]
		}
	}
	return min
}
