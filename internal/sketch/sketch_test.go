package sketch

import (
	"fmt"
	"testing"
)

func TestParamsFromAccuracy(t *testing.T) {
	p := NewParams(0.1, 1.0/1024)
	if p.Rows != 7 { // ceil(ln 1024) = ceil(6.93)
		t.Errorf("rows = %d, want 7", p.Rows)
	}
	if p.Cols != 28 { // ceil(e/0.1) = ceil(27.18)
		t.Errorf("cols = %d, want 28", p.Cols)
	}
	if p.Cells() != 7*28 {
		t.Errorf("cells = %d", p.Cells())
	}
}

func TestIndexDeterministicAndInRange(t *testing.T) {
	p := NewParams(0.05, 0.01)
	for r := 0; r < p.Rows; r++ {
		a := p.Index(r, []byte("hello"))
		b := p.Index(r, []byte("hello"))
		if a != b {
			t.Fatal("Index is not deterministic")
		}
		if a < 0 || a >= p.Cols {
			t.Fatalf("Index out of range: %d", a)
		}
	}
	// Rows must hash independently: not all rows map to the same column.
	same := true
	first := p.Index(0, []byte("hello"))
	for r := 1; r < p.Rows; r++ {
		if p.Index(r, []byte("hello")) != first {
			same = false
		}
	}
	if same {
		t.Error("all rows hash identically")
	}
}

func TestEstimateNeverUndercounts(t *testing.T) {
	p := NewParams(0.1, 0.01)
	s := New(p)
	truth := map[string]uint64{}
	for i := 0; i < 300; i++ {
		item := fmt.Sprintf("item-%d", i%37)
		s.Add([]byte(item))
		truth[item]++
	}
	for item, want := range truth {
		got := s.Estimate([]byte(item))
		if got < want {
			t.Errorf("estimate(%s) = %d < true count %d", item, got, want)
		}
		// Overestimate bounded by eps*n = 30 w.h.p.
		if got > want+30 {
			t.Errorf("estimate(%s) = %d overshoots %d by more than eps*n", item, got, want)
		}
	}
}

func TestFromCountsPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromCounts accepted wrong size")
		}
	}()
	FromCounts(Params{Rows: 2, Cols: 3}, make([]uint64, 5))
}

func TestBadParamsPanic(t *testing.T) {
	for _, c := range []struct{ eps, delta float64 }{
		{0, 0.1}, {-1, 0.1}, {0.1, 0}, {0.1, 1},
	} {
		func() {
			defer func() { recover() }()
			NewParams(c.eps, c.delta)
			t.Errorf("NewParams(%v,%v) did not panic", c.eps, c.delta)
		}()
	}
}
