package shamir

import (
	"crypto/rand"
	"testing"
	"testing/quick"

	"prio/internal/field"
)

func TestSplitReconstruct(t *testing.T) {
	f := field.NewF64()
	secret := []uint64{42, 0, 7, field.ModulusF64 - 1}
	for _, cfg := range []struct{ t, s int }{
		{1, 1}, {1, 3}, {2, 3}, {3, 3}, {3, 5}, {5, 9},
	} {
		shares, err := Split(f, rand.Reader, secret, cfg.t, cfg.s)
		if err != nil {
			t.Fatalf("t=%d s=%d: %v", cfg.t, cfg.s, err)
		}
		if len(shares) != cfg.s {
			t.Fatalf("got %d shares", len(shares))
		}
		got, err := Reconstruct(f, cfg.t, shares)
		if err != nil {
			t.Fatal(err)
		}
		if !field.EqualVec(f, got, secret) {
			t.Errorf("t=%d s=%d: reconstruction mismatch", cfg.t, cfg.s)
		}
	}
}

func TestAnySubsetOfTShares(t *testing.T) {
	f := field.NewF64()
	secret := []uint64{123456789}
	const tt, s = 3, 6
	shares, err := Split(f, rand.Reader, secret, tt, s)
	if err != nil {
		t.Fatal(err)
	}
	// Every contiguous and one scrambled subset of size t must reconstruct.
	subsets := [][]Share[uint64]{
		{shares[0], shares[1], shares[2]},
		{shares[3], shares[4], shares[5]},
		{shares[5], shares[0], shares[3]},
		{shares[4], shares[2], shares[1]},
	}
	for i, sub := range subsets {
		got, err := Reconstruct(f, tt, sub)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != secret[0] {
			t.Errorf("subset %d reconstructed %d", i, got[0])
		}
	}
}

func TestTooFewSharesRevealNothing(t *testing.T) {
	// Statistical smoke test of privacy: reconstructing with t-1 shares
	// (treating them as a (t-1)-threshold sharing) must NOT yield the
	// secret except by coincidence.
	f := field.NewF64()
	secret := []uint64{999}
	hits := 0
	for i := 0; i < 20; i++ {
		shares, err := Split(f, rand.Reader, secret, 3, 5)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Reconstruct(f, 2, shares[:2])
		if err != nil {
			t.Fatal(err)
		}
		if got[0] == secret[0] {
			hits++
		}
	}
	if hits > 2 {
		t.Errorf("t-1 shares matched the secret %d/20 times", hits)
	}
	if _, err := Reconstruct(f, 3, nil); err == nil {
		t.Error("Reconstruct accepted zero shares")
	}
}

func TestHomomorphicAdd(t *testing.T) {
	f := field.NewF64()
	a := []uint64{10, 20}
	b := []uint64{5, 7}
	const tt, s = 2, 4
	as, err := Split(f, rand.Reader, a, tt, s)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := Split(f, rand.Reader, b, tt, s)
	if err != nil {
		t.Fatal(err)
	}
	sum := make([]Share[uint64], s)
	for i := 0; i < s; i++ {
		sh, err := Add(f, as[i], bs[i])
		if err != nil {
			t.Fatal(err)
		}
		sum[i] = sh
	}
	got, err := Reconstruct(f, tt, sum[1:3])
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 15 || got[1] != 27 {
		t.Errorf("homomorphic sum = %v, want [15 27]", got)
	}
	if _, err := Add(f, as[0], bs[1]); err == nil {
		t.Error("Add accepted mismatched coordinates")
	}
}

func TestValidation(t *testing.T) {
	f := field.NewF64()
	if _, err := Split(f, rand.Reader, []uint64{1}, 0, 3); err == nil {
		t.Error("Split accepted t=0")
	}
	if _, err := Split(f, rand.Reader, []uint64{1}, 4, 3); err == nil {
		t.Error("Split accepted t>s")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := field.NewF64()
	err := quick.Check(func(vals []uint64, tRaw, sRaw uint8) bool {
		if len(vals) == 0 || len(vals) > 8 {
			return true
		}
		s := int(sRaw%6) + 1
		tt := int(tRaw)%s + 1
		secret := make([]uint64, len(vals))
		for i, v := range vals {
			secret[i] = v % field.ModulusF64
		}
		shares, err := Split(f, rand.Reader, secret, tt, s)
		if err != nil {
			return false
		}
		got, err := Reconstruct(f, tt, shares)
		return err == nil && field.EqualVec(f, got, secret)
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Fatal(err)
	}
}
