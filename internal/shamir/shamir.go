// Package shamir implements Shamir's threshold secret sharing over the
// generic field interface. Appendix B of the paper sketches how Prio could
// tolerate k faulty servers — at the cost of weakening privacy to s−k−1
// colluders — by replacing s-out-of-s additive sharing with t-out-of-s
// Shamir sharing; this package provides that building block (with
// Lagrange-at-zero reconstruction from any t shares) so a deployment can
// make the trade the paper describes.
package shamir

import (
	"errors"
	"io"

	"prio/internal/field"
	"prio/internal/poly"
)

// Errors returned by the sharing routines.
var (
	ErrThreshold = errors.New("shamir: need 1 ≤ t ≤ s and s below field size")
	ErrTooFew    = errors.New("shamir: not enough shares to reconstruct")
)

// Share is one party's evaluation of the sharing polynomials: the value
// vector at x-coordinate X (never zero).
type Share[E any] struct {
	X      E
	Values []E
}

// Split shares the vector secret with threshold t among s parties: any t
// shares reconstruct, any t−1 reveal nothing. Party i receives X = i+1.
func Split[Fd field.Field[E], E any](f Fd, rnd io.Reader, secret []E, t, s int) ([]Share[E], error) {
	if t < 1 || t > s {
		return nil, ErrThreshold
	}
	shares := make([]Share[E], s)
	for i := range shares {
		shares[i] = Share[E]{X: f.FromUint64(uint64(i + 1)), Values: make([]E, len(secret))}
	}
	coeffs := make([]E, t)
	for vi, sv := range secret {
		// Random polynomial of degree < t with constant term = secret.
		coeffs[0] = sv
		for j := 1; j < t; j++ {
			c, err := f.SampleElem(rnd)
			if err != nil {
				return nil, err
			}
			coeffs[j] = c
		}
		for i := range shares {
			shares[i].Values[vi] = poly.Eval(f, coeffs, shares[i].X)
		}
	}
	return shares, nil
}

// Reconstruct recovers the secret vector from at least t shares with
// distinct x-coordinates, by Lagrange interpolation at zero.
func Reconstruct[Fd field.Field[E], E any](f Fd, t int, shares []Share[E]) ([]E, error) {
	if len(shares) < t {
		return nil, ErrTooFew
	}
	use := shares[:t]
	// Lagrange coefficients at zero: λ_i = Π_{j≠i} x_j / (x_j − x_i).
	lambda := make([]E, t)
	for i := range use {
		num := f.One()
		den := f.One()
		for j := range use {
			if i == j {
				continue
			}
			num = f.Mul(num, use[j].X)
			den = f.Mul(den, f.Sub(use[j].X, use[i].X))
		}
		if f.IsZero(den) {
			return nil, errors.New("shamir: duplicate share coordinates")
		}
		lambda[i] = f.Mul(num, f.Inv(den))
	}
	n := len(use[0].Values)
	out := make([]E, n)
	for vi := 0; vi < n; vi++ {
		acc := f.Zero()
		for i := range use {
			if len(use[i].Values) != n {
				return nil, errors.New("shamir: ragged share vectors")
			}
			acc = f.Add(acc, f.Mul(lambda[i], use[i].Values[vi]))
		}
		out[vi] = acc
	}
	return out, nil
}

// Add folds src into dst share-wise; Shamir shares of equal x-coordinates
// add to shares of the summed secret, so threshold aggregation works exactly
// like the additive pipeline.
func Add[Fd field.Field[E], E any](f Fd, dst, src Share[E]) (Share[E], error) {
	if !f.Equal(dst.X, src.X) {
		return Share[E]{}, errors.New("shamir: adding shares at different coordinates")
	}
	out := Share[E]{X: dst.X, Values: append([]E(nil), dst.Values...)}
	field.AddVec(f, out.Values, src.Values)
	return out, nil
}
