// Package share implements the s-out-of-s additive secret-sharing scheme of
// Section 3: a vector x ∈ F^L is split into s random vectors that sum to x.
// Any s-1 shares are independent of x, which is the entire privacy argument
// of the basic Prio scheme.
//
// The package also provides the PRG-compressed variant of Appendix I
// (optimization 1), where the first s-1 shares are 16-byte PRG seeds, and an
// XOR-sharing variant for the F_2^λ boolean encodings of Section 5.2.
package share

import (
	"crypto/rand"
	"errors"
	"io"

	"prio/internal/field"
	"prio/internal/prg"
)

// ErrBadShareCount is returned when a split or reconstruction is requested
// with fewer than one share.
var ErrBadShareCount = errors.New("share: need at least 1 share")

// Split divides x into s additive shares using entropy from rnd: the first
// s-1 shares are uniformly random and the last is x minus their sum. The
// input is not modified.
func Split[Fd field.Field[E], E any](f Fd, rnd io.Reader, x []E, s int) ([][]E, error) {
	if s < 1 {
		return nil, ErrBadShareCount
	}
	shares := make([][]E, s)
	last := append([]E(nil), x...)
	for i := 0; i < s-1; i++ {
		sh, err := field.SampleVec(f, rnd, len(x))
		if err != nil {
			return nil, err
		}
		shares[i] = sh
		field.SubVec(f, last, sh)
	}
	shares[s-1] = last
	return shares, nil
}

// Reconstruct sums the given shares, recovering the secret vector. All shares
// must have equal length.
func Reconstruct[Fd field.Field[E], E any](f Fd, shares ...[]E) []E {
	if len(shares) == 0 {
		return nil
	}
	out := append([]E(nil), shares[0]...)
	for _, sh := range shares[1:] {
		field.AddVec(f, out, sh)
	}
	return out
}

// Expand deterministically derives an n-element share vector from a PRG seed.
// It is how servers holding a seeded share materialize their field elements.
func Expand[Fd field.Field[E], E any](f Fd, seed prg.Seed, n int) []E {
	g := prg.New(seed)
	out := make([]E, n)
	for i := range out {
		e, err := f.SampleElem(g)
		if err != nil {
			// The PRG never fails.
			panic("share: " + err.Error())
		}
		out[i] = e
	}
	return out
}

// SplitSeeded divides x into s shares where the first s-1 are PRG seeds
// (Appendix I, optimization 1). Server i < s-1 expands its seed with Expand;
// server s-1 receives the explicit vector.
func SplitSeeded[Fd field.Field[E], E any](f Fd, x []E, s int) ([]prg.Seed, []E, error) {
	if s < 1 {
		return nil, nil, ErrBadShareCount
	}
	seeds := make([]prg.Seed, s-1)
	last := append([]E(nil), x...)
	for i := range seeds {
		seed, err := prg.NewSeed()
		if err != nil {
			return nil, nil, err
		}
		seeds[i] = seed
		field.SubVec(f, last, Expand(f, seed, len(x)))
	}
	return seeds, last, nil
}

// XorSplit divides a packed bitset (len(words)*64 bits) into s XOR shares.
// It is used by the boolean OR/AND encodings, which aggregate in F_2^λ.
func XorSplit(words []uint64, s int) ([][]uint64, error) {
	if s < 1 {
		return nil, ErrBadShareCount
	}
	shares := make([][]uint64, s)
	last := append([]uint64(nil), words...)
	buf := make([]byte, 8*len(words))
	for i := 0; i < s-1; i++ {
		if _, err := io.ReadFull(rand.Reader, buf); err != nil {
			return nil, err
		}
		sh := make([]uint64, len(words))
		for j := range sh {
			sh[j] = leUint64(buf[8*j:])
			last[j] ^= sh[j]
		}
		shares[i] = sh
	}
	shares[s-1] = last
	return shares, nil
}

// XorReconstruct XORs the given shares together, recovering the bitset.
func XorReconstruct(shares ...[]uint64) []uint64 {
	if len(shares) == 0 {
		return nil
	}
	out := append([]uint64(nil), shares[0]...)
	for _, sh := range shares[1:] {
		for j := range out {
			out[j] ^= sh[j]
		}
	}
	return out
}

func leUint64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
