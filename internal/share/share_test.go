package share

import (
	"crypto/rand"
	"testing"
	"testing/quick"

	"prio/internal/field"
	"prio/internal/prg"
)

func TestSplitReconstruct(t *testing.T) {
	f := field.NewF64()
	for _, s := range []int{1, 2, 3, 5, 10} {
		x, err := field.SampleVec(f, rand.Reader, 32)
		if err != nil {
			t.Fatal(err)
		}
		shares, err := Split(f, rand.Reader, x, s)
		if err != nil {
			t.Fatal(err)
		}
		if len(shares) != s {
			t.Fatalf("got %d shares, want %d", len(shares), s)
		}
		got := Reconstruct(f, shares...)
		if !field.EqualVec(f, got, x) {
			t.Errorf("s=%d: reconstruction mismatch", s)
		}
	}
}

func TestSplitReconstructQuick(t *testing.T) {
	f := field.NewF64()
	err := quick.Check(func(vals []uint64, sRaw uint8) bool {
		s := int(sRaw%9) + 1
		x := make([]uint64, len(vals))
		for i, v := range vals {
			x[i] = f.FromUint64(v)
		}
		shares, err := Split(f, rand.Reader, x, s)
		if err != nil {
			return false
		}
		return field.EqualVec(f, Reconstruct(f, shares...), x)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPartialSharesLookRandom(t *testing.T) {
	// Any s-1 shares must be independent of x. Sanity check: splitting the
	// all-zeros vector twice yields different first shares.
	f := field.NewF64()
	x := make([]uint64, 16)
	a, err := Split(f, rand.Reader, x, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Split(f, rand.Reader, x, 3)
	if err != nil {
		t.Fatal(err)
	}
	if field.EqualVec(f, a[0], b[0]) {
		t.Error("first shares repeated across splits; sharing is not randomized")
	}
}

func TestSplitDoesNotMutateInput(t *testing.T) {
	f := field.NewF64()
	x := []uint64{1, 2, 3, 4}
	orig := append([]uint64(nil), x...)
	if _, err := Split(f, rand.Reader, x, 4); err != nil {
		t.Fatal(err)
	}
	if !field.EqualVec(f, x, orig) {
		t.Error("Split mutated its input")
	}
}

func TestSplitSeeded(t *testing.T) {
	f := field.NewF128()
	x, err := field.SampleVec(f, rand.Reader, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{1, 2, 5} {
		seeds, last, err := SplitSeeded(f, x, s)
		if err != nil {
			t.Fatal(err)
		}
		if len(seeds) != s-1 {
			t.Fatalf("got %d seeds, want %d", len(seeds), s-1)
		}
		shares := make([][]field.U128, 0, s)
		for _, seed := range seeds {
			shares = append(shares, Expand(f, seed, len(x)))
		}
		shares = append(shares, last)
		if !field.EqualVec(f, Reconstruct(f, shares...), x) {
			t.Errorf("s=%d: seeded reconstruction mismatch", s)
		}
	}
}

func TestExpandDeterministic(t *testing.T) {
	f := field.NewF64()
	seed := prg.Seed{9, 9, 9}
	a := Expand(f, seed, 100)
	b := Expand(f, seed, 100)
	if !field.EqualVec(f, a, b) {
		t.Error("Expand is not deterministic")
	}
	// A prefix expansion must agree with a longer one.
	c := Expand(f, seed, 40)
	if !field.EqualVec(f, a[:40], c) {
		t.Error("Expand prefix mismatch")
	}
}

func TestXorSplitReconstruct(t *testing.T) {
	words := []uint64{0xDEADBEEF, 0, ^uint64(0), 12345}
	for _, s := range []int{1, 2, 3, 7} {
		shares, err := XorSplit(words, s)
		if err != nil {
			t.Fatal(err)
		}
		got := XorReconstruct(shares...)
		for i := range words {
			if got[i] != words[i] {
				t.Errorf("s=%d: word %d = %x, want %x", s, i, got[i], words[i])
			}
		}
	}
}

func TestBadShareCounts(t *testing.T) {
	f := field.NewF64()
	if _, err := Split(f, rand.Reader, []uint64{1}, 0); err == nil {
		t.Error("Split accepted s=0")
	}
	if _, _, err := SplitSeeded(f, []uint64{1}, 0); err == nil {
		t.Error("SplitSeeded accepted s=0")
	}
	if _, err := XorSplit([]uint64{1}, 0); err == nil {
		t.Error("XorSplit accepted s=0")
	}
	if got := Reconstruct[field.F64, uint64](f); got != nil {
		t.Error("Reconstruct of nothing should be nil")
	}
}
