#!/usr/bin/env bash
# failover-e2e.sh — fault-injection end-to-end test for the cluster roster.
#
# Brings up a 3-member roster, floods it through the failover-aware load
# generator, kill -9s the sitting leader mid-run, and asserts:
#   - a successor takes leadership within 5s (prio_cluster_leader on /metrics)
#   - the load run completes with a closed loss ledger and >=1 failover
#   - the restarted member rejoins as a follower
#
# Runs locally (./scripts/failover-e2e.sh) and in the CI failover job.
# Plaintext transport: the subject here is failover, not TLS.
set -euo pipefail

WORK="$(mktemp -d)"
BIN="${WORK}/bin"
mkdir -p "${BIN}"
ROSTER="127.0.0.1:7300,127.0.0.1:7301,127.0.0.1:7302"
ADMIN=(127.0.0.1:7390 127.0.0.1:7391 127.0.0.1:7392)

pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    kill "${pid}" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "${WORK}"
}
trap cleanup EXIT

echo "== build"
go build -o "${BIN}/prio-server" ./cmd/prio-server
go build -o "${BIN}/prio-load" ./cmd/prio-load

start_member() { # start_member <index>
  local i="$1"
  "${BIN}/prio-server" -roster "${ROSTER}" -index "${i}" \
    -listen "127.0.0.1:730${i}" -admin-addr "${ADMIN[$i]}" \
    -key-file "${WORK}/key${i}" -tls=false \
    -ping-interval 200ms -fail-after 3 -batch-retries 3 \
    -publish-every 2s >"${WORK}/server${i}.log" 2>&1 &
  pids+=($!)
  eval "PID${i}=$!"
}

scrape_leader() { # scrape_leader <admin-addr> -> prints the gauge value or ""
  curl -sf "http://$1/metrics" 2>/dev/null |
    awk '$1 == "prio_cluster_leader" { print $2 }' || true
}

echo "== start 3-member roster"
for i in 0 1 2; do start_member "${i}"; done

echo "== wait for member 0 to take initial leadership"
deadline=$((SECONDS + 15))
until [ "$(scrape_leader "${ADMIN[1]}")" = "0" ]; do
  [ "${SECONDS}" -lt "${deadline}" ] || { echo "FAIL: no initial leader"; exit 1; }
  sleep 0.2
done

echo "== start failover load run"
"${BIN}/prio-load" -roster "${ROSTER}" -tls=false \
  -scheme sum8 -streams 2 -duration 10s -max-attempts 8 \
  >"${WORK}/load.out" 2>"${WORK}/load.err" &
LOAD_PID=$!
pids+=("${LOAD_PID}")

sleep 3
echo "== kill -9 the leader (member 0) mid-run"
kill -9 "${PID0}"

echo "== successor must hold leadership within 5s"
deadline=$((SECONDS + 5))
until [ "$(scrape_leader "${ADMIN[1]}")" = "1" ] &&
      [ "$(scrape_leader "${ADMIN[2]}")" = "1" ]; do
  [ "${SECONDS}" -lt "${deadline}" ] || {
    echo "FAIL: no successor within 5s"
    echo "--- member 1:"; curl -sf "http://${ADMIN[1]}/metrics" | grep ^prio_cluster || true
    echo "--- member 2:"; curl -sf "http://${ADMIN[2]}/metrics" | grep ^prio_cluster || true
    exit 1
  }
  sleep 0.2
done

echo "== restart member 0 (same key file); it must rejoin as follower"
start_member 0
sleep 2
lead0="$(scrape_leader "${ADMIN[0]}")"
if [ "${lead0}" != "1" ]; then
  echo "FAIL: restarted member sees leader=${lead0}, want 1"
  exit 1
fi

echo "== wait for the load run"
wait "${LOAD_PID}" || { echo "FAIL: prio-load exited nonzero"; cat "${WORK}/load.err"; exit 1; }
cat "${WORK}/load.out"

echo "== assert the loss ledger closed across the failover"
grep -q '^ledger=closed$' "${WORK}/load.out" || { echo "FAIL: ledger open"; exit 1; }
grep -Eq 'failovers=[1-9][0-9]*' "${WORK}/load.out" || { echo "FAIL: no failover recorded"; exit 1; }
grep -Eq 'accepted=[1-9][0-9]*' "${WORK}/load.out" || { echo "FAIL: nothing accepted"; exit 1; }

echo "== assert the successor's ingest counters saw the re-targeted streams"
curl -sf "http://${ADMIN[1]}/metrics" >"${WORK}/metrics1.out"
curl -sf "http://${ADMIN[2]}/metrics" >"${WORK}/metrics2.out"
grep -Eq '^prio_ingest_accepted_total [1-9][0-9]*' "${WORK}/metrics1.out" || {
  echo "FAIL: successor accepted nothing"; exit 1; }
# Whichever survivor first observed the leader death counted the failover;
# the other adopted the bumped epoch via gossip. Either is a valid witness.
grep -Eqh '^prio_cluster_failovers_total [1-9][0-9]*' \
  "${WORK}/metrics1.out" "${WORK}/metrics2.out" || {
  echo "FAIL: no survivor counted a failover"; exit 1; }

echo "PASS: failover e2e"
