#!/usr/bin/env bash
# window-restart-e2e.sh — crash-recovery end-to-end test for windowed
# aggregation with durable checkpoints.
#
# Brings up a 3-member roster with -window collection windows, DP-noised
# releases, and per-member checkpoint directories; floods it through the
# failover-aware load generator; kill -9s the sitting leader mid-window;
# restarts it; and asserts:
#   - windows keep publishing after the leader death (the close duty moved
#     with the leadership)
#   - the restarted member recovers its accumulator state from the newest
#     checkpoint (boot log provenance)
#   - every published window carries DP noise with its epsilon
#   - a fully post-restart window publishes with consistent per-server
#     counts — at most the in-flight window was damaged by the crash
#
# Runs locally (./scripts/window-restart-e2e.sh) and in the CI
# window-restart job. Plaintext transport: the subject is durability.
set -euo pipefail

WORK="$(mktemp -d)"
BIN="${WORK}/bin"
mkdir -p "${BIN}"
ROSTER="127.0.0.1:7500,127.0.0.1:7501,127.0.0.1:7502"
ADMIN=(127.0.0.1:7590 127.0.0.1:7591 127.0.0.1:7592)
WINDOW=4s

pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    kill "${pid}" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "${WORK}"
}
trap cleanup EXIT

echo "== build"
go build -o "${BIN}/prio-server" ./cmd/prio-server
go build -o "${BIN}/prio-load" ./cmd/prio-load

start_member() { # start_member <index>
  local i="$1"
  "${BIN}/prio-server" -roster "${ROSTER}" -index "${i}" \
    -listen "127.0.0.1:750${i}" -admin-addr "${ADMIN[$i]}" \
    -key-file "${WORK}/key${i}" -tls=false \
    -ping-interval 200ms -fail-after 3 -batch-retries 3 \
    -window "${WINDOW}" -checkpoint-dir "${WORK}/ckpt${i}" -checkpoint-every 1s \
    -dp-epsilon 1.0 -dp-budget 100 \
    -publish-every 1h >>"${WORK}/server${i}.log" 2>&1 &
  pids+=($!)
  eval "PID${i}=$!"
}

scrape() { # scrape <admin-addr> <metric> -> prints the value or ""
  curl -sf "http://$1/metrics" 2>/dev/null |
    awk -v m="$2" '$1 == m { print $2 }' || true
}

echo "== start 3-member roster (window=${WINDOW}, checkpoints every 1s)"
for i in 0 1 2; do start_member "${i}"; done

echo "== wait for member 0 to take initial leadership"
deadline=$((SECONDS + 15))
until [ "$(scrape "${ADMIN[1]}" prio_cluster_leader)" = "0" ]; do
  [ "${SECONDS}" -lt "${deadline}" ] || { echo "FAIL: no initial leader"; exit 1; }
  sleep 0.2
done

echo "== start failover load run with its own per-window ledger"
"${BIN}/prio-load" -roster "${ROSTER}" -tls=false \
  -scheme sum8 -streams 2 -duration 20s -max-attempts 10 \
  -window "${WINDOW}" \
  >"${WORK}/load.out" 2>"${WORK}/load.err" &
LOAD_PID=$!
pids+=("${LOAD_PID}")

echo "== let at least one window publish and checkpoints accumulate"
deadline=$((SECONDS + 12))
until grep -q '^window ' "${WORK}/server0.log" 2>/dev/null; do
  [ "${SECONDS}" -lt "${deadline}" ] || {
    echo "FAIL: leader never published a window"; cat "${WORK}/server0.log"; exit 1; }
  sleep 0.3
done

echo "== kill -9 the leader (member 0) mid-window"
kill -9 "${PID0}"

echo "== a successor must take leadership"
deadline=$((SECONDS + 10))
until [ "$(scrape "${ADMIN[1]}" prio_cluster_leader)" = "1" ] &&
      [ "$(scrape "${ADMIN[2]}" prio_cluster_leader)" = "1" ]; do
  [ "${SECONDS}" -lt "${deadline}" ] || { echo "FAIL: no successor within 10s"; exit 1; }
  sleep 0.2
done

echo "== restart member 0; it must recover from its checkpoint"
start_member 0
deadline=$((SECONDS + 10))
until grep -q 'window state recovered from checkpoint' "${WORK}/server0.log"; do
  [ "${SECONDS}" -lt "${deadline}" ] || {
    echo "FAIL: restarted member did not recover from checkpoint"
    tail -n 10 "${WORK}/server0.log"; exit 1; }
  sleep 0.2
done

echo "== the successor must publish windows (catching up those blocked by the outage)"
deadline=$((SECONDS + 20))
until grep -q '^window ' "${WORK}/server1.log" 2>/dev/null; do
  [ "${SECONDS}" -lt "${deadline}" ] || {
    echo "FAIL: the successor published no window after taking over"
    tail -n 5 "${WORK}/server1.log"; tail -n 5 "${WORK}/server2.log"; exit 1; }
  sleep 0.3
done

echo "== wait for the load run"
wait "${LOAD_PID}" || { echo "FAIL: prio-load exited nonzero"; cat "${WORK}/load.err"; exit 1; }
cat "${WORK}/load.out"

echo "== wait for a fully post-restart window to close"
sleep 6

echo "== assert: released windows carry DP noise with epsilon"
cat "${WORK}"/server*.log | grep '^window ' || true
grep -Eq '^window [0-9]+ .*noised=true eps=1' "${WORK}/server0.log" ||
  grep -Eqh '^window [0-9]+ .*noised=true eps=1' "${WORK}/server1.log" "${WORK}/server2.log" || {
  echo "FAIL: no noised window release found"; exit 1; }

echo "== assert: the client-side ledger closed and saw per-window lines"
grep -q '^ledger=closed$' "${WORK}/load.out" || { echo "FAIL: ledger open"; exit 1; }
grep -Eq '^window [0-9]+ (closed|partial): acked=' "${WORK}/load.out" || {
  echo "FAIL: prio-load printed no per-window ledger"; exit 1; }
grep -Eq 'accepted=[1-9][0-9]*' "${WORK}/load.out" || { echo "FAIL: nothing accepted"; exit 1; }

echo "== assert: a consistent (undamaged) window published after the restart"
deadline=$((SECONDS + 20))
ok=""
while [ "${SECONDS}" -lt "${deadline}" ]; do
  # The newest ledger lines on whichever member leads; a window published
  # after all three members are healthy again must not be flagged
  # INCONSISTENT. Look for any post-restart window line without the flag.
  if tail -n 3 "${WORK}/server1.log" "${WORK}/server2.log" 2>/dev/null |
      grep -E '^window [0-9]+ ' | grep -qv 'INCONSISTENT'; then
    ok=1; break
  fi
  sleep 0.5
done
[ -n "${ok}" ] || { echo "FAIL: every post-restart window inconsistent"; exit 1; }

echo "== assert: checkpoint and window metrics are live on the restarted member"
curl -sf "http://${ADMIN[0]}/metrics" >"${WORK}/metrics0.out"
grep -Eq '^prio_window_checkpoints_total [1-9][0-9]*' "${WORK}/metrics0.out" || {
  echo "FAIL: restarted member wrote no checkpoints"; exit 1; }
grep -Eq '^prio_window_current [1-9][0-9]*' "${WORK}/metrics0.out" || {
  echo "FAIL: no current window gauge"; exit 1; }
grep -Eq '^prio_window_dp_epsilon_spent [0-9]' "${WORK}/metrics0.out" || {
  echo "FAIL: no DP ledger gauge"; exit 1; }

echo "== assert: /aggregates serves the release history on the leader"
lead="$(scrape "${ADMIN[1]}" prio_cluster_leader)"
curl -sf "http://${ADMIN[$lead]}/aggregates" >"${WORK}/aggregates.out" || {
  echo "FAIL: /aggregates unreachable on leader (member ${lead})"; exit 1; }
grep -q '"noised": true' "${WORK}/aggregates.out" || {
  echo "FAIL: /aggregates shows no noised window"; cat "${WORK}/aggregates.out"; exit 1; }
grep -q '"epsilon": 1' "${WORK}/aggregates.out" || {
  echo "FAIL: /aggregates shows no epsilon"; cat "${WORK}/aggregates.out"; exit 1; }

echo "PASS: window restart e2e"
