#!/usr/bin/env bash
# alloc-gate.sh — allocation-regression gate for the streamed verification
# hot path.
#
# Runs the two gate benchmarks once each with -benchmem and asserts:
#   - BenchmarkRoundMarshal: exactly 0 allocs/op. The leader builds round
#     requests in pooled arenas; any allocation here is a pooling regression.
#   - BenchmarkStreamedRounds/Streamed: at most ${STREAMED_ALLOC_CEILING}
#     allocs/op end-to-end (one submission through a 4-shard pipeline over
#     latency-injected TCP, measured steady-state after warm-up). The
#     ceiling is pinned ~4x above the current figure, so it only trips on a
#     structural regression, not benchmark noise.
#
# Runs locally (./scripts/alloc-gate.sh) and in the CI bench job.
set -euo pipefail
cd "$(dirname "$0")/.."

STREAMED_ALLOC_CEILING="${STREAMED_ALLOC_CEILING:-2500}"
OUT="$(mktemp)"
trap 'rm -f "${OUT}"' EXIT

echo "== alloc gate: BenchmarkRoundMarshal (0 allocs/op)"
go test -run '^$' -bench '^BenchmarkRoundMarshal$' -benchmem -benchtime=1x \
  ./internal/core/ | tee "${OUT}"
echo "== alloc gate: BenchmarkStreamedRounds/Streamed (<= ${STREAMED_ALLOC_CEILING} allocs/op)"
go test -run '^$' -bench '^BenchmarkStreamedRounds/Streamed$' -benchmem -benchtime=1x \
  . | tee -a "${OUT}"

awk -v ceiling="${STREAMED_ALLOC_CEILING}" '
/^BenchmarkRoundMarshal/ {
  seen_rm = 1
  for (i = 1; i <= NF; i++) if ($i == "allocs/op") a = $(i-1)
  if (a + 0 != 0) { printf "FAIL: BenchmarkRoundMarshal %s allocs/op, want 0\n", a; bad = 1 }
}
/^BenchmarkStreamedRounds\/Streamed/ {
  seen_sr = 1
  for (i = 1; i <= NF; i++) if ($i == "allocs/op") a = $(i-1)
  if (a + 0 > ceiling) { printf "FAIL: BenchmarkStreamedRounds/Streamed %s allocs/op, ceiling %d\n", a, ceiling; bad = 1 }
}
END {
  if (!seen_rm) { print "FAIL: BenchmarkRoundMarshal did not run"; bad = 1 }
  if (!seen_sr) { print "FAIL: BenchmarkStreamedRounds/Streamed did not run"; bad = 1 }
  exit bad
}' "${OUT}"

echo "PASS: alloc gate"
